// Command-line driver for the sharded Table-I experiment
// (core/experiment.hpp): naive random initialization vs the two-level
// ML flow, swept over optimizers and target depths.
//
// Every invocation rebuilds the corpus -> split -> predictor chain
// deterministically from the same seeds (or loads a merged corpus
// file), so independent shard processes train bit-identical predictors
// — the precondition run_table1_shard documents.  Shards follow the
// corpus pipeline's operational model: one shard per invocation (or
// all in-process), kill/resume from the last committed unit, and a
// merge whose rows are bit-identical to the unsharded sweep for every
// shard and thread count.
//
//   # the whole sweep, one process:
//   run_table1 --graphs 16 --nodes 6 --depth 2 --depths 2 --dir /tmp/t1
//       --out table1.txt
//
//   # the same sweep split over two processes on shared storage:
//   run_table1 --graphs 16 --dir /shared --shards 2 --shard 0 --no-merge
//   run_table1 --graphs 16 --dir /shared --shards 2 --shard 1 --no-merge
//   run_table1 --graphs 16 --dir /shared --shards 2 --merge-only --out t1.txt
//
// Thread count comes from QAOAML_THREADS; tools/launch drives the
// multi-process form of this automatically.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/shard_protocol.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/experiment.hpp"
#include "core/parameter_predictor.hpp"

namespace {

using qaoaml::cli::split_list;
using qaoaml::cli::to_double;
using qaoaml::cli::to_int;
using qaoaml::cli::to_u64;
using qaoaml::core::ExperimentConfig;
using qaoaml::core::ShardSpec;
using qaoaml::core::Table1ShardReport;
using qaoaml::core::TableRow;

struct CliOptions {
  qaoaml::core::DatasetConfig dataset;  // corpus the predictor trains on
  std::string corpus;       // load this merged corpus instead of generating
  double split_frac = 0.2;  // the paper's 20:80 train/test split
  std::uint64_t split_seed = 5;
  ExperimentConfig sweep;
  int shards = 1;
  int shard = -1;           // -1: run every shard in this process
  bool merge_only = false;  // skip the sweep, only merge existing shards
  bool no_merge = false;    // skip the merge step
  bool progress_stream = false;  // emit the @qshard protocol on stdout
  std::string directory = ".";
  std::string out;          // machine-readable report, relative to --dir
};

void print_usage() {
  std::printf(
      "usage: run_table1 [options]\n"
      "\n"
      "corpus (regenerated deterministically per process, or loaded):\n"
      "  --corpus FILE    load a merged corpus written by generate_corpus\n"
      "                   (relative to --dir unless absolute) instead of\n"
      "                   generating one in-process\n"
      "  --graphs N       corpus ensemble size (default 24)\n"
      "  --nodes N        nodes per graph (default 8)\n"
      "  --min-edges N    resample graphs with fewer edges (default 1)\n"
      "  --depth D        corpus depths 1..D (default 4)\n"
      "  --restarts R     multistart count per (graph, depth) (default 10)\n"
      "  --corpus-seed S  corpus master seed (default 11)\n"
      "  --family F       erdos-renyi (default) | regular |\n"
      "                   weighted-erdos-renyi | small-world | mixed\n"
      "  --edge-prob F    ER edge probability (default 0.5)\n"
      "  --degree D       regular-family degree (default 3)\n"
      "  --neighbors K    small-world ring degree, even (default 2)\n"
      "  --rewire-prob F  small-world rewiring probability (default 0.25)\n"
      "\n"
      "split / predictor (GPR bank, trained identically in every shard):\n"
      "  --split-frac F   train fraction of the corpus (default 0.2)\n"
      "  --split-seed S   split RNG seed (default 5)\n"
      "\n"
      "sweep:\n"
      "  --optimizers L   comma-separated (default all four):\n"
      "                   L-BFGS-B | Nelder-Mead | SLSQP | COBYLA\n"
      "  --depths LIST    comma-separated target depths (default 2,3,4,5)\n"
      "  --naive-runs N   random initializations per graph (default 20)\n"
      "  --ml-repeats N   two-level repeats per graph (default 3)\n"
      "  --seed S         sweep master seed (default 7)\n"
      "\n"
      "objective evaluation (both sweep arms; the corpus stays exact):\n"
      "  --objective-mode M  exact (default) | sampled — sampled optimizes\n"
      "                   finite-shot estimates (noisy ftol/xtol preset)\n"
      "                   and reports exact-rescored ARs\n"
      "  --shots N        Born-rule shots per estimate (default 1024);\n"
      "                   implies --objective-mode sampled\n"
      "  --shot-averaging K  estimates averaged per objective call\n"
      "                   (default 1)\n"
      "\n"
      "sharding / output:\n"
      "  --dir PATH       shard-file directory (default .)\n"
      "  --shards N       total shard count (default 1)\n"
      "  --shard K        run only shard K (default: all, sequentially)\n"
      "  --merge-only     merge existing complete shards and exit\n"
      "  --no-merge       sweep without merging (multi-process runs)\n"
      "  --out PATH       write the machine-readable report here (relative\n"
      "                   to --dir unless absolute); bytes are identical\n"
      "                   for every shard/thread count\n"
      "  --progress-stream  emit the @qshard line protocol on stdout for\n"
      "                   tools/launch (progress, heartbeats)\n"
      "\n"
      "QAOAML_THREADS controls worker threads; a killed run resumes from\n"
      "the last committed unit when re-invoked with the same arguments.\n");
}

bool parse_args(int argc, char** argv, CliOptions& options) {
  const std::pair<const char*, std::function<bool(const char*)>>
      value_flags[] = {
          {"--corpus",
           [&](const char* v) {
             options.corpus = v;
             return true;
           }},
          {"--graphs",
           [&](const char* v) { return to_int(v, options.dataset.num_graphs); }},
          {"--nodes",
           [&](const char* v) { return to_int(v, options.dataset.num_nodes); }},
          {"--min-edges",
           [&](const char* v) { return to_int(v, options.dataset.min_edges); }},
          {"--depth",
           [&](const char* v) { return to_int(v, options.dataset.max_depth); }},
          {"--restarts",
           [&](const char* v) { return to_int(v, options.dataset.restarts); }},
          {"--corpus-seed",
           [&](const char* v) { return to_u64(v, options.dataset.seed); }},
          {"--family",
           [&](const char* v) {
             options.dataset.ensemble.family =
                 qaoaml::core::family_from_string(v);  // throws on typo
             return true;
           }},
          {"--edge-prob",
           [&](const char* v) {
             return to_double(v, options.dataset.ensemble.edge_probability);
           }},
          {"--degree",
           [&](const char* v) {
             return to_int(v, options.dataset.ensemble.degree);
           }},
          {"--neighbors",
           [&](const char* v) {
             return to_int(v, options.dataset.ensemble.neighbors);
           }},
          {"--rewire-prob",
           [&](const char* v) {
             return to_double(v, options.dataset.ensemble.rewire_probability);
           }},
          {"--split-frac",
           [&](const char* v) { return to_double(v, options.split_frac); }},
          {"--split-seed",
           [&](const char* v) { return to_u64(v, options.split_seed); }},
          {"--optimizers",
           [&](const char* v) {
             options.sweep.optimizers.clear();
             for (const std::string& name : split_list(v)) {
               options.sweep.optimizers.push_back(
                   qaoaml::optim::optimizer_from_string(name));  // throws
             }
             return !options.sweep.optimizers.empty();
           }},
          {"--depths",
           [&](const char* v) {
             options.sweep.target_depths.clear();
             for (const std::string& item : split_list(v)) {
               int depth = 0;
               if (!to_int(item.c_str(), depth)) return false;
               options.sweep.target_depths.push_back(depth);
             }
             return !options.sweep.target_depths.empty();
           }},
          {"--naive-runs",
           [&](const char* v) { return to_int(v, options.sweep.naive_runs); }},
          {"--ml-repeats",
           [&](const char* v) { return to_int(v, options.sweep.ml_repeats); }},
          {"--seed",
           [&](const char* v) { return to_u64(v, options.sweep.seed); }},
          {"--objective-mode",
           [&](const char* v) {
             options.sweep.eval.mode =
                 qaoaml::core::objective_mode_from_string(v);  // throws
             return true;
           }},
          {"--shots",
           [&](const char* v) {
             options.sweep.eval.mode = qaoaml::core::ObjectiveMode::kSampled;
             return to_int(v, options.sweep.eval.shots);
           }},
          {"--shot-averaging",
           [&](const char* v) {
             return to_int(v, options.sweep.eval.averaging);
           }},
          {"--dir",
           [&](const char* v) {
             options.directory = v;
             return true;
           }},
          {"--shards", [&](const char* v) { return to_int(v, options.shards); }},
          {"--shard", [&](const char* v) { return to_int(v, options.shard); }},
          {"--out",
           [&](const char* v) {
             options.out = v;
             return true;
           }},
      };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      std::exit(0);
    } else if (arg == "--merge-only") {
      options.merge_only = true;
    } else if (arg == "--no-merge") {
      options.no_merge = true;
    } else if (arg == "--progress-stream") {
      options.progress_stream = true;
    } else {
      const auto* entry = std::find_if(
          std::begin(value_flags), std::end(value_flags),
          [&](const auto& flag) { return arg == flag.first; });
      if (entry == std::end(value_flags)) {
        std::fprintf(stderr, "run_table1: unknown option %s\n", arg.c_str());
        return false;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "run_table1: %s needs a value\n", arg.c_str());
        return false;
      }
      if (!entry->second(argv[++i])) {
        std::fprintf(stderr, "run_table1: invalid value '%s' for %s\n",
                     argv[i], arg.c_str());
        return false;
      }
    }
  }
  if (options.merge_only && options.no_merge) {
    std::fprintf(stderr, "run_table1: --merge-only and --no-merge conflict\n");
    return false;
  }
  if (options.merge_only && options.shard != -1) {
    std::fprintf(stderr,
                 "run_table1: --merge-only merges every shard; --shard "
                 "conflicts with it\n");
    return false;
  }
  if (options.shards < 1) {
    std::fprintf(stderr, "run_table1: --shards must be >= 1\n");
    return false;
  }
  if (options.shard != -1 &&
      (options.shard < 0 || options.shard >= options.shards)) {
    std::fprintf(stderr, "run_table1: --shard must be in [0, --shards)\n");
    return false;
  }
  if (!(options.split_frac > 0.0 && options.split_frac < 1.0)) {
    std::fprintf(stderr, "run_table1: --split-frac must be in (0, 1)\n");
    return false;
  }
  return true;
}

/// Corpus -> split -> trained predictor, bit-identical in every
/// process that passes the same flags (generation, the split RNG and
/// GPR training are all deterministic) — the cross-process contract
/// run_table1_shard requires of its callers.
struct Harness {
  qaoaml::core::ParameterDataset dataset;
  std::vector<std::size_t> test;
  qaoaml::core::ParameterPredictor predictor;
};

Harness build_harness(const CliOptions& options) {
  Harness h;
  if (!options.corpus.empty()) {
    const std::string path =
        (std::filesystem::path(options.directory) / options.corpus).string();
    h.dataset = qaoaml::core::ParameterDataset::load(path);
  } else {
    h.dataset = qaoaml::core::ParameterDataset::generate(options.dataset);
  }
  qaoaml::Rng rng(options.split_seed);
  auto [train, test] = h.dataset.split_indices(options.split_frac, rng);
  h.test = std::move(test);
  h.predictor.train(h.dataset, train);
  return h;
}

/// Machine-readable report: 17 significant digits round-trip doubles
/// exactly, so the bytes are identical for every shard/thread count.
void write_report(std::ostream& os, const std::vector<TableRow>& rows) {
  os << "qaoaml-table1-report-v1\n";
  os << std::setprecision(17);
  for (const TableRow& row : rows) {
    os << "row " << qaoaml::optim::to_string(row.optimizer) << ' '
       << row.target_depth << ' ' << row.naive_ar_mean << ' '
       << row.naive_ar_sd << ' ' << row.naive_fc_mean << ' '
       << row.naive_fc_sd << ' ' << row.ml_ar_mean << ' ' << row.ml_ar_sd
       << ' ' << row.ml_fc_mean << ' ' << row.ml_fc_sd << ' '
       << row.fc_reduction_percent << '\n';
  }
  os << "average_fc_reduction " << qaoaml::core::average_fc_reduction(rows)
     << '\n';
}

void print_rows(const std::vector<TableRow>& rows) {
  qaoaml::Table table({"Optimizer", "p", "AR(naive)", "FC(naive)", "AR(ML)",
                       "FC(ML)", "FC red %"});
  for (const TableRow& row : rows) {
    table.add_row({qaoaml::optim::to_string(row.optimizer),
                   qaoaml::Table::num(static_cast<long long>(row.target_depth)),
                   qaoaml::Table::num(row.naive_ar_mean),
                   qaoaml::Table::num(row.naive_fc_mean, 1),
                   qaoaml::Table::num(row.ml_ar_mean),
                   qaoaml::Table::num(row.ml_fc_mean, 1),
                   qaoaml::Table::num(row.fc_reduction_percent, 1)});
  }
  table.print(std::cout);
  std::printf("average FC reduction: %.1f%%\n",
              qaoaml::core::average_fc_reduction(rows));
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  // A CI-friendly default corpus; scale up explicitly.
  options.dataset.num_graphs = 24;
  options.dataset.restarts = 10;
  options.dataset.seed = 11;
  try {
    if (!parse_args(argc, argv, options)) {
      print_usage();
      return 2;
    }
    // The protocol stream drives tools/launch's liveness detector, so
    // it stays alive (heartbeats) even while corpus generation or bank
    // training keeps the shard loop from committing units.
    std::FILE* stream = options.progress_stream ? stdout : nullptr;
    const qaoaml::proto::HeartbeatEmitter heartbeat(
        stream, qaoaml::env_double("QAOAML_HEARTBEAT_S", 1.0));

    // One harness serves both phases: the shard runs need the trained
    // predictor, the merge re-derives the same dataset + test split to
    // key the shard files.
    const Harness h = build_harness(options);

    if (!options.merge_only) {
      std::vector<int> to_run;
      if (options.shard >= 0) {
        to_run.push_back(options.shard);
      } else {
        for (int s = 0; s < options.shards; ++s) to_run.push_back(s);
      }
      for (const int s : to_run) {
        const ShardSpec shard{s, options.shards};
        qaoaml::proto::emit_start(stream, s, 0);
        qaoaml::Timer timer;
        std::size_t resumed_base = SIZE_MAX;
        const Table1ShardReport report = qaoaml::core::run_table1_shard(
            h.dataset, h.test, h.predictor, options.sweep, shard,
            options.directory,
            [&](std::size_t done, std::size_t total) {
              if (resumed_base == SIZE_MAX) resumed_base = done;
              const double elapsed = timer.seconds();
              const double rate =
                  elapsed > 0.0
                      ? static_cast<double>(done - resumed_base) / elapsed
                      : 0.0;
              qaoaml::proto::emit_progress(stream, done, total, rate);
            });
        qaoaml::proto::emit_done(stream, report.units_generated,
                                 report.units_resumed, report.seconds);
        std::printf("shard %d/%d: %zu units (%zu resumed, %zu generated) in "
                    "%.2f s\n  data %s\n",
                    s, options.shards, report.units_owned,
                    report.units_resumed, report.units_generated,
                    report.seconds, report.data_path.c_str());
      }
      if (options.shard >= 0 && options.shards > 1) {
        if (!options.no_merge) {
          std::printf(
              "merge skipped (ran only shard %d of %d); run --merge-only "
              "once every shard is complete\n",
              options.shard, options.shards);
        }
        return 0;
      }
    }

    if (options.no_merge) return 0;
    const std::vector<TableRow> rows = qaoaml::core::merge_table1_shards(
        h.dataset, h.test, options.sweep, options.shards, options.directory);
    print_rows(rows);
    if (!options.out.empty()) {
      const std::string out_path =
          (std::filesystem::path(options.directory) / options.out).string();
      std::ofstream os(out_path);
      qaoaml::require(os.good(), "run_table1: cannot open " + out_path);
      write_report(os, rows);
      os.flush();  // surface buffered write failures here, not in ~ofstream
      qaoaml::require(os.good(), "run_table1: write failed: " + out_path);
      std::printf("report -> %s\n", out_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run_table1: %s\n", e.what());
    return 1;
  }
  return 0;
}
