// Command-line driver for the sharded cross-family warm-start transfer
// matrix (core/transfer_experiment.hpp).
//
// For every (train family x eval family x model) cell it trains a
// predictor bank on the train family's corpus and compares warm-started
// against cold-started optimization on fresh eval-family instances.
// Shards follow the corpus pipeline's operational model: one shard per
// invocation (or all in-process), kill/resume from the last committed
// unit, and a merge whose cells are bit-identical to the unsharded
// sweep for every shard and thread count.
//
//   # the whole matrix, one process:
//   run_transfer --families erdos-renyi,small-world --models GPR,LM
//       --dir /tmp/transfer --out report.txt
//
//   # the same matrix split over two machines on shared storage:
//   run_transfer --families er,small-world --dir /shared --shards 2 --shard 0
//   run_transfer --families er,small-world --dir /shared --shards 2 --shard 1
//   run_transfer --families er,small-world --dir /shared --shards 2
//       --merge-only --out report.txt
//
// Thread count comes from QAOAML_THREADS; docs/EXPERIMENTS.md walks
// through the full protocol.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/shard_protocol.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/transfer_experiment.hpp"

namespace {

using qaoaml::cli::split_list;
using qaoaml::cli::to_int;
using qaoaml::cli::to_u64;
using qaoaml::core::ShardSpec;
using qaoaml::core::TransferCell;
using qaoaml::core::TransferConfig;
using qaoaml::core::TransferShardReport;

struct CliOptions {
  TransferConfig transfer;
  int shards = 1;
  int shard = -1;          // -1: run every shard in this process
  bool merge_only = false; // skip generation, only merge existing shards
  bool no_merge = false;   // skip the merge step
  bool progress_stream = false;  // emit the @qshard protocol on stdout
  std::string directory = ".";
  std::string out;         // machine-readable report, relative to --dir
};

void print_usage() {
  std::printf(
      "usage: run_transfer [options]\n"
      "\n"
      "matrix axes:\n"
      "  --families LIST  comma-separated graph families (default\n"
      "                   erdos-renyi,small-world): erdos-renyi | regular |\n"
      "                   weighted-erdos-renyi | small-world | mixed\n"
      "                   (family knobs use library defaults; use the C++\n"
      "                   API for custom knob values)\n"
      "  --models LIST    comma-separated model kinds (default GPR):\n"
      "                   GPR | LM | RTREE | RSVM\n"
      "\n"
      "train side (per-family corpus):\n"
      "  --nodes N            nodes per graph (default 8)\n"
      "  --train-graphs N     corpus instances per family (default 24)\n"
      "  --depth D            corpus depths 1..D (default 4)\n"
      "  --corpus-restarts R  multistart count per (graph, depth) (default 8)\n"
      "\n"
      "eval side:\n"
      "  --eval-graphs N      fresh instances per eval family (default 8)\n"
      "  --target-depth P     depth both arms optimize (default 3)\n"
      "  --cold-restarts R    random inits in the cold arm (default 8)\n"
      "  --warm-repeats R     two-level repeats per instance (default 1)\n"
      "  --optimizer S        L-BFGS-B | Nelder-Mead | SLSQP | COBYLA\n"
      "  --seed S             master seed (default 2020)\n"
      "  --objective-mode M   exact (default) | sampled — sampled runs both\n"
      "                       eval arms on finite-shot estimates (training\n"
      "                       corpora stay exact) with exact-rescored ARs\n"
      "  --shots N            shots per estimate (default 1024); implies\n"
      "                       --objective-mode sampled\n"
      "  --shot-averaging K   estimates averaged per objective call\n"
      "\n"
      "sharding / output:\n"
      "  --dir PATH       shard-file directory (default .)\n"
      "  --shards N       total shard count (default 1)\n"
      "  --shard K        run only shard K (default: all, sequentially)\n"
      "  --merge-only     merge existing complete shards and exit\n"
      "  --no-merge       generate without merging (multi-process runs)\n"
      "  --out PATH       write the machine-readable report here (relative\n"
      "                   to --dir unless absolute); bytes are identical\n"
      "                   for every shard/thread count\n"
      "  --progress-stream  emit the @qshard line protocol on stdout for\n"
      "                   tools/launch (progress, heartbeats)\n"
      "\n"
      "QAOAML_THREADS controls worker threads; a killed run resumes from\n"
      "the last committed unit when re-invoked with the same arguments.\n");
}

bool parse_args(int argc, char** argv, CliOptions& options) {
  const std::pair<const char*, std::function<bool(const char*)>>
      value_flags[] = {
          {"--families",
           [&](const char* v) {
             options.transfer.families.clear();
             for (const std::string& name : split_list(v)) {
               qaoaml::core::EnsembleConfig ensemble;
               ensemble.family =
                   qaoaml::core::family_from_string(name);  // throws on typo
               options.transfer.families.push_back(ensemble);
             }
             return !options.transfer.families.empty();
           }},
          {"--models",
           [&](const char* v) {
             options.transfer.models.clear();
             for (const std::string& name : split_list(v)) {
               options.transfer.models.push_back(
                   qaoaml::ml::regressor_from_string(name));  // throws on typo
             }
             return !options.transfer.models.empty();
           }},
          {"--nodes",
           [&](const char* v) { return to_int(v, options.transfer.num_nodes); }},
          {"--train-graphs",
           [&](const char* v) {
             return to_int(v, options.transfer.train_graphs);
           }},
          {"--depth",
           [&](const char* v) { return to_int(v, options.transfer.max_depth); }},
          {"--corpus-restarts",
           [&](const char* v) {
             return to_int(v, options.transfer.corpus_restarts);
           }},
          {"--eval-graphs",
           [&](const char* v) {
             return to_int(v, options.transfer.eval_graphs);
           }},
          {"--target-depth",
           [&](const char* v) {
             return to_int(v, options.transfer.target_depth);
           }},
          {"--cold-restarts",
           [&](const char* v) {
             return to_int(v, options.transfer.cold_restarts);
           }},
          {"--warm-repeats",
           [&](const char* v) {
             return to_int(v, options.transfer.warm_repeats);
           }},
          {"--optimizer",
           [&](const char* v) {
             options.transfer.optimizer =
                 qaoaml::optim::optimizer_from_string(v);  // throws on typo
             return true;
           }},
          {"--seed",
           [&](const char* v) { return to_u64(v, options.transfer.seed); }},
          {"--objective-mode",
           [&](const char* v) {
             options.transfer.eval.mode =
                 qaoaml::core::objective_mode_from_string(v);  // throws
             return true;
           }},
          {"--shots",
           [&](const char* v) {
             options.transfer.eval.mode =
                 qaoaml::core::ObjectiveMode::kSampled;
             return to_int(v, options.transfer.eval.shots);
           }},
          {"--shot-averaging",
           [&](const char* v) {
             return to_int(v, options.transfer.eval.averaging);
           }},
          {"--dir",
           [&](const char* v) {
             options.directory = v;
             return true;
           }},
          {"--shards", [&](const char* v) { return to_int(v, options.shards); }},
          {"--shard", [&](const char* v) { return to_int(v, options.shard); }},
          {"--out",
           [&](const char* v) {
             options.out = v;
             return true;
           }},
      };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      std::exit(0);
    } else if (arg == "--merge-only") {
      options.merge_only = true;
    } else if (arg == "--no-merge") {
      options.no_merge = true;
    } else if (arg == "--progress-stream") {
      options.progress_stream = true;
    } else {
      const auto* entry = std::find_if(
          std::begin(value_flags), std::end(value_flags),
          [&](const auto& flag) { return arg == flag.first; });
      if (entry == std::end(value_flags)) {
        std::fprintf(stderr, "run_transfer: unknown option %s\n", arg.c_str());
        return false;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "run_transfer: %s needs a value\n", arg.c_str());
        return false;
      }
      if (!entry->second(argv[++i])) {
        std::fprintf(stderr, "run_transfer: invalid value '%s' for %s\n",
                     argv[i], arg.c_str());
        return false;
      }
    }
  }
  if (options.merge_only && options.no_merge) {
    std::fprintf(stderr, "run_transfer: --merge-only and --no-merge conflict\n");
    return false;
  }
  if (options.merge_only && options.shard != -1) {
    std::fprintf(stderr,
                 "run_transfer: --merge-only merges every shard; --shard "
                 "conflicts with it\n");
    return false;
  }
  if (options.shards < 1) {
    std::fprintf(stderr, "run_transfer: --shards must be >= 1\n");
    return false;
  }
  if (options.shard != -1 &&
      (options.shard < 0 || options.shard >= options.shards)) {
    std::fprintf(stderr, "run_transfer: --shard must be in [0, --shards)\n");
    return false;
  }
  return true;
}

void print_matrix(const TransferConfig& config,
                  const std::vector<TransferCell>& cells) {
  qaoaml::Table table({"train \\ eval", "model", "cold FC", "warm FC",
                       "FC red %", "cold AR", "warm AR", "dAR"});
  for (const TransferCell& cell : cells) {
    table.add_row({to_string(config.families[cell.train_family].family) +
                       " -> " +
                       to_string(config.families[cell.eval_family].family),
                   qaoaml::ml::to_string(cell.model),
                   qaoaml::Table::num(cell.cold_fc_mean, 1),
                   qaoaml::Table::num(cell.warm_fc_mean, 1),
                   qaoaml::Table::num(cell.fc_reduction_percent, 1),
                   qaoaml::Table::num(cell.cold_ar_mean, 4),
                   qaoaml::Table::num(cell.warm_ar_mean, 4),
                   qaoaml::Table::num(cell.ar_delta, 4)});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  // A CI-friendly default matrix; scale up explicitly.
  options.transfer.families.resize(2);
  options.transfer.families[1].family = qaoaml::core::GraphFamily::kSmallWorld;
  try {
    if (!parse_args(argc, argv, options)) {
      print_usage();
      return 2;
    }

    // The protocol stream drives tools/launch's liveness detector, so
    // it stays alive (heartbeats) even while bank training keeps the
    // shard loop from committing units.
    std::FILE* stream = options.progress_stream ? stdout : nullptr;
    const qaoaml::proto::HeartbeatEmitter heartbeat(
        stream, qaoaml::env_double("QAOAML_HEARTBEAT_S", 1.0));

    if (!options.merge_only) {
      std::vector<int> to_run;
      if (options.shard >= 0) {
        to_run.push_back(options.shard);
      } else {
        for (int s = 0; s < options.shards; ++s) to_run.push_back(s);
      }
      for (const int s : to_run) {
        const ShardSpec shard{s, options.shards};
        qaoaml::proto::emit_start(stream, s, 0);
        qaoaml::Timer timer;
        std::size_t resumed_base = SIZE_MAX;
        const TransferShardReport report = qaoaml::core::run_transfer_shard(
            options.transfer, shard, options.directory,
            [&](std::size_t done, std::size_t total) {
              if (resumed_base == SIZE_MAX) resumed_base = done;
              const double elapsed = timer.seconds();
              const double rate =
                  elapsed > 0.0
                      ? static_cast<double>(done - resumed_base) / elapsed
                      : 0.0;
              qaoaml::proto::emit_progress(stream, done, total, rate);
            });
        qaoaml::proto::emit_done(stream, report.units_generated,
                                 report.units_resumed, report.seconds);
        std::printf(
            "shard %d/%d: %zu units (%zu resumed, %zu generated), "
            "%zu banks trained in %.2f s\n  data %s\n",
            s, options.shards, report.units_owned, report.units_resumed,
            report.units_generated, report.banks_trained, report.seconds,
            report.data_path.c_str());
      }
      if (options.shard >= 0 && options.shards > 1) {
        if (!options.no_merge) {
          std::printf(
              "merge skipped (ran only shard %d of %d); run --merge-only "
              "once every shard is complete\n",
              options.shard, options.shards);
        }
        return 0;
      }
    }

    if (options.no_merge) return 0;
    const std::vector<TransferCell> cells = qaoaml::core::merge_transfer_shards(
        options.transfer, options.shards, options.directory);
    print_matrix(options.transfer, cells);
    if (!options.out.empty()) {
      const std::string out_path =
          (std::filesystem::path(options.directory) / options.out).string();
      std::ofstream os(out_path);
      qaoaml::require(os.good(), "run_transfer: cannot open " + out_path);
      qaoaml::core::write_transfer_report(os, options.transfer, cells);
      os.flush();  // surface buffered write failures here, not in ~ofstream
      qaoaml::require(os.good(), "run_transfer: write failed: " + out_path);
      std::printf("report -> %s\n", out_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "run_transfer: %s\n", e.what());
    return 1;
  }
  return 0;
}
