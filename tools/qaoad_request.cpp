// qaoad_request — one-shot client CLI for the qaoad daemon.
//
//   # bank lookup (prints the EXACT `train_predictor --predict` line,
//   # so CI can `cmp` served angles against the offline bank):
//   qaoad_request --socket /tmp/qaoad.sock --family erdos-renyi \
//       --predict 0.6,0.4,3
//
//   # server-side level-1 optimize + predict on a locally sampled
//   # instance (NODES,SEED,DEPTH; the graph travels on the wire):
//   qaoad_request --socket /tmp/qaoad.sock --family erdos-renyi \
//       --warm-start 8,7,3
//
//   # full two-level solve on the server:
//   qaoad_request --socket /tmp/qaoad.sock --family erdos-renyi \
//       --solve 8,7,3
//
//   # daemon counters:
//   qaoad_request --socket /tmp/qaoad.sock --stats
//
// Exit status: 0 when every request succeeded, 1 otherwise — a serving
// error (unknown family, malformed graph) prints the daemon's error
// text and fails the invocation.
#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/graph_ensemble.hpp"
#include "core/serving_client.hpp"

namespace {

using qaoaml::cli::to_double;
using qaoaml::cli::to_int;
using qaoaml::cli::to_u64;
using qaoaml::core::serving::Client;
using qaoaml::core::serving::Response;
using qaoaml::core::serving::ServerStats;

struct PredictArgs {
  double gamma1 = 0.0;
  double beta1 = 0.0;
  int depth = 2;
};

struct InstanceArgs {
  int nodes = 8;
  std::uint64_t seed = 0;
  int depth = 2;
};

void print_usage() {
  std::printf(
      "usage: qaoad_request --socket PATH [options]\n"
      "\n"
      "  --socket PATH      daemon socket (required)\n"
      "  --family F         bank family for requests (default erdos-renyi)\n"
      "  --predict G,B,P    predicted depth-P angles for the depth-1\n"
      "                     optimum (gamma1=G, beta1=B); repeatable;\n"
      "                     output is byte-identical to\n"
      "                     `train_predictor --predict G,B,P`\n"
      "  --warm-start N,S,P sample an N-node instance with seed S\n"
      "                     (--family ensemble), request a server-side\n"
      "                     warm start to depth P; repeatable\n"
      "  --solve N,S,P      same instance, full two-level solve;\n"
      "                     repeatable\n"
      "  --edge-prob F      ER edge probability for sampled instances\n"
      "                     (default 0.5)\n"
      "  --restarts R       server-side level-1 restarts (default 1)\n"
      "  --shots N          evaluate warm-start/solve requests on N-shot\n"
      "                     sampled objectives (versioned optional wire\n"
      "                     block; exact requests stay old-client\n"
      "                     compatible; measurement seed = instance seed)\n"
      "  --ping             liveness round trip\n"
      "  --stats            print the daemon's counters\n");
}

bool parse_triple(const char* text, std::string& a, std::string& b,
                  std::string& c) {
  const std::string s = text;
  const auto c1 = s.find(',');
  const auto c2 = s.find(',', c1 == std::string::npos ? c1 : c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos) return false;
  a = s.substr(0, c1);
  b = s.substr(c1 + 1, c2 - c1 - 1);
  c = s.substr(c2 + 1);
  return true;
}

bool to_predict_args(const char* text, PredictArgs& out) {
  std::string a, b, c;
  return parse_triple(text, a, b, c) && to_double(a.c_str(), out.gamma1) &&
         to_double(b.c_str(), out.beta1) && to_int(c.c_str(), out.depth);
}

bool to_instance_args(const char* text, InstanceArgs& out) {
  std::string a, b, c;
  return parse_triple(text, a, b, c) && to_int(a.c_str(), out.nodes) &&
         to_u64(b.c_str(), out.seed) && to_int(c.c_str(), out.depth);
}

/// Fails the run on a serving error; prints the daemon's error text.
bool check(const Response& response, const char* what) {
  if (response.ok) return true;
  std::fprintf(stderr, "qaoad_request: %s failed: %s\n", what,
               response.error.c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string family = "erdos-renyi";
  double edge_prob = 0.5;
  int restarts = 1;
  int shots = 0;  // 0 = exact (no eval block on the wire)
  bool ping = false;
  bool stats = false;
  std::vector<PredictArgs> predicts;
  std::vector<InstanceArgs> warm_starts;
  std::vector<InstanceArgs> solves;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    if (arg == "--ping") {
      ping = true;
      continue;
    }
    if (arg == "--stats") {
      stats = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "qaoad_request: %s needs a value\n", arg.c_str());
      return 2;
    }
    const char* value = argv[++i];
    bool ok = true;
    if (arg == "--socket") {
      socket_path = value;
    } else if (arg == "--family") {
      family = value;
    } else if (arg == "--edge-prob") {
      ok = to_double(value, edge_prob);
    } else if (arg == "--restarts") {
      ok = to_int(value, restarts) && restarts >= 1;
    } else if (arg == "--shots") {
      ok = to_int(value, shots) && shots >= 1;
    } else if (arg == "--predict") {
      PredictArgs args;
      ok = to_predict_args(value, args);
      if (ok) predicts.push_back(args);
    } else if (arg == "--warm-start") {
      InstanceArgs args;
      ok = to_instance_args(value, args);
      if (ok) warm_starts.push_back(args);
    } else if (arg == "--solve") {
      InstanceArgs args;
      ok = to_instance_args(value, args);
      if (ok) solves.push_back(args);
    } else {
      std::fprintf(stderr, "qaoad_request: unknown option %s\n", arg.c_str());
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "qaoad_request: invalid value '%s' for %s\n",
                   value, arg.c_str());
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "qaoad_request: --socket is required\n");
    print_usage();
    return 2;
  }

  try {
    Client client(socket_path);
    bool all_ok = true;

    if (ping) {
      if (!client.ping()) {
        std::fprintf(stderr, "qaoad_request: ping echo mismatch\n");
        return 1;
      }
      std::printf("pong\n");
    }

    for (const PredictArgs& args : predicts) {
      const Response response =
          client.predict(family, args.gamma1, args.beta1, args.depth);
      if (!check(response, "predict")) {
        all_ok = false;
        continue;
      }
      // Byte-identical to train_predictor's --predict output.
      std::printf("predict %.17g %.17g %d:", args.gamma1, args.beta1,
                  args.depth);
      for (const double a : response.angles) std::printf(" %.17g", a);
      std::printf("\n");
    }

    qaoaml::core::EnsembleConfig ensemble;
    ensemble.family = qaoaml::core::family_from_string(family);
    ensemble.edge_probability = edge_prob;

    // Sampled evaluation reuses the instance seed as the measurement
    // seed: the request stays reproducible from the command line alone.
    const auto eval_spec = [&](std::uint64_t seed) {
      return shots >= 1
                 ? qaoaml::core::EvalSpec::sampled_with(shots, seed)
                 : qaoaml::core::EvalSpec::exact();
    };

    for (const InstanceArgs& args : warm_starts) {
      qaoaml::Rng rng(args.seed);
      const qaoaml::graph::Graph problem =
          qaoaml::core::sample_graph(ensemble, args.nodes, rng);
      const Response response =
          client.warm_start(family, problem, args.depth, args.seed, restarts,
                            eval_spec(args.seed));
      if (!check(response, "warm-start")) {
        all_ok = false;
        continue;
      }
      std::printf("warm-start n=%d seed=%llu depth=%d: gamma1=%.17g "
                  "beta1=%.17g expectation=%.17g AR=%.17g FC=%d\n",
                  args.nodes, static_cast<unsigned long long>(args.seed),
                  args.depth, response.gamma1, response.beta1,
                  response.expectation, response.approximation_ratio,
                  response.function_calls);
    }

    for (const InstanceArgs& args : solves) {
      qaoaml::Rng rng(args.seed);
      const qaoaml::graph::Graph problem =
          qaoaml::core::sample_graph(ensemble, args.nodes, rng);
      const Response response = client.solve(
          family, problem, args.depth, args.seed, restarts, eval_spec(args.seed));
      if (!check(response, "solve")) {
        all_ok = false;
        continue;
      }
      std::printf("solve n=%d seed=%llu depth=%d: expectation=%.17g "
                  "AR=%.17g FC=%d\n",
                  args.nodes, static_cast<unsigned long long>(args.seed),
                  args.depth, response.expectation,
                  response.approximation_ratio, response.function_calls);
    }

    if (stats) {
      const ServerStats s = client.server_stats();
      std::printf("stats: served=%llu errors=%llu batches=%llu "
                  "max_batch=%llu reloads=%llu connections=%llu "
                  "generation=%llu\n",
                  static_cast<unsigned long long>(s.served),
                  static_cast<unsigned long long>(s.errors),
                  static_cast<unsigned long long>(s.batches),
                  static_cast<unsigned long long>(s.max_batch),
                  static_cast<unsigned long long>(s.reloads),
                  static_cast<unsigned long long>(s.connections),
                  static_cast<unsigned long long>(s.bank_generation));
    }

    return all_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qaoad_request: %s\n", e.what());
    return 1;
  }
}
