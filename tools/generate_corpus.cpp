// Command-line driver for the sharded corpus-generation pipeline.
//
// Generates the (graph -> optimal QAOA angles) training corpus, one
// shard per invocation (or all shards in-process), with checkpoint /
// resume: re-running after a kill continues from the last committed
// unit.  When every shard is complete, the shards merge into one
// ParameterDataset file whose bytes are identical for every shard and
// thread count.
//
//   # whole corpus, one process:
//   generate_corpus --graphs 64 --depth 4 --dir /tmp/corpus --out corpus.txt
//
//   # the same corpus split over two machines/processes:
//   generate_corpus --graphs 64 --depth 4 --dir /shared --shards 2 --shard 0
//   generate_corpus --graphs 64 --depth 4 --dir /shared --shards 2 --shard 1
//   generate_corpus --graphs 64 --depth 4 --dir /shared --shards 2 --merge-only
//
//   # a non-ER instance distribution (see core/graph_ensemble.hpp):
//   generate_corpus --graphs 64 --family small-world --neighbors 2
//                   --rewire-prob 0.25 --dir /tmp/sw
//
// Thread count comes from QAOAML_THREADS (default: hardware
// concurrency); see docs/CONFIGURATION.md for every knob.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/shard_protocol.hpp"
#include "common/timer.hpp"
#include "core/corpus_pipeline.hpp"

namespace {

using qaoaml::cli::to_double;
using qaoaml::cli::to_int;
using qaoaml::cli::to_u64;
using qaoaml::core::CorpusPipeline;
using qaoaml::core::CorpusShardConfig;
using qaoaml::core::DatasetConfig;
using qaoaml::core::ShardReport;
using qaoaml::core::ShardSpec;

struct CliOptions {
  DatasetConfig dataset;
  int shards = 1;
  int shard = -1;          // -1: run every shard in this process
  bool merge_only = false; // skip generation, only merge existing shards
  bool no_merge = false;   // skip the merge step
  bool progress_stream = false;  // emit the @qshard protocol on stdout
  std::string directory = ".";
  std::string out = "corpus.txt";  // merged dataset, relative to --dir
};

void print_usage() {
  std::printf(
      "usage: generate_corpus [options]\n"
      "\n"
      "corpus shape (defaults = the paper's full-scale setup):\n"
      "  --graphs N       ensemble size (default 330)\n"
      "  --nodes N        nodes per graph (default 8)\n"
      "  --min-edges N    resample graphs with fewer edges (default 1)\n"
      "  --depth D        corpus depths 1..D (default 6)\n"
      "  --restarts R     multistart count per (graph, depth) (default 20)\n"
      "  --optimizer S    L-BFGS-B | Nelder-Mead | SLSQP | COBYLA\n"
      "  --seed S         master seed (default 42)\n"
      "  --objective-mode M  exact (default) | sampled — sampled optimizes\n"
      "                   finite-shot estimates (the corpus a real device\n"
      "                   would produce) with exact-rescored record values\n"
      "  --shots N        shots per estimate (default 1024); implies\n"
      "                   --objective-mode sampled\n"
      "  --shot-averaging K  estimates averaged per objective call\n"
      "\n"
      "graph family (see docs/CONFIGURATION.md):\n"
      "  --family F       erdos-renyi (default) | regular |\n"
      "                   weighted-erdos-renyi | small-world | mixed\n"
      "  --edge-prob F    ER edge probability (ER families; default 0.5)\n"
      "  --degree D       degree of the regular family (default 3;\n"
      "                   nodes * degree must be even)\n"
      "  --weight S       weighted-ER weight law: uniform | gaussian\n"
      "  --weight-low F   uniform weight lower bound (default 0.1)\n"
      "  --weight-high F  uniform weight upper bound (default 1.0)\n"
      "  --weight-mean F  gaussian weight mean (default 1.0)\n"
      "  --weight-sd F    gaussian weight std dev (default 0.25)\n"
      "  --neighbors K    small-world ring degree, even (default 2)\n"
      "  --rewire-prob F  small-world rewiring probability (default 0.25)\n"
      "\n"
      "sharding / output:\n"
      "  --dir PATH       shard + manifest directory (default .)\n"
      "  --shards N       total shard count (default 1)\n"
      "  --shard K        run only shard K (default: all, sequentially)\n"
      "  --merge-only     merge existing complete shards and exit\n"
      "  --no-merge       generate without merging (for multi-process runs)\n"
      "  --out PATH       merged dataset file, relative to --dir\n"
      "                   unless absolute (default corpus.txt)\n"
      "  --progress-stream  emit the @qshard line protocol on stdout for\n"
      "                   tools/launch (progress, heartbeats)\n"
      "\n"
      "QAOAML_THREADS controls worker threads; a killed run resumes from\n"
      "the last committed unit when re-invoked with the same arguments.\n");
}

bool parse_args(int argc, char** argv, CliOptions& options) {
  // One table for every value-taking flag, so the known-flag check and
  // the setter cannot drift apart.  Setters return false on a
  // malformed value.
  const std::pair<const char*, std::function<bool(const char*)>>
      value_flags[] = {
          {"--graphs",
           [&](const char* v) { return to_int(v, options.dataset.num_graphs); }},
          {"--nodes",
           [&](const char* v) { return to_int(v, options.dataset.num_nodes); }},
          {"--family",
           [&](const char* v) {
             options.dataset.ensemble.family =
                 qaoaml::core::family_from_string(v);  // throws on typo
             return true;
           }},
          {"--edge-prob",
           [&](const char* v) {
             return to_double(v, options.dataset.ensemble.edge_probability);
           }},
          {"--degree",
           [&](const char* v) {
             return to_int(v, options.dataset.ensemble.degree);
           }},
          {"--weight",
           [&](const char* v) {
             const std::string kind = v;
             if (kind == "uniform") {
               options.dataset.ensemble.weight =
                   qaoaml::core::WeightKind::kUniform;
             } else if (kind == "gaussian") {
               options.dataset.ensemble.weight =
                   qaoaml::core::WeightKind::kGaussian;
             } else {
               return false;
             }
             return true;
           }},
          {"--weight-low",
           [&](const char* v) {
             return to_double(v, options.dataset.ensemble.weight_low);
           }},
          {"--weight-high",
           [&](const char* v) {
             return to_double(v, options.dataset.ensemble.weight_high);
           }},
          {"--weight-mean",
           [&](const char* v) {
             return to_double(v, options.dataset.ensemble.weight_mean);
           }},
          {"--weight-sd",
           [&](const char* v) {
             return to_double(v, options.dataset.ensemble.weight_sd);
           }},
          {"--neighbors",
           [&](const char* v) {
             return to_int(v, options.dataset.ensemble.neighbors);
           }},
          {"--rewire-prob",
           [&](const char* v) {
             return to_double(v, options.dataset.ensemble.rewire_probability);
           }},
          {"--min-edges",
           [&](const char* v) { return to_int(v, options.dataset.min_edges); }},
          {"--depth",
           [&](const char* v) { return to_int(v, options.dataset.max_depth); }},
          {"--restarts",
           [&](const char* v) { return to_int(v, options.dataset.restarts); }},
          {"--optimizer",
           [&](const char* v) {
             options.dataset.optimizer =
                 qaoaml::optim::optimizer_from_string(v);  // throws on typo
             return true;
           }},
          {"--seed",
           [&](const char* v) { return to_u64(v, options.dataset.seed); }},
          {"--objective-mode",
           [&](const char* v) {
             options.dataset.eval.mode =
                 qaoaml::core::objective_mode_from_string(v);  // throws
             return true;
           }},
          {"--shots",
           [&](const char* v) {
             options.dataset.eval.mode = qaoaml::core::ObjectiveMode::kSampled;
             return to_int(v, options.dataset.eval.shots);
           }},
          {"--shot-averaging",
           [&](const char* v) {
             return to_int(v, options.dataset.eval.averaging);
           }},
          {"--dir",
           [&](const char* v) {
             options.directory = v;
             return true;
           }},
          {"--shards", [&](const char* v) { return to_int(v, options.shards); }},
          {"--shard", [&](const char* v) { return to_int(v, options.shard); }},
          {"--out",
           [&](const char* v) {
             options.out = v;
             return true;
           }},
      };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      std::exit(0);
    } else if (arg == "--merge-only") {
      options.merge_only = true;
    } else if (arg == "--no-merge") {
      options.no_merge = true;
    } else if (arg == "--progress-stream") {
      options.progress_stream = true;
    } else {
      const auto* entry = std::find_if(
          std::begin(value_flags), std::end(value_flags),
          [&](const auto& flag) { return arg == flag.first; });
      if (entry == std::end(value_flags)) {
        std::fprintf(stderr, "generate_corpus: unknown option %s\n",
                     arg.c_str());
        return false;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "generate_corpus: %s needs a value\n",
                     arg.c_str());
        return false;
      }
      if (!entry->second(argv[++i])) {
        std::fprintf(stderr, "generate_corpus: invalid value '%s' for %s\n",
                     argv[i], arg.c_str());
        return false;
      }
    }
  }
  if (options.merge_only && options.no_merge) {
    std::fprintf(stderr,
                 "generate_corpus: --merge-only and --no-merge conflict\n");
    return false;
  }
  if (options.merge_only && options.shard != -1) {
    std::fprintf(stderr,
                 "generate_corpus: --merge-only merges every shard; "
                 "--shard conflicts with it\n");
    return false;
  }
  if (options.shards < 1) {
    std::fprintf(stderr, "generate_corpus: --shards must be >= 1\n");
    return false;
  }
  if (options.shard != -1 &&
      (options.shard < 0 || options.shard >= options.shards)) {
    std::fprintf(stderr,
                 "generate_corpus: --shard must be in [0, --shards)\n");
    return false;
  }
  return true;
}

void print_report(const ShardReport& report, const ShardSpec& shard) {
  std::printf(
      "shard %d/%d: %zu units (%zu resumed, %zu generated) in %.2f s"
      "  (%.2f instances/sec)\n  data     %s\n  manifest %s\n",
      shard.index, shard.count, report.units_owned, report.units_resumed,
      report.units_generated, report.seconds, report.instances_per_second,
      report.data_path.c_str(), report.manifest_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  try {
    if (!parse_args(argc, argv, options)) {
      print_usage();
      return 2;
    }

    // The protocol stream drives tools/launch's liveness detector, so
    // it stays alive (heartbeats) even between unit commits.
    std::FILE* stream = options.progress_stream ? stdout : nullptr;
    const qaoaml::proto::HeartbeatEmitter heartbeat(
        stream, qaoaml::env_double("QAOAML_HEARTBEAT_S", 1.0));

    if (!options.merge_only) {
      std::vector<int> to_run;
      if (options.shard >= 0) {
        to_run.push_back(options.shard);
      } else {
        for (int s = 0; s < options.shards; ++s) to_run.push_back(s);
      }
      for (const int s : to_run) {
        CorpusShardConfig shard_config;
        shard_config.dataset = options.dataset;
        shard_config.shard = ShardSpec{s, options.shards};
        shard_config.directory = options.directory;
        qaoaml::proto::emit_start(stream, s, 0);
        qaoaml::Timer timer;
        std::size_t resumed_base = SIZE_MAX;
        shard_config.progress = [&](std::size_t done, std::size_t total) {
          if (resumed_base == SIZE_MAX) resumed_base = done;
          const double elapsed = timer.seconds();
          const double rate =
              elapsed > 0.0
                  ? static_cast<double>(done - resumed_base) / elapsed
                  : 0.0;
          qaoaml::proto::emit_progress(stream, done, total, rate);
        };
        const ShardReport report = CorpusPipeline::run_shard(shard_config);
        qaoaml::proto::emit_done(stream, report.units_generated,
                                 report.units_resumed, report.seconds);
        print_report(report, shard_config.shard);
      }
      // A single-shard invocation of a multi-shard run leaves the merge
      // to whoever sees all shards complete (--merge-only).  Say so —
      // an operator who passed --out would otherwise wait for a merged
      // file that was never going to be written.
      if (options.shard >= 0 && options.shards > 1) {
        if (!options.no_merge) {
          // Only advise when the operator might have expected a merge;
          // scripted runs pass --no-merge and want quiet output.
          std::printf(
              "merge skipped (ran only shard %d of %d); run --merge-only "
              "once every shard is complete\n",
              options.shard, options.shards);
        }
        return 0;
      }
    }

    if (options.no_merge) return 0;
    // fs::path join keeps an absolute --out unchanged and composes a
    // relative one under --dir.
    const std::string out =
        (std::filesystem::path(options.directory) / options.out).string();
    const auto merged = CorpusPipeline::merge_shards(
        options.dataset, options.shards, options.directory, out);
    std::printf("merged %zu instances (%zu optimal parameters) -> %s\n",
                merged.size(), merged.total_parameter_count(), out.c_str());
  } catch (const std::exception& e) {
    // qaoaml::Error and the std::filesystem errors from shard I/O alike.
    std::fprintf(stderr, "generate_corpus: %s\n", e.what());
    return 1;
  }
  return 0;
}
