// qaoad — the warm-start serving daemon (core/serving.hpp behind a
// CLI).  Loads one trained predictor bank per graph family at startup
// and serves predictions, warm starts and full two-level solves over a
// Unix-domain socket until told to stop:
//
//   qaoad --socket /tmp/qaoad.sock \
//         --bank erdos-renyi=er.qpb --bank regular=reg.qpb
//
//   SIGHUP   hot-reloads every bank file (zero dropped requests:
//            in-flight work finishes on the bank it started with)
//   SIGTERM / SIGINT   drains in-flight requests and exits 0
//
// The ready line ("qaoad: serving on ...") is flushed before the first
// accept, so scripts can `wait` on it; final stats print on exit.
// Clients: tools/qaoad_request (one-shot CLI), bench/bench_serving
// (load generator), core/serving_client.hpp (C++ API).
#include <algorithm>
#include <csignal>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/signals.hpp"
#include "core/serving.hpp"

namespace {

using qaoaml::cli::to_int;
using qaoaml::cli::to_u64;
using qaoaml::core::serving::Server;
using qaoaml::core::serving::ServerConfig;
using qaoaml::core::serving::ServerStats;

void print_usage() {
  std::printf(
      "usage: qaoad --socket PATH --bank FAMILY=PATH [options]\n"
      "\n"
      "  --socket PATH     Unix-domain socket to serve on (required)\n"
      "  --bank F=PATH     predictor bank for family F (repeatable;\n"
      "                    at least one required)\n"
      "  --workers N       scheduler worker threads (default: hardware\n"
      "                    concurrency)\n"
      "  --batch N         micro-batch size cap (default 8)\n"
      "  --queue N         request queue capacity (default 64)\n"
      "\n"
      "signals: SIGHUP reloads every bank file in place; SIGTERM/SIGINT\n"
      "drain in-flight requests and exit 0.\n");
}

/// Parses "FAMILY=PATH".
bool to_bank(const char* text, std::pair<std::string, std::string>& out) {
  const std::string s = text;
  const auto eq = s.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == s.size()) return false;
  out = {s.substr(0, eq), s.substr(eq + 1)};
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ServerConfig config;
  config.workers = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  config.log = stdout;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "qaoad: %s needs a value\n", arg.c_str());
      print_usage();
      return 2;
    }
    const char* value = argv[++i];
    bool ok = true;
    if (arg == "--socket") {
      config.socket_path = value;
    } else if (arg == "--bank") {
      std::pair<std::string, std::string> bank;
      ok = to_bank(value, bank);
      if (ok) config.banks.push_back(std::move(bank));
    } else if (arg == "--workers") {
      ok = to_int(value, config.workers) && config.workers >= 1;
    } else if (arg == "--batch") {
      int batch = 0;
      ok = to_int(value, batch) && batch >= 1;
      if (ok) config.batch_max = static_cast<std::size_t>(batch);
    } else if (arg == "--queue") {
      int queue = 0;
      ok = to_int(value, queue) && queue >= 1;
      if (ok) config.queue_capacity = static_cast<std::size_t>(queue);
    } else {
      std::fprintf(stderr, "qaoad: unknown option %s\n", arg.c_str());
      print_usage();
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "qaoad: invalid value '%s' for %s\n", value,
                   arg.c_str());
      print_usage();
      return 2;
    }
  }
  if (config.socket_path.empty() || config.banks.empty()) {
    std::fprintf(stderr, "qaoad: --socket and at least one --bank are "
                         "required\n");
    print_usage();
    return 2;
  }

  try {
    qaoaml::ignore_sigpipe();

    // The waiter must exist (and block the signals) BEFORE the server
    // spawns its threads, so it holds a server pointer that is armed
    // right after construction.  The mutex orders reload against
    // shutdown: the handler never touches a dying server.
    std::mutex mutex;
    std::condition_variable cv;
    bool stop_requested = false;
    Server* server = nullptr;

    qaoaml::SignalWaiter waiter(
        {SIGHUP, SIGINT, SIGTERM}, [&](int signum) {
          std::lock_guard<std::mutex> lock(mutex);
          if (signum == SIGHUP) {
            if (server == nullptr) return;
            try {
              server->reload();
            } catch (const std::exception& e) {
              // Keep serving the old banks; the operator sees why.
              std::fprintf(stderr, "qaoad: reload failed: %s\n", e.what());
            }
            return;
          }
          std::printf("qaoad: %s received, draining\n",
                      qaoaml::signal_name(signum));
          std::fflush(stdout);
          stop_requested = true;
          cv.notify_all();
        });

    Server daemon(config);
    {
      std::lock_guard<std::mutex> lock(mutex);
      server = &daemon;
    }
    std::printf("qaoad: serving on %s (%zu banks, %d workers, batch %zu)\n",
                config.socket_path.c_str(), config.banks.size(),
                config.workers, config.batch_max);
    std::fflush(stdout);

    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return stop_requested; });
      server = nullptr;  // reloads after this point are no-ops
    }
    daemon.stop();

    const ServerStats stats = daemon.stats();
    std::printf("qaoad: served %llu ok, %llu errors, %llu batches "
                "(max %llu), %llu reloads, %llu connections\n",
                static_cast<unsigned long long>(stats.served),
                static_cast<unsigned long long>(stats.errors),
                static_cast<unsigned long long>(stats.batches),
                static_cast<unsigned long long>(stats.max_batch),
                static_cast<unsigned long long>(stats.reloads),
                static_cast<unsigned long long>(stats.connections));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qaoad: %s\n", e.what());
    return 1;
  }
  return 0;
}
