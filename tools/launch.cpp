// tools/launch — the multi-process shard orchestrator
// (core/shard_orchestrator.hpp): takes a corpus / Table-I / transfer
// spec and drives it from zero to merged artifact on an N-core box
// with one command.
//
//   launch --spec corpus.spec --dir /tmp/run --shards 4 --workers 4
//
// spawns one worker process per shard (up to --workers at a time,
// re-using the worker CLIs' shard modes + --progress-stream), streams
// aggregated progress, SIGKILLs and retries stalled or failed shards
// with exponential backoff, and — once every shard is complete — runs
// the worker's own --merge-only mode, so the merged artifact is
// bit-identical to a single-process run.
//
// The spec file is line-oriented:
//
//   # corpus.spec — everything after `kind` is passed to the worker
//   kind corpus
//   --graphs 64
//   --nodes 8
//   --depth 4
//   --out corpus.txt
//
// `kind` selects the worker binary (corpus -> generate_corpus,
// table1 -> run_table1, transfer -> run_transfer); every other
// non-comment line is split on whitespace and forwarded verbatim.
// launch itself appends --dir/--shards/--shard/--no-merge/
// --progress-stream for shard runs and --dir/--shards/--merge-only for
// the merge, so a spec must not set any of those.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <unistd.h>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/subprocess.hpp"
#include "core/shard_orchestrator.hpp"

namespace {

using qaoaml::cli::to_double;
using qaoaml::cli::to_int;

struct Spec {
  std::string kind;                // corpus | table1 | transfer
  std::vector<std::string> args;   // forwarded to every worker invocation
};

struct CliOptions {
  std::string spec_path;
  std::string directory = ".";
  std::string bin_dir;     // where the worker binaries live; default: ours
  int shards = 1;
  int workers = 0;         // 0 -> min(shards, hardware threads)
  int retries = 3;
  double backoff_s = 0.5;
  double stall_timeout_s = 60.0;
  bool no_merge = false;
  int test_kill_shard = -1;  // failure injection for CI, see --help
};

void print_usage() {
  std::printf(
      "usage: launch --spec FILE [options]\n"
      "\n"
      "  --spec FILE        spec file: `kind corpus|table1|transfer`, then\n"
      "                     worker CLI flags one or more per line (required)\n"
      "  --dir PATH         shard + artifact directory (default .)\n"
      "  --shards N         total shard count (default 1)\n"
      "  --workers K        max concurrent worker processes\n"
      "                     (default min(shards, hardware threads))\n"
      "  --retries R        retry budget per shard (default 3)\n"
      "  --backoff S        initial retry backoff seconds, doubling per\n"
      "                     failure, capped at 30 (default 0.5)\n"
      "  --stall-timeout S  kill a worker silent for S seconds (default 60;\n"
      "                     0 disables)\n"
      "  --bin-dir PATH     worker binary directory (default: launch's own)\n"
      "  --no-merge         stop after the shards, skip the merge\n"
      "  --test-kill-shard K  failure injection (CI): SIGKILL shard K's\n"
      "                     first attempt at its first committed unit, so\n"
      "                     the retry must resume mid-shard\n"
      "\n"
      "Workers inherit the environment (QAOAML_THREADS etc.); a re-run of\n"
      "an interrupted launch resumes every shard from its checkpoint.\n");
}

bool parse_args(int argc, char** argv, CliOptions& options) {
  const std::pair<const char*, std::function<bool(const char*)>>
      value_flags[] = {
          {"--spec",
           [&](const char* v) {
             options.spec_path = v;
             return true;
           }},
          {"--dir",
           [&](const char* v) {
             options.directory = v;
             return true;
           }},
          {"--bin-dir",
           [&](const char* v) {
             options.bin_dir = v;
             return true;
           }},
          {"--shards", [&](const char* v) { return to_int(v, options.shards); }},
          {"--workers",
           [&](const char* v) { return to_int(v, options.workers); }},
          {"--retries",
           [&](const char* v) { return to_int(v, options.retries); }},
          {"--backoff",
           [&](const char* v) { return to_double(v, options.backoff_s); }},
          {"--stall-timeout",
           [&](const char* v) {
             return to_double(v, options.stall_timeout_s);
           }},
          {"--test-kill-shard",
           [&](const char* v) { return to_int(v, options.test_kill_shard); }},
      };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      std::exit(0);
    } else if (arg == "--no-merge") {
      options.no_merge = true;
    } else {
      const auto* entry = std::find_if(
          std::begin(value_flags), std::end(value_flags),
          [&](const auto& flag) { return arg == flag.first; });
      if (entry == std::end(value_flags)) {
        std::fprintf(stderr, "launch: unknown option %s\n", arg.c_str());
        return false;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "launch: %s needs a value\n", arg.c_str());
        return false;
      }
      if (!entry->second(argv[++i])) {
        std::fprintf(stderr, "launch: invalid value '%s' for %s\n", argv[i],
                     arg.c_str());
        return false;
      }
    }
  }
  if (options.spec_path.empty()) {
    std::fprintf(stderr, "launch: --spec is required\n");
    return false;
  }
  if (options.shards < 1) {
    std::fprintf(stderr, "launch: --shards must be >= 1\n");
    return false;
  }
  if (options.workers < 0) {
    std::fprintf(stderr, "launch: --workers must be >= 1\n");
    return false;
  }
  if (options.retries < 0) {
    std::fprintf(stderr, "launch: --retries must be >= 0\n");
    return false;
  }
  return true;
}

/// Parses the line-oriented spec: a required `kind` directive plus
/// verbatim worker flags.  Lines are split on whitespace, `#` starts a
/// comment line.
Spec parse_spec(const std::string& path) {
  std::ifstream is(path);
  qaoaml::require(is.good(), "launch: cannot open spec " + path);
  Spec spec;
  std::string line;
  while (std::getline(is, line)) {
    std::istringstream tokens(line);
    std::string token;
    if (!(tokens >> token) || token[0] == '#') continue;
    if (token == "kind") {
      qaoaml::require(spec.kind.empty(),
                      "launch: spec has more than one kind line");
      qaoaml::require(static_cast<bool>(tokens >> spec.kind),
                      "launch: spec kind line needs a value");
      qaoaml::require(spec.kind == "corpus" || spec.kind == "table1" ||
                          spec.kind == "transfer",
                      "launch: unknown kind '" + spec.kind +
                          "' (want corpus | table1 | transfer)");
      continue;
    }
    // Forbid flags launch owns: the shard layout and protocol flags
    // must come from launch itself or the merge would not line up.
    do {
      for (const char* reserved :
           {"--dir", "--shards", "--shard", "--merge-only", "--no-merge",
            "--progress-stream"}) {
        qaoaml::require(token != reserved,
                        "launch: spec must not set " + std::string(reserved) +
                            " (launch passes it per invocation)");
      }
      spec.args.push_back(token);
    } while (tokens >> token);
  }
  qaoaml::require(!spec.kind.empty(), "launch: spec is missing a kind line");
  return spec;
}

std::string worker_binary(const Spec& spec) {
  if (spec.kind == "corpus") return "generate_corpus";
  if (spec.kind == "table1") return "run_table1";
  return "run_transfer";
}

/// Per-kind shard data file, whose `.lock` sidecar the stall detector
/// probes (mirrors the *_shard_path conventions in src/core/).
std::string shard_data_path(const Spec& spec, const std::string& directory,
                            int shard, int shards) {
  const std::string stem = spec.kind == "corpus"    ? "corpus"
                           : spec.kind == "table1" ? "table1"
                                                    : "transfer";
  return (std::filesystem::path(directory) /
          (stem + ".shard" + std::to_string(shard) + "of" +
           std::to_string(shards) + ".txt"))
      .string();
}

/// Directory of this very executable (the worker binaries are built
/// next to it); falls back to argv[0]'s directory.
std::string own_binary_dir(const char* argv0) {
  std::error_code ec;
  const std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec) return self.parent_path().string();
  return std::filesystem::absolute(argv0).parent_path().string();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  try {
    if (!parse_args(argc, argv, options)) {
      print_usage();
      return 2;
    }
    const Spec spec = parse_spec(options.spec_path);
    const std::string bin_dir =
        options.bin_dir.empty() ? own_binary_dir(argv[0]) : options.bin_dir;
    const std::string binary =
        (std::filesystem::path(bin_dir) / worker_binary(spec)).string();
    qaoaml::require(std::filesystem::exists(binary),
                    "launch: worker binary not found: " + binary +
                        " (use --bin-dir)");
    std::filesystem::create_directories(options.directory);

    qaoaml::core::OrchestratorConfig config;
    config.shard_count = options.shards;
    config.workers =
        options.workers > 0
            ? options.workers
            : std::max(1, std::min<int>(options.shards,
                                        static_cast<int>(
                                            std::thread::hardware_concurrency())));
    config.retry_budget = options.retries;
    config.backoff_initial_s = options.backoff_s;
    config.stall_timeout_s = options.stall_timeout_s;
    config.progress_out = stdout;
    config.worker_argv = [&](int shard) {
      std::vector<std::string> worker{binary};
      worker.insert(worker.end(), spec.args.begin(), spec.args.end());
      const std::vector<std::string> tail{
          "--dir",    options.directory,
          "--shards", std::to_string(options.shards),
          "--shard",  std::to_string(shard),
          "--no-merge", "--progress-stream"};
      worker.insert(worker.end(), tail.begin(), tail.end());
      return worker;
    };
    config.lock_path = [&](int shard) {
      return shard_data_path(spec, options.directory, shard, options.shards) +
             ".lock";
    };
    if (options.test_kill_shard >= 0) {
      // CI failure injection: kill the target shard's FIRST attempt as
      // soon as it has committed a unit (progress done > 0), so the
      // retry must exercise mid-shard resume, not a fresh start.
      config.kill_injector = [&](int shard, int attempt,
                                 const qaoaml::proto::Event& event) {
        return shard == options.test_kill_shard && attempt == 0 &&
               event.kind == qaoaml::proto::Event::Kind::kProgress &&
               event.done > 0;
      };
    }

    std::printf("[launch] %s: %d shards, %d workers, retry budget %d -> %s\n",
                spec.kind.c_str(), options.shards, config.workers,
                options.retries, options.directory.c_str());
    const qaoaml::core::OrchestratorReport report =
        qaoaml::core::run_shards(config);
    for (const qaoaml::core::ShardOutcome& shard : report.shards) {
      std::printf("[launch] shard %d: %s after %d attempt%s%s%s\n",
                  shard.shard, shard.succeeded ? "ok" : "FAILED",
                  shard.attempts, shard.attempts == 1 ? "" : "s",
                  shard.error.empty() ? "" : " — last error: ",
                  shard.error.c_str());
    }
    std::printf("[launch] %zu shards in %.2f s\n", report.shards.size(),
                report.seconds);
    if (!report.succeeded) {
      std::fprintf(stderr, "launch: shards failed; artifact not merged\n");
      return 1;
    }
    if (options.no_merge) return 0;

    // Merge through the worker's own --merge-only path: the artifact
    // stays bit-identical to a single-process run because the merge
    // code IS the single-process merge code.
    std::vector<std::string> merge_argv{binary};
    merge_argv.insert(merge_argv.end(), spec.args.begin(), spec.args.end());
    const std::vector<std::string> tail{"--dir", options.directory, "--shards",
                                        std::to_string(options.shards),
                                        "--merge-only"};
    merge_argv.insert(merge_argv.end(), tail.begin(), tail.end());
    qaoaml::Subprocess merge = qaoaml::Subprocess::spawn(merge_argv);
    std::string line;
    while (merge.read_line(line, -1) == qaoaml::Subprocess::ReadResult::kLine) {
      std::printf("[merge] %s\n", line.c_str());
    }
    const qaoaml::Subprocess::ExitStatus status = merge.wait();
    qaoaml::require(status.success(),
                    "launch: merge failed (" + status.describe() + ")");
    std::printf("[launch] merged artifact complete\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "launch: %s\n", e.what());
    return 1;
  }
  return 0;
}
