// Command-line driver for training and serving predictor banks — the
// train-once / serve-many half of the ML layer.
//
// Train mode generates (or loads from a cache) a corpus of one graph
// family, trains one bank of the chosen model kind on ALL of it (eval
// instances live in separate experiments, so no split is held out
// here), and optionally serializes the bank; load mode deserializes a
// bank trained by any earlier process and serves predictions from it.
// Because predictions are bit-identical after a reload (the
// ml/serialize.hpp contract), the two modes are interchangeable
// downstream — CI diffs their --predict output to prove it.
//
//   # train on a family and save the bank:
//   train_predictor --train-family small-world --model GPR
//       --graphs 64 --depth 4 --save bank.qpb --predict 0.6,0.4,3
//
//   # a different process serves the same predictions:
//   train_predictor --load bank.qpb --predict 0.6,0.4,3
//
// Thread count comes from QAOAML_THREADS; see docs/CONFIGURATION.md
// for every knob and docs/MODELS.md for the bank file format.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iterator>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "core/parameter_dataset.hpp"
#include "core/parameter_predictor.hpp"

namespace {

using qaoaml::cli::to_double;
using qaoaml::cli::to_int;
using qaoaml::cli::to_u64;
using qaoaml::core::DatasetConfig;
using qaoaml::core::ParameterDataset;
using qaoaml::core::ParameterPredictor;
using qaoaml::core::PredictorConfig;

struct PredictRequest {
  double gamma1 = 0.0;
  double beta1 = 0.0;
  int target_depth = 2;
};

struct CliOptions {
  DatasetConfig dataset;
  PredictorConfig predictor;
  std::string corpus_cache;  // when set: load_or_generate through this path
  std::string save_path;
  std::string load_path;
  std::vector<PredictRequest> predictions;
};

void print_usage() {
  std::printf(
      "usage: train_predictor [options]\n"
      "\n"
      "training corpus (ignored with --load):\n"
      "  --train-family F  erdos-renyi (default) | regular |\n"
      "                    weighted-erdos-renyi | small-world | mixed\n"
      "  --graphs N        corpus size (default 64)\n"
      "  --nodes N         nodes per graph (default 8)\n"
      "  --depth D         corpus depths 1..D = predictable target depths\n"
      "                    (default 4)\n"
      "  --restarts R      multistart count per (graph, depth) (default 8)\n"
      "  --optimizer S     L-BFGS-B | Nelder-Mead | SLSQP | COBYLA\n"
      "  --seed S          master seed (default 42)\n"
      "  --edge-prob F     ER edge probability (default 0.5)\n"
      "  --degree D        regular-family degree (default 3)\n"
      "  --weight S        weighted-ER law: uniform | gaussian\n"
      "  --weight-low F    uniform lower bound     --weight-high F  upper\n"
      "  --weight-mean F   gaussian mean           --weight-sd F    std dev\n"
      "  --neighbors K     small-world ring degree --rewire-prob F  rewiring\n"
      "  --corpus PATH     cache the corpus at PATH (resumable generation\n"
      "                    belongs to generate_corpus; this caches whole\n"
      "                    files)\n"
      "\n"
      "bank:\n"
      "  --model M         GPR (default) | LM | RTREE | RSVM\n"
      "  --save PATH       serialize the trained bank to PATH\n"
      "  --load PATH       deserialize a bank instead of training\n"
      "\n"
      "serving:\n"
      "  --predict G,B,P   print the predicted depth-P angles for the\n"
      "                    depth-1 optimum (gamma1=G, beta1=B); repeatable\n"
      "\n"
      "Prediction lines print with 17 significant digits and are\n"
      "byte-identical between a just-trained bank and a reloaded one.\n");
}

/// Parses "gamma1,beta1,depth".
bool to_predict_request(const char* text, PredictRequest& out) {
  const std::string s = text;
  const auto c1 = s.find(',');
  const auto c2 = s.find(',', c1 == std::string::npos ? c1 : c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos) return false;
  return to_double(s.substr(0, c1).c_str(), out.gamma1) &&
         to_double(s.substr(c1 + 1, c2 - c1 - 1).c_str(), out.beta1) &&
         to_int(s.substr(c2 + 1).c_str(), out.target_depth);
}

bool parse_args(int argc, char** argv, CliOptions& options) {
  const std::pair<const char*, std::function<bool(const char*)>>
      value_flags[] = {
          {"--train-family",
           [&](const char* v) {
             options.dataset.ensemble.family =
                 qaoaml::core::family_from_string(v);  // throws on typo
             return true;
           }},
          {"--graphs",
           [&](const char* v) { return to_int(v, options.dataset.num_graphs); }},
          {"--nodes",
           [&](const char* v) { return to_int(v, options.dataset.num_nodes); }},
          {"--depth",
           [&](const char* v) { return to_int(v, options.dataset.max_depth); }},
          {"--restarts",
           [&](const char* v) { return to_int(v, options.dataset.restarts); }},
          {"--optimizer",
           [&](const char* v) {
             options.dataset.optimizer =
                 qaoaml::optim::optimizer_from_string(v);  // throws on typo
             return true;
           }},
          {"--seed",
           [&](const char* v) { return to_u64(v, options.dataset.seed); }},
          {"--edge-prob",
           [&](const char* v) {
             return to_double(v, options.dataset.ensemble.edge_probability);
           }},
          {"--degree",
           [&](const char* v) {
             return to_int(v, options.dataset.ensemble.degree);
           }},
          {"--weight",
           [&](const char* v) {
             const std::string kind = v;
             if (kind == "uniform") {
               options.dataset.ensemble.weight =
                   qaoaml::core::WeightKind::kUniform;
             } else if (kind == "gaussian") {
               options.dataset.ensemble.weight =
                   qaoaml::core::WeightKind::kGaussian;
             } else {
               return false;
             }
             return true;
           }},
          {"--weight-low",
           [&](const char* v) {
             return to_double(v, options.dataset.ensemble.weight_low);
           }},
          {"--weight-high",
           [&](const char* v) {
             return to_double(v, options.dataset.ensemble.weight_high);
           }},
          {"--weight-mean",
           [&](const char* v) {
             return to_double(v, options.dataset.ensemble.weight_mean);
           }},
          {"--weight-sd",
           [&](const char* v) {
             return to_double(v, options.dataset.ensemble.weight_sd);
           }},
          {"--neighbors",
           [&](const char* v) {
             return to_int(v, options.dataset.ensemble.neighbors);
           }},
          {"--rewire-prob",
           [&](const char* v) {
             return to_double(v, options.dataset.ensemble.rewire_probability);
           }},
          {"--corpus",
           [&](const char* v) {
             options.corpus_cache = v;
             return true;
           }},
          {"--model",
           [&](const char* v) {
             options.predictor.model =
                 qaoaml::ml::regressor_from_string(v);  // throws on typo
             return true;
           }},
          {"--save",
           [&](const char* v) {
             options.save_path = v;
             return true;
           }},
          {"--load",
           [&](const char* v) {
             options.load_path = v;
             return true;
           }},
          {"--predict",
           [&](const char* v) {
             PredictRequest request;
             if (!to_predict_request(v, request)) return false;
             options.predictions.push_back(request);
             return true;
           }},
      };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      std::exit(0);
    }
    const auto* entry = std::find_if(
        std::begin(value_flags), std::end(value_flags),
        [&](const auto& flag) { return arg == flag.first; });
    if (entry == std::end(value_flags)) {
      std::fprintf(stderr, "train_predictor: unknown option %s\n", arg.c_str());
      return false;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "train_predictor: %s needs a value\n", arg.c_str());
      return false;
    }
    if (!entry->second(argv[++i])) {
      std::fprintf(stderr, "train_predictor: invalid value '%s' for %s\n",
                   argv[i], arg.c_str());
      return false;
    }
  }
  if (!options.load_path.empty() && !options.save_path.empty()) {
    std::fprintf(stderr,
                 "train_predictor: --load and --save conflict (a loaded bank "
                 "is already on disk)\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  // A serving-friendly default scale (the paper's 330-graph corpus is
  // generate_corpus territory).
  options.dataset.num_graphs = 64;
  options.dataset.max_depth = 4;
  options.dataset.restarts = 8;
  try {
    if (!parse_args(argc, argv, options)) {
      print_usage();
      return 2;
    }

    ParameterPredictor bank(options.predictor);
    if (!options.load_path.empty()) {
      bank = ParameterPredictor::load(options.load_path);
      std::printf("loaded %s bank (max depth %d) from %s\n",
                  qaoaml::ml::to_string(bank.config().model).c_str(),
                  bank.max_depth(), options.load_path.c_str());
    } else {
      const ParameterDataset corpus =
          options.corpus_cache.empty()
              ? ParameterDataset::generate(options.dataset)
              : ParameterDataset::load_or_generate(options.dataset,
                                                   options.corpus_cache);
      std::vector<std::size_t> all(corpus.size());
      std::iota(all.begin(), all.end(), std::size_t{0});
      bank.train(corpus, all);
      std::printf(
          "trained %s bank on %zu %s instances (%zu optimal parameters, "
          "max depth %d)\n",
          qaoaml::ml::to_string(bank.config().model).c_str(), corpus.size(),
          to_string(options.dataset.ensemble.family).c_str(),
          corpus.total_parameter_count(), bank.max_depth());
      if (!options.save_path.empty()) {
        bank.save(options.save_path);
        std::printf("saved bank -> %s\n", options.save_path.c_str());
      }
    }

    for (const PredictRequest& request : options.predictions) {
      const std::vector<double> angles =
          bank.predict(request.gamma1, request.beta1, request.target_depth);
      // 17 significant digits: byte-comparable across train/load runs.
      std::printf("predict %.17g %.17g %d:", request.gamma1, request.beta1,
                  request.target_depth);
      for (const double a : angles) std::printf(" %.17g", a);
      std::printf("\n");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "train_predictor: %s\n", e.what());
    return 1;
  }
  return 0;
}
