// Shard/thread scaling of the corpus-generation pipeline.
//
// Two sweeps over the same (small, env-scalable) corpus:
//  1. thread scaling: in-memory generation under QAOAML worker counts
//     1, 2, 4, ... up to the hardware concurrency;
//  2. shard scaling: the full run-shards-then-merge flow at 1, 2 and 4
//     shards (sequential in one process, so the interesting number is
//     the sharding + serialization overhead, not speedup), with the
//     merged bytes checked identical to the single-shard output.
//
//   ./build/bench/bench_corpus_pipeline
//   QAOAML_GRAPHS=64 QAOAML_MAX_DEPTH=4 ./build/bench/bench_corpus_pipeline
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "core/corpus_pipeline.hpp"

using namespace qaoaml;

namespace {

std::string file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

}  // namespace

int main() {
  core::DatasetConfig config;
  config.num_graphs = env_int("QAOAML_GRAPHS", 24);
  config.num_nodes = env_int("QAOAML_NODES", 8);
  config.max_depth = env_int("QAOAML_MAX_DEPTH", 3);
  config.restarts = env_int("QAOAML_RESTARTS", 5);
  config.seed = static_cast<std::uint64_t>(env_int("QAOAML_SEED", 42));

  std::printf("corpus pipeline scaling: %d graphs x depths 1..%d, "
              "%d restarts\n\n",
              config.num_graphs, config.max_depth, config.restarts);

  // -- thread scaling (in-memory generation) -----------------------------
  const int hw = std::max(static_cast<int>(std::thread::hardware_concurrency()), 1);
  // Powers of two plus the actual hardware concurrency, so the default
  // QAOAML_THREADS configuration is always measured (also on e.g.
  // 6- or 12-core machines).
  std::vector<int> sweep;
  for (int t = 1; t < hw; t *= 2) sweep.push_back(t);
  sweep.push_back(hw);
  std::printf("threads    seconds    instances/sec    speedup\n");
  double t1_seconds = 0.0;
  for (const int threads : sweep) {
    ScopedThreadCount scoped(threads);
    Timer timer;
    const auto records = core::CorpusPipeline::generate_records(config);
    const double seconds = timer.seconds();
    if (threads == 1) t1_seconds = seconds;
    std::printf("%7d %10.2f %16.2f %10.2fx\n", threads, seconds,
                static_cast<double>(records.size()) / seconds,
                t1_seconds / seconds);
  }

  // -- shard scaling (run all shards + merge, bytes verified) ------------
  const std::filesystem::path base =
      std::filesystem::temp_directory_path() / "qaoaml_bench_corpus";
  std::filesystem::remove_all(base);
  std::printf("\n shards    seconds    instances/sec    merged bytes\n");
  std::string reference;
  bool mismatch = false;
  for (const int shards : {1, 2, 4}) {
    const std::string dir = (base / std::to_string(shards)).string();
    const std::string out = dir + "/corpus.txt";
    Timer timer;
    for (int s = 0; s < shards; ++s) {
      core::CorpusShardConfig shard_config;
      shard_config.dataset = config;
      shard_config.shard = core::ShardSpec{s, shards};
      shard_config.directory = dir;
      core::CorpusPipeline::run_shard(shard_config);
    }
    core::CorpusPipeline::merge_shards(config, shards, dir, out);
    const double seconds = timer.seconds();
    const std::string bytes = file_bytes(out);
    if (shards == 1) reference = bytes;
    if (bytes != reference) mismatch = true;
    std::printf("%7d %10.2f %16.2f %10zu  %s\n", shards, seconds,
                static_cast<double>(config.num_graphs) / seconds,
                bytes.size(),
                bytes == reference ? "(identical)" : "(MISMATCH!)");
  }
  std::filesystem::remove_all(base);
  return mismatch ? 1 : 0;
}
