// Ablation A3: initialization strategies for the target-depth loop —
// uniform random, the tutorial linear-ramp warm start, the INTERP
// bootstrap (Zhou et al.), and the paper's ML prediction.
//
// Contextualizes the contribution: ML initialization must beat random
// clearly and be competitive with (or beat) the non-learned heuristics
// while needing no extra optimization stages beyond depth 1.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/angles.hpp"
#include "core/two_level_solver.hpp"
#include "stats/descriptive.hpp"

using namespace qaoaml;

int main() {
  const bench::BenchConfig config = bench::bench_config_from_env();
  bench::print_header("Ablation A3: initialization strategies", config);

  const core::ParameterDataset dataset = bench::load_corpus(config);
  const bench::Split split = bench::split_20_80(dataset, config);
  const core::ParameterPredictor predictor =
      bench::train_default_predictor(dataset, split);

  optim::Options options;
  options.ftol = 1e-6;
  const optim::OptimizerKind opt = optim::OptimizerKind::kLbfgsb;

  Table table({"p", "Strategy", "mean FC", "mean AR"});
  const int max_target = std::min(5, dataset.max_depth());
  for (int p = 3; p <= max_target; p += 2) {
    std::vector<double> fc_random, ar_random;
    std::vector<double> fc_ramp, ar_ramp;
    std::vector<double> fc_interp, ar_interp;
    std::vector<double> fc_ml, ar_ml;

    for (const std::size_t t : split.test) {
      const core::InstanceRecord& record = dataset.records()[t];
      const core::MaxCutQaoa instance(record.problem, p);
      Rng rng(config.seed + 31 * t + static_cast<std::uint64_t>(p));

      const core::QaoaRun random_run =
          core::solve_random_init(instance, opt, rng, options);
      fc_random.push_back(static_cast<double>(random_run.function_calls));
      ar_random.push_back(random_run.approximation_ratio);

      const core::QaoaRun ramp_run = core::solve_from(
          instance, opt, core::linear_ramp_angles(p), options);
      fc_ramp.push_back(static_cast<double>(ramp_run.function_calls));
      ar_ramp.push_back(ramp_run.approximation_ratio);

      // INTERP needs the depth-(p-1) optimum: account for a full
      // bootstrap chain 1 -> 2 -> ... -> p from one random start.
      int chain_fc = 0;
      std::vector<double> params;
      for (int q = 1; q <= p; ++q) {
        const core::MaxCutQaoa stage(record.problem, q);
        const core::QaoaRun run =
            q == 1 ? core::solve_random_init(stage, opt, rng, options)
                   : core::solve_from(stage, opt,
                                      core::interp_angles(params), options);
        chain_fc += run.function_calls;
        params = run.params;
      }
      fc_interp.push_back(static_cast<double>(chain_fc));
      const core::MaxCutQaoa final_stage(record.problem, p);
      ar_interp.push_back(final_stage.approximation_ratio(params));

      core::TwoLevelConfig flow;
      flow.options = options;
      const core::AcceleratedRun ml =
          core::solve_two_level(record.problem, p, predictor, flow, rng);
      fc_ml.push_back(static_cast<double>(ml.total_function_calls));
      ar_ml.push_back(ml.final.approximation_ratio);
    }

    const auto add = [&](const char* name, const std::vector<double>& fc,
                         const std::vector<double>& ar) {
      table.add_row({Table::num(static_cast<long long>(p)), name,
                     Table::num(stats::mean(fc), 1),
                     Table::num(stats::mean(ar))});
    };
    add("random", fc_random, ar_random);
    add("linear ramp", fc_ramp, ar_ramp);
    add("INTERP chain", fc_interp, ar_interp);
    add("ML two-level", fc_ml, ar_ml);
    table.add_separator();
  }
  table.print(std::cout);
  std::printf("\nreading: ML init includes the depth-1 stage cost; INTERP "
              "includes its whole bootstrap chain.  The ML flow avoids the "
              "chain while matching warm-start quality.\n");
  return 0;
}
