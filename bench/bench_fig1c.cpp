// Fig. 1(c) reproduction: approximation-ratio and run-time (QC calls)
// distributions for QAOA MaxCut on four 8-node 3-regular graphs with
// depths p = 1..5 (random initialization, L-BFGS-B).
//
// Shape to compare against the paper: AR improves monotonically with
// depth while the spread of function calls grows with depth.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/qaoa_solver.hpp"
#include "stats/descriptive.hpp"

using namespace qaoaml;

int main() {
  const bench::BenchConfig config = bench::bench_config_from_env();
  bench::print_header(
      "Fig. 1(c): AR and QC-call distributions vs depth (4 cubic graphs)",
      config);

  const std::vector<graph::Graph> graphs =
      bench::four_cubic_graphs(config.seed);
  const int restarts = config.restarts;

  Table table({"Graph", "p", "best AR", "mean AR", "SD AR", "mean FC",
               "SD FC"});
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    for (int p = 1; p <= 5; ++p) {
      const core::MaxCutQaoa instance(graphs[g], p);
      Rng rng(config.seed + 1000 * g + static_cast<std::uint64_t>(p));
      optim::Options options;
      options.ftol = 1e-6;
      const core::MultistartRuns runs = core::solve_multistart(
          instance, optim::OptimizerKind::kLbfgsb, restarts, rng, options);

      std::vector<double> ars;
      std::vector<double> fcs;
      for (const core::QaoaRun& run : runs.runs) {
        ars.push_back(run.approximation_ratio);
        fcs.push_back(static_cast<double>(run.function_calls));
      }
      table.add_row({"G" + std::to_string(g + 1),
                     Table::num(static_cast<long long>(p)),
                     Table::num(runs.best.approximation_ratio),
                     Table::num(stats::mean(ars)), Table::num(stats::stddev(ars)),
                     Table::num(stats::mean(fcs), 1),
                     Table::num(stats::stddev(fcs), 1)});
    }
    if (g + 1 < graphs.size()) table.add_separator();
  }
  table.print(std::cout);
  std::printf("\nshape check: best AR rises with p; FC mean/spread grow "
              "with p (paper Fig. 1(c)).\n");
  return 0;
}
