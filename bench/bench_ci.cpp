// CI benchmark-regression gate.
//
// Runs a pinned subset of the performance-critical paths (fused QAOA
// objective, corpus-pipeline throughput, batched multistart) `--repeats`
// times each, reports the per-metric MEDIAN (robust to one noisy run on
// a shared CI box), writes the result as a flat JSON file, and — when
// given a baseline JSON — fails on any median regression beyond
// `--max-regression` (default 0.25, i.e. 25%).
//
// Every metric is in seconds-per-fixed-workload, so "bigger than
// baseline" always means "slower".  Timings are hardware-dependent: a
// baseline is only meaningful on the machine class it was measured on
// (for CI: the runner class; refresh instructions live next to the
// bench-regression job in .github/workflows/ci.yml).
//
//   bench_ci --repeats 3 --out BENCH_ci.json
//   bench_ci --repeats 3 --out BENCH_ci.json --baseline bench/baseline_ci.json
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "core/batch_evaluator.hpp"
#include "core/corpus_pipeline.hpp"
#include "core/parameter_dataset.hpp"
#include "core/parameter_predictor.hpp"
#include "core/qaoa_solver.hpp"
#include "core/serving.hpp"
#include "core/serving_client.hpp"
#include "graph/generators.hpp"
#include "quantum/dispatch.hpp"

using namespace qaoaml;

namespace {

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

/// Seconds for a fixed batch of fused-path objective evaluations
/// (p = 2, 14 qubits — the fused kernels' headline configuration).
double time_fused_objective() {
  Rng rng(7);
  const graph::Graph g = graph::erdos_renyi_gnp(14, 0.5, rng);
  const core::MaxCutQaoa instance(g, 2);
  core::BatchEvaluator evaluator(instance);
  std::vector<double> params(instance.num_parameters(), 0.3);
  Timer timer;
  double sink = 0.0;
  for (int i = 0; i < 200; ++i) {
    params[0] = 0.01 * static_cast<double>(i % 100);
    sink += evaluator.expectation(params);
  }
  const double seconds = timer.seconds();
  // Keep the accumulated value observable so the loop cannot be
  // optimized away.
  if (sink == 42.123456) std::printf("#\n");
  return seconds;
}

/// Seconds for a fixed batch of shot-sampled objective evaluations
/// through the workspace-reusing path (state prep + serial CDF + 2048
/// CDF-inversion draws per call — the inner loop of every shot-noise
/// experiment and of sampled serving requests).
double time_sampled_expectation() {
  Rng rng(13);
  const graph::Graph g = graph::erdos_renyi_gnp(14, 0.5, rng);
  const core::MaxCutQaoa instance(g, 2);
  core::BatchEvaluator evaluator(instance);
  const core::EvalSpec spec = core::EvalSpec::sampled_with(2048, 77);
  std::vector<double> params(instance.num_parameters(), 0.3);
  Timer timer;
  double sink = 0.0;
  for (int i = 0; i < 200; ++i) {
    params[0] = 0.01 * static_cast<double>(i % 100);
    sink += evaluator.evaluate(params, spec);
  }
  const double seconds = timer.seconds();
  if (sink == 42.123456) std::printf("#\n");
  return seconds;
}

/// Seconds to generate a fixed small corpus through the pipeline
/// scheduler (the offline data-generation hot path).
double time_corpus_pipeline() {
  core::DatasetConfig config;
  config.num_graphs = 12;
  config.num_nodes = 8;
  config.max_depth = 2;
  config.restarts = 4;
  config.seed = 42;
  Timer timer;
  const auto records = core::CorpusPipeline::generate_records(config);
  const double seconds = timer.seconds();
  if (records.size() != 12) std::printf("# unexpected corpus size\n");
  return seconds;
}

/// Seconds for one batched multistart (all restarts dispatched as a
/// single batch over the pool).
double time_batched_multistart() {
  Rng rng(11);
  const graph::Graph g = graph::erdos_renyi_gnp(10, 0.5, rng);
  const core::MaxCutQaoa instance(g, 2);
  Rng starts(99);
  Timer timer;
  const core::MultistartRuns runs = core::solve_multistart(
      instance, optim::OptimizerKind::kLbfgsb, 24, starts);
  const double seconds = timer.seconds();
  if (runs.runs.size() != 24) std::printf("# unexpected run count\n");
  return seconds;
}

/// Seconds for a fixed number of predict round trips through an
/// in-process serving daemon (Unix socket + wire framing + scheduler +
/// bank lookup — the serving layer's pure overhead path).  The tiny
/// bank trains once and is shared across repeats; setup stays outside
/// the timed region.
double time_serving_predict() {
  static const std::string bank_path = [] {
    const std::string path = "/tmp/qaoaml_bench_ci_" +
                             std::to_string(::getpid()) + ".qpb";
    core::DatasetConfig config;
    config.num_graphs = 6;
    config.num_nodes = 6;
    config.max_depth = 2;
    config.restarts = 2;
    config.seed = 5;
    const core::ParameterDataset corpus =
        core::ParameterDataset::generate(config);
    core::ParameterPredictor bank;
    std::vector<std::size_t> all(corpus.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    bank.train(corpus, all);
    bank.save(path);
    return path;
  }();

  core::serving::ServerConfig config;
  config.socket_path =
      "/tmp/qaoaml_bench_ci_" + std::to_string(::getpid()) + ".sock";
  config.banks = {{"erdos-renyi", bank_path}};
  config.workers = 1;
  core::serving::Server server(config);
  core::serving::Client client(config.socket_path);

  int failures = 0;
  Timer timer;
  for (int i = 0; i < 400; ++i) {
    const core::serving::Response response = client.predict(
        "erdos-renyi", 0.01 * (i % 90), 0.01 * (i % 60), 2);
    if (!response.ok) ++failures;
  }
  const double seconds = timer.seconds();
  if (failures != 0) std::printf("# serving errors: %d\n", failures);
  return seconds;
}

/// Seconds for a fixed number of p=2 objective evaluations at `qubits`
/// forced onto `tier` — one cell of the SIMD dispatch speedup table
/// ({scalar, avx2, avx512} x {8, 16, 24} qubits).  The iteration counts
/// scale inversely with the state size so every cell times a comparable
/// amount of work.  Returns 0 when this CPU lacks the tier; the gate
/// below reports but never gates a zero (and a baseline captured on a
/// wider machine gates nothing here either, because the metric is then
/// "not in baseline" from the narrow machine's perspective — see main).
double time_simd_objective(quantum::SimdTier tier, int qubits, int iters) {
  if (!quantum::simd_tier_supported(tier)) return 0.0;
  // The instance (and its O(2^n) diagonal precompute) is shared across
  // tiers and repeats; only the amplitude sweeps are timed.
  static std::map<int, std::unique_ptr<core::MaxCutQaoa>> instances;
  std::unique_ptr<core::MaxCutQaoa>& slot = instances[qubits];
  if (slot == nullptr) {
    Rng rng(0x51D0 + static_cast<std::uint64_t>(qubits));
    slot = std::make_unique<core::MaxCutQaoa>(
        graph::erdos_renyi_gnp(qubits, 0.5, rng), 2);
  }
  core::BatchEvaluator evaluator(*slot);
  std::vector<double> params(slot->num_parameters(), 0.3);
  const quantum::ScopedSimdTier guard(tier);
  Timer timer;
  double sink = 0.0;
  for (int i = 0; i < iters; ++i) {
    params[0] = 0.01 * static_cast<double>(i % 100);
    sink += evaluator.expectation(params);
  }
  const double seconds = timer.seconds();
  if (sink == 42.123456) std::printf("#\n");
  return seconds;
}

/// Minimal flat-JSON number extraction ("key": value), tolerant of
/// everything else in the file — enough for the baseline format this
/// tool itself writes.
bool json_number(const std::string& text, const std::string& key,
                 double& out) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t colon = text.find(':', at + needle.size());
  if (colon == std::string::npos) return false;
  try {
    out = std::stod(text.substr(colon + 1));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int repeats = 3;
  double max_regression = 0.25;
  std::string out_path;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_ci: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--repeats") repeats = std::atoi(value());
    else if (arg == "--out") out_path = value();
    else if (arg == "--baseline") baseline_path = value();
    else if (arg == "--max-regression") max_regression = std::atof(value());
    else {
      std::fprintf(stderr,
                   "usage: bench_ci [--repeats N] [--out FILE] "
                   "[--baseline FILE] [--max-regression F]\n");
      return 2;
    }
  }
  if (repeats < 1) repeats = 1;

  struct Metric {
    const char* name;
    double (*run)();
  };
  using quantum::SimdTier;
  const Metric metrics[] = {
      {"fused_objective_s", &time_fused_objective},
      {"sampled_expectation_s", &time_sampled_expectation},
      {"corpus_pipeline_s", &time_corpus_pipeline},
      {"multistart_batched_s", &time_batched_multistart},
      {"serving_predict_s", &time_serving_predict},
      // The SIMD dispatch speedup table: every tier on every state
      // size, so a committed baseline pins both absolute perf and the
      // tier-over-scalar ratios (README quotes them from this table).
      {"simd_scalar_q8_s",
       [] { return time_simd_objective(SimdTier::kScalar, 8, 4000); }},
      {"simd_avx2_q8_s",
       [] { return time_simd_objective(SimdTier::kAvx2, 8, 4000); }},
      {"simd_avx512_q8_s",
       [] { return time_simd_objective(SimdTier::kAvx512, 8, 4000); }},
      {"simd_scalar_q16_s",
       [] { return time_simd_objective(SimdTier::kScalar, 16, 60); }},
      {"simd_avx2_q16_s",
       [] { return time_simd_objective(SimdTier::kAvx2, 16, 60); }},
      {"simd_avx512_q16_s",
       [] { return time_simd_objective(SimdTier::kAvx512, 16, 60); }},
      {"simd_scalar_q24_s",
       [] { return time_simd_objective(SimdTier::kScalar, 24, 2); }},
      {"simd_avx2_q24_s",
       [] { return time_simd_objective(SimdTier::kAvx2, 24, 2); }},
      {"simd_avx512_q24_s",
       [] { return time_simd_objective(SimdTier::kAvx512, 24, 2); }},
  };

  std::map<std::string, double> medians;
  std::printf("bench_ci: %d repeats, %d threads\n", repeats,
              default_thread_count());
  for (const Metric& metric : metrics) {
    std::vector<double> samples;
    for (int r = 0; r < repeats; ++r) samples.push_back(metric.run());
    medians[metric.name] = median(samples);
    std::printf("  %-22s median %.4f s  (", metric.name, medians[metric.name]);
    for (std::size_t s = 0; s < samples.size(); ++s) {
      std::printf("%s%.4f", s ? " " : "", samples[s]);
    }
    std::printf(")\n");
  }

  if (!out_path.empty()) {
    std::ofstream os(out_path);
    os.precision(6);
    os << "{\n  \"schema\": \"qaoaml-bench-ci-v1\",\n  \"repeats\": "
       << repeats << ",\n  \"threads\": " << default_thread_count();
    for (const auto& [name, value] : medians) {
      os << ",\n  \"" << name << "\": " << std::fixed << value;
    }
    os << "\n}\n";
    if (!os.good()) {
      std::fprintf(stderr, "bench_ci: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (baseline_path.empty()) return 0;

  std::ifstream is(baseline_path);
  if (!is.good()) {
    std::fprintf(stderr, "bench_ci: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string baseline = buf.str();

  bool failed = false;
  // Timings only compare within one thread configuration: a baseline
  // captured at threads=1 gated against a 4-thread run would let a real
  // 3x regression in the parallel paths sail under the tolerance.
  double base_threads = 0.0;
  if (json_number(baseline, "threads", base_threads) &&
      static_cast<int>(base_threads) != default_thread_count()) {
    std::fprintf(stderr,
                 "bench_ci: baseline was measured with %d threads but this "
                 "run uses %d (set QAOAML_THREADS=%d or refresh %s)\n",
                 static_cast<int>(base_threads), default_thread_count(),
                 static_cast<int>(base_threads), baseline_path.c_str());
    return 1;
  }
  for (const auto& [name, value] : medians) {
    if (value <= 0.0) {
      // A SIMD tier this CPU lacks: reported, never gated.
      std::printf("  %-22s UNSUPPORTED ON THIS CPU (not gated)\n",
                  name.c_str());
      continue;
    }
    double base = 0.0;
    if (!json_number(baseline, name, base) || base <= 0.0) {
      // A metric added after the baseline was captured is reported, not
      // gated — refresh the baseline to start gating it.
      std::printf("  %-22s NOT IN BASELINE (refresh %s to gate it)\n",
                  name.c_str(), baseline_path.c_str());
      continue;
    }
    const double ratio = value / base;
    const bool regressed = ratio > 1.0 + max_regression;
    std::printf("  %-22s %.4f s vs baseline %.4f s  (%+.1f%%)%s\n",
                name.c_str(), value, base, 100.0 * (ratio - 1.0),
                regressed ? "  REGRESSION" : "");
    if (regressed) failed = true;
  }
  if (failed) {
    std::fprintf(stderr,
                 "bench_ci: median regression beyond %.0f%% against %s\n",
                 100.0 * max_regression, baseline_path.c_str());
    return 1;
  }
  return 0;
}
