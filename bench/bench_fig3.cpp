// Fig. 3 reproduction: how a fixed stage's optimal parameters move as
// the total circuit depth p grows (single 8-node 3-regular graph,
// best-of-restarts L-BFGS-B per depth).
//
// Shape to compare against the paper: gamma_iOPT *decreases* with the
// circuit depth p while beta_iOPT *increases*.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/angles.hpp"
#include "core/qaoa_solver.hpp"
#include "stats/correlation.hpp"

using namespace qaoaml;

int main() {
  const bench::BenchConfig config = bench::bench_config_from_env();
  bench::print_header(
      "Fig. 3: optimal gamma_i / beta_i of each stage vs total depth p",
      config);

  const graph::Graph g = bench::four_cubic_graphs(config.seed).front();
  const int max_p = 5;

  optim::Options options;
  options.ftol = 1e-6;

  // Optimal parameters per depth, reusing the corpus recipe (random
  // multistart + ramp + INTERP bootstrap).
  std::vector<std::vector<double>> best(static_cast<std::size_t>(max_p));
  Rng rng(config.seed * 3 + 1);
  for (int p = 1; p <= max_p; ++p) {
    const core::MaxCutQaoa instance(g, p);
    core::MultistartRuns runs = core::solve_multistart(
        instance, optim::OptimizerKind::kLbfgsb, config.restarts, rng,
        options);
    for (const std::vector<double>& seed :
         {core::linear_ramp_angles(p),
          p >= 2 ? core::interp_angles(best[static_cast<std::size_t>(p - 2)])
                 : core::linear_ramp_angles(p)}) {
      core::QaoaRun run =
          core::solve_from(instance, optim::OptimizerKind::kLbfgsb, seed,
                           options);
      const double tie_eps =
          1e-4 * std::max(1.0, std::abs(runs.best.expectation));
      if (run.expectation >= runs.best.expectation - tie_eps) {
        runs.best = std::move(run);  // prefer the pattern basin on ties
      }
    }
    best[static_cast<std::size_t>(p - 1)] = runs.best.params;
  }

  for (const bool is_gamma : {true, false}) {
    std::printf("\n-- optimal %s_i vs depth --\n", is_gamma ? "gamma" : "beta");
    std::vector<std::string> header{"p"};
    for (int i = 1; i <= max_p; ++i) {
      header.push_back(std::string(is_gamma ? "g" : "b") + std::to_string(i));
    }
    Table table(header);
    for (int p = 1; p <= max_p; ++p) {
      std::vector<std::string> row{Table::num(static_cast<long long>(p))};
      const std::vector<double>& params = best[static_cast<std::size_t>(p - 1)];
      for (int i = 1; i <= max_p; ++i) {
        row.push_back(i <= p
                          ? Table::num(is_gamma ? core::gamma_of(params, i)
                                                : core::beta_of(params, i),
                                       3)
                          : std::string("-"));
      }
      table.add_row(row);
    }
    table.print(std::cout);
  }

  // Trend statistics: correlation of the first stage's angles with p.
  std::vector<double> depths;
  std::vector<double> g1;
  std::vector<double> b1;
  for (int p = 1; p <= max_p; ++p) {
    depths.push_back(static_cast<double>(p));
    g1.push_back(core::gamma_of(best[static_cast<std::size_t>(p - 1)], 1));
    b1.push_back(core::beta_of(best[static_cast<std::size_t>(p - 1)], 1));
  }
  std::printf("\nR(gamma1, p) = %+.2f   (paper: negative)\n",
              stats::pearson(g1, depths));
  std::printf("R(beta1,  p) = %+.2f   (paper: positive)\n",
              stats::pearson(b1, depths));
  return 0;
}
