// M2 micro-benchmarks: classical optimizer cost on standard test
// functions and on the QAOA energy surface itself.
#include <benchmark/benchmark.h>

#include "core/angles.hpp"
#include "core/qaoa_objective.hpp"
#include "graph/generators.hpp"
#include "optim/optimizer.hpp"
#include "optim/test_functions.hpp"

using namespace qaoaml;

namespace {

void run_optimizer_benchmark(benchmark::State& state,
                             optim::OptimizerKind kind) {
  const std::size_t dim = 6;
  const optim::Bounds box = optim::Bounds::uniform(dim, -5.0, 5.0);
  Rng rng(static_cast<std::uint64_t>(state.range(0)) + 99);
  std::int64_t total_nfev = 0;
  for (auto _ : state) {
    std::vector<double> x0(dim);
    for (double& v : x0) v = rng.uniform(-4.0, 4.0);
    const optim::OptimResult result =
        optim::minimize(kind, optim::testfn::sphere, x0, box);
    total_nfev += result.nfev;
    benchmark::DoNotOptimize(result.fun);
  }
  state.counters["nfev/run"] = benchmark::Counter(
      static_cast<double>(total_nfev) / static_cast<double>(state.iterations()));
}

void BM_Sphere6D_Lbfgsb(benchmark::State& state) {
  run_optimizer_benchmark(state, optim::OptimizerKind::kLbfgsb);
}
void BM_Sphere6D_NelderMead(benchmark::State& state) {
  run_optimizer_benchmark(state, optim::OptimizerKind::kNelderMead);
}
void BM_Sphere6D_Slsqp(benchmark::State& state) {
  run_optimizer_benchmark(state, optim::OptimizerKind::kSlsqp);
}
void BM_Sphere6D_Cobyla(benchmark::State& state) {
  run_optimizer_benchmark(state, optim::OptimizerKind::kCobyla);
}
BENCHMARK(BM_Sphere6D_Lbfgsb)->Arg(1);
BENCHMARK(BM_Sphere6D_NelderMead)->Arg(1);
BENCHMARK(BM_Sphere6D_Slsqp)->Arg(1);
BENCHMARK(BM_Sphere6D_Cobyla)->Arg(1);

void BM_QaoaLoop(benchmark::State& state, optim::OptimizerKind kind) {
  const int depth = static_cast<int>(state.range(0));
  Rng graph_rng(3);
  const graph::Graph g = graph::random_regular(8, 3, graph_rng);
  const core::MaxCutQaoa instance(g, depth);
  const optim::ObjectiveFn objective = instance.objective();
  Rng rng(17);
  std::int64_t total_nfev = 0;
  for (auto _ : state) {
    const std::vector<double> x0 = core::random_angles(depth, rng);
    const optim::OptimResult result =
        optim::minimize(kind, objective, x0, instance.bounds());
    total_nfev += result.nfev;
    benchmark::DoNotOptimize(result.fun);
  }
  state.counters["nfev/run"] = benchmark::Counter(
      static_cast<double>(total_nfev) / static_cast<double>(state.iterations()));
}

void BM_QaoaLoop_Lbfgsb(benchmark::State& state) {
  BM_QaoaLoop(state, optim::OptimizerKind::kLbfgsb);
}
void BM_QaoaLoop_NelderMead(benchmark::State& state) {
  BM_QaoaLoop(state, optim::OptimizerKind::kNelderMead);
}
void BM_QaoaLoop_Slsqp(benchmark::State& state) {
  BM_QaoaLoop(state, optim::OptimizerKind::kSlsqp);
}
void BM_QaoaLoop_Cobyla(benchmark::State& state) {
  BM_QaoaLoop(state, optim::OptimizerKind::kCobyla);
}
BENCHMARK(BM_QaoaLoop_Lbfgsb)->DenseRange(1, 5, 2);
BENCHMARK(BM_QaoaLoop_NelderMead)->DenseRange(1, 5, 2);
BENCHMARK(BM_QaoaLoop_Slsqp)->DenseRange(1, 5, 2);
BENCHMARK(BM_QaoaLoop_Cobyla)->DenseRange(1, 5, 2);

}  // namespace
