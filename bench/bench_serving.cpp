// bench_serving — load generator for the qaoad daemon.
//
// Opens C concurrent connections (one serving_client::Client per
// thread), fires a fixed number of synchronous requests on each, and
// reports throughput and latency per client count:
//
//   clients  requests  req/s      p50_ms    p99_ms   errors
//         1       200   9321.4      0.105     0.212        0
//         4       200  24817.9      0.152     0.388        0
//
//   bench_serving --socket /tmp/qaoad.sock --clients 1,2,4 \
//       --requests 200 --family erdos-renyi --depth 3
//
// Requests vary deterministically (gamma/beta swept across the QAOA
// domain per request index), so two runs against the same bank load the
// same work.  Any serving error — dropped response, daemon error text,
// id mismatch — counts in the errors column AND fails the exit status:
// CI runs this with `kill -HUP` storms against the daemon and a zero
// exit IS the zero-dropped-requests assertion of hot reload.
//
// --mode warm-start exercises the simulator path (micro-batching) with
// one locally sampled instance per request; predict mode measures the
// pure serving overhead (wire + scheduler + bank lookup).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/graph_ensemble.hpp"
#include "core/serving_client.hpp"

namespace {

using qaoaml::cli::split_list;
using qaoaml::cli::to_int;
using qaoaml::core::serving::Client;
using qaoaml::core::serving::Response;

struct Options {
  std::string socket_path;
  std::vector<int> clients = {1, 2, 4};
  int requests = 200;       // per client
  std::string family = "erdos-renyi";
  int depth = 3;
  bool warm_start = false;  // predict mode otherwise
  int nodes = 8;            // warm-start instance size
};

void print_usage() {
  std::printf(
      "usage: bench_serving --socket PATH [options]\n"
      "\n"
      "  --socket PATH   qaoad socket (required)\n"
      "  --clients CSV   concurrent client counts to sweep (default 1,2,4)\n"
      "  --requests N    requests per client (default 200)\n"
      "  --family F      bank family (default erdos-renyi)\n"
      "  --depth P       prediction target depth (default 3)\n"
      "  --mode M        predict (default) | warm-start\n"
      "  --nodes N       warm-start instance size (default 8)\n"
      "\n"
      "Exit status is nonzero when ANY request fails — the zero-drop\n"
      "assertion CI leans on while SIGHUPing the daemon mid-load.\n");
}

bool parse_args(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      std::exit(0);
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "bench_serving: %s needs a value\n", arg.c_str());
      return false;
    }
    const char* value = argv[++i];
    bool ok = true;
    if (arg == "--socket") {
      options.socket_path = value;
    } else if (arg == "--clients") {
      options.clients.clear();
      for (const std::string& token : split_list(value)) {
        int count = 0;
        if (!to_int(token.c_str(), count) || count < 1) {
          ok = false;
          break;
        }
        options.clients.push_back(count);
      }
      ok = ok && !options.clients.empty();
    } else if (arg == "--requests") {
      ok = to_int(value, options.requests) && options.requests >= 1;
    } else if (arg == "--family") {
      options.family = value;
    } else if (arg == "--depth") {
      ok = to_int(value, options.depth) && options.depth >= 2;
    } else if (arg == "--mode") {
      const std::string mode = value;
      if (mode == "predict") {
        options.warm_start = false;
      } else if (mode == "warm-start") {
        options.warm_start = true;
      } else {
        ok = false;
      }
    } else if (arg == "--nodes") {
      ok = to_int(value, options.nodes) && options.nodes >= 2;
    } else {
      std::fprintf(stderr, "bench_serving: unknown option %s\n", arg.c_str());
      return false;
    }
    if (!ok) {
      std::fprintf(stderr, "bench_serving: invalid value '%s' for %s\n",
                   value, arg.c_str());
      return false;
    }
  }
  if (options.socket_path.empty()) {
    std::fprintf(stderr, "bench_serving: --socket is required\n");
    return false;
  }
  return true;
}

struct ThreadResult {
  std::vector<double> latencies_ms;
  int errors = 0;
};

/// One client thread's load: `requests` synchronous round trips with a
/// deterministic (thread, index)-dependent workload.
ThreadResult run_client(const Options& options, int thread_index) {
  ThreadResult result;
  result.latencies_ms.reserve(static_cast<std::size_t>(options.requests));
  try {
    Client client(options.socket_path);
    qaoaml::core::EnsembleConfig ensemble;
    ensemble.family = qaoaml::core::family_from_string(options.family);
    for (int i = 0; i < options.requests; ++i) {
      const auto start = std::chrono::steady_clock::now();
      Response response;
      if (options.warm_start) {
        const std::uint64_t seed =
            static_cast<std::uint64_t>(thread_index) * 1000003u +
            static_cast<std::uint64_t>(i);
        qaoaml::Rng rng(seed);
        const qaoaml::graph::Graph problem =
            qaoaml::core::sample_graph(ensemble, options.nodes, rng);
        response = client.warm_start(options.family, problem, options.depth,
                                     seed);
      } else {
        // Sweep the depth-1 domain: gamma in [0, 2*pi), beta in [0, pi).
        const int step = thread_index * options.requests + i;
        const double gamma1 = 6.28 * ((step % 89) / 89.0);
        const double beta1 = 3.14 * ((step % 61) / 61.0);
        response = client.predict(options.family, gamma1, beta1,
                                  options.depth);
      }
      const auto end = std::chrono::steady_clock::now();
      if (response.ok) {
        result.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(end - start).count());
      } else {
        ++result.errors;
      }
    }
  } catch (const std::exception& e) {
    // A torn connection mid-run: every unsent request is an error.
    std::fprintf(stderr, "bench_serving: client %d: %s\n", thread_index,
                 e.what());
    result.errors +=
        options.requests - static_cast<int>(result.latencies_ms.size()) -
        result.errors;
  }
  return result;
}

double percentile(std::vector<double>& sorted, double fraction) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      fraction * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) {
    print_usage();
    return 2;
  }

  std::printf("bench_serving: socket=%s mode=%s family=%s depth=%d "
              "requests/client=%d\n",
              options.socket_path.c_str(),
              options.warm_start ? "warm-start" : "predict",
              options.family.c_str(), options.depth, options.requests);
  std::printf("%8s %9s %10s %9s %9s %7s\n", "clients", "requests", "req/s",
              "p50_ms", "p99_ms", "errors");

  int total_errors = 0;
  for (const int client_count : options.clients) {
    std::vector<ThreadResult> results(
        static_cast<std::size_t>(client_count));
    const auto start = std::chrono::steady_clock::now();
    {
      std::vector<std::jthread> threads;
      threads.reserve(static_cast<std::size_t>(client_count));
      for (int t = 0; t < client_count; ++t) {
        threads.emplace_back([&, t] { results[static_cast<std::size_t>(t)] =
                                          run_client(options, t); });
      }
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    std::vector<double> latencies;
    int errors = 0;
    for (const ThreadResult& result : results) {
      latencies.insert(latencies.end(), result.latencies_ms.begin(),
                       result.latencies_ms.end());
      errors += result.errors;
    }
    std::sort(latencies.begin(), latencies.end());
    const double total_requests =
        static_cast<double>(client_count) * options.requests;
    std::printf("%8d %9.0f %10.1f %9.3f %9.3f %7d\n", client_count,
                total_requests,
                seconds > 0.0 ? total_requests / seconds : 0.0,
                percentile(latencies, 0.50), percentile(latencies, 0.99),
                errors);
    total_errors += errors;
  }

  if (total_errors > 0) {
    std::fprintf(stderr, "bench_serving: %d requests failed\n", total_errors);
    return 1;
  }
  return 0;
}
