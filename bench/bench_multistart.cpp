// Batched vs sequential multistart wall time.
//
// solve_multistart dispatches all restart candidates of one instance as
// a single batch over the thread pool (contiguous chunks, one reusable
// statevector workspace per chunk); solve_multistart_sequential is the
// plain one-after-another reference.  Both produce bit-identical runs —
// verified here on every measurement — so the only difference is wall
// time.  The sweep covers the regimes that matter: the paper's corpus
// setting (20 restarts) and a wider fan-out.
//
//   ./build/bench/bench_multistart
//   QAOAML_NODES=12 QAOAML_MAX_DEPTH=3 ./build/bench/bench_multistart
#include <cstdio>
#include <vector>

#include "common/env.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "core/qaoa_solver.hpp"
#include "graph/generators.hpp"

using namespace qaoaml;

int main() {
  const int nodes = env_int("QAOAML_NODES", 10);
  const int depth = env_int("QAOAML_MAX_DEPTH", 2);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(env_int("QAOAML_SEED", 42));

  Rng graph_rng(seed);
  const graph::Graph problem = graph::erdos_renyi_gnp(nodes, 0.5, graph_rng);
  const core::MaxCutQaoa instance(problem, depth);

  std::printf("multistart batching: %d-node ER graph, p=%d, %d threads\n\n",
              nodes, depth, default_thread_count());
  std::printf("restarts    sequential s    batched s    speedup    identical\n");

  bool mismatch = false;
  for (const int restarts : {8, 20, 64}) {
    // Same rng seed for both paths: identical starting points.
    Rng rng_seq(seed ^ 0x5eed);
    Timer t_seq;
    const core::MultistartRuns seq = core::solve_multistart_sequential(
        instance, optim::OptimizerKind::kLbfgsb, restarts, rng_seq);
    const double seconds_seq = t_seq.seconds();

    Rng rng_bat(seed ^ 0x5eed);
    Timer t_bat;
    const core::MultistartRuns bat = core::solve_multistart(
        instance, optim::OptimizerKind::kLbfgsb, restarts, rng_bat);
    const double seconds_bat = t_bat.seconds();

    bool identical = bat.best.expectation == seq.best.expectation &&
                     bat.best.params == seq.best.params &&
                     bat.total_function_calls == seq.total_function_calls &&
                     bat.runs.size() == seq.runs.size();
    for (std::size_t r = 0; identical && r < bat.runs.size(); ++r) {
      identical = bat.runs[r].expectation == seq.runs[r].expectation &&
                  bat.runs[r].params == seq.runs[r].params;
    }
    if (!identical) mismatch = true;

    std::printf("%8d %15.3f %12.3f %9.2fx    %s\n", restarts, seconds_seq,
                seconds_bat, seconds_seq / seconds_bat,
                identical ? "yes" : "NO (BUG!)");
  }
  return mismatch ? 1 : 0;
}
