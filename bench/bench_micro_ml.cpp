// M3 micro-benchmarks: regression-model training and prediction cost at
// the corpus scales used by the predictor bank.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "ml/model.hpp"

using namespace qaoaml;

namespace {

/// Synthetic parameter-prediction-like data: 3 features, smooth target.
ml::Dataset synthetic(std::size_t n, Rng& rng) {
  ml::Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const double g1 = rng.uniform(0.3, 0.9);
    const double b1 = rng.uniform(0.4, 0.9);
    const double p = static_cast<double>(2 + rng.uniform_int(5));
    data.add({g1, b1, p}, 0.8 * g1 - 0.1 * p + 0.2 * b1 * b1 +
                              0.02 * rng.normal());
  }
  return data;
}

void BM_Fit(benchmark::State& state, ml::RegressorKind kind) {
  Rng rng(5);
  const ml::Dataset data = synthetic(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    auto model = ml::make_regressor(kind);
    model->fit(data);
    benchmark::DoNotOptimize(model->predict({0.5, 0.6, 3.0}));
  }
}

void BM_Fit_GPR(benchmark::State& state) { BM_Fit(state, ml::RegressorKind::kGpr); }
void BM_Fit_LM(benchmark::State& state) { BM_Fit(state, ml::RegressorKind::kLinear); }
void BM_Fit_RTREE(benchmark::State& state) {
  BM_Fit(state, ml::RegressorKind::kRegressionTree);
}
void BM_Fit_RSVM(benchmark::State& state) { BM_Fit(state, ml::RegressorKind::kSvr); }
BENCHMARK(BM_Fit_GPR)->Arg(60)->Arg(120);
BENCHMARK(BM_Fit_LM)->Arg(60)->Arg(120)->Arg(480);
BENCHMARK(BM_Fit_RTREE)->Arg(60)->Arg(120)->Arg(480);
BENCHMARK(BM_Fit_RSVM)->Arg(60)->Arg(120)->Arg(480);

void BM_Predict(benchmark::State& state, ml::RegressorKind kind) {
  Rng rng(7);
  const ml::Dataset data = synthetic(240, rng);
  auto model = ml::make_regressor(kind);
  model->fit(data);
  std::vector<double> x{0.5, 0.6, 3.0};
  for (auto _ : state) {
    x[0] += 1e-9;
    benchmark::DoNotOptimize(model->predict(x));
  }
}

void BM_Predict_GPR(benchmark::State& state) {
  BM_Predict(state, ml::RegressorKind::kGpr);
}
void BM_Predict_LM(benchmark::State& state) {
  BM_Predict(state, ml::RegressorKind::kLinear);
}
void BM_Predict_RTREE(benchmark::State& state) {
  BM_Predict(state, ml::RegressorKind::kRegressionTree);
}
void BM_Predict_RSVM(benchmark::State& state) {
  BM_Predict(state, ml::RegressorKind::kSvr);
}
BENCHMARK(BM_Predict_GPR);
BENCHMARK(BM_Predict_LM);
BENCHMARK(BM_Predict_RTREE);
BENCHMARK(BM_Predict_RSVM);

}  // namespace
