// Table I reproduction: naive random initialization vs the two-level
// ML-accelerated flow, for L-BFGS-B / Nelder-Mead / SLSQP / COBYLA at
// target depths 2..5.
//
// Reports mean/SD approximation ratio (AR), mean/SD function calls (FC,
// raw counts — the paper prints normalized units) and the FC reduction
// percentage.  The shape to compare against the paper: FC reduction is
// positive everywhere, grows with target depth (≈12-23% at p=2 up to
// ≈56-66% at p=5, average ≈44.9%), and the ML arm's AR matches or beats
// the naive arm.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace qaoaml;

int main() {
  const bench::BenchConfig config = bench::bench_config_from_env();
  bench::print_header(
      "Table I: run-time comparison, naive vs two-level ML approach", config);

  const core::ParameterDataset dataset = bench::load_corpus(config);
  const bench::Split split = bench::split_20_80(dataset, config);
  const core::ParameterPredictor predictor =
      bench::train_default_predictor(dataset, split);

  core::ExperimentConfig experiment;
  experiment.optimizers = optim::all_optimizers();
  experiment.target_depths = {2, 3, 4, 5};
  experiment.naive_runs = config.naive_runs;
  experiment.ml_repeats = config.ml_repeats;
  experiment.options.ftol = 1e-6;
  experiment.seed = config.seed;

  std::printf("# sweeping %zu test graphs x 4 optimizers x 4 depths ...\n",
              split.test.size());
  const std::vector<core::TableRow> rows =
      core::run_table1(dataset, split.test, predictor, experiment);

  Table table({"Optimizer", "p", "AR(naive)", "SD", "FC(naive)", "SD",
               "AR(ML)", "SD", "FC(ML)", "SD", "FC red. %"});
  optim::OptimizerKind last = rows.front().optimizer;
  for (const core::TableRow& row : rows) {
    if (row.optimizer != last) {
      table.add_separator();
      last = row.optimizer;
    }
    table.add_row({optim::to_string(row.optimizer),
                   Table::num(static_cast<long long>(row.target_depth)),
                   Table::num(row.naive_ar_mean), Table::num(row.naive_ar_sd),
                   Table::num(row.naive_fc_mean, 1),
                   Table::num(row.naive_fc_sd, 1), Table::num(row.ml_ar_mean),
                   Table::num(row.ml_ar_sd), Table::num(row.ml_fc_mean, 1),
                   Table::num(row.ml_fc_sd, 1),
                   Table::num(row.fc_reduction_percent, 1)});
  }
  table.print(std::cout);

  double best = rows.front().fc_reduction_percent;
  for (const core::TableRow& row : rows) {
    if (row.fc_reduction_percent > best) best = row.fc_reduction_percent;
  }
  std::printf("\naverage FC reduction: %.1f%%   (paper: 44.9%%)\n",
              core::average_fc_reduction(rows));
  std::printf("maximum FC reduction: %.1f%%   (paper: 65.7%%)\n", best);
  return 0;
}
