// Shared infrastructure for the paper-reproduction benchmarks.
//
// Workload scale is controlled by QAOAML_* environment variables so the
// same binaries cover both a quick default run and the paper's
// full-scale setting:
//
//   QAOAML_GRAPHS       ensemble size (default 120; paper: 330)
//   QAOAML_MAX_DEPTH    corpus depths 1..D (default 6; paper: 6)
//   QAOAML_RESTARTS     multistart count for data generation
//                       (default 20; paper: 20)
//   QAOAML_NAIVE_RUNS   random inits per graph in the naive arm
//                       (default 8; paper: 20)
//   QAOAML_ML_REPEATS   two-level repeats per graph (default 2)
//   QAOAML_SEED         master seed (default 42)
//   QAOAML_FAMILY       instance distribution (default erdos-renyi;
//                       regular | weighted-erdos-renyi | small-world |
//                       mixed — see core/graph_ensemble.hpp)
//   QAOAML_CACHE        dataset cache path
//                       (default "qaoaml_dataset_cache.txt")
//   QAOAML_THREADS      worker threads (default: hardware concurrency);
//                       drives both instance-level fan-out and the
//                       statevector amplitude kernels (see README
//                       "Threading model")
//
// The generated corpus is cached on disk and shared by every bench
// binary that needs it (Table I, Figs. 5/6, ablations).  The
// consolidated knob reference lives in docs/CONFIGURATION.md.
#ifndef QAOAML_BENCH_COMMON_HPP
#define QAOAML_BENCH_COMMON_HPP

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/parameter_dataset.hpp"
#include "core/parameter_predictor.hpp"

namespace qaoaml::bench {

/// Scale knobs resolved from the environment.
struct BenchConfig {
  int graphs = 120;
  int max_depth = 6;
  int restarts = 20;
  int naive_runs = 8;
  int ml_repeats = 2;
  std::uint64_t seed = 42;
  std::string cache_path = "qaoaml_dataset_cache.txt";
  /// Instance distribution (QAOAML_FAMILY: erdos-renyi | regular |
  /// weighted-erdos-renyi | small-world | mixed).  Every bench that
  /// consumes the corpus — including the Table-I sweep — runs on it.
  std::string family = "erdos-renyi";
};

/// Reads the QAOAML_* environment variables.
BenchConfig bench_config_from_env();

/// The corresponding dataset-generation config.
core::DatasetConfig dataset_config(const BenchConfig& config);

/// Loads the cached corpus or generates it (printing a progress note).
core::ParameterDataset load_corpus(const BenchConfig& config);

/// The paper's 20:80 train/test split, derived from the master seed.
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};
Split split_20_80(const core::ParameterDataset& dataset,
                  const BenchConfig& config);

/// Trains the default (GPR, two-level) predictor bank on the split.
core::ParameterPredictor train_default_predictor(
    const core::ParameterDataset& dataset, const Split& split);

/// Prints a standard header naming the experiment and the active scale.
void print_header(const std::string& title, const BenchConfig& config);

/// Four fixed 8-node 3-regular graphs (G1..G4 of Figs. 1(c) and 2).
std::vector<graph::Graph> four_cubic_graphs(std::uint64_t seed);

}  // namespace qaoaml::bench

#endif  // QAOAML_BENCH_COMMON_HPP
