// Ablation A2 (paper Section II-E): hierarchical (three-level)
// prediction — using an intermediate-depth optimum as an extra feature
// — against the plain two-level flow.
//
// Reports total function calls and final AR for both flows at target
// depths above the intermediate depth (pm = 2).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/two_level_solver.hpp"
#include "stats/descriptive.hpp"

using namespace qaoaml;

int main() {
  const bench::BenchConfig config = bench::bench_config_from_env();
  bench::print_header(
      "Ablation A2: two-level vs hierarchical (three-level) prediction",
      config);

  const core::ParameterDataset dataset = bench::load_corpus(config);
  const bench::Split split = bench::split_20_80(dataset, config);

  const core::ParameterPredictor coarse =
      bench::train_default_predictor(dataset, split);
  core::PredictorConfig fine_config;
  fine_config.intermediate_depth = 2;
  core::ParameterPredictor fine(fine_config);
  fine.train(dataset, split.train);
  std::printf("# hierarchical bank (pm = 2) trained\n");

  Table table({"p", "FC 2-level", "FC 3-level", "AR 2-level", "AR 3-level"});
  core::TwoLevelConfig flow;
  flow.options.ftol = 1e-6;

  const int max_target = std::min(5, dataset.max_depth());
  for (int p = 3; p <= max_target; ++p) {
    std::vector<double> fc2;
    std::vector<double> fc3;
    std::vector<double> ar2;
    std::vector<double> ar3;
    for (const std::size_t t : split.test) {
      const graph::Graph& g = dataset.records()[t].problem;
      Rng rng(config.seed + 13 * t + static_cast<std::uint64_t>(p));
      const core::AcceleratedRun two =
          core::solve_two_level(g, p, coarse, flow, rng);
      const core::AcceleratedRun three =
          core::solve_three_level(g, p, coarse, fine, flow, rng);
      fc2.push_back(static_cast<double>(two.total_function_calls));
      fc3.push_back(static_cast<double>(three.total_function_calls));
      ar2.push_back(two.final.approximation_ratio);
      ar3.push_back(three.final.approximation_ratio);
    }
    table.add_row({Table::num(static_cast<long long>(p)),
                   Table::num(stats::mean(fc2), 1),
                   Table::num(stats::mean(fc3), 1),
                   Table::num(stats::mean(ar2)),
                   Table::num(stats::mean(ar3))});
  }
  table.print(std::cout);
  std::printf("\nreading: the hierarchical flow spends extra calls on the "
              "intermediate stage; it pays off when its sharper features "
              "shorten the final stage (paper lists it as an augmentation "
              "of the base approach).\n");
  return 0;
}
