// Fig. 2 reproduction: intra-depth patterns of the optimal control
// parameters for four 8-node 3-regular graphs at p = 3 and p = 5
// (best of `restarts` random initializations plus heuristic seeds,
// L-BFGS-B, ftol 1e-6).
//
// Shape to compare against the paper: within a fixed depth the optimal
// gamma_i values increase between stages while the beta_i values
// decrease.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/angles.hpp"
#include "core/qaoa_solver.hpp"

using namespace qaoaml;

namespace {

/// Best-of-k with the same heuristic seeds the corpus generation uses.
std::vector<double> optimize_instance(const graph::Graph& g, int p,
                                      int restarts, Rng& rng) {
  const core::MaxCutQaoa instance(g, p);
  optim::Options options;
  options.ftol = 1e-6;
  core::MultistartRuns runs = core::solve_multistart(
      instance, optim::OptimizerKind::kLbfgsb, restarts, rng, options);
  core::QaoaRun ramp = core::solve_from(
      instance, optim::OptimizerKind::kLbfgsb, core::linear_ramp_angles(p),
      options);
  const double tie_eps = 1e-4 * std::max(1.0, std::abs(runs.best.expectation));
  if (ramp.expectation >= runs.best.expectation - tie_eps) {
    runs.best = std::move(ramp);  // prefer the pattern basin on ties
  }
  return runs.best.params;
}

}  // namespace

int main() {
  const bench::BenchConfig config = bench::bench_config_from_env();
  bench::print_header(
      "Fig. 2: optimal parameter patterns within a fixed depth", config);

  const std::vector<graph::Graph> graphs =
      bench::four_cubic_graphs(config.seed);

  for (const int p : {3, 5}) {
    std::printf("\n-- depth p = %d --\n", p);
    std::vector<std::string> header{"Graph"};
    for (int i = 1; i <= p; ++i) header.push_back("g" + std::to_string(i));
    for (int i = 1; i <= p; ++i) header.push_back("b" + std::to_string(i));
    Table table(header);

    int gamma_monotone = 0;
    int beta_monotone = 0;
    for (std::size_t g = 0; g < graphs.size(); ++g) {
      Rng rng(config.seed + 77 * g + static_cast<std::uint64_t>(p));
      const std::vector<double> params =
          optimize_instance(graphs[g], p, config.restarts, rng);
      std::vector<std::string> row{"G" + std::to_string(g + 1)};
      for (int i = 1; i <= p; ++i) {
        row.push_back(Table::num(core::gamma_of(params, i), 3));
      }
      for (int i = 1; i <= p; ++i) {
        row.push_back(Table::num(core::beta_of(params, i), 3));
      }
      table.add_row(row);

      bool g_up = true;
      bool b_down = true;
      for (int i = 1; i < p; ++i) {
        g_up = g_up && core::gamma_of(params, i + 1) >=
                           core::gamma_of(params, i) - 0.05;
        b_down = b_down && core::beta_of(params, i + 1) <=
                               core::beta_of(params, i) + 0.05;
      }
      gamma_monotone += g_up;
      beta_monotone += b_down;
    }
    table.print(std::cout);
    std::printf("gamma increasing between stages: %d/4 graphs; "
                "beta decreasing: %d/4 graphs (paper: consistent trend)\n",
                gamma_monotone, beta_monotone);
  }
  return 0;
}
