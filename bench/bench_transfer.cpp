// Cross-family warm-start transfer matrix: does a predictor trained on
// family A still accelerate QAOA on family B?
//
// For every (train family x eval family x model) cell the sweep trains
// a bank on the train family's corpus and compares warm-started vs
// cold-started optimization on fresh eval-family instances
// (core/transfer_experiment.hpp).  The shape to look for: the diagonal
// (train == eval) reproduces the paper's same-distribution FC
// reduction, and the off-diagonal cells show how much of it survives a
// distribution shift.
//
// Scale knobs (see docs/CONFIGURATION.md):
//   QAOAML_FAMILIES       comma list (default erdos-renyi,regular,small-world)
//   QAOAML_MODELS         comma list (default GPR)
//   QAOAML_GRAPHS         train-corpus instances per family (default 24)
//   QAOAML_NODES          nodes per graph (default 8)
//   QAOAML_MAX_DEPTH      corpus depths 1..D (default 4)
//   QAOAML_RESTARTS       corpus multistart count (default 8)
//   QAOAML_EVAL_GRAPHS    fresh eval instances per family (default 8)
//   QAOAML_TARGET_DEPTH   depth both arms optimize (default 3)
//   QAOAML_COLD_RESTARTS  random inits in the cold arm (default 8)
//   QAOAML_WARM_REPEATS   two-level repeats per instance (default 1)
//   QAOAML_SEED           master seed (default 2020)
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/env.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/transfer_experiment.hpp"

using namespace qaoaml;

namespace {

using cli::split_list;

core::TransferConfig config_from_env() {
  core::TransferConfig config;
  config.families.clear();
  for (const std::string& name : split_list(env_string(
           "QAOAML_FAMILIES", "erdos-renyi,regular,small-world"))) {
    core::EnsembleConfig ensemble;
    ensemble.family = core::family_from_string(name);
    config.families.push_back(ensemble);
  }
  config.models.clear();
  for (const std::string& name : split_list(env_string("QAOAML_MODELS", "GPR"))) {
    config.models.push_back(ml::regressor_from_string(name));
  }
  config.train_graphs = env_int("QAOAML_GRAPHS", 24);
  config.num_nodes = env_int("QAOAML_NODES", 8);
  config.max_depth = env_int("QAOAML_MAX_DEPTH", 4);
  config.corpus_restarts = env_int("QAOAML_RESTARTS", 8);
  config.eval_graphs = env_int("QAOAML_EVAL_GRAPHS", 8);
  config.target_depth = env_int("QAOAML_TARGET_DEPTH", 3);
  config.cold_restarts = env_int("QAOAML_COLD_RESTARTS", 8);
  config.warm_repeats = env_int("QAOAML_WARM_REPEATS", 1);
  config.seed = static_cast<std::uint64_t>(env_int("QAOAML_SEED", 2020));
  return config;
}

}  // namespace

int main() {
  const core::TransferConfig config = config_from_env();
  std::printf("# transfer matrix: %zu families x %zu models, "
              "train %d graphs (depths 1..%d), eval %d graphs at p=%d\n",
              config.families.size(), config.models.size(),
              config.train_graphs, config.max_depth, config.eval_graphs,
              config.target_depth);

  Timer timer;
  const std::vector<core::TransferCell> cells = core::run_transfer(config);
  const double seconds = timer.seconds();

  Table table({"train \\ eval", "model", "cold FC", "warm FC", "FC red %",
               "iter red %", "cold AR", "warm AR", "dAR"});
  std::size_t last_train = cells.front().train_family;
  for (const core::TransferCell& cell : cells) {
    if (cell.train_family != last_train) {
      table.add_separator();
      last_train = cell.train_family;
    }
    table.add_row(
        {to_string(config.families[cell.train_family].family) + " -> " +
             to_string(config.families[cell.eval_family].family),
         ml::to_string(cell.model), Table::num(cell.cold_fc_mean, 1),
         Table::num(cell.warm_fc_mean, 1),
         Table::num(cell.fc_reduction_percent, 1),
         Table::num(cell.iter_reduction_percent, 1),
         Table::num(cell.cold_ar_mean), Table::num(cell.warm_ar_mean),
         Table::num(cell.ar_delta)});
  }
  table.print(std::cout);

  // Diagonal vs off-diagonal summary: how much FC reduction transfers.
  double diag = 0.0;
  double off = 0.0;
  std::size_t diag_n = 0;
  std::size_t off_n = 0;
  for (const core::TransferCell& cell : cells) {
    if (cell.train_family == cell.eval_family) {
      diag += cell.fc_reduction_percent;
      ++diag_n;
    } else {
      off += cell.fc_reduction_percent;
      ++off_n;
    }
  }
  std::printf("\nsame-family FC reduction:  %.1f%% (mean over %zu cells)\n",
              diag_n ? diag / static_cast<double>(diag_n) : 0.0, diag_n);
  if (off_n) {
    std::printf("cross-family FC reduction: %.1f%% (mean over %zu cells)\n",
                off / static_cast<double>(off_n), off_n);
  }
  std::printf("wall time: %.2f s\n", seconds);
  return 0;
}
