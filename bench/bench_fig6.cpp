// Fig. 6 reproduction: prediction-error distributions of the two-level
// GPR predictor on the held-out test graphs, per target depth p = 2..5.
//
// Shape to compare against the paper: the mean absolute percentage
// error grows with target depth (paper: 5.7% / 8.1% / 9.4% / 10.2% with
// widening spread for p = 2/3/4/5).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "ml/metrics.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"

using namespace qaoaml;

int main() {
  const bench::BenchConfig config = bench::bench_config_from_env();
  bench::print_header(
      "Fig. 6: per-depth prediction errors of the two-level GPR predictor",
      config);

  const core::ParameterDataset dataset = bench::load_corpus(config);
  const bench::Split split = bench::split_20_80(dataset, config);
  const core::ParameterPredictor predictor =
      bench::train_default_predictor(dataset, split);

  Table table({"p", "#params", "mean |%err|", "SD |%err|", "median |%err|",
               "MAE [rad]"});
  const int max_target = std::min(5, dataset.max_depth());
  for (int p = 2; p <= max_target; ++p) {
    std::vector<double> percent_errors;
    std::vector<double> abs_errors;
    for (const std::size_t t : split.test) {
      const core::InstanceRecord& r = dataset.records()[t];
      const std::vector<double> pred =
          predictor.predict(r.gamma_opt(1, 1), r.beta_opt(1, 1), p);
      const std::vector<double>& truth =
          r.optimal_params[static_cast<std::size_t>(p - 1)];
      for (std::size_t k = 0; k < truth.size(); ++k) {
        const double err = pred[k] - truth[k];
        abs_errors.push_back(std::abs(err));
        if (std::abs(truth[k]) > 1e-6) {
          percent_errors.push_back(std::abs(err) / std::abs(truth[k]) * 100.0);
        }
      }
    }
    table.add_row({Table::num(static_cast<long long>(p)),
                   Table::num(static_cast<long long>(percent_errors.size())),
                   Table::num(stats::mean(percent_errors), 1),
                   Table::num(stats::stddev(percent_errors), 1),
                   Table::num(stats::median(percent_errors), 1),
                   Table::num(stats::mean(abs_errors), 3)});

    if (p == max_target) {
      std::printf("\nabsolute-%% error distribution at p = %d:\n", p);
      stats::Histogram::of(percent_errors, 12).print(std::cout);
    }
  }
  std::printf("\n");
  table.print(std::cout);
  std::printf("\nshape check vs paper Fig. 6: mean abs %% error grows with "
              "target depth (paper: 5.7 / 8.1 / 9.4 / 10.2).\n");
  return 0;
}
