// Fig. 5 reproduction: Pearson correlations between the two-level
// predictor features (gamma_1OPT(p=1), beta_1OPT(p=1), target depth p)
// and every response angle (gamma_iOPT, beta_iOPT), over the corpus.
//
// Shape to compare against the paper:
//  - R(gamma1(p=1), beta1(p=1)) strongly positive (paper: 0.92),
//  - R(gamma_i, p) negative, weakening for higher stages
//    (paper: -0.63 for gamma1 down to -0.44 for gamma5),
//  - R(beta_i, p) positive,
//  - R between depth-1 features and responses positive and decaying
//    with stage index.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "stats/correlation.hpp"

using namespace qaoaml;

int main() {
  const bench::BenchConfig config = bench::bench_config_from_env();
  bench::print_header(
      "Fig. 5: correlations between predictor features and response angles",
      config);

  const core::ParameterDataset dataset = bench::load_corpus(config);
  const int max_depth = dataset.max_depth();

  // Feature samples.
  std::vector<double> g1_p1;
  std::vector<double> b1_p1;
  for (const core::InstanceRecord& r : dataset.records()) {
    g1_p1.push_back(r.gamma_opt(1, 1));
    b1_p1.push_back(r.beta_opt(1, 1));
  }
  std::printf("\nR(gamma1OPT(p=1), beta1OPT(p=1)) = %+.2f   (paper: +0.92)\n\n",
              stats::pearson(g1_p1, b1_p1));

  Table table({"stage i", "R(gi,p)", "R(bi,p)", "R(gi,g1(1))", "R(gi,b1(1))",
               "R(bi,g1(1))", "R(bi,b1(1))"});
  for (int stage = 1; stage <= max_depth; ++stage) {
    // Response samples across all records and depths where stage exists.
    std::vector<double> gi;
    std::vector<double> bi;
    std::vector<double> depth;
    std::vector<double> fg1;
    std::vector<double> fb1;
    for (const core::InstanceRecord& r : dataset.records()) {
      for (int p = std::max(stage, 2); p <= max_depth; ++p) {
        gi.push_back(r.gamma_opt(p, stage));
        bi.push_back(r.beta_opt(p, stage));
        depth.push_back(static_cast<double>(p));
        fg1.push_back(r.gamma_opt(1, 1));
        fb1.push_back(r.beta_opt(1, 1));
      }
    }
    if (gi.size() < 3) continue;
    table.add_row({Table::num(static_cast<long long>(stage)),
                   Table::num(stats::pearson(gi, depth), 2),
                   Table::num(stats::pearson(bi, depth), 2),
                   Table::num(stats::pearson(gi, fg1), 2),
                   Table::num(stats::pearson(gi, fb1), 2),
                   Table::num(stats::pearson(bi, fg1), 2),
                   Table::num(stats::pearson(bi, fb1), 2)});
  }
  table.print(std::cout);
  std::printf("\nshape check vs paper: R(gi,p) negative; R(bi,p) positive; "
              "feature-response correlations decay with stage.\n");
  return 0;
}
