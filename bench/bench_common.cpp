#include "bench_common.hpp"

#include <cstdio>

#include "common/env.hpp"
#include "common/timer.hpp"
#include "graph/generators.hpp"

namespace qaoaml::bench {

BenchConfig bench_config_from_env() {
  BenchConfig config;
  config.graphs = env_int("QAOAML_GRAPHS", config.graphs);
  config.max_depth = env_int("QAOAML_MAX_DEPTH", config.max_depth);
  config.restarts = env_int("QAOAML_RESTARTS", config.restarts);
  config.naive_runs = env_int("QAOAML_NAIVE_RUNS", config.naive_runs);
  config.ml_repeats = env_int("QAOAML_ML_REPEATS", config.ml_repeats);
  config.seed = static_cast<std::uint64_t>(env_int("QAOAML_SEED", 42));
  config.cache_path = env_string("QAOAML_CACHE", config.cache_path);
  config.family = env_string("QAOAML_FAMILY", config.family);
  return config;
}

core::DatasetConfig dataset_config(const BenchConfig& config) {
  core::DatasetConfig ds;
  ds.num_graphs = config.graphs;
  ds.num_nodes = 8;
  ds.ensemble.family = core::family_from_string(config.family);
  ds.ensemble.edge_probability = 0.5;
  ds.max_depth = config.max_depth;
  ds.restarts = config.restarts;
  ds.optimizer = optim::OptimizerKind::kLbfgsb;
  ds.options.ftol = 1e-6;
  ds.seed = config.seed;
  return ds;
}

core::ParameterDataset load_corpus(const BenchConfig& config) {
  Timer timer;
  std::printf("# corpus: %d %s graphs x depths 1..%d, best of %d restarts "
              "(cache: %s)\n",
              config.graphs, config.family.c_str(), config.max_depth,
              config.restarts, config.cache_path.c_str());
  core::ParameterDataset dataset = core::ParameterDataset::load_or_generate(
      dataset_config(config), config.cache_path);
  std::printf("# corpus ready: %zu optimal parameters in %.1f s\n",
              dataset.total_parameter_count(), timer.seconds());
  return dataset;
}

Split split_20_80(const core::ParameterDataset& dataset,
                  const BenchConfig& config) {
  Rng rng(config.seed ^ 0xabcdef);
  Split split;
  auto [train, test] = dataset.split_indices(0.2, rng);
  split.train = std::move(train);
  split.test = std::move(test);
  return split;
}

core::ParameterPredictor train_default_predictor(
    const core::ParameterDataset& dataset, const Split& split) {
  Timer timer;
  core::ParameterPredictor predictor;  // GPR, two-level features
  predictor.train(dataset, split.train);
  std::printf("# predictor: GPR bank trained on %zu graphs in %.1f s\n",
              split.train.size(), timer.seconds());
  return predictor;
}

void print_header(const std::string& title, const BenchConfig& config) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("scale: graphs=%d depths<=%d restarts=%d naive_runs=%d "
              "ml_repeats=%d seed=%llu\n",
              config.graphs, config.max_depth, config.restarts,
              config.naive_runs, config.ml_repeats,
              static_cast<unsigned long long>(config.seed));
  std::printf("(set QAOAML_GRAPHS=330 QAOAML_NAIVE_RUNS=20 for the paper's "
              "full scale)\n");
  std::printf("==============================================================\n");
}

std::vector<graph::Graph> four_cubic_graphs(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<graph::Graph> graphs;
  graphs.reserve(4);
  for (int i = 0; i < 4; ++i) {
    graphs.push_back(graph::random_regular(8, 3, rng));
  }
  return graphs;
}

}  // namespace qaoaml::bench
