// M1 micro-benchmarks: statevector simulator throughput — gate
// application scaling with qubit count, the fused vs gate-level QAOA
// expectation paths, and the integral-spectrum fast path.
#include <benchmark/benchmark.h>

#include "core/angles.hpp"
#include "core/qaoa_objective.hpp"
#include "graph/generators.hpp"
#include "quantum/statevector.hpp"

using namespace qaoaml;

namespace {

void BM_SingleQubitGate(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  quantum::Statevector sv = quantum::Statevector::uniform(qubits);
  const quantum::Gate1Q gate = quantum::gates::rx(0.3);
  int target = 0;
  for (auto _ : state) {
    sv.apply_gate(gate, target);
    target = (target + 1) % qubits;
  }
  state.SetItemsProcessed(state.iterations() * (1LL << qubits));
}
BENCHMARK(BM_SingleQubitGate)->DenseRange(4, 20, 4);

void BM_Cnot(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  quantum::Statevector sv = quantum::Statevector::uniform(qubits);
  for (auto _ : state) {
    sv.apply_cnot(0, qubits - 1);
  }
  state.SetItemsProcessed(state.iterations() * (1LL << qubits));
}
BENCHMARK(BM_Cnot)->DenseRange(4, 20, 4);

void BM_DiagonalEvolution(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  quantum::Statevector sv = quantum::Statevector::uniform(qubits);
  std::vector<double> diag(sv.dimension());
  for (std::size_t z = 0; z < diag.size(); ++z) {
    diag[z] = static_cast<double>(__builtin_popcountll(z));
  }
  for (auto _ : state) {
    sv.apply_diagonal_evolution(diag, 0.017);
  }
  state.SetItemsProcessed(state.iterations() * (1LL << qubits));
}
BENCHMARK(BM_DiagonalEvolution)->DenseRange(4, 20, 4);

void BM_DiagonalEvolutionIntegral(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  quantum::Statevector sv = quantum::Statevector::uniform(qubits);
  std::vector<int> diag(sv.dimension());
  for (std::size_t z = 0; z < diag.size(); ++z) {
    diag[z] = __builtin_popcountll(z);
  }
  for (auto _ : state) {
    sv.apply_diagonal_evolution_integral(diag, 0.017, qubits);
  }
  state.SetItemsProcessed(state.iterations() * (1LL << qubits));
}
BENCHMARK(BM_DiagonalEvolutionIntegral)->DenseRange(4, 20, 4);

void BM_QaoaExpectationFast(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Rng rng(7);
  const graph::Graph g = graph::random_regular(8, 3, rng);
  const core::MaxCutQaoa instance(g, depth);
  std::vector<double> params = core::random_angles(depth, rng);
  for (auto _ : state) {
    params[0] += 1e-9;  // defeat value caching
    benchmark::DoNotOptimize(instance.expectation(params));
  }
}
BENCHMARK(BM_QaoaExpectationFast)->DenseRange(1, 6, 1);

void BM_QaoaExpectationGateLevel(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Rng rng(7);
  const graph::Graph g = graph::random_regular(8, 3, rng);
  const core::MaxCutQaoa instance(g, depth);
  std::vector<double> params = core::random_angles(depth, rng);
  for (auto _ : state) {
    params[0] += 1e-9;
    benchmark::DoNotOptimize(instance.expectation_gate_level(params));
  }
}
BENCHMARK(BM_QaoaExpectationGateLevel)->DenseRange(1, 6, 1);

void BM_QaoaExpectationQubits(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  Rng rng(11);
  const graph::Graph g = graph::random_regular(qubits, 3, rng);
  const core::MaxCutQaoa instance(g, 3);
  std::vector<double> params = core::random_angles(3, rng);
  for (auto _ : state) {
    params[0] += 1e-9;
    benchmark::DoNotOptimize(instance.expectation(params));
  }
}
BENCHMARK(BM_QaoaExpectationQubits)->DenseRange(4, 16, 4);

}  // namespace
