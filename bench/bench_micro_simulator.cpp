// M1 micro-benchmarks: statevector simulator throughput — gate
// application scaling with qubit count, the fused vs unfused vs
// gate-level QAOA paths, the integral-spectrum fast path, and the
// multi-threaded kernels (the *Threads benchmarks sweep the worker
// count on a fixed 22-qubit state; compare Arg(1) vs Arg(8) for the
// intra-state scaling headline; BM_QaoaObjectiveP2Q16 Arg(0) vs Arg(1)
// for the fused-kernel headline).
#include <benchmark/benchmark.h>

#include "common/parallel.hpp"
#include "core/angles.hpp"
#include "core/batch_evaluator.hpp"
#include "core/qaoa_objective.hpp"
#include "graph/generators.hpp"
#include "quantum/sim_config.hpp"
#include "quantum/statevector.hpp"

using namespace qaoaml;

namespace {

void BM_SingleQubitGate(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  quantum::Statevector sv = quantum::Statevector::uniform(qubits);
  const quantum::Gate1Q gate = quantum::gates::rx(0.3);
  int target = 0;
  for (auto _ : state) {
    sv.apply_gate(gate, target);
    target = (target + 1) % qubits;
  }
  state.SetItemsProcessed(state.iterations() * (1LL << qubits));
}
BENCHMARK(BM_SingleQubitGate)->DenseRange(4, 20, 4);

void BM_Cnot(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  quantum::Statevector sv = quantum::Statevector::uniform(qubits);
  for (auto _ : state) {
    sv.apply_cnot(0, qubits - 1);
  }
  state.SetItemsProcessed(state.iterations() * (1LL << qubits));
}
BENCHMARK(BM_Cnot)->DenseRange(4, 20, 4);

void BM_DiagonalEvolution(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  quantum::Statevector sv = quantum::Statevector::uniform(qubits);
  std::vector<double> diag(sv.dimension());
  for (std::size_t z = 0; z < diag.size(); ++z) {
    diag[z] = static_cast<double>(__builtin_popcountll(z));
  }
  for (auto _ : state) {
    sv.apply_diagonal_evolution(diag, 0.017);
  }
  state.SetItemsProcessed(state.iterations() * (1LL << qubits));
}
BENCHMARK(BM_DiagonalEvolution)->DenseRange(4, 20, 4);

void BM_DiagonalEvolutionIntegral(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  quantum::Statevector sv = quantum::Statevector::uniform(qubits);
  std::vector<int> diag(sv.dimension());
  for (std::size_t z = 0; z < diag.size(); ++z) {
    diag[z] = __builtin_popcountll(z);
  }
  for (auto _ : state) {
    // The popcount diagonal is valid by construction: time the kernel,
    // not the entry-range scan the production hot path also skips.
    sv.apply_diagonal_evolution_integral(diag, 0.017, qubits,
                                         /*entries_prevalidated=*/true);
  }
  state.SetItemsProcessed(state.iterations() * (1LL << qubits));
}
BENCHMARK(BM_DiagonalEvolutionIntegral)->DenseRange(4, 20, 4);

void BM_QaoaExpectationFast(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Rng rng(7);
  const graph::Graph g = graph::random_regular(8, 3, rng);
  const core::MaxCutQaoa instance(g, depth);
  std::vector<double> params = core::random_angles(depth, rng);
  for (auto _ : state) {
    params[0] += 1e-9;  // defeat value caching
    benchmark::DoNotOptimize(instance.expectation(params));
  }
}
BENCHMARK(BM_QaoaExpectationFast)->DenseRange(1, 6, 1);

void BM_QaoaExpectationGateLevel(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  Rng rng(7);
  const graph::Graph g = graph::random_regular(8, 3, rng);
  const core::MaxCutQaoa instance(g, depth);
  std::vector<double> params = core::random_angles(depth, rng);
  for (auto _ : state) {
    params[0] += 1e-9;
    benchmark::DoNotOptimize(instance.expectation_gate_level(params));
  }
}
BENCHMARK(BM_QaoaExpectationGateLevel)->DenseRange(1, 6, 1);

// ---- Fused-layer benchmarks -----------------------------------------
// One full QAOA layer (integral phase separator + mixer on every
// qubit), fused vs the unfused gate sequence it replaces.

void BM_QaoaLayerUnfused(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  quantum::Statevector sv = quantum::Statevector::uniform(qubits);
  std::vector<int> diag(sv.dimension());
  for (std::size_t z = 0; z < diag.size(); ++z) {
    diag[z] = __builtin_popcountll(z);
  }
  const quantum::Gate1Q mixer = quantum::gates::rx(0.41);
  for (auto _ : state) {
    sv.apply_diagonal_evolution_integral(diag, 0.017, qubits,
                                         /*entries_prevalidated=*/true);
    for (int q = 0; q < qubits; ++q) sv.apply_gate(mixer, q);
  }
  state.SetItemsProcessed(state.iterations() * (1LL << qubits));
}
BENCHMARK(BM_QaoaLayerUnfused)->DenseRange(8, 20, 4);

void BM_QaoaLayerFused(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  quantum::Statevector sv = quantum::Statevector::uniform(qubits);
  std::vector<int> diag(sv.dimension());
  for (std::size_t z = 0; z < diag.size(); ++z) {
    diag[z] = __builtin_popcountll(z);
  }
  for (auto _ : state) {
    sv.apply_qaoa_layer_integral(diag, 0.017, qubits, 0.41,
                                 /*entries_prevalidated=*/true);
  }
  state.SetItemsProcessed(state.iterations() * (1LL << qubits));
}
BENCHMARK(BM_QaoaLayerFused)->DenseRange(8, 20, 4);

// The acceptance headline: a p=2, 16-qubit QAOA objective evaluation
// through BatchEvaluator, with Arg(0) = unfused, Arg(1) = fused.
void BM_QaoaObjectiveP2Q16(benchmark::State& state) {
  const quantum::ScopedLayerKernel guard(state.range(0) != 0
                                             ? quantum::LayerKernel::kFused
                                             : quantum::LayerKernel::kUnfused);
  Rng rng(7);
  const graph::Graph g = graph::random_regular(16, 3, rng);
  const core::MaxCutQaoa instance(g, 2);
  core::BatchEvaluator evaluator(instance);
  std::vector<double> params = core::random_angles(2, rng);
  for (auto _ : state) {
    params[0] += 1e-9;  // defeat value caching
    benchmark::DoNotOptimize(evaluator.expectation(params));
  }
}
BENCHMARK(BM_QaoaObjectiveP2Q16)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// ---- Threaded-kernel benchmarks -------------------------------------
// 22 qubits = 4M amplitudes (64 MiB of state): large enough that the
// blocked kernels dominate dispatch overhead.

constexpr int kThreadedQubits = 22;

void BM_SingleQubitGateThreads(benchmark::State& state) {
  const ScopedThreadCount guard(static_cast<int>(state.range(0)));
  quantum::Statevector sv = quantum::Statevector::uniform(kThreadedQubits);
  const quantum::Gate1Q gate = quantum::gates::rx(0.3);
  int target = 0;
  for (auto _ : state) {
    sv.apply_gate(gate, target);
    target = (target + 1) % kThreadedQubits;
  }
  state.SetItemsProcessed(state.iterations() * (1LL << kThreadedQubits));
}
BENCHMARK(BM_SingleQubitGateThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_DiagonalEvolutionThreads(benchmark::State& state) {
  const ScopedThreadCount guard(static_cast<int>(state.range(0)));
  quantum::Statevector sv = quantum::Statevector::uniform(kThreadedQubits);
  std::vector<double> diag(sv.dimension());
  for (std::size_t z = 0; z < diag.size(); ++z) {
    diag[z] = static_cast<double>(__builtin_popcountll(z));
  }
  for (auto _ : state) {
    sv.apply_diagonal_evolution(diag, 0.017);
  }
  state.SetItemsProcessed(state.iterations() * (1LL << kThreadedQubits));
}
BENCHMARK(BM_DiagonalEvolutionThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ExpectationDiagonalThreads(benchmark::State& state) {
  const ScopedThreadCount guard(static_cast<int>(state.range(0)));
  const quantum::Statevector sv =
      quantum::Statevector::uniform(kThreadedQubits);
  std::vector<double> diag(sv.dimension());
  for (std::size_t z = 0; z < diag.size(); ++z) {
    diag[z] = static_cast<double>(__builtin_popcountll(z));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sv.expectation_diagonal(diag));
  }
  state.SetItemsProcessed(state.iterations() * (1LL << kThreadedQubits));
}
BENCHMARK(BM_ExpectationDiagonalThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// One fused layer per iteration at 22 qubits, across worker counts:
// the per-thread-count profile of the fused sweeps.
void BM_QaoaLayerFusedThreads(benchmark::State& state) {
  const ScopedThreadCount guard(static_cast<int>(state.range(0)));
  quantum::Statevector sv = quantum::Statevector::uniform(kThreadedQubits);
  std::vector<int> diag(sv.dimension());
  for (std::size_t z = 0; z < diag.size(); ++z) {
    diag[z] = __builtin_popcountll(z);
  }
  for (auto _ : state) {
    sv.apply_qaoa_layer_integral(diag, 0.017, kThreadedQubits, 0.41,
                                 /*entries_prevalidated=*/true);
  }
  state.SetItemsProcessed(state.iterations() * (1LL << kThreadedQubits));
}
BENCHMARK(BM_QaoaLayerFusedThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// One full p=3 statevector evolution per iteration at 20 qubits: the
// end-to-end number behind the "2x with 8 threads" acceptance check.
void BM_QaoaEvolutionThreads(benchmark::State& state) {
  const ScopedThreadCount guard(static_cast<int>(state.range(0)));
  Rng rng(19);
  const graph::Graph g = graph::random_regular(20, 3, rng);
  const core::MaxCutQaoa instance(g, 3);
  core::BatchEvaluator evaluator(instance);
  std::vector<double> params = core::random_angles(3, rng);
  for (auto _ : state) {
    params[0] += 1e-9;  // defeat value caching
    benchmark::DoNotOptimize(evaluator.expectation(params));
  }
}
BENCHMARK(BM_QaoaEvolutionThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Batch of angle vectors on a mid-size instance: instance-level
// parallelism with reused workspaces (the data-generation shape).
void BM_BatchEvaluatorThreads(benchmark::State& state) {
  const ScopedThreadCount guard(static_cast<int>(state.range(0)));
  Rng rng(23);
  const graph::Graph g = graph::random_regular(16, 3, rng);
  const core::MaxCutQaoa instance(g, 3);
  const core::BatchEvaluator evaluator(instance);
  std::vector<std::vector<double>> batch;
  for (int i = 0; i < 32; ++i) batch.push_back(core::random_angles(3, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.expectations(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(batch.size()));
}
BENCHMARK(BM_BatchEvaluatorThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Buffered vs allocating expectation: the per-call 2^n allocation cost.
void BM_QaoaExpectationBuffered(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  Rng rng(11);
  const graph::Graph g = graph::random_regular(qubits, 3, rng);
  const core::MaxCutQaoa instance(g, 3);
  core::BatchEvaluator evaluator(instance);
  std::vector<double> params = core::random_angles(3, rng);
  for (auto _ : state) {
    params[0] += 1e-9;
    benchmark::DoNotOptimize(evaluator.expectation(params));
  }
}
BENCHMARK(BM_QaoaExpectationBuffered)->DenseRange(4, 16, 4);

void BM_QaoaExpectationQubits(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  Rng rng(11);
  const graph::Graph g = graph::random_regular(qubits, 3, rng);
  const core::MaxCutQaoa instance(g, 3);
  std::vector<double> params = core::random_angles(3, rng);
  for (auto _ : state) {
    params[0] += 1e-9;
    benchmark::DoNotOptimize(instance.expectation(params));
  }
}
BENCHMARK(BM_QaoaExpectationQubits)->DenseRange(4, 16, 4);

}  // namespace
