// Ablation A1 (paper Section III-C): the four regression families —
// GPR, LM, RTREE, RSVM — compared as parameter predictors.
//
// Reports the regression metrics the paper used for model selection
// (MSE / RMSE / MAE / R^2 / adjusted R^2, averaged over all angle
// models on the held-out test rows) and the end-to-end FC reduction
// each family achieves inside the two-level flow.
//
// Shape to compare against the paper: GPR shows the best metrics and is
// the model of choice.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/angles.hpp"
#include "ml/metrics.hpp"

using namespace qaoaml;

int main() {
  const bench::BenchConfig config = bench::bench_config_from_env();
  bench::print_header(
      "Ablation A1: regression-model families as parameter predictors",
      config);

  const core::ParameterDataset dataset = bench::load_corpus(config);
  const bench::Split split = bench::split_20_80(dataset, config);

  Table metric_table({"Model", "MSE", "RMSE", "MAE", "R^2", "adj R^2"});
  Table flow_table({"Model", "FC reduction % (L-BFGS-B, p=4)"});

  for (const ml::RegressorKind kind : ml::all_regressors()) {
    core::PredictorConfig pc;
    pc.model = kind;
    core::ParameterPredictor predictor(pc);
    predictor.train(dataset, split.train);

    // Regression metrics pooled over every angle model and test row.
    std::vector<double> truth;
    std::vector<double> pred;
    for (const std::size_t t : split.test) {
      const core::InstanceRecord& r = dataset.records()[t];
      for (int p = 2; p <= dataset.max_depth(); ++p) {
        const std::vector<double> yhat =
            predictor.predict(r.gamma_opt(1, 1), r.beta_opt(1, 1), p);
        const std::vector<double>& y =
            r.optimal_params[static_cast<std::size_t>(p - 1)];
        truth.insert(truth.end(), y.begin(), y.end());
        pred.insert(pred.end(), yhat.begin(), yhat.end());
      }
    }
    const ml::MetricReport report = ml::compute_metrics(truth, pred, 3);
    metric_table.add_row({ml::to_string(kind), Table::num(report.mse),
                          Table::num(report.rmse), Table::num(report.mae),
                          Table::num(report.r2), Table::num(report.adjusted_r2)});

    // End-to-end effect at one representative cell (L-BFGS-B, p = 4).
    core::ExperimentConfig experiment;
    experiment.optimizers = {optim::OptimizerKind::kLbfgsb};
    experiment.target_depths = {4};
    experiment.naive_runs = config.naive_runs;
    experiment.ml_repeats = config.ml_repeats;
    experiment.seed = config.seed;
    const std::vector<core::TableRow> rows =
        core::run_table1(dataset, split.test, predictor, experiment);
    flow_table.add_row(
        {ml::to_string(kind), Table::num(rows.front().fc_reduction_percent, 1)});
  }

  std::printf("\nregression quality on held-out graphs:\n");
  metric_table.print(std::cout);
  std::printf("\nend-to-end acceleration by model family:\n");
  flow_table.print(std::cout);
  std::printf("\nshape check vs paper: GPR has the lowest errors / highest "
              "R^2 and is used for all further analysis.\n");
  return 0;
}
