// Tests for the parameter dataset: generation, persistence, splits and
// the parameter trends the paper builds its ML model on.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/angles.hpp"
#include "core/parameter_dataset.hpp"
#include "stats/correlation.hpp"

namespace qaoaml::core {
namespace {

/// Small-but-real dataset shared by the tests in this file.
const ParameterDataset& small_dataset() {
  static const ParameterDataset dataset = [] {
    DatasetConfig config;
    config.num_graphs = 8;
    config.max_depth = 3;
    config.restarts = 6;
    config.seed = 99;
    return ParameterDataset::generate(config);
  }();
  return dataset;
}

TEST(Dataset, GeneratesRequestedShape) {
  const ParameterDataset& ds = small_dataset();
  EXPECT_EQ(ds.size(), 8u);
  EXPECT_EQ(ds.max_depth(), 3);
  for (const InstanceRecord& r : ds.records()) {
    EXPECT_EQ(r.optimal_params.size(), 3u);
    EXPECT_EQ(r.expectation.size(), 3u);
    EXPECT_EQ(r.approximation_ratio.size(), 3u);
    EXPECT_GE(r.problem.num_edges(), 1u);
    EXPECT_GT(r.max_cut, 0.0);
    for (int p = 1; p <= 3; ++p) {
      EXPECT_EQ(r.optimal_params[static_cast<std::size_t>(p - 1)].size(),
                num_angles(p));
    }
  }
}

TEST(Dataset, ParameterCountMatchesPaperFormula) {
  // Per graph: sum_{p=1..P} 2p. For P = 3: 12. (At the paper's full
  // scale, 330 graphs x 42 = 13,860.)
  EXPECT_EQ(small_dataset().total_parameter_count(), 8u * 12u);
}

TEST(Dataset, BestExpectationIsMonotoneInDepth) {
  // Deeper QAOA can always represent the shallower circuit (extra stages
  // near zero angles), so the best-of-k optimum should not get worse.
  // Finite restarts leave a little slack.
  for (const InstanceRecord& r : small_dataset().records()) {
    for (std::size_t d = 1; d < r.expectation.size(); ++d) {
      EXPECT_GE(r.expectation[d], r.expectation[d - 1] - 0.05);
    }
  }
}

TEST(Dataset, ApproximationRatiosAreValid) {
  for (const InstanceRecord& r : small_dataset().records()) {
    for (const double ar : r.approximation_ratio) {
      EXPECT_GT(ar, 0.4);
      EXPECT_LE(ar, 1.0 + 1e-9);
    }
  }
}

TEST(Dataset, GenerationIsDeterministic) {
  DatasetConfig config;
  config.num_graphs = 3;
  config.max_depth = 2;
  config.restarts = 3;
  config.seed = 123;
  const ParameterDataset a = ParameterDataset::generate(config);
  const ParameterDataset b = ParameterDataset::generate(config);
  for (std::size_t g = 0; g < a.size(); ++g) {
    EXPECT_EQ(a.records()[g].problem.num_edges(),
              b.records()[g].problem.num_edges());
    EXPECT_DOUBLE_EQ(a.records()[g].expectation[1],
                     b.records()[g].expectation[1]);
  }
}

TEST(Dataset, AccessorsMatchRawStorage) {
  const InstanceRecord& r = small_dataset().records()[0];
  EXPECT_DOUBLE_EQ(r.gamma_opt(2, 1), r.optimal_params[1][0]);
  EXPECT_DOUBLE_EQ(r.beta_opt(2, 2), r.optimal_params[1][3]);
  EXPECT_THROW(r.gamma_opt(4, 1), InvalidArgument);
}

TEST(Dataset, SplitPartitionsRecords) {
  Rng rng(5);
  const auto [train, test] = small_dataset().split_indices(0.25, rng);
  EXPECT_EQ(train.size(), 2u);
  EXPECT_EQ(test.size(), 6u);
  std::vector<bool> seen(8, false);
  for (const std::size_t i : train) seen[i] = true;
  for (const std::size_t i : test) {
    EXPECT_FALSE(seen[i]);  // disjoint
    seen[i] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);  // exhaustive
}

TEST(Dataset, SaveLoadRoundTrips) {
  const std::string path = ::testing::TempDir() + "/qaoaml_ds_roundtrip.txt";
  const ParameterDataset& original = small_dataset();
  original.save(path);
  const ParameterDataset loaded = ParameterDataset::load(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(to_string(loaded.config()), to_string(original.config()));
  for (std::size_t g = 0; g < original.size(); ++g) {
    const InstanceRecord& a = original.records()[g];
    const InstanceRecord& b = loaded.records()[g];
    EXPECT_EQ(a.problem.num_edges(), b.problem.num_edges());
    EXPECT_DOUBLE_EQ(a.max_cut, b.max_cut);
    for (std::size_t d = 0; d < a.optimal_params.size(); ++d) {
      EXPECT_DOUBLE_EQ(a.expectation[d], b.expectation[d]);
      for (std::size_t k = 0; k < a.optimal_params[d].size(); ++k) {
        EXPECT_DOUBLE_EQ(a.optimal_params[d][k], b.optimal_params[d][k]);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(Dataset, LoadRejectsCorruptedFiles) {
  const std::string path = ::testing::TempDir() + "/qaoaml_ds_bad.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not-a-dataset\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(ParameterDataset::load(path), InvalidArgument);
  std::remove(path.c_str());
}

TEST(Dataset, LoadOrGenerateUsesCache) {
  const std::string path = ::testing::TempDir() + "/qaoaml_ds_cache.txt";
  std::remove(path.c_str());
  DatasetConfig config;
  config.num_graphs = 3;
  config.max_depth = 2;
  config.restarts = 2;
  config.seed = 7;
  const ParameterDataset first = ParameterDataset::load_or_generate(config, path);
  // Second call must hit the cache and reproduce the data exactly.
  const ParameterDataset second =
      ParameterDataset::load_or_generate(config, path);
  EXPECT_DOUBLE_EQ(first.records()[0].expectation[0],
                   second.records()[0].expectation[0]);
  // A different config must regenerate, not reuse.
  config.seed = 8;
  const ParameterDataset third = ParameterDataset::load_or_generate(config, path);
  EXPECT_EQ(third.config().seed, 8u);
  std::remove(path.c_str());
}

TEST(DatasetTrends, Gamma1DecreasesWithDepth) {
  // Section II-C: gamma_1OPT decreases as the target depth grows.
  // Checked in aggregate (correlation over the ensemble is negative).
  std::vector<double> gammas;
  std::vector<double> depths;
  for (const InstanceRecord& r : small_dataset().records()) {
    for (int p = 1; p <= 3; ++p) {
      gammas.push_back(r.gamma_opt(p, 1));
      depths.push_back(static_cast<double>(p));
    }
  }
  EXPECT_LT(stats::pearson(gammas, depths), 0.1);
}

TEST(DatasetTrends, Beta1IncreasesWithDepth) {
  std::vector<double> betas;
  std::vector<double> depths;
  for (const InstanceRecord& r : small_dataset().records()) {
    for (int p = 1; p <= 3; ++p) {
      betas.push_back(r.beta_opt(p, 1));
      depths.push_back(static_cast<double>(p));
    }
  }
  EXPECT_GT(stats::pearson(betas, depths), -0.1);
}

TEST(DatasetTrends, IntraDepthMonotonicity) {
  // Section II-B: within a fixed depth, gamma_i grows between stages and
  // beta_i shrinks.  Checked in aggregate across graphs at p = 3.
  int gamma_up = 0;
  int beta_down = 0;
  int total = 0;
  for (const InstanceRecord& r : small_dataset().records()) {
    for (int i = 1; i < 3; ++i) {
      gamma_up += (r.gamma_opt(3, i + 1) >= r.gamma_opt(3, i));
      beta_down += (r.beta_opt(3, i + 1) <= r.beta_opt(3, i));
      ++total;
    }
  }
  EXPECT_GT(gamma_up, total / 2);
  EXPECT_GT(beta_down, total / 2);
}

}  // namespace
}  // namespace qaoaml::core
