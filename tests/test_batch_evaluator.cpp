// Batched simulation engine tests: gate-path vs fused-path vs
// batched-path parity, buffer-reuse correctness, norm preservation of
// the parallel kernels under long random gate sequences, and
// thread-count determinism of BatchEvaluator results.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/angles.hpp"
#include "core/batch_evaluator.hpp"
#include "core/qaoa_objective.hpp"
#include "core/qaoa_solver.hpp"
#include "graph/generators.hpp"
#include "quantum/statevector.hpp"

using namespace qaoaml;
using core::BatchEvaluator;
using core::BatchJob;
using core::MaxCutQaoa;

namespace {

std::vector<std::vector<double>> random_batch(int depth, int size, Rng& rng) {
  std::vector<std::vector<double>> batch;
  batch.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) batch.push_back(core::random_angles(depth, rng));
  return batch;
}

graph::Graph random_weighted_graph(int nodes, Rng& rng) {
  graph::Graph g = graph::erdos_renyi_gnp(nodes, 0.5, rng);
  while (g.num_edges() < 1) g = graph::erdos_renyi_gnp(nodes, 0.5, rng);
  graph::Graph weighted(g.num_nodes());
  for (const auto& e : g.edges()) {
    weighted.add_edge(e.u, e.v, rng.uniform(0.1, 2.5));
  }
  return weighted;
}

TEST(BatchEvaluator, MatchesGateAndFusedPathsUnweighted) {
  Rng rng(2024);
  for (int trial = 0; trial < 3; ++trial) {
    graph::Graph g = graph::random_regular(8, 3, rng);
    const int depth = 1 + trial;
    const MaxCutQaoa instance(g, depth);
    ASSERT_TRUE(instance.has_integer_spectrum());

    const auto batch = random_batch(depth, 12, rng);
    const BatchEvaluator evaluator(instance);
    const std::vector<double> batched = evaluator.expectations(batch);
    ASSERT_EQ(batched.size(), batch.size());

    for (std::size_t i = 0; i < batch.size(); ++i) {
      const double fused = instance.expectation(batch[i]);
      const double gate = instance.expectation_gate_level(batch[i]);
      EXPECT_NEAR(batched[i], fused, 1e-12);
      EXPECT_NEAR(batched[i], gate, 1e-12);
    }
  }
}

TEST(BatchEvaluator, MatchesGateAndFusedPathsWeighted) {
  Rng rng(77);
  for (int trial = 0; trial < 3; ++trial) {
    const graph::Graph g = random_weighted_graph(7, rng);
    const int depth = 2;
    const MaxCutQaoa instance(g, depth);
    ASSERT_FALSE(instance.has_integer_spectrum());

    const auto batch = random_batch(depth, 10, rng);
    const BatchEvaluator evaluator(instance);
    const std::vector<double> batched = evaluator.expectations(batch);

    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_NEAR(batched[i], instance.expectation(batch[i]), 1e-12);
      EXPECT_NEAR(batched[i], instance.expectation_gate_level(batch[i]),
                  1e-12);
    }
  }
}

TEST(BatchEvaluator, SingleCallReusesWorkspaceAndMatches) {
  Rng rng(5);
  const graph::Graph g = graph::random_regular(10, 3, rng);
  const MaxCutQaoa instance(g, 3);
  BatchEvaluator evaluator(instance);
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> params = core::random_angles(3, rng);
    EXPECT_NEAR(evaluator.expectation(params), instance.expectation(params),
                1e-12);
    EXPECT_DOUBLE_EQ(evaluator.objective(params),
                     -evaluator.expectation(params));
  }
}

TEST(BatchEvaluator, BufferedObjectiveMatchesPlainObjective) {
  Rng rng(9);
  const graph::Graph g = graph::random_regular(8, 3, rng);
  const MaxCutQaoa instance(g, 2);
  const optim::ObjectiveFn plain = instance.objective();
  const optim::ObjectiveFn buffered = instance.buffered_objective();
  for (int i = 0; i < 25; ++i) {
    const std::vector<double> params = core::random_angles(2, rng);
    EXPECT_DOUBLE_EQ(buffered(params), plain(params));
  }
}

TEST(BatchEvaluator, HeterogeneousInstanceBatch) {
  Rng rng(31);
  const graph::Graph g1 = graph::random_regular(6, 3, rng);
  const graph::Graph g2 = random_weighted_graph(8, rng);
  const MaxCutQaoa small(g1, 1);
  const MaxCutQaoa large(g2, 3);

  std::vector<BatchJob> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back({&small, core::random_angles(1, rng)});
    jobs.push_back({&large, core::random_angles(3, rng)});
  }
  const std::vector<double> values = BatchEvaluator::expectations(jobs);
  ASSERT_EQ(values.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_NEAR(values[i], jobs[i].instance->expectation(jobs[i].params),
                1e-12);
  }
}

TEST(BatchEvaluator, DeterministicAcrossThreadCounts) {
  Rng rng(404);
  // 16 qubits: large enough that the amplitude kernels take their
  // blocked parallel paths, so this exercises real scheduling variance.
  const graph::Graph g = graph::random_regular(16, 3, rng);
  const MaxCutQaoa instance(g, 3);
  const auto batch = random_batch(3, 8, rng);
  const BatchEvaluator evaluator(instance);

  std::vector<double> one;
  std::vector<double> eight;
  {
    ScopedThreadCount guard(1);
    one = evaluator.expectations(batch);
  }
  {
    ScopedThreadCount guard(8);
    eight = evaluator.expectations(batch);
  }
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i], eight[i]);  // bitwise, not approximate
  }
}

TEST(BatchEvaluator, MultistartDeterministicAcrossThreadCounts) {
  Rng rng_a(55);
  Rng rng_b(55);
  Rng graph_rng(1);
  const graph::Graph g = graph::random_regular(8, 3, graph_rng);
  const MaxCutQaoa instance(g, 2);

  core::MultistartRuns one;
  core::MultistartRuns four;
  {
    ScopedThreadCount guard(1);
    one = core::solve_multistart(instance, optim::OptimizerKind::kNelderMead,
                                 6, rng_a);
  }
  {
    ScopedThreadCount guard(4);
    four = core::solve_multistart(instance, optim::OptimizerKind::kNelderMead,
                                  6, rng_b);
  }
  EXPECT_EQ(one.best.expectation, four.best.expectation);
  EXPECT_EQ(one.total_function_calls, four.total_function_calls);
  ASSERT_EQ(one.runs.size(), four.runs.size());
  for (std::size_t r = 0; r < one.runs.size(); ++r) {
    EXPECT_EQ(one.runs[r].expectation, four.runs[r].expectation);
    EXPECT_EQ(one.runs[r].function_calls, four.runs[r].function_calls);
  }
}

TEST(ParallelKernels, NormPreservedUnderLongRandomGateSequence) {
  // 16 qubits crosses the parallel threshold; drive every kernel kind.
  Rng rng(666);
  quantum::Statevector sv = quantum::Statevector::uniform(16);
  const int n = sv.num_qubits();
  for (int step = 0; step < 300; ++step) {
    const int q = static_cast<int>(rng.uniform_int(n));
    int other = static_cast<int>(rng.uniform_int(n - 1));
    if (other >= q) ++other;
    switch (rng.uniform_int(7)) {
      case 0: sv.apply_gate(quantum::gates::hadamard(), q); break;
      case 1: sv.apply_gate(quantum::gates::rx(rng.uniform(-3.0, 3.0)), q); break;
      case 2: sv.apply_gate(quantum::gates::ry(rng.uniform(-3.0, 3.0)), q); break;
      case 3: sv.apply_rz(q, rng.uniform(-3.0, 3.0)); break;
      case 4: sv.apply_cnot(q, other); break;
      case 5: sv.apply_cz(q, other); break;
      default:
        sv.apply_controlled(quantum::gates::rx(rng.uniform(-3.0, 3.0)), q,
                            other);
        break;
    }
  }
  EXPECT_NEAR(sv.norm(), 1.0, 1e-9);
}

TEST(ParallelKernels, StateBitIdenticalAcrossThreadCounts) {
  // Element-wise kernels write disjoint amplitudes and reductions are
  // blocked, so the full state must match bit-for-bit.
  const auto evolve = [](quantum::Statevector& sv) {
    Rng rng(13);
    for (int step = 0; step < 40; ++step) {
      const int q = static_cast<int>(rng.uniform_int(sv.num_qubits()));
      sv.apply_gate(quantum::gates::rx(rng.uniform(-3.0, 3.0)), q);
      sv.apply_rz((q + 1) % sv.num_qubits(), rng.uniform(-3.0, 3.0));
      sv.apply_cnot(q, (q + 3) % sv.num_qubits());
    }
  };
  quantum::Statevector one = quantum::Statevector::uniform(16);
  quantum::Statevector eight = quantum::Statevector::uniform(16);
  {
    ScopedThreadCount guard(1);
    evolve(one);
  }
  {
    ScopedThreadCount guard(8);
    evolve(eight);
  }
  const auto& a = one.amplitudes();
  const auto& b = eight.amplitudes();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t z = 0; z < a.size(); ++z) {
    EXPECT_EQ(a[z].real(), b[z].real());
    EXPECT_EQ(a[z].imag(), b[z].imag());
  }
  EXPECT_EQ(one.norm(), eight.norm());
}

TEST(ParallelKernels, ResetUniformReusesBufferAndRestoresState) {
  quantum::Statevector sv = quantum::Statevector::uniform(10);
  sv.apply_gate(quantum::gates::rx(0.7), 3);
  sv.apply_cnot(1, 6);
  sv.reset_uniform(10);
  const double amp = 1.0 / std::sqrt(1024.0);
  for (const auto& a : sv.amplitudes()) {
    EXPECT_DOUBLE_EQ(a.real(), amp);
    EXPECT_DOUBLE_EQ(a.imag(), 0.0);
  }
  // Resizing resets the qubit count too.
  sv.reset_uniform(4);
  EXPECT_EQ(sv.num_qubits(), 4);
  EXPECT_EQ(sv.dimension(), 16u);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

}  // namespace
