// Tests for descriptive statistics, correlation and histograms.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "stats/correlation.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"

namespace qaoaml::stats {
namespace {

TEST(Descriptive, MeanOfKnownSample) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Descriptive, MeanRejectsEmpty) {
  EXPECT_THROW(mean({}), InvalidArgument);
}

TEST(Descriptive, VarianceIsUnbiased) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sum sq dev 32, n-1 = 7.
  EXPECT_NEAR(variance({2, 4, 4, 4, 5, 5, 7, 9}), 32.0 / 7.0, 1e-12);
}

TEST(Descriptive, VarianceOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(variance({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
}

TEST(Descriptive, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Descriptive, PercentileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 20.0);
}

TEST(Descriptive, PercentileValidatesRange) {
  EXPECT_THROW(percentile({1.0}, -1.0), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, 101.0), InvalidArgument);
}

TEST(Descriptive, SummaryAggregatesEverything) {
  const Summary s = summarize({1.0, 2.0, 3.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_NEAR(s.stddev, 1.0, 1e-12);
}

TEST(Descriptive, AccumulatorMatchesBatch) {
  Rng rng(3);
  std::vector<double> xs;
  Accumulator acc;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    xs.push_back(x);
    acc.add(x);
  }
  EXPECT_NEAR(acc.mean(), mean(xs), 1e-10);
  EXPECT_NEAR(acc.variance(), variance(xs), 1e-8);
  EXPECT_EQ(acc.count(), 1000u);
}

TEST(Correlation, PerfectLinearGivesUnitR) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Correlation, PerfectInverseGivesMinusOne) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Correlation, IndependentSamplesNearZero) {
  Rng rng(7);
  std::vector<double> xs(20000);
  std::vector<double> ys(20000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.normal();
    ys[i] = rng.normal();
  }
  EXPECT_NEAR(pearson(xs, ys), 0.0, 0.03);
}

TEST(Correlation, ZeroVarianceGivesZero) {
  EXPECT_DOUBLE_EQ(pearson({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(Correlation, IsSymmetricAndBounded) {
  Rng rng(11);
  std::vector<double> xs(500);
  std::vector<double> ys(500);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.normal();
    ys[i] = 0.5 * xs[i] + rng.normal();
  }
  const double r = pearson(xs, ys);
  EXPECT_DOUBLE_EQ(r, pearson(ys, xs));
  EXPECT_LE(std::abs(r), 1.0);
  EXPECT_GT(r, 0.2);  // strong-ish positive by construction
}

TEST(Correlation, MatrixDiagonalIsOne) {
  Rng rng(13);
  linalg::Matrix data(100, 3);
  for (std::size_t r = 0; r < 100; ++r) {
    data(r, 0) = rng.normal();
    data(r, 1) = data(r, 0) * 2.0;
    data(r, 2) = rng.normal();
  }
  const linalg::Matrix corr = correlation_matrix(data);
  EXPECT_DOUBLE_EQ(corr(0, 0), 1.0);
  EXPECT_NEAR(corr(0, 1), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(corr(1, 2), corr(2, 1));
}

TEST(Histogram, CountsFallIntoCorrectBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRangeValues) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, OfSpansSample) {
  const Histogram h = Histogram::of({1.0, 2.0, 3.0, 4.0}, 3);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(), 3u);
}

TEST(Histogram, DegenerateSampleIsWidened) {
  const Histogram h = Histogram::of({2.0, 2.0, 2.0}, 5);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinCenterIsMidpoint) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
  EXPECT_THROW(h.bin_center(10), InvalidArgument);
}

TEST(Histogram, PrintProducesOneLinePerBin) {
  Histogram h(0.0, 1.0, 4);
  h.add_all({0.1, 0.2, 0.6, 0.9});
  std::ostringstream os;
  h.print(os);
  int lines = 0;
  for (const char c : os.str()) lines += (c == '\n');
  EXPECT_EQ(lines, 4);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

}  // namespace
}  // namespace qaoaml::stats
