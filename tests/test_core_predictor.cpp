// Tests for feature extraction, the predictor bank, and the two-level /
// three-level accelerated solvers.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/angles.hpp"
#include "core/experiment.hpp"
#include "core/feature_extraction.hpp"
#include "core/parameter_predictor.hpp"
#include "core/two_level_solver.hpp"

namespace qaoaml::core {
namespace {

/// Shared dataset: 12 graphs, depths 1..4 (kept small for test speed).
const ParameterDataset& dataset() {
  static const ParameterDataset ds = [] {
    DatasetConfig config;
    config.num_graphs = 12;
    config.max_depth = 4;
    config.restarts = 6;
    config.seed = 2024;
    return ParameterDataset::generate(config);
  }();
  return ds;
}

std::vector<std::size_t> all_indices() {
  std::vector<std::size_t> idx(dataset().size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  return idx;
}

TEST(Features, TwoLevelVectorLayout) {
  const InstanceRecord& r = dataset().records()[0];
  const std::vector<double> f = two_level_features(r, 3);
  ASSERT_EQ(f.size(), 3u);
  EXPECT_DOUBLE_EQ(f[0], r.gamma_opt(1, 1));
  EXPECT_DOUBLE_EQ(f[1], r.beta_opt(1, 1));
  EXPECT_DOUBLE_EQ(f[2], 3.0);
}

TEST(Features, HierarchicalVectorLayout) {
  const InstanceRecord& r = dataset().records()[0];
  const std::vector<double> f = hierarchical_features(r, 2, 4);
  // gamma1(1), beta1(1), then 4 angles of p=2, then target depth.
  ASSERT_EQ(f.size(), 7u);
  EXPECT_DOUBLE_EQ(f[2], r.gamma_opt(2, 1));
  EXPECT_DOUBLE_EQ(f[5], r.beta_opt(2, 2));
  EXPECT_DOUBLE_EQ(f[6], 4.0);
  EXPECT_THROW(hierarchical_features(r, 9, 4), InvalidArgument);
}

TEST(Features, ResponseSelectsCorrectAngle) {
  const InstanceRecord& r = dataset().records()[1];
  EXPECT_DOUBLE_EQ(
      response_of(r, {AngleId::Kind::kGamma, 2}, 3), r.gamma_opt(3, 2));
  EXPECT_DOUBLE_EQ(
      response_of(r, {AngleId::Kind::kBeta, 3}, 3), r.beta_opt(3, 3));
}

TEST(Features, AngleIdNames) {
  EXPECT_EQ((AngleId{AngleId::Kind::kGamma, 3}).name(), "gamma3");
  EXPECT_EQ((AngleId{AngleId::Kind::kBeta, 1}).name(), "beta1");
}

TEST(Features, TrainingSetRowCounts) {
  // gamma_1 exists for every target depth 2..4 -> 3 rows per record.
  const ml::Dataset g1 = build_angle_training_set(
      dataset(), all_indices(), {AngleId::Kind::kGamma, 1});
  EXPECT_EQ(g1.size(), dataset().size() * 3);
  // gamma_4 only exists at depth 4 -> 1 row per record.
  const ml::Dataset g4 = build_angle_training_set(
      dataset(), all_indices(), {AngleId::Kind::kGamma, 4});
  EXPECT_EQ(g4.size(), dataset().size() * 1);
  // Hierarchical with pm = 2: targets 3..4 for gamma_1.
  const ml::Dataset h1 = build_angle_training_set(
      dataset(), all_indices(), {AngleId::Kind::kGamma, 1}, 2);
  EXPECT_EQ(h1.size(), dataset().size() * 2);
  EXPECT_EQ(h1.num_features(), 7u);
}

TEST(Predictor, TrainsAndPredictsWithinDomain) {
  ParameterPredictor predictor;  // GPR two-level by default
  predictor.train(dataset(), all_indices());
  EXPECT_TRUE(predictor.trained());
  const InstanceRecord& r = dataset().records()[0];
  for (int pt = 2; pt <= 4; ++pt) {
    const std::vector<double> init =
        predictor.predict(r.gamma_opt(1, 1), r.beta_opt(1, 1), pt);
    ASSERT_EQ(init.size(), num_angles(pt));
    EXPECT_TRUE(qaoa_bounds(pt).contains(init));
  }
  EXPECT_THROW(predictor.predict(1.0, 0.5, 5), InvalidArgument);
  EXPECT_THROW(predictor.predict(1.0, 0.5, 1), InvalidArgument);
}

TEST(Predictor, UntrainedPredictThrows) {
  const ParameterPredictor predictor;
  EXPECT_THROW(predictor.predict(1.0, 0.5, 2), InvalidArgument);
}

TEST(Predictor, PredictionsApproximateHeldOutOptima) {
  // Train on 9 graphs, evaluate on the remaining 3: predictions must be
  // meaningfully closer to the true optima than random initialization
  // would be (uniform-random expected |error| is large on [0, 2pi]).
  std::vector<std::size_t> train{0, 1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::size_t> test{9, 10, 11};
  ParameterPredictor predictor;
  predictor.train(dataset(), train);
  double total_err = 0.0;
  int count = 0;
  for (const std::size_t t : test) {
    const InstanceRecord& r = dataset().records()[t];
    for (int pt = 2; pt <= 4; ++pt) {
      const std::vector<double> pred =
          predictor.predict(r.gamma_opt(1, 1), r.beta_opt(1, 1), pt);
      const std::vector<double>& truth =
          r.optimal_params[static_cast<std::size_t>(pt - 1)];
      for (std::size_t k = 0; k < truth.size(); ++k) {
        total_err += std::abs(pred[k] - truth[k]);
        ++count;
      }
    }
  }
  const double mean_abs_err = total_err / count;
  EXPECT_LT(mean_abs_err, 0.6);  // uniform-random would give ~1.5-2.5
}

TEST(Predictor, HierarchicalBankValidatesUsage) {
  PredictorConfig config;
  config.intermediate_depth = 2;
  ParameterPredictor fine(config);
  fine.train(dataset(), all_indices());
  const InstanceRecord& r = dataset().records()[0];
  const std::vector<double> init = fine.predict_hierarchical(
      r.gamma_opt(1, 1), r.beta_opt(1, 1), r.optimal_params[1], 4);
  EXPECT_EQ(init.size(), 8u);
  EXPECT_TRUE(qaoa_bounds(4).contains(init));
  // Two-level predict on a hierarchical bank is a usage error.
  EXPECT_THROW(fine.predict(1.0, 0.5, 4), InvalidArgument);
  // Target at or below the intermediate depth is a usage error.
  EXPECT_THROW(fine.predict_hierarchical(1.0, 0.5, r.optimal_params[1], 2),
               InvalidArgument);
}

TEST(Predictor, PerAngleQueriesWork) {
  ParameterPredictor predictor;
  predictor.train(dataset(), all_indices());
  const InstanceRecord& r = dataset().records()[2];
  const std::vector<double> features = two_level_features(r, 3);
  const double g2 = predictor.predict_angle({AngleId::Kind::kGamma, 2}, features);
  EXPECT_TRUE(std::isfinite(g2));
}

TEST(TwoLevel, AcceleratesConvergence) {
  // The paper's core claim, in miniature: ML-initialized runs use fewer
  // total function calls than naive random-init runs, on average.
  std::vector<std::size_t> train{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<std::size_t> test{8, 9, 10, 11};
  ParameterPredictor predictor;
  predictor.train(dataset(), train);

  TwoLevelConfig config;  // L-BFGS-B
  Rng rng(5);
  double naive_fc = 0.0;
  double ml_fc = 0.0;
  for (const std::size_t t : test) {
    const InstanceRecord& r = dataset().records()[t];
    const MaxCutQaoa instance(r.problem, 4);
    for (int run = 0; run < 4; ++run) {
      naive_fc += solve_random_init(instance, config.optimizer, rng,
                                    config.options)
                      .function_calls;
    }
    for (int run = 0; run < 2; ++run) {
      ml_fc += solve_two_level(r.problem, 4, predictor, config, rng)
                   .total_function_calls / 2.0;
    }
  }
  naive_fc /= 4.0;
  EXPECT_LT(ml_fc, naive_fc);
}

TEST(TwoLevel, AccountsFunctionCallsAcrossStages) {
  std::vector<std::size_t> train{0, 1, 2, 3, 4, 5, 6, 7};
  ParameterPredictor predictor;
  predictor.train(dataset(), train);
  TwoLevelConfig config;
  Rng rng(7);
  const AcceleratedRun run =
      solve_two_level(dataset().records()[9].problem, 3, predictor, config, rng);
  EXPECT_EQ(run.total_function_calls,
            run.level1.function_calls + run.final.function_calls);
  EXPECT_EQ(run.predicted_init.size(), 6u);
  EXPECT_GT(run.final.approximation_ratio, 0.5);
}

TEST(ThreeLevel, RunsAndAccountsAllStages) {
  std::vector<std::size_t> train{0, 1, 2, 3, 4, 5, 6, 7};
  ParameterPredictor coarse;
  coarse.train(dataset(), train);
  PredictorConfig fine_config;
  fine_config.intermediate_depth = 2;
  ParameterPredictor fine(fine_config);
  fine.train(dataset(), train);

  TwoLevelConfig config;
  Rng rng(11);
  const AcceleratedRun run = solve_three_level(
      dataset().records()[10].problem, 4, coarse, fine, config, rng);
  EXPECT_EQ(run.total_function_calls,
            run.level1.function_calls + run.intermediate.function_calls +
                run.final.function_calls);
  EXPECT_GT(run.intermediate.function_calls, 0);
  EXPECT_GT(run.final.approximation_ratio, 0.5);
}

TEST(Experiment, ProducesTableRows) {
  std::vector<std::size_t> train{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<std::size_t> test{8, 9, 10, 11};
  ParameterPredictor predictor;
  predictor.train(dataset(), train);

  ExperimentConfig config;
  config.optimizers = {optim::OptimizerKind::kLbfgsb};
  config.target_depths = {2, 3};
  config.naive_runs = 3;
  config.ml_repeats = 2;
  const std::vector<TableRow> rows =
      run_table1(dataset(), test, predictor, config);
  ASSERT_EQ(rows.size(), 2u);
  for (const TableRow& row : rows) {
    EXPECT_GT(row.naive_fc_mean, 0.0);
    EXPECT_GT(row.ml_fc_mean, 0.0);
    EXPECT_GT(row.naive_ar_mean, 0.5);
    EXPECT_LE(row.naive_ar_mean, 1.0);
    EXPECT_GT(row.ml_ar_mean, 0.5);
    EXPECT_LE(row.ml_ar_mean, 1.0);
  }
  EXPECT_NO_THROW(average_fc_reduction(rows));
}

TEST(Experiment, ValidatesInputs) {
  ParameterPredictor untrained;
  ExperimentConfig config;
  EXPECT_THROW(run_table1(dataset(), {0}, untrained, config), InvalidArgument);
}

}  // namespace
}  // namespace qaoaml::core
