// Differential tests for the fused QAOA layer kernels.
//
// The fused path (Statevector::apply_qaoa_layer*) restructures each
// QAOA layer into a few blocked sweeps; these tests pin it against the
// unfused reference (diagonal evolution + one RX gate pass per qubit)
// and the gate-by-gate ansatz simulation on randomized graphs, angles,
// depths and qubit counts, and check norm preservation, thread-count
// determinism, the runtime kernel switch, and argument validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/angles.hpp"
#include "core/qaoa_objective.hpp"
#include "graph/generators.hpp"
#include "quantum/sim_config.hpp"
#include "quantum/statevector.hpp"

namespace qaoaml {
namespace {

using quantum::Complex;
using quantum::LayerKernel;
using quantum::ScopedLayerKernel;
using quantum::Statevector;

/// Fused vs unfused must agree far below this on every amplitude (the
/// arithmetic per amplitude is identical, so the observed difference is
/// exactly zero; 1e-12 is the contract).
constexpr double kAmpTol = 1e-12;

/// A Haar-ish random normalized state: iid complex Gaussians-by-pairs
/// would do, uniform boxes are enough for differential coverage.
Statevector random_state(int num_qubits, Rng& rng) {
  std::vector<Complex> amps(std::size_t{1} << num_qubits);
  double norm_sq = 0.0;
  for (Complex& a : amps) {
    a = Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    norm_sq += std::norm(a);
  }
  const double scale = 1.0 / std::sqrt(norm_sq);
  for (Complex& a : amps) a *= scale;
  return Statevector::from_amplitudes(std::move(amps));
}

/// The unfused reference for one QAOA layer.
void reference_layer(Statevector& sv, const std::vector<double>& diag,
                     double gamma, double beta) {
  sv.apply_diagonal_evolution(diag, gamma);
  const quantum::Gate1Q mixer = quantum::gates::rx(beta);
  for (int q = 0; q < sv.num_qubits(); ++q) sv.apply_gate(mixer, q);
}

double max_amp_diff(const Statevector& a, const Statevector& b) {
  double max_diff = 0.0;
  for (std::size_t z = 0; z < a.dimension(); ++z) {
    max_diff =
        std::max(max_diff, std::abs(a.amplitudes()[z] - b.amplitudes()[z]));
  }
  return max_diff;
}

/// An Erdos-Renyi graph guaranteed to have at least one edge.
graph::Graph nonempty_er(int nodes, Rng& rng) {
  for (;;) {
    graph::Graph g = graph::erdos_renyi_gnp(nodes, 0.5, rng);
    if (g.num_edges() > 0) return g;
  }
}

// ---------------------------------------------------------------------
// Kernel level: fused layer vs the unfused gate sequence on random
// states and random diagonals.  Qubit counts up to 14 cover every
// sweep shape: all-local (n <= 11), one leftover high level (n = 12),
// one high pair (n = 13), and a pair plus a leftover (n = 14).
// ---------------------------------------------------------------------

TEST(FusedLayer, MatchesUnfusedOnRandomStatesAndDiagonals) {
  Rng rng(0xF00D);
  for (int n = 1; n <= 14; ++n) {
    Statevector fused = random_state(n, rng);
    Statevector reference = fused;  // same amplitudes
    std::vector<double> diag(fused.dimension());
    for (double& d : diag) d = rng.uniform(-3.0, 3.0);
    const double gamma = rng.uniform(-2.0 * M_PI, 2.0 * M_PI);
    const double beta = rng.uniform(-M_PI, M_PI);

    fused.apply_qaoa_layer(diag, gamma, beta);
    reference_layer(reference, diag, gamma, beta);

    EXPECT_LE(max_amp_diff(fused, reference), kAmpTol) << "n=" << n;
  }
}

TEST(FusedLayer, IntegralVariantMatchesGenericKernels) {
  Rng rng(0xBEA7);
  for (int n = 2; n <= 14; ++n) {
    const int max_value = n;  // popcount-like spectrum
    Statevector fused = random_state(n, rng);
    Statevector reference = fused;
    std::vector<int> diag(fused.dimension());
    for (std::size_t z = 0; z < diag.size(); ++z) {
      diag[z] = static_cast<int>(rng.uniform_int(
          static_cast<std::uint64_t>(max_value) + 1));
    }
    const double gamma = rng.uniform(-M_PI, M_PI);
    const double beta = rng.uniform(-M_PI, M_PI);

    fused.apply_qaoa_layer_integral(diag, gamma, max_value, beta);
    reference.apply_diagonal_evolution_integral(diag, gamma, max_value);
    const quantum::Gate1Q mixer = quantum::gates::rx(beta);
    for (int q = 0; q < n; ++q) reference.apply_gate(mixer, q);

    EXPECT_LE(max_amp_diff(fused, reference), kAmpTol) << "n=" << n;
  }
}

TEST(FusedLayer, PreservesNormOverManyLayers) {
  Rng rng(0x9072);
  for (int n : {3, 8, 13}) {
    Statevector sv = Statevector::uniform(n);
    std::vector<double> diag(sv.dimension());
    for (double& d : diag) d = rng.uniform(0.0, 5.0);
    for (int layer = 0; layer < 8; ++layer) {
      sv.apply_qaoa_layer(diag, rng.uniform(-M_PI, M_PI),
                          rng.uniform(-M_PI, M_PI));
    }
    EXPECT_NEAR(sv.norm(), 1.0, 1e-12) << "n=" << n;
  }
}

// ---------------------------------------------------------------------
// QAOA level: the routed hot path (MaxCutQaoa::state_into) across
// randomized graphs, depths p = 1..4, and qubit counts 2..12, on both
// unweighted (integral spectrum) and weighted (general) instances.
// ---------------------------------------------------------------------

TEST(FusedQaoa, StateMatchesUnfusedPathOnRandomGraphs) {
  Rng rng(0x51AB);
  for (int n = 2; n <= 12; ++n) {
    const graph::Graph g = nonempty_er(n, rng);
    for (int p = 1; p <= 4; ++p) {
      const core::MaxCutQaoa instance(g, p);
      const std::vector<double> params = core::random_angles(p, rng);
      Statevector fused = Statevector::uniform(n);
      Statevector unfused = Statevector::uniform(n);
      {
        const ScopedLayerKernel guard(LayerKernel::kFused);
        instance.state_into(fused, params);
      }
      {
        const ScopedLayerKernel guard(LayerKernel::kUnfused);
        instance.state_into(unfused, params);
      }
      EXPECT_LE(max_amp_diff(fused, unfused), kAmpTol)
          << "n=" << n << " p=" << p;
      EXPECT_NEAR(fused.norm(), 1.0, 1e-12) << "n=" << n << " p=" << p;
    }
  }
}

TEST(FusedQaoa, StateMatchesUnfusedPathOnWeightedGraphs) {
  // Random weights break the integral-spectrum detection, forcing the
  // general (cos/sin per amplitude) phase branch on both paths.
  Rng rng(0x3EED);
  for (int n : {4, 7, 10}) {
    graph::Graph g(n);
    for (int u = 0; u < n; ++u) {
      g.add_edge(u, (u + 1) % n, rng.uniform(0.1, 2.0));
    }
    const core::MaxCutQaoa instance(g, 3);
    ASSERT_FALSE(instance.has_integer_spectrum());
    const std::vector<double> params = core::random_angles(3, rng);
    Statevector fused = Statevector::uniform(n);
    Statevector unfused = Statevector::uniform(n);
    {
      const ScopedLayerKernel guard(LayerKernel::kFused);
      instance.state_into(fused, params);
    }
    {
      const ScopedLayerKernel guard(LayerKernel::kUnfused);
      instance.state_into(unfused, params);
    }
    EXPECT_LE(max_amp_diff(fused, unfused), kAmpTol) << "n=" << n;
  }
}

TEST(FusedQaoa, ExpectationMatchesGateLevelSimulation) {
  // The gate path builds the state through hundreds of CNOT/RZ/RX
  // applications, so it accumulates more rounding than the fast paths;
  // the observed gap stays below ~3e-13 for these sizes.
  Rng rng(0xC0DE);
  for (int n : {3, 6, 9, 12}) {
    const graph::Graph g = nonempty_er(n, rng);
    for (int p = 1; p <= 4; ++p) {
      const core::MaxCutQaoa instance(g, p);
      const std::vector<double> params = core::random_angles(p, rng);
      const ScopedLayerKernel guard(LayerKernel::kFused);
      EXPECT_NEAR(instance.expectation(params),
                  instance.expectation_gate_level(params), 1e-12)
          << "n=" << n << " p=" << p;
    }
  }
}

// ---------------------------------------------------------------------
// Thread-count determinism: the fused sweeps are element-wise
// independent, so amplitudes must be bit-identical for every worker
// count once the state is large enough to fan out (n >= 15).
// ---------------------------------------------------------------------

TEST(FusedQaoa, AmplitudesBitIdenticalAcrossThreadCounts) {
  Rng rng(0x7EAD);
  const graph::Graph g = graph::random_regular(16, 3, rng);
  const core::MaxCutQaoa instance(g, 2);
  const std::vector<double> params = core::random_angles(2, rng);
  const ScopedLayerKernel guard(LayerKernel::kFused);

  quantum::AmpVector baseline;
  {
    const ScopedThreadCount threads(1);
    baseline = instance.state(params).amplitudes();
  }
  for (int threads : {2, 3, 8}) {
    const ScopedThreadCount scoped(threads);
    const quantum::AmpVector amps = instance.state(params).amplitudes();
    ASSERT_EQ(amps.size(), baseline.size());
    std::size_t mismatches = 0;
    for (std::size_t z = 0; z < amps.size(); ++z) {
      // Bitwise comparison: == on doubles, not a tolerance.
      if (amps[z] != baseline[z]) ++mismatches;
    }
    EXPECT_EQ(mismatches, 0u) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------
// The runtime kernel switch.
// ---------------------------------------------------------------------

TEST(LayerKernelConfig, ScopedOverrideWinsAndRestores) {
  const LayerKernel ambient = quantum::default_layer_kernel();
  {
    const ScopedLayerKernel outer(LayerKernel::kUnfused);
    EXPECT_EQ(quantum::default_layer_kernel(), LayerKernel::kUnfused);
    EXPECT_FALSE(quantum::fused_kernels_enabled());
    {
      const ScopedLayerKernel inner(LayerKernel::kFused);
      EXPECT_EQ(quantum::default_layer_kernel(), LayerKernel::kFused);
      EXPECT_TRUE(quantum::fused_kernels_enabled());
    }
    EXPECT_EQ(quantum::default_layer_kernel(), LayerKernel::kUnfused);
  }
  EXPECT_EQ(quantum::default_layer_kernel(), ambient);
}

TEST(LayerKernelConfig, DefaultsToFusedWithoutEnvOverride) {
  if (std::getenv("QAOAML_FUSED") != nullptr) {
    GTEST_SKIP() << "QAOAML_FUSED set in the environment";
  }
  EXPECT_TRUE(quantum::fused_kernels_enabled());
}

// ---------------------------------------------------------------------
// Argument validation (see also Statevector error tests in
// test_quantum.cpp): the fused entry points must reject malformed
// diagonals before touching any amplitude.
// ---------------------------------------------------------------------

TEST(FusedLayer, RejectsMalformedDiagonals) {
  Statevector sv = Statevector::uniform(4);
  EXPECT_THROW(sv.apply_qaoa_layer(std::vector<double>(8, 0.0), 0.3, 0.4),
               InvalidArgument);
  EXPECT_THROW(
      sv.apply_qaoa_layer_integral(std::vector<int>(8, 0), 0.3, 1, 0.4),
      InvalidArgument);
  EXPECT_THROW(
      sv.apply_qaoa_layer_integral(std::vector<int>(16, 0), 0.3, -1, 0.4),
      InvalidArgument);
  // Entries outside [0, max_value] would index past the phase table.
  std::vector<int> too_big(16, 0);
  too_big[5] = 3;
  EXPECT_THROW(sv.apply_qaoa_layer_integral(too_big, 0.3, 2, 0.4),
               InvalidArgument);
  std::vector<int> negative(16, 0);
  negative[9] = -1;
  EXPECT_THROW(sv.apply_qaoa_layer_integral(negative, 0.3, 2, 0.4),
               InvalidArgument);
}

}  // namespace
}  // namespace qaoaml
