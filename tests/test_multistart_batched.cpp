// Differential tests for the batched multistart path: solve_multistart
// (one BatchEvaluator batch over the thread pool, per-chunk workspace
// reuse) against solve_multistart_sequential (the plain loop oracle).
// Same restarts, same winner, bit-identical objectives — for every
// optimizer family, thread count, and from inside a parallel region.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/qaoa_solver.hpp"
#include "graph/generators.hpp"

namespace qaoaml::core {
namespace {

const graph::Graph& problem() {
  static const graph::Graph g = [] {
    Rng rng(404);
    return graph::erdos_renyi_gnp(7, 0.5, rng);
  }();
  return g;
}

void expect_identical(const MultistartRuns& batched,
                      const MultistartRuns& sequential) {
  // Bit-identical, not approximately equal: both paths evaluate the
  // same objective function on the same starts.
  EXPECT_EQ(batched.best.expectation, sequential.best.expectation);
  EXPECT_EQ(batched.best.params, sequential.best.params);
  EXPECT_EQ(batched.best.function_calls, sequential.best.function_calls);
  EXPECT_EQ(batched.total_function_calls, sequential.total_function_calls);
  ASSERT_EQ(batched.runs.size(), sequential.runs.size());
  for (std::size_t r = 0; r < batched.runs.size(); ++r) {
    EXPECT_EQ(batched.runs[r].expectation, sequential.runs[r].expectation);
    EXPECT_EQ(batched.runs[r].params, sequential.runs[r].params);
    EXPECT_EQ(batched.runs[r].function_calls,
              sequential.runs[r].function_calls);
  }
}

TEST(BatchedMultistart, MatchesSequentialForEveryOptimizer) {
  const MaxCutQaoa instance(problem(), 2);
  for (const optim::OptimizerKind kind : optim::all_optimizers()) {
    Rng rng_batched(2024);
    Rng rng_sequential(2024);
    const MultistartRuns batched =
        solve_multistart(instance, kind, 7, rng_batched);
    const MultistartRuns sequential =
        solve_multistart_sequential(instance, kind, 7, rng_sequential);
    expect_identical(batched, sequential);
  }
}

TEST(BatchedMultistart, ThreadCountCannotChangeAnyBit) {
  const MaxCutQaoa instance(problem(), 3);
  MultistartRuns reference;
  {
    ScopedThreadCount scoped(1);
    Rng rng(55);
    reference =
        solve_multistart(instance, optim::OptimizerKind::kLbfgsb, 9, rng);
  }
  for (const int threads : {2, 5, 8}) {
    ScopedThreadCount scoped(threads);
    Rng rng(55);
    const MultistartRuns runs =
        solve_multistart(instance, optim::OptimizerKind::kLbfgsb, 9, rng);
    expect_identical(runs, reference);
  }
}

TEST(BatchedMultistart, IdenticalWhenNestedInParallelRegion) {
  // Corpus generation calls solve_multistart from inside the unit
  // fan-out, where nested parallel_* collapses inline; the batched path
  // must produce the same bits there as at top level.
  const MaxCutQaoa instance(problem(), 2);
  Rng rng_top(31);
  const MultistartRuns top =
      solve_multistart(instance, optim::OptimizerKind::kLbfgsb, 5, rng_top);

  // Two indices so parallel_for actually enters the pool (a one-element
  // loop runs inline without marking the parallel region).
  MultistartRuns nested;
  parallel_for(2, [&](std::size_t i) {
    if (i != 0) return;
    Rng rng(31);
    nested =
        solve_multistart(instance, optim::OptimizerKind::kLbfgsb, 5, rng);
  });
  expect_identical(nested, top);
}

TEST(BatchedMultistart, RestartCountValidation) {
  const MaxCutQaoa instance(problem(), 1);
  Rng rng(1);
  EXPECT_THROW(solve_multistart(instance, optim::OptimizerKind::kLbfgsb, 0,
                                rng),
               Error);
  EXPECT_THROW(solve_multistart_sequential(
                   instance, optim::OptimizerKind::kLbfgsb, 0, rng),
               Error);
}

}  // namespace
}  // namespace qaoaml::core
