// The ml/ serialization contract: every model kind round-trips through
// save_regressor / load_regressor with bit-identical predictions, and
// the versioned header rejects corrupt, truncated and old-format files
// loudly instead of half-loading them.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/parameter_dataset.hpp"
#include "core/parameter_predictor.hpp"
#include "ml/gpr.hpp"
#include "ml/serialize.hpp"

namespace qaoaml::ml {
namespace {

/// Deterministic synthetic regression set: 3 features, a smooth target
/// with mild noise.
Dataset synthetic_data(std::size_t rows = 40) {
  Rng rng(0xD05E);
  Dataset data;
  for (std::size_t r = 0; r < rows; ++r) {
    const double a = rng.uniform(-2.0, 2.0);
    const double b = rng.uniform(-2.0, 2.0);
    const double c = rng.uniform(0.0, 4.0);
    const double y =
        std::sin(a) + 0.5 * b * b - 0.25 * c + 0.05 * rng.normal();
    data.add({a, b, c}, y);
  }
  return data;
}

/// Probe points off the training grid.
std::vector<std::vector<double>> probe_points() {
  Rng rng(0xBEA7);
  std::vector<std::vector<double>> probes;
  for (int i = 0; i < 16; ++i) {
    probes.push_back({rng.uniform(-2.5, 2.5), rng.uniform(-2.5, 2.5),
                      rng.uniform(-0.5, 4.5)});
  }
  return probes;
}

std::string serialized_bytes(const Regressor& model) {
  std::ostringstream os(std::ios::binary);
  save_regressor(os, model);
  return os.str();
}

std::unique_ptr<Regressor> from_bytes(const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  return load_regressor(is);
}

class SerializeRoundTrip : public ::testing::TestWithParam<RegressorKind> {};

TEST_P(SerializeRoundTrip, PredictionsAreBitIdenticalAfterReload) {
  const Dataset data = synthetic_data();
  auto model = make_regressor(GetParam());
  model->fit(data);

  const std::string bytes = serialized_bytes(*model);
  const auto reloaded = from_bytes(bytes);

  ASSERT_TRUE(reloaded->fitted());
  EXPECT_EQ(reloaded->kind(), GetParam());
  EXPECT_EQ(reloaded->name(), model->name());
  for (const auto& probe : probe_points()) {
    // EXPECT_EQ, not NEAR: the contract is bit-identity, which is what
    // lets a sharded consumer treat a reloaded bank as *the same* bank.
    EXPECT_EQ(model->predict(probe), reloaded->predict(probe));
  }
  for (std::size_t r = 0; r < data.size(); ++r) {
    EXPECT_EQ(model->predict(data.x.row(r)), reloaded->predict(data.x.row(r)));
  }
}

TEST_P(SerializeRoundTrip, SerializationIsDeterministic) {
  const Dataset data = synthetic_data();
  auto model = make_regressor(GetParam());
  model->fit(data);
  EXPECT_EQ(serialized_bytes(*model), serialized_bytes(*model));
  // A reloaded model re-serializes to the same bytes (GPR re-derives
  // its Cholesky factor on load; the stored state must not drift).
  EXPECT_EQ(serialized_bytes(*from_bytes(serialized_bytes(*model))),
            serialized_bytes(*model));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SerializeRoundTrip,
                         ::testing::Values(RegressorKind::kGpr,
                                           RegressorKind::kLinear,
                                           RegressorKind::kRegressionTree,
                                           RegressorKind::kSvr),
                         [](const auto& info) { return to_string(info.param); });

TEST(SerializeTest, SavingAnUnfittedModelThrows) {
  const auto model = make_regressor(RegressorKind::kLinear);
  std::ostringstream os(std::ios::binary);
  EXPECT_THROW(save_regressor(os, *model), Error);
}

TEST(SerializeTest, GprUncertaintySurvivesTheRoundTrip) {
  const Dataset data = synthetic_data();
  GPRegressor model;
  model.fit(data);

  const std::string bytes = serialized_bytes(model);
  const auto reloaded = from_bytes(bytes);
  const auto* gpr = dynamic_cast<const GPRegressor*>(reloaded.get());
  ASSERT_NE(gpr, nullptr);
  EXPECT_EQ(gpr->log_marginal_likelihood(), model.log_marginal_likelihood());
  for (const auto& probe : probe_points()) {
    const auto a = model.predict_with_uncertainty(probe);
    const auto b = gpr->predict_with_uncertainty(probe);
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.stddev, b.stddev);
  }
}

// --- Header validation -------------------------------------------------

std::string reference_bytes() {
  const Dataset data = synthetic_data();
  auto model = make_regressor(RegressorKind::kLinear);
  model->fit(data);
  return serialized_bytes(*model);
}

TEST(SerializeTest, RejectsBadMagic) {
  std::string bytes = reference_bytes();
  bytes[0] = 'X';
  EXPECT_THROW(from_bytes(bytes), InvalidArgument);
}

TEST(SerializeTest, RejectsUnsupportedVersion) {
  std::string bytes = reference_bytes();
  bytes[4] = static_cast<char>(kFormatVersion + 41);  // version field
  EXPECT_THROW(from_bytes(bytes), InvalidArgument);
}

TEST(SerializeTest, RejectsUnknownKindTag) {
  std::string bytes = reference_bytes();
  bytes[8] = 99;  // kind field
  EXPECT_THROW(from_bytes(bytes), InvalidArgument);
}

TEST(SerializeTest, RejectsTruncation) {
  const std::string bytes = reference_bytes();
  // Every truncation point must throw — header, payload, or final byte.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{17}, bytes.size() / 2,
        bytes.size() - 1}) {
    EXPECT_THROW(from_bytes(bytes.substr(0, keep)), InvalidArgument)
        << "keep=" << keep;
  }
}

TEST(SerializeTest, RejectsPayloadCorruption) {
  std::string bytes = reference_bytes();
  // Flip one payload byte (offset 28 is the first payload byte); the
  // checksum must catch it before any parser sees the garbage.
  bytes[30] = static_cast<char>(bytes[30] ^ 0x40);
  EXPECT_THROW(from_bytes(bytes), InvalidArgument);
}

// --- Predictor banks ---------------------------------------------------

const core::ParameterDataset& tiny_corpus() {
  static const core::ParameterDataset dataset = [] {
    core::DatasetConfig config;
    config.num_graphs = 8;
    config.num_nodes = 6;
    config.max_depth = 3;
    config.restarts = 3;
    config.seed = 1234;
    return core::ParameterDataset::generate(config);
  }();
  return dataset;
}

class BankRoundTrip : public ::testing::TestWithParam<RegressorKind> {};

TEST_P(BankRoundTrip, BankPredictsBitIdenticallyAfterReload) {
  core::PredictorConfig config;
  config.model = GetParam();
  core::ParameterPredictor bank(config);
  std::vector<std::size_t> all(tiny_corpus().size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  bank.train(tiny_corpus(), all);

  const std::string path =
      (std::filesystem::path(::testing::TempDir()) /
       ("bank_" + to_string(GetParam()) + ".qpb"))
          .string();
  bank.save(path);
  const core::ParameterPredictor reloaded = core::ParameterPredictor::load(path);

  ASSERT_TRUE(reloaded.trained());
  EXPECT_EQ(reloaded.max_depth(), bank.max_depth());
  EXPECT_EQ(reloaded.config().model, GetParam());
  Rng rng(0xF1E1D);
  for (int trial = 0; trial < 8; ++trial) {
    const double g1 = rng.uniform(0.0, 2.0 * M_PI);
    const double b1 = rng.uniform(0.0, M_PI);
    for (int depth = 2; depth <= bank.max_depth(); ++depth) {
      EXPECT_EQ(bank.predict(g1, b1, depth), reloaded.predict(g1, b1, depth));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, BankRoundTrip,
                         ::testing::Values(RegressorKind::kGpr,
                                           RegressorKind::kLinear,
                                           RegressorKind::kRegressionTree,
                                           RegressorKind::kSvr),
                         [](const auto& info) { return to_string(info.param); });

TEST(BankSerializeTest, RejectsTruncatedAndCorruptBankFiles) {
  core::ParameterPredictor bank;
  std::vector<std::size_t> all(tiny_corpus().size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  bank.train(tiny_corpus(), all);

  const std::filesystem::path dir(::testing::TempDir());
  const std::string good = (dir / "bank_good.qpb").string();
  bank.save(good);

  std::ifstream is(good, std::ios::binary);
  std::stringstream buffer;
  buffer << is.rdbuf();
  const std::string bytes = buffer.str();

  const auto write_variant = [&](const std::string& name,
                                 const std::string& content) {
    const std::string path = (dir / name).string();
    std::ofstream os(path, std::ios::binary);
    os << content;
    return path;
  };

  EXPECT_THROW(core::ParameterPredictor::load((dir / "missing.qpb").string()),
               Error);

  std::string bad_magic = bytes;
  bad_magic[0] = 'Z';
  EXPECT_THROW(
      core::ParameterPredictor::load(write_variant("bank_magic.qpb", bad_magic)),
      InvalidArgument);

  std::string bad_version = bytes;
  bad_version[4] = 77;
  EXPECT_THROW(core::ParameterPredictor::load(
                   write_variant("bank_version.qpb", bad_version)),
               InvalidArgument);

  EXPECT_THROW(core::ParameterPredictor::load(write_variant(
                   "bank_truncated.qpb", bytes.substr(0, bytes.size() / 2))),
               InvalidArgument);

  std::string corrupt = bytes;
  corrupt[bytes.size() / 2] = static_cast<char>(corrupt[bytes.size() / 2] ^ 1);
  EXPECT_THROW(core::ParameterPredictor::load(
                   write_variant("bank_corrupt.qpb", corrupt)),
               InvalidArgument);

  // The pristine file still loads after all that.
  EXPECT_TRUE(core::ParameterPredictor::load(good).trained());
}

}  // namespace
}  // namespace qaoaml::ml
