// Tests for the classical optimizers (L-BFGS-B, Nelder-Mead, SLSQP,
// COBYLA), the finite-difference machinery and the multistart driver.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "optim/finite_diff.hpp"
#include "optim/lbfgsb.hpp"
#include "optim/multistart.hpp"
#include "optim/optimizer.hpp"
#include "optim/slsqp.hpp"
#include "optim/test_functions.hpp"

namespace qaoaml::optim {
namespace {

TEST(Bounds, ConstructionValidates) {
  EXPECT_THROW(Bounds({0.0}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(Bounds({2.0}, {1.0}), InvalidArgument);
}

TEST(Bounds, ContainsAndClamp) {
  const Bounds b = Bounds::uniform(2, -1.0, 1.0);
  EXPECT_TRUE(b.contains(std::vector<double>{0.0, 0.5}));
  EXPECT_FALSE(b.contains(std::vector<double>{0.0, 1.5}));
  EXPECT_EQ(b.clamp(std::vector<double>{-3.0, 0.5}),
            (std::vector<double>{-1.0, 0.5}));
}

TEST(Bounds, UnboundedContainsEverything) {
  const Bounds b = Bounds::unbounded(3);
  EXPECT_TRUE(b.contains(std::vector<double>{1e300, -1e300, 0.0}));
}

TEST(CountingObjective, CountsEveryCall) {
  CountingObjective counting(testfn::sphere, 10);
  const std::vector<double> x{1.0, 2.0};
  EXPECT_DOUBLE_EQ(counting(x), 5.0);
  EXPECT_DOUBLE_EQ(counting(x), 5.0);
  EXPECT_EQ(counting.count(), 2);
  EXPECT_FALSE(counting.exhausted());
}

TEST(CountingObjective, ReportsExhaustion) {
  CountingObjective counting(testfn::sphere, 2);
  const std::vector<double> x{0.0};
  counting(x);
  counting(x);
  EXPECT_TRUE(counting.exhausted());
}

TEST(FiniteDiff, ForwardGradientOfQuadratic) {
  CountingObjective counting(testfn::sphere, 1000);
  const std::vector<double> x{1.0, -2.0, 3.0};
  const double f0 = counting(x);
  const std::vector<double> grad = forward_diff_gradient(
      counting, x, f0, 1e-8, Bounds::unbounded(3));
  EXPECT_NEAR(grad[0], 2.0, 1e-5);
  EXPECT_NEAR(grad[1], -4.0, 1e-5);
  EXPECT_NEAR(grad[2], 6.0, 1e-5);
  EXPECT_EQ(counting.count(), 4);  // f0 + 3 probes
}

TEST(FiniteDiff, CentralGradientIsMoreAccurate) {
  CountingObjective counting(testfn::rosenbrock, 1000);
  const std::vector<double> x{0.3, 0.7};
  const std::vector<double> grad = central_diff_gradient(counting, x, 1e-6);
  // Analytic Rosenbrock gradient.
  const double gx = -400.0 * x[0] * (x[1] - x[0] * x[0]) - 2.0 * (1.0 - x[0]);
  const double gy = 200.0 * (x[1] - x[0] * x[0]);
  EXPECT_NEAR(grad[0], gx, 1e-4);
  EXPECT_NEAR(grad[1], gy, 1e-4);
}

TEST(FiniteDiff, ProbesBackwardAtUpperBound) {
  CountingObjective counting(testfn::sphere, 100);
  const Bounds b = Bounds::uniform(1, -1.0, 1.0);
  const std::vector<double> x{1.0};  // at the upper bound
  const double f0 = counting(x);
  const std::vector<double> grad =
      forward_diff_gradient(counting, x, 1e-8, f0 == 1.0 ? 1e-8 : 1e-8, b);
  (void)grad;
  SUCCEED();  // the probe staying feasible is the property under test
}

TEST(TestFunctions, KnownValues) {
  EXPECT_DOUBLE_EQ(testfn::sphere(std::vector<double>{0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(testfn::rosenbrock(std::vector<double>{1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(testfn::booth(std::vector<double>{1.0, 3.0}), 0.0);
  EXPECT_NEAR(testfn::rastrigin(std::vector<double>{0.0, 0.0}), 0.0, 1e-12);
}

TEST(OptimizerKind, NamesRoundTrip) {
  for (const OptimizerKind kind : all_optimizers()) {
    EXPECT_EQ(optimizer_from_string(to_string(kind)), kind);
  }
  EXPECT_THROW(optimizer_from_string("SGD"), InvalidArgument);
  EXPECT_EQ(all_optimizers().size(), 4u);
}

TEST(OptimizerKind, GradientClassification) {
  EXPECT_TRUE(is_gradient_based(OptimizerKind::kLbfgsb));
  EXPECT_TRUE(is_gradient_based(OptimizerKind::kSlsqp));
  EXPECT_FALSE(is_gradient_based(OptimizerKind::kNelderMead));
  EXPECT_FALSE(is_gradient_based(OptimizerKind::kCobyla));
}

/// Every optimizer must solve easy smooth problems and respect bounds.
class AllOptimizersTest : public ::testing::TestWithParam<OptimizerKind> {};

TEST_P(AllOptimizersTest, MinimizesSphereFrom2D) {
  const OptimizerKind kind = GetParam();
  const std::vector<double> x0{2.0, -1.5};
  const OptimResult result =
      minimize(kind, testfn::sphere, x0, Bounds::uniform(2, -5.0, 5.0));
  EXPECT_LT(result.fun, 1e-4);
  EXPECT_GT(result.nfev, 0);
}

TEST_P(AllOptimizersTest, MinimizesSphereFrom6D) {
  const OptimizerKind kind = GetParam();
  const std::vector<double> x0{2.0, -1.5, 1.0, 0.5, -2.0, 3.0};
  Options options;
  options.max_iterations = 4000;
  const OptimResult result =
      minimize(kind, testfn::sphere, x0, Bounds::uniform(6, -5.0, 5.0), options);
  EXPECT_LT(result.fun, 1e-3);
}

TEST_P(AllOptimizersTest, MinimizesBooth) {
  const OptimizerKind kind = GetParam();
  const std::vector<double> x0{0.0, 0.0};
  Options options;
  options.max_iterations = 4000;
  const OptimResult result =
      minimize(kind, testfn::booth, x0, Bounds::uniform(2, -10.0, 10.0), options);
  EXPECT_LT(result.fun, 1e-2);
  EXPECT_NEAR(result.x[0], 1.0, 0.2);
  EXPECT_NEAR(result.x[1], 3.0, 0.2);
}

TEST_P(AllOptimizersTest, RespectsBoundsWhenOptimumIsOutside) {
  // Minimum of (x - 3)^2 over [-1, 1] is at x = 1.
  const OptimizerKind kind = GetParam();
  const ObjectiveFn fn = [](std::span<const double> x) {
    return (x[0] - 3.0) * (x[0] - 3.0);
  };
  const OptimResult result =
      minimize(kind, fn, std::vector<double>{0.0}, Bounds::uniform(1, -1.0, 1.0));
  EXPECT_NEAR(result.x[0], 1.0, 1e-2);
  EXPECT_GE(result.x[0], -1.0);
  EXPECT_LE(result.x[0], 1.0);
}

TEST_P(AllOptimizersTest, StaysInsideBoxThroughout) {
  // The objective itself asserts feasibility of every probe.
  const OptimizerKind kind = GetParam();
  const Bounds box = Bounds::uniform(3, 0.0, 2.0);
  const ObjectiveFn fn = [&box](std::span<const double> x) {
    EXPECT_TRUE(box.contains(x));
    return testfn::sphere(x);
  };
  minimize(kind, fn, std::vector<double>{1.0, 1.5, 0.5}, box);
}

TEST_P(AllOptimizersTest, HonorsEvaluationBudget) {
  const OptimizerKind kind = GetParam();
  Options options;
  options.max_evaluations = 25;
  const OptimResult result = minimize(
      kind, testfn::rosenbrock, std::vector<double>{-1.0, 2.0},
      Bounds::uniform(2, -5.0, 5.0), options);
  EXPECT_LE(result.nfev, 25 + 2);  // small slack for in-flight probes
}

TEST_P(AllOptimizersTest, ReturnsBestEvaluatedPoint) {
  const OptimizerKind kind = GetParam();
  const OptimResult result = minimize(
      kind, testfn::sphere, std::vector<double>{3.0, 3.0},
      Bounds::uniform(2, -5.0, 5.0));
  // The reported value matches the reported point.
  EXPECT_NEAR(result.fun, testfn::sphere(result.x), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllOptimizersTest,
    ::testing::Values(OptimizerKind::kLbfgsb, OptimizerKind::kNelderMead,
                      OptimizerKind::kSlsqp, OptimizerKind::kCobyla),
    [](const ::testing::TestParamInfo<OptimizerKind>& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Lbfgsb, SolvesRosenbrockToHighPrecision) {
  Options options;
  options.max_iterations = 500;
  const OptimResult result =
      lbfgsb(testfn::rosenbrock, std::vector<double>{-1.2, 1.0},
             Bounds::uniform(2, -5.0, 5.0), options);
  EXPECT_LT(result.fun, 1e-6);
}

TEST(Lbfgsb, CountsGradientProbesInNfev) {
  const OptimResult result =
      lbfgsb(testfn::sphere, std::vector<double>{1.0, 1.0},
             Bounds::uniform(2, -5.0, 5.0));
  // At least one gradient (n + 1 evals) must have happened.
  EXPECT_GE(result.nfev, 3);
}

TEST(Slsqp, SolvesRosenbrock) {
  Options options;
  options.max_iterations = 500;
  const OptimResult result =
      slsqp(testfn::rosenbrock, std::vector<double>{-1.2, 1.0},
            Bounds::uniform(2, -5.0, 5.0), options);
  EXPECT_LT(result.fun, 1e-4);
}

TEST(BoxQp, UnconstrainedMinimumInsideBox) {
  // B = I, g = (-1, -2): minimum at d = (1, 2), inside [-5, 5]^2.
  const linalg::Matrix b = linalg::Matrix::identity(2);
  const std::vector<double> d = solve_box_qp(
      b, {-1.0, -2.0}, {-5.0, -5.0}, {5.0, 5.0});
  EXPECT_NEAR(d[0], 1.0, 1e-10);
  EXPECT_NEAR(d[1], 2.0, 1e-10);
}

TEST(BoxQp, ClampsToActiveBound) {
  const linalg::Matrix b = linalg::Matrix::identity(2);
  const std::vector<double> d = solve_box_qp(
      b, {-10.0, -1.0}, {-2.0, -2.0}, {2.0, 2.0});
  EXPECT_NEAR(d[0], 2.0, 1e-10);  // clipped
  EXPECT_NEAR(d[1], 1.0, 1e-10);  // interior
}

TEST(BoxQp, CoupledHessianSatisfiesKkt) {
  // B = [[2, 1], [1, 2]], g = (-4, -4): unconstrained d = (4/3, 4/3).
  linalg::Matrix b(2, 2);
  b(0, 0) = 2.0;
  b(0, 1) = 1.0;
  b(1, 0) = 1.0;
  b(1, 1) = 2.0;
  const std::vector<double> d =
      solve_box_qp(b, {-4.0, -4.0}, {-1.0, -10.0}, {1.0, 10.0});
  // d0 clamps to 1; reduced problem: 2 d1 + 1 = 4 -> d1 = 1.5.
  EXPECT_NEAR(d[0], 1.0, 1e-10);
  EXPECT_NEAR(d[1], 1.5, 1e-10);
}

TEST(Multistart, BestIsMinimumOverRuns) {
  Rng rng(5);
  const MultistartResult result = multistart_minimize(
      OptimizerKind::kNelderMead, testfn::rastrigin,
      Bounds::uniform(2, -5.12, 5.12), 10, rng);
  EXPECT_EQ(result.runs.size(), 10u);
  for (const OptimResult& run : result.runs) {
    EXPECT_GE(run.fun, result.best.fun);
  }
  int total = 0;
  for (const OptimResult& run : result.runs) total += run.nfev;
  EXPECT_EQ(total, result.total_nfev);
}

TEST(Multistart, MoreRestartsFindBetterRastriginOptima) {
  Rng rng1(7);
  Rng rng2(7);
  const MultistartResult few = multistart_minimize(
      OptimizerKind::kLbfgsb, testfn::rastrigin,
      Bounds::uniform(3, -5.12, 5.12), 2, rng1);
  const MultistartResult many = multistart_minimize(
      OptimizerKind::kLbfgsb, testfn::rastrigin,
      Bounds::uniform(3, -5.12, 5.12), 25, rng2);
  EXPECT_LE(many.best.fun, few.best.fun + 1e-12);
}

TEST(Multistart, IsDeterministicGivenSeed) {
  Rng rng1(11);
  Rng rng2(11);
  const MultistartResult a = multistart_minimize(
      OptimizerKind::kCobyla, testfn::sphere, Bounds::uniform(2, -1.0, 1.0), 3,
      rng1);
  const MultistartResult b = multistart_minimize(
      OptimizerKind::kCobyla, testfn::sphere, Bounds::uniform(2, -1.0, 1.0), 3,
      rng2);
  EXPECT_EQ(a.best.fun, b.best.fun);
  EXPECT_EQ(a.total_nfev, b.total_nfev);
}

TEST(Multistart, RandomPointStaysInBounds) {
  Rng rng(13);
  const Bounds box = Bounds::uniform(4, -2.0, 3.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(box.contains(random_point(box, rng)));
  }
}

TEST(StopReason, NamesAreDistinct) {
  EXPECT_EQ(to_string(StopReason::kConverged), "converged");
  EXPECT_NE(to_string(StopReason::kMaxEvaluations),
            to_string(StopReason::kMaxIterations));
}

}  // namespace
}  // namespace qaoaml::optim
