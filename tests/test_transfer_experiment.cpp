// The cross-family transfer sweep's guarantees: the merged cells are
// bit-identical to the direct run_transfer matrix for every shard and
// thread count, a shard killed mid-write resumes, stale configs are
// discarded, merging an incomplete shard set fails loudly, and the
// cold baseline of an eval column is shared across train families and
// models.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/transfer_experiment.hpp"

namespace qaoaml::core {
namespace {

/// A tiny two-family, two-model matrix (8 cells, 24 units) that the
/// whole suite shares.
TransferConfig tiny_config() {
  TransferConfig config;
  EnsembleConfig er;  // the paper's family, default knobs
  EnsembleConfig small_world;
  small_world.family = GraphFamily::kSmallWorld;
  config.families = {er, small_world};
  config.models = {ml::RegressorKind::kLinear,
                   ml::RegressorKind::kRegressionTree};
  config.num_nodes = 6;
  config.train_graphs = 4;
  config.max_depth = 2;
  config.corpus_restarts = 2;
  config.eval_graphs = 3;
  config.target_depth = 2;
  config.cold_restarts = 2;
  config.warm_repeats = 1;
  config.seed = 123;
  return config;
}

const std::vector<TransferCell>& direct_cells() {
  static const std::vector<TransferCell> cells = run_transfer(tiny_config());
  return cells;
}

std::string unique_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "transfer_shard" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

void expect_cells_identical(const std::vector<TransferCell>& a,
                            const std::vector<TransferCell>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].train_family, b[i].train_family);
    EXPECT_EQ(a[i].eval_family, b[i].eval_family);
    EXPECT_EQ(a[i].model, b[i].model);
    // Bit-identical, not approximately equal: unit lines carry 17
    // significant digits, which round-trips doubles exactly.
    EXPECT_EQ(a[i].cold_ar_mean, b[i].cold_ar_mean);
    EXPECT_EQ(a[i].cold_ar_sd, b[i].cold_ar_sd);
    EXPECT_EQ(a[i].cold_fc_mean, b[i].cold_fc_mean);
    EXPECT_EQ(a[i].cold_fc_sd, b[i].cold_fc_sd);
    EXPECT_EQ(a[i].cold_iter_mean, b[i].cold_iter_mean);
    EXPECT_EQ(a[i].warm_ar_mean, b[i].warm_ar_mean);
    EXPECT_EQ(a[i].warm_ar_sd, b[i].warm_ar_sd);
    EXPECT_EQ(a[i].warm_fc_mean, b[i].warm_fc_mean);
    EXPECT_EQ(a[i].warm_fc_sd, b[i].warm_fc_sd);
    EXPECT_EQ(a[i].warm_iter_mean, b[i].warm_iter_mean);
    EXPECT_EQ(a[i].ar_delta, b[i].ar_delta);
    EXPECT_EQ(a[i].fc_reduction_percent, b[i].fc_reduction_percent);
    EXPECT_EQ(a[i].iter_reduction_percent, b[i].iter_reduction_percent);
  }
}

TEST(TransferExperimentTest, MatrixShapeAndSanity) {
  const TransferConfig config = tiny_config();
  const auto& cells = direct_cells();
  // train-major, then eval, then model.
  ASSERT_EQ(cells.size(), config.families.size() * config.families.size() *
                              config.models.size());
  std::size_t i = 0;
  for (std::size_t t = 0; t < config.families.size(); ++t) {
    for (std::size_t e = 0; e < config.families.size(); ++e) {
      for (std::size_t m = 0; m < config.models.size(); ++m, ++i) {
        EXPECT_EQ(cells[i].train_family, t);
        EXPECT_EQ(cells[i].eval_family, e);
        EXPECT_EQ(cells[i].model, config.models[m]);
      }
    }
  }
  for (const TransferCell& cell : cells) {
    EXPECT_GT(cell.cold_fc_mean, 0.0);
    EXPECT_GT(cell.warm_fc_mean, 0.0);
    EXPECT_GT(cell.cold_ar_mean, 0.0);
    EXPECT_LE(cell.cold_ar_mean, 1.0 + 1e-9);
    EXPECT_GT(cell.warm_ar_mean, 0.0);
    EXPECT_LE(cell.warm_ar_mean, 1.0 + 1e-9);
  }
}

TEST(TransferExperimentTest, ColdBaselineSharedAcrossTrainFamiliesAndModels) {
  const auto& cells = direct_cells();
  for (const TransferCell& a : cells) {
    for (const TransferCell& b : cells) {
      if (a.eval_family != b.eval_family) continue;
      // The cold arm is keyed by (eval family, instance) only, so every
      // cell of one eval column shares one baseline bit for bit.
      EXPECT_EQ(a.cold_ar_mean, b.cold_ar_mean);
      EXPECT_EQ(a.cold_fc_mean, b.cold_fc_mean);
      EXPECT_EQ(a.cold_iter_mean, b.cold_iter_mean);
    }
  }
}

TEST(TransferExperimentTest, EvalInstancesAreDeterministicAndHeldOut) {
  const TransferConfig config = tiny_config();
  for (std::size_t family = 0; family < config.families.size(); ++family) {
    const ParameterDataset corpus = ParameterDataset::generate(
        transfer_corpus_config(config, family));
    const auto edge_key = [](const graph::Graph& g) {
      std::ostringstream os;
      os.precision(17);
      for (const graph::Edge& e : g.edges()) {
        os << e.u << ',' << e.v << ',' << e.weight << ';';
      }
      return os.str();
    };
    for (std::size_t g = 0;
         g < static_cast<std::size_t>(config.eval_graphs); ++g) {
      const graph::Graph once = transfer_eval_instance(config, family, g);
      const graph::Graph again = transfer_eval_instance(config, family, g);
      EXPECT_EQ(edge_key(once), edge_key(again));
      // Held out: eval instance g must not reproduce corpus record g
      // (disjoint streams; a collision of two 6-node samples is
      // possible in principle but not for these pinned seeds).
      EXPECT_NE(edge_key(once), edge_key(corpus.records()[g].problem))
          << "family=" << family << " g=" << g;
    }
  }
}

TEST(TransferShardTest, MergedCellsIdenticalToDirectRunAcrossShardsAndThreads) {
  const TransferConfig config = tiny_config();
  for (const int shards : {1, 2, 8}) {
    for (const int threads : {1, 8}) {
      ScopedThreadCount scoped(threads);
      const std::string dir = unique_dir(
          "merge_s" + std::to_string(shards) + "t" + std::to_string(threads));
      for (int s = 0; s < shards; ++s) {
        const TransferShardReport report =
            run_transfer_shard(config, ShardSpec{s, shards}, dir);
        EXPECT_EQ(report.units_resumed, 0u);
        EXPECT_EQ(report.units_generated, report.units_owned);
        EXPECT_GT(report.banks_trained, 0u);
      }
      expect_cells_identical(merge_transfer_shards(config, shards, dir),
                             direct_cells());
    }
  }
}

TEST(TransferShardTest, SampledMatrixMergesBitIdenticalAndKeysOnSpec) {
  // Sampled evaluation arms (training corpora stay exact — the
  // train-without-a-QPU setting): shards and threads must still merge
  // bit-identically, and the spec must key the shard files.
  TransferConfig config = tiny_config();
  config.families = {EnsembleConfig{}};  // one family: 1x1 matrix
  config.models = {ml::RegressorKind::kLinear};
  config.eval = EvalSpec::sampled_with(64, 5);

  const std::vector<TransferCell> direct = run_transfer(config);
  for (const int shards : {1, 2}) {
    for (const int threads : {1, 8}) {
      ScopedThreadCount scoped(threads);
      const std::string dir = unique_dir(
          "sampled_s" + std::to_string(shards) + "t" + std::to_string(threads));
      for (int s = 0; s < shards; ++s) {
        run_transfer_shard(config, ShardSpec{s, shards}, dir);
      }
      expect_cells_identical(merge_transfer_shards(config, shards, dir),
                             direct);
    }
  }

  const std::string dir = unique_dir("sampled_key");
  run_transfer_shard(config, ShardSpec{0, 1}, dir);
  TransferConfig exact = config;
  exact.eval = EvalSpec::exact();
  EXPECT_THROW(merge_transfer_shards(exact, 1, dir), Error);
}

TEST(TransferShardTest, ResumeAfterTruncationCompletesToSameCells) {
  const TransferConfig config = tiny_config();
  for (const double cut : {0.3, 0.6, 0.95}) {
    const std::string dir =
        unique_dir("resume_cut" + std::to_string(static_cast<int>(cut * 100)));
    for (int s = 0; s < 2; ++s) {
      run_transfer_shard(config, ShardSpec{s, 2}, dir);
    }
    // Simulate a kill mid-write: drop the tail of shard 0.
    const std::string shard0 = transfer_shard_path(dir, ShardSpec{0, 2});
    const auto size = std::filesystem::file_size(shard0);
    ASSERT_GT(size, 10u);
    std::filesystem::resize_file(
        shard0, static_cast<std::uintmax_t>(cut * static_cast<double>(size)));

    const TransferShardReport report =
        run_transfer_shard(config, ShardSpec{0, 2}, dir);
    EXPECT_EQ(report.units_resumed + report.units_generated,
              report.units_owned);
    EXPECT_GT(report.units_generated, 0u) << "cut=" << cut;

    expect_cells_identical(merge_transfer_shards(config, 2, dir),
                           direct_cells());
  }
}

TEST(TransferShardTest, CompletedShardResumesWithoutRetraining) {
  const TransferConfig config = tiny_config();
  const std::string dir = unique_dir("noop_resume");

  const TransferShardReport first =
      run_transfer_shard(config, ShardSpec{0, 1}, dir);
  EXPECT_EQ(first.units_generated, first.units_owned);
  EXPECT_GT(first.banks_trained, 0u);

  const TransferShardReport second =
      run_transfer_shard(config, ShardSpec{0, 1}, dir);
  EXPECT_EQ(second.units_resumed, second.units_owned);
  EXPECT_EQ(second.units_generated, 0u);
  // A complete shard resumes without paying for a single corpus or
  // bank again.
  EXPECT_EQ(second.banks_trained, 0u);
}

TEST(TransferShardTest, StaleConfigIsRegeneratedAndMergeRejectsIt) {
  TransferConfig config = tiny_config();
  const std::string dir = unique_dir("stale");
  run_transfer_shard(config, ShardSpec{0, 1}, dir);

  TransferConfig changed = config;
  changed.seed += 1;
  EXPECT_THROW(merge_transfer_shards(changed, 1, dir), Error);

  const TransferShardReport report =
      run_transfer_shard(changed, ShardSpec{0, 1}, dir);
  EXPECT_EQ(report.units_resumed, 0u);
  EXPECT_EQ(report.units_generated, report.units_owned);
}

TEST(TransferShardTest, MergeRejectsIncompleteShardSet) {
  const TransferConfig config = tiny_config();
  const std::string dir = unique_dir("incomplete");
  run_transfer_shard(config, ShardSpec{0, 2}, dir);  // shard 1 never runs
  EXPECT_THROW(merge_transfer_shards(config, 2, dir), Error);
}

TEST(TransferExperimentTest, ReportFormatIsStable) {
  const TransferConfig config = tiny_config();
  std::ostringstream a;
  std::ostringstream b;
  write_transfer_report(a, config, direct_cells());
  write_transfer_report(b, config, direct_cells());
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("qaoaml-transfer-report-v1"), std::string::npos);
  // One cell line per matrix cell.
  std::size_t cell_lines = 0;
  std::istringstream is(a.str());
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("cell ", 0) == 0) ++cell_lines;
  }
  EXPECT_EQ(cell_lines, direct_cells().size());
}

TEST(TransferExperimentTest, ValidateRejectsBadConfigs) {
  TransferConfig config = tiny_config();
  config.families.clear();
  EXPECT_THROW(validate(config), InvalidArgument);

  config = tiny_config();
  config.models.clear();
  EXPECT_THROW(validate(config), InvalidArgument);

  config = tiny_config();
  config.target_depth = config.max_depth + 1;
  EXPECT_THROW(validate(config), InvalidArgument);

  config = tiny_config();
  config.train_graphs = 1;
  EXPECT_THROW(validate(config), InvalidArgument);

  config = tiny_config();
  config.eval_graphs = 0;
  EXPECT_THROW(validate(config), InvalidArgument);
}

}  // namespace
}  // namespace qaoaml::core
