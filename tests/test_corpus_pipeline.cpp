// The sharded corpus pipeline's headline guarantees:
//  - the merged corpus is byte-identical across shard counts {1, 2, 8}
//    and thread counts {1, 8}, and identical to a direct
//    ParameterDataset::generate(...).save(...);
//  - a shard killed mid-write (simulated by truncating its data file at
//    arbitrary byte offsets) resumes where it left off and completes to
//    the same bytes;
//  - stale files (different config / shard layout) are regenerated, a
//    missing manifest does not block resume, and merging an incomplete
//    shard set fails loudly.
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/corpus_pipeline.hpp"

namespace qaoaml::core {
namespace {

// Small enough that one full generation is milliseconds, big enough
// that 8 shards all own units.
DatasetConfig tiny_config() {
  DatasetConfig config;
  config.num_graphs = 8;
  config.num_nodes = 6;
  config.max_depth = 2;
  config.restarts = 2;
  config.seed = 123;
  return config;
}

std::string unique_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "corpus_pipeline" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "cannot read " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void run_all_shards(const DatasetConfig& config, int shards,
                    const std::string& dir) {
  for (int s = 0; s < shards; ++s) {
    CorpusShardConfig shard_config;
    shard_config.dataset = config;
    shard_config.shard = ShardSpec{s, shards};
    shard_config.directory = dir;
    CorpusPipeline::run_shard(shard_config);
  }
}

std::string reference_bytes(const DatasetConfig& config,
                            const std::string& dir) {
  const std::string path = dir + "/reference.txt";
  ParameterDataset::generate(config).save(path);
  return file_bytes(path);
}

TEST(ShardSpecTest, RoundRobinOwnership) {
  const ShardSpec shard{1, 3};
  EXPECT_FALSE(shard.owns(0));
  EXPECT_TRUE(shard.owns(1));
  EXPECT_FALSE(shard.owns(2));
  EXPECT_TRUE(shard.owns(4));

  EXPECT_EQ(shard_units(10, ShardSpec{0, 1}).size(), 10u);
  const auto units = shard_units(10, shard);
  ASSERT_EQ(units.size(), 3u);
  EXPECT_EQ(units[0], 1u);
  EXPECT_EQ(units[1], 4u);
  EXPECT_EQ(units[2], 7u);
  // More shards than units: high shards own nothing.
  EXPECT_TRUE(shard_units(2, ShardSpec{5, 8}).empty());
}

TEST(RunUnitsInOrderTest, CommitsAscendingAndComplete) {
  std::vector<std::size_t> units{3, 5, 8, 11};
  std::vector<int> ran(12, 0);
  std::vector<std::size_t> committed;
  run_units_in_order(
      units, [&](std::size_t unit, std::size_t) { ran[unit] = 1; },
      [&](std::size_t unit, std::size_t slot) {
        EXPECT_EQ(units[slot], unit);
        committed.push_back(unit);
      });
  EXPECT_EQ(committed, units);  // every unit committed, in list order
  for (const std::size_t unit : units) EXPECT_EQ(ran[unit], 1);
}

TEST(CorpusPipelineTest, MergedBytesIdenticalAcrossShardAndThreadCounts) {
  const DatasetConfig config = tiny_config();
  const std::string base = unique_dir("determinism");
  const std::string reference = reference_bytes(config, base);
  ASSERT_FALSE(reference.empty());

  for (const int shards : {1, 2, 8}) {
    for (const int threads : {1, 8}) {
      ScopedThreadCount scoped(threads);
      const std::string dir = base + "/s" + std::to_string(shards) + "t" +
                              std::to_string(threads);
      run_all_shards(config, shards, dir);
      const std::string out = dir + "/merged.txt";
      const ParameterDataset merged =
          CorpusPipeline::merge_shards(config, shards, dir, out);
      EXPECT_EQ(merged.size(), static_cast<std::size_t>(config.num_graphs));
      EXPECT_EQ(file_bytes(out), reference)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST(CorpusPipelineTest, ResumeAfterTruncationCompletesToSameBytes) {
  const DatasetConfig config = tiny_config();
  const std::string base = unique_dir("resume");
  const std::string reference = reference_bytes(config, base);

  // Cut the shard-0 data file at several points — mid-record, mid-line,
  // even inside the header — and check the rerun completes to the same
  // merged bytes every time.
  for (const double cut : {0.15, 0.4, 0.6, 0.9}) {
    const std::string dir =
        base + "/cut" + std::to_string(static_cast<int>(cut * 100));
    run_all_shards(config, 2, dir);

    const std::string shard0 =
        CorpusPipeline::shard_data_path(dir, ShardSpec{0, 2});
    const std::string full = file_bytes(shard0);
    ASSERT_GT(full.size(), 10u);
    std::filesystem::resize_file(
        shard0, static_cast<std::uintmax_t>(cut *
                                            static_cast<double>(full.size())));

    CorpusShardConfig shard_config;
    shard_config.dataset = config;
    shard_config.shard = ShardSpec{0, 2};
    shard_config.directory = dir;
    const ShardReport report = CorpusPipeline::run_shard(shard_config);
    EXPECT_EQ(report.units_resumed + report.units_generated,
              report.units_owned);
    EXPECT_GT(report.units_generated, 0u) << "cut=" << cut;

    const std::string out = dir + "/merged.txt";
    CorpusPipeline::merge_shards(config, 2, dir, out);
    EXPECT_EQ(file_bytes(out), reference) << "cut=" << cut;
  }
}

TEST(CorpusPipelineTest, CompletedShardResumesWithoutRecomputing) {
  const DatasetConfig config = tiny_config();
  const std::string dir = unique_dir("noop_resume");
  CorpusShardConfig shard_config;
  shard_config.dataset = config;
  shard_config.shard = ShardSpec{0, 2};
  shard_config.directory = dir;

  const ShardReport first = CorpusPipeline::run_shard(shard_config);
  EXPECT_EQ(first.units_resumed, 0u);
  EXPECT_EQ(first.units_generated, first.units_owned);
  const std::string bytes = file_bytes(first.data_path);

  const ShardReport second = CorpusPipeline::run_shard(shard_config);
  EXPECT_EQ(second.units_resumed, second.units_owned);
  EXPECT_EQ(second.units_generated, 0u);
  EXPECT_EQ(file_bytes(second.data_path), bytes);
}

TEST(CorpusPipelineTest, MissingManifestStillResumesFromData) {
  const DatasetConfig config = tiny_config();
  const std::string dir = unique_dir("manifest_gone");
  CorpusShardConfig shard_config;
  shard_config.dataset = config;
  shard_config.shard = ShardSpec{0, 1};
  shard_config.directory = dir;

  const ShardReport first = CorpusPipeline::run_shard(shard_config);
  std::filesystem::remove(first.manifest_path);

  const ShardReport second = CorpusPipeline::run_shard(shard_config);
  EXPECT_EQ(second.units_resumed, second.units_owned);
  EXPECT_EQ(second.units_generated, 0u);
  // The manifest ledger is rebuilt to match the data file.
  EXPECT_TRUE(std::filesystem::exists(second.manifest_path));
}

TEST(CorpusPipelineTest, ManifestLedgerCapsResume) {
  const DatasetConfig config = tiny_config();
  const std::string dir = unique_dir("ledger_cap");
  CorpusShardConfig shard_config;
  shard_config.dataset = config;
  shard_config.shard = ShardSpec{0, 1};
  shard_config.directory = dir;

  const ShardReport first = CorpusPipeline::run_shard(shard_config);
  const std::string bytes = file_bytes(first.data_path);

  // Drop the ledger's last line: the data file still holds every unit,
  // but the un-recorded one must be treated as uncommitted and re-run.
  std::string manifest = file_bytes(first.manifest_path);
  manifest.pop_back();  // trailing newline
  manifest.resize(manifest.rfind('\n') + 1);
  {
    std::ofstream os(first.manifest_path, std::ios::trunc);
    os << manifest;
  }

  const ShardReport second = CorpusPipeline::run_shard(shard_config);
  EXPECT_EQ(second.units_resumed, second.units_owned - 1);
  EXPECT_EQ(second.units_generated, 1u);
  EXPECT_EQ(file_bytes(second.data_path), bytes);
}

TEST(CorpusPipelineTest, InvalidConfigErrorsBeforeTouchingShardFiles) {
  // A typo'd config (nodes=40 > the exact-MaxCut limit) must error
  // before the prefix rewrite, leaving a completed shard's bytes
  // untouched.
  const DatasetConfig config = tiny_config();
  const std::string dir = unique_dir("no_clobber");
  CorpusShardConfig shard_config;
  shard_config.dataset = config;
  shard_config.shard = ShardSpec{0, 1};
  shard_config.directory = dir;
  const ShardReport report = CorpusPipeline::run_shard(shard_config);
  const std::string bytes = file_bytes(report.data_path);

  shard_config.dataset.num_nodes = 40;
  EXPECT_THROW(CorpusPipeline::run_shard(shard_config), Error);
  EXPECT_EQ(file_bytes(report.data_path), bytes);
}

TEST(CorpusPipelineTest, StaleConfigIsRegenerated) {
  DatasetConfig config = tiny_config();
  const std::string dir = unique_dir("stale");
  CorpusShardConfig shard_config;
  shard_config.dataset = config;
  shard_config.shard = ShardSpec{0, 1};
  shard_config.directory = dir;
  CorpusPipeline::run_shard(shard_config);

  shard_config.dataset.seed += 1;  // different corpus, same paths
  const ShardReport report = CorpusPipeline::run_shard(shard_config);
  EXPECT_EQ(report.units_resumed, 0u);
  EXPECT_EQ(report.units_generated, report.units_owned);
}

TEST(CorpusPipelineTest, ConcurrentSameShardInvocationFailsFast) {
  const DatasetConfig config = tiny_config();
  const std::string dir = unique_dir("locked");
  CorpusShardConfig shard_config;
  shard_config.dataset = config;
  shard_config.shard = ShardSpec{0, 1};
  shard_config.directory = dir;

  // Hold the shard's flock the way a concurrently running invocation
  // would; run_shard must refuse instead of interleaving writes.
  const std::string lock_path =
      CorpusPipeline::shard_data_path(dir, shard_config.shard) + ".lock";
  std::filesystem::create_directories(dir);
  const int fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::flock(fd, LOCK_EX | LOCK_NB), 0);

  EXPECT_THROW(CorpusPipeline::run_shard(shard_config), Error);

  ::flock(fd, LOCK_UN);
  ::close(fd);
  // Released (as the kernel does on process death): the run proceeds.
  const ShardReport report = CorpusPipeline::run_shard(shard_config);
  EXPECT_EQ(report.units_generated, report.units_owned);
}

TEST(CorpusPipelineTest, MergeRejectsIncompleteShardSet) {
  const DatasetConfig config = tiny_config();
  const std::string dir = unique_dir("incomplete");
  CorpusShardConfig shard_config;
  shard_config.dataset = config;
  shard_config.shard = ShardSpec{0, 2};
  shard_config.directory = dir;
  CorpusPipeline::run_shard(shard_config);  // shard 1 of 2 never runs

  EXPECT_THROW(CorpusPipeline::merge_shards(config, 2, dir, ""), Error);
}

TEST(CorpusPipelineTest, TornCacheConfigLineRegeneratesInsteadOfCrashing) {
  // A cache killed mid-write of its config line ("xtol=" with no value)
  // must look corrupt to load_or_generate — std::stod's exception must
  // not escape as a crash.
  const std::string dir = unique_dir("torn_cache");
  const std::string path = dir + "/cache.txt";
  {
    std::ofstream os(path);
    os << "qaoaml-dataset-v1\nconfig gen=4 graphs=2 xtol=\n";
  }
  const DatasetConfig config = tiny_config();
  const ParameterDataset dataset =
      ParameterDataset::load_or_generate(config, path);
  EXPECT_EQ(dataset.size(), static_cast<std::size_t>(config.num_graphs));
}

TEST(CorpusPipelineTest, CorruptEdgeCountFailsFastNotForever) {
  // A bit-flipped edge count must hit the malformed-line error after
  // the tokens run out, not loop to the bogus count.
  std::vector<InstanceRecord> records;
  EXPECT_THROW(
      detail::consume_record_line("graph 0 6 999999999999 0 1 1.0", records),
      Error);
  // A corrupt node count must error before allocating a huge Graph.
  EXPECT_THROW(
      detail::consume_record_line("graph 0 2000000000 1 0 1 1.0", records),
      Error);
}

TEST(RunUnitsInOrderTest, ExceptionAbortsNotYetStartedUnits) {
  // With one thread the dispatch is sequential, so after commit(0)
  // throws, no later unit's run() may execute.
  ScopedThreadCount scoped(1);
  std::vector<std::size_t> units{0, 1, 2, 3};
  int runs = 0;
  EXPECT_THROW(
      run_units_in_order(
          units, [&](std::size_t, std::size_t) { ++runs; },
          [&](std::size_t, std::size_t) { throw InvalidArgument("boom"); }),
      Error);
  EXPECT_EQ(runs, 1);
}

TEST(CorpusPipelineTest, ChangedOptimizerOptionsInvalidateShards) {
  DatasetConfig config = tiny_config();
  const std::string dir = unique_dir("options_key");
  CorpusShardConfig shard_config;
  shard_config.dataset = config;
  shard_config.shard = ShardSpec{0, 1};
  shard_config.directory = dir;
  CorpusPipeline::run_shard(shard_config);

  shard_config.dataset.options.gtol = 1e-2;  // different optimizer recipe
  const ShardReport report = CorpusPipeline::run_shard(shard_config);
  EXPECT_EQ(report.units_resumed, 0u);
  EXPECT_EQ(report.units_generated, report.units_owned);
}

TEST(CorpusPipelineTest, GenerateRecordsMatchesDatasetGenerate) {
  const DatasetConfig config = tiny_config();
  const ParameterDataset direct = ParameterDataset::generate(config);
  const std::vector<InstanceRecord> records =
      CorpusPipeline::generate_records(config);
  ASSERT_EQ(records.size(), direct.size());
  for (std::size_t g = 0; g < records.size(); ++g) {
    EXPECT_EQ(records[g].id, direct.records()[g].id);
    ASSERT_EQ(records[g].optimal_params.size(),
              direct.records()[g].optimal_params.size());
    EXPECT_EQ(records[g].optimal_params, direct.records()[g].optimal_params);
    EXPECT_EQ(records[g].expectation, direct.records()[g].expectation);
  }
}

}  // namespace
}  // namespace qaoaml::core
