// EvalSpec API tests: hostile specs fail loudly, sampled evaluation is
// bit-deterministic across thread counts / batch orders / batch-vs-
// sequential paths, the finite-shot estimate converges to the exact
// expectation as shots grow, and the EvalSpec solver overloads keep
// their contracts (exact-mode bit-compatibility, exact re-scoring of
// sampled runs, noisy-option floors).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/angles.hpp"
#include "core/batch_evaluator.hpp"
#include "core/eval_spec.hpp"
#include "core/qaoa_objective.hpp"
#include "core/parameter_dataset.hpp"
#include "core/parameter_predictor.hpp"
#include "core/qaoa_solver.hpp"
#include "core/two_level_solver.hpp"
#include "graph/generators.hpp"
#include "quantum/statevector.hpp"

using namespace qaoaml;
using core::BatchEvaluator;
using core::BatchJob;
using core::EvalSpec;
using core::MaxCutQaoa;
using core::ObjectiveMode;
using core::SeedPolicy;

namespace {

MaxCutQaoa test_instance(int nodes = 8, int depth = 2,
                         std::uint64_t seed = 3) {
  Rng rng(seed);
  return MaxCutQaoa(graph::random_regular(nodes, 3, rng), depth);
}

TEST(EvalSpec, ValidationRejectsHostileSpecs) {
  EXPECT_NO_THROW(core::validate(EvalSpec::exact()));
  EXPECT_NO_THROW(core::validate(EvalSpec::sampled_with(1, 0)));

  EXPECT_THROW(core::validate(EvalSpec::sampled_with(0, 0)), InvalidArgument);
  EXPECT_THROW(core::validate(EvalSpec::sampled_with(-64, 0)),
               InvalidArgument);
  EXPECT_THROW(core::validate(EvalSpec::sampled_with(128, 0, 0)),
               InvalidArgument);
  EXPECT_THROW(core::validate(EvalSpec::sampled_with(128, 0, -2)),
               InvalidArgument);

  // Exact mode never samples, so its sampling knobs are inert even when
  // they hold garbage (a default-constructed spec must always be safe).
  EvalSpec exact;
  exact.shots = -1;
  EXPECT_NO_THROW(core::validate(exact));
}

TEST(EvalSpec, HostileShotCountsThrowAtEveryEntryPoint) {
  const MaxCutQaoa instance = test_instance();
  const std::vector<double> params(instance.num_parameters(), 0.3);
  Rng rng(1);
  EXPECT_THROW(instance.sampled_expectation(params, 0, rng), InvalidArgument);
  EXPECT_THROW(instance.sampled_expectation(params, -5, rng),
               InvalidArgument);

  quantum::Statevector ws = quantum::Statevector::uniform(8);
  std::vector<double> cdf;
  EXPECT_THROW(
      instance.evaluate_using(ws, cdf, params, EvalSpec::sampled_with(0, 7),
                              rng),
      InvalidArgument);

  BatchEvaluator evaluator(instance);
  EXPECT_THROW(evaluator.evaluate(params, EvalSpec::sampled_with(-1, 7)),
               InvalidArgument);
  std::vector<BatchJob> jobs{{&instance, params, EvalSpec::sampled_with(0, 7)}};
  EXPECT_THROW(BatchEvaluator::evaluations(jobs), InvalidArgument);
}

TEST(EvalSpec, StringRoundTripAndHostileParses) {
  EXPECT_EQ(core::objective_mode_from_string("exact"), ObjectiveMode::kExact);
  EXPECT_EQ(core::objective_mode_from_string("sampled"),
            ObjectiveMode::kSampled);
  EXPECT_THROW(core::objective_mode_from_string("Exact"), InvalidArgument);
  EXPECT_THROW(core::objective_mode_from_string(""), InvalidArgument);

  EXPECT_EQ(core::seed_policy_from_string("stream"), SeedPolicy::kStream);
  EXPECT_EQ(core::seed_policy_from_string("per-call"), SeedPolicy::kPerCall);
  EXPECT_THROW(core::seed_policy_from_string("percall"), InvalidArgument);

  // The config token distinguishes specs (it invalidates shard files);
  // every knob that changes results must show up in it.
  EXPECT_EQ(core::to_string(EvalSpec::exact()), "objective=exact");
  const std::string sampled =
      core::to_string(EvalSpec::sampled_with(256, 7, 2));
  EXPECT_NE(sampled, core::to_string(EvalSpec::sampled_with(512, 7, 2)));
  EXPECT_NE(sampled, core::to_string(EvalSpec::sampled_with(256, 8, 2)));
  EXPECT_NE(sampled, core::to_string(EvalSpec::sampled_with(256, 7, 3)));
  EXPECT_NE(sampled.find("shots=256"), std::string::npos);
}

TEST(EvalSpec, SubstreamSeedsAreDeterministicAndSpread) {
  const EvalSpec spec = EvalSpec::sampled_with(64, 42);
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t tag = 0; tag < 64; ++tag) {
    const std::uint64_t s = core::substream_seed(spec, tag);
    EXPECT_EQ(s, core::substream_seed(spec, tag));
    seeds.push_back(s);
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(EvalSpec, NoisyOptionsFloorTolerances) {
  optim::Options tight;
  tight.ftol = 1e-9;
  tight.xtol = 1e-8;
  const optim::Options noisy = core::noisy_options(tight);
  EXPECT_EQ(noisy.ftol, core::kNoisyFtolFloor);
  EXPECT_EQ(noisy.xtol, core::kNoisyXtolFloor);

  // Looser-than-floor tolerances pass through: it is a floor, not a set.
  optim::Options loose;
  loose.ftol = 0.5;
  loose.xtol = 0.5;
  EXPECT_EQ(core::noisy_options(loose).ftol, 0.5);
  EXPECT_EQ(core::noisy_options(loose).xtol, 0.5);

  EXPECT_EQ(core::effective_options(tight, EvalSpec::exact()).ftol, 1e-9);
  EXPECT_EQ(core::effective_options(tight, EvalSpec::sampled_with(64, 0)).ftol,
            core::kNoisyFtolFloor);
}

TEST(EvalSpec, CdfInversionMatchesLinearScanSampling) {
  // The CDF prefix sum is the linear scan's accumulator, so for any
  // uniform u the inverted index must be the first z with cdf[z] >= u —
  // cross-check against an explicit scan on a non-trivial state.
  const MaxCutQaoa instance = test_instance(8, 2, 11);
  Rng rng(5);
  const std::vector<double> params = core::random_angles(2, rng);
  quantum::Statevector ws = quantum::Statevector::uniform(8);
  instance.state_into(ws, params);
  std::vector<double> cdf;
  ws.cumulative_probabilities(cdf);
  ASSERT_EQ(cdf.size(), ws.dimension());

  Rng draws(17);
  for (int s = 0; s < 200; ++s) {
    const double u = draws.uniform();
    const std::uint64_t fast = quantum::Statevector::sample_cdf(cdf, u);
    std::uint64_t slow = cdf.size() - 1;
    for (std::size_t z = 0; z < cdf.size(); ++z) {
      if (cdf[z] >= u) {
        slow = z;
        break;
      }
    }
    EXPECT_EQ(fast, slow);
  }
}

TEST(EvalSpec, SampledEstimateIsSeedDeterministicAcrossThreadCounts) {
  // 14 qubits puts the statevector kernels on their blocked parallel
  // paths; the estimate must still be bitwise thread-count independent.
  const MaxCutQaoa instance = test_instance(14, 2, 21);
  Rng prng(9);
  const std::vector<double> params = core::random_angles(2, prng);

  const auto estimate = [&](int threads) {
    ScopedThreadCount guard(threads);
    Rng rng(1234);
    return instance.sampled_expectation(params, 512, rng);
  };
  const double one = estimate(1);
  const double eight = estimate(8);
  EXPECT_EQ(one, eight);  // bitwise, not approximate

  // Fresh rng state, same seed: the estimate is reproducible; a
  // different seed gives a genuinely different draw.
  Rng again(1234);
  EXPECT_EQ(instance.sampled_expectation(params, 512, again), one);
  Rng other(1235);
  EXPECT_NE(instance.sampled_expectation(params, 512, other), one);
}

TEST(EvalSpec, BatchMatchesSequentialAndFollowsPermutation) {
  const MaxCutQaoa a = test_instance(8, 2, 31);
  const MaxCutQaoa b = test_instance(10, 2, 32);
  Rng prng(2);

  std::vector<BatchJob> jobs;
  for (int i = 0; i < 10; ++i) {
    const MaxCutQaoa& inst = (i % 2 == 0) ? a : b;
    const EvalSpec spec = EvalSpec::sampled_with(
        128, core::substream_seed(EvalSpec::sampled_with(128, 99),
                                  static_cast<std::uint64_t>(i)));
    jobs.push_back({&inst, core::random_angles(2, prng), spec});
  }
  // Every third job stays exact: mixed batches must route per item.
  jobs[3].eval = EvalSpec::exact();
  jobs[6].eval = EvalSpec::exact();

  const std::vector<double> batched = BatchEvaluator::evaluations(jobs);
  ASSERT_EQ(batched.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const MaxCutQaoa& inst = *jobs[i].instance;
    if (!jobs[i].eval.sampled()) {
      EXPECT_EQ(batched[i], inst.expectation(jobs[i].params));
      continue;
    }
    Rng rng(jobs[i].eval.seed);
    EXPECT_EQ(batched[i],
              inst.sampled_expectation(jobs[i].params, 128, rng));
  }

  // Thread counts cannot change a bit.
  std::vector<double> one, eight;
  {
    ScopedThreadCount guard(1);
    one = BatchEvaluator::evaluations(jobs);
  }
  {
    ScopedThreadCount guard(8);
    eight = BatchEvaluator::evaluations(jobs);
  }
  EXPECT_EQ(one, eight);
  EXPECT_EQ(one, batched);

  // Each job carries its own stream seed, so permuting the batch
  // permutes the results — order can never change a value.
  std::vector<BatchJob> reversed(jobs.rbegin(), jobs.rend());
  const std::vector<double> rev = BatchEvaluator::evaluations(reversed);
  ASSERT_EQ(rev.size(), batched.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(rev[batched.size() - 1 - i], batched[i]);
  }
}

TEST(EvalSpec, SampledEstimateConvergesToExactExpectation) {
  const MaxCutQaoa instance = test_instance(8, 2, 41);
  Rng prng(3);
  const std::vector<double> params = core::random_angles(2, prng);
  const double exact = instance.expectation(params);

  // The per-shot values are cut sizes in [0, max_cut]; with 200k shots
  // the standard error is far below 0.05 — a 0.1 tolerance is many
  // standard deviations, so this cannot flake while still catching any
  // systematic bias in the CDF-inversion sampler.
  Rng rng(77);
  const double est = instance.sampled_expectation(params, 200000, rng);
  EXPECT_NEAR(est, exact, 0.1);

  // Monotone refinement on average: the absolute error at 64 shots over
  // many repeats should exceed the 200k-shot error.
  Rng coarse_rng(78);
  double coarse_abs = 0.0;
  for (int r = 0; r < 20; ++r) {
    coarse_abs +=
        std::abs(instance.sampled_expectation(params, 64, coarse_rng) - exact);
  }
  coarse_abs /= 20.0;
  EXPECT_GT(coarse_abs, std::abs(est - exact));
}

TEST(EvalSpec, AveragingDrawsTheCombinedShotBudget) {
  // averaging=K over one state prep is the mean of all shots*K draws —
  // identical bits to a single (shots*K)-shot estimate from the same
  // stream.
  const MaxCutQaoa instance = test_instance(8, 2, 51);
  Rng prng(4);
  const std::vector<double> params = core::random_angles(2, prng);
  quantum::Statevector ws = quantum::Statevector::uniform(8);
  std::vector<double> cdf;

  Rng rng_avg(7);
  const double averaged = instance.evaluate_using(
      ws, cdf, params, EvalSpec::sampled_with(100, 0, 4), rng_avg);
  Rng rng_flat(7);
  const double flat =
      instance.sampled_expectation_using(ws, cdf, params, 400, rng_flat);
  EXPECT_EQ(averaged, flat);
}

TEST(EvalSpec, BufferedObjectiveSeedPolicies) {
  const MaxCutQaoa instance = test_instance(8, 2, 61);
  Rng prng(5);
  const std::vector<double> params = core::random_angles(2, prng);

  // kPerCall re-seeds every call: a deterministic noisy surrogate.
  EvalSpec per_call = EvalSpec::sampled_with(64, 0);
  per_call.seed_policy = SeedPolicy::kPerCall;
  const optim::ObjectiveFn surrogate =
      instance.buffered_objective(per_call, 123);
  EXPECT_EQ(surrogate(params), surrogate(params));

  // kStream advances: fresh noise call to call.
  const optim::ObjectiveFn noisy = instance.buffered_objective(
      EvalSpec::sampled_with(64, 0), 123);
  EXPECT_NE(noisy(params), noisy(params));

  // Exact specs are the plain buffered objective.
  const optim::ObjectiveFn exact_fn =
      instance.buffered_objective(EvalSpec::exact(), 999);
  EXPECT_EQ(exact_fn(params), -instance.expectation(params));
}

TEST(EvalSpec, ExactSpecOverloadsAreBitCompatible) {
  // The EvalSpec overloads with an exact spec must consume the same rng
  // draws and produce the same bits as the pre-EvalSpec entry points.
  const MaxCutQaoa instance = test_instance(8, 2, 71);

  Rng rng_a(11);
  Rng rng_b(11);
  const core::QaoaRun plain = core::solve_random_init(
      instance, optim::OptimizerKind::kNelderMead, rng_a);
  const core::QaoaRun spec_run = core::solve_random_init(
      instance, optim::OptimizerKind::kNelderMead, rng_b, EvalSpec::exact());
  EXPECT_EQ(plain.expectation, spec_run.expectation);
  EXPECT_EQ(plain.function_calls, spec_run.function_calls);
  EXPECT_EQ(plain.params, spec_run.params);
  EXPECT_EQ(rng_a(), rng_b());  // identical draw counts

  Rng rng_c(12);
  Rng rng_d(12);
  const core::MultistartRuns plain_ms = core::solve_multistart(
      instance, optim::OptimizerKind::kNelderMead, 4, rng_c);
  const core::MultistartRuns spec_ms = core::solve_multistart(
      instance, optim::OptimizerKind::kNelderMead, 4, rng_d,
      EvalSpec::exact());
  EXPECT_EQ(plain_ms.best.expectation, spec_ms.best.expectation);
  EXPECT_EQ(plain_ms.total_function_calls, spec_ms.total_function_calls);
  EXPECT_EQ(rng_c(), rng_d());
}

TEST(EvalSpec, SampledSolveRescoresExactlyAndIsDeterministic) {
  const MaxCutQaoa instance = test_instance(8, 2, 81);
  const EvalSpec spec = EvalSpec::sampled_with(256, 909);
  Rng prng(6);
  const std::vector<double> x0 = core::random_angles(2, prng);

  const core::QaoaRun run = core::solve_from(
      instance, optim::OptimizerKind::kNelderMead, x0, spec);
  // The reported value is the EXACT expectation at the returned angles
  // (the noisy loop found them; the report does not inherit its noise).
  EXPECT_EQ(run.expectation, instance.expectation(run.params));
  EXPECT_EQ(run.approximation_ratio, instance.approximation_ratio(run.params));
  EXPECT_GT(run.function_calls, 0);

  const core::QaoaRun again = core::solve_from(
      instance, optim::OptimizerKind::kNelderMead, x0, spec);
  EXPECT_EQ(run.expectation, again.expectation);
  EXPECT_EQ(run.params, again.params);
  EXPECT_EQ(run.function_calls, again.function_calls);

  // A different measurement seed explores different noise.
  const core::QaoaRun other = core::solve_from(
      instance, optim::OptimizerKind::kNelderMead, x0,
      EvalSpec::sampled_with(256, 910));
  EXPECT_NE(run.params, other.params);
}

TEST(EvalSpec, SampledMultistartDeterministicAcrossThreadsAndVsSequential) {
  const MaxCutQaoa instance = test_instance(8, 2, 91);
  const EvalSpec spec = EvalSpec::sampled_with(128, 0);

  const auto run_batched = [&](int threads) {
    ScopedThreadCount guard(threads);
    Rng rng(33);
    return core::solve_multistart(instance,
                                  optim::OptimizerKind::kNelderMead, 6, rng,
                                  spec);
  };
  const core::MultistartRuns one = run_batched(1);
  const core::MultistartRuns eight = run_batched(8);

  Rng rng_seq(33);
  const core::MultistartRuns seq = core::solve_multistart_sequential(
      instance, optim::OptimizerKind::kNelderMead, 6, rng_seq, spec);

  ASSERT_EQ(one.runs.size(), 6u);
  ASSERT_EQ(eight.runs.size(), 6u);
  ASSERT_EQ(seq.runs.size(), 6u);
  for (std::size_t r = 0; r < one.runs.size(); ++r) {
    EXPECT_EQ(one.runs[r].expectation, eight.runs[r].expectation);
    EXPECT_EQ(one.runs[r].expectation, seq.runs[r].expectation);
    EXPECT_EQ(one.runs[r].params, eight.runs[r].params);
    EXPECT_EQ(one.runs[r].params, seq.runs[r].params);
    EXPECT_EQ(one.runs[r].function_calls, seq.runs[r].function_calls);
  }
  EXPECT_EQ(one.best.expectation, eight.best.expectation);
  EXPECT_EQ(one.total_function_calls, seq.total_function_calls);
}

TEST(EvalSpec, TwoLevelFlowThreadsSampledSpec) {
  // Tiny corpus -> bank -> two-level flow with a sampled spec: the
  // whole accelerated pipeline must stay seed-deterministic across
  // thread counts, and the final stage must be exact-rescored.
  core::DatasetConfig dataset;
  dataset.num_graphs = 6;
  dataset.num_nodes = 6;
  dataset.max_depth = 2;
  dataset.restarts = 2;
  dataset.seed = 13;
  const core::ParameterDataset mini = core::ParameterDataset::generate(dataset);
  core::ParameterPredictor bank;
  std::vector<std::size_t> all(mini.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  bank.train(mini, all);

  Rng graph_rng(3);
  const graph::Graph problem = graph::random_regular(8, 3, graph_rng);
  core::TwoLevelConfig config;
  config.optimizer = optim::OptimizerKind::kNelderMead;
  config.eval = EvalSpec::sampled_with(128, 0);

  const auto run_once = [&](int threads) {
    ScopedThreadCount guard(threads);
    Rng rng(55);
    return core::solve_two_level(problem, 2, bank, config, rng);
  };
  const core::AcceleratedRun one = run_once(1);
  const core::AcceleratedRun eight = run_once(8);
  EXPECT_EQ(one.final.expectation, eight.final.expectation);
  EXPECT_EQ(one.final.params, eight.final.params);
  EXPECT_EQ(one.total_function_calls, eight.total_function_calls);
  // Re-scored exactly, like every sampled solve.
  const MaxCutQaoa target(problem, 2);
  EXPECT_EQ(one.final.expectation, target.expectation(one.final.params));
}

}  // namespace
