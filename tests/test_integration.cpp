// End-to-end integration tests: the full paper pipeline in miniature —
// data generation -> feature extraction -> model training -> two-level
// acceleration -> Table-I-style aggregation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/two_level_solver.hpp"
#include "ml/evaluation.hpp"
#include "stats/correlation.hpp"

namespace qaoaml::core {
namespace {

/// One shared mini-corpus for the whole file (generation is the slow part).
const ParameterDataset& corpus() {
  static const ParameterDataset ds = [] {
    DatasetConfig config;
    config.num_graphs = 16;
    config.max_depth = 4;
    config.restarts = 8;
    config.seed = 31415;
    return ParameterDataset::generate(config);
  }();
  return ds;
}

struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

Split split_20_80() {
  Rng rng(1);
  Split s;
  auto [train, test] = corpus().split_indices(0.25, rng);
  s.train = std::move(train);
  s.test = std::move(test);
  return s;
}

TEST(Pipeline, EndToEndReducesFunctionCalls) {
  const Split split = split_20_80();
  ParameterPredictor predictor;
  predictor.train(corpus(), split.train);

  ExperimentConfig config;
  config.optimizers = {optim::OptimizerKind::kLbfgsb,
                       optim::OptimizerKind::kCobyla};
  config.target_depths = {3, 4};
  config.naive_runs = 4;
  config.ml_repeats = 2;
  config.seed = 99;
  const std::vector<TableRow> rows =
      run_table1(corpus(), split.test, predictor, config);

  ASSERT_EQ(rows.size(), 4u);
  // The paper's headline: positive average FC reduction.
  EXPECT_GT(average_fc_reduction(rows), 0.0);
  // AR must not collapse under ML initialization.
  for (const TableRow& row : rows) {
    EXPECT_GT(row.ml_ar_mean, row.naive_ar_mean - 0.05);
  }
}

TEST(Pipeline, ReductionGrowsWithDepthForGradientOptimizer) {
  // Table I pattern: the FC saving is more pronounced at larger target
  // depth (naive cost grows with p, the warm-started cost grows slower).
  const Split split = split_20_80();
  ParameterPredictor predictor;
  predictor.train(corpus(), split.train);

  ExperimentConfig config;
  config.optimizers = {optim::OptimizerKind::kLbfgsb};
  config.target_depths = {2, 4};
  config.naive_runs = 4;
  config.ml_repeats = 2;
  config.seed = 7;
  const std::vector<TableRow> rows =
      run_table1(corpus(), split.test, predictor, config);
  ASSERT_EQ(rows.size(), 2u);
  // Depth 4 should save at least as much (with generous slack for the
  // small sample).
  EXPECT_GT(rows[1].fc_reduction_percent, rows[0].fc_reduction_percent - 15.0);
}

TEST(Pipeline, DatasetRoundTripFeedsIdenticalPredictor) {
  const std::string path = ::testing::TempDir() + "/qaoaml_integ_ds.txt";
  corpus().save(path);
  const ParameterDataset loaded = ParameterDataset::load(path);

  const Split split = split_20_80();
  ParameterPredictor from_memory;
  from_memory.train(corpus(), split.train);
  ParameterPredictor from_disk;
  from_disk.train(loaded, split.train);

  const InstanceRecord& r = corpus().records()[split.test[0]];
  const std::vector<double> a =
      from_memory.predict(r.gamma_opt(1, 1), r.beta_opt(1, 1), 3);
  const std::vector<double> b =
      from_disk.predict(r.gamma_opt(1, 1), r.beta_opt(1, 1), 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) EXPECT_NEAR(a[k], b[k], 1e-9);
  std::remove(path.c_str());
}

TEST(Pipeline, PredictorGeneralizesAcrossTrainTestBoundary) {
  // Fig. 6 in miniature: mean absolute percent error of the predictions
  // on held-out graphs stays moderate at low depth.
  const Split split = split_20_80();
  ParameterPredictor predictor;
  predictor.train(corpus(), split.train);

  std::vector<double> truth;
  std::vector<double> pred;
  for (const std::size_t t : split.test) {
    const InstanceRecord& r = corpus().records()[t];
    const std::vector<double> p2 =
        predictor.predict(r.gamma_opt(1, 1), r.beta_opt(1, 1), 2);
    for (std::size_t k = 0; k < p2.size(); ++k) {
      truth.push_back(r.optimal_params[1][k]);
      pred.push_back(p2[k]);
    }
  }
  EXPECT_LT(ml::mae(truth, pred), 0.5);
}

TEST(Pipeline, CorrelationSignsMatchFig5) {
  // gamma1(p=1) and beta1(p=1) correlate positively with their
  // deeper-instance counterparts (Fig. 5's diagonal-ish entries).
  std::vector<double> g1_p1;
  std::vector<double> g1_p3;
  std::vector<double> b1_p1;
  std::vector<double> b1_p3;
  for (const InstanceRecord& r : corpus().records()) {
    g1_p1.push_back(r.gamma_opt(1, 1));
    g1_p3.push_back(r.gamma_opt(3, 1));
    b1_p1.push_back(r.beta_opt(1, 1));
    b1_p3.push_back(r.beta_opt(3, 1));
  }
  EXPECT_GT(stats::pearson(g1_p1, g1_p3), 0.0);
  EXPECT_GT(stats::pearson(b1_p1, b1_p3), 0.0);
}

TEST(Pipeline, ThreeLevelMatchesTwoLevelQuality) {
  const Split split = split_20_80();
  ParameterPredictor coarse;
  coarse.train(corpus(), split.train);
  PredictorConfig fine_config;
  fine_config.intermediate_depth = 2;
  ParameterPredictor fine(fine_config);
  fine.train(corpus(), split.train);

  TwoLevelConfig config;
  Rng rng(17);
  double two_ar = 0.0;
  double three_ar = 0.0;
  for (const std::size_t t : split.test) {
    const graph::Graph& g = corpus().records()[t].problem;
    two_ar += solve_two_level(g, 4, coarse, config, rng)
                  .final.approximation_ratio;
    three_ar += solve_three_level(g, 4, coarse, fine, config, rng)
                    .final.approximation_ratio;
  }
  // Both flows land in the same quality band.
  EXPECT_NEAR(two_ar, three_ar,
              0.1 * static_cast<double>(split.test.size()));
}

}  // namespace
}  // namespace qaoaml::core
