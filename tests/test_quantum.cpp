// Tests for the statevector simulator: gate algebra, state evolution,
// measurement, and the circuit IR.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "quantum/circuit.hpp"
#include "quantum/gates.hpp"
#include "quantum/statevector.hpp"

namespace qaoaml::quantum {
namespace {

constexpr double kTol = 1e-12;

TEST(Gates, AllNamedGatesAreUnitary) {
  EXPECT_TRUE(gates::is_unitary(gates::identity()));
  EXPECT_TRUE(gates::is_unitary(gates::hadamard()));
  EXPECT_TRUE(gates::is_unitary(gates::pauli_x()));
  EXPECT_TRUE(gates::is_unitary(gates::pauli_y()));
  EXPECT_TRUE(gates::is_unitary(gates::pauli_z()));
  EXPECT_TRUE(gates::is_unitary(gates::rx(0.7)));
  EXPECT_TRUE(gates::is_unitary(gates::ry(1.3)));
  EXPECT_TRUE(gates::is_unitary(gates::rz(2.1)));
  EXPECT_TRUE(gates::is_unitary(gates::phase(0.4)));
}

TEST(Gates, HadamardSquaresToIdentity) {
  const Gate1Q hh = gates::multiply(gates::hadamard(), gates::hadamard());
  EXPECT_LT(gates::distance_up_to_phase(hh, gates::identity()), kTol);
}

TEST(Gates, PauliRelations) {
  // X Y = i Z.
  const Gate1Q xy = gates::multiply(gates::pauli_x(), gates::pauli_y());
  EXPECT_LT(gates::distance_up_to_phase(xy, gates::pauli_z()), kTol);
  // H X H = Z.
  const Gate1Q hxh = gates::multiply(
      gates::hadamard(), gates::multiply(gates::pauli_x(), gates::hadamard()));
  EXPECT_LT(gates::distance_up_to_phase(hxh, gates::pauli_z()), kTol);
}

TEST(Gates, RotationAtPiMatchesPauli) {
  EXPECT_LT(gates::distance_up_to_phase(gates::rx(M_PI), gates::pauli_x()),
            kTol);
  EXPECT_LT(gates::distance_up_to_phase(gates::ry(M_PI), gates::pauli_y()),
            kTol);
  EXPECT_LT(gates::distance_up_to_phase(gates::rz(M_PI), gates::pauli_z()),
            kTol);
}

TEST(Gates, RotationsCompose) {
  // RZ(a) RZ(b) = RZ(a + b).
  const Gate1Q lhs = gates::multiply(gates::rz(0.3), gates::rz(0.9));
  EXPECT_LT(gates::distance_up_to_phase(lhs, gates::rz(1.2)), kTol);
}

TEST(Gates, PhaseEqualsRzUpToGlobalPhase) {
  EXPECT_LT(gates::distance_up_to_phase(gates::phase(0.8), gates::rz(0.8)),
            kTol);
}

TEST(Statevector, InitializesToGroundState) {
  const Statevector sv(3);
  EXPECT_EQ(sv.dimension(), 8u);
  EXPECT_NEAR(std::abs(sv.amplitudes()[0] - Complex{1.0, 0.0}), 0.0, kTol);
  EXPECT_NEAR(sv.norm(), 1.0, kTol);
}

TEST(Statevector, RejectsBadSizes) {
  EXPECT_THROW(Statevector(0), InvalidArgument);
  EXPECT_THROW(Statevector(27), InvalidArgument);
  EXPECT_THROW(Statevector::from_amplitudes({{1.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}}),
               InvalidArgument);
}

TEST(Statevector, UniformMatchesHadamardLayer) {
  Statevector via_gates(4);
  via_gates.apply_hadamard_all();
  const Statevector direct = Statevector::uniform(4);
  EXPECT_NEAR(std::abs(via_gates.inner_product(direct)), 1.0, kTol);
}

TEST(Statevector, XFlipsTargetBit) {
  Statevector sv(2);
  sv.apply_gate(gates::pauli_x(), 0);
  EXPECT_NEAR(std::norm(sv.amplitudes()[1]), 1.0, kTol);
  sv.apply_gate(gates::pauli_x(), 1);
  EXPECT_NEAR(std::norm(sv.amplitudes()[3]), 1.0, kTol);
}

TEST(Statevector, CnotTruthTable) {
  // |10> -> |11> (control qubit 1 set flips target 0).
  Statevector sv(2);
  sv.apply_gate(gates::pauli_x(), 1);
  sv.apply_cnot(1, 0);
  EXPECT_NEAR(std::norm(sv.amplitudes()[3]), 1.0, kTol);
  // Control clear: nothing happens.
  Statevector sv2(2);
  sv2.apply_cnot(1, 0);
  EXPECT_NEAR(std::norm(sv2.amplitudes()[0]), 1.0, kTol);
}

TEST(Statevector, CnotMatchesControlledX) {
  Rng rng(3);
  Statevector a = Statevector::uniform(3);
  Statevector b = Statevector::uniform(3);
  a.apply_gate(gates::rz(0.7), 1);
  b.apply_gate(gates::rz(0.7), 1);
  a.apply_cnot(1, 2);
  b.apply_controlled(gates::pauli_x(), 1, 2);
  EXPECT_NEAR(std::abs(a.inner_product(b)), 1.0, kTol);
}

TEST(Statevector, CzIsSymmetric) {
  Statevector a = Statevector::uniform(3);
  Statevector b = Statevector::uniform(3);
  a.apply_gate(gates::ry(0.4), 0);
  b.apply_gate(gates::ry(0.4), 0);
  a.apply_cz(0, 2);
  b.apply_cz(2, 0);
  EXPECT_NEAR(std::abs(a.inner_product(b)), 1.0, kTol);
}

TEST(Statevector, RzFastPathMatchesGateMatrix) {
  Statevector a = Statevector::uniform(3);
  Statevector b = Statevector::uniform(3);
  a.apply_rz(1, 1.234);
  b.apply_gate(gates::rz(1.234), 1);
  for (std::size_t z = 0; z < a.dimension(); ++z) {
    EXPECT_NEAR(std::abs(a.amplitudes()[z] - b.amplitudes()[z]), 0.0, kTol);
  }
}

TEST(Statevector, DiagonalEvolutionMatchesRz) {
  // RZ(theta) = exp(-i theta Z / 2) phases bit 1 by exp(+i theta / 2); as
  // a diagonal evolution exp(-i angle * bit) that is angle = -theta, up
  // to the global phase exp(-i theta / 2).
  Statevector a = Statevector::uniform(3);
  Statevector b = Statevector::uniform(3);
  const double theta = 0.77;
  a.apply_rz(0, theta);
  std::vector<double> diag(8);
  for (std::size_t z = 0; z < 8; ++z) diag[z] = static_cast<double>(z & 1);
  b.apply_diagonal_evolution(diag, -theta);
  EXPECT_NEAR(std::abs(a.inner_product(b)), 1.0, kTol);
}

TEST(Statevector, IntegralDiagonalEvolutionMatchesGeneric) {
  Rng rng(5);
  Statevector a = Statevector::uniform(5);
  Statevector b = Statevector::uniform(5);
  std::vector<int> idiag(32);
  std::vector<double> ddiag(32);
  int max_value = 0;
  for (std::size_t z = 0; z < 32; ++z) {
    idiag[z] = static_cast<int>(rng.uniform_int(9));
    ddiag[z] = static_cast<double>(idiag[z]);
    max_value = std::max(max_value, idiag[z]);
  }
  a.apply_diagonal_evolution_integral(idiag, 0.913, max_value);
  b.apply_diagonal_evolution(ddiag, 0.913);
  for (std::size_t z = 0; z < 32; ++z) {
    EXPECT_NEAR(std::abs(a.amplitudes()[z] - b.amplitudes()[z]), 0.0, kTol);
  }
}

TEST(Statevector, DiagonalEvolutionRejectsWrongLength) {
  Statevector sv = Statevector::uniform(4);
  EXPECT_THROW(sv.apply_diagonal_evolution(std::vector<double>(8, 0.0), 0.5),
               InvalidArgument);
  EXPECT_THROW(sv.apply_diagonal_evolution(std::vector<double>(32, 0.0), 0.5),
               InvalidArgument);
}

TEST(Statevector, IntegralDiagonalEvolutionValidatesArguments) {
  Statevector sv = Statevector::uniform(4);
  // Length mismatch against the state dimension (16).
  EXPECT_THROW(
      sv.apply_diagonal_evolution_integral(std::vector<int>(8, 0), 0.5, 1),
      InvalidArgument);
  // Negative phase-table size.
  EXPECT_THROW(
      sv.apply_diagonal_evolution_integral(std::vector<int>(16, 0), 0.5, -1),
      InvalidArgument);
  // Entries outside [0, max_value] would read past the phase table, so
  // they must be rejected before any amplitude is modified.
  std::vector<int> too_big(16, 1);
  too_big[7] = 4;
  EXPECT_THROW(sv.apply_diagonal_evolution_integral(too_big, 0.5, 3),
               InvalidArgument);
  std::vector<int> negative(16, 1);
  negative[3] = -2;
  EXPECT_THROW(sv.apply_diagonal_evolution_integral(negative, 0.5, 3),
               InvalidArgument);
  // The rejected calls above must not have corrupted the state.
  EXPECT_NEAR(sv.norm(), 1.0, kTol);
  EXPECT_NEAR(sv.amplitudes()[0].real(), 0.25, kTol);
}

TEST(Statevector, ProbabilitiesSumToOne) {
  Rng rng(7);
  Statevector sv = Statevector::uniform(4);
  sv.apply_gate(gates::rx(rng.uniform(0, 3.0)), 2);
  sv.apply_cnot(0, 3);
  const std::vector<double> probs = sv.probabilities();
  double total = 0.0;
  for (const double p : probs) total += p;
  EXPECT_NEAR(total, 1.0, kTol);
}

TEST(Statevector, ExpectationZOnBasisStates) {
  Statevector sv(2);
  EXPECT_NEAR(sv.expectation_z(0), 1.0, kTol);
  sv.apply_gate(gates::pauli_x(), 0);
  EXPECT_NEAR(sv.expectation_z(0), -1.0, kTol);
  EXPECT_NEAR(sv.expectation_z(1), 1.0, kTol);
}

TEST(Statevector, ExpectationDiagonalOnUniform) {
  const Statevector sv = Statevector::uniform(3);
  std::vector<double> diag(8);
  double mean = 0.0;
  for (std::size_t z = 0; z < 8; ++z) {
    diag[z] = static_cast<double>(z);
    mean += diag[z] / 8.0;
  }
  EXPECT_NEAR(sv.expectation_diagonal(diag), mean, kTol);
}

TEST(Statevector, SamplingFollowsBornRule) {
  Statevector sv(1);
  sv.apply_gate(gates::ry(2.0 * std::acos(std::sqrt(0.8))), 0);
  // P(0) = 0.8 by construction.
  Rng rng(11);
  int zeros = 0;
  const int shots = 50000;
  for (const std::uint64_t z : sv.sample(rng, shots)) zeros += (z == 0);
  EXPECT_NEAR(static_cast<double>(zeros) / shots, 0.8, 0.01);
}

TEST(Statevector, InnerProductDetectsOrthogonality) {
  Statevector a(2);  // |00>
  Statevector b(2);
  b.apply_gate(gates::pauli_x(), 0);  // |01>
  EXPECT_NEAR(std::abs(a.inner_product(b)), 0.0, kTol);
  EXPECT_NEAR(std::abs(a.inner_product(a)), 1.0, kTol);
}

/// Norm preservation across random circuits for several qubit counts.
class NormPreservationTest : public ::testing::TestWithParam<int> {};

TEST_P(NormPreservationTest, RandomCircuitKeepsUnitNorm) {
  const int qubits = GetParam();
  Rng rng(static_cast<std::uint64_t>(qubits));
  Statevector sv = Statevector::uniform(qubits);
  for (int step = 0; step < 50; ++step) {
    const int q = static_cast<int>(rng.uniform_int(qubits));
    switch (rng.uniform_int(5)) {
      case 0: sv.apply_gate(gates::rx(rng.uniform(0, 6.28)), q); break;
      case 1: sv.apply_gate(gates::ry(rng.uniform(0, 6.28)), q); break;
      case 2: sv.apply_rz(q, rng.uniform(0, 6.28)); break;
      case 3: {
        const int r = static_cast<int>(rng.uniform_int(qubits));
        if (r != q) sv.apply_cnot(q, r);
        break;
      }
      default: sv.apply_gate(gates::hadamard(), q); break;
    }
  }
  EXPECT_NEAR(sv.norm(), 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(QubitCounts, NormPreservationTest,
                         ::testing::Values(1, 2, 3, 5, 8, 10));

TEST(Circuit, TracksParameterCount) {
  Circuit c(2);
  c.h(0);
  c.rx(1, ParamExpr::bound(3));
  EXPECT_EQ(c.num_parameters(), 4);
  c.rz(0, ParamExpr::constant(0.5));
  EXPECT_EQ(c.num_parameters(), 4);  // constants do not extend the vector
}

TEST(Circuit, ParamExprEvaluates) {
  const std::vector<double> params{2.0, 3.0};
  EXPECT_DOUBLE_EQ(ParamExpr::constant(1.5).evaluate(params), 1.5);
  EXPECT_DOUBLE_EQ(ParamExpr::bound(1, -2.0, 0.5).evaluate(params), -5.5);
  EXPECT_THROW(ParamExpr::bound(5).evaluate(params), InvalidArgument);
}

TEST(Circuit, SimulateMatchesManualGateSequence) {
  Circuit c(2);
  c.h(0);
  c.cnot(0, 1);
  c.rx(1, ParamExpr::bound(0, 2.0));
  const std::vector<double> params{0.4};
  const Statevector via_circuit = c.simulate(params);

  Statevector manual(2);
  manual.apply_gate(gates::hadamard(), 0);
  manual.apply_cnot(0, 1);
  manual.apply_gate(gates::rx(0.8), 1);
  EXPECT_NEAR(std::abs(via_circuit.inner_product(manual)), 1.0, kTol);
}

TEST(Circuit, BellStateHasPerfectCorrelation) {
  Circuit c(2);
  c.h(0);
  c.cnot(0, 1);
  const Statevector bell = c.simulate({});
  const std::vector<double> probs = bell.probabilities();
  EXPECT_NEAR(probs[0], 0.5, kTol);
  EXPECT_NEAR(probs[3], 0.5, kTol);
  EXPECT_NEAR(probs[1] + probs[2], 0.0, kTol);
}

TEST(Circuit, CountAndDepth) {
  Circuit c(3);
  c.h(0);
  c.h(1);
  c.cnot(0, 1);
  c.rz(1, ParamExpr::constant(0.3));
  c.cnot(0, 1);
  EXPECT_EQ(c.count(GateKind::kH), 2u);
  EXPECT_EQ(c.count(GateKind::kCnot), 2u);
  EXPECT_EQ(c.count(GateKind::kRz), 1u);
  // Layering: {h0, h1} | cnot01 | rz1 | cnot01 -> depth 4.
  EXPECT_EQ(c.depth(), 4);
}

TEST(Circuit, AppendConcatenates) {
  Circuit a(2);
  a.h(0);
  Circuit b(2);
  b.cnot(0, 1);
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
  Circuit wrong(3);
  EXPECT_THROW(a.append(wrong), InvalidArgument);
}

TEST(Circuit, ValidatesQubitIndices) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), InvalidArgument);
  EXPECT_THROW(c.cnot(0, 0), InvalidArgument);
  EXPECT_THROW(c.cnot(0, 5), InvalidArgument);
}

TEST(Circuit, ToStringListsGates) {
  Circuit c(2);
  c.h(0);
  c.rx(1, ParamExpr::bound(0, 2.0));
  c.cnot(0, 1);
  const std::string listing = c.to_string();
  EXPECT_NE(listing.find("h q0"), std::string::npos);
  EXPECT_NE(listing.find("rx q1"), std::string::npos);
  EXPECT_NE(listing.find("cnot q0, q1"), std::string::npos);
}

TEST(Circuit, UnbindParametersThrows) {
  Circuit c(1);
  c.rx(0, ParamExpr::bound(0));
  EXPECT_THROW(c.simulate({}), InvalidArgument);
}

}  // namespace
}  // namespace qaoaml::quantum
