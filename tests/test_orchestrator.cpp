// core::run_shards against scripted fake workers: clean fan-out,
// retry-with-backoff after worker failure, retry-budget exhaustion,
// stall detection (silent worker, dead-but-pipe-held worker), and the
// kill-injection hook that CI's mid-shard SIGKILL job rides on.
#include <gtest/gtest.h>

#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/shard_orchestrator.hpp"

namespace qaoaml::core {
namespace {

std::string unique_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "orchestrator" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// A worker that runs `script` through /bin/sh with $1 = shard index.
std::function<std::vector<std::string>(int)> shell_worker(
    const std::string& script) {
  return [script](int shard) {
    return std::vector<std::string>{"/bin/sh", "-c", script, "worker",
                                    std::to_string(shard)};
  };
}

/// Protocol frames of a well-behaved worker that owns 2 units.
const char* kCleanBody =
    "echo \"@qshard start $1 2\";"
    "echo \"@qshard progress 1 2 10\";"
    "echo \"@qshard progress 2 2 10\";"
    "echo \"@qshard done 2 0 0.01\";";

/// Short backoffs so retry tests stay fast.
OrchestratorConfig fast_config(int shards, int workers) {
  OrchestratorConfig config;
  config.shard_count = shards;
  config.workers = workers;
  config.backoff_initial_s = 0.05;
  config.backoff_factor = 2.0;
  config.stall_timeout_s = 0.0;  // individual tests opt in
  return config;
}

TEST(Orchestrator, ValidatesConfig) {
  OrchestratorConfig config;  // worker_argv missing
  config.shard_count = 1;
  EXPECT_THROW(run_shards(config), InvalidArgument);
  config.worker_argv = shell_worker("true");
  config.shard_count = 0;
  EXPECT_THROW(run_shards(config), InvalidArgument);
}

TEST(Orchestrator, RunsEveryShardAndAggregatesFrames) {
  OrchestratorConfig config = fast_config(3, 2);
  config.worker_argv = shell_worker(std::string(kCleanBody));
  const OrchestratorReport report = run_shards(config);
  EXPECT_TRUE(report.succeeded);
  ASSERT_EQ(report.shards.size(), 3u);
  for (int s = 0; s < 3; ++s) {
    const ShardOutcome& shard = report.shards[static_cast<std::size_t>(s)];
    EXPECT_EQ(shard.shard, s);
    EXPECT_TRUE(shard.succeeded);
    EXPECT_EQ(shard.attempts, 1);
    EXPECT_EQ(shard.error, "");
    EXPECT_EQ(shard.units_done, 2u);
    EXPECT_EQ(shard.units_total, 2u);
    EXPECT_EQ(shard.units_generated, 2u);
    EXPECT_EQ(shard.units_resumed, 0u);
  }
}

TEST(Orchestrator, RetriesAFailedShardUntilItSucceeds) {
  const std::string dir = unique_dir("retry");
  // First attempt of every shard fails (after leaving a marker); the
  // retry sees the marker and completes cleanly.
  OrchestratorConfig config = fast_config(2, 2);
  config.retry_budget = 3;
  config.worker_argv = shell_worker(
      "if [ -f '" + dir + "/tried.'$1 ]; then " + kCleanBody +
      " else touch '" + dir + "/tried.'$1; echo boom >&2; exit 3; fi");
  const OrchestratorReport report = run_shards(config);
  EXPECT_TRUE(report.succeeded);
  for (const ShardOutcome& shard : report.shards) {
    EXPECT_TRUE(shard.succeeded);
    EXPECT_EQ(shard.attempts, 2);
    // The last error sticks for post-mortems even after the retry won.
    EXPECT_NE(shard.error.find("exit 3"), std::string::npos) << shard.error;
  }
}

TEST(Orchestrator, StopsRetryingWhenTheBudgetIsExhausted) {
  OrchestratorConfig config = fast_config(2, 2);
  config.retry_budget = 1;
  // Shard 0 always fails; shard 1 is clean.
  config.worker_argv = shell_worker(
      "if [ \"$1\" = 0 ]; then exit 9; fi;" + std::string(kCleanBody));
  const OrchestratorReport report = run_shards(config);
  EXPECT_FALSE(report.succeeded);
  EXPECT_FALSE(report.shards[0].succeeded);
  EXPECT_EQ(report.shards[0].attempts, 2);  // 1 try + 1 retry
  EXPECT_NE(report.shards[0].error.find("exit 9"), std::string::npos);
  EXPECT_TRUE(report.shards[1].succeeded);
}

TEST(Orchestrator, KillsAndRetriesASilentlyStalledWorker) {
  const std::string dir = unique_dir("stall");
  OrchestratorConfig config = fast_config(1, 1);
  config.retry_budget = 2;
  config.stall_timeout_s = 0.4;
  // First attempt hangs without a single heartbeat; the retry is clean.
  config.worker_argv = shell_worker(
      "if [ -f '" + dir + "/tried' ]; then " + kCleanBody +
      " else touch '" + dir + "/tried'; sleep 30; fi");
  const OrchestratorReport report = run_shards(config);
  EXPECT_TRUE(report.succeeded);
  EXPECT_EQ(report.shards[0].attempts, 2);
  EXPECT_NE(report.shards[0].error.find("stalled"), std::string::npos)
      << report.shards[0].error;
}

TEST(Orchestrator, StallDiagnosisReportsAFreeLockAsADeadWorker) {
  const std::string dir = unique_dir("dead");
  OrchestratorConfig config = fast_config(1, 1);
  config.retry_budget = 0;
  config.stall_timeout_s = 0.4;
  // Nobody ever takes the sidecar lock, so the stall diagnosis must
  // conclude the real worker process is gone.
  config.lock_path = [dir](int) { return dir + "/shard.lock"; };
  config.worker_argv =
      shell_worker("echo \"@qshard start $1 2\"; sleep 30");
  const OrchestratorReport report = run_shards(config);
  EXPECT_FALSE(report.succeeded);
  EXPECT_NE(report.shards[0].error.find("dead"), std::string::npos)
      << report.shards[0].error;
}

TEST(Orchestrator, StallDiagnosisReportsAHeldLockAsAWedgedWorker) {
  const std::string dir = unique_dir("wedged");
  OrchestratorConfig config = fast_config(1, 1);
  config.retry_budget = 0;
  config.stall_timeout_s = 0.4;
  config.lock_path = [dir](int) { return dir + "/shard.lock"; };
  // The worker holds its flock sidecar the whole time it hangs — the
  // signature of a live-but-wedged process.
  config.worker_argv = shell_worker(
      "exec /usr/bin/flock '" + dir +
      "/shard.lock' /bin/sh -c 'echo \"@qshard start 0 2\"; sleep 30'");
  const OrchestratorReport report = run_shards(config);
  EXPECT_FALSE(report.succeeded);
  EXPECT_NE(report.shards[0].error.find("wedged"), std::string::npos)
      << report.shards[0].error;
}

TEST(Orchestrator, KillInjectorForcesARetryOnTheChosenFrame) {
  OrchestratorConfig config = fast_config(2, 2);
  config.retry_budget = 2;
  config.worker_argv = shell_worker(std::string(kCleanBody));
  config.kill_injector = [](int shard, int attempt,
                            const proto::Event& event) {
    return shard == 1 && attempt == 0 &&
           event.kind == proto::Event::Kind::kProgress && event.done > 0;
  };
  const OrchestratorReport report = run_shards(config);
  EXPECT_TRUE(report.succeeded);
  EXPECT_EQ(report.shards[0].attempts, 1);
  EXPECT_EQ(report.shards[1].attempts, 2);
  EXPECT_NE(report.shards[1].error.find("injected"), std::string::npos);
}

TEST(Orchestrator, ManyMoreShardsThanWorkersAllComplete) {
  // Exercises the bounded queue's backpressure: 12 shards flow through
  // 2 monitor slots and a capacity-4 queue.
  OrchestratorConfig config = fast_config(12, 2);
  config.queue_capacity = 4;
  config.worker_argv = shell_worker(std::string(kCleanBody));
  const OrchestratorReport report = run_shards(config);
  EXPECT_TRUE(report.succeeded);
  for (const ShardOutcome& shard : report.shards) {
    EXPECT_TRUE(shard.succeeded);
    EXPECT_EQ(shard.attempts, 1);
  }
}

TEST(Orchestrator, ProgressLineIsFiniteForZeroTotals) {
  // Before any start frame arrives both counters are zero; the old
  // 0/0 division produced a NaN percentage and an inf ETA.
  ProgressSnapshot snapshot;
  snapshot.seconds = 1.0;
  const std::string line = format_progress_line(snapshot);
  EXPECT_NE(line.find("0/0 units 0.0%"), std::string::npos) << line;
  EXPECT_NE(line.find("ETA -- s"), std::string::npos) << line;
  EXPECT_EQ(line.find("nan"), std::string::npos) << line;
  EXPECT_EQ(line.find("inf"), std::string::npos) << line;
}

TEST(Orchestrator, ProgressLineIsFiniteForZeroElapsedTime) {
  // The first progress frame can land before the clock ticks: rate and
  // ETA are unknowable, not infinite.
  ProgressSnapshot snapshot;
  snapshot.done = 5;
  snapshot.total = 10;
  snapshot.seconds = 0.0;
  const std::string line = format_progress_line(snapshot);
  EXPECT_NE(line.find("5/10 units 50.0%"), std::string::npos) << line;
  EXPECT_NE(line.find("0.00 units/s"), std::string::npos) << line;
  EXPECT_NE(line.find("ETA -- s"), std::string::npos) << line;
}

TEST(Orchestrator, ProgressLineClampsDoneBeyondTotal) {
  // A resumed shard re-basing its counts can transiently report
  // done > total; the unsigned subtraction in the old ETA math
  // underflowed to ~2^64 seconds.
  ProgressSnapshot snapshot;
  snapshot.done = 12;
  snapshot.total = 10;
  snapshot.seconds = 2.0;
  const std::string line = format_progress_line(snapshot);
  EXPECT_NE(line.find("10/10 units 100.0%"), std::string::npos) << line;
  EXPECT_NE(line.find("ETA 0 s"), std::string::npos) << line;
}

TEST(Orchestrator, ProgressLineReportsANormalRateAndEta) {
  ProgressSnapshot snapshot;
  snapshot.done = 30;
  snapshot.total = 120;
  snapshot.seconds = 10.0;
  snapshot.finished = 1;
  snapshot.active = 3;
  const std::string line = format_progress_line(snapshot);
  EXPECT_NE(line.find("30/120 units 25.0%"), std::string::npos) << line;
  EXPECT_NE(line.find("3.00 units/s"), std::string::npos) << line;
  EXPECT_NE(line.find("ETA 30 s"), std::string::npos) << line;
  EXPECT_NE(line.find("shards 1 done, 3 active"), std::string::npos) << line;
}

}  // namespace
}  // namespace qaoaml::core
