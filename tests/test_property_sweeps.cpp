// Cross-module property sweeps (parameterized): invariants that must
// hold for every combination of optimizer, graph family, and depth.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "common/rng.hpp"
#include "core/angles.hpp"
#include "core/qaoa_solver.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"
#include "optim/optimizer.hpp"

namespace qaoaml {
namespace {

// ---------------------------------------------------------------------
// Sweep 1: every optimizer on every QAOA depth keeps core invariants.
// ---------------------------------------------------------------------

using OptDepthCase = std::tuple<optim::OptimizerKind, int>;

class OptimizerDepthSweep : public ::testing::TestWithParam<OptDepthCase> {};

TEST_P(OptimizerDepthSweep, QaoaRunSatisfiesInvariants) {
  const auto [kind, depth] = GetParam();
  Rng rng(0x1234 + static_cast<std::uint64_t>(depth));
  const graph::Graph g = graph::erdos_renyi_gnp(7, 0.5, rng);
  if (g.num_edges() == 0) GTEST_SKIP();
  const core::MaxCutQaoa instance(g, depth);

  const core::QaoaRun run = core::solve_random_init(instance, kind, rng);

  // The optimizer reports the value of the point it returns.
  EXPECT_NEAR(run.expectation, instance.expectation(run.params), 1e-9);
  // Angles stay inside the paper's domain.
  EXPECT_TRUE(instance.bounds().contains(run.params));
  // AR is a physical ratio.
  EXPECT_GT(run.approximation_ratio, 0.0);
  EXPECT_LE(run.approximation_ratio, 1.0 + 1e-9);
  // Work was accounted.
  EXPECT_GT(run.function_calls, 0);
  // An optimized point beats the uniform-state baseline <C> = m/2.
  EXPECT_GE(run.expectation,
            static_cast<double>(g.num_edges()) / 2.0 - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OptimizerDepthSweep,
    ::testing::Combine(::testing::ValuesIn(optim::all_optimizers()),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<OptDepthCase>& info) {
      std::string name = optim::to_string(std::get<0>(info.param)) + "_p" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------
// Sweep 2: graph families — QAOA p=1 must respect known MaxCut facts.
// ---------------------------------------------------------------------

struct FamilyCase {
  const char* name;
  graph::Graph (*make)(int);
  int nodes;
};

class GraphFamilySweep : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(GraphFamilySweep, ExpectationBoundedByExactOptimum) {
  const FamilyCase c = GetParam();
  const graph::Graph g = c.make(c.nodes);
  const core::MaxCutQaoa instance(g, 2);
  Rng rng(0x77);
  for (int trial = 0; trial < 10; ++trial) {
    const double e = instance.expectation(core::random_angles(2, rng));
    EXPECT_LE(e, instance.max_cut_value() + 1e-9) << c.name;
    EXPECT_GE(e, 0.0) << c.name;
  }
}

TEST_P(GraphFamilySweep, OptimizedStateConcentratesOnGoodCuts) {
  const FamilyCase c = GetParam();
  const graph::Graph g = c.make(c.nodes);
  const core::MaxCutQaoa instance(g, 2);
  Rng rng(0x99);
  const core::MultistartRuns runs = core::solve_multistart(
      instance, optim::OptimizerKind::kLbfgsb, 6, rng);
  // The optimized expectation must clearly beat the random-assignment
  // average m/2.
  EXPECT_GT(runs.best.expectation,
            static_cast<double>(g.num_edges()) / 2.0 + 0.1)
      << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Families, GraphFamilySweep,
    ::testing::Values(FamilyCase{"cycle6", &graph::cycle_graph, 6},
                      FamilyCase{"cycle7", &graph::cycle_graph, 7},
                      FamilyCase{"complete5", &graph::complete_graph, 5},
                      FamilyCase{"star6", &graph::star_graph, 6},
                      FamilyCase{"path6", &graph::path_graph, 6}),
    [](const ::testing::TestParamInfo<FamilyCase>& info) {
      return std::string(info.param.name);
    });

// ---------------------------------------------------------------------
// Sweep 3: angle-transform invariances across depths.
// ---------------------------------------------------------------------

class DepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(DepthSweep, InterpFromDepthPHasDepthPPlusOneLayout) {
  const int p = GetParam();
  Rng rng(42 + static_cast<std::uint64_t>(p));
  const std::vector<double> params = core::random_angles(p, rng);
  const std::vector<double> next = core::interp_angles(params);
  ASSERT_EQ(next.size(), core::num_angles(p + 1));
  // Endpoints: first stage keeps the old first stage's weight profile,
  // and every interpolated angle lies within the old angle range.
  for (int i = 1; i <= p + 1; ++i) {
    double lo = 1e300;
    double hi = -1e300;
    for (int j = 1; j <= p; ++j) {
      lo = std::min(lo, core::gamma_of(params, j));
      hi = std::max(hi, core::gamma_of(params, j));
    }
    EXPECT_GE(core::gamma_of(next, i), std::min(0.0, lo) - 1e-12);
    EXPECT_LE(core::gamma_of(next, i), hi + 1e-12);
  }
}

TEST_P(DepthSweep, CanonicalizationIsAnInvolutionOnTheMirror) {
  const int p = GetParam();
  Rng rng(77 + static_cast<std::uint64_t>(p));
  const std::vector<double> params = core::random_angles(p, rng);
  const std::vector<double> canon = core::canonicalize_angles(params);
  // Mirror of the canonical form is either itself (fixed point) or maps
  // back to the canonical form when canonicalized again.
  std::vector<double> mirrored(canon.size());
  for (std::size_t i = 0; i < canon.size() / 2; ++i) {
    mirrored[i] = 2.0 * M_PI - canon[i];
    mirrored[canon.size() / 2 + i] = M_PI - canon[canon.size() / 2 + i];
  }
  const std::vector<double> back = core::canonicalize_angles(mirrored);
  for (std::size_t i = 0; i < canon.size(); ++i) {
    EXPECT_NEAR(back[i], canon[i], 1e-12);
  }
}

TEST_P(DepthSweep, RampAnglesAreCanonical) {
  const int p = GetParam();
  const std::vector<double> ramp = core::linear_ramp_angles(p);
  EXPECT_EQ(core::canonicalize_angles(ramp), ramp);
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthSweep, ::testing::Values(1, 2, 3, 4, 6));

// ---------------------------------------------------------------------
// Sweep 4: weighted graphs — scaling covariance of the objective.
// ---------------------------------------------------------------------

TEST(WeightScaling, ExpectationScalesWithUniformWeights) {
  // Scaling all weights by c scales <C> by c when gamma is rescaled by
  // 1/c (the phase separator sees w * gamma only as a product).
  Rng rng(5);
  graph::Graph g = graph::cycle_graph(6);
  graph::Graph scaled(6);
  const double c = 2.5;
  for (const graph::Edge& e : g.edges()) scaled.add_edge(e.u, e.v, c);

  const core::MaxCutQaoa base(g, 2);
  const core::MaxCutQaoa big(scaled, 2);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<double> params = core::random_angles(2, rng);
    std::vector<double> rescaled = params;
    rescaled[0] = params[0] / c;  // gamma_1
    rescaled[1] = params[1] / c;  // gamma_2
    EXPECT_NEAR(c * base.expectation(params), big.expectation(rescaled),
                1e-9);
  }
}

}  // namespace
}  // namespace qaoaml
