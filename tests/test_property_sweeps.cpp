// Cross-module property sweeps (parameterized): invariants that must
// hold for every combination of optimizer, graph family, and depth.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <tuple>

#include "common/rng.hpp"
#include "core/angles.hpp"
#include "core/qaoa_solver.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"
#include "optim/optimizer.hpp"
#include "quantum/dispatch.hpp"
#include "quantum/sim_config.hpp"
#include "quantum/statevector.hpp"

namespace qaoaml {
namespace {

// ---------------------------------------------------------------------
// Sweep 1: every optimizer on every QAOA depth keeps core invariants.
// ---------------------------------------------------------------------

using OptDepthCase = std::tuple<optim::OptimizerKind, int>;

class OptimizerDepthSweep : public ::testing::TestWithParam<OptDepthCase> {};

TEST_P(OptimizerDepthSweep, QaoaRunSatisfiesInvariants) {
  const auto [kind, depth] = GetParam();
  Rng rng(0x1234 + static_cast<std::uint64_t>(depth));
  const graph::Graph g = graph::erdos_renyi_gnp(7, 0.5, rng);
  if (g.num_edges() == 0) GTEST_SKIP();
  const core::MaxCutQaoa instance(g, depth);

  const core::QaoaRun run = core::solve_random_init(instance, kind, rng);

  // The optimizer reports the value of the point it returns.
  EXPECT_NEAR(run.expectation, instance.expectation(run.params), 1e-9);
  // Angles stay inside the paper's domain.
  EXPECT_TRUE(instance.bounds().contains(run.params));
  // AR is a physical ratio.
  EXPECT_GT(run.approximation_ratio, 0.0);
  EXPECT_LE(run.approximation_ratio, 1.0 + 1e-9);
  // Work was accounted.
  EXPECT_GT(run.function_calls, 0);
  // An optimized point beats the uniform-state baseline <C> = m/2.
  EXPECT_GE(run.expectation,
            static_cast<double>(g.num_edges()) / 2.0 - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OptimizerDepthSweep,
    ::testing::Combine(::testing::ValuesIn(optim::all_optimizers()),
                       ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<OptDepthCase>& info) {
      std::string name = optim::to_string(std::get<0>(info.param)) + "_p" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------
// Sweep 2: graph families — QAOA p=1 must respect known MaxCut facts.
// ---------------------------------------------------------------------

struct FamilyCase {
  const char* name;
  graph::Graph (*make)(int);
  int nodes;
};

class GraphFamilySweep : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(GraphFamilySweep, ExpectationBoundedByExactOptimum) {
  const FamilyCase c = GetParam();
  const graph::Graph g = c.make(c.nodes);
  const core::MaxCutQaoa instance(g, 2);
  Rng rng(0x77);
  for (int trial = 0; trial < 10; ++trial) {
    const double e = instance.expectation(core::random_angles(2, rng));
    EXPECT_LE(e, instance.max_cut_value() + 1e-9) << c.name;
    EXPECT_GE(e, 0.0) << c.name;
  }
}

TEST_P(GraphFamilySweep, OptimizedStateConcentratesOnGoodCuts) {
  const FamilyCase c = GetParam();
  const graph::Graph g = c.make(c.nodes);
  const core::MaxCutQaoa instance(g, 2);
  Rng rng(0x99);
  const core::MultistartRuns runs = core::solve_multistart(
      instance, optim::OptimizerKind::kLbfgsb, 6, rng);
  // The optimized expectation must clearly beat the random-assignment
  // average m/2.
  EXPECT_GT(runs.best.expectation,
            static_cast<double>(g.num_edges()) / 2.0 + 0.1)
      << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Families, GraphFamilySweep,
    ::testing::Values(FamilyCase{"cycle6", &graph::cycle_graph, 6},
                      FamilyCase{"cycle7", &graph::cycle_graph, 7},
                      FamilyCase{"complete5", &graph::complete_graph, 5},
                      FamilyCase{"star6", &graph::star_graph, 6},
                      FamilyCase{"path6", &graph::path_graph, 6}),
    [](const ::testing::TestParamInfo<FamilyCase>& info) {
      return std::string(info.param.name);
    });

// ---------------------------------------------------------------------
// Sweep 3: angle-transform invariances across depths.
// ---------------------------------------------------------------------

class DepthSweep : public ::testing::TestWithParam<int> {};

TEST_P(DepthSweep, InterpFromDepthPHasDepthPPlusOneLayout) {
  const int p = GetParam();
  Rng rng(42 + static_cast<std::uint64_t>(p));
  const std::vector<double> params = core::random_angles(p, rng);
  const std::vector<double> next = core::interp_angles(params);
  ASSERT_EQ(next.size(), core::num_angles(p + 1));
  // Endpoints: first stage keeps the old first stage's weight profile,
  // and every interpolated angle lies within the old angle range.
  for (int i = 1; i <= p + 1; ++i) {
    double lo = 1e300;
    double hi = -1e300;
    for (int j = 1; j <= p; ++j) {
      lo = std::min(lo, core::gamma_of(params, j));
      hi = std::max(hi, core::gamma_of(params, j));
    }
    EXPECT_GE(core::gamma_of(next, i), std::min(0.0, lo) - 1e-12);
    EXPECT_LE(core::gamma_of(next, i), hi + 1e-12);
  }
}

TEST_P(DepthSweep, CanonicalizationIsAnInvolutionOnTheMirror) {
  const int p = GetParam();
  Rng rng(77 + static_cast<std::uint64_t>(p));
  const std::vector<double> params = core::random_angles(p, rng);
  const std::vector<double> canon = core::canonicalize_angles(params);
  // Mirror of the canonical form is either itself (fixed point) or maps
  // back to the canonical form when canonicalized again.
  std::vector<double> mirrored(canon.size());
  for (std::size_t i = 0; i < canon.size() / 2; ++i) {
    mirrored[i] = 2.0 * M_PI - canon[i];
    mirrored[canon.size() / 2 + i] = M_PI - canon[canon.size() / 2 + i];
  }
  const std::vector<double> back = core::canonicalize_angles(mirrored);
  for (std::size_t i = 0; i < canon.size(); ++i) {
    EXPECT_NEAR(back[i], canon[i], 1e-12);
  }
}

TEST_P(DepthSweep, RampAnglesAreCanonical) {
  const int p = GetParam();
  const std::vector<double> ramp = core::linear_ramp_angles(p);
  EXPECT_EQ(core::canonicalize_angles(ramp), ramp);
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthSweep, ::testing::Values(1, 2, 3, 4, 6));

// ---------------------------------------------------------------------
// Sweep 4: weighted graphs — scaling covariance of the objective.
// ---------------------------------------------------------------------

TEST(WeightScaling, ExpectationScalesWithUniformWeights) {
  // Scaling all weights by c scales <C> by c when gamma is rescaled by
  // 1/c (the phase separator sees w * gamma only as a product).
  Rng rng(5);
  graph::Graph g = graph::cycle_graph(6);
  graph::Graph scaled(6);
  const double c = 2.5;
  for (const graph::Edge& e : g.edges()) scaled.add_edge(e.u, e.v, c);

  const core::MaxCutQaoa base(g, 2);
  const core::MaxCutQaoa big(scaled, 2);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<double> params = core::random_angles(2, rng);
    std::vector<double> rescaled = params;
    rescaled[0] = params[0] / c;  // gamma_1
    rescaled[1] = params[1] / c;  // gamma_2
    EXPECT_NEAR(c * base.expectation(params), big.expectation(rescaled),
                1e-9);
  }
}

// ---------------------------------------------------------------------
// Sweep 5: simulator-path invariances — physical symmetries of the QAOA
// energy, each checked on every (layer kernel, SIMD tier) combination:
// fused and unfused sweeps, each under the scalar, AVX2 and AVX-512
// dispatch tiers (tiers this CPU lacks are skipped).
// ---------------------------------------------------------------------

using SimPathCase = std::tuple<quantum::LayerKernel, quantum::SimdTier>;

class SimulatorPathSweep : public ::testing::TestWithParam<SimPathCase> {
 protected:
  /// Skips tiers this CPU cannot execute; otherwise pins both switches
  /// for the duration of the test body.
  void SetUp() override {
    const auto [kernel, tier] = GetParam();
    if (!quantum::simd_tier_supported(tier)) {
      GTEST_SKIP() << quantum::to_string(tier) << " unsupported on this CPU";
    }
    kernel_guard_.emplace(kernel);
    tier_guard_.emplace(tier);
  }

 private:
  std::optional<quantum::ScopedLayerKernel> kernel_guard_;
  std::optional<quantum::ScopedSimdTier> tier_guard_;
};

TEST_P(SimulatorPathSweep, EnergyInvariantUnderQubitRelabeling) {
  // Relabeling the graph nodes permutes the qubits; the cost spectrum
  // and the (qubit-symmetric) mixer are unchanged, so <C> must be too.
  Rng rng(0xAB12);
  for (int trial = 0; trial < 4; ++trial) {
    const int n = 8;
    const graph::Graph g = graph::erdos_renyi_gnp(n, 0.5, rng);
    if (g.num_edges() == 0) continue;
    std::vector<int> perm(n);
    for (int v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
    for (int v = n - 1; v > 0; --v) {
      const auto other = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::uint64_t>(v) + 1));
      std::swap(perm[static_cast<std::size_t>(v)], perm[other]);
    }
    graph::Graph relabeled(n);
    for (const graph::Edge& e : g.edges()) {
      relabeled.add_edge(perm[static_cast<std::size_t>(e.u)],
                         perm[static_cast<std::size_t>(e.v)], e.weight);
    }
    for (int p : {1, 2}) {
      const core::MaxCutQaoa base(g, p);
      const core::MaxCutQaoa shuffled(relabeled, p);
      const std::vector<double> params = core::random_angles(p, rng);
      EXPECT_NEAR(base.expectation(params), shuffled.expectation(params),
                  1e-10)
          << "trial=" << trial << " p=" << p;
    }
  }
}

TEST_P(SimulatorPathSweep, EnergyInvariantUnderAngleSymmetryShifts) {
  // For an integral cut spectrum, gamma -> gamma + 2*pi leaves every
  // phase exp(-i*gamma*C(z)) unchanged.  beta -> beta + pi appends
  // RX(pi) = -iX on every qubit; X^(x)n propagates through the later
  // layers because C is invariant under flipping every bit (a cut and
  // its complement cut the same edges), so <C> is unchanged as well.
  Rng rng(0xCD34);
  const graph::Graph graphs[] = {graph::cycle_graph(7),
                                 graph::complete_graph(5),
                                 graph::erdos_renyi_gnp(7, 0.6, rng)};
  for (const graph::Graph& g : graphs) {
    if (g.num_edges() == 0) continue;
    for (int p : {1, 2}) {
      const core::MaxCutQaoa instance(g, p);
      ASSERT_TRUE(instance.has_integer_spectrum());
      const std::vector<double> params = core::random_angles(p, rng);
      const double base = instance.expectation(params);

      // Shift every gamma by 2*pi and every beta by pi.
      std::vector<double> shifted = params;
      for (int i = 0; i < p; ++i) {
        shifted[static_cast<std::size_t>(i)] += 2.0 * M_PI;
        shifted[static_cast<std::size_t>(p + i)] += M_PI;
      }
      EXPECT_NEAR(instance.expectation(shifted), base, 1e-9) << "p=" << p;

      // A single mid-circuit beta shift must also be invariant (the
      // X^(x)n commutes through every later layer independently).
      std::vector<double> one_beta = params;
      one_beta[static_cast<std::size_t>(p)] += M_PI;
      EXPECT_NEAR(instance.expectation(one_beta), base, 1e-9) << "p=" << p;
    }
  }
}

TEST_P(SimulatorPathSweep, ScaledWeightsShrinkTheGammaPeriod) {
  // With every weight scaled by c, the spectrum is c * integers, so the
  // gamma period contracts from 2*pi to 2*pi/c (the "2*pi/scale"
  // symmetry); the beta period stays pi as above.
  Rng rng(0xEF56);
  const double scale = 2.5;
  graph::Graph g(6);
  const graph::Graph cycle = graph::cycle_graph(6);
  for (const graph::Edge& e : cycle.edges()) g.add_edge(e.u, e.v, scale);
  for (int p : {1, 2}) {
    const core::MaxCutQaoa instance(g, p);
    const std::vector<double> params = core::random_angles(p, rng);
    std::vector<double> shifted = params;
    for (int i = 0; i < p; ++i) {
      shifted[static_cast<std::size_t>(i)] += 2.0 * M_PI / scale;
      shifted[static_cast<std::size_t>(p + i)] += M_PI;
    }
    EXPECT_NEAR(instance.expectation(shifted), instance.expectation(params),
                1e-9)
        << "p=" << p;
  }
}

TEST_P(SimulatorPathSweep, NormPreservedOverDeepCircuits) {
  // Unitarity holds on every path; the small qubit counts force the
  // vector kernels through their remainder lanes (dim 2 and 4 are below
  // one full AVX-512 vector of amplitudes).
  Rng rng(0x0112);
  for (int n : {1, 2, 3, 5, 9}) {
    quantum::Statevector sv = quantum::Statevector::uniform(n);
    std::vector<double> diag(sv.dimension());
    for (double& d : diag) d = rng.uniform(-4.0, 4.0);
    for (int layer = 0; layer < 6; ++layer) {
      sv.apply_qaoa_layer(diag, rng.uniform(-M_PI, M_PI),
                          rng.uniform(-M_PI, M_PI));
    }
    EXPECT_NEAR(sv.norm(), 1.0, 1e-12) << "n=" << n;
  }
}

TEST_P(SimulatorPathSweep, OddLaneSizesMatchTheScalarTierBitwise) {
  // Dimensions 4..32 exercise every remainder-lane shape of the vector
  // kernels (partial 512-bit vectors, the lone 256-bit step, scalar
  // tails); the energies must still be bit-identical to the scalar
  // tier, not merely close.
  Rng rng(0x0DD5);
  for (int n : {2, 3, 4, 5}) {
    const graph::Graph g =
        n == 2 ? graph::complete_graph(2) : graph::cycle_graph(n);
    const core::MaxCutQaoa instance(g, 2);
    const std::vector<double> params = core::random_angles(2, rng);
    const double dispatched = instance.expectation(params);
    double scalar = 0.0;
    {
      const quantum::ScopedSimdTier scalar_guard(quantum::SimdTier::kScalar);
      scalar = instance.expectation(params);
    }
    EXPECT_EQ(dispatched, scalar) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paths, SimulatorPathSweep,
    ::testing::Combine(::testing::Values(quantum::LayerKernel::kFused,
                                         quantum::LayerKernel::kUnfused),
                       ::testing::Values(quantum::SimdTier::kScalar,
                                         quantum::SimdTier::kAvx2,
                                         quantum::SimdTier::kAvx512)),
    [](const ::testing::TestParamInfo<SimPathCase>& info) {
      const std::string kernel =
          std::get<0>(info.param) == quantum::LayerKernel::kFused ? "fused"
                                                                  : "unfused";
      return kernel + "_" + quantum::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace qaoaml
