// Signal plumbing (common/signals.hpp): the SIGPIPE regression (no code
// path may die writing to a vanished peer), the thread-safe signal-name
// table, the child-side SIG_DFL restore in Subprocess::spawn, and
// SignalWaiter delivery.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/signals.hpp"
#include "common/subprocess.hpp"

namespace qaoaml {
namespace {

using namespace std::chrono_literals;

// The regression the serving daemon depends on: after ignore_sigpipe(),
// writing into a pipe whose read end closed mid-stream fails with EPIPE
// instead of killing the process.  Without the fix this test does not
// fail — it dies.
TEST(Signals, WriteToClosedPipeSurvivesAfterIgnoreSigpipe) {
  ignore_sigpipe();
  int fds[2] = {-1, -1};
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);  // the reader vanishes before we write

  const char byte = 'x';
  const ssize_t n = ::write(fds[1], &byte, 1);
  const int err = errno;
  ::close(fds[1]);
  EXPECT_EQ(n, -1);
  EXPECT_EQ(err, EPIPE);
}

// Subprocess::spawn writes toward children that may die at any moment,
// so the spawn path itself must arm the parent against SIGPIPE.
TEST(Signals, SpawnLeavesParentIgnoringSigpipe) {
  Subprocess child = Subprocess::spawn({"/bin/echo", "hi"});
  std::string line;
  while (child.read_line(line, 5000) != Subprocess::ReadResult::kEof) {
  }
  (void)child.wait();

  struct sigaction action {};
  ASSERT_EQ(::sigaction(SIGPIPE, nullptr, &action), 0);
  EXPECT_EQ(action.sa_handler, SIG_IGN);
}

// SIG_IGN for SIGPIPE must NOT leak into spawned children: a child that
// expects the default disposition (e.g. `head` closing a pipe early in
// a shell pipeline) would misbehave under an inherited SIG_IGN, because
// ignored dispositions survive execvp.
TEST(Signals, SpawnedChildGetsDefaultSigpipeDisposition) {
  ignore_sigpipe();
  // Bit 13 (SIGPIPE) of SigIgn in /proc/self/status, printed by the
  // child itself.  SigIgn is a 64-bit hex mask; SIGPIPE contributes
  // 0x1000.
  Subprocess child = Subprocess::spawn(
      {"/bin/sh", "-c", "grep SigIgn: /proc/self/status"});
  std::string line;
  std::string sig_ign;
  while (child.read_line(line, 5000) != Subprocess::ReadResult::kEof) {
    if (line.find("SigIgn:") != std::string::npos) sig_ign = line;
  }
  const Subprocess::ExitStatus status = child.wait();
  ASSERT_TRUE(status.success());
  ASSERT_FALSE(sig_ign.empty());
  const std::string mask = sig_ign.substr(sig_ign.find(':') + 1);
  const unsigned long long bits = std::stoull(mask, nullptr, 16);
  EXPECT_EQ(bits & (1ull << (SIGPIPE - 1)), 0ull)
      << "child inherited SIG_IGN for SIGPIPE: " << sig_ign;
}

TEST(Signals, SignalNameCoversThePortableTable) {
  EXPECT_STREQ(signal_name(SIGKILL), "SIGKILL");
  EXPECT_STREQ(signal_name(SIGTERM), "SIGTERM");
  EXPECT_STREQ(signal_name(SIGHUP), "SIGHUP");
  EXPECT_STREQ(signal_name(SIGPIPE), "SIGPIPE");
  EXPECT_EQ(signal_name(0), nullptr);
  EXPECT_EQ(signal_name(10000), nullptr);
}

// ::strsignal is allowed to use a static buffer; the table must be
// usable from many threads at once without tearing.
TEST(Signals, SignalNameIsStableUnderConcurrency) {
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (std::strcmp(signal_name(SIGKILL), "SIGKILL") != 0 ||
            std::strcmp(signal_name(SIGSEGV), "SIGSEGV") != 0) {
          ok = false;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_TRUE(ok.load());
}

TEST(Signals, SignalWaiterDeliversARaisedSignal) {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<int> delivered;
  SignalWaiter waiter({SIGHUP}, [&](int signum) {
    std::lock_guard<std::mutex> lock(mutex);
    delivered.push_back(signum);
    cv.notify_all();
  });

  ASSERT_EQ(::kill(::getpid(), SIGHUP), 0);

  std::unique_lock<std::mutex> lock(mutex);
  const bool got = cv.wait_for(lock, 5s, [&] { return !delivered.empty(); });
  ASSERT_TRUE(got) << "SIGHUP was not delivered to the waiter";
  EXPECT_EQ(delivered.front(), SIGHUP);
}

}  // namespace
}  // namespace qaoaml
