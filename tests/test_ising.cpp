// Tests for Ising models and diagonal Hamiltonians.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"
#include "ising/diagonal_hamiltonian.hpp"
#include "ising/ising_model.hpp"

namespace qaoaml::ising {
namespace {

TEST(IsingModel, EnergyOfFieldsOnly) {
  IsingModel m(2);
  m.set_field(0, 1.0);
  m.set_field(1, -2.0);
  // bits 00 -> s = (+1, +1): 1 - 2 = -1.
  EXPECT_DOUBLE_EQ(m.energy(0b00), -1.0);
  // bits 01 -> s = (-1, +1): -1 - 2 = -3.
  EXPECT_DOUBLE_EQ(m.energy(0b01), -3.0);
  // bits 10 -> s = (+1, -1): 1 + 2 = 3.
  EXPECT_DOUBLE_EQ(m.energy(0b10), 3.0);
}

TEST(IsingModel, EnergyOfCouplingsOnly) {
  IsingModel m(2);
  m.add_coupling(0, 1, 1.5);
  EXPECT_DOUBLE_EQ(m.energy(0b00), 1.5);   // aligned
  EXPECT_DOUBLE_EQ(m.energy(0b01), -1.5);  // anti-aligned
  EXPECT_DOUBLE_EQ(m.energy(0b11), 1.5);
}

TEST(IsingModel, ConstantShiftsEverything) {
  IsingModel m(1);
  m.set_constant(7.0);
  EXPECT_DOUBLE_EQ(m.energy(0), 7.0);
  EXPECT_DOUBLE_EQ(m.energy(1), 7.0);
}

TEST(IsingModel, DiagonalMatchesPointwiseEnergy) {
  Rng rng(3);
  IsingModel m(4);
  m.set_constant(0.5);
  for (int i = 0; i < 4; ++i) m.set_field(i, rng.normal());
  m.add_coupling(0, 1, rng.normal());
  m.add_coupling(2, 3, rng.normal());
  m.add_coupling(0, 3, rng.normal());
  const std::vector<double> diag = m.diagonal();
  ASSERT_EQ(diag.size(), 16u);
  for (std::uint64_t z = 0; z < 16; ++z) {
    EXPECT_NEAR(diag[z], m.energy(z), 1e-12);
  }
}

TEST(IsingModel, FromMaxcutEnergyEqualsCutValue) {
  Rng rng(5);
  const graph::Graph g = graph::erdos_renyi_gnp(7, 0.5, rng);
  const IsingModel m = IsingModel::from_maxcut(g);
  for (std::uint64_t z = 0; z < 128; z += 7) {
    EXPECT_NEAR(m.energy(z), graph::cut_value(g, z), 1e-12);
  }
}

TEST(IsingModel, ValidatesArguments) {
  EXPECT_THROW(IsingModel(0), InvalidArgument);
  IsingModel m(2);
  EXPECT_THROW(m.set_field(2, 1.0), InvalidArgument);
  EXPECT_THROW(m.add_coupling(0, 0, 1.0), InvalidArgument);
  EXPECT_THROW(m.add_coupling(0, 2, 1.0), InvalidArgument);
}

TEST(DiagonalHamiltonian, WrapsExplicitDiagonal) {
  const DiagonalHamiltonian h(std::vector<double>{0.0, 1.0, 2.0, 3.0});
  EXPECT_EQ(h.num_qubits(), 2);
  EXPECT_DOUBLE_EQ(h.max_value(), 3.0);
  EXPECT_DOUBLE_EQ(h.min_value(), 0.0);
  EXPECT_EQ(h.argmax(), 3u);
}

TEST(DiagonalHamiltonian, RejectsNonPowerOfTwo) {
  EXPECT_THROW(DiagonalHamiltonian(std::vector<double>{1.0, 2.0, 3.0}),
               InvalidArgument);
  EXPECT_THROW(DiagonalHamiltonian(std::vector<double>{1.0}), InvalidArgument);
}

TEST(DiagonalHamiltonian, MaxcutMatchesBruteForce) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const graph::Graph g = graph::erdos_renyi_gnp(8, 0.5, rng);
    const DiagonalHamiltonian h = DiagonalHamiltonian::maxcut(g);
    EXPECT_DOUBLE_EQ(h.max_value(), graph::max_cut_brute_force(g).value);
    EXPECT_DOUBLE_EQ(h.min_value(), 0.0);  // empty cut always exists
  }
}

TEST(DiagonalHamiltonian, FromIsingMatchesModelDiagonal) {
  IsingModel m(3);
  m.set_field(1, 0.3);
  m.add_coupling(0, 2, -0.7);
  const DiagonalHamiltonian h = DiagonalHamiltonian::from_ising(m);
  const std::vector<double> diag = m.diagonal();
  for (std::uint64_t z = 0; z < 8; ++z) {
    EXPECT_DOUBLE_EQ(h.value(z), diag[z]);
  }
}

TEST(DiagonalHamiltonian, ArgmaxAchievesMaxValue) {
  Rng rng(11);
  const graph::Graph g = graph::erdos_renyi_gnp(6, 0.5, rng);
  const DiagonalHamiltonian h = DiagonalHamiltonian::maxcut(g);
  EXPECT_DOUBLE_EQ(h.value(h.argmax()), h.max_value());
}

}  // namespace
}  // namespace qaoaml::ising
