// The sharded Table-I experiment's guarantees: the merged rows are
// bit-identical to the direct run_table1 sweep for every shard and
// thread count, a shard killed mid-write resumes, stale configs are
// discarded, and merging an incomplete shard set fails loudly.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/experiment.hpp"
#include "core/parameter_predictor.hpp"

namespace qaoaml::core {
namespace {

/// Shared tiny corpus + trained predictor (one-time cost for the suite).
struct Harness {
  ParameterDataset dataset;
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
  ParameterPredictor predictor;
};

const Harness& harness() {
  static const Harness h = [] {
    Harness out;
    DatasetConfig config;
    config.num_graphs = 10;
    config.num_nodes = 6;
    config.max_depth = 3;
    config.restarts = 4;
    config.seed = 77;
    out.dataset = ParameterDataset::generate(config);
    Rng rng(7);
    auto [train, test] = out.dataset.split_indices(0.4, rng);
    out.train = std::move(train);
    out.test = std::move(test);
    out.predictor.train(out.dataset, out.train);
    return out;
  }();
  return h;
}

ExperimentConfig tiny_sweep() {
  ExperimentConfig config;
  config.optimizers = {optim::OptimizerKind::kLbfgsb,
                       optim::OptimizerKind::kNelderMead};
  config.target_depths = {2, 3};
  config.naive_runs = 2;
  config.ml_repeats = 1;
  config.seed = 99;
  return config;
}

std::string unique_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "table1_shard" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

void expect_rows_identical(const std::vector<TableRow>& a,
                           const std::vector<TableRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].optimizer, b[i].optimizer);
    EXPECT_EQ(a[i].target_depth, b[i].target_depth);
    // Bit-identical, not approximately equal: the shard files print 17
    // significant digits, which round-trips doubles exactly.
    EXPECT_EQ(a[i].naive_ar_mean, b[i].naive_ar_mean);
    EXPECT_EQ(a[i].naive_ar_sd, b[i].naive_ar_sd);
    EXPECT_EQ(a[i].naive_fc_mean, b[i].naive_fc_mean);
    EXPECT_EQ(a[i].naive_fc_sd, b[i].naive_fc_sd);
    EXPECT_EQ(a[i].ml_ar_mean, b[i].ml_ar_mean);
    EXPECT_EQ(a[i].ml_ar_sd, b[i].ml_ar_sd);
    EXPECT_EQ(a[i].ml_fc_mean, b[i].ml_fc_mean);
    EXPECT_EQ(a[i].ml_fc_sd, b[i].ml_fc_sd);
    EXPECT_EQ(a[i].fc_reduction_percent, b[i].fc_reduction_percent);
  }
}

TEST(Table1ShardTest, MergedRowsIdenticalToDirectRunAcrossShardsAndThreads) {
  const Harness& h = harness();
  const ExperimentConfig config = tiny_sweep();
  const std::vector<TableRow> direct =
      run_table1(h.dataset, h.test, h.predictor, config);

  for (const int shards : {1, 2, 8}) {
    for (const int threads : {1, 8}) {
      ScopedThreadCount scoped(threads);
      const std::string dir = unique_dir(
          "merge_s" + std::to_string(shards) + "t" + std::to_string(threads));
      for (int s = 0; s < shards; ++s) {
        const Table1ShardReport report = run_table1_shard(
            h.dataset, h.test, h.predictor, config, ShardSpec{s, shards}, dir);
        EXPECT_EQ(report.units_resumed, 0u);
        EXPECT_EQ(report.units_generated, report.units_owned);
      }
      const std::vector<TableRow> merged =
          merge_table1_shards(h.dataset, h.test, config, shards, dir);
      expect_rows_identical(merged, direct);
    }
  }
}

TEST(Table1ShardTest, SampledSweepMergesBitIdenticalAcrossShardsAndThreads) {
  // The whole shard machinery under a shot-sampled objective: every
  // unit is a pure function of (config, unit index) with the
  // measurement-stream seeds drawn from the unit's own rng stream, so
  // shard and thread counts must not change a bit of the merged rows.
  const Harness& h = harness();
  ExperimentConfig config = tiny_sweep();
  config.optimizers = {optim::OptimizerKind::kNelderMead};
  config.target_depths = {2};
  config.eval = EvalSpec::sampled_with(64, 0);

  const std::vector<TableRow> direct =
      run_table1(h.dataset, h.test, h.predictor, config);

  for (const int shards : {1, 2, 8}) {
    for (const int threads : {1, 8}) {
      ScopedThreadCount scoped(threads);
      const std::string dir = unique_dir(
          "sampled_s" + std::to_string(shards) + "t" + std::to_string(threads));
      for (int s = 0; s < shards; ++s) {
        run_table1_shard(h.dataset, h.test, h.predictor, config,
                         ShardSpec{s, shards}, dir);
      }
      expect_rows_identical(
          merge_table1_shards(h.dataset, h.test, config, shards, dir), direct);
    }
  }
}

TEST(Table1ShardTest, EvalSpecChangeInvalidatesShards) {
  // Exact and sampled sweeps must never merge into one table: the spec
  // is part of the shard config key.
  const Harness& h = harness();
  ExperimentConfig config = tiny_sweep();
  config.optimizers = {optim::OptimizerKind::kNelderMead};
  config.target_depths = {2};
  const std::string dir = unique_dir("eval_key");
  run_table1_shard(h.dataset, h.test, h.predictor, config, ShardSpec{0, 1},
                   dir);

  ExperimentConfig sampled = config;
  sampled.eval = EvalSpec::sampled_with(64, 0);
  EXPECT_THROW(merge_table1_shards(h.dataset, h.test, sampled, 1, dir), Error);

  // Same shots, different measurement seed: still a different sweep.
  run_table1_shard(h.dataset, h.test, h.predictor, sampled, ShardSpec{0, 1},
                   dir);
  ExperimentConfig reseeded = sampled;
  reseeded.eval.seed = 1;
  EXPECT_THROW(merge_table1_shards(h.dataset, h.test, reseeded, 1, dir),
               Error);
}

TEST(Table1ShardTest, ResumeAfterTruncationCompletesToSameRows) {
  const Harness& h = harness();
  const ExperimentConfig config = tiny_sweep();
  const std::vector<TableRow> direct =
      run_table1(h.dataset, h.test, h.predictor, config);

  for (const double cut : {0.3, 0.6, 0.95}) {
    const std::string dir =
        unique_dir("resume_cut" + std::to_string(static_cast<int>(cut * 100)));
    for (int s = 0; s < 2; ++s) {
      run_table1_shard(h.dataset, h.test, h.predictor, config, ShardSpec{s, 2},
                       dir);
    }
    // Simulate a kill mid-write: drop the tail of shard 0.
    const std::string shard0 = table1_shard_path(dir, ShardSpec{0, 2});
    const auto size = std::filesystem::file_size(shard0);
    ASSERT_GT(size, 10u);
    std::filesystem::resize_file(
        shard0,
        static_cast<std::uintmax_t>(cut * static_cast<double>(size)));

    const Table1ShardReport report = run_table1_shard(
        h.dataset, h.test, h.predictor, config, ShardSpec{0, 2}, dir);
    EXPECT_EQ(report.units_resumed + report.units_generated,
              report.units_owned);
    EXPECT_GT(report.units_generated, 0u) << "cut=" << cut;

    expect_rows_identical(merge_table1_shards(h.dataset, h.test, config, 2, dir),
                          direct);
  }
}

TEST(Table1ShardTest, CompletedShardResumesWithoutRecomputing) {
  const Harness& h = harness();
  const ExperimentConfig config = tiny_sweep();
  const std::string dir = unique_dir("noop_resume");

  const Table1ShardReport first = run_table1_shard(
      h.dataset, h.test, h.predictor, config, ShardSpec{0, 1}, dir);
  EXPECT_EQ(first.units_generated, first.units_owned);

  const Table1ShardReport second = run_table1_shard(
      h.dataset, h.test, h.predictor, config, ShardSpec{0, 1}, dir);
  EXPECT_EQ(second.units_resumed, second.units_owned);
  EXPECT_EQ(second.units_generated, 0u);
}

TEST(Table1ShardTest, StaleConfigIsRegeneratedAndMergeRejectsIt) {
  const Harness& h = harness();
  ExperimentConfig config = tiny_sweep();
  const std::string dir = unique_dir("stale");
  run_table1_shard(h.dataset, h.test, h.predictor, config, ShardSpec{0, 1},
                   dir);

  ExperimentConfig changed = config;
  changed.seed += 1;
  // Merging under the changed config must refuse the stale shard file.
  EXPECT_THROW(merge_table1_shards(h.dataset, h.test, changed, 1, dir), Error);

  // Re-running under the changed config regenerates from scratch.
  const Table1ShardReport report = run_table1_shard(
      h.dataset, h.test, h.predictor, changed, ShardSpec{0, 1}, dir);
  EXPECT_EQ(report.units_resumed, 0u);
  EXPECT_EQ(report.units_generated, report.units_owned);
}

TEST(Table1ShardTest, MergeRejectsIncompleteShardSet) {
  const Harness& h = harness();
  const ExperimentConfig config = tiny_sweep();
  const std::string dir = unique_dir("incomplete");
  run_table1_shard(h.dataset, h.test, h.predictor, config, ShardSpec{0, 2},
                   dir);  // shard 1 of 2 never runs
  EXPECT_THROW(merge_table1_shards(h.dataset, h.test, config, 2, dir), Error);
}

TEST(Table1ShardTest, DifferentTestSetInvalidatesShards) {
  const Harness& h = harness();
  const ExperimentConfig config = tiny_sweep();
  const std::string dir = unique_dir("test_set_key");
  run_table1_shard(h.dataset, h.test, h.predictor, config, ShardSpec{0, 1},
                   dir);

  std::vector<std::size_t> other_tests = h.test;
  other_tests.pop_back();
  ASSERT_FALSE(other_tests.empty());
  EXPECT_THROW(merge_table1_shards(h.dataset, other_tests, config, 1, dir),
               Error);
}

}  // namespace
}  // namespace qaoaml::core
