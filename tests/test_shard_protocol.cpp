// The @qshard line protocol: emit/parse round trips, tolerant
// classification of non-protocol chatter, loud classification of
// malformed sentinel lines, and the background heartbeat emitter.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/shard_protocol.hpp"

namespace qaoaml::proto {
namespace {

/// Captures what the emitters write via a tmpfile, split into lines.
class Capture {
 public:
  Capture() : file_(std::tmpfile()) {}
  ~Capture() {
    if (file_ != nullptr) std::fclose(file_);
  }
  std::FILE* file() { return file_; }

  std::vector<std::string> lines() {
    std::vector<std::string> out;
    std::rewind(file_);
    char buffer[512];
    while (std::fgets(buffer, sizeof(buffer), file_) != nullptr) {
      std::string line(buffer);
      if (!line.empty() && line.back() == '\n') line.pop_back();
      out.push_back(line);
    }
    return out;
  }

 private:
  std::FILE* file_;
};

TEST(ShardProtocol, StartRoundTrips) {
  Capture capture;
  emit_start(capture.file(), 3, 128);
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  const Event event = parse_line(lines[0]);
  EXPECT_EQ(event.kind, Event::Kind::kStart);
  EXPECT_EQ(event.shard, 3);
  EXPECT_EQ(event.total, 128u);
}

TEST(ShardProtocol, ProgressRoundTrips) {
  Capture capture;
  emit_progress(capture.file(), 37, 128, 4.125);
  const Event event = parse_line(capture.lines().at(0));
  EXPECT_EQ(event.kind, Event::Kind::kProgress);
  EXPECT_EQ(event.done, 37u);
  EXPECT_EQ(event.total, 128u);
  EXPECT_DOUBLE_EQ(event.units_per_sec, 4.125);
}

TEST(ShardProtocol, HeartbeatRoundTrips) {
  Capture capture;
  emit_heartbeat(capture.file());
  EXPECT_EQ(parse_line(capture.lines().at(0)).kind, Event::Kind::kHeartbeat);
}

TEST(ShardProtocol, DoneRoundTrips) {
  Capture capture;
  emit_done(capture.file(), 100, 28, 12.5);
  const Event event = parse_line(capture.lines().at(0));
  EXPECT_EQ(event.kind, Event::Kind::kDone);
  EXPECT_EQ(event.generated, 100u);
  EXPECT_EQ(event.resumed, 28u);
  EXPECT_DOUBLE_EQ(event.seconds, 12.5);
}

TEST(ShardProtocol, NullSinkDisablesEmission) {
  emit_start(nullptr, 0, 1);
  emit_progress(nullptr, 0, 1, 0.0);
  emit_heartbeat(nullptr);
  emit_done(nullptr, 0, 0, 0.0);  // must simply not crash
}

TEST(ShardProtocol, OrdinaryChatterIsNone) {
  EXPECT_EQ(parse_line("").kind, Event::Kind::kNone);
  EXPECT_EQ(parse_line("shard 0/3: 4 units ...").kind, Event::Kind::kNone);
  EXPECT_EQ(parse_line("  data /tmp/x/corpus.shard0of3.txt").kind,
            Event::Kind::kNone);
  // The sentinel must be its own token, not a prefix.
  EXPECT_EQ(parse_line("@qshardX progress 1 2 3").kind, Event::Kind::kNone);
}

TEST(ShardProtocol, MalformedSentinelLinesAreFlagged) {
  // A sentinel line that does not parse is a protocol bug worth
  // surfacing, not chatter to pass through.
  EXPECT_EQ(parse_line("@qshard").kind, Event::Kind::kMalformed);
  EXPECT_EQ(parse_line("@qshard bogus-verb 1").kind, Event::Kind::kMalformed);
  EXPECT_EQ(parse_line("@qshard progress 1").kind, Event::Kind::kMalformed);
  EXPECT_EQ(parse_line("@qshard progress one 2 3.0").kind,
            Event::Kind::kMalformed);
  // Excess operands are malformed too: forward compatibility is by
  // new verbs, not by silently ignored fields.
  EXPECT_EQ(parse_line("@qshard heartbeat extra").kind,
            Event::Kind::kMalformed);
  EXPECT_EQ(parse_line("@qshard done 1 2 3.0 4").kind,
            Event::Kind::kMalformed);
}

TEST(ShardProtocol, AdversarialNumbersAreMalformedNotWrapped) {
  // Negative counts: istream >> into an unsigned would silently wrap
  // these into huge values; the strict parser must flag them instead.
  EXPECT_EQ(parse_line("@qshard progress -1 10 1.0").kind,
            Event::Kind::kMalformed);
  EXPECT_EQ(parse_line("@qshard progress 1 -10 1.0").kind,
            Event::Kind::kMalformed);
  EXPECT_EQ(parse_line("@qshard start 0 -5").kind, Event::Kind::kMalformed);
  EXPECT_EQ(parse_line("@qshard done -1 0 1.0").kind,
            Event::Kind::kMalformed);

  // done > total: a frame no correct worker can emit.
  EXPECT_EQ(parse_line("@qshard progress 11 10 1.0").kind,
            Event::Kind::kMalformed);
  // done == total is the normal completion frame, though.
  EXPECT_EQ(parse_line("@qshard progress 10 10 1.0").kind,
            Event::Kind::kProgress);

  // Non-finite or negative rates.
  EXPECT_EQ(parse_line("@qshard progress 1 10 inf").kind,
            Event::Kind::kMalformed);
  EXPECT_EQ(parse_line("@qshard progress 1 10 nan").kind,
            Event::Kind::kMalformed);
  EXPECT_EQ(parse_line("@qshard progress 1 10 -3.0").kind,
            Event::Kind::kMalformed);
}

TEST(ShardProtocol, TrailingGarbageIsMalformed) {
  EXPECT_EQ(parse_line("@qshard progress 1 10 1.0 junk").kind,
            Event::Kind::kMalformed);
  EXPECT_EQ(parse_line("@qshard start 0 5 trailing").kind,
            Event::Kind::kMalformed);
  // Garbage fused onto a number is equally malformed.
  EXPECT_EQ(parse_line("@qshard progress 1x 10 1.0").kind,
            Event::Kind::kMalformed);
  EXPECT_EQ(parse_line("@qshard progress 1 10 1.0garbage").kind,
            Event::Kind::kMalformed);
}

TEST(ShardProtocol, OverlongSentinelLinesAreMalformed) {
  // A sentinel line longer than any legitimate frame is rejected before
  // tokenization; a non-sentinel line of any length stays kNone.
  const std::string padding(kMaxLineBytes, '7');
  EXPECT_EQ(parse_line("@qshard progress 1 10 " + padding).kind,
            Event::Kind::kMalformed);
  EXPECT_EQ(parse_line("plain worker chatter " + padding).kind,
            Event::Kind::kNone);
}

TEST(ShardProtocol, HeartbeatEmitterTicksUntilDestroyed) {
  Capture capture;
  {
    HeartbeatEmitter emitter(capture.file(), 0.02);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  }
  const auto lines = capture.lines();
  // ~7 expected at 20 ms; demand a conservative >= 2 to stay robust on
  // a loaded CI box.
  ASSERT_GE(lines.size(), 2u);
  for (const std::string& line : lines) {
    EXPECT_EQ(parse_line(line).kind, Event::Kind::kHeartbeat) << line;
  }
  const std::size_t count = lines.size();
  // After destruction the background thread is gone: no new beats.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(capture.lines().size(), count);
}

TEST(ShardProtocol, HeartbeatEmitterWithNullSinkIsANoop) {
  HeartbeatEmitter emitter(nullptr, 0.01);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
}

}  // namespace
}  // namespace qaoaml::proto
