// Threading-layer tests: pool scheduling, blocked ranges, deterministic
// reductions, exception propagation, and thread-count resolution
// (QAOAML_THREADS / ScopedThreadCount).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"

using namespace qaoaml;

namespace {

/// Restores QAOAML_THREADS on scope exit so tests stay independent.
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* name) : name_(name) {
    const char* current = std::getenv(name);
    if (current != nullptr) saved_ = current;
    had_value_ = current != nullptr;
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_value_ = false;
};

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(10000);
  for (auto& h : hits) h.store(0);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountNeverInvokesBody) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; }, 8);
}

TEST(ParallelFor, OneElementRunsInline) {
  int calls = 0;
  parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  }, 8);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, PropagatesWorkerExceptions) {
  EXPECT_THROW(
      parallel_for(64, [](std::size_t i) {
        if (i == 17) throw InvalidArgument("boom");
      }, 8),
      InvalidArgument);
}

TEST(ParallelFor, PropagatesExceptionFromSubmittingThreadToo) {
  // Index 0 is typically claimed by the submitting thread itself.
  EXPECT_THROW(
      parallel_for(64, [](std::size_t i) {
        if (i == 0) throw InvalidArgument("first");
      }, 8),
      InvalidArgument);
}

TEST(ParallelFor, PoolIsReusableAfterException) {
  EXPECT_THROW(
      parallel_for(32, [](std::size_t) { throw InvalidArgument("x"); }, 4),
      InvalidArgument);
  std::atomic<int> sum{0};
  parallel_for(32, [&](std::size_t i) { sum += static_cast<int>(i); }, 4);
  EXPECT_EQ(sum.load(), 496);
}

TEST(ParallelFor, NestedCallsRunInline) {
  std::atomic<int> inner_total{0};
  parallel_for(4, [&](std::size_t) {
    EXPECT_TRUE(in_parallel_region());
    parallel_for(100, [&](std::size_t) { inner_total.fetch_add(1); }, 8);
  }, 4);
  EXPECT_EQ(inner_total.load(), 400);
  EXPECT_FALSE(in_parallel_region());
}

TEST(ParallelForRange, CoversRangeExactlyOnce) {
  const std::size_t count = 3 * kParallelGrain + 1234;  // ragged tail
  std::vector<std::atomic<int>> hits(count);
  for (auto& h : hits) h.store(0);
  parallel_for_range(count, [&](std::size_t begin, std::size_t end) {
    ASSERT_LE(begin, end);
    ASSERT_LE(end, count);
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForRange, SmallRangeIsOneInlineBlock) {
  int calls = 0;
  parallel_for_range(100, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 100u);
    ++calls;
  }, 8);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelReduce, MatchesSerialSum) {
  const std::size_t count = 2 * kParallelGrain + 77;
  std::vector<double> values(count);
  std::iota(values.begin(), values.end(), 1.0);
  const double total = parallel_reduce(
      count, 0.0,
      [&](std::size_t begin, std::size_t end) {
        double acc = 0.0;
        for (std::size_t i = begin; i < end; ++i) acc += values[i];
        return acc;
      },
      8);
  const double n = static_cast<double>(count);
  EXPECT_DOUBLE_EQ(total, n * (n + 1.0) / 2.0);
}

TEST(ParallelReduce, BitIdenticalAcrossThreadCounts) {
  // Pseudo-random magnitudes make the sum order-sensitive in the last
  // bits; the blocked reduction must hide that entirely.
  const std::size_t count = (std::size_t{1} << 17) + 31;
  std::vector<double> values(count);
  Rng rng(123);
  for (double& v : values) v = rng.uniform(-1.0, 1.0) * rng.uniform(0.0, 1e6);

  const auto block_sum = [&](std::size_t begin, std::size_t end) {
    double acc = 0.0;
    for (std::size_t i = begin; i < end; ++i) acc += values[i];
    return acc;
  };
  double one_thread = 0.0;
  double eight_threads = 0.0;
  {
    ScopedThreadCount guard(1);
    one_thread = parallel_reduce(count, 0.0, block_sum);
  }
  {
    ScopedThreadCount guard(8);
    eight_threads = parallel_reduce(count, 0.0, block_sum);
  }
  EXPECT_EQ(one_thread, eight_threads);  // bitwise, not approximate
}

TEST(ThreadCount, EnvOverrideIsHonored) {
  ScopedEnv guard("QAOAML_THREADS");
  ::setenv("QAOAML_THREADS", "3", 1);
  EXPECT_EQ(default_thread_count(), 3);
  ::setenv("QAOAML_THREADS", "12", 1);
  EXPECT_EQ(default_thread_count(), 12);
}

TEST(ThreadCount, InvalidEnvFallsBackToAtLeastOne) {
  ScopedEnv guard("QAOAML_THREADS");
  ::setenv("QAOAML_THREADS", "0", 1);
  EXPECT_GE(default_thread_count(), 1);
  ::setenv("QAOAML_THREADS", "not-a-number", 1);
  EXPECT_GE(default_thread_count(), 1);
  ::unsetenv("QAOAML_THREADS");
  EXPECT_GE(default_thread_count(), 1);
}

TEST(ThreadCount, ScopedOverrideBeatsEnvAndRestores) {
  ScopedEnv guard("QAOAML_THREADS");
  ::setenv("QAOAML_THREADS", "2", 1);
  EXPECT_EQ(default_thread_count(), 2);
  {
    ScopedThreadCount scoped(7);
    EXPECT_EQ(default_thread_count(), 7);
    {
      ScopedThreadCount nested(1);
      EXPECT_EQ(default_thread_count(), 1);
    }
    EXPECT_EQ(default_thread_count(), 7);
  }
  EXPECT_EQ(default_thread_count(), 2);
}

TEST(ThreadCount, ScopedOverrideRejectsNonPositive) {
  EXPECT_THROW(ScopedThreadCount scoped(0), InvalidArgument);
}

}  // namespace
