// Tests for Pauli-string observables and the general Ising QAOA.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/angles.hpp"
#include "core/ising_qaoa.hpp"
#include "core/qaoa_objective.hpp"
#include "graph/generators.hpp"
#include "quantum/pauli.hpp"

namespace qaoaml {
namespace {

using quantum::PauliString;
using quantum::PauliSum;
using quantum::Statevector;

TEST(PauliString, LabelRoundTrips) {
  const PauliString p = PauliString::from_label("XIZY");
  EXPECT_EQ(p.label(), "XIZY");
  EXPECT_EQ(p.num_qubits(), 4);
  EXPECT_FALSE(p.is_diagonal());
  EXPECT_TRUE(PauliString::from_label("IZZI").is_diagonal());
}

TEST(PauliString, RejectsBadLabels) {
  EXPECT_THROW(PauliString::from_label("XQ"), InvalidArgument);
  EXPECT_THROW(PauliString::from_label(""), InvalidArgument);
}

TEST(PauliString, ZExpectationOnBasisStates) {
  Statevector sv(2);  // |00>
  EXPECT_NEAR(PauliString::from_label("IZ").expectation(sv), 1.0, 1e-12);
  sv.apply_gate(quantum::gates::pauli_x(), 0);  // |01>
  EXPECT_NEAR(PauliString::from_label("IZ").expectation(sv), -1.0, 1e-12);
  EXPECT_NEAR(PauliString::from_label("ZI").expectation(sv), 1.0, 1e-12);
  EXPECT_NEAR(PauliString::from_label("ZZ").expectation(sv), -1.0, 1e-12);
}

TEST(PauliString, XExpectationOnPlusState) {
  const Statevector plus = Statevector::uniform(2);
  EXPECT_NEAR(PauliString::from_label("XI").expectation(plus), 1.0, 1e-12);
  EXPECT_NEAR(PauliString::from_label("XX").expectation(plus), 1.0, 1e-12);
  EXPECT_NEAR(PauliString::from_label("ZI").expectation(plus), 0.0, 1e-12);
}

TEST(PauliString, YExpectationOnEigenstate) {
  // |+i> = (|0> + i|1>)/sqrt(2) is the +1 eigenstate of Y.
  Statevector sv = Statevector::from_amplitudes(
      {quantum::Complex{1.0 / std::sqrt(2.0), 0.0},
       quantum::Complex{0.0, 1.0 / std::sqrt(2.0)}});
  EXPECT_NEAR(PauliString::from_label("Y").expectation(sv), 1.0, 1e-12);
}

TEST(PauliString, SquaresToIdentity) {
  Rng rng(3);
  Statevector sv = Statevector::uniform(3);
  sv.apply_gate(quantum::gates::ry(0.7), 1);
  const PauliString p = PauliString::from_label("XYZ");
  Statevector twice = sv;
  p.apply_to(twice);
  p.apply_to(twice);
  EXPECT_NEAR(std::abs(sv.inner_product(twice)), 1.0, 1e-12);
  // P^2 = +I exactly (not just up to phase).
  EXPECT_NEAR(sv.inner_product(twice).real(), 1.0, 1e-12);
}

TEST(PauliString, ExpectationIsRealAndBounded) {
  Rng rng(5);
  Statevector sv = Statevector::uniform(4);
  for (int step = 0; step < 12; ++step) {
    sv.apply_gate(quantum::gates::rx(rng.uniform(0.0, 3.0)),
                  static_cast<int>(rng.uniform_int(4)));
    const int control = static_cast<int>(rng.uniform_int(4));
    const int target = (control + 1 + static_cast<int>(rng.uniform_int(3))) % 4;
    sv.apply_cnot(control, target);
  }
  for (const char* label : {"XYZI", "ZZXX", "IYIY", "ZIII"}) {
    const double e = PauliString::from_label(label).expectation(sv);
    EXPECT_LE(std::abs(e), 1.0 + 1e-9) << label;
  }
}

TEST(PauliString, CommutationRules) {
  const auto xi = PauliString::from_label("XI");
  const auto zi = PauliString::from_label("ZI");
  const auto xx = PauliString::from_label("XX");
  const auto zz = PauliString::from_label("ZZ");
  EXPECT_FALSE(xi.commutes_with(zi));  // X and Z anticommute on one qubit
  EXPECT_TRUE(xx.commutes_with(zz));   // two anticommuting sites -> commute
  EXPECT_TRUE(xi.commutes_with(xx));
}

TEST(PauliSum, DiagonalMatchesIsingModel) {
  // h0 Z0 + J Z0 Z1 as a PauliSum must match IsingModel::diagonal().
  ising::IsingModel model(2);
  model.set_field(0, 0.7);
  model.add_coupling(0, 1, -0.3);

  PauliSum sum(2);
  sum.add(0.7, PauliString::from_label("IZ"));   // Z on qubit 0
  sum.add(-0.3, PauliString::from_label("ZZ"));
  ASSERT_TRUE(sum.is_diagonal());

  const std::vector<double> a = sum.diagonal();
  const std::vector<double> b = model.diagonal();
  for (std::size_t z = 0; z < 4; ++z) EXPECT_NEAR(a[z], b[z], 1e-12);
}

TEST(PauliSum, ExpectationMatchesDiagonalPath) {
  Rng rng(7);
  Statevector sv = Statevector::uniform(3);
  sv.apply_gate(quantum::gates::ry(1.1), 2);
  PauliSum sum(3);
  sum.add(0.5, PauliString::from_label("IZZ"));
  sum.add(-1.5, PauliString::from_label("ZIZ"));
  EXPECT_NEAR(sum.expectation(sv),
              sv.expectation_diagonal(sum.diagonal()), 1e-10);
}

TEST(PauliSum, NonDiagonalRejectsDiagonalQuery) {
  PauliSum sum(2);
  sum.add(1.0, PauliString::from_label("XI"));
  EXPECT_FALSE(sum.is_diagonal());
  EXPECT_THROW(sum.diagonal(), InvalidArgument);
}

TEST(IsingQaoa, MatchesMaxCutQaoaOnUnweightedGraphs) {
  // The general Ising ansatz on the MaxCut model must produce the same
  // expectations as the dedicated MaxCut ansatz.
  Rng rng(11);
  const graph::Graph g = graph::random_regular(8, 3, rng);
  const core::MaxCutQaoa maxcut(g, 3);
  const core::IsingQaoa ising(ising::IsingModel::from_maxcut(g), 3);
  for (int trial = 0; trial < 8; ++trial) {
    const std::vector<double> params = core::random_angles(3, rng);
    EXPECT_NEAR(maxcut.expectation(params), ising.expectation(params), 1e-9);
  }
}

TEST(IsingQaoa, GateAndFastPathsAgree) {
  Rng rng(13);
  ising::IsingModel model(5);
  model.set_constant(1.0);
  for (int i = 0; i < 5; ++i) model.set_field(i, rng.normal(0.0, 0.4));
  model.add_coupling(0, 1, 0.8);
  model.add_coupling(1, 3, -0.5);
  model.add_coupling(2, 4, 0.3);
  const core::IsingQaoa instance(model, 2);
  for (int trial = 0; trial < 6; ++trial) {
    const std::vector<double> params = core::random_angles(2, rng);
    EXPECT_NEAR(instance.expectation(params),
                instance.expectation_gate_level(params), 1e-10);
  }
}

TEST(IsingQaoa, FieldsBreakTheCutSymmetry) {
  // With a strong field on one spin, the optimal assignment pins it;
  // QAOA must prefer states aligned with the field.
  ising::IsingModel model(3);
  model.set_field(0, 2.0);  // rewards s_0 = +1 (bit 0 = 0)
  model.add_coupling(1, 2, -1.0);
  const core::IsingQaoa instance(model, 2);
  Rng rng(17);
  double best = -1e300;
  std::vector<double> best_params;
  for (int trial = 0; trial < 12; ++trial) {
    const std::vector<double> params = core::random_angles(2, rng);
    const double e = instance.expectation(params);
    if (e > best) {
      best = e;
      best_params = params;
    }
  }
  const quantum::Statevector sv = instance.state(best_params);
  EXPECT_GT(sv.expectation_z(0), 0.0);  // field-aligned on average
}

TEST(IsingQaoa, ZeroAnglesGiveUniformAverage) {
  ising::IsingModel model(4);
  model.add_coupling(0, 2, 0.9);
  model.set_field(3, 0.2);
  const core::IsingQaoa instance(model, 1);
  // Uniform state: <Z> = 0 for every spin, so only the constant remains.
  const std::vector<double> zeros(2, 0.0);
  EXPECT_NEAR(instance.expectation(zeros), model.constant(), 1e-10);
}

TEST(IsingQaoa, AnsatzSkipsZeroFields) {
  ising::IsingModel model(3);
  model.add_coupling(0, 1, 1.0);
  const quantum::Circuit with_zero_fields = core::build_ising_ansatz(model, 1);
  model.set_field(2, 0.5);
  const quantum::Circuit with_field = core::build_ising_ansatz(model, 1);
  EXPECT_EQ(with_field.count(quantum::GateKind::kRz),
            with_zero_fields.count(quantum::GateKind::kRz) + 1);
}

}  // namespace
}  // namespace qaoaml
