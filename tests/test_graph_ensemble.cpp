// Property tests for the pluggable graph-ensemble subsystem: per-family
// generator invariants, config-key hygiene, and the corpus pipeline's
// byte-identical-merge guarantee extended to every family.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/corpus_pipeline.hpp"
#include "core/graph_ensemble.hpp"
#include "graph/generators.hpp"

namespace qaoaml::core {
namespace {

std::string unique_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "graph_ensemble" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "cannot read " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(GraphFamilyNames, RoundTripAndAliases) {
  for (const GraphFamily family :
       {GraphFamily::kErdosRenyi, GraphFamily::kRegular,
        GraphFamily::kWeightedErdosRenyi, GraphFamily::kSmallWorld,
        GraphFamily::kMixed}) {
    EXPECT_EQ(family_from_string(to_string(family)), family);
  }
  EXPECT_EQ(family_from_string("er"), GraphFamily::kErdosRenyi);
  EXPECT_EQ(family_from_string("weighted-er"),
            GraphFamily::kWeightedErdosRenyi);
  EXPECT_THROW(family_from_string("barabasi-albert"), InvalidArgument);
}

TEST(GraphEnsembleConfigKey, EmitsOnlyConsumedTokens) {
  EnsembleConfig config;
  config.family = GraphFamily::kRegular;
  const std::string key = to_string(config);
  EXPECT_NE(key.find("family=regular"), std::string::npos);
  EXPECT_NE(key.find("degree="), std::string::npos);
  // An unused knob must not leak into the key: tweaking it must not
  // invalidate shard resume for a family that never reads it.
  EXPECT_EQ(key.find("edge_prob"), std::string::npos);
  EXPECT_EQ(key.find("neighbors"), std::string::npos);

  config.edge_probability = 0.9;
  EXPECT_EQ(to_string(config), key);
}

TEST(GraphEnsembleSampling, DeterministicInSeed) {
  for (const GraphFamily family :
       {GraphFamily::kErdosRenyi, GraphFamily::kRegular,
        GraphFamily::kWeightedErdosRenyi, GraphFamily::kSmallWorld,
        GraphFamily::kMixed}) {
    EnsembleConfig config;
    config.family = family;
    Rng a(99);
    Rng b(99);
    const graph::Graph ga = sample_graph(config, 8, a);
    const graph::Graph gb = sample_graph(config, 8, b);
    EXPECT_EQ(ga.edges(), gb.edges()) << to_string(family);
  }
}

TEST(GraphEnsembleRegular, EverySampleIsExactlyDRegular) {
  EnsembleConfig config;
  config.family = GraphFamily::kRegular;
  config.degree = 3;
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const graph::Graph g = sample_graph(config, 8, rng);
    EXPECT_TRUE(g.is_regular(3));
    EXPECT_EQ(g.num_edges(), 12u);  // n * d / 2
  }
}

TEST(GraphEnsembleErdosRenyi, EdgeCountDistributionWithinBounds) {
  // Under a fixed seed the empirical mean edge count over many samples
  // must sit near p * C(n, 2).  With n = 8, p = 0.5: mean 14, per-graph
  // SD sqrt(28 * 0.25) ~ 2.65, so over 200 samples the sample mean has
  // SD ~ 0.19 — a +-1 band is a > 5-sigma-wide property, not a flake
  // (and the seed is fixed anyway).
  EnsembleConfig config;
  Rng rng(1234);
  double total = 0.0;
  const int samples = 200;
  for (int i = 0; i < samples; ++i) {
    total += static_cast<double>(sample_graph(config, 8, rng).num_edges());
  }
  const double mean = total / samples;
  EXPECT_NEAR(mean, 14.0, 1.0);
}

TEST(GraphEnsembleWeighted, RejectsNonFiniteWeightKnobs) {
  EnsembleConfig config;
  config.family = GraphFamily::kWeightedErdosRenyi;

  config.weight = WeightKind::kUniform;
  config.weight_low = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(validate(config, 8), InvalidArgument);
  config.weight_low = 0.1;
  config.weight_high = std::numeric_limits<double>::infinity();
  EXPECT_THROW(validate(config, 8), InvalidArgument);
  config.weight_high = 0.05;  // low >= high
  EXPECT_THROW(validate(config, 8), InvalidArgument);

  config.weight = WeightKind::kGaussian;
  config.weight_mean = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(validate(config, 8), InvalidArgument);
  config.weight_mean = 1.0;
  config.weight_sd = -0.5;
  EXPECT_THROW(validate(config, 8), InvalidArgument);

  // The generator itself enforces the same contract.
  Rng rng(1);
  const graph::Graph base = graph::erdos_renyi_gnp(6, 0.8, rng);
  EXPECT_THROW(graph::with_gaussian_weights(
                   base, std::numeric_limits<double>::infinity(), 1.0, rng),
               InvalidArgument);
}

TEST(GraphEnsembleWeighted, SampledWeightsAreFiniteAndInRange) {
  EnsembleConfig config;
  config.family = GraphFamily::kWeightedErdosRenyi;
  config.weight = WeightKind::kUniform;
  config.weight_low = 0.25;
  config.weight_high = 0.75;
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const graph::Graph g = sample_graph(config, 8, rng);
    for (const graph::Edge& e : g.edges()) {
      EXPECT_TRUE(std::isfinite(e.weight));
      EXPECT_GE(e.weight, 0.25);
      EXPECT_LT(e.weight, 0.75);
    }
  }
}

TEST(GraphEnsembleSmallWorld, EdgeCountIsLatticeInvariant) {
  // Watts-Strogatz rewiring moves edges, it never adds or removes them:
  // every sample has exactly n * k / 2 edges and no node drops off.
  EnsembleConfig config;
  config.family = GraphFamily::kSmallWorld;
  config.neighbors = 4;
  config.rewire_probability = 0.5;
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const graph::Graph g = sample_graph(config, 10, rng);
    EXPECT_EQ(g.num_edges(), 20u);  // n * k / 2
  }
}

TEST(GraphEnsembleSmallWorld, ZeroRewireIsTheRingLattice) {
  Rng rng(3);
  const graph::Graph g = graph::watts_strogatz(8, 2, 0.0, rng);
  EXPECT_EQ(g.num_edges(), 8u);
  for (int u = 0; u < 8; ++u) {
    EXPECT_TRUE(g.has_edge(u, (u + 1) % 8));
  }
}

TEST(GraphEnsembleMixed, DrawsEveryConcreteFamily) {
  // Over enough samples a mixed ensemble must produce both weighted and
  // unweighted graphs and both regular and irregular ones.
  EnsembleConfig config;
  config.family = GraphFamily::kMixed;
  Rng rng(21);
  bool saw_weighted = false;
  bool saw_unweighted = false;
  for (int i = 0; i < 60; ++i) {
    const graph::Graph g = sample_graph(config, 8, rng);
    bool weighted = false;
    for (const graph::Edge& e : g.edges()) {
      if (e.weight != 1.0) weighted = true;
    }
    (weighted ? saw_weighted : saw_unweighted) = true;
  }
  EXPECT_TRUE(saw_weighted);
  EXPECT_TRUE(saw_unweighted);
}

TEST(GraphEnsembleValidation, FixedEdgeCountFamiliesCapMinEdges) {
  DatasetConfig config;
  config.num_graphs = 1;
  config.num_nodes = 8;
  config.ensemble.family = GraphFamily::kRegular;
  config.ensemble.degree = 3;
  config.min_edges = 12;  // exactly n * d / 2: reachable
  validate(config);
  config.min_edges = 13;  // above the family's fixed edge count
  EXPECT_THROW(validate(config), InvalidArgument);

  config.ensemble.family = GraphFamily::kErdosRenyi;
  validate(config);  // ER can reach any count up to C(n, 2)
  config.ensemble.edge_probability = 0.0;
  EXPECT_THROW(validate(config), InvalidArgument);
}

TEST(GraphEnsembleValidation, RegularParityAndSmallWorldRanges) {
  EnsembleConfig config;
  config.family = GraphFamily::kRegular;
  config.degree = 3;
  EXPECT_THROW(validate(config, 7), InvalidArgument);  // n * d odd
  validate(config, 8);

  config.family = GraphFamily::kSmallWorld;
  config.neighbors = 3;  // odd
  EXPECT_THROW(validate(config, 8), InvalidArgument);
  config.neighbors = 8;  // >= n - 1
  EXPECT_THROW(validate(config, 8), InvalidArgument);
  config.neighbors = 2;
  config.rewire_probability = 1.5;
  EXPECT_THROW(validate(config, 8), InvalidArgument);
}

// The corpus pipeline's headline guarantee, per family: the merged
// corpus is byte-identical across shard counts {1, 2, 8} and thread
// counts {1, 8}, and identical to a direct generate().save().
TEST(GraphEnsembleCorpus, MergedBytesIdenticalAcrossShardsPerFamily) {
  for (const GraphFamily family :
       {GraphFamily::kErdosRenyi, GraphFamily::kRegular,
        GraphFamily::kWeightedErdosRenyi, GraphFamily::kSmallWorld,
        GraphFamily::kMixed}) {
    DatasetConfig config;
    config.num_graphs = 8;
    config.num_nodes = 6;
    config.max_depth = 1;
    config.restarts = 2;
    config.seed = 321;
    config.ensemble.family = family;
    config.ensemble.degree = 3;     // valid for n = 6
    config.ensemble.neighbors = 2;  // valid for n = 6

    const std::string base = unique_dir("family_" + to_string(family));
    const std::string reference_path = base + "/reference.txt";
    ParameterDataset::generate(config).save(reference_path);
    const std::string reference = file_bytes(reference_path);
    ASSERT_FALSE(reference.empty());

    for (const int shards : {1, 2, 8}) {
      for (const int threads : {1, 8}) {
        ScopedThreadCount scoped(threads);
        const std::string dir = base + "/s" + std::to_string(shards) + "t" +
                                std::to_string(threads);
        for (int s = 0; s < shards; ++s) {
          CorpusShardConfig shard_config;
          shard_config.dataset = config;
          shard_config.shard = ShardSpec{s, shards};
          shard_config.directory = dir;
          CorpusPipeline::run_shard(shard_config);
        }
        const std::string out = dir + "/merged.txt";
        CorpusPipeline::merge_shards(config, shards, dir, out);
        EXPECT_EQ(file_bytes(out), reference)
            << to_string(family) << " shards=" << shards
            << " threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace qaoaml::core
