// Subprocess: exit/kill/timeout handling, line framing (including a
// crashing child's final unterminated line), stderr folding, and the
// exec-failure convention.
#include <gtest/gtest.h>

#include <csignal>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/subprocess.hpp"

namespace qaoaml {
namespace {

/// Convenience: sh -c <script>.
Subprocess shell(const std::string& script) {
  return Subprocess::spawn({"/bin/sh", "-c", script});
}

/// Drains every line until EOF (generous per-line timeout).
std::vector<std::string> drain(Subprocess& child) {
  std::vector<std::string> lines;
  std::string line;
  while (child.read_line(line, 10000) == Subprocess::ReadResult::kLine) {
    lines.push_back(line);
  }
  return lines;
}

TEST(SubprocessTest, CapturesLinesAndCleanExit) {
  Subprocess child = shell("echo one; echo two");
  const std::vector<std::string> lines = drain(child);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[1], "two");
  const Subprocess::ExitStatus status = child.wait();
  EXPECT_TRUE(status.success());
  EXPECT_TRUE(status.exited);
  EXPECT_EQ(status.code, 0);
  EXPECT_EQ(status.describe(), "exit 0");
}

TEST(SubprocessTest, ReportsNonzeroExitCode) {
  Subprocess child = shell("exit 7");
  drain(child);
  const Subprocess::ExitStatus status = child.wait();
  EXPECT_FALSE(status.success());
  EXPECT_TRUE(status.exited);
  EXPECT_EQ(status.code, 7);
}

TEST(SubprocessTest, FoldsStderrIntoTheStream) {
  Subprocess child = shell("echo err-text 1>&2");
  const std::vector<std::string> lines = drain(child);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "err-text");
}

TEST(SubprocessTest, DeliversFinalUnterminatedLine) {
  // A crashing worker's last words rarely end in a newline.
  Subprocess child = shell("printf last-words");
  const std::vector<std::string> lines = drain(child);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "last-words");
  EXPECT_TRUE(child.wait().success());
}

TEST(SubprocessTest, ReadTimesOutOnASilentChild) {
  Subprocess child = shell("sleep 5");
  std::string line;
  EXPECT_EQ(child.read_line(line, 50), Subprocess::ReadResult::kTimeout);
  child.kill();
  const Subprocess::ExitStatus status = child.wait();
  EXPECT_TRUE(status.signaled);
  EXPECT_EQ(status.code, SIGKILL);
  EXPECT_NE(status.describe().find("signal 9"), std::string::npos);
}

TEST(SubprocessTest, KillIsIdempotentAfterReap) {
  Subprocess child = shell("true");
  child.wait();
  child.kill();  // must not signal a recycled pid
  child.kill(SIGTERM);
}

TEST(SubprocessTest, ExecFailureSurfacesAs127WithErrorLine) {
  Subprocess child =
      Subprocess::spawn({"/nonexistent-binary-qaoaml-test"});
  const std::vector<std::string> lines = drain(child);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("exec failed"), std::string::npos);
  const Subprocess::ExitStatus status = child.wait();
  EXPECT_TRUE(status.exited);
  EXPECT_EQ(status.code, 127);
}

TEST(SubprocessTest, ChildEnvironmentEntriesAreSet) {
  Subprocess child = Subprocess::spawn(
      {"/bin/sh", "-c", "echo \"$QAOAML_SUBPROCESS_TEST\""},
      {{"QAOAML_SUBPROCESS_TEST", "injected-value"}});
  const std::vector<std::string> lines = drain(child);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "injected-value");
}

TEST(SubprocessTest, DestructorKillsAndReapsARunningChild) {
  pid_t pid = -1;
  {
    Subprocess child = shell("sleep 30");
    pid = child.pid();
    ASSERT_GT(pid, 0);
  }
  // After the destructor the child is killed AND reaped, so the pid no
  // longer exists (kill(0) probes without signaling; ESRCH = gone).
  EXPECT_NE(::kill(pid, 0), 0);
}

TEST(SubprocessTest, MoveTransfersOwnership) {
  Subprocess child = shell("echo moved");
  Subprocess stolen = std::move(child);
  EXPECT_FALSE(child.valid());  // NOLINT(bugprone-use-after-move): contract
  ASSERT_TRUE(stolen.valid());
  const std::vector<std::string> lines = drain(stolen);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "moved");
  EXPECT_TRUE(stolen.wait().success());
}

TEST(SubprocessTest, TryWaitTurnsTrueOnceTheChildExits) {
  Subprocess child = shell("read _ignored");  // blocks until we kill it
  Subprocess::ExitStatus status;
  EXPECT_FALSE(child.try_wait(status));
  child.kill();
  // The kill is asynchronous; the blocking wait() observes it.
  const Subprocess::ExitStatus final_status = child.wait();
  EXPECT_TRUE(final_status.signaled);
  // try_wait after the reap returns the stored status.
  EXPECT_TRUE(child.try_wait(status));
  EXPECT_TRUE(status.signaled);
}

TEST(SubprocessTest, SpawnRejectsEmptyArgv) {
  EXPECT_THROW(Subprocess::spawn({}), InvalidArgument);
}

}  // namespace
}  // namespace qaoaml
