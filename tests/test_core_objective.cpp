// Tests for the QAOA ansatz circuit and the cost-expectation objective.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/angles.hpp"
#include "core/qaoa_circuit.hpp"
#include "core/qaoa_objective.hpp"
#include "core/qaoa_solver.hpp"
#include "graph/generators.hpp"

namespace qaoaml::core {
namespace {

TEST(Ansatz, GateCountsMatchFormula) {
  Rng rng(1);
  const graph::Graph g = graph::random_regular(8, 3, rng);
  const int p = 3;
  const AnsatzCost cost = ansatz_cost(g, p);
  const std::size_t m = g.num_edges();
  const std::size_t n = static_cast<std::size_t>(g.num_nodes());
  EXPECT_EQ(cost.h_count, n);
  EXPECT_EQ(cost.cnot_count, 2 * m * p);
  EXPECT_EQ(cost.rz_count, m * p);
  EXPECT_EQ(cost.rx_count, n * p);
  EXPECT_GT(cost.depth, p);  // at least one layer per stage
}

TEST(Ansatz, ReferencesTwoParametersPerStage) {
  Rng rng(2);
  const graph::Graph g = graph::erdos_renyi_gnp(6, 0.5, rng);
  for (int p : {1, 2, 4}) {
    const quantum::Circuit c = build_maxcut_ansatz(g, p);
    EXPECT_EQ(c.num_parameters(), 2 * p);
  }
}

TEST(Objective, NumParametersAndBounds) {
  Rng rng(3);
  const MaxCutQaoa instance(graph::cycle_graph(6), 4);
  EXPECT_EQ(instance.num_parameters(), 8u);
  EXPECT_EQ(instance.depth(), 4);
  EXPECT_EQ(instance.num_qubits(), 6);
  EXPECT_EQ(instance.bounds().size(), 8u);
}

TEST(Objective, RejectsDegenerateInstances) {
  EXPECT_THROW(MaxCutQaoa(graph::Graph(3), 1), InvalidArgument);  // no edges
  EXPECT_THROW(MaxCutQaoa(graph::cycle_graph(4), 0), InvalidArgument);
}

TEST(Objective, DetectsIntegerSpectrum) {
  Rng rng(5);
  const graph::Graph unweighted = graph::cycle_graph(5);
  EXPECT_TRUE(MaxCutQaoa(unweighted, 1).has_integer_spectrum());
  const graph::Graph weighted =
      graph::with_random_weights(unweighted, 0.1, 0.9, rng);
  EXPECT_FALSE(MaxCutQaoa(weighted, 1).has_integer_spectrum());
}

/// The headline numerical check: the fused fast path and the explicit
/// gate-level circuit must agree to near machine precision.
struct PathCase {
  int nodes;
  double edge_prob;
  int depth;
  bool weighted;
};

class PathEquivalenceTest : public ::testing::TestWithParam<PathCase> {};

TEST_P(PathEquivalenceTest, FastAndGatePathsAgree) {
  const PathCase c = GetParam();
  Rng rng(static_cast<std::uint64_t>(c.nodes * 131 + c.depth));
  graph::Graph g = graph::erdos_renyi_gnp(c.nodes, c.edge_prob, rng);
  while (g.num_edges() == 0) {
    g = graph::erdos_renyi_gnp(c.nodes, c.edge_prob, rng);
  }
  if (c.weighted) g = graph::with_random_weights(g, 0.2, 2.0, rng);
  const MaxCutQaoa instance(g, c.depth);
  for (int trial = 0; trial < 5; ++trial) {
    const std::vector<double> params = random_angles(c.depth, rng);
    EXPECT_NEAR(instance.expectation(params),
                instance.expectation_gate_level(params), 1e-11);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PathEquivalenceTest,
    ::testing::Values(PathCase{4, 0.8, 1, false}, PathCase{6, 0.5, 2, false},
                      PathCase{8, 0.5, 3, false}, PathCase{8, 0.5, 5, false},
                      PathCase{5, 0.7, 2, true}, PathCase{7, 0.4, 3, true}));

TEST(Objective, ExpectationLiesWithinSpectrum) {
  Rng rng(7);
  const graph::Graph g = graph::erdos_renyi_gnp(8, 0.5, rng);
  const MaxCutQaoa instance(g, 3);
  for (int trial = 0; trial < 20; ++trial) {
    const double e = instance.expectation(random_angles(3, rng));
    EXPECT_GE(e, instance.hamiltonian().min_value() - 1e-9);
    EXPECT_LE(e, instance.max_cut_value() + 1e-9);
  }
}

TEST(Objective, ZeroAnglesGiveUniformStateExpectation) {
  // gamma = beta = 0: the circuit is only the Hadamard layer, so <C> is
  // the average cut over all bitstrings = m / 2 for unit weights.
  Rng rng(9);
  const graph::Graph g = graph::erdos_renyi_gnp(7, 0.6, rng);
  const MaxCutQaoa instance(g, 2);
  const std::vector<double> zeros(4, 0.0);
  EXPECT_NEAR(instance.expectation(zeros),
              static_cast<double>(g.num_edges()) / 2.0, 1e-10);
}

TEST(Objective, ObjectiveIsNegatedExpectation) {
  Rng rng(11);
  const graph::Graph g = graph::cycle_graph(5);
  const MaxCutQaoa instance(g, 2);
  const optim::ObjectiveFn objective = instance.objective();
  const std::vector<double> params = random_angles(2, rng);
  EXPECT_DOUBLE_EQ(objective(params), -instance.expectation(params));
}

TEST(Objective, ApproximationRatioNormalizes) {
  Rng rng(13);
  const graph::Graph g = graph::complete_graph(6);
  const MaxCutQaoa instance(g, 2);
  const std::vector<double> params = random_angles(2, rng);
  EXPECT_NEAR(instance.approximation_ratio(params),
              instance.expectation(params) / instance.max_cut_value(), 1e-12);
}

TEST(Objective, SampledExpectationConvergesToExact) {
  Rng rng(17);
  const graph::Graph g = graph::cycle_graph(6);
  const MaxCutQaoa instance(g, 1);
  const std::vector<double> params = random_angles(1, rng);
  const double exact = instance.expectation(params);
  const double sampled = instance.sampled_expectation(params, 200000, rng);
  EXPECT_NEAR(sampled, exact, 0.03);
}

TEST(Objective, StateIsNormalized) {
  Rng rng(19);
  const graph::Graph g = graph::erdos_renyi_gnp(8, 0.5, rng);
  const MaxCutQaoa instance(g, 4);
  const quantum::Statevector sv = instance.state(random_angles(4, rng));
  EXPECT_NEAR(sv.norm(), 1.0, 1e-10);
}

TEST(Solver, SingleEdgeIsSolvedExactlyAtDepthOne) {
  // K2 MaxCut: p = 1 QAOA reaches AR = 1 (a textbook analytic result).
  graph::Graph k2(2);
  k2.add_edge(0, 1);
  const MaxCutQaoa instance(k2, 1);
  Rng rng(21);
  const MultistartRuns runs =
      solve_multistart(instance, optim::OptimizerKind::kLbfgsb, 10, rng);
  EXPECT_NEAR(runs.best.approximation_ratio, 1.0, 1e-4);
}

TEST(Solver, RunReportsConsistentMetrics) {
  Rng rng(23);
  const graph::Graph g = graph::random_regular(8, 3, rng);
  const MaxCutQaoa instance(g, 2);
  const QaoaRun run =
      solve_random_init(instance, optim::OptimizerKind::kSlsqp, rng);
  EXPECT_GT(run.function_calls, 0);
  EXPECT_NEAR(run.expectation, instance.expectation(run.params), 1e-9);
  EXPECT_NEAR(run.approximation_ratio,
              run.expectation / instance.max_cut_value(), 1e-12);
  EXPECT_LE(beta_of(run.params, 1), M_PI / 2.0 + 1e-12);  // canonicalized
}

TEST(Solver, WarmStartNearOptimumConvergesFast) {
  Rng rng(29);
  const graph::Graph g = graph::random_regular(8, 3, rng);
  const MaxCutQaoa instance(g, 2);
  const MultistartRuns reference =
      solve_multistart(instance, optim::OptimizerKind::kLbfgsb, 8, rng);
  // Restart *from* the optimum: should cost far fewer calls than the
  // average random-init run.
  const QaoaRun warm = solve_from(instance, optim::OptimizerKind::kLbfgsb,
                                  reference.best.params);
  const double mean_cold =
      static_cast<double>(reference.total_function_calls) / 8.0;
  EXPECT_LT(warm.function_calls, mean_cold);
  EXPECT_GE(warm.approximation_ratio,
            reference.best.approximation_ratio - 1e-6);
}

TEST(Solver, DeeperCircuitsReachHigherBestAR) {
  // The paper's Fig. 1(c): AR improves with depth.
  Rng rng(31);
  const graph::Graph g = graph::random_regular(8, 3, rng);
  const MaxCutQaoa shallow(g, 1);
  const MaxCutQaoa deep(g, 3);
  Rng rng_a(77);
  Rng rng_b(77);
  const double ar1 =
      solve_multistart(shallow, optim::OptimizerKind::kLbfgsb, 8, rng_a)
          .best.approximation_ratio;
  const double ar3 =
      solve_multistart(deep, optim::OptimizerKind::kLbfgsb, 8, rng_b)
          .best.approximation_ratio;
  EXPECT_GT(ar3, ar1 - 1e-9);
}

TEST(Solver, MultistartBestDominatesRuns) {
  Rng rng(37);
  const graph::Graph g = graph::cycle_graph(7);
  const MaxCutQaoa instance(g, 2);
  const MultistartRuns runs =
      solve_multistart(instance, optim::OptimizerKind::kCobyla, 6, rng);
  for (const QaoaRun& run : runs.runs) {
    EXPECT_LE(run.expectation, runs.best.expectation + 1e-12);
  }
}

}  // namespace
}  // namespace qaoaml::core
