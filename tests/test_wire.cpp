// Wire framing (common/wire.hpp): frame round trips (pure and over a
// real socketpair), header validation (magic/version/length/checksum),
// EOF semantics on a frame boundary vs mid-frame, and the
// bounds-checked payload reader.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/socket.hpp"
#include "common/wire.hpp"

namespace qaoaml::wire {
namespace {

TEST(Wire, EncodeDecodeRoundTripsTypeAndPayload) {
  const std::string payload("hello\0world", 11);  // embedded NUL survives
  const std::string bytes = encode_frame(42, payload);
  EXPECT_EQ(bytes.size(), kHeaderBytes + payload.size());
  const Frame frame = decode_frame(bytes);
  EXPECT_EQ(frame.type, 42u);
  EXPECT_EQ(frame.payload, payload);
}

TEST(Wire, EmptyPayloadRoundTrips) {
  const Frame frame = decode_frame(encode_frame(7, ""));
  EXPECT_EQ(frame.type, 7u);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(Wire, RejectsBadMagic) {
  std::string bytes = encode_frame(1, "abc");
  bytes[0] = 'X';
  EXPECT_THROW(decode_frame(bytes), InvalidArgument);
}

TEST(Wire, RejectsUnknownVersion) {
  std::string bytes = encode_frame(1, "abc");
  bytes[4] = static_cast<char>(9);
  EXPECT_THROW(decode_frame(bytes), InvalidArgument);
}

TEST(Wire, RejectsCorruptedPayload) {
  std::string bytes = encode_frame(1, "abcdef");
  bytes[kHeaderBytes + 2] ^= 0x40;  // flip a payload bit -> checksum fails
  EXPECT_THROW(decode_frame(bytes), InvalidArgument);
}

TEST(Wire, RejectsCorruptedChecksumField) {
  std::string bytes = encode_frame(1, "abcdef");
  bytes[20] ^= 0x01;
  EXPECT_THROW(decode_frame(bytes), InvalidArgument);
}

TEST(Wire, RejectsTruncatedFrame) {
  const std::string bytes = encode_frame(1, "abcdef");
  EXPECT_THROW(decode_frame(bytes.substr(0, bytes.size() - 1)),
               InvalidArgument);
  EXPECT_THROW(decode_frame(bytes.substr(0, kHeaderBytes - 1)),
               InvalidArgument);
}

TEST(Wire, RejectsOversizedAnnouncedLength) {
  // Hand-corrupt the size field to announce more than kMaxPayloadBytes;
  // the header must be rejected before any allocation happens.
  std::string bytes = encode_frame(1, "abc");
  const std::uint64_t huge = kMaxPayloadBytes + 1;
  for (int i = 0; i < 8; ++i) {
    bytes[12 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  EXPECT_THROW(decode_frame(bytes), InvalidArgument);
}

TEST(Wire, SocketRoundTripAndCleanEof) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  net::Fd a(fds[0]);
  net::Fd b(fds[1]);

  ASSERT_TRUE(send_frame(a.get(), 5, "ping"));
  ASSERT_TRUE(send_frame(a.get(), 6, std::string(100000, 'x')));
  a.reset();  // close the write side: next read past the frames is EOF

  Frame frame;
  ASSERT_EQ(recv_frame(b.get(), frame), RecvResult::kFrame);
  EXPECT_EQ(frame.type, 5u);
  EXPECT_EQ(frame.payload, "ping");
  ASSERT_EQ(recv_frame(b.get(), frame), RecvResult::kFrame);
  EXPECT_EQ(frame.type, 6u);
  EXPECT_EQ(frame.payload.size(), 100000u);
  // EOF exactly on a frame boundary is a clean hang-up, not an error.
  EXPECT_EQ(recv_frame(b.get(), frame), RecvResult::kEof);
}

TEST(Wire, EofMidFrameIsAnError) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  net::Fd a(fds[0]);
  net::Fd b(fds[1]);

  const std::string bytes = encode_frame(9, "abcdefgh");
  // Send the header plus half the payload, then vanish.
  ASSERT_TRUE(net::send_all(a.get(), bytes.data(), kHeaderBytes + 4));
  a.reset();

  Frame frame;
  EXPECT_THROW(recv_frame(b.get(), frame), Error);
}

TEST(Wire, SendToClosedPeerReturnsFalseNotSigpipe) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  net::Fd a(fds[0]);
  {
    net::Fd b(fds[1]);
  }  // peer closes immediately

  // A large frame forces the kernel to notice the dead peer mid-write.
  // If SIGPIPE were delivered the test binary would die here.
  bool alive = true;
  for (int i = 0; i < 4 && alive; ++i) {
    alive = send_frame(a.get(), 1, std::string(1 << 20, 'y'));
  }
  EXPECT_FALSE(alive);
}

TEST(Wire, PayloadWriterReaderRoundTripsEveryPrimitive) {
  PayloadWriter writer;
  writer.u32(0xdeadbeefu);
  writer.u64(0x0123456789abcdefull);
  writer.i32(-42);
  writer.f64(-0.1);
  writer.str("family");
  writer.vec_f64({1.5, -2.25, 0.0});

  PayloadReader reader(writer.bytes());
  EXPECT_EQ(reader.u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(reader.i32(), -42);
  EXPECT_EQ(reader.f64(), -0.1);
  EXPECT_EQ(reader.str(), "family");
  EXPECT_EQ(reader.vec_f64(), (std::vector<double>{1.5, -2.25, 0.0}));
  EXPECT_NO_THROW(reader.expect_end());
}

TEST(Wire, PayloadReaderThrowsOnTruncation) {
  PayloadWriter writer;
  writer.u64(7);
  PayloadReader reader(writer.bytes());
  EXPECT_EQ(reader.u64(), 7u);
  EXPECT_THROW(reader.u32(), InvalidArgument);  // nothing left
}

TEST(Wire, PayloadReaderBoundsStringAndVectorCounts) {
  PayloadWriter writer;
  writer.str("abcdef");
  {
    PayloadReader reader(writer.bytes());
    EXPECT_THROW(reader.str(3), InvalidArgument);  // announced 6 > max 3
  }
  PayloadWriter vec_writer;
  vec_writer.vec_f64({1.0, 2.0, 3.0});
  PayloadReader reader(vec_writer.bytes());
  EXPECT_THROW(reader.vec_f64(2), InvalidArgument);
}

TEST(Wire, ExpectEndRejectsTrailingGarbage) {
  PayloadWriter writer;
  writer.u32(1);
  writer.u32(2);
  PayloadReader reader(writer.bytes());
  reader.u32();
  EXPECT_THROW(reader.expect_end(), InvalidArgument);
}

}  // namespace
}  // namespace qaoaml::wire
