// Tests for the graph substrate: structure, generators, MaxCut, IO.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/graph_io.hpp"
#include "graph/maxcut.hpp"

namespace qaoaml::graph {
namespace {

TEST(Graph, StartsEmpty) {
  const Graph g(4);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, AddEdgeNormalizesOrder) {
  Graph g(3);
  g.add_edge(2, 0, 1.5);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_EQ(g.edges()[0].u, 0);
  EXPECT_EQ(g.edges()[0].v, 2);
  EXPECT_DOUBLE_EQ(g.edges()[0].weight, 1.5);
}

TEST(Graph, RejectsSelfLoopsAndDuplicates) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 1), InvalidArgument);
  EXPECT_THROW(g.add_edge(1, 0), InvalidArgument);
  EXPECT_THROW(g.add_edge(0, 3), InvalidArgument);
}

TEST(Graph, DegreeAndNeighbors) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(3), 0);
  const std::vector<int> n0 = g.neighbors(0);
  EXPECT_EQ(n0.size(), 2u);
}

TEST(Graph, ConnectivityDetection) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(Graph(1).is_connected());
  EXPECT_TRUE(Graph(0).is_connected());
}

TEST(Graph, TotalWeightSums) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(g.total_weight(), 5.0);
}

TEST(Generators, ErdosRenyiExtremes) {
  Rng rng(1);
  const Graph empty = erdos_renyi_gnp(6, 0.0, rng);
  EXPECT_EQ(empty.num_edges(), 0u);
  const Graph full = erdos_renyi_gnp(6, 1.0, rng);
  EXPECT_EQ(full.num_edges(), 15u);
}

TEST(Generators, ErdosRenyiDensityMatchesProbability) {
  Rng rng(2);
  std::size_t total = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    total += erdos_renyi_gnp(8, 0.5, rng).num_edges();
  }
  const double mean_edges = static_cast<double>(total) / trials;
  EXPECT_NEAR(mean_edges, 14.0, 1.0);  // 28 possible edges * 0.5
}

TEST(Generators, GnmProducesExactEdgeCount) {
  Rng rng(3);
  const Graph g = gnm_random(8, 12, rng);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_THROW(gnm_random(4, 7, rng), InvalidArgument);
}

TEST(Generators, RandomRegularHasUniformDegree) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_regular(8, 3, rng);
    EXPECT_TRUE(g.is_regular(3));
    EXPECT_EQ(g.num_edges(), 12u);
  }
}

TEST(Generators, RandomRegularRejectsOddProduct) {
  Rng rng(5);
  EXPECT_THROW(random_regular(7, 3, rng), InvalidArgument);
  EXPECT_THROW(random_regular(4, 4, rng), InvalidArgument);
}

TEST(Generators, DeterministicFamilies) {
  EXPECT_EQ(cycle_graph(5).num_edges(), 5u);
  EXPECT_TRUE(cycle_graph(5).is_regular(2));
  EXPECT_EQ(complete_graph(5).num_edges(), 10u);
  EXPECT_TRUE(complete_graph(5).is_regular(4));
  EXPECT_EQ(star_graph(5).num_edges(), 4u);
  EXPECT_EQ(star_graph(5).degree(0), 4);
  EXPECT_EQ(path_graph(5).num_edges(), 4u);
  EXPECT_FALSE(path_graph(5).is_regular(1));
}

TEST(Generators, RandomWeightsPreserveTopology) {
  Rng rng(6);
  const Graph g = cycle_graph(6);
  const Graph w = with_random_weights(g, 0.5, 2.0, rng);
  EXPECT_EQ(w.num_edges(), g.num_edges());
  for (const Edge& e : w.edges()) {
    EXPECT_GE(e.weight, 0.5);
    EXPECT_LT(e.weight, 2.0);
    EXPECT_TRUE(g.has_edge(e.u, e.v));
  }
}

TEST(MaxCut, CutValueCountsCrossingEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  // Assignment 0b0101: nodes 0 and 2 on side 1.
  EXPECT_DOUBLE_EQ(cut_value(g, 0b0101), 3.0);
  EXPECT_DOUBLE_EQ(cut_value(g, 0b0000), 0.0);
}

TEST(MaxCut, GlobalFlipInvariance) {
  Rng rng(7);
  const Graph g = erdos_renyi_gnp(8, 0.5, rng);
  const std::uint64_t mask = (1u << 8) - 1;
  for (std::uint64_t z = 0; z < 256; z += 13) {
    EXPECT_DOUBLE_EQ(cut_value(g, z), cut_value(g, z ^ mask));
  }
}

TEST(MaxCut, BipartiteGraphsAreFullyCuttable) {
  // Even cycles and stars are bipartite: max cut = all edges.
  EXPECT_DOUBLE_EQ(max_cut_brute_force(cycle_graph(6)).value, 6.0);
  EXPECT_DOUBLE_EQ(max_cut_brute_force(star_graph(7)).value, 6.0);
  EXPECT_DOUBLE_EQ(max_cut_brute_force(path_graph(5)).value, 4.0);
}

TEST(MaxCut, OddCycleLosesOneEdge) {
  EXPECT_DOUBLE_EQ(max_cut_brute_force(cycle_graph(5)).value, 4.0);
  EXPECT_DOUBLE_EQ(max_cut_brute_force(cycle_graph(7)).value, 6.0);
}

TEST(MaxCut, CompleteGraphFormula) {
  // K_n max cut = floor(n/2) * ceil(n/2).
  EXPECT_DOUBLE_EQ(max_cut_brute_force(complete_graph(4)).value, 4.0);
  EXPECT_DOUBLE_EQ(max_cut_brute_force(complete_graph(5)).value, 6.0);
  EXPECT_DOUBLE_EQ(max_cut_brute_force(complete_graph(6)).value, 9.0);
}

TEST(MaxCut, AssignmentAchievesReportedValue) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = erdos_renyi_gnp(7, 0.5, rng);
    const MaxCutResult result = max_cut_brute_force(g);
    EXPECT_DOUBLE_EQ(cut_value(g, result.assignment), result.value);
  }
}

TEST(MaxCut, RespectsWeights) {
  Graph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  // Best: separate node 1 from {0, 2} -> 11.
  EXPECT_DOUBLE_EQ(max_cut_brute_force(g).value, 11.0);
}

TEST(MaxCut, TableMatchesPointQueries) {
  Rng rng(9);
  const Graph g = erdos_renyi_gnp(6, 0.6, rng);
  const std::vector<double> table = cut_value_table(g);
  ASSERT_EQ(table.size(), 64u);
  for (std::uint64_t z = 0; z < 64; ++z) {
    EXPECT_DOUBLE_EQ(table[z], cut_value(g, z));
  }
}

TEST(MaxCut, TableMaxEqualsBruteForce) {
  Rng rng(10);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = erdos_renyi_gnp(8, 0.5, rng);
    const std::vector<double> table = cut_value_table(g);
    const double table_max = *std::max_element(table.begin(), table.end());
    EXPECT_DOUBLE_EQ(table_max, max_cut_brute_force(g).value);
  }
}

TEST(GraphIO, EdgeListRoundTrips) {
  Rng rng(11);
  const Graph g = with_random_weights(erdos_renyi_gnp(7, 0.5, rng), 0.1, 3.0, rng);
  const Graph back = from_edge_list(to_edge_list(g));
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    EXPECT_EQ(back.edges()[i].u, g.edges()[i].u);
    EXPECT_EQ(back.edges()[i].v, g.edges()[i].v);
    EXPECT_DOUBLE_EQ(back.edges()[i].weight, g.edges()[i].weight);
  }
}

TEST(GraphIO, RejectsMalformedInput) {
  EXPECT_THROW(from_edge_list("bogus"), InvalidArgument);
  EXPECT_THROW(from_edge_list("n 3\n0 1 1.0\njunk"), InvalidArgument);
}

TEST(GraphIO, DotContainsAllEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const std::string dot = to_dot(g, "test");
  EXPECT_NE(dot.find("graph test"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2"), std::string::npos);
}

/// Property sweep: random graphs across sizes keep basic invariants.
class GraphPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphPropertyTest, GeneratedGraphsAreWellFormed) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 101);
  const Graph g = erdos_renyi_gnp(n, 0.5, rng);
  EXPECT_LE(g.num_edges(),
            static_cast<std::size_t>(n) * (n - 1) / 2);
  int degree_sum = 0;
  for (int u = 0; u < n; ++u) degree_sum += g.degree(u);
  EXPECT_EQ(degree_sum, static_cast<int>(2 * g.num_edges()));
}

TEST_P(GraphPropertyTest, MaxCutIsAtLeastHalfTheEdges) {
  // Classic bound: a random bisection cuts half the edges in expectation,
  // so the max cut is at least m/2.
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 777);
  const Graph g = erdos_renyi_gnp(n, 0.6, rng);
  if (g.num_edges() == 0) GTEST_SKIP();
  EXPECT_GE(max_cut_brute_force(g).value,
            static_cast<double>(g.num_edges()) / 2.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GraphPropertyTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 10, 12));

}  // namespace
}  // namespace qaoaml::graph
