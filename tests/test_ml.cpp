// Tests for the ML substrate: datasets, metrics, and the four
// regression families (GPR, LM, RTREE, RSVM).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/dataset.hpp"
#include "ml/evaluation.hpp"
#include "ml/gpr.hpp"
#include "ml/linear_regression.hpp"
#include "ml/metrics.hpp"
#include "ml/model.hpp"
#include "ml/regression_tree.hpp"
#include "ml/svr.hpp"

namespace qaoaml::ml {
namespace {

/// y = 2 x0 - 3 x1 + 1 + noise.
Dataset linear_data(std::size_t n, double noise, Rng& rng) {
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(-2.0, 2.0);
    const double x1 = rng.uniform(-2.0, 2.0);
    data.add({x0, x1}, 2.0 * x0 - 3.0 * x1 + 1.0 + noise * rng.normal());
  }
  return data;
}

/// y = sin(2 x) + noise, a smooth nonlinear target on one feature.
Dataset sine_data(std::size_t n, double noise, Rng& rng) {
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(-3.0, 3.0);
    data.add({x}, std::sin(2.0 * x) + noise * rng.normal());
  }
  return data;
}

TEST(Dataset, AddValidatesArity) {
  Dataset data;
  data.add({1.0, 2.0}, 3.0);
  EXPECT_THROW(data.add({1.0}, 2.0), InvalidArgument);
  EXPECT_EQ(data.size(), 1u);
  EXPECT_EQ(data.num_features(), 2u);
}

TEST(Dataset, ValidateRejectsEmpty) {
  Dataset data;
  EXPECT_THROW(data.validate(), InvalidArgument);
}

TEST(Dataset, SplitPartitionsAllRows) {
  Rng rng(3);
  const Dataset data = linear_data(50, 0.0, rng);
  const auto [train, test] = train_test_split(data, 0.2, rng);
  EXPECT_EQ(train.size() + test.size(), 50u);
  EXPECT_EQ(train.size(), 10u);
}

TEST(Dataset, SelectRowsExtractsSubset) {
  Rng rng(5);
  const Dataset data = linear_data(10, 0.0, rng);
  const Dataset sub = select_rows(data, {0, 5, 9});
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub.y[1], data.y[5]);
  EXPECT_THROW(select_rows(data, {99}), InvalidArgument);
}

TEST(Standardizer, ProducesZeroMeanUnitVariance) {
  Rng rng(7);
  const Dataset data = linear_data(200, 0.0, rng);
  Standardizer scaler;
  scaler.fit(data.x);
  const linalg::Matrix scaled = scaler.transform(data.x);
  for (std::size_t c = 0; c < scaled.cols(); ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < scaled.rows(); ++r) mean += scaled(r, c);
    mean /= static_cast<double>(scaled.rows());
    EXPECT_NEAR(mean, 0.0, 1e-10);
  }
}

TEST(Standardizer, HandlesConstantFeature) {
  Dataset data;
  data.add({1.0, 5.0}, 0.0);
  data.add({2.0, 5.0}, 1.0);
  Standardizer scaler;
  scaler.fit(data.x);
  const std::vector<double> row = scaler.transform_row({1.5, 5.0});
  EXPECT_TRUE(std::isfinite(row[1]));
  EXPECT_NEAR(row[1], 0.0, 1e-12);
}

TEST(Metrics, PerfectPredictionScores) {
  const std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mse(y, y), 0.0);
  EXPECT_DOUBLE_EQ(rmse(y, y), 0.0);
  EXPECT_DOUBLE_EQ(mae(y, y), 0.0);
  EXPECT_DOUBLE_EQ(r2(y, y), 1.0);
}

TEST(Metrics, MeanPredictorHasZeroR2) {
  const std::vector<double> y{1.0, 2.0, 3.0};
  const std::vector<double> pred{2.0, 2.0, 2.0};
  EXPECT_NEAR(r2(y, pred), 0.0, 1e-12);
}

TEST(Metrics, KnownValues) {
  const std::vector<double> y{1.0, 2.0};
  const std::vector<double> p{2.0, 4.0};
  EXPECT_DOUBLE_EQ(mse(y, p), 2.5);
  EXPECT_DOUBLE_EQ(mae(y, p), 1.5);
  EXPECT_DOUBLE_EQ(rmse(y, p), std::sqrt(2.5));
}

TEST(Metrics, AdjustedR2PenalizesFeatures) {
  Rng rng(9);
  std::vector<double> y(20);
  std::vector<double> p(20);
  for (std::size_t i = 0; i < 20; ++i) {
    y[i] = rng.normal();
    p[i] = y[i] + 0.1 * rng.normal();
  }
  EXPECT_LT(adjusted_r2(y, p, 5), r2(y, p));
}

TEST(Metrics, PercentErrorSkipsNearZeroTruth) {
  const std::vector<double> y{0.0, 2.0};
  const std::vector<double> p{5.0, 1.0};
  EXPECT_DOUBLE_EQ(mean_abs_percent_error(y, p), 50.0);
}

TEST(Metrics, ComputeMetricsBundlesAll) {
  const std::vector<double> y{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> p{1.1, 1.9, 3.2, 3.8};
  const MetricReport report = compute_metrics(y, p, 2);
  EXPECT_GT(report.r2, 0.9);
  EXPECT_DOUBLE_EQ(report.rmse, std::sqrt(report.mse));
}

TEST(LinearRegression, RecoversExactCoefficients) {
  Rng rng(11);
  const Dataset data = linear_data(100, 0.0, rng);
  LinearRegression model;
  model.fit(data);
  EXPECT_NEAR(model.intercept(), 1.0, 1e-8);
  EXPECT_NEAR(model.weights()[0], 2.0, 1e-8);
  EXPECT_NEAR(model.weights()[1], -3.0, 1e-8);
  EXPECT_NEAR(model.predict({0.5, 0.5}), 1.0 + 1.0 - 1.5, 1e-8);
}

TEST(LinearRegression, ToleratesNoise) {
  Rng rng(13);
  const Dataset data = linear_data(500, 0.1, rng);
  LinearRegression model;
  model.fit(data);
  EXPECT_NEAR(model.weights()[0], 2.0, 0.05);
  EXPECT_NEAR(model.weights()[1], -3.0, 0.05);
}

TEST(LinearRegression, RidgeShrinksWeights) {
  Rng rng(17);
  const Dataset data = linear_data(50, 0.2, rng);
  LinearRegression plain;
  plain.fit(data);
  LinearRegression ridge(100.0);
  ridge.fit(data);
  EXPECT_LT(std::abs(ridge.weights()[0]), std::abs(plain.weights()[0]));
}

TEST(LinearRegression, SurvivesConstantFeature) {
  // A constant feature duplicates the intercept; the fit must fall back
  // to ridge instead of throwing (this arises for the deepest-stage
  // angle models whose only target depth is the corpus maximum).
  Dataset data;
  for (int i = 0; i < 12; ++i) {
    data.add({static_cast<double>(i), 6.0}, 2.0 * i + 1.0);
  }
  LinearRegression model;
  ASSERT_NO_THROW(model.fit(data));
  EXPECT_NEAR(model.predict({5.0, 6.0}), 11.0, 0.2);
}

TEST(LinearRegression, PredictBeforeFitThrows) {
  const LinearRegression model;
  EXPECT_THROW(model.predict({1.0}), InvalidArgument);
  EXPECT_FALSE(model.fitted());
}

TEST(Gpr, InterpolatesNoiseFreeData) {
  Rng rng(19);
  const Dataset data = sine_data(40, 0.0, rng);
  GPRegressor model;
  model.fit(data);
  // Near-interpolation at the training points.
  double worst = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    worst = std::max(worst, std::abs(model.predict(data.x.row(i)) - data.y[i]));
  }
  EXPECT_LT(worst, 0.05);
}

TEST(Gpr, GeneralizesSmoothFunction) {
  Rng rng(23);
  const Dataset train = sine_data(60, 0.02, rng);
  GPRegressor model;
  model.fit(train);
  double err = 0.0;
  for (double x = -2.5; x <= 2.5; x += 0.25) {
    err = std::max(err, std::abs(model.predict({x}) - std::sin(2.0 * x)));
  }
  EXPECT_LT(err, 0.2);
}

TEST(Gpr, UncertaintyGrowsAwayFromData) {
  Rng rng(29);
  Dataset data;
  for (int i = 0; i < 20; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    data.add({x}, x * x);
  }
  GPRegressor model;
  model.fit(data);
  const auto near = model.predict_with_uncertainty({0.0});
  const auto far = model.predict_with_uncertainty({6.0});
  EXPECT_GT(far.stddev, near.stddev);
}

TEST(Gpr, LogMarginalLikelihoodIsFinite) {
  Rng rng(31);
  const Dataset data = sine_data(30, 0.05, rng);
  GPRegressor model;
  model.fit(data);
  EXPECT_TRUE(std::isfinite(model.log_marginal_likelihood()));
  EXPECT_GT(model.signal_stddev(), 0.0);
  EXPECT_GT(model.noise_stddev(), 0.0);
}

TEST(Gpr, RequiresTwoSamples) {
  Dataset tiny;
  tiny.add({1.0}, 2.0);
  GPRegressor model;
  EXPECT_THROW(model.fit(tiny), InvalidArgument);
}

TEST(RegressionTree, FitsPiecewiseConstantExactly) {
  Dataset data;
  for (double x = 0.0; x < 1.0; x += 0.05) data.add({x}, 1.0);
  for (double x = 1.0; x < 2.0; x += 0.05) data.add({x}, 5.0);
  RegressionTree tree;
  tree.fit(data);
  EXPECT_NEAR(tree.predict({0.5}), 1.0, 1e-9);
  EXPECT_NEAR(tree.predict({1.5}), 5.0, 1e-9);
  EXPECT_GE(tree.leaf_count(), 2u);
}

TEST(RegressionTree, RespectsMaxDepth) {
  Rng rng(37);
  const Dataset data = sine_data(200, 0.0, rng);
  TreeConfig config;
  config.max_depth = 3;
  RegressionTree tree(config);
  tree.fit(data);
  EXPECT_LE(tree.depth(), 3);
}

TEST(RegressionTree, RespectsMinLeafSize) {
  Rng rng(41);
  const Dataset data = sine_data(100, 0.0, rng);
  TreeConfig config;
  config.min_samples_leaf = 20;
  RegressionTree tree(config);
  tree.fit(data);
  EXPECT_LE(tree.leaf_count(), 5u);  // 100 / 20
}

TEST(RegressionTree, SingleLeafPredictsMean) {
  Dataset data;
  data.add({0.0}, 2.0);
  data.add({1.0}, 4.0);
  TreeConfig config;
  config.max_depth = 1;
  RegressionTree tree(config);
  tree.fit(data);
  EXPECT_DOUBLE_EQ(tree.predict({0.5}), 3.0);
  EXPECT_EQ(tree.depth(), 1);
}

TEST(Svr, FitsLinearTrend) {
  Rng rng(43);
  const Dataset data = linear_data(80, 0.02, rng);
  SVRegressor model;
  model.fit(data);
  double err = 0.0;
  for (int i = 0; i < 20; ++i) {
    const double x0 = rng.uniform(-1.5, 1.5);
    const double x1 = rng.uniform(-1.5, 1.5);
    err = std::max(err,
                   std::abs(model.predict({x0, x1}) -
                            (2.0 * x0 - 3.0 * x1 + 1.0)));
  }
  EXPECT_LT(err, 0.8);
}

TEST(Svr, FitsSmoothNonlinearFunction) {
  Rng rng(47);
  const Dataset data = sine_data(120, 0.02, rng);
  SVRegressor model;
  model.fit(data);
  double err = 0.0;
  for (double x = -2.5; x <= 2.5; x += 0.25) {
    err = std::max(err, std::abs(model.predict({x}) - std::sin(2.0 * x)));
  }
  EXPECT_LT(err, 0.35);
}

TEST(Svr, EpsilonTubeSparsifiesSolution) {
  Rng rng(53);
  const Dataset data = sine_data(100, 0.0, rng);
  SvrConfig wide;
  wide.epsilon = 0.5;
  SVRegressor sparse(wide);
  sparse.fit(data);
  SvrConfig narrow;
  narrow.epsilon = 1e-4;
  SVRegressor dense(narrow);
  dense.fit(data);
  EXPECT_LT(sparse.support_vector_count(), dense.support_vector_count());
}

TEST(Svr, ValidatesConfig) {
  SvrConfig bad;
  bad.c = -1.0;
  EXPECT_THROW(SVRegressor{bad}, InvalidArgument);
}

/// All four families expose the Regressor interface and learn the same
/// easy linear target.
class AllRegressorsTest : public ::testing::TestWithParam<RegressorKind> {};

TEST_P(AllRegressorsTest, LearnsLinearTargetReasonably) {
  Rng rng(59);
  const Dataset train = linear_data(150, 0.05, rng);
  const Dataset test = linear_data(50, 0.0, rng);
  auto model = make_regressor(GetParam());
  EXPECT_FALSE(model->fitted());
  const MetricReport report = evaluate_on_split(*model, train, test);
  EXPECT_TRUE(model->fitted());
  EXPECT_GT(report.r2, 0.8) << to_string(GetParam());
}

TEST_P(AllRegressorsTest, PredictManyMatchesPointwise) {
  Rng rng(61);
  const Dataset data = linear_data(60, 0.1, rng);
  auto model = make_regressor(GetParam());
  model->fit(data);
  const std::vector<double> batch = model->predict_many(data.x);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(batch[i], model->predict(data.x.row(i)));
  }
}

TEST_P(AllRegressorsTest, NameMatchesKind) {
  auto model = make_regressor(GetParam());
  EXPECT_EQ(model->name(), to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllRegressorsTest,
                         ::testing::Values(RegressorKind::kGpr,
                                           RegressorKind::kLinear,
                                           RegressorKind::kRegressionTree,
                                           RegressorKind::kSvr),
                         [](const auto& info) { return to_string(info.param); });

TEST(Evaluation, CrossValidationAveragesFolds) {
  Rng rng(67);
  const Dataset data = linear_data(60, 0.05, rng);
  const MetricReport report =
      cross_validate(RegressorKind::kLinear, data, 5, rng);
  EXPECT_GT(report.r2, 0.9);
  EXPECT_THROW(cross_validate(RegressorKind::kLinear, data, 1, rng),
               InvalidArgument);
}

TEST(Evaluation, GprBeatsLinearOnNonlinearTarget) {
  // The paper picks GPR for its accuracy; on a smooth nonlinear target
  // GPR must clearly beat a straight line.
  Rng rng(71);
  const Dataset train = sine_data(80, 0.02, rng);
  const Dataset test = sine_data(40, 0.0, rng);
  GPRegressor gpr;
  LinearRegression lm;
  const MetricReport gpr_report = evaluate_on_split(gpr, train, test);
  const MetricReport lm_report = evaluate_on_split(lm, train, test);
  EXPECT_LT(gpr_report.mse, lm_report.mse);
}

}  // namespace
}  // namespace qaoaml::ml
