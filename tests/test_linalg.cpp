// Tests for the dense linear algebra substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/vector_ops.hpp"

namespace qaoaml::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.normal();
  }
  return m;
}

/// A^T A + eps*I is symmetric positive definite.
Matrix random_spd(std::size_t n, Rng& rng) {
  const Matrix a = random_matrix(n, n, rng);
  Matrix spd = a.transposed() * a;
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 0.5;
  return spd;
}

TEST(Matrix, ConstructsWithFill) {
  const Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
}

TEST(Matrix, IdentityHasUnitDiagonal) {
  const Matrix eye = Matrix::identity(4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(eye(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1.0, 2.0}, {3.0}}), InvalidArgument);
}

TEST(Matrix, TransposeRoundTrips) {
  Rng rng(5);
  const Matrix m = random_matrix(3, 5, rng);
  const Matrix tt = m.transposed().transposed();
  EXPECT_NEAR((m - tt).max_abs(), 0.0, 0.0);
}

TEST(Matrix, MultiplicationMatchesManual) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatVecMatchesManual) {
  const Matrix a = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const std::vector<double> v{1.0, 0.0, -1.0};
  const std::vector<double> out = a * v;
  EXPECT_DOUBLE_EQ(out[0], -2.0);
  EXPECT_DOUBLE_EQ(out[1], -2.0);
}

TEST(Matrix, MultiplyRejectsShapeMismatch) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, InvalidArgument);
}

TEST(Matrix, AdditionAndScaling) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{4, 3}, {2, 1}});
  a += b;
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 10.0);
}

TEST(Matrix, SymmetryCheck) {
  Matrix s = Matrix::from_rows({{2, 1}, {1, 2}});
  EXPECT_TRUE(s.is_symmetric());
  s(0, 1) = 1.1;
  EXPECT_FALSE(s.is_symmetric());
  EXPECT_FALSE(Matrix(2, 3).is_symmetric());
}

TEST(Matrix, RowColAccessors) {
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.row(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.col(2), (std::vector<double>{3, 6}));
  EXPECT_THROW(m.row(2), InvalidArgument);
}

TEST(Matrix, OuterProduct) {
  const Matrix o = outer({1.0, 2.0}, {3.0, 4.0, 5.0});
  EXPECT_EQ(o.rows(), 2u);
  EXPECT_EQ(o.cols(), 3u);
  EXPECT_DOUBLE_EQ(o(1, 2), 10.0);
}

TEST(VectorOps, DotNormAxpy) {
  const std::vector<double> a{1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 9.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
  EXPECT_DOUBLE_EQ(norm_inf({-5.0, 2.0}), 5.0);
  std::vector<double> y{1.0, 1.0, 1.0};
  axpy(2.0, a, y);
  EXPECT_EQ(y, (std::vector<double>{3.0, 5.0, 5.0}));
}

TEST(VectorOps, AddSubScale) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{3.0, 5.0};
  EXPECT_EQ(add(a, b), (std::vector<double>{4.0, 7.0}));
  EXPECT_EQ(sub(b, a), (std::vector<double>{2.0, 3.0}));
  EXPECT_EQ(scaled(2.0, a), (std::vector<double>{2.0, 4.0}));
}

TEST(VectorOps, ClampRespectsBounds) {
  const std::vector<double> lo{0.0, 0.0};
  const std::vector<double> hi{1.0, 1.0};
  EXPECT_EQ(clamped({-1.0, 0.5}, lo, hi), (std::vector<double>{0.0, 0.5}));
  EXPECT_THROW(clamped({1.0}, lo, hi), InvalidArgument);
}

TEST(Cholesky, ReconstructsMatrix) {
  Rng rng(11);
  const Matrix a = random_spd(6, rng);
  const Cholesky chol(a);
  const Matrix l = chol.lower();
  const Matrix rebuilt = l * l.transposed();
  EXPECT_LT((a - rebuilt).max_abs(), 1e-10);
}

TEST(Cholesky, SolvesLinearSystem) {
  Rng rng(13);
  const Matrix a = random_spd(8, rng);
  std::vector<double> x_true(8);
  for (auto& v : x_true) v = rng.normal();
  const std::vector<double> b = a * x_true;
  const std::vector<double> x = Cholesky(a).solve(b);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(Cholesky, LogDeterminantMatchesLU) {
  Rng rng(17);
  const Matrix a = random_spd(5, rng);
  const double logdet = Cholesky(a).log_determinant();
  EXPECT_NEAR(std::exp(logdet), LU(a).determinant(), 1e-6 * std::abs(LU(a).determinant()) + 1e-9);
}

TEST(Cholesky, ThrowsOnIndefinite) {
  const Matrix bad = Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});
  EXPECT_THROW(Cholesky{bad}, NumericalError);
}

TEST(Cholesky, JitterRescuesSemidefinite) {
  // Rank-1 matrix: positive semidefinite, fails without jitter.
  const Matrix semi = outer({1.0, 1.0}, {1.0, 1.0});
  EXPECT_THROW(Cholesky{semi}, NumericalError);
  EXPECT_NO_THROW(cholesky_with_jitter(semi));
}

TEST(QR, SolvesSquareSystem) {
  Rng rng(19);
  const Matrix a = random_matrix(6, 6, rng);
  std::vector<double> x_true(6);
  for (auto& v : x_true) v = rng.normal();
  const std::vector<double> b = a * x_true;
  const std::vector<double> x = QR(a).solve(b);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(QR, LeastSquaresMatchesNormalEquations) {
  Rng rng(23);
  const Matrix a = random_matrix(20, 4, rng);
  std::vector<double> b(20);
  for (auto& v : b) v = rng.normal();
  const std::vector<double> x = least_squares(a, b);
  // Normal equations: A^T A x = A^T b.
  const Matrix ata = a.transposed() * a;
  const std::vector<double> atb = left_multiply(b, a);
  const std::vector<double> x_ne = LU(ata).solve(atb);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(x[i], x_ne[i], 1e-8);
}

TEST(QR, ResidualIsOrthogonalToColumnSpace) {
  Rng rng(29);
  const Matrix a = random_matrix(15, 3, rng);
  std::vector<double> b(15);
  for (auto& v : b) v = rng.normal();
  const std::vector<double> x = least_squares(a, b);
  const std::vector<double> residual = sub(b, a * x);
  const std::vector<double> proj = left_multiply(residual, a);
  EXPECT_LT(norm_inf(proj), 1e-9);
}

TEST(QR, RejectsWideMatrices) {
  EXPECT_THROW(QR(Matrix(2, 3)), InvalidArgument);
}

TEST(QR, DetectsRankDeficiency) {
  // Two identical columns.
  Matrix a(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    a(r, 0) = static_cast<double>(r + 1);
    a(r, 1) = static_cast<double>(r + 1);
  }
  const QR qr(a);
  EXPECT_LT(qr.diagonal_condition(), 1e-12);
  EXPECT_THROW(qr.solve({1.0, 2.0, 3.0, 4.0}), NumericalError);
}

TEST(LU, SolveAndDeterminant) {
  const Matrix a = Matrix::from_rows({{2, 1}, {1, 3}});
  const std::vector<double> x = LU(a).solve({3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
  EXPECT_NEAR(LU(a).determinant(), 5.0, 1e-12);
}

TEST(LU, ThrowsOnSingular) {
  const Matrix a = Matrix::from_rows({{1, 2}, {2, 4}});
  EXPECT_THROW(LU{a}, NumericalError);
}

TEST(LU, PivotingHandlesZeroDiagonal) {
  const Matrix a = Matrix::from_rows({{0, 1}, {1, 0}});
  const std::vector<double> x = solve(a, {2.0, 3.0});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(EigenSym, DiagonalMatrixEigenvalues) {
  Matrix d(3, 3);
  d(0, 0) = 3.0;
  d(1, 1) = 1.0;
  d(2, 2) = 2.0;
  const EigenSym eig = eigen_sym(d);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-12);
}

TEST(EigenSym, ReconstructsMatrix) {
  Rng rng(31);
  const Matrix a = random_spd(6, rng);
  const EigenSym eig = eigen_sym(a);
  // Rebuild V diag(lambda) V^T.
  Matrix rebuilt(6, 6);
  for (std::size_t k = 0; k < 6; ++k) {
    for (std::size_t r = 0; r < 6; ++r) {
      for (std::size_t c = 0; c < 6; ++c) {
        rebuilt(r, c) += eig.values[k] * eig.vectors(r, k) * eig.vectors(c, k);
      }
    }
  }
  EXPECT_LT((a - rebuilt).max_abs(), 1e-8);
}

TEST(EigenSym, SpdMatrixHasPositiveEigenvalues) {
  Rng rng(37);
  const EigenSym eig = eigen_sym(random_spd(5, rng));
  for (const double lambda : eig.values) EXPECT_GT(lambda, 0.0);
}

TEST(EigenSym, MakePositiveDefiniteFloorsSpectrum) {
  const Matrix indefinite = Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});
  const Matrix fixed = make_positive_definite(indefinite, 0.1);
  const EigenSym eig = eigen_sym(fixed);
  for (const double lambda : eig.values) EXPECT_GE(lambda, 0.1 - 1e-9);
  EXPECT_NO_THROW(Cholesky{fixed});
}

TEST(EigenSym, RejectsAsymmetric) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {0.0, 1.0}});
  EXPECT_THROW(eigen_sym(a), InvalidArgument);
}

}  // namespace
}  // namespace qaoaml::linalg
