// Differential oracle suite for the SIMD dispatch tiers.
//
// The explicit AVX2 / AVX-512 kernels (quantum/simd_kernels.hpp) promise
// BIT-identical results to the scalar fused path: same IEEE-754 op
// sequence per amplitude, canonical 8-lane reduction tree.  This suite
// enforces that promise at three levels:
//  - primitive level: every KernelTable entry of every supported vector
//    tier against the scalar table, on lengths that exercise the vector
//    body, the 256-bit step and the scalar remainder lanes;
//  - state level: MaxCutQaoa::state_into under each forced tier against
//    the scalar tier (== on doubles), and against the gate-by-gate
//    simulation to 1e-12, across qubit counts and depths;
//  - scheduling level: bit-determinism across thread counts and the
//    amplitude-sharding batch branch, plus the dispatcher's selection
//    grammar (ScopedSimdTier > QAOAML_SIMD > CPUID) and the 64-byte
//    amplitude alignment the vector kernels rely on.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/angles.hpp"
#include "core/batch_evaluator.hpp"
#include "core/qaoa_objective.hpp"
#include "graph/generators.hpp"
#include "quantum/aligned.hpp"
#include "quantum/dispatch.hpp"
#include "quantum/simd_kernels.hpp"
#include "quantum/statevector.hpp"

namespace qaoaml {
namespace {

using quantum::Complex;
using quantum::ScopedSimdTier;
using quantum::SimdTier;
using quantum::Statevector;
using quantum::simd::KernelTable;

/// Gate-level accumulates rounding over hundreds of gate passes; the
/// fused/dispatched paths must stay within this of it.
constexpr double kGateTol = 1e-12;

/// Every tier this build can actually execute, scalar first.
std::vector<SimdTier> supported_tiers() {
  std::vector<SimdTier> tiers;
  for (SimdTier tier : {SimdTier::kScalar, SimdTier::kAvx2,
                        SimdTier::kAvx512}) {
    if (quantum::simd_tier_supported(tier)) tiers.push_back(tier);
  }
  return tiers;
}

/// Vector tiers only — the ones differential-tested against scalar.
std::vector<SimdTier> supported_vector_tiers() {
  std::vector<SimdTier> tiers = supported_tiers();
  tiers.erase(tiers.begin());  // kScalar is always first
  return tiers;
}

/// Bit-level double equality: distinguishes -0.0 from +0.0, which
/// operator== does not.  NaNs never occur in these kernels.
bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool bits_equal(Complex a, Complex b) {
  return bits_equal(a.real(), b.real()) && bits_equal(a.imag(), b.imag());
}

std::vector<Complex> random_amps(std::size_t count, Rng& rng) {
  std::vector<Complex> amps(count);
  for (Complex& a : amps) {
    a = Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  }
  return amps;
}

std::size_t count_amp_mismatches(const std::vector<Complex>& a,
                                 const std::vector<Complex>& b) {
  std::size_t mismatches = 0;
  for (std::size_t z = 0; z < a.size(); ++z) {
    if (!bits_equal(a[z], b[z])) ++mismatches;
  }
  return mismatches;
}

/// An Erdos-Renyi graph guaranteed to have at least one edge.
graph::Graph nonempty_er(int nodes, Rng& rng) {
  for (;;) {
    graph::Graph g = graph::erdos_renyi_gnp(nodes, 0.5, rng);
    if (g.num_edges() > 0) return g;
  }
}

/// Lengths exercising the full-width vector body (4 amps for AVX-512),
/// the 256-bit remainder step, the scalar tail, and lone elements.
const std::vector<std::size_t> kOddLengths = {1,  2,  3,  4,  5,   6,  7,
                                              8,  9,  15, 16, 17,  31, 32,
                                              33, 63, 65, 127, 257};

// ---------------------------------------------------------------------
// Dispatcher: grammar, CPUID cumulativity, override precedence.
// ---------------------------------------------------------------------

TEST(SimdDispatch, ParseGrammarAcceptsExactlyTheThreeTiers) {
  EXPECT_EQ(quantum::parse_simd_tier("scalar"), SimdTier::kScalar);
  EXPECT_EQ(quantum::parse_simd_tier("avx2"), SimdTier::kAvx2);
  EXPECT_EQ(quantum::parse_simd_tier("avx512"), SimdTier::kAvx512);
  EXPECT_EQ(quantum::parse_simd_tier(""), std::nullopt);
  EXPECT_EQ(quantum::parse_simd_tier("AVX2"), std::nullopt);
  EXPECT_EQ(quantum::parse_simd_tier("avx-512"), std::nullopt);
  EXPECT_EQ(quantum::parse_simd_tier("sse"), std::nullopt);
  EXPECT_EQ(quantum::parse_simd_tier("scalar "), std::nullopt);
}

TEST(SimdDispatch, ToStringRoundTripsThroughParse) {
  for (SimdTier tier : {SimdTier::kScalar, SimdTier::kAvx2,
                        SimdTier::kAvx512}) {
    EXPECT_EQ(quantum::parse_simd_tier(quantum::to_string(tier)), tier);
  }
}

TEST(SimdDispatch, DetectedTierIsSupportedAndTiersAreCumulative) {
  EXPECT_TRUE(quantum::simd_tier_supported(quantum::detected_simd_tier()));
  EXPECT_TRUE(quantum::simd_tier_supported(SimdTier::kScalar));
  // A CPU with AVX-512 always has AVX2 (and the probe requires it).
  if (quantum::simd_tier_supported(SimdTier::kAvx512)) {
    EXPECT_TRUE(quantum::simd_tier_supported(SimdTier::kAvx2));
  }
}

TEST(SimdDispatch, ScopedOverrideWinsNestsAndRestores) {
  const SimdTier ambient = quantum::active_simd_tier();
  {
    const ScopedSimdTier outer(SimdTier::kScalar);
    EXPECT_EQ(quantum::active_simd_tier(), SimdTier::kScalar);
    EXPECT_EQ(quantum::simd::active_kernels().tier, SimdTier::kScalar);
    if (quantum::simd_tier_supported(SimdTier::kAvx2)) {
      const ScopedSimdTier inner(SimdTier::kAvx2);
      EXPECT_EQ(quantum::active_simd_tier(), SimdTier::kAvx2);
    }
    EXPECT_EQ(quantum::active_simd_tier(), SimdTier::kScalar);
  }
  EXPECT_EQ(quantum::active_simd_tier(), ambient);
}

TEST(SimdDispatch, EnvVarSelectsTierAndRejectsGarbage) {
  const char* prior = std::getenv("QAOAML_SIMD");
  const std::string saved = prior != nullptr ? prior : "";

  ASSERT_EQ(::setenv("QAOAML_SIMD", "scalar", 1), 0);
  EXPECT_EQ(quantum::active_simd_tier(), SimdTier::kScalar);

  // A typo must throw, not silently change what a run measures.
  ASSERT_EQ(::setenv("QAOAML_SIMD", "turbo", 1), 0);
  EXPECT_THROW(quantum::active_simd_tier(), InvalidArgument);
  EXPECT_THROW(quantum::simd::active_kernels(), InvalidArgument);

  // The scoped override outranks the environment (valid or not).
  {
    const ScopedSimdTier guard(SimdTier::kScalar);
    EXPECT_EQ(quantum::active_simd_tier(), SimdTier::kScalar);
  }

  if (prior != nullptr) {
    ASSERT_EQ(::setenv("QAOAML_SIMD", saved.c_str(), 1), 0);
  } else {
    ASSERT_EQ(::unsetenv("QAOAML_SIMD"), 0);
  }
}

TEST(SimdDispatch, KernelTablesReportTheirTierAndRejectUnsupported) {
  for (SimdTier tier : supported_tiers()) {
    EXPECT_EQ(quantum::simd::kernels(tier).tier, tier);
  }
  for (SimdTier tier : {SimdTier::kAvx2, SimdTier::kAvx512}) {
    if (!quantum::simd_tier_supported(tier)) {
      EXPECT_THROW(quantum::simd::kernels(tier), InvalidArgument);
      EXPECT_THROW(ScopedSimdTier{tier}, InvalidArgument);
    }
  }
}

// ---------------------------------------------------------------------
// Primitive level: every vector-tier KernelTable entry bit-identical to
// the scalar table on lengths covering all remainder-lane shapes.
// ---------------------------------------------------------------------

TEST(SimdKernels, PhaseGeneralBitIdenticalToScalarOnAllLengths) {
  const KernelTable& scalar = quantum::simd::kernels(SimdTier::kScalar);
  for (SimdTier tier : supported_vector_tiers()) {
    const KernelTable& kt = quantum::simd::kernels(tier);
    Rng rng(0xD15A);
    for (std::size_t len : kOddLengths) {
      const std::vector<Complex> input = random_amps(len, rng);
      std::vector<double> diag(len);
      for (double& d : diag) d = rng.uniform(-4.0, 4.0);
      const double gamma = rng.uniform(-2.0 * M_PI, 2.0 * M_PI);

      std::vector<Complex> expected = input;
      std::vector<Complex> actual = input;
      scalar.phase_general(expected.data(), diag.data(), gamma, len);
      kt.phase_general(actual.data(), diag.data(), gamma, len);
      EXPECT_EQ(count_amp_mismatches(actual, expected), 0u)
          << quantum::to_string(tier) << " len=" << len;
    }
  }
}

TEST(SimdKernels, PhaseIntegralBitIdenticalToScalarOnAllLengths) {
  const KernelTable& scalar = quantum::simd::kernels(SimdTier::kScalar);
  constexpr int kMaxValue = 6;
  for (SimdTier tier : supported_vector_tiers()) {
    const KernelTable& kt = quantum::simd::kernels(tier);
    Rng rng(0x1A7E);
    const double gamma = 0.61803398874989485;
    std::vector<Complex> phases(kMaxValue + 1);
    for (int v = 0; v <= kMaxValue; ++v) {
      phases[static_cast<std::size_t>(v)] =
          Complex{std::cos(-gamma * v), std::sin(-gamma * v)};
    }
    for (std::size_t len : kOddLengths) {
      const std::vector<Complex> input = random_amps(len, rng);
      std::vector<int> diag(len);
      for (int& d : diag) {
        d = static_cast<int>(rng.uniform_int(kMaxValue + 1));
      }

      std::vector<Complex> expected = input;
      std::vector<Complex> actual = input;
      scalar.phase_integral(expected.data(), diag.data(), phases.data(), len);
      kt.phase_integral(actual.data(), diag.data(), phases.data(), len);
      EXPECT_EQ(count_amp_mismatches(actual, expected), 0u)
          << quantum::to_string(tier) << " len=" << len;
    }
  }
}

TEST(SimdKernels, ButterflyPairBitIdenticalToScalarOnAllLengths) {
  const KernelTable& scalar = quantum::simd::kernels(SimdTier::kScalar);
  for (SimdTier tier : supported_vector_tiers()) {
    const KernelTable& kt = quantum::simd::kernels(tier);
    Rng rng(0xB41A);
    const double beta = rng.uniform(-M_PI, M_PI);
    const double c = std::cos(beta / 2.0);
    const double s = std::sin(beta / 2.0);
    for (std::size_t len : kOddLengths) {
      const std::vector<Complex> row0 = random_amps(len, rng);
      const std::vector<Complex> row1 = random_amps(len, rng);

      std::vector<Complex> e0 = row0;
      std::vector<Complex> e1 = row1;
      std::vector<Complex> a0 = row0;
      std::vector<Complex> a1 = row1;
      scalar.butterfly_pair(e0.data(), e1.data(), len, c, s);
      kt.butterfly_pair(a0.data(), a1.data(), len, c, s);
      EXPECT_EQ(count_amp_mismatches(a0, e0) + count_amp_mismatches(a1, e1),
                0u)
          << quantum::to_string(tier) << " len=" << len;
    }
  }
}

TEST(SimdKernels, ButterflyQuadBitIdenticalToScalarOnAllLengths) {
  const KernelTable& scalar = quantum::simd::kernels(SimdTier::kScalar);
  for (SimdTier tier : supported_vector_tiers()) {
    const KernelTable& kt = quantum::simd::kernels(tier);
    Rng rng(0x9A4D);
    const double beta = rng.uniform(-M_PI, M_PI);
    const double c = std::cos(beta / 2.0);
    const double s = std::sin(beta / 2.0);
    for (std::size_t len : kOddLengths) {
      std::vector<std::vector<Complex>> expected;
      std::vector<std::vector<Complex>> actual;
      for (int r = 0; r < 4; ++r) {
        expected.push_back(random_amps(len, rng));
        actual.push_back(expected.back());
      }
      scalar.butterfly_quad(expected[0].data(), expected[1].data(),
                            expected[2].data(), expected[3].data(), len, c, s);
      kt.butterfly_quad(actual[0].data(), actual[1].data(), actual[2].data(),
                        actual[3].data(), len, c, s);
      std::size_t mismatches = 0;
      for (int r = 0; r < 4; ++r) {
        mismatches += count_amp_mismatches(
            actual[static_cast<std::size_t>(r)],
            expected[static_cast<std::size_t>(r)]);
      }
      EXPECT_EQ(mismatches, 0u) << quantum::to_string(tier) << " len=" << len;
    }
  }
}

TEST(SimdKernels, MixTileBitIdenticalToScalarForEveryTileSize) {
  const KernelTable& scalar = quantum::simd::kernels(SimdTier::kScalar);
  for (SimdTier tier : supported_vector_tiers()) {
    const KernelTable& kt = quantum::simd::kernels(tier);
    Rng rng(0x717E);
    const double beta = rng.uniform(-M_PI, M_PI);
    const double c = std::cos(beta / 2.0);
    const double s = std::sin(beta / 2.0);
    for (int m = 1; m <= 11; ++m) {
      const std::vector<Complex> input =
          random_amps(std::size_t{1} << m, rng);
      std::vector<Complex> expected = input;
      std::vector<Complex> actual = input;
      scalar.mix_tile(expected.data(), m, c, s);
      kt.mix_tile(actual.data(), m, c, s);
      EXPECT_EQ(count_amp_mismatches(actual, expected), 0u)
          << quantum::to_string(tier) << " m=" << m;
    }
  }
}

TEST(SimdKernels, ExpectationBlockBitIdenticalToScalarOnAllLengths) {
  const KernelTable& scalar = quantum::simd::kernels(SimdTier::kScalar);
  for (SimdTier tier : supported_vector_tiers()) {
    const KernelTable& kt = quantum::simd::kernels(tier);
    Rng rng(0xE4B0);
    for (std::size_t len : kOddLengths) {
      const std::vector<Complex> amps = random_amps(len, rng);
      std::vector<double> diag(len);
      for (double& d : diag) d = rng.uniform(-5.0, 5.0);
      const double expected =
          scalar.expectation_block(amps.data(), diag.data(), len);
      const double actual = kt.expectation_block(amps.data(), diag.data(), len);
      EXPECT_TRUE(bits_equal(actual, expected))
          << quantum::to_string(tier) << " len=" << len << " got " << actual
          << " want " << expected;
    }
  }
}

// ---------------------------------------------------------------------
// State level: the routed hot path under each forced tier, bit-compared
// to the scalar tier and tolerance-compared to the gate-level oracle,
// over qubits 2..14 (every sweep shape) x depths 1..4.
// ---------------------------------------------------------------------

TEST(SimdQaoa, DispatchedStateBitIdenticalToScalarAcrossQubitsAndDepths) {
  const std::vector<SimdTier> tiers = supported_vector_tiers();
  if (tiers.empty()) GTEST_SKIP() << "no vector tier on this CPU";
  Rng rng(0x5EED);
  for (int n = 2; n <= 14; ++n) {
    const graph::Graph g = nonempty_er(n, rng);
    for (int p = 1; p <= 4; ++p) {
      const core::MaxCutQaoa instance(g, p);
      const std::vector<double> params = core::random_angles(p, rng);
      Statevector scalar_state = Statevector::uniform(n);
      {
        const ScopedSimdTier guard(SimdTier::kScalar);
        instance.state_into(scalar_state, params);
      }
      for (SimdTier tier : tiers) {
        Statevector state = Statevector::uniform(n);
        const ScopedSimdTier guard(tier);
        instance.state_into(state, params);
        std::size_t mismatches = 0;
        for (std::size_t z = 0; z < state.dimension(); ++z) {
          if (!bits_equal(state.amplitudes()[z],
                          scalar_state.amplitudes()[z])) {
            ++mismatches;
          }
        }
        EXPECT_EQ(mismatches, 0u)
            << quantum::to_string(tier) << " n=" << n << " p=" << p;
      }
    }
  }
}

TEST(SimdQaoa, DispatchedStateBitIdenticalToScalarOnWeightedGraphs) {
  // Random weights force the general (cos/sin per amplitude) phase
  // branch instead of the integral phase table.
  const std::vector<SimdTier> tiers = supported_vector_tiers();
  if (tiers.empty()) GTEST_SKIP() << "no vector tier on this CPU";
  Rng rng(0xAB1E);
  for (int n : {4, 9, 14}) {
    graph::Graph g(n);
    for (int u = 0; u < n; ++u) {
      g.add_edge(u, (u + 1) % n, rng.uniform(0.1, 2.0));
    }
    const core::MaxCutQaoa instance(g, 3);
    ASSERT_FALSE(instance.has_integer_spectrum());
    const std::vector<double> params = core::random_angles(3, rng);
    Statevector scalar_state = Statevector::uniform(n);
    {
      const ScopedSimdTier guard(SimdTier::kScalar);
      instance.state_into(scalar_state, params);
    }
    for (SimdTier tier : tiers) {
      Statevector state = Statevector::uniform(n);
      const ScopedSimdTier guard(tier);
      instance.state_into(state, params);
      std::size_t mismatches = 0;
      for (std::size_t z = 0; z < state.dimension(); ++z) {
        if (!bits_equal(state.amplitudes()[z], scalar_state.amplitudes()[z])) {
          ++mismatches;
        }
      }
      EXPECT_EQ(mismatches, 0u) << quantum::to_string(tier) << " n=" << n;
    }
  }
}

TEST(SimdQaoa, EveryTierMatchesGateLevelSimulation) {
  Rng rng(0x6A7E);
  for (int n : {4, 9, 12}) {
    const graph::Graph g = nonempty_er(n, rng);
    for (int p = 1; p <= 4; ++p) {
      const core::MaxCutQaoa instance(g, p);
      const std::vector<double> params = core::random_angles(p, rng);
      const double gate_level = instance.expectation_gate_level(params);
      for (SimdTier tier : supported_tiers()) {
        const ScopedSimdTier guard(tier);
        EXPECT_NEAR(instance.expectation(params), gate_level, kGateTol)
            << quantum::to_string(tier) << " n=" << n << " p=" << p;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Scheduling level: thread counts {1, 8}, the blocked CDF, and the
// batch amplitude-sharding branch must never move a bit, on any tier.
// ---------------------------------------------------------------------

TEST(SimdQaoa, StateAndExpectationBitIdenticalAcrossThreadsAndTiers) {
  Rng rng(0x7D0A);
  const graph::Graph g = graph::random_regular(16, 3, rng);
  const core::MaxCutQaoa instance(g, 2);
  const std::vector<double> params = core::random_angles(2, rng);

  quantum::AmpVector baseline_amps;
  double baseline_expectation = 0.0;
  {
    const ScopedSimdTier tier_guard(SimdTier::kScalar);
    const ScopedThreadCount thread_guard(1);
    baseline_amps = instance.state(params).amplitudes();
    baseline_expectation = instance.expectation(params);
  }
  for (SimdTier tier : supported_tiers()) {
    for (int threads : {1, 8}) {
      const ScopedSimdTier tier_guard(tier);
      const ScopedThreadCount thread_guard(threads);
      const Statevector state = instance.state(params);
      ASSERT_EQ(state.dimension(), baseline_amps.size());
      std::size_t mismatches = 0;
      for (std::size_t z = 0; z < baseline_amps.size(); ++z) {
        if (!bits_equal(state.amplitudes()[z], baseline_amps[z])) {
          ++mismatches;
        }
      }
      EXPECT_EQ(mismatches, 0u)
          << quantum::to_string(tier) << " threads=" << threads;
      EXPECT_TRUE(bits_equal(instance.expectation(params),
                             baseline_expectation))
          << quantum::to_string(tier) << " threads=" << threads;
    }
  }
}

TEST(SimdQaoa, BlockedCdfBitIdenticalAcrossThreadsAndTiers) {
  Rng rng(0xCDF0);
  const graph::Graph g = graph::random_regular(16, 3, rng);
  const core::MaxCutQaoa instance(g, 1);
  const std::vector<double> params = core::random_angles(1, rng);
  const Statevector state = instance.state(params);  // dim 65536: 4 blocks

  std::vector<double> baseline;
  {
    const ScopedSimdTier tier_guard(SimdTier::kScalar);
    const ScopedThreadCount thread_guard(1);
    state.cumulative_probabilities(baseline);
  }
  ASSERT_EQ(baseline.size(), state.dimension());
  EXPECT_NEAR(baseline.back(), 1.0, 1e-12);
  for (SimdTier tier : supported_tiers()) {
    for (int threads : {1, 2, 8}) {
      const ScopedSimdTier tier_guard(tier);
      const ScopedThreadCount thread_guard(threads);
      std::vector<double> cdf;
      state.cumulative_probabilities(cdf);
      ASSERT_EQ(cdf.size(), baseline.size());
      std::size_t mismatches = 0;
      for (std::size_t z = 0; z < cdf.size(); ++z) {
        if (!bits_equal(cdf[z], baseline[z])) ++mismatches;
      }
      EXPECT_EQ(mismatches, 0u)
          << quantum::to_string(tier) << " threads=" << threads;
    }
  }
}

TEST(BatchSharding, PolicyFlipsExactlyAtPoolAndDimensionThresholds) {
  using core::BatchEvaluator;
  // The dimension threshold is the kernels' parallel crossover.
  for (int n = 1; n <= 20; ++n) {
    const bool large_enough =
        (std::size_t{1} << n) >= quantum::kAmplitudeParallelDim;
    EXPECT_EQ(BatchEvaluator::shards_amplitudes(1, n, 8), large_enough)
        << "n=" << n;
  }
  // The batch threshold is the pool size.
  EXPECT_TRUE(BatchEvaluator::shards_amplitudes(7, 16, 8));
  EXPECT_FALSE(BatchEvaluator::shards_amplitudes(8, 16, 8));
  EXPECT_FALSE(BatchEvaluator::shards_amplitudes(9, 16, 8));
  // A single-thread pool never shards (nothing to fan out over).
  EXPECT_FALSE(BatchEvaluator::shards_amplitudes(1, 16, 1));
  EXPECT_FALSE(BatchEvaluator::shards_amplitudes(1, 16, 0));
  // Degenerate qubit counts are rejected, not shifted into UB.
  EXPECT_FALSE(BatchEvaluator::shards_amplitudes(1, 0, 8));
  EXPECT_FALSE(BatchEvaluator::shards_amplitudes(1, -3, 8));
  EXPECT_FALSE(BatchEvaluator::shards_amplitudes(1, 64, 8));
}

TEST(BatchSharding, ShardedBranchBitIdenticalToFanOutBranch) {
  Rng rng(0x54A2);
  const graph::Graph g = graph::random_regular(16, 3, rng);
  const core::MaxCutQaoa instance(g, 2);
  const core::BatchEvaluator evaluator(instance);
  std::vector<std::vector<double>> batch;
  for (int i = 0; i < 2; ++i) batch.push_back(core::random_angles(2, rng));

  // batch(2) < threads(8) and 2^16 >= the parallel dim: sharded branch.
  ASSERT_TRUE(core::BatchEvaluator::shards_amplitudes(batch.size(), 16, 8));
  std::vector<double> sharded;
  {
    const ScopedThreadCount threads(8);
    sharded = evaluator.expectations(batch);
  }
  // threads(1): the classic fan-out branch, fully serial.
  std::vector<double> serial;
  {
    const ScopedThreadCount threads(1);
    serial = evaluator.expectations(batch);
  }
  ASSERT_EQ(sharded.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(bits_equal(sharded[i], serial[i])) << "entry " << i;
  }
}

// ---------------------------------------------------------------------
// Alignment: the vector kernels issue aligned 64-byte loads from
// data(); the allocator must deliver that on every construction path.
// ---------------------------------------------------------------------

TEST(AmplitudeAlignment, EveryConstructionPathYields64ByteAlignedData) {
  auto aligned = [](const Statevector& sv) {
    return reinterpret_cast<std::uintptr_t>(sv.amplitudes().data()) %
               quantum::kAmplitudeAlignment ==
           0;
  };
  for (int n : {1, 4, 11, 14}) {
    EXPECT_TRUE(aligned(Statevector(n))) << "zero state n=" << n;
    EXPECT_TRUE(aligned(Statevector::uniform(n))) << "uniform n=" << n;
  }
  Rng rng(0xA119);
  std::vector<Complex> amps(std::size_t{1} << 6);
  for (Complex& a : amps) {
    a = Complex{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  }
  EXPECT_TRUE(aligned(Statevector::from_amplitudes(std::move(amps))));

  // Reset to a larger register reallocates; the new buffer must keep
  // the alignment guarantee.
  Statevector sv(3);
  sv.reset_uniform(12);
  EXPECT_TRUE(aligned(sv));
  sv.reset_uniform(12);  // in-place reuse path
  EXPECT_TRUE(aligned(sv));
}

}  // namespace
}  // namespace qaoaml
