// BoundedWorkQueue: FIFO order, blocking backpressure on a full
// queue, close() semantics, and a multi-producer/multi-consumer drain
// where every item is seen exactly once.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/work_queue.hpp"

namespace qaoaml {
namespace {

using namespace std::chrono_literals;

TEST(WorkQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedWorkQueue<int>(0), InvalidArgument);
}

TEST(WorkQueue, DeliversInFifoOrder) {
  BoundedWorkQueue<int> queue(16);
  for (int i = 0; i < 10; ++i) queue.push(i);
  queue.close();
  int item = -1;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(queue.pop(item));
    EXPECT_EQ(item, i);
  }
  EXPECT_FALSE(queue.pop(item));  // closed and drained
}

TEST(WorkQueue, PushBlocksWhenFullUntilAPopMakesRoom) {
  BoundedWorkQueue<int> queue(2);
  queue.push(1);
  queue.push(2);

  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    queue.push(3);  // must block: capacity 2, both slots taken
    third_pushed = true;
  });

  // Give the producer ample time to block on the full queue.
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(third_pushed.load());

  int item = 0;
  ASSERT_TRUE(queue.pop(item));
  EXPECT_EQ(item, 1);
  producer.join();  // the freed slot unblocks the push
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(queue.size(), 2u);
}

TEST(WorkQueue, PopBlocksUntilAPushArrives) {
  BoundedWorkQueue<int> queue(4);
  std::atomic<bool> popped{false};
  int item = 0;
  std::thread consumer([&] {
    EXPECT_TRUE(queue.pop(item));
    popped = true;
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(popped.load());
  queue.push(42);
  consumer.join();
  EXPECT_TRUE(popped.load());
  EXPECT_EQ(item, 42);
}

TEST(WorkQueue, CloseWakesBlockedConsumerWithFalse) {
  BoundedWorkQueue<int> queue(4);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    int item = 0;
    EXPECT_FALSE(queue.pop(item));
    returned = true;
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(returned.load());
  queue.close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(WorkQueue, CloseWakesBlockedProducerWithThrow) {
  BoundedWorkQueue<int> queue(1);
  queue.push(1);
  std::atomic<bool> threw{false};
  std::thread producer([&] {
    try {
      queue.push(2);  // blocks: full
    } catch (const QueueClosed&) {
      threw = true;
    }
  });
  std::this_thread::sleep_for(50ms);
  queue.close();
  producer.join();
  EXPECT_TRUE(threw.load());
}

TEST(WorkQueue, PushOnClosedQueueThrows) {
  BoundedWorkQueue<int> queue(4);
  queue.close();
  EXPECT_THROW(queue.push(1), QueueClosed);
  EXPECT_TRUE(queue.closed());
}

TEST(WorkQueue, QueuedItemsStillDrainAfterClose) {
  BoundedWorkQueue<int> queue(4);
  queue.push(7);
  queue.push(8);
  queue.close();
  int item = 0;
  ASSERT_TRUE(queue.pop(item));
  EXPECT_EQ(item, 7);
  ASSERT_TRUE(queue.pop(item));
  EXPECT_EQ(item, 8);
  EXPECT_FALSE(queue.pop(item));
}

TEST(WorkQueue, MpmcDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  // A small capacity forces constant backpressure, which is the
  // interesting regime for lost-wakeup bugs.
  BoundedWorkQueue<int> queue(3);

  std::mutex seen_mutex;
  std::multiset<int> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      int item = 0;
      while (queue.pop(item)) {
        std::lock_guard<std::mutex> lock(seen_mutex);
        seen.insert(item);
      }
    });
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue.push(p * kPerProducer + i);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.close();
  for (std::thread& t : consumers) t.join();

  ASSERT_EQ(seen.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  for (int v = 0; v < kProducers * kPerProducer; ++v) {
    EXPECT_EQ(seen.count(v), 1u) << "item " << v;
  }
}

TEST(WorkQueue, PopBatchTakesWhatIsQueuedUpToTheCap) {
  BoundedWorkQueue<int> queue(16);
  for (int i = 0; i < 10; ++i) queue.push(i);

  std::vector<int> batch;
  EXPECT_EQ(queue.pop_batch(batch, 4), 4u);  // capped at max_items
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));

  EXPECT_EQ(queue.pop_batch(batch, 100), 6u);  // takes the rest, appends
  EXPECT_EQ(batch.size(), 10u);
  EXPECT_EQ(batch.back(), 9);
}

TEST(WorkQueue, PopBatchNeverWaitsForABatchToFill) {
  // A lone item must be served immediately — batches only form under
  // load, they are never awaited.
  BoundedWorkQueue<int> queue(16);
  queue.push(42);
  std::vector<int> batch;
  EXPECT_EQ(queue.pop_batch(batch, 8), 1u);
  EXPECT_EQ(batch, std::vector<int>{42});
}

TEST(WorkQueue, PopBatchBlocksForTheFirstItemLikePop) {
  BoundedWorkQueue<int> queue(4);
  std::vector<int> batch;
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    EXPECT_EQ(queue.pop_batch(batch, 8), 1u);
    popped = true;
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(popped.load());  // empty queue: pop_batch is blocked
  queue.push(7);
  consumer.join();
  EXPECT_TRUE(popped.load());
  EXPECT_EQ(batch, std::vector<int>{7});
}

TEST(WorkQueue, PopBatchDrainsAClosedQueueThenReturnsZero) {
  BoundedWorkQueue<int> queue(8);
  queue.push(1);
  queue.push(2);
  queue.close();
  std::vector<int> batch;
  EXPECT_EQ(queue.pop_batch(batch, 8), 2u);  // queued items still drain
  EXPECT_EQ(queue.pop_batch(batch, 8), 0u);  // closed and drained
  EXPECT_EQ(batch.size(), 2u);
}

TEST(WorkQueue, PopBatchFreesRoomForBlockedProducers) {
  BoundedWorkQueue<int> queue(2);
  queue.push(1);
  queue.push(2);
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    queue.push(3);  // blocked: the queue is full
    third_pushed = true;
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(third_pushed.load());

  std::vector<int> batch;
  EXPECT_EQ(queue.pop_batch(batch, 2), 2u);  // frees both slots at once
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(WorkQueue, PopBatchWithZeroMaxItemsIsANoop) {
  BoundedWorkQueue<int> queue(4);
  queue.push(1);
  std::vector<int> batch;
  EXPECT_EQ(queue.pop_batch(batch, 0), 0u);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(queue.size(), 1u);  // nothing consumed
}

}  // namespace
}  // namespace qaoaml
