// Tests for the QAOA angle layout, bounds, initialization strategies and
// the symmetry canonicalization.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/angles.hpp"
#include "core/qaoa_objective.hpp"
#include "graph/generators.hpp"

namespace qaoaml::core {
namespace {

TEST(Angles, CountIsTwiceDepth) {
  EXPECT_EQ(num_angles(1), 2u);
  EXPECT_EQ(num_angles(5), 10u);
  EXPECT_THROW(num_angles(0), InvalidArgument);
}

TEST(Angles, PackedLayoutAccessors) {
  const std::vector<double> params{0.1, 0.2, 0.3, 1.1, 1.2, 1.3};
  EXPECT_DOUBLE_EQ(gamma_of(params, 1), 0.1);
  EXPECT_DOUBLE_EQ(gamma_of(params, 3), 0.3);
  EXPECT_DOUBLE_EQ(beta_of(params, 1), 1.1);
  EXPECT_DOUBLE_EQ(beta_of(params, 3), 1.3);
  EXPECT_THROW(gamma_of(params, 4), InvalidArgument);
  EXPECT_THROW(beta_of(params, 0), InvalidArgument);
}

TEST(Angles, SettersWriteCorrectSlots) {
  std::vector<double> params(6, 0.0);
  set_gamma(params, 2, 0.5);
  set_beta(params, 3, 0.7);
  EXPECT_DOUBLE_EQ(params[1], 0.5);
  EXPECT_DOUBLE_EQ(params[5], 0.7);
}

TEST(Angles, PackRoundTrips) {
  const std::vector<double> params = pack_angles({0.1, 0.2}, {0.3, 0.4});
  EXPECT_EQ(params, (std::vector<double>{0.1, 0.2, 0.3, 0.4}));
  EXPECT_THROW(pack_angles({0.1}, {0.3, 0.4}), InvalidArgument);
}

TEST(Angles, BoundsMatchPaperDomain) {
  const optim::Bounds b = qaoa_bounds(3);
  ASSERT_EQ(b.size(), 6u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(b.lower()[i], 0.0);
    EXPECT_DOUBLE_EQ(b.upper()[i], 2.0 * M_PI);  // gamma
  }
  for (std::size_t i = 3; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(b.upper()[i], M_PI);  // beta
  }
}

TEST(Angles, RandomAnglesRespectDomain) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<double> params = random_angles(4, rng);
    EXPECT_TRUE(qaoa_bounds(4).contains(params));
  }
}

TEST(Angles, LinearRampIsMonotonic) {
  const std::vector<double> params = linear_ramp_angles(5);
  for (int i = 1; i < 5; ++i) {
    EXPECT_GT(gamma_of(params, i + 1), gamma_of(params, i));
    EXPECT_LT(beta_of(params, i + 1), beta_of(params, i));
  }
  EXPECT_TRUE(qaoa_bounds(5).contains(params));
}

TEST(Canonicalize, LeavesCanonicalInputAlone) {
  const std::vector<double> params = pack_angles({1.0, 2.0}, {0.3, 1.0});
  EXPECT_EQ(canonicalize_angles(params), params);
}

TEST(Canonicalize, MirrorsWhenBeta1ExceedsHalfPi) {
  const std::vector<double> params = pack_angles({1.0, 2.0}, {2.0, 1.0});
  const std::vector<double> canon = canonicalize_angles(params);
  EXPECT_NEAR(gamma_of(canon, 1), 2.0 * M_PI - 1.0, 1e-12);
  EXPECT_NEAR(gamma_of(canon, 2), 2.0 * M_PI - 2.0, 1e-12);
  EXPECT_NEAR(beta_of(canon, 1), M_PI - 2.0, 1e-12);
  EXPECT_NEAR(beta_of(canon, 2), M_PI - 1.0, 1e-12);
}

TEST(Canonicalize, IsIdempotent) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<double> params = random_angles(3, rng);
    const std::vector<double> once = canonicalize_angles(params);
    EXPECT_EQ(canonicalize_angles(once), once);
    EXPECT_LE(beta_of(once, 1), M_PI / 2.0 + 1e-15);
  }
}

TEST(Canonicalize, PreservesExpectationOnUnweightedGraphs) {
  // The mirror map is an exact symmetry of the unweighted-MaxCut ansatz:
  // the QAOA energy must be bit-for-bit comparable at both points.
  Rng rng(7);
  const graph::Graph g = graph::random_regular(8, 3, rng);
  for (int p : {1, 2, 3}) {
    const MaxCutQaoa instance(g, p);
    for (int trial = 0; trial < 10; ++trial) {
      const std::vector<double> params = random_angles(p, rng);
      const std::vector<double> canon = canonicalize_angles(params);
      EXPECT_NEAR(instance.expectation(params), instance.expectation(canon),
                  1e-9);
    }
  }
}

TEST(Canonicalize, RejectsMalformedVectors) {
  EXPECT_THROW(canonicalize_angles(std::vector<double>{1.0}), InvalidArgument);
  EXPECT_THROW(canonicalize_angles(std::vector<double>{}), InvalidArgument);
}

}  // namespace
}  // namespace qaoaml::core
