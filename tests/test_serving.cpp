// The serving layer end to end (core/serving.hpp + serving_client.hpp):
// codecs, in-process Server/Client round trips, bit-identity of served
// predictions against the bank, error paths for hostile input, the
// micro-batching scheduler, and hot reload under concurrent load with
// zero dropped requests.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/graph_ensemble.hpp"
#include "core/parameter_dataset.hpp"
#include "core/parameter_predictor.hpp"
#include "core/serving.hpp"
#include "core/serving_client.hpp"
#include "core/two_level_solver.hpp"

namespace qaoaml::core::serving {
namespace {

/// A tiny trained bank on disk, shared by every test in this file
/// (training once keeps the suite fast; the tests only need SOME
/// trained bank, not a good one).
class ServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    char dir_template[] = "/tmp/qaoaml_serving_XXXXXX";
    ASSERT_NE(::mkdtemp(dir_template), nullptr);
    dir_ = dir_template;
    bank_path_ = dir_ + "/bank.qpb";

    DatasetConfig config;
    config.num_graphs = 6;
    config.num_nodes = 6;
    config.max_depth = 3;
    config.restarts = 2;
    config.seed = 11;
    const ParameterDataset corpus = ParameterDataset::generate(config);
    ParameterPredictor bank;
    std::vector<std::size_t> all(corpus.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    bank.train(corpus, all);
    bank.save(bank_path_);
  }

  static void TearDownTestSuite() {
    std::remove(bank_path_.c_str());
    ::rmdir(dir_.c_str());
  }

  /// Short socket paths: sockaddr_un caps at ~108 bytes.
  static std::string socket_path(const char* name) {
    return dir_ + "/" + name + ".sock";
  }

  static ServerConfig server_config(const char* name) {
    ServerConfig config;
    config.socket_path = socket_path(name);
    config.banks = {{"erdos-renyi", bank_path_}};
    config.workers = 2;
    return config;
  }

  static graph::Graph sample_problem(std::uint64_t seed) {
    EnsembleConfig ensemble;
    Rng rng(seed);
    return sample_graph(ensemble, 6, rng);
  }

  static std::string dir_;
  static std::string bank_path_;
};

std::string ServingTest::dir_;
std::string ServingTest::bank_path_;

TEST_F(ServingTest, RequestCodecRoundTripsEveryMode) {
  Request request;
  request.mode = Mode::kWarmStart;
  request.id = 77;
  request.family = "erdos-renyi";
  request.target_depth = 3;
  request.problem = sample_problem(3);
  request.seed = 99;
  request.level1_restarts = 4;

  const Request decoded = decode_request(request_frame_type(request.mode),
                                         encode_request(request));
  EXPECT_EQ(decoded.id, 77u);
  EXPECT_EQ(decoded.family, "erdos-renyi");
  EXPECT_EQ(decoded.target_depth, 3);
  EXPECT_EQ(decoded.seed, 99u);
  EXPECT_EQ(decoded.level1_restarts, 4);
  EXPECT_EQ(decoded.problem.num_nodes(), request.problem.num_nodes());
  EXPECT_EQ(decoded.problem.edges(), request.problem.edges());

  Request predict;
  predict.mode = Mode::kPredict;
  predict.id = 5;
  predict.family = "regular";
  predict.gamma1 = 0.25;
  predict.beta1 = -0.5;
  const Request predict_decoded = decode_request(
      request_frame_type(predict.mode), encode_request(predict));
  EXPECT_EQ(predict_decoded.gamma1, 0.25);
  EXPECT_EQ(predict_decoded.beta1, -0.5);
}

TEST_F(ServingTest, ResponseCodecRoundTripsBitExactly) {
  Response response;
  response.id = 123;
  response.ok = true;
  response.bank_generation = 9;
  response.gamma1 = 0.1;
  response.beta1 = 0.2;
  response.angles = {1.0000000000000002, -0.0, 3.25};
  response.expectation = 4.999999999999999;
  response.approximation_ratio = 0.875;
  response.function_calls = 321;

  const Response decoded = decode_response(encode_response(response));
  EXPECT_EQ(decoded.id, 123u);
  EXPECT_TRUE(decoded.ok);
  EXPECT_EQ(decoded.bank_generation, 9u);
  EXPECT_EQ(decoded.angles, response.angles);      // bit-exact doubles
  EXPECT_EQ(decoded.expectation, response.expectation);
  EXPECT_EQ(decoded.function_calls, 321);
}

TEST_F(ServingTest, DecodeRequestRejectsHostilePayloads) {
  EXPECT_THROW(decode_request(999, ""), InvalidArgument);  // unknown type
  EXPECT_THROW(decode_request(kPredictRequest, "short"), InvalidArgument);

  // A graph announcing more edges than a simple graph admits.
  wire::PayloadWriter writer;
  writer.u64(1);
  writer.str("erdos-renyi");
  writer.i32(2);
  writer.u32(4);           // 4 nodes
  writer.u64(1000);        // ...with 1000 edges
  EXPECT_THROW(decode_request(kWarmStartRequest, writer.bytes()),
               InvalidArgument);

  // Trailing garbage after a well-formed predict payload.
  const Request probe = [] {
    Request r;
    r.mode = Mode::kPredict;
    return r;
  }();
  std::string bytes = encode_request(probe);
  bytes += "x";
  EXPECT_THROW(decode_request(kPredictRequest, bytes), InvalidArgument);
}

TEST_F(ServingTest, SampledEvalBlockRoundTripsAndExactStaysOldProtocol) {
  Request request;
  request.mode = Mode::kSolve;
  request.id = 9;
  request.family = "erdos-renyi";
  request.target_depth = 2;
  request.problem = sample_problem(5);
  request.seed = 77;
  request.eval = EvalSpec::sampled_with(512, 4242, 3);
  request.eval.seed_policy = SeedPolicy::kPerCall;

  const std::string sampled_bytes = encode_request(request);
  const Request decoded =
      decode_request(request_frame_type(request.mode), sampled_bytes);
  EXPECT_TRUE(decoded.eval.sampled());
  EXPECT_EQ(decoded.eval.shots, 512);
  EXPECT_EQ(decoded.eval.averaging, 3);
  EXPECT_EQ(decoded.eval.seed_policy, SeedPolicy::kPerCall);
  EXPECT_EQ(decoded.eval.seed, 4242u);

  // An exact request writes NO trailing block: its bytes are a strict
  // prefix of the sampled encoding and decode to an exact spec — which
  // is exactly what a pre-EvalSpec client puts on the wire, so old
  // clients keep working against new servers unchanged.
  Request exact = request;
  exact.eval = EvalSpec::exact();
  const std::string exact_bytes = encode_request(exact);
  ASSERT_LT(exact_bytes.size(), sampled_bytes.size());
  EXPECT_EQ(exact_bytes, sampled_bytes.substr(0, exact_bytes.size()));
  const Request exact_decoded =
      decode_request(request_frame_type(exact.mode), exact_bytes);
  EXPECT_FALSE(exact_decoded.eval.sampled());
}

TEST_F(ServingTest, DecodeRequestRejectsHostileEvalBlocks) {
  Request base;
  base.mode = Mode::kWarmStart;
  base.family = "erdos-renyi";
  base.problem = sample_problem(6);
  const std::string prefix = encode_request(base);

  const auto eval_block = [](std::uint32_t version, std::int32_t shots) {
    wire::PayloadWriter writer;
    writer.u32(version);
    writer.i32(shots);
    writer.i32(1);   // averaging
    writer.u32(0);   // stream policy
    writer.u64(7);   // seed
    return writer.bytes();
  };
  // A future block version must fail loudly, not silently serve exact.
  EXPECT_THROW(
      decode_request(kWarmStartRequest, prefix + eval_block(99, 128)),
      InvalidArgument);
  // Hostile shot counts are rejected at decode time.
  EXPECT_THROW(decode_request(kWarmStartRequest, prefix + eval_block(1, 0)),
               InvalidArgument);
  EXPECT_THROW(decode_request(kWarmStartRequest, prefix + eval_block(1, -8)),
               InvalidArgument);
  // A truncated block is a framing error.
  const std::string block = eval_block(1, 128);
  EXPECT_THROW(
      decode_request(kWarmStartRequest,
                     prefix + block.substr(0, block.size() - 3)),
      InvalidArgument);
}

TEST_F(ServingTest, ServedPredictionIsBitIdenticalToTheBank) {
  const ParameterPredictor bank = ParameterPredictor::load(bank_path_);
  Server server(server_config("predict"));
  Client client(server.socket_path());

  for (const auto& [gamma1, beta1] : std::vector<std::pair<double, double>>{
           {0.6, 0.4}, {1.0, 0.1}, {5.9, 3.0}}) {
    const Response response =
        client.predict("erdos-renyi", gamma1, beta1, 3);
    ASSERT_TRUE(response.ok) << response.error;
    const std::vector<double> expected = bank.predict(gamma1, beta1, 3);
    // Bit-identity, not approximate equality: the wire carries IEEE-754
    // bits, so served angles must equal the bank's exactly.
    EXPECT_EQ(response.angles, expected);
    EXPECT_EQ(response.bank_generation, 1u);
  }
}

TEST_F(ServingTest, PingAndStatsRoundTrip) {
  Server server(server_config("ping"));
  Client client(server.socket_path());
  EXPECT_TRUE(client.ping(42));
  const Response response = client.predict("erdos-renyi", 0.5, 0.5, 2);
  ASSERT_TRUE(response.ok) << response.error;
  const ServerStats stats = client.server_stats();
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_EQ(stats.bank_generation, 1u);
}

TEST_F(ServingTest, UnknownFamilyAnswersAnErrorNotAHangup) {
  Server server(server_config("unknown"));
  Client client(server.socket_path());
  const Response response = client.predict("no-such-family", 0.5, 0.5, 2);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("no-such-family"), std::string::npos);
  // The connection survives the error: the next request still works.
  const Response good = client.predict("erdos-renyi", 0.5, 0.5, 2);
  EXPECT_TRUE(good.ok) << good.error;
}

TEST_F(ServingTest, OutOfRangeDepthAnswersAnError) {
  Server server(server_config("depth"));
  Client client(server.socket_path());
  const Response response = client.predict("erdos-renyi", 0.5, 0.5, 99);
  EXPECT_FALSE(response.ok);
  EXPECT_FALSE(response.error.empty());
}

TEST_F(ServingTest, WarmStartEvaluatesThePredictionOnTheInstance) {
  Server server(server_config("warm"));
  Client client(server.socket_path());
  const graph::Graph problem = sample_problem(21);
  const Response response =
      client.warm_start("erdos-renyi", problem, 3, /*seed=*/21);
  ASSERT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.angles.size(), 6u);  // 2 * depth
  EXPECT_GT(response.expectation, 0.0);
  EXPECT_GT(response.approximation_ratio, 0.0);
  EXPECT_LE(response.approximation_ratio, 1.0);
  EXPECT_GT(response.function_calls, 0);

  // Determinism: the same request bits yield the same response bits.
  const Response again =
      client.warm_start("erdos-renyi", problem, 3, /*seed=*/21);
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.angles, response.angles);
  EXPECT_EQ(again.expectation, response.expectation);
  EXPECT_EQ(again.gamma1, response.gamma1);
}

TEST_F(ServingTest, OneSocketServesExactAndSampledRequests) {
  // The acceptance shape of the EvalSpec wire extension: a single
  // daemon serves pre-EvalSpec-style exact requests and shots-bearing
  // sampled requests side by side, sampled responses are deterministic
  // in the request bits, and the reported expectation is exact-rescored
  // at the returned angles.
  Server server(server_config("mixed"));
  Client client(server.socket_path());
  const graph::Graph problem = sample_problem(31);

  const Response exact =
      client.warm_start("erdos-renyi", problem, 2, /*seed=*/31);
  ASSERT_TRUE(exact.ok) << exact.error;

  const EvalSpec spec = EvalSpec::sampled_with(128, 1717);
  const Response sampled = client.warm_start("erdos-renyi", problem, 2,
                                             /*seed=*/31, 1, spec);
  ASSERT_TRUE(sampled.ok) << sampled.error;
  const Response sampled_again = client.warm_start("erdos-renyi", problem, 2,
                                                   /*seed=*/31, 1, spec);
  ASSERT_TRUE(sampled_again.ok) << sampled_again.error;
  EXPECT_EQ(sampled.angles, sampled_again.angles);
  EXPECT_EQ(sampled.expectation, sampled_again.expectation);
  EXPECT_EQ(sampled.function_calls, sampled_again.function_calls);

  // The exact arm reports <C> at the served angles; the sampled arm
  // reports the finite-shot estimate a shot-limited device would — a
  // pure function of the request, reproducible locally from its spec.
  const MaxCutQaoa instance(problem, 2);
  EXPECT_EQ(exact.expectation, instance.expectation(exact.angles));
  Rng measure(spec.seed);
  EXPECT_EQ(sampled.expectation,
            instance.sampled_expectation(sampled.angles, spec.shots, measure));

  const Response solved = client.solve("erdos-renyi", problem, 2,
                                       /*seed=*/31, 1, spec);
  ASSERT_TRUE(solved.ok) << solved.error;
  EXPECT_GT(solved.function_calls, 0);
}

TEST_F(ServingTest, SolveMatchesALocalTwoLevelRunBitForBit) {
  Server server(server_config("solve"));
  Client client(server.socket_path());
  const graph::Graph problem = sample_problem(8);
  const std::uint64_t seed = 8;

  const Response response =
      client.solve("erdos-renyi", problem, 3, seed, /*level1_restarts=*/2);
  ASSERT_TRUE(response.ok) << response.error;

  const ParameterPredictor bank = ParameterPredictor::load(bank_path_);
  TwoLevelConfig config;
  config.level1_restarts = 2;
  Rng rng(seed);
  const AcceleratedRun local = solve_two_level(problem, 3, bank, config, rng);
  EXPECT_EQ(response.expectation, local.final.expectation);
  EXPECT_EQ(response.approximation_ratio, local.final.approximation_ratio);
  EXPECT_EQ(response.function_calls, local.total_function_calls);
  EXPECT_EQ(response.angles, local.predicted_init);
}

TEST_F(ServingTest, HotReloadUnderLoadDropsNothing) {
  ServerConfig config = server_config("reload");
  config.workers = 3;
  Server server(config);

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 150;
  std::atomic<int> failures{0};
  std::atomic<bool> reloading{true};

  // A reload storm concurrent with the request storm.
  std::thread reloader([&] {
    while (reloading.load()) {
      server.reload();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  {
    std::vector<std::jthread> clients;
    for (int t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t] {
        Client client(server.socket_path());
        for (int i = 0; i < kRequestsPerThread; ++i) {
          const Response response = client.predict(
              "erdos-renyi", 0.1 + 0.01 * t, 0.2 + 0.001 * i, 3);
          if (!response.ok) failures.fetch_add(1);
        }
      });
    }
  }
  reloading.store(false);
  reloader.join();

  EXPECT_EQ(failures.load(), 0) << "requests dropped across reloads";
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.served,
            static_cast<std::uint64_t>(kThreads * kRequestsPerThread));
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GT(stats.bank_generation, 1u);  // reloads really happened
  EXPECT_GT(stats.reloads, 0u);
}

TEST_F(ServingTest, ReloadFailureKeepsTheOldBanksServing) {
  ServerConfig config = server_config("reloadfail");
  const std::string moved = bank_path_ + ".away";
  Server server(config);
  Client client(server.socket_path());

  ASSERT_EQ(std::rename(bank_path_.c_str(), moved.c_str()), 0);
  EXPECT_THROW(server.reload(), Error);
  ASSERT_EQ(std::rename(moved.c_str(), bank_path_.c_str()), 0);

  const Response response = client.predict("erdos-renyi", 0.5, 0.5, 2);
  EXPECT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.bank_generation, 1u);  // old set, old generation
}

TEST_F(ServingTest, SchedulerBatchesConcurrentRequests) {
  // Saturate a 1-worker scheduler so in-flight requests pile up in the
  // queue and pop_batch has something to batch.
  BankSet banks({{"erdos-renyi", bank_path_}});
  SchedulerConfig config;
  config.workers = 1;
  config.batch_max = 8;
  Scheduler scheduler(banks, config);

  constexpr int kRequests = 64;
  std::atomic<int> answered{0};
  for (int i = 0; i < kRequests; ++i) {
    Request request;
    request.mode = Mode::kPredict;
    request.id = static_cast<std::uint64_t>(i);
    request.family = "erdos-renyi";
    request.target_depth = 2;
    request.gamma1 = 0.01 * i;
    request.beta1 = 0.02 * i;
    scheduler.submit(std::move(request), [&](const Response& response) {
      if (response.ok) answered.fetch_add(1);
    });
  }
  scheduler.stop();  // drains everything accepted

  EXPECT_EQ(answered.load(), kRequests);
  const Scheduler::Stats stats = scheduler.stats();
  EXPECT_EQ(stats.served, static_cast<std::uint64_t>(kRequests));
  // With one worker and a fast handler, at least one pop saw >1 queued
  // item; max_batch must reflect real batching, bounded by batch_max.
  EXPECT_GT(stats.max_batch, 1u);
  EXPECT_LE(stats.max_batch, 8u);
  EXPECT_LT(stats.batches, static_cast<std::uint64_t>(kRequests));
}

TEST_F(ServingTest, BankSetLookupNamesTheKnownFamilies) {
  BankSet banks({{"erdos-renyi", bank_path_}});
  EXPECT_EQ(banks.generation(), 1u);
  EXPECT_EQ(banks.families(), std::vector<std::string>{"erdos-renyi"});
  try {
    banks.lookup("small-world");
    FAIL() << "lookup of an unloaded family must throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("erdos-renyi"), std::string::npos);
  }
}

TEST_F(ServingTest, StopIsIdempotentAndStatsSurviveIt) {
  Server server(server_config("stop"));
  {
    Client client(server.socket_path());
    ASSERT_TRUE(client.predict("erdos-renyi", 0.3, 0.3, 2).ok);
  }
  server.stop();
  server.stop();  // idempotent
  EXPECT_EQ(server.stats().served, 1u);
}

}  // namespace
}  // namespace qaoaml::core::serving
