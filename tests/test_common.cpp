// Tests for the common substrate: RNG, env knobs, strict CLI parsing,
// crash-safe file primitives, table printer, parallel_for.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "common/checkpoint.hpp"
#include "common/cli.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/subprocess.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

namespace qaoaml {
namespace {

TEST(Rng, IsDeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DiffersAcrossSeeds) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanApproachesHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(10)];
  for (const int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(0), InvalidArgument);
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScalesWithMeanAndStddev) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0.0, -1.0), InvalidArgument);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliValidatesProbability) {
  Rng rng(1);
  EXPECT_THROW(rng.bernoulli(-0.1), InvalidArgument);
  EXPECT_THROW(rng.bernoulli(1.1), InvalidArgument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 4);
}

TEST(Env, IntFallsBackWhenUnset) {
  ::unsetenv("QAOAML_TEST_UNSET");
  EXPECT_EQ(env_int("QAOAML_TEST_UNSET", 42), 42);
}

TEST(Env, IntParsesValue) {
  ::setenv("QAOAML_TEST_INT", "17", 1);
  EXPECT_EQ(env_int("QAOAML_TEST_INT", 0), 17);
  ::unsetenv("QAOAML_TEST_INT");
}

TEST(Env, IntFallsBackOnGarbage) {
  ::setenv("QAOAML_TEST_INT", "not-a-number", 1);
  EXPECT_EQ(env_int("QAOAML_TEST_INT", 5), 5);
  ::unsetenv("QAOAML_TEST_INT");
}

TEST(Env, DoubleParsesValue) {
  ::setenv("QAOAML_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_double("QAOAML_TEST_DBL", 0.0), 2.5);
  ::unsetenv("QAOAML_TEST_DBL");
}

TEST(Env, StringFallsBackAndParses) {
  ::unsetenv("QAOAML_TEST_STR");
  EXPECT_EQ(env_string("QAOAML_TEST_STR", "dflt"), "dflt");
  ::setenv("QAOAML_TEST_STR", "value", 1);
  EXPECT_EQ(env_string("QAOAML_TEST_STR", "dflt"), "value");
  ::unsetenv("QAOAML_TEST_STR");
}

TEST(Cli, ToIntParsesPlainDecimals) {
  int value = 0;
  EXPECT_TRUE(cli::to_int("17", value));
  EXPECT_EQ(value, 17);
  EXPECT_TRUE(cli::to_int("-5", value));
  EXPECT_EQ(value, -5);
  EXPECT_TRUE(cli::to_int("0", value));
  EXPECT_EQ(value, 0);
}

TEST(Cli, ToIntRejectsLooseSpellingsStrtolWouldAccept) {
  // strtol quietly skips leading whitespace and accepts '+'; the CLI
  // grammar must not.
  int value = 0;
  EXPECT_FALSE(cli::to_int(" 5", value));
  EXPECT_FALSE(cli::to_int("\t5", value));
  EXPECT_FALSE(cli::to_int("+5", value));
  EXPECT_FALSE(cli::to_int(" -5", value));
}

TEST(Cli, ToIntRejectsGarbageOverflowAndTrailingBytes) {
  int value = 0;
  EXPECT_FALSE(cli::to_int("", value));
  EXPECT_FALSE(cli::to_int("two", value));
  EXPECT_FALSE(cli::to_int("12x", value));
  EXPECT_FALSE(cli::to_int("0x2a", value));
  EXPECT_FALSE(cli::to_int("12 ", value));
  EXPECT_FALSE(cli::to_int("99999999999", value));  // > INT_MAX
}

TEST(Cli, ToU64RejectsEverySignedSpelling) {
  // " -5" through strtoull wraps to 18446744073709551611 — the exact
  // bug class these parsers exist to stop.
  std::uint64_t value = 0;
  EXPECT_FALSE(cli::to_u64("-5", value));
  EXPECT_FALSE(cli::to_u64(" -5", value));
  EXPECT_FALSE(cli::to_u64("+5", value));
  EXPECT_FALSE(cli::to_u64(" 5", value));
}

TEST(Cli, ToU64CoversTheFullRange) {
  std::uint64_t value = 0;
  EXPECT_TRUE(cli::to_u64("18446744073709551615", value));
  EXPECT_EQ(value, UINT64_MAX);
  EXPECT_FALSE(cli::to_u64("18446744073709551616", value));  // overflow
}

TEST(Cli, ToDoubleIsStrictAtBothEnds) {
  double value = 0.0;
  EXPECT_TRUE(cli::to_double("2.5", value));
  EXPECT_DOUBLE_EQ(value, 2.5);
  EXPECT_TRUE(cli::to_double("-0.25", value));
  EXPECT_TRUE(cli::to_double(".5", value));
  EXPECT_TRUE(cli::to_double("1e-3", value));
  EXPECT_FALSE(cli::to_double(" 2.5", value));
  EXPECT_FALSE(cli::to_double("+2.5", value));
  EXPECT_FALSE(cli::to_double("2.5x", value));
  EXPECT_FALSE(cli::to_double("", value));
}

TEST(Cli, ToDoubleRejectsNonNumericSpellings) {
  // strtod accepts "inf"/"nan"; no knob in this repo wants either.
  double value = 0.0;
  EXPECT_FALSE(cli::to_double("inf", value));
  EXPECT_FALSE(cli::to_double("nan", value));
  EXPECT_FALSE(cli::to_double("1e999", value));  // overflow
}

TEST(Checkpoint, ReplaceFileAtomicRoundTripsBinaryContent) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "checkpoint_binary";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "data.txt").string();
  // CRLF and NUL bytes must survive exactly: a text-mode write would
  // mangle them and break the merge's bit-identical guarantee.
  const std::string content("line1\r\nline2\0line3\n", 19);
  replace_file_atomic(path, content);
  std::ifstream in(path, std::ios::binary);
  std::string read_back((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  EXPECT_EQ(read_back, content);
  // A second identical call is a no-op and must not corrupt anything.
  replace_file_atomic(path, content);
  std::ifstream again(path, std::ios::binary);
  read_back.assign((std::istreambuf_iterator<char>(again)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(read_back, content);
}

TEST(Checkpoint, ReplaceFileAtomicCleansUpWhenRenameFails) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "checkpoint_rename";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  // rename(2) onto a non-empty directory fails — the temp file must not
  // be left behind (the original bug leaked one per failed rewrite).
  const std::filesystem::path target = dir / "occupied";
  std::filesystem::create_directories(target / "child");
  // The original failure (here EISDIR) propagates as-is.
  EXPECT_THROW(replace_file_atomic(target.string(), "payload"),
               std::exception);
  std::size_t entries = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(entry.path(), target) << "leaked temp file: " << entry.path();
  }
  EXPECT_EQ(entries, 1u);
}

TEST(Checkpoint, FileLockExcludesARealSecondProcess) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "checkpoint_lock";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "shard.lock").string();
  EXPECT_FALSE(is_locked(path));
  {
    FileLock lock(path);
    EXPECT_TRUE(is_locked(path));
    // A genuinely separate process must fail to take the lock while we
    // hold it — flock(1) -n exits nonzero on contention.
    Subprocess probe = Subprocess::spawn(
        {"/usr/bin/flock", "-n", path, "/bin/true"});
    EXPECT_FALSE(probe.wait().success());
  }
  EXPECT_FALSE(is_locked(path));
  Subprocess probe = Subprocess::spawn(
      {"/usr/bin/flock", "-n", path, "/bin/true"});
  EXPECT_TRUE(probe.wait().success());
}

TEST(Checkpoint, FileLockFailsFastWhenAnotherProcessHoldsIt) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "checkpoint_lock2";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "shard.lock").string();
  // The child takes the flock on its own fd 9, announces it, then
  // holds it until killed — exactly a concurrent duplicate shard
  // invocation.  The sleep runs with fd 9 closed so the shell is the
  // lock's ONLY holder (flock(1)'s command-mode forks the command with
  // the lock fd inherited, which would keep the lock alive past the
  // kill).
  Subprocess holder = Subprocess::spawn(
      {"/bin/sh", "-c",
       "exec 9>\"$0\" && /usr/bin/flock -n 9 && echo held && sleep 30 9>&-",
       path});
  std::string line;
  ASSERT_EQ(holder.read_line(line, 10000), Subprocess::ReadResult::kLine);
  ASSERT_EQ(line, "held");
  EXPECT_TRUE(is_locked(path));
  EXPECT_THROW(FileLock second(path), InvalidArgument);
  // SIGKILL on the holder releases the flock in the kernel — the
  // crash-resume property the pipelines rely on.
  holder.kill();
  holder.wait();
  EXPECT_FALSE(is_locked(path));
  EXPECT_NO_THROW(FileLock reclaimed(path));
}

TEST(Env, IntFallsBackOnOutOfRangeAndLooseSpellings) {
  ::setenv("QAOAML_TEST_INT", "99999999999", 1);
  EXPECT_EQ(env_int("QAOAML_TEST_INT", 5), 5);
  ::setenv("QAOAML_TEST_INT", " 7", 1);
  EXPECT_EQ(env_int("QAOAML_TEST_INT", 5), 5);
  ::setenv("QAOAML_TEST_INT", "+7", 1);
  EXPECT_EQ(env_int("QAOAML_TEST_INT", 5), 5);
  ::setenv("QAOAML_TEST_INT", "7 ", 1);
  EXPECT_EQ(env_int("QAOAML_TEST_INT", 5), 5);
  ::unsetenv("QAOAML_TEST_INT");
}

TEST(Env, DoubleFallsBackOnGarbage) {
  ::setenv("QAOAML_TEST_DBL", "fast", 1);
  EXPECT_DOUBLE_EQ(env_double("QAOAML_TEST_DBL", 1.5), 1.5);
  ::setenv("QAOAML_TEST_DBL", "inf", 1);
  EXPECT_DOUBLE_EQ(env_double("QAOAML_TEST_DBL", 1.5), 1.5);
  ::unsetenv("QAOAML_TEST_DBL");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(1.5, 2)});
  t.add_row({"b", Table::num(12LL)});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("12"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsAtypicalRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
  EXPECT_THROW(Table({}), InvalidArgument);
}

TEST(Table, NumFormatsDigits) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(1234LL), "1234");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0.0;
  // compound assignment on volatile is deprecated in C++20
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.milliseconds(), t.seconds());  // ms value >= s value
}

TEST(Parallel, ComputesEveryIndexOnce) {
  std::vector<int> hits(1000, 0);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; }, 4);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, WorksSingleThreaded) {
  std::vector<int> hits(10, 0);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i] += 1; }, 1);
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(8, [](std::size_t i) {
        if (i == 3) throw InvalidArgument("boom");
      }, 4),
      InvalidArgument);
}

TEST(Parallel, HandlesEmptyRange) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; }, 4);
}

TEST(Error, RequireThrowsWithMessage) {
  EXPECT_NO_THROW(require(true, "fine"));
  try {
    require(false, "broken invariant");
    FAIL() << "expected throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("broken invariant"),
              std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchableAsBase) {
  try {
    throw NumericalError("nan");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "nan");
  }
}

}  // namespace
}  // namespace qaoaml
