// Golden regression fixtures for the QAOA energy.
//
// Each case pins <psi(gamma, beta)| C |psi(gamma, beta)> for a fixed
// (graph, depth, angles) triple to a reference value computed at the
// time the fused kernels landed (PR 2), when the fused, unfused, and
// gate-by-gate paths were cross-validated against each other.  Any
// kernel change that shifts an expectation beyond kGoldenTol breaks
// these tests with a message naming the case and the drift, which is
// the point: silent numerical regressions in fast paths must be loud.
//
// If a change legitimately alters these values (it should not — they
// are exact physical quantities, not implementation artifacts), the
// fixtures must be regenerated and the change justified in review.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "core/graph_ensemble.hpp"
#include "core/qaoa_objective.hpp"
#include "graph/generators.hpp"
#include "quantum/dispatch.hpp"
#include "quantum/sim_config.hpp"

namespace qaoaml {
namespace {

/// Well above accumulated rounding (observed cross-path drift is 0 and
/// cross-compiler drift is ~1e-13), far below any real kernel bug.
constexpr double kGoldenTol = 1e-9;

struct GoldenCase {
  const char* name;
  graph::Graph (*make)();
  int depth;
  std::vector<double> params;  // [gammas..., betas...]
  double expected;
};

graph::Graph weighted_cycle6() {
  graph::Graph g(6);
  const graph::Graph cycle = graph::cycle_graph(6);
  for (const graph::Edge& e : cycle.edges()) g.add_edge(e.u, e.v, 2.5);
  return g;
}

graph::Graph er8_beef() {
  Rng rng(0xBEEF);
  return graph::erdos_renyi_gnp(8, 0.5, rng);
}

graph::Graph reg10d3_cafe() {
  Rng rng(0xCAFE);
  return graph::random_regular(10, 3, rng);
}

// One pinned-seed instance per core::GraphEnsemble family, sampled
// through core::sample_graph itself (not the underlying graph/
// generators), so drift anywhere in a family's sampling recipe — knob
// defaults, rejection loops, the mixed family's family draw — breaks
// the fixture, not just drift in the raw generators.
graph::Graph ensemble_case(core::GraphFamily family, std::uint64_t seed,
                           core::WeightKind weight = core::WeightKind::kUniform) {
  core::EnsembleConfig config;
  config.family = family;
  config.weight = weight;
  Rng rng(seed);
  return core::sample_graph(config, 8, rng);
}

graph::Graph ensemble_er() {
  return ensemble_case(core::GraphFamily::kErdosRenyi, 0x5EED01);
}
graph::Graph ensemble_regular() {
  return ensemble_case(core::GraphFamily::kRegular, 0x5EED02);
}
graph::Graph ensemble_weighted_uniform() {
  return ensemble_case(core::GraphFamily::kWeightedErdosRenyi, 0x5EED03);
}
graph::Graph ensemble_weighted_gaussian() {
  return ensemble_case(core::GraphFamily::kWeightedErdosRenyi, 0x5EED04,
                       core::WeightKind::kGaussian);
}
graph::Graph ensemble_small_world() {
  return ensemble_case(core::GraphFamily::kSmallWorld, 0x5EED05);
}
graph::Graph ensemble_mixed() {
  return ensemble_case(core::GraphFamily::kMixed, 0x5EED06);
}

// Reference values generated with the PR 2 cross-validated simulator
// (QAOAML_THREADS-independent by construction of the blocked kernels).
const GoldenCase kGoldenCases[] = {
    {"cycle6_p1", [] { return graph::cycle_graph(6); }, 1,
     {0.4, 0.7}, 4.060377549123769},
    {"cycle7_p2", [] { return graph::cycle_graph(7); }, 2,
     {0.35, 0.6, 0.45, 0.8}, 5.233482237420579},
    {"complete5_p2", [] { return graph::complete_graph(5); }, 2,
     {0.3, 0.9, 0.5, 0.2}, 5.920976255081808},
    {"star6_p1", [] { return graph::star_graph(6); }, 1,
     {0.55, 0.25}, 2.978699890527710},
    {"path7_p3", [] { return graph::path_graph(7); }, 3,
     {0.2, 0.4, 0.6, 0.3, 0.5, 0.7}, 4.599230801449126},
    {"er8_seed0xBEEF_p2", &er8_beef, 2,
     {0.42, 0.17, 0.33, 0.71}, 8.888489160692925},
    {"reg10d3_seed0xCAFE_p2", &reg10d3_cafe, 2,
     {0.37, 0.58, 0.29, 0.64}, 9.908040427040676},
    {"cycle6_weight2.5_p1", &weighted_cycle6, 1,
     {0.16, 0.7}, 10.150943872809416},
    // Per-family ensemble fixtures (PR 5): one pinned-seed instance per
    // core::GraphEnsemble family at p=2, fixed angles.  Reference
    // values computed with the PR 2 cross-validated simulator; a change
    // in any family's sampling recipe OR in the kernels shifts these.
    {"ensemble_er_seed0x5EED01_p2", &ensemble_er, 2,
     {0.42, 0.17, 0.33, 0.71}, 9.5659598761338334},
    {"ensemble_regular_seed0x5EED02_p2", &ensemble_regular, 2,
     {0.42, 0.17, 0.33, 0.71}, 7.8071877329951453},
    {"ensemble_weighted_uniform_seed0x5EED03_p2", &ensemble_weighted_uniform,
     2, {0.42, 0.17, 0.33, 0.71}, 4.8472419991355826},
    {"ensemble_weighted_gaussian_seed0x5EED04_p2", &ensemble_weighted_gaussian,
     2, {0.42, 0.17, 0.33, 0.71}, 10.737006336976691},
    {"ensemble_small_world_seed0x5EED05_p2", &ensemble_small_world, 2,
     {0.42, 0.17, 0.33, 0.71}, 5.670393984549059},
    {"ensemble_mixed_seed0x5EED06_p2", &ensemble_mixed, 2,
     {0.42, 0.17, 0.33, 0.71}, 5.4177887325276215},
};

// One pinned finite-shot estimate per ensemble family: 256 shots drawn
// from Rng(0x5407) by CDF inversion at the same p=2 angles.  These are
// EXACT fixtures (a fixed spec + stream is bit-deterministic by the
// EvalSpec contract), so the tolerance is bitwise zero: any drift in
// the state preparation, the prefix-sum CDF, the inversion search, or
// the xoshiro stream moves them.
struct GoldenSampledCase {
  const char* name;
  graph::Graph (*make)();
  double expected;
};

const GoldenSampledCase kGoldenSampledCases[] = {
    {"sampled_ensemble_er_seed0x5EED01", &ensemble_er, 9.59375},
    {"sampled_ensemble_regular_seed0x5EED02", &ensemble_regular, 7.66796875},
    {"sampled_ensemble_weighted_uniform_seed0x5EED03",
     &ensemble_weighted_uniform, 4.8210514565072122},
    {"sampled_ensemble_weighted_gaussian_seed0x5EED04",
     &ensemble_weighted_gaussian, 10.733057017458975},
    {"sampled_ensemble_small_world_seed0x5EED05", &ensemble_small_world,
     5.625},
    {"sampled_ensemble_mixed_seed0x5EED06", &ensemble_mixed, 5.34765625},
};

/// Every (layer kernel, SIMD tier) combination must reproduce the
/// committed fixtures; tiers the CPU lacks are skipped.
using GoldenPathCase = std::tuple<quantum::LayerKernel, quantum::SimdTier>;

class GoldenRegression : public ::testing::TestWithParam<GoldenPathCase> {
 protected:
  void SetUp() override {
    const auto [kernel, tier] = GetParam();
    if (!quantum::simd_tier_supported(tier)) {
      GTEST_SKIP() << quantum::to_string(tier) << " unsupported on this CPU";
    }
    kernel_guard_.emplace(kernel);
    tier_guard_.emplace(tier);
  }

 private:
  std::optional<quantum::ScopedLayerKernel> kernel_guard_;
  std::optional<quantum::ScopedSimdTier> tier_guard_;
};

TEST_P(GoldenRegression, ExpectationsMatchCommittedFixtures) {
  for (const GoldenCase& c : kGoldenCases) {
    const core::MaxCutQaoa instance(c.make(), c.depth);
    const double actual = instance.expectation(c.params);
    const double drift = actual - c.expected;
    EXPECT_NEAR(actual, c.expected, kGoldenTol)
        << "Golden fixture '" << c.name << "' drifted: expected <C> = "
        << ::testing::PrintToString(c.expected) << ", got "
        << ::testing::PrintToString(actual) << " (drift " << drift
        << "). A kernel change moved a committed reference expectation; "
           "fix the kernel or regenerate the fixtures with justification.";
    // Beyond the committed decimal fixture, the dispatched tier must
    // agree with the scalar tier to the BIT — the simd_kernels.hpp
    // identity contract applied to every golden case.
    double scalar = 0.0;
    {
      const quantum::ScopedSimdTier scalar_guard(quantum::SimdTier::kScalar);
      scalar = instance.expectation(c.params);
    }
    EXPECT_EQ(actual, scalar)
        << "Golden fixture '" << c.name << "' is not bit-identical across "
        << "SIMD tiers: " << quantum::to_string(std::get<1>(GetParam()))
        << " diverged from scalar.";
  }
}

// The gate-by-gate ansatz simulation must reproduce the same fixtures:
// this catches regressions that corrupt the fast paths and the circuit
// path in the same way only if both break identically, and otherwise
// localizes which layer drifted.
TEST(GoldenRegression, GateLevelPathMatchesFixtures) {
  for (const GoldenCase& c : kGoldenCases) {
    const core::MaxCutQaoa instance(c.make(), c.depth);
    const double actual = instance.expectation_gate_level(c.params);
    EXPECT_NEAR(actual, c.expected, kGoldenTol)
        << "Golden fixture '" << c.name
        << "' drifted on the gate-level path: expected <C> = "
        << ::testing::PrintToString(c.expected) << ", got "
        << ::testing::PrintToString(actual) << ".";
  }
}

TEST_P(GoldenRegression, SampledExpectationsMatchCommittedFixturesBitwise) {
  // The sampled fixtures were committed from the scalar path; shot
  // sampling is bit-deterministic AND tier-independent by contract
  // (identical amplitudes -> identical CDF -> identical inversions), so
  // the comparison stays EXPECT_EQ on every dispatch tier.
  const core::EvalSpec spec = core::EvalSpec::sampled_with(256, 0x5407);
  const std::vector<double> params{0.42, 0.17, 0.33, 0.71};
  for (const GoldenSampledCase& c : kGoldenSampledCases) {
    const core::MaxCutQaoa instance(c.make(), 2);
    Rng rng(spec.seed);
    const double actual =
        instance.sampled_expectation(params, spec.shots, rng);
    EXPECT_EQ(actual, c.expected)
        << "Sampled golden fixture '" << c.name << "' drifted: expected "
        << ::testing::PrintToString(c.expected) << ", got "
        << ::testing::PrintToString(actual)
        << ". Sampling is bit-deterministic by contract — a change moved "
           "the state prep, the CDF, the inversion search, or the rng "
           "stream; fix it or regenerate with justification.";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paths, GoldenRegression,
    ::testing::Combine(::testing::Values(quantum::LayerKernel::kFused,
                                         quantum::LayerKernel::kUnfused),
                       ::testing::Values(quantum::SimdTier::kScalar,
                                         quantum::SimdTier::kAvx2,
                                         quantum::SimdTier::kAvx512)),
    [](const ::testing::TestParamInfo<GoldenPathCase>& info) {
      const std::string kernel =
          std::get<0>(info.param) == quantum::LayerKernel::kFused ? "fused"
                                                                  : "unfused";
      return kernel + "_" + quantum::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace qaoaml
