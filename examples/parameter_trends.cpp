// Explore the optimal-parameter regularities the paper's ML model
// learns (Sections II-B and II-C): optimize one graph at several depths
// and print how each stage's gamma/beta moves.
//
//   build/examples/parameter_trends [nodes] [degree]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/angles.hpp"
#include "core/qaoa_solver.hpp"
#include "graph/generators.hpp"

using namespace qaoaml;

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 8;
  const int degree = argc > 2 ? std::atoi(argv[2]) : 3;
  Rng rng(2026);
  const graph::Graph problem = graph::random_regular(nodes, degree, rng);
  std::printf("random %d-regular graph on %d nodes (%zu edges)\n\n", degree,
              nodes, problem.num_edges());

  const int max_depth = 5;
  std::vector<std::vector<double>> optima;
  for (int p = 1; p <= max_depth; ++p) {
    const core::MaxCutQaoa instance(problem, p);
    core::MultistartRuns runs = core::solve_multistart(
        instance, optim::OptimizerKind::kLbfgsb, 15, rng);
    // The same heuristic seeds the corpus generation uses.
    for (const std::vector<double>& seed :
         {core::linear_ramp_angles(p),
          p >= 2 ? core::interp_angles(optima.back())
                 : core::linear_ramp_angles(p)}) {
      core::QaoaRun run = core::solve_from(
          instance, optim::OptimizerKind::kLbfgsb, seed);
      const double tie_eps =
          1e-4 * std::max(1.0, std::abs(runs.best.expectation));
      if (run.expectation >= runs.best.expectation - tie_eps) {
        runs.best = std::move(run);  // prefer the pattern basin on ties
      }
    }
    optima.push_back(runs.best.params);

    std::printf("p=%d  AR=%.4f   gamma:", p, runs.best.approximation_ratio);
    for (int i = 1; i <= p; ++i) {
      std::printf(" %.3f", core::gamma_of(runs.best.params, i));
    }
    std::printf("   beta:");
    for (int i = 1; i <= p; ++i) {
      std::printf(" %.3f", core::beta_of(runs.best.params, i));
    }
    std::printf("\n");
  }

  std::printf("\nwhat to look for (the paper's Figs. 2 and 3):\n");
  std::printf(" - within one row, gamma_i grows with the stage index and "
              "beta_i shrinks;\n");
  std::printf(" - down one column, gamma_1 shrinks as depth grows while "
              "beta_1 grows;\n");
  std::printf(" - AR improves monotonically with depth.\n");
  return 0;
}
