// The paper's full pipeline on a small corpus, end to end:
//
//   1. generate a training corpus of optimal QAOA angles,
//   2. train the GPR parameter predictor,
//   3. solve fresh instances with the two-level flow,
//   4. compare function calls against naive random initialization.
//
//   build/examples/ml_acceleration_demo
#include <cstdio>

#include "common/timer.hpp"
#include "core/two_level_solver.hpp"
#include "graph/generators.hpp"
#include "stats/descriptive.hpp"

using namespace qaoaml;

int main() {
  // -- 1. corpus (via the sharded pipeline's in-memory path) -------------
  core::DatasetConfig corpus_config;
  corpus_config.num_graphs = 24;  // the paper uses 330; this is a demo
  corpus_config.max_depth = 4;
  corpus_config.restarts = 10;
  corpus_config.seed = 11;
  std::printf("generating corpus: %d graphs x depths 1..%d ...\n",
              corpus_config.num_graphs, corpus_config.max_depth);
  Timer corpus_timer;
  // generate() routes through the sharded pipeline's in-memory path
  // (core::CorpusPipeline::generate_records).
  const core::ParameterDataset corpus =
      core::ParameterDataset::generate(corpus_config);
  const double corpus_seconds = corpus_timer.seconds();
  std::printf("corpus holds %zu optimal parameters\n",
              corpus.total_parameter_count());
  // Wall time makes the docs' corpus-generation performance claims
  // reproducible; tools/generate_corpus reports the same metric per shard.
  std::printf("corpus generation took %.2f s  (%.2f instances/sec)\n",
              corpus_seconds,
              static_cast<double>(corpus.size()) / corpus_seconds);

  // -- 2. predictor (the paper's 20:80 split) -----------------------------
  Rng rng(5);
  const auto [train_idx, test_idx] = corpus.split_indices(0.2, rng);
  core::ParameterPredictor predictor;  // GPR, two-level features
  predictor.train(corpus, train_idx);
  std::printf("GPR predictor trained on %zu graphs\n\n", train_idx.size());

  // -- 3 & 4. naive vs two-level on held-out graphs ----------------------
  const int target_depth = 4;
  std::vector<double> naive_fc;
  std::vector<double> naive_ar;
  std::vector<double> ml_fc;
  std::vector<double> ml_ar;

  core::TwoLevelConfig flow;  // L-BFGS-B, ftol 1e-6
  for (const std::size_t t : test_idx) {
    const graph::Graph& problem = corpus.records()[t].problem;
    const core::MaxCutQaoa instance(problem, target_depth);

    const core::QaoaRun naive =
        core::solve_random_init(instance, flow.optimizer, rng, flow.options);
    naive_fc.push_back(static_cast<double>(naive.function_calls));
    naive_ar.push_back(naive.approximation_ratio);

    const core::AcceleratedRun accelerated =
        core::solve_two_level(problem, target_depth, predictor, flow, rng);
    ml_fc.push_back(static_cast<double>(accelerated.total_function_calls));
    ml_ar.push_back(accelerated.final.approximation_ratio);
  }

  std::printf("target depth p = %d over %zu held-out graphs:\n", target_depth,
              test_idx.size());
  std::printf("  naive:      mean FC %6.1f   mean AR %.4f\n",
              stats::mean(naive_fc), stats::mean(naive_ar));
  std::printf("  two-level:  mean FC %6.1f   mean AR %.4f\n",
              stats::mean(ml_fc), stats::mean(ml_ar));
  std::printf("  FC reduction: %.1f%%   (paper reports 44.9%% on average "
              "across optimizers and depths at full scale)\n",
              100.0 * (stats::mean(naive_fc) - stats::mean(ml_fc)) /
                  stats::mean(naive_fc));
  return 0;
}
