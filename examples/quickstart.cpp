// Quickstart: solve a MaxCut instance with QAOA in ~40 lines.
//
//   build/examples/quickstart
//
// Builds a random 8-node graph, runs the depth-3 QAOA loop with
// L-BFGS-B from 10 random initializations, and reads out the best cut
// from the optimized quantum state.
#include <cstdio>

#include "core/angles.hpp"
#include "core/qaoa_solver.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"

using namespace qaoaml;

int main() {
  // 1. A problem instance: an Erdos-Renyi graph, as in the paper.
  Rng rng(7);
  const graph::Graph problem = graph::erdos_renyi_gnp(8, 0.5, rng);
  std::printf("problem: %d nodes, %zu edges\n", problem.num_nodes(),
              problem.num_edges());

  // 2. A QAOA instance of depth p = 3 (6 variational angles).
  const core::MaxCutQaoa instance(problem, 3);
  std::printf("ansatz: %zu gates, schedule depth %d, %zu parameters\n",
              instance.ansatz().size(), instance.ansatz().depth(),
              instance.num_parameters());

  // 3. The classical optimization loop (Fig. 1(a) of the paper):
  //    best of 10 random initializations with L-BFGS-B, ftol 1e-6.
  const core::MultistartRuns runs = core::solve_multistart(
      instance, optim::OptimizerKind::kLbfgsb, 10, rng);
  std::printf("optimized <C> = %.4f of max cut %.0f  (AR = %.4f, "
              "%d total QC calls)\n",
              runs.best.expectation, instance.max_cut_value(),
              runs.best.approximation_ratio, runs.total_function_calls);

  // 4. Read out a solution: the most likely bitstring of the final state.
  const quantum::Statevector state = instance.state(runs.best.params);
  const std::vector<double> probs = state.probabilities();
  std::uint64_t best_z = 0;
  for (std::uint64_t z = 0; z < probs.size(); ++z) {
    if (probs[z] > probs[best_z]) best_z = z;
  }
  std::printf("most likely assignment: 0b");
  for (int q = problem.num_nodes() - 1; q >= 0; --q) {
    std::printf("%llu", static_cast<unsigned long long>((best_z >> q) & 1));
  }
  std::printf("  -> cut value %.0f\n", graph::cut_value(problem, best_z));

  // 5. Compare with the exact optimum (brute force).
  const graph::MaxCutResult exact = graph::max_cut_brute_force(problem);
  std::printf("exact MaxCut: %.0f\n", exact.value);
  return 0;
}
