// EDA scenario: balanced bipartitioning of a small netlist with QAOA
// over a general Ising objective.
//
// Min-cut balanced partitioning = maximize
//     sum_{(u,v) in nets} w_uv * [u, v on the same side]
//     - lambda * (imbalance)^2
// which in spin variables (s_i = +-1 for the two sides) is the Ising
// model
//     E(s) = const + sum_{(u,v)} (w_uv / 2) s_u s_v
//                  - 2 lambda sum_{i<j} s_i s_j .
// This uses the library's general IsingQaoa (couplings on *all* pairs:
// wire terms on nets, balance terms everywhere) plus the standard
// hybrid post-processing step: sample the optimized state and greedily
// refine the best sample with pairwise swaps.
//
//   build/examples/netlist_partitioning
#include <algorithm>
#include <cstdio>

#include "core/angles.hpp"
#include "core/ising_qaoa.hpp"
#include "graph/graph.hpp"
#include "graph/maxcut.hpp"
#include "optim/multistart.hpp"

using namespace qaoaml;

namespace {

/// A tiny synthetic standard-cell netlist: 8 cells, weighted nets
/// (weight = number of wires between the two cells).  Two natural
/// clusters {0..3} and {4..7} with sparse cross-cluster wiring.
graph::Graph demo_netlist() {
  graph::Graph g(8);
  g.add_edge(0, 1, 3.0);
  g.add_edge(0, 2, 2.0);
  g.add_edge(1, 3, 3.0);
  g.add_edge(2, 3, 2.0);
  g.add_edge(0, 3, 1.0);
  g.add_edge(4, 5, 3.0);
  g.add_edge(4, 6, 2.0);
  g.add_edge(5, 7, 2.0);
  g.add_edge(6, 7, 3.0);
  g.add_edge(1, 4, 1.0);
  g.add_edge(3, 6, 1.0);
  return g;
}

int side_count(std::uint64_t mask, int n) {
  int ones = 0;
  for (int i = 0; i < n; ++i) ones += (mask >> i) & 1;
  return ones;
}

/// Greedy refinement: swap one cell pair across the cut while it lowers
/// crossings (keeps balance by construction).
std::uint64_t refine_by_swaps(const graph::Graph& netlist,
                              std::uint64_t mask) {
  const int n = netlist.num_nodes();
  bool improved = true;
  while (improved) {
    improved = false;
    for (int a = 0; a < n && !improved; ++a) {
      if (((mask >> a) & 1) != 0) continue;
      for (int b = 0; b < n && !improved; ++b) {
        if (((mask >> b) & 1) != 1) continue;
        const std::uint64_t swapped =
            mask ^ (1ULL << a) ^ (1ULL << b);
        if (graph::cut_value(netlist, swapped) <
            graph::cut_value(netlist, mask)) {
          mask = swapped;
          improved = true;
        }
      }
    }
  }
  return mask;
}

}  // namespace

int main() {
  const graph::Graph netlist = demo_netlist();
  const int n = netlist.num_nodes();
  std::printf("netlist: %d cells, %zu nets, %.0f wires total\n", n,
              netlist.num_edges(), netlist.total_weight());

  // Balanced min-cut as a general Ising maximization.
  const double lambda = 1.0;
  ising::IsingModel model(n);
  model.set_constant(netlist.total_weight() / 2.0 - lambda * n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      double wire = 0.0;
      for (const graph::Edge& e : netlist.edges()) {
        if (e.u == u && e.v == v) wire = e.weight;
      }
      model.add_coupling(u, v, wire / 2.0 - 2.0 * lambda);
    }
  }

  const core::IsingQaoa instance(model, 3);
  std::printf("Ising ansatz: %zu gates over %zu pair couplings\n",
              instance.ansatz().size(), model.couplings().size());

  // The classical loop, composed from the optim layer directly.
  Rng rng(99);
  const optim::MultistartResult search = optim::multistart_minimize(
      optim::OptimizerKind::kLbfgsb, instance.objective(), instance.bounds(),
      12, rng);
  std::printf("QAOA (p=3, L-BFGS-B, best of 12): <E> = %.3f of max %.3f, "
              "%d QC calls\n",
              -search.best.fun, instance.max_value(), search.total_nfev);

  // Hardware-style readout + greedy swap refinement.
  const quantum::Statevector state = instance.state(search.best.x);
  std::uint64_t best_mask = 0;
  double best_energy = -1e300;
  for (const std::uint64_t z : state.sample(rng, 512)) {
    const double e = instance.hamiltonian().value(z);
    if (e > best_energy) {
      best_energy = e;
      best_mask = z;
    }
  }
  std::printf("best sampled partition: %d vs %d cells, %.0f crossing wires\n",
              n - side_count(best_mask, n), side_count(best_mask, n),
              graph::cut_value(netlist, best_mask));

  best_mask = refine_by_swaps(netlist, best_mask);
  std::printf("after greedy swap refinement: left = {");
  for (int cell = 0; cell < n; ++cell) {
    if (((best_mask >> cell) & 1) == 0) std::printf(" %d", cell);
  }
  std::printf(" }, crossings = %.0f\n", graph::cut_value(netlist, best_mask));

  // Exact reference: best balanced partition by brute force.
  double best_cross = 1e300;
  for (std::uint64_t z = 0; z < (1ULL << n); ++z) {
    if (side_count(z, n) != n / 2) continue;
    best_cross = std::min(best_cross, graph::cut_value(netlist, z));
  }
  std::printf("optimal balanced crossing count (brute force): %.0f\n",
              best_cross);
  return 0;
}
