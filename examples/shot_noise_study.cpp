// Extension study: what happens to the QAOA loop when the expectation
// is estimated from a finite number of measurement shots instead of the
// exact statevector value (the paper's simulator is exact; real
// hardware is not).
//
// Built on the first-class evaluation API (core/eval_spec.hpp): each
// shot count becomes a sampled EvalSpec, and the EvalSpec solver
// overloads supply what the hand-rolled version did manually — the
// noisy ftol/xtol preset, a seeded measurement stream per trial, and
// exact re-scoring of the final angles.
//
//   build/examples/shot_noise_study [shots...]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/cli.hpp"
#include "core/eval_spec.hpp"
#include "core/qaoa_solver.hpp"
#include "graph/generators.hpp"
#include "stats/descriptive.hpp"

using namespace qaoaml;

int main(int argc, char** argv) {
  std::vector<int> shot_counts{64, 256, 1024, 4096};
  if (argc > 1) {
    shot_counts.clear();
    for (int i = 1; i < argc; ++i) {
      int shots = 0;
      // Strict grammar: "1024" parses, "1024x", "+64" and "" do not —
      // a typo must fail loudly, not study atoi's idea of zero shots.
      if (!cli::to_int(argv[i], shots) || shots < 1) {
        std::fprintf(stderr,
                     "shot_noise_study: invalid shot count '%s' "
                     "(need a positive integer)\n",
                     argv[i]);
        return 2;
      }
      shot_counts.push_back(shots);
    }
  }

  Rng rng(31);
  const graph::Graph problem = graph::random_regular(8, 3, rng);
  const int depth = 2;
  const core::MaxCutQaoa instance(problem, depth);

  std::printf("depth-%d QAOA on a cubic 8-node graph; Nelder-Mead "
              "(derivative-free: finite-difference gradients would drown "
              "in shot noise)\n\n",
              depth);

  // Exact-objective reference.
  const core::MultistartRuns exact_runs = core::solve_multistart(
      instance, optim::OptimizerKind::kNelderMead, 5, rng);
  std::printf("exact objective:   AR %.4f (best of 5, %d calls)\n\n",
              exact_runs.best.approximation_ratio,
              exact_runs.total_function_calls);

  for (const int shots : shot_counts) {
    const core::EvalSpec spec = core::EvalSpec::sampled_with(
        shots, 1000 + static_cast<std::uint64_t>(shots));
    Rng trial_rng(spec.seed);

    std::vector<double> final_ar;
    for (int trial = 0; trial < 5; ++trial) {
      // solve_random_init draws the start and the trial's measurement
      // stream from trial_rng, applies the noisy ftol/xtol preset, and
      // reports the exact expectation at the returned angles.
      const core::QaoaRun run =
          core::solve_random_init(instance, optim::OptimizerKind::kNelderMead,
                                  trial_rng, spec);
      final_ar.push_back(run.approximation_ratio);
    }
    std::printf("%5d shots/call:  mean final AR %.4f (SD %.4f)\n", shots,
                stats::mean(final_ar), stats::stddev(final_ar));
  }

  std::printf("\nreading: with few shots the optimizer chases sampling "
              "noise and the true AR stalls; the exact-simulation setting "
              "of the paper is the infinite-shot limit.\n");
  return 0;
}
