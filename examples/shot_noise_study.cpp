// Extension study: what happens to the QAOA loop when the expectation
// is estimated from a finite number of measurement shots instead of the
// exact statevector value (the paper's simulator is exact; real
// hardware is not).
//
//   build/examples/shot_noise_study [shots...]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/angles.hpp"
#include "core/qaoa_solver.hpp"
#include "graph/generators.hpp"
#include "stats/descriptive.hpp"

using namespace qaoaml;

int main(int argc, char** argv) {
  std::vector<int> shot_counts{64, 256, 1024, 4096};
  if (argc > 1) {
    shot_counts.clear();
    for (int i = 1; i < argc; ++i) shot_counts.push_back(std::atoi(argv[i]));
  }

  Rng rng(31);
  const graph::Graph problem = graph::random_regular(8, 3, rng);
  const int depth = 2;
  const core::MaxCutQaoa instance(problem, depth);

  std::printf("depth-%d QAOA on a cubic 8-node graph; Nelder-Mead "
              "(derivative-free: finite-difference gradients would drown "
              "in shot noise)\n\n",
              depth);

  // Exact-objective reference.
  const core::MultistartRuns exact_runs = core::solve_multistart(
      instance, optim::OptimizerKind::kNelderMead, 5, rng);
  std::printf("exact objective:   AR %.4f (best of 5, %d calls)\n\n",
              exact_runs.best.approximation_ratio,
              exact_runs.total_function_calls);

  for (const int shots : shot_counts) {
    // The sampling objective: same circuit, Born-rule estimate of <C>.
    Rng shot_rng(1000 + static_cast<std::uint64_t>(shots));
    const optim::ObjectiveFn noisy = [&](std::span<const double> params) {
      return -instance.sampled_expectation(params, shots, shot_rng);
    };

    std::vector<double> final_ar;
    for (int trial = 0; trial < 5; ++trial) {
      const std::vector<double> x0 = core::random_angles(depth, shot_rng);
      optim::Options options;
      options.ftol = 1e-3;  // resolving 1e-6 under shot noise is hopeless
      options.xtol = 1e-2;
      const optim::OptimResult result =
          optim::minimize(optim::OptimizerKind::kNelderMead, noisy, x0,
                          instance.bounds(), options);
      // Score the returned angles with the *exact* expectation.
      final_ar.push_back(instance.approximation_ratio(result.x));
    }
    std::printf("%5d shots/call:  mean final AR %.4f (SD %.4f)\n", shots,
                stats::mean(final_ar), stats::stddev(final_ar));
  }

  std::printf("\nreading: with few shots the optimizer chases sampling "
              "noise and the true AR stalls; the exact-simulation setting "
              "of the paper is the infinite-shot limit.\n");
  return 0;
}
