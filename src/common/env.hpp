// Environment-variable configuration knobs.
//
// Benchmarks accept QAOAML_* environment variables to scale workloads
// (graph counts, restart counts) between quick CI runs and the paper's
// full-scale settings.  These helpers parse them with defaults.
#ifndef QAOAML_COMMON_ENV_HPP
#define QAOAML_COMMON_ENV_HPP

#include <string>

namespace qaoaml {

/// Returns the integer value of environment variable `name`, or
/// `fallback` when unset or unparsable.
int env_int(const char* name, int fallback);

/// Returns the double value of environment variable `name`, or
/// `fallback` when unset or unparsable.
double env_double(const char* name, double fallback);

/// Returns the string value of environment variable `name`, or
/// `fallback` when unset.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace qaoaml

#endif  // QAOAML_COMMON_ENV_HPP
