// Environment-variable configuration knobs.
//
// Benchmarks accept QAOAML_* environment variables to scale workloads
// (graph counts, restart counts) between quick CI runs and the paper's
// full-scale settings.  These helpers parse them with defaults.
#ifndef QAOAML_COMMON_ENV_HPP
#define QAOAML_COMMON_ENV_HPP

#include <string>

namespace qaoaml {

/// Returns the integer value of environment variable `name`, or
/// `fallback` when unset or unparsable.  Parsing follows the strict
/// cli::to_int contract: out-of-int-range values (QAOAML_THREADS=
/// 99999999999), trailing garbage, leading whitespace and a leading
/// '+' all fall back instead of silently truncating.
int env_int(const char* name, int fallback);

/// Returns the double value of environment variable `name`, or
/// `fallback` when unset or unparsable (strict cli::to_double
/// semantics, like env_int).
double env_double(const char* name, double fallback);

/// Returns the string value of environment variable `name`, or
/// `fallback` when unset.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace qaoaml

#endif  // QAOAML_COMMON_ENV_HPP
