#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "common/env.hpp"
#include "common/error.hpp"

namespace qaoaml {
namespace {

std::atomic<int> thread_override{0};

thread_local bool tls_in_parallel_region = false;

/// Persistent worker pool.  Workers sleep on a condition variable
/// between jobs; one job (a dynamically dispatched index range) runs at
/// a time, with the submitting thread participating in the work.  The
/// pool grows on demand up to the largest thread count ever requested,
/// so QAOAML_THREADS / ScopedThreadCount values above the hardware
/// concurrency still exercise real threads.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  void run(std::size_t count, int threads,
           const std::function<void(std::size_t)>& body) {
    const std::lock_guard<std::mutex> run_lock(run_mutex_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ensure_workers_locked(threads - 1);
      body_ = &body;
      count_ = count;
      next_.store(0, std::memory_order_relaxed);
      open_slots_ = threads - 1;
      running_ = 0;
      error_ = nullptr;
      ++job_id_;
    }
    work_available_.notify_all();

    // The submitting thread is one of the workers.
    tls_in_parallel_region = true;
    drain();
    tls_in_parallel_region = false;

    std::unique_lock<std::mutex> lock(mutex_);
    job_done_.wait(lock, [this] { return running_ == 0; });
    body_ = nullptr;
    const std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    if (error) std::rethrow_exception(error);
  }

 private:
  ThreadPool() = default;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    work_available_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void ensure_workers_locked(int wanted) {
    // Bounded so a wild QAOAML_THREADS cannot fork-bomb the process.
    constexpr int kMaxWorkers = 256;
    wanted = std::min(wanted, kMaxWorkers);
    while (static_cast<int>(workers_.size()) < wanted) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  /// Pulls indices until the job is exhausted.
  void drain() {
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count_) return;
      try {
        (*body_)(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
    }
  }

  void worker_loop() {
    tls_in_parallel_region = true;
    std::unique_lock<std::mutex> lock(mutex_);
    std::uint64_t seen = 0;
    for (;;) {
      work_available_.wait(
          lock, [&] { return shutdown_ || job_id_ != seen; });
      if (shutdown_) return;
      seen = job_id_;
      // Participate only while the job wants more workers and still has
      // unclaimed indices (late wake-ups skip straight back to sleep).
      if (open_slots_ <= 0 ||
          next_.load(std::memory_order_relaxed) >= count_) {
        continue;
      }
      --open_slots_;
      ++running_;
      lock.unlock();
      drain();
      lock.lock();
      if (--running_ == 0) job_done_.notify_all();
    }
  }

  std::mutex run_mutex_;  ///< serializes whole jobs

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable job_done_;
  std::vector<std::thread> workers_;
  bool shutdown_ = false;

  // Current job (guarded by mutex_ except for the atomic cursor).
  std::uint64_t job_id_ = 0;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  int open_slots_ = 0;  ///< worker-participation slots left for this job
  int running_ = 0;     ///< workers currently inside drain()
  std::exception_ptr error_;
};

}  // namespace

int default_thread_count() {
  const int override_value = thread_override.load(std::memory_order_relaxed);
  if (override_value > 0) return override_value;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int from_env = env_int("QAOAML_THREADS", hw > 0 ? hw : 1);
  return from_env > 0 ? from_env : 1;
}

bool in_parallel_region() { return tls_in_parallel_region; }

ScopedThreadCount::ScopedThreadCount(int threads) : previous_(0) {
  require(threads >= 1, "ScopedThreadCount: need at least one thread");
  previous_ = thread_override.exchange(threads, std::memory_order_relaxed);
}

ScopedThreadCount::~ScopedThreadCount() {
  thread_override.store(previous_, std::memory_order_relaxed);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body, int threads) {
  if (count == 0) return;
  if (threads <= 1 || count == 1 || tls_in_parallel_region) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  ThreadPool::instance().run(
      count, static_cast<int>(std::min<std::size_t>(
                 static_cast<std::size_t>(threads), count)),
      body);
}

void parallel_for_range(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body, int threads) {
  if (count == 0) return;
  const std::size_t blocks = (count + kParallelGrain - 1) / kParallelGrain;
  if (threads <= 1 || blocks <= 1 || tls_in_parallel_region) {
    body(0, count);
    return;
  }
  parallel_for(
      blocks,
      [&](std::size_t b) {
        const std::size_t begin = b * kParallelGrain;
        body(begin, std::min(count, begin + kParallelGrain));
      },
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(threads), blocks)));
}

}  // namespace qaoaml
