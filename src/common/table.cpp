#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace qaoaml {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "Table: header must not be empty");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == header_.size(),
          "Table::add_row: cell count must match header");
  rows_.push_back(std::move(cells));
}

void Table::add_separator() { rows_.emplace_back(); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto print_line = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  const auto print_rule = [&] {
    os << "+";
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  print_rule();
  print_line(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
    } else {
      print_line(row);
    }
  }
  print_rule();
}

std::string Table::num(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string Table::num(long long value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld", value);
  return buffer;
}

}  // namespace qaoaml
