#include "common/wire.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "common/signals.hpp"
#include "common/socket.hpp"

namespace qaoaml::wire {
namespace {

constexpr char kMagic[4] = {'Q', 'W', 'R', 'E'};

void put_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

std::uint32_t get_u32(const unsigned char* bytes) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
  }
  return value;
}

std::uint64_t get_u64(const unsigned char* bytes) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  return value;
}

/// Validates the 28-byte header; returns (type, payload size, checksum).
struct Header {
  std::uint32_t type = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;
};

Header parse_header(const unsigned char* raw) {
  if (std::memcmp(raw, kMagic, sizeof(kMagic)) != 0) {
    throw InvalidArgument("wire: bad frame magic (not a QWRE stream)");
  }
  const std::uint32_t version = get_u32(raw + 4);
  if (version != kVersion) {
    throw InvalidArgument("wire: unsupported frame version " +
                          std::to_string(version) + " (want " +
                          std::to_string(kVersion) + ")");
  }
  Header header;
  header.type = get_u32(raw + 8);
  header.payload_bytes = get_u64(raw + 12);
  header.checksum = get_u64(raw + 20);
  if (header.payload_bytes > kMaxPayloadBytes) {
    throw InvalidArgument("wire: frame payload of " +
                          std::to_string(header.payload_bytes) +
                          " bytes exceeds the " +
                          std::to_string(kMaxPayloadBytes) + "-byte bound");
  }
  return header;
}

}  // namespace

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string encode_frame(std::uint32_t type, std::string_view payload) {
  require(payload.size() <= kMaxPayloadBytes,
          "wire: refusing to encode an oversized frame");
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kVersion);
  put_u32(out, type);
  put_u64(out, payload.size());
  put_u64(out, fnv1a(payload));
  out.append(payload);
  return out;
}

Frame decode_frame(std::string_view bytes) {
  if (bytes.size() < kHeaderBytes) {
    throw InvalidArgument("wire: truncated frame header");
  }
  const Header header =
      parse_header(reinterpret_cast<const unsigned char*>(bytes.data()));
  if (bytes.size() < kHeaderBytes + header.payload_bytes) {
    throw InvalidArgument("wire: truncated frame payload");
  }
  Frame frame;
  frame.type = header.type;
  frame.payload.assign(bytes.substr(kHeaderBytes, header.payload_bytes));
  if (fnv1a(frame.payload) != header.checksum) {
    throw InvalidArgument("wire: frame checksum mismatch (corrupt payload)");
  }
  return frame;
}

bool send_frame(int fd, std::uint32_t type, std::string_view payload) {
  // Belt and braces: MSG_NOSIGNAL covers send(2) on Linux, the ignored
  // disposition covers any exotic path that still raises.
  ignore_sigpipe();
  const std::string frame = encode_frame(type, payload);
  return net::send_all(fd, frame.data(), frame.size());
}

RecvResult recv_frame(int fd, Frame& out) {
  unsigned char header_raw[kHeaderBytes];
  switch (net::recv_exact(fd, header_raw, sizeof(header_raw))) {
    case net::RecvStatus::kOk:
      break;
    case net::RecvStatus::kEof:
      return RecvResult::kEof;
    case net::RecvStatus::kEofMidway:
      throw Error("wire: peer closed mid-header");
  }
  const Header header = parse_header(header_raw);
  out.type = header.type;
  out.payload.assign(header.payload_bytes, '\0');
  if (header.payload_bytes > 0 &&
      net::recv_exact(fd, out.payload.data(), out.payload.size()) !=
          net::RecvStatus::kOk) {
    throw Error("wire: peer closed mid-payload");
  }
  if (fnv1a(out.payload) != header.checksum) {
    throw InvalidArgument("wire: frame checksum mismatch (corrupt payload)");
  }
  return RecvResult::kFrame;
}

void PayloadWriter::u32(std::uint32_t value) { put_u32(bytes_, value); }
void PayloadWriter::u64(std::uint64_t value) { put_u64(bytes_, value); }

void PayloadWriter::i32(std::int32_t value) {
  put_u32(bytes_, static_cast<std::uint32_t>(value));
}

void PayloadWriter::f64(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  put_u64(bytes_, bits);
}

void PayloadWriter::str(std::string_view value) {
  put_u64(bytes_, value.size());
  bytes_.append(value);
}

void PayloadWriter::vec_f64(const std::vector<double>& values) {
  put_u64(bytes_, values.size());
  for (const double v : values) f64(v);
}

const unsigned char* PayloadReader::take(std::size_t count) {
  if (at_ + count > bytes_.size()) {
    throw InvalidArgument("wire: truncated payload");
  }
  const auto* at = reinterpret_cast<const unsigned char*>(bytes_.data()) + at_;
  at_ += count;
  return at;
}

std::uint32_t PayloadReader::u32() { return get_u32(take(4)); }
std::uint64_t PayloadReader::u64() { return get_u64(take(8)); }

std::int32_t PayloadReader::i32() {
  return static_cast<std::int32_t>(get_u32(take(4)));
}

double PayloadReader::f64() {
  const std::uint64_t bits = get_u64(take(8));
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string PayloadReader::str(std::uint64_t max_bytes) {
  const std::uint64_t count = u64();
  if (count > max_bytes) {
    throw InvalidArgument("wire: string length " + std::to_string(count) +
                          " exceeds the bound of " + std::to_string(max_bytes));
  }
  const unsigned char* at = take(static_cast<std::size_t>(count));
  return std::string(reinterpret_cast<const char*>(at),
                     static_cast<std::size_t>(count));
}

std::vector<double> PayloadReader::vec_f64(std::uint64_t max_elems) {
  const std::uint64_t count = u64();
  if (count > max_elems) {
    throw InvalidArgument("wire: vector length " + std::to_string(count) +
                          " exceeds the bound of " + std::to_string(max_elems));
  }
  std::vector<double> values(static_cast<std::size_t>(count));
  for (double& v : values) v = f64();
  return values;
}

void PayloadReader::expect_end() const {
  if (at_ != bytes_.size()) {
    throw InvalidArgument("wire: " + std::to_string(bytes_.size() - at_) +
                          " trailing payload bytes after the last field");
  }
}

}  // namespace qaoaml::wire
