// Child-process primitive for the multi-process shard orchestrator
// (core/shard_orchestrator.hpp, tools/launch).
//
// A Subprocess is fork+execvp with the child's stdout AND stderr
// multiplexed into one pipe the parent reads line by line — the shard
// workers speak a line-framed protocol (common/shard_protocol.hpp), so
// lines are the natural unit, and folding stderr in means a worker's
// error text arrives through the same ordered stream instead of racing
// it.  Reads take a timeout (poll(2)) so a monitor can interleave
// "did it say anything?" with heartbeat/stall bookkeeping without
// dedicating a thread per pipe.
#ifndef QAOAML_COMMON_SUBPROCESS_HPP
#define QAOAML_COMMON_SUBPROCESS_HPP

#include <sys/types.h>

#include <string>
#include <utility>
#include <vector>

namespace qaoaml {

class Subprocess {
 public:
  /// How a child ended.  `code` is the exit status when `exited`, the
  /// terminating signal number when `signaled`.
  struct ExitStatus {
    bool exited = false;
    bool signaled = false;
    int code = 0;

    bool success() const { return exited && code == 0; }
    /// "exit 3" / "signal 9 (SIGKILL)" — for failure messages.
    std::string describe() const;
  };

  enum class ReadResult {
    kLine,     ///< a complete line was returned (newline stripped)
    kTimeout,  ///< nothing arrived within the timeout
    kEof       ///< pipe closed and buffer drained; wait() next
  };

  /// Spawns argv[0] (PATH-resolved) with the given arguments.  `env`
  /// entries are setenv'd in the child between fork and exec, on top
  /// of the inherited environment.  Throws InvalidArgument when the
  /// pipe or fork fails; an unexecutable binary surfaces as exit code
  /// 127 from wait() (the exec error text arrives through the pipe).
  static Subprocess spawn(
      const std::vector<std::string>& argv,
      const std::vector<std::pair<std::string, std::string>>& env = {});

  Subprocess() = default;
  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  /// Kills (SIGKILL) and reaps a child still running — a dropped
  /// handle must not leak a worker process.
  ~Subprocess();

  bool valid() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }

  /// Returns the next complete output line within `timeout_ms`
  /// (newline stripped; a final unterminated line is delivered before
  /// kEof so a crashing child's last words are not lost).
  ReadResult read_line(std::string& line, int timeout_ms);

  /// Blocks until the child exits and reaps it.  Idempotent: after the
  /// first call the stored status is returned.
  ExitStatus wait();

  /// Non-blocking reap; true (with `status` filled) once the child has
  /// exited.
  bool try_wait(ExitStatus& status);

  /// Sends `signum` (default SIGKILL).  No-op after the child has been
  /// reaped.
  void kill(int signum);
  void kill();

 private:
  pid_t pid_ = -1;
  int stdout_fd_ = -1;
  bool reaped_ = false;
  ExitStatus status_{};
  std::string buffer_;   ///< bytes read but not yet returned as lines
  bool saw_eof_ = false;

  void close_stdout();
  bool pop_buffered_line(std::string& line);
};

}  // namespace qaoaml

#endif  // QAOAML_COMMON_SUBPROCESS_HPP
