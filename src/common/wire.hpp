// Length-prefixed binary framing for the serving protocol
// (core/serving.hpp, tools/qaoad) — the socket sibling of the
// ml/serialize.hpp file framing, with the same validate-before-trust
// posture.
//
// Frame layout (all integers little-endian, doubles as IEEE-754 bit
// patterns):
//
//   [0..3]   magic   "QWRE"
//   [4..7]   u32     wire-format version (currently 1)
//   [8..11]  u32     frame type (protocol-defined, opaque here)
//   [12..19] u64     payload size in bytes
//   [20..27] u64     FNV-1a checksum of the payload bytes
//   [28.. ]          payload
//
// The header is validated before a single payload byte is interpreted:
// wrong magic, unknown version, an oversized length or a checksum
// mismatch each throw InvalidArgument naming the problem — a truncated
// or corrupted frame can never be half-delivered as a valid request.
//
// Transport contract:
//  - send_frame never raises SIGPIPE (MSG_NOSIGNAL) and reports a
//    vanished peer (EPIPE/ECONNRESET) as `false`, so a server thread
//    answering a disconnected client just drops the response;
//  - recv_frame distinguishes a clean EOF on a frame boundary (kEof,
//    the peer hung up between requests) from EOF mid-frame (an error:
//    the peer died mid-send).
//
// PayloadWriter/PayloadReader build and parse payload bytes with the
// endianness-pinned primitive layout of ml/serialize.hpp's io helpers;
// every read is bounds-checked and throws on truncation, so a payload
// parser never indexes past the frame.
#ifndef QAOAML_COMMON_WIRE_HPP
#define QAOAML_COMMON_WIRE_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace qaoaml::wire {

inline constexpr std::uint32_t kVersion = 1;
/// Frames beyond this are rejected before allocation — a corrupt length
/// field must surface as a protocol error, not a multi-GB allocation.
inline constexpr std::uint64_t kMaxPayloadBytes = 16ull << 20;
inline constexpr std::size_t kHeaderBytes = 28;

struct Frame {
  std::uint32_t type = 0;
  std::string payload;
};

/// FNV-1a over the payload bytes (the header checksum).
std::uint64_t fnv1a(std::string_view bytes);

/// Header + payload as one contiguous byte string (pure; used by
/// send_frame and directly testable without a socket).
std::string encode_frame(std::uint32_t type, std::string_view payload);

/// Validates and strips one complete frame from `bytes`.  Throws
/// InvalidArgument on bad magic/version/length/checksum or when `bytes`
/// is shorter than the frame it announces.
Frame decode_frame(std::string_view bytes);

/// Sends one frame on a socket fd.  Returns false when the peer is gone
/// (EPIPE/ECONNRESET — never SIGPIPE); throws Error on any other send
/// failure.
bool send_frame(int fd, std::uint32_t type, std::string_view payload);

enum class RecvResult {
  kFrame,  ///< one complete validated frame in `out`
  kEof,    ///< clean EOF on a frame boundary (peer hung up)
};

/// Reads exactly one frame.  Throws InvalidArgument on a malformed
/// header or checksum mismatch, Error on EOF mid-frame or I/O failure.
RecvResult recv_frame(int fd, Frame& out);

/// Appends little-endian primitives to a payload byte string.
class PayloadWriter {
 public:
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void i32(std::int32_t value);
  void f64(double value);
  /// u64 length prefix + raw bytes.
  void str(std::string_view value);
  /// u64 length prefix + elements.
  void vec_f64(const std::vector<double>& values);

  const std::string& bytes() const { return bytes_; }

 private:
  std::string bytes_;
};

/// Bounds-checked little-endian reads over a payload.  Every method
/// throws InvalidArgument("wire: truncated payload") when the payload
/// is shorter than the value it announces.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  double f64();
  /// `max_bytes` bounds the length prefix (corrupt count -> error, not
  /// a huge allocation).
  std::string str(std::uint64_t max_bytes = kMaxPayloadBytes);
  std::vector<double> vec_f64(std::uint64_t max_elems = 1u << 20);

  /// Throws unless the payload was consumed exactly — trailing garbage
  /// after the announced fields is a protocol bug, not padding.
  void expect_end() const;

  /// True once every payload byte has been consumed.  The hook for
  /// versioned optional trailing blocks: a decoder reads the required
  /// fields, then parses extensions only if bytes remain, so payloads
  /// from older encoders (no block) stay valid on the same socket.
  bool at_end() const { return at_ == bytes_.size(); }

 private:
  const unsigned char* take(std::size_t count);

  std::string_view bytes_;
  std::size_t at_ = 0;
};

}  // namespace qaoaml::wire

#endif  // QAOAML_COMMON_WIRE_HPP
