// Crash-safe file primitives shared by the checkpointed shard pipelines
// (corpus generation in core/corpus_pipeline.hpp, the sharded Table-I
// experiment in core/experiment.hpp).
//
// Both pipelines follow the same on-disk contract: a shard streams
// results to a data file, a resume validates the longest usable prefix
// and rewrites the file down to it *atomically* before appending, and a
// process-lifetime advisory lock makes concurrent duplicate invocations
// of one shard fail fast.  These are the two primitives that contract
// rests on.
#ifndef QAOAML_COMMON_CHECKPOINT_HPP
#define QAOAML_COMMON_CHECKPOINT_HPP

#include <iosfwd>
#include <string>

namespace qaoaml {

/// Advisory per-file exclusive lock (flock on the given path) so two
/// concurrent owners of one checkpointed resource fail fast instead of
/// interleaving writes.  flock is released by the kernel when the
/// process dies — including SIGKILL — so a crashed run never leaves a
/// stale lock that would block the resume the pipelines are built
/// around.  Throws InvalidArgument when the lock is already held by
/// another process.
class FileLock {
 public:
  explicit FileLock(const std::string& path);
  ~FileLock();
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  int fd_;
};

/// True when another process currently holds the FileLock at `path`
/// (non-blocking probe; acquires and immediately releases on a free
/// lock).  A missing lock file counts as unlocked.  The orchestrator
/// uses this to tell a dead worker (lock released by the kernel) from
/// a live-but-silent one before retrying its shard.
bool is_locked(const std::string& path);

/// Writes `content` to `path` atomically AND durably: the bytes go to a
/// PID-suffixed temp file (binary mode, matching the binary-mode no-op
/// comparison below) which is fsync'd before the rename, and the
/// parent directory is fsync'd after it — so neither a kill mid-rewrite
/// nor a power cut right after the call can leave the file shorter
/// than before.  A file that already holds exactly `content` is left
/// untouched — the common no-op resume of a complete shard then costs a
/// read, not a rewrite (which matters on shared storage).  On a failed
/// write (e.g. disk full) or a failed rename the temp file is removed
/// before rethrowing.
void replace_file_atomic(const std::string& path, const std::string& content);

/// std::getline that additionally rejects a torn trailing line: returns
/// true only when the line was terminated by '\n'.  A kill mid-write
/// (or any truncation) can cut the final line inside its LAST numeric
/// token, leaving text that still parses cleanly — e.g. "... 13" torn
/// to "... 1" — so "does it parse" cannot detect the tear; the missing
/// newline can.  Every resume parser must read unit lines through this,
/// never through raw std::getline.
bool getline_complete(std::istream& is, std::string& line);

}  // namespace qaoaml

#endif  // QAOAML_COMMON_CHECKPOINT_HPP
