// Process-wide signal plumbing shared by the serving daemon
// (tools/qaoad), the orchestrator's subprocess layer (common/subprocess)
// and the wire clients.
//
// Three concerns live here:
//  - ignore_sigpipe(): any process that writes to a pipe or socket whose
//    peer can vanish at any moment (the orchestrator writing toward a
//    dead worker, qaoad answering a client that already disconnected)
//    must not be killed by SIGPIPE; the write has to fail with EPIPE so
//    the caller can handle it per-connection.  Idempotent and
//    thread-safe — every spawn/serve entry point just calls it.
//  - signal_name(): ::strsignal is allowed to format into a static
//    buffer and is therefore not thread-safe; the orchestrator's K
//    concurrent monitor threads describe dead workers concurrently, so
//    they need this static table instead.
//  - SignalWaiter: sigwait-style delivery of chosen signals to a
//    callback on a dedicated thread.  The daemon uses it for SIGHUP
//    (hot bank reload) and SIGTERM/SIGINT (drain + exit): the handler
//    runs as ordinary code on the waiter thread, not in async-signal
//    context, so it may lock, allocate and log.
#ifndef QAOAML_COMMON_SIGNALS_HPP
#define QAOAML_COMMON_SIGNALS_HPP

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

namespace qaoaml {

/// Installs SIG_IGN for SIGPIPE process-wide (writes to dead peers then
/// fail with EPIPE instead of killing the process).  Idempotent,
/// thread-safe, never fails.
void ignore_sigpipe();

/// Static, thread-safe signal-name lookup ("SIGKILL" for 9); nullptr
/// for numbers outside the portable table.  Unlike ::strsignal, safe to
/// call from many threads at once.
const char* signal_name(int signum);

/// Blocks `signals` in the constructing thread (threads created
/// afterwards inherit the mask) and delivers each arrival to `handler`
/// from one dedicated thread.  Construct BEFORE spawning worker
/// threads, or the signals may be delivered to a thread that does not
/// have them blocked and bypass the waiter.
class SignalWaiter {
 public:
  SignalWaiter(const std::vector<int>& signals,
               std::function<void(int)> handler);
  ~SignalWaiter();
  SignalWaiter(const SignalWaiter&) = delete;
  SignalWaiter& operator=(const SignalWaiter&) = delete;

 private:
  std::function<void(int)> handler_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace qaoaml

#endif  // QAOAML_COMMON_SIGNALS_HPP
