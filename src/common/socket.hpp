// Unix-domain socket helpers for the serving daemon and its clients
// (common/wire.hpp frames ride on these).
//
// Deliberately minimal: RAII fd ownership, listen/connect/accept with
// EINTR handling, and exact-count send/recv loops that never raise
// SIGPIPE (MSG_NOSIGNAL; a vanished peer surfaces as a return value,
// not a process-killing signal).  Protocol framing lives in
// common/wire.hpp, serving policy in core/serving.hpp.
#ifndef QAOAML_COMMON_SOCKET_HPP
#define QAOAML_COMMON_SOCKET_HPP

#include <cstddef>
#include <string>

namespace qaoaml::net {

/// Owning file-descriptor handle (close-on-destroy, move-only).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Closes the current fd (if any) and takes ownership of `fd`.
  void reset(int fd = -1);
  /// Releases ownership without closing.
  int release();

 private:
  int fd_ = -1;
};

/// Binds and listens on a Unix-domain socket at `path`, removing a
/// stale socket file first.  Throws Error on failure (path too long for
/// sockaddr_un, bind/listen errors).
Fd unix_listen(const std::string& path, int backlog);

/// Connects to the Unix-domain socket at `path`.  Throws Error when the
/// daemon is not there or the path is invalid.
Fd unix_connect(const std::string& path);

/// Accepts one connection; retries EINTR.  Returns an invalid Fd once
/// the listening socket has been closed or shut down (the server's
/// shutdown path), throws Error on other failures.
Fd accept_client(int listen_fd);

/// Writes exactly `size` bytes (MSG_NOSIGNAL).  Returns false when the
/// peer is gone (EPIPE/ECONNRESET); throws Error on other failures.
bool send_all(int fd, const void* data, std::size_t size);

enum class RecvStatus {
  kOk,        ///< exactly `size` bytes read
  kEof,       ///< clean EOF before the first byte
  kEofMidway  ///< EOF after some bytes — the peer died mid-message
};

/// Reads exactly `size` bytes.  Throws Error on I/O failure; a peer
/// reset (ECONNRESET) is reported as EOF, not an error — a vanished
/// client is routine for a long-lived daemon.
RecvStatus recv_exact(int fd, void* data, std::size_t size);

}  // namespace qaoaml::net

#endif  // QAOAML_COMMON_SOCKET_HPP
