#include "common/subprocess.hpp"

#include <csignal>
#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "common/signals.hpp"

namespace qaoaml {

std::string Subprocess::ExitStatus::describe() const {
  if (exited) return "exit " + std::to_string(code);
  if (signaled) {
    // signal_name, not ::strsignal: describe() runs concurrently on the
    // orchestrator's K monitor threads, and strsignal may format into a
    // shared static buffer.
    const char* name = signal_name(code);
    return "signal " + std::to_string(code) +
           (name != nullptr ? " (" + std::string(name) + ")" : "");
  }
  return "unknown status";
}

Subprocess Subprocess::spawn(
    const std::vector<std::string>& argv,
    const std::vector<std::pair<std::string, std::string>>& env) {
  require(!argv.empty(), "Subprocess::spawn: empty argv");

  // Any process that spawns workers ends up writing toward pipes whose
  // reader can die at any moment; a SIGPIPE there must surface as EPIPE
  // on the write, not kill the whole orchestrator.
  ignore_sigpipe();

  int fds[2];
  require(::pipe2(fds, O_CLOEXEC) == 0,
          "Subprocess::spawn: pipe failed (" + std::string(strerror(errno)) +
              ")");

  // The exec arguments must be materialized BEFORE fork: the child may
  // not allocate (a fork of a multithreaded parent only guarantees
  // async-signal-safe calls, and malloc is not one).
  std::vector<char*> args;
  args.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    args.push_back(const_cast<char*>(arg.c_str()));
  }
  args.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw InvalidArgument("Subprocess::spawn: fork failed (" +
                          std::string(strerror(errno)) + ")");
  }

  if (pid == 0) {
    // Child: stdout and stderr both feed the parent's pipe; the read
    // end and the original write end close via O_CLOEXEC on exec.
    ::dup2(fds[1], STDOUT_FILENO);
    ::dup2(fds[1], STDERR_FILENO);
    for (const auto& [name, value] : env) {
      ::setenv(name.c_str(), value.c_str(), 1);
    }
    // SIG_IGN survives execvp; the parent's SIGPIPE immunity must not
    // leak into arbitrary child programs (a shell pipeline in a worker
    // relies on SIGPIPE to terminate early producers).
    ::signal(SIGPIPE, SIG_DFL);
    ::execvp(args[0], args.data());
    // Only reached when exec failed; report through the pipe and use
    // the shell's "command not found" convention.
    const char* msg = "exec failed: ";
    (void)!::write(STDERR_FILENO, msg, strlen(msg));
    (void)!::write(STDERR_FILENO, args[0], strlen(args[0]));
    (void)!::write(STDERR_FILENO, "\n", 1);
    ::_exit(127);
  }

  ::close(fds[1]);
  Subprocess child;
  child.pid_ = pid;
  child.stdout_fd_ = fds[0];
  return child;
}

Subprocess::Subprocess(Subprocess&& other) noexcept { *this = std::move(other); }

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this != &other) {
    this->~Subprocess();
    pid_ = other.pid_;
    stdout_fd_ = other.stdout_fd_;
    reaped_ = other.reaped_;
    status_ = other.status_;
    buffer_ = std::move(other.buffer_);
    saw_eof_ = other.saw_eof_;
    other.pid_ = -1;
    other.stdout_fd_ = -1;
    other.reaped_ = true;
  }
  return *this;
}

Subprocess::~Subprocess() {
  if (valid() && !reaped_) {
    ::kill(pid_, SIGKILL);
    int status = 0;
    while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
    }
    reaped_ = true;
  }
  close_stdout();
}

void Subprocess::close_stdout() {
  if (stdout_fd_ >= 0) {
    ::close(stdout_fd_);
    stdout_fd_ = -1;
  }
}

bool Subprocess::pop_buffered_line(std::string& line) {
  const std::size_t newline = buffer_.find('\n');
  if (newline == std::string::npos) return false;
  line.assign(buffer_, 0, newline);
  buffer_.erase(0, newline + 1);
  return true;
}

Subprocess::ReadResult Subprocess::read_line(std::string& line,
                                             int timeout_ms) {
  require(valid(), "Subprocess::read_line: no child");
  if (pop_buffered_line(line)) return ReadResult::kLine;
  if (saw_eof_ || stdout_fd_ < 0) {
    // Deliver a final line the child never newline-terminated (its
    // last words before a crash) exactly once.
    if (!buffer_.empty()) {
      line = std::move(buffer_);
      buffer_.clear();
      return ReadResult::kLine;
    }
    return ReadResult::kEof;
  }

  struct pollfd pfd {};
  pfd.fd = stdout_fd_;
  pfd.events = POLLIN;
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw InvalidArgument("Subprocess::read_line: poll failed (" +
                            std::string(strerror(errno)) + ")");
    }
    if (ready == 0) return ReadResult::kTimeout;

    char chunk[4096];
    const ssize_t n = ::read(stdout_fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw InvalidArgument("Subprocess::read_line: read failed (" +
                            std::string(strerror(errno)) + ")");
    }
    if (n == 0) {
      saw_eof_ = true;
      close_stdout();
      if (!buffer_.empty()) {
        line = std::move(buffer_);
        buffer_.clear();
        return ReadResult::kLine;
      }
      return ReadResult::kEof;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
    if (pop_buffered_line(line)) return ReadResult::kLine;
    // A partial line arrived; poll again within the SAME call.  The
    // timeout restarts, which is fine — callers use it as an activity
    // bound, and bytes arriving IS activity.
  }
}

Subprocess::ExitStatus Subprocess::wait() {
  require(valid(), "Subprocess::wait: no child");
  if (reaped_) return status_;
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid_, &status, 0);
    if (r >= 0) break;
    if (errno != EINTR) {
      throw InvalidArgument("Subprocess::wait: waitpid failed (" +
                            std::string(strerror(errno)) + ")");
    }
  }
  reaped_ = true;
  if (WIFEXITED(status)) {
    status_.exited = true;
    status_.code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    status_.signaled = true;
    status_.code = WTERMSIG(status);
  }
  return status_;
}

bool Subprocess::try_wait(ExitStatus& status) {
  require(valid(), "Subprocess::try_wait: no child");
  if (reaped_) {
    status = status_;
    return true;
  }
  int raw = 0;
  const pid_t r = ::waitpid(pid_, &raw, WNOHANG);
  if (r == 0) return false;
  if (r < 0) {
    if (errno == EINTR) return false;
    throw InvalidArgument("Subprocess::try_wait: waitpid failed (" +
                          std::string(strerror(errno)) + ")");
  }
  reaped_ = true;
  if (WIFEXITED(raw)) {
    status_.exited = true;
    status_.code = WEXITSTATUS(raw);
  } else if (WIFSIGNALED(raw)) {
    status_.signaled = true;
    status_.code = WTERMSIG(raw);
  }
  status = status_;
  return true;
}

void Subprocess::kill(int signum) {
  if (valid() && !reaped_) ::kill(pid_, signum);
}

void Subprocess::kill() { kill(SIGKILL); }

}  // namespace qaoaml
