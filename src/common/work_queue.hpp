// Bounded multi-producer / multi-consumer work queue — the feeding
// primitive of the multi-process shard orchestrator
// (core/shard_orchestrator.hpp, tools/launch).
//
// Semantics:
//  - push() blocks while the queue is full (backpressure: a producer
//    can enumerate millions of work items without materializing them),
//    and throws QueueClosed once close() has been called.
//  - pop() blocks while the queue is empty and returns false only when
//    the queue is closed AND drained — consumers therefore process
//    every item that was ever accepted, in FIFO order.
//  - close() wakes every blocked producer and consumer.  It is the
//    only shutdown signal; there is no poison-pill item.
//
// The queue is deliberately dumb: no priorities, no stealing, no
// unbounded mode.  Orchestration policy (retries, backoff, stall
// detection) lives in the consumer, not here.
#ifndef QAOAML_COMMON_WORK_QUEUE_HPP
#define QAOAML_COMMON_WORK_QUEUE_HPP

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace qaoaml {

/// Thrown by push() on a closed queue — a producer bug, not a normal
/// shutdown path (consumers see close() as pop() returning false).
class QueueClosed : public Error {
 public:
  QueueClosed() : Error("BoundedWorkQueue: push on a closed queue") {}
};

template <typename T>
class BoundedWorkQueue {
 public:
  explicit BoundedWorkQueue(std::size_t capacity) : capacity_(capacity) {
    require(capacity >= 1, "BoundedWorkQueue: capacity must be >= 1");
  }

  BoundedWorkQueue(const BoundedWorkQueue&) = delete;
  BoundedWorkQueue& operator=(const BoundedWorkQueue&) = delete;

  /// Blocks until there is room (or the queue closes, which throws).
  void push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) throw QueueClosed();
    items_.push_back(std::move(item));
    not_empty_.notify_one();
  }

  /// Blocks until an item is available (true) or the queue is closed
  /// and drained (false).
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// Micro-batch pop: blocks for the FIRST item like pop(), then takes
  /// whatever else is already queued, up to `max_items` — it never
  /// waits for a batch to fill, so a lone item is served immediately
  /// and batches only form under concurrent load (the serving daemon's
  /// sweet spot).  Appends to `out` and returns the number taken; 0
  /// only when the queue is closed and drained.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_items) {
    if (max_items == 0) return 0;
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    const std::size_t count = std::min(max_items, items_.size());
    for (std::size_t i = 0; i < count; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (count > 0) not_full_.notify_all();
    return count;
  }

  /// Irreversible; wakes all waiters.  Items already queued still
  /// drain through pop().
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace qaoaml

#endif  // QAOAML_COMMON_WORK_QUEUE_HPP
