#include "common/checkpoint.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace qaoaml {
namespace {

/// RAII close() so every early exit below releases the descriptor.
struct Fd {
  int fd = -1;
  explicit Fd(int value) : fd(value) {}
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

/// fsyncs the directory containing `path`, so the rename that just put
/// a file there is itself durable (POSIX: rename alone only becomes
/// persistent once the directory entry reaches disk).  Filesystems
/// that cannot sync a directory handle (EINVAL/ENOTSUP on some network
/// mounts) are tolerated — the rename already happened, and refusing
/// to return the committed state would be worse than a weaker
/// durability guarantee the mount never offered.
void fsync_parent_directory(const std::string& path) {
  std::filesystem::path dir = std::filesystem::path(path).parent_path();
  if (dir.empty()) dir = ".";
  const Fd fd(::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC));
  if (fd.fd < 0) return;  // same tolerance as a non-syncable mount
  ::fsync(fd.fd);
}

/// Writes `content` to `tmp` in binary (no translation, matching the
/// binary-mode no-op comparison in replace_file_atomic) and fsyncs it,
/// so the bytes are on disk BEFORE the caller renames the file into
/// place.  Throws on any short write or failed sync.
void write_file_synced(const std::string& tmp, const std::string& content) {
  const Fd fd(::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                     0644));
  require(fd.fd >= 0, "replace_file_atomic: cannot open " + tmp + " (" +
                          std::strerror(errno) + ")");
  const char* data = content.data();
  std::size_t remaining = content.size();
  while (remaining > 0) {
    const ssize_t written = ::write(fd.fd, data, remaining);
    if (written < 0) {
      if (errno == EINTR) continue;
      throw InvalidArgument("replace_file_atomic: write failed: " + tmp +
                            " (" + std::strerror(errno) + ")");
    }
    data += written;
    remaining -= static_cast<std::size_t>(written);
  }
  require(::fsync(fd.fd) == 0, "replace_file_atomic: fsync failed: " + tmp +
                                   " (" + std::strerror(errno) + ")");
}

}  // namespace

FileLock::FileLock(const std::string& path)
    : fd_(::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644)) {
  require(fd_ >= 0, "FileLock: cannot open lock file " + path);
  if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw InvalidArgument(
        "FileLock: resource is locked by another running process (" + path +
        ")");
  }
}

FileLock::~FileLock() {
  if (fd_ >= 0) ::close(fd_);
}

bool is_locked(const std::string& path) {
  const Fd fd(::open(path.c_str(), O_RDWR | O_CLOEXEC));
  if (fd.fd < 0) return false;  // no lock file -> nobody holds it
  if (::flock(fd.fd, LOCK_EX | LOCK_NB) != 0) return true;
  ::flock(fd.fd, LOCK_UN);
  return false;
}

bool getline_complete(std::istream& is, std::string& line) {
  if (!std::getline(is, line)) return false;
  // getline sets eofbit exactly when it stopped at end-of-file rather
  // than at '\n' — i.e. when the line is an unterminated (possibly
  // torn) tail.
  return !is.eof();
}

void replace_file_atomic(const std::string& path, const std::string& content) {
  {
    std::ifstream is(path, std::ios::binary);
    if (is.good()) {
      std::ostringstream existing;
      existing << is.rdbuf();
      if (existing.str() == content) return;
    }
  }
  // PID-suffixed temp name: even without an advisory lock, two
  // processes rewriting the same path never collide on the temp file.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  try {
    // The temp bytes must be durable before the rename publishes them:
    // rename-then-crash with an unsynced source can leave an empty or
    // truncated file under the final name, which is exactly the data
    // loss this function exists to rule out.
    write_file_synced(tmp, content);
    std::filesystem::rename(tmp, path);
  } catch (...) {
    // Don't strand .tmp.<pid> litter in a shared directory on a failed
    // write (disk full) OR a failed rename (target became a directory,
    // cross-device move); the retry runs under a new PID.
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw;
  }
  // Make the rename itself durable: the new directory entry has to
  // reach disk, or a power cut can resurrect the old file.
  fsync_parent_directory(path);
}

}  // namespace qaoaml
