#include "common/checkpoint.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace qaoaml {

FileLock::FileLock(const std::string& path)
    : fd_(::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644)) {
  require(fd_ >= 0, "FileLock: cannot open lock file " + path);
  if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw InvalidArgument(
        "FileLock: resource is locked by another running process (" + path +
        ")");
  }
}

FileLock::~FileLock() {
  if (fd_ >= 0) ::close(fd_);
}

void replace_file_atomic(const std::string& path, const std::string& content) {
  {
    std::ifstream is(path, std::ios::binary);
    if (is.good()) {
      std::ostringstream existing;
      existing << is.rdbuf();
      if (existing.str() == content) return;
    }
  }
  // PID-suffixed temp name: even without an advisory lock, two
  // processes rewriting the same path never collide on the temp file.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  try {
    std::ofstream os(tmp, std::ios::trunc);
    require(os.good(), "replace_file_atomic: cannot open " + tmp);
    os << content;
    os.flush();
    require(os.good(), "replace_file_atomic: write failed: " + tmp);
  } catch (...) {
    // Don't strand .tmp.<pid> litter in a shared directory on a failed
    // write (disk full); the retry runs under a new PID.
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw;
  }
  std::filesystem::rename(tmp, path);
}

}  // namespace qaoaml
