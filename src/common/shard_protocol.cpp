#include "common/shard_protocol.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "common/cli.hpp"

namespace qaoaml::proto {
namespace {

// Field parsers built on the strict cli grammar: istream extraction
// into an unsigned field silently WRAPS a negative token ("-5" becomes
// 18446744073709551611 units done), and accepts "inf"/"nan" for
// doubles — a corrupted or adversarial worker line must classify as
// kMalformed, never as a wildly wrong but well-formed frame.

bool parse_count(const std::string& token, std::size_t& out) {
  std::uint64_t value = 0;
  if (!cli::to_u64(token.c_str(), value)) return false;
  out = static_cast<std::size_t>(value);
  return true;
}

/// Non-negative finite double (rates, seconds).  cli::to_double already
/// rejects the "inf"/"nan" spellings; the sign check is ours.
bool parse_rate(const std::string& token, double& out) {
  double value = 0.0;
  if (!cli::to_double(token.c_str(), value)) return false;
  if (!std::isfinite(value) || value < 0.0) return false;
  out = value;
  return true;
}

}  // namespace

Event parse_line(const std::string& line) {
  Event event;
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string token;
  while (is >> token) tokens.push_back(std::move(token));
  if (tokens.empty() || tokens[0] != kSentinel) return event;  // kNone

  // Sentinel line: anything that fails below is a protocol bug worth
  // flagging.  That includes an absurdly long line — the emitters
  // produce tens of bytes, so a runaway length means a corrupted or
  // misbehaving worker, and bounding it here keeps a single line from
  // bloating every buffer downstream.
  event.kind = Event::Kind::kMalformed;
  if (line.size() > kMaxLineBytes || tokens.size() < 2) return event;
  const std::string& verb = tokens[1];

  if (verb == "start") {
    if (tokens.size() == 4 && cli::to_int(tokens[2].c_str(), event.shard) &&
        event.shard >= 0 && parse_count(tokens[3], event.total)) {
      event.kind = Event::Kind::kStart;
    }
  } else if (verb == "progress") {
    if (tokens.size() == 5 && parse_count(tokens[2], event.done) &&
        parse_count(tokens[3], event.total) && event.done <= event.total &&
        parse_rate(tokens[4], event.units_per_sec)) {
      event.kind = Event::Kind::kProgress;
    }
  } else if (verb == "heartbeat") {
    if (tokens.size() == 2) event.kind = Event::Kind::kHeartbeat;
  } else if (verb == "done") {
    if (tokens.size() == 5 && parse_count(tokens[2], event.generated) &&
        parse_count(tokens[3], event.resumed) &&
        parse_rate(tokens[4], event.seconds)) {
      event.kind = Event::Kind::kDone;
    }
  }
  return event;
}

void emit_start(std::FILE* out, int shard, std::size_t total_units) {
  if (out == nullptr) return;
  std::fprintf(out, "%s start %d %zu\n", kSentinel, shard, total_units);
  std::fflush(out);
}

void emit_progress(std::FILE* out, std::size_t done, std::size_t total,
                   double units_per_sec) {
  if (out == nullptr) return;
  // Emit only what the parser accepts: a timer glitch must not turn
  // into an "inf" token that every consumer then flags as malformed.
  if (!std::isfinite(units_per_sec) || units_per_sec < 0.0) {
    units_per_sec = 0.0;
  }
  std::fprintf(out, "%s progress %zu %zu %.6g\n", kSentinel, done, total,
               units_per_sec);
  std::fflush(out);
}

void emit_heartbeat(std::FILE* out) {
  if (out == nullptr) return;
  std::fprintf(out, "%s heartbeat\n", kSentinel);
  std::fflush(out);
}

void emit_done(std::FILE* out, std::size_t generated, std::size_t resumed,
               double seconds) {
  if (out == nullptr) return;
  std::fprintf(out, "%s done %zu %zu %.6g\n", kSentinel, generated, resumed,
               seconds);
  std::fflush(out);
}

HeartbeatEmitter::HeartbeatEmitter(std::FILE* out, double interval_s) {
  if (out == nullptr || interval_s <= 0.0) return;
  thread_ = std::thread([this, out, interval_s] {
    const auto interval = std::chrono::duration<double>(interval_s);
    std::unique_lock<std::mutex> lock(mutex_);
    while (!cv_.wait_for(lock, interval, [&] { return stopping_; })) {
      emit_heartbeat(out);
    }
  });
}

HeartbeatEmitter::~HeartbeatEmitter() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

}  // namespace qaoaml::proto
