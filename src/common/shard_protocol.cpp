#include "common/shard_protocol.hpp"

#include <sstream>

namespace qaoaml::proto {
namespace {

/// Extracts exactly the expected operands (and nothing after them).
template <typename... Fields>
bool scan(std::istringstream& is, Fields&... fields) {
  (is >> ... >> fields);
  if (is.fail()) return false;
  std::string excess;
  return !(is >> excess);
}

}  // namespace

Event parse_line(const std::string& line) {
  Event event;
  std::istringstream is(line);
  std::string sentinel;
  if (!(is >> sentinel) || sentinel != kSentinel) return event;  // kNone

  event.kind = Event::Kind::kMalformed;
  std::string verb;
  if (!(is >> verb)) return event;

  if (verb == "start") {
    if (scan(is, event.shard, event.total)) event.kind = Event::Kind::kStart;
  } else if (verb == "progress") {
    if (scan(is, event.done, event.total, event.units_per_sec)) {
      event.kind = Event::Kind::kProgress;
    }
  } else if (verb == "heartbeat") {
    std::string excess;
    if (!(is >> excess)) event.kind = Event::Kind::kHeartbeat;
  } else if (verb == "done") {
    if (scan(is, event.generated, event.resumed, event.seconds)) {
      event.kind = Event::Kind::kDone;
    }
  }
  return event;
}

void emit_start(std::FILE* out, int shard, std::size_t total_units) {
  if (out == nullptr) return;
  std::fprintf(out, "%s start %d %zu\n", kSentinel, shard, total_units);
  std::fflush(out);
}

void emit_progress(std::FILE* out, std::size_t done, std::size_t total,
                   double units_per_sec) {
  if (out == nullptr) return;
  std::fprintf(out, "%s progress %zu %zu %.6g\n", kSentinel, done, total,
               units_per_sec);
  std::fflush(out);
}

void emit_heartbeat(std::FILE* out) {
  if (out == nullptr) return;
  std::fprintf(out, "%s heartbeat\n", kSentinel);
  std::fflush(out);
}

void emit_done(std::FILE* out, std::size_t generated, std::size_t resumed,
               double seconds) {
  if (out == nullptr) return;
  std::fprintf(out, "%s done %zu %zu %.6g\n", kSentinel, generated, resumed,
               seconds);
  std::fflush(out);
}

HeartbeatEmitter::HeartbeatEmitter(std::FILE* out, double interval_s) {
  if (out == nullptr || interval_s <= 0.0) return;
  thread_ = std::thread([this, out, interval_s] {
    const auto interval = std::chrono::duration<double>(interval_s);
    std::unique_lock<std::mutex> lock(mutex_);
    while (!cv_.wait_for(lock, interval, [&] { return stopping_; })) {
      emit_heartbeat(out);
    }
  });
}

HeartbeatEmitter::~HeartbeatEmitter() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

}  // namespace qaoaml::proto
