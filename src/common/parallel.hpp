// Data-parallel helpers backed by a persistent thread pool.
//
// Two layers of parallelism coexist in the library:
//  - instance-level: experiment sweeps, dataset generation and batch
//    evaluation fan out across problem instances (parallel_for);
//  - amplitude-level: the statevector kernels split their 2^n-element
//    loops into fixed-size blocks (parallel_for_range, parallel_reduce).
// Nested calls never oversubscribe: a body running on a pool worker
// executes nested parallel_* calls inline and serially.
//
// Determinism: callers seed per-index RNGs from (seed, index), so
// element-wise results do not depend on thread scheduling.  Reductions
// accumulate fixed-size block partials in block order, so their result
// is bit-identical for every thread count (1 vs N) as well.
#ifndef QAOAML_COMMON_PARALLEL_HPP
#define QAOAML_COMMON_PARALLEL_HPP

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

namespace qaoaml {

/// Number of worker threads to use: the ScopedThreadCount override when
/// active, else QAOAML_THREADS when set, else the hardware concurrency
/// (always at least 1).
int default_thread_count();

/// True while the calling thread is executing a parallel_* body on a
/// pool worker; nested parallel_* calls then run inline and serially.
bool in_parallel_region();

/// RAII override of default_thread_count() for the enclosing scope.
/// Takes precedence over QAOAML_THREADS; intended for tests and
/// benchmarks that compare thread counts within one process.
class ScopedThreadCount {
 public:
  explicit ScopedThreadCount(int threads);
  ~ScopedThreadCount();
  ScopedThreadCount(const ScopedThreadCount&) = delete;
  ScopedThreadCount& operator=(const ScopedThreadCount&) = delete;

 private:
  int previous_;
};

/// Amplitude-loop block size: ranges are split into fixed blocks of this
/// many elements regardless of thread count, which is what makes the
/// blocked reductions bit-deterministic.  Exposed as a log2 so kernels
/// that tile power-of-two state vectors (e.g. the fused QAOA layer) can
/// statically guarantee their tiles divide a grain block evenly.
inline constexpr int kParallelGrainLog2 = 14;
inline constexpr std::size_t kParallelGrain = std::size_t{1} << kParallelGrainLog2;

/// Runs body(i) for every i in [0, count) across `threads` workers.
/// Indices are dispatched dynamically; bodies writing disjoint state
/// need no synchronization.  Exceptions thrown by the body are rethrown
/// (the first one observed) after all workers finish.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  int threads = default_thread_count());

/// Runs body(begin, end) over a blocked partition of [0, count): blocks
/// are kParallelGrain elements (the last one ragged).  Small ranges that
/// fit in one block run inline on the calling thread.
void parallel_for_range(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body,
    int threads = default_thread_count());

/// Blocked reduction: sums block_sum(begin, end) over the same fixed
/// partition parallel_for_range uses, accumulating partials in block
/// order.  The result is bit-identical for every thread count.
template <typename T, typename BlockFn>
T parallel_reduce(std::size_t count, T init, BlockFn&& block_sum,
                  int threads = default_thread_count()) {
  if (count == 0) return init;
  const std::size_t blocks = (count + kParallelGrain - 1) / kParallelGrain;
  if (blocks <= 1) return static_cast<T>(init + block_sum(std::size_t{0}, count));
  std::vector<T> partial(blocks);
  parallel_for(
      blocks,
      [&](std::size_t b) {
        const std::size_t begin = b * kParallelGrain;
        partial[b] = block_sum(begin, std::min(count, begin + kParallelGrain));
      },
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(std::max(threads, 1)), blocks)));
  T acc = init;
  for (const T& p : partial) acc += p;
  return acc;
}

}  // namespace qaoaml

#endif  // QAOAML_COMMON_PARALLEL_HPP
