// Minimal data-parallel helper.
//
// The experiment sweeps are embarrassingly parallel across problem
// instances; this runs a loop body on a small pool of std::threads.
// Determinism: callers seed per-index RNGs from (seed, index), so the
// result does not depend on thread scheduling.
#ifndef QAOAML_COMMON_PARALLEL_HPP
#define QAOAML_COMMON_PARALLEL_HPP

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.hpp"

namespace qaoaml {

/// Number of worker threads to use: QAOAML_THREADS when set, otherwise
/// the hardware concurrency (at least 1).
inline int default_thread_count() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return env_int("QAOAML_THREADS", hw > 0 ? hw : 1);
}

/// Runs body(i) for every i in [0, count) across `threads` workers.
/// Exceptions thrown by the body are rethrown (the first one observed)
/// after all workers join.
inline void parallel_for(std::size_t count,
                         const std::function<void(std::size_t)>& body,
                         int threads = default_thread_count()) {
  if (count == 0) return;
  if (threads <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  const int workers = std::min<int>(threads, static_cast<int>(count));
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace qaoaml

#endif  // QAOAML_COMMON_PARALLEL_HPP
