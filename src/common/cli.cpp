#include "common/cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace qaoaml::cli {

bool to_int(const char* text, int& out) {
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE ||
      value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max()) {
    return false;
  }
  out = static_cast<int>(value);
  return true;
}

bool to_u64(const char* text, std::uint64_t& out) {
  if (text[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  out = value;
  return true;
}

bool to_double(const char* text, double& out) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  out = value;
  return true;
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> items;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

}  // namespace qaoaml::cli
