#include "common/cli.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace qaoaml::cli {
namespace {

/// The strto* family silently skips leading whitespace and accepts a
/// leading '+' — and strtoull even accepts a '-' and WRAPS the value
/// (" -5" becomes 18446744073709551611).  The CLI contract wants none
/// of that: a value must start with a digit, or with '-' exactly where
/// a negative number is meaningful ('.' additionally for doubles, via
/// `extra`).  Checking the first byte up front keeps all three parsers
/// consistent and leaves strto* to validate the rest.
bool strict_start(const char* text, bool allow_minus, char extra = '\0') {
  if (text == nullptr || text[0] == '\0') return false;
  const char c = text[0];
  if (std::isdigit(static_cast<unsigned char>(c))) return true;
  if (c == '-' && allow_minus) return true;
  return extra != '\0' && c == extra;
}

}  // namespace

bool to_int(const char* text, int& out) {
  if (!strict_start(text, /*allow_minus=*/true)) return false;
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE ||
      value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max()) {
    return false;
  }
  out = static_cast<int>(value);
  return true;
}

bool to_u64(const char* text, std::uint64_t& out) {
  if (!strict_start(text, /*allow_minus=*/false)) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  out = value;
  return true;
}

bool to_double(const char* text, double& out) {
  if (!strict_start(text, /*allow_minus=*/true, '.')) return false;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE) return false;
  out = value;
  return true;
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> items;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

}  // namespace qaoaml::cli
