#include "common/env.hpp"

#include <cstdlib>

namespace qaoaml {

int env_int(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<int>(value);
}

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return fallback;
  return value;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? fallback : std::string(raw);
}

}  // namespace qaoaml
