#include "common/env.hpp"

#include <cstdlib>

#include "common/cli.hpp"

namespace qaoaml {

// Env values share the strict cli::to_* semantics: range-checked,
// whole-string, no leading whitespace or '+'.  Before this,
// QAOAML_THREADS=99999999999 passed strtol's long range, was
// static_cast down to an arbitrary int thread count and silently
// honored; now any value that doesn't round-trip as the target type
// falls back to the default.

int env_int(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  int value = 0;
  return cli::to_int(raw, value) ? value : fallback;
}

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  double value = 0.0;
  return cli::to_double(raw, value) ? value : fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? fallback : std::string(raw);
}

}  // namespace qaoaml
