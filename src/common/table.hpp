// Fixed-width plain-text table printer.
//
// The benchmark binaries print paper-style tables (Table I rows, figure
// series) to stdout; this class keeps the columns aligned without pulling
// in a formatting dependency.
#ifndef QAOAML_COMMON_TABLE_HPP
#define QAOAML_COMMON_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace qaoaml {

/// Column-aligned table builder.
///
/// Usage:
///   Table t({"optimizer", "p", "mean AR"});
///   t.add_row({"L-BFGS-B", "2", Table::num(0.8708)});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void add_separator();

  /// Renders the table with aligned columns.
  void print(std::ostream& os) const;

  /// Formats a double with `digits` digits after the decimal point.
  static std::string num(double value, int digits = 4);

  /// Formats an integer.
  static std::string num(long long value);

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace qaoaml

#endif  // QAOAML_COMMON_TABLE_HPP
