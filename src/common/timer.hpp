// Wall-clock stopwatch used by benchmarks and examples.
#ifndef QAOAML_COMMON_TIMER_HPP
#define QAOAML_COMMON_TIMER_HPP

#include <chrono>

namespace qaoaml {

/// Monotonic stopwatch; starts running at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last reset().
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qaoaml

#endif  // QAOAML_COMMON_TIMER_HPP
