#include "common/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "common/signals.hpp"

namespace qaoaml::net {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + " (" + std::strerror(errno) + ")");
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  require(path.size() < sizeof(address.sun_path),
          "socket: path too long for a Unix socket: " + path);
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset(other.fd_);
    other.fd_ = -1;
  }
  return *this;
}

void Fd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

Fd unix_listen(const std::string& path, int backlog) {
  ignore_sigpipe();
  const sockaddr_un address = unix_address(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket: cannot create Unix socket");
  // A stale socket file from a previous daemon instance would make
  // bind fail with EADDRINUSE even though nobody is listening.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    throw_errno("socket: cannot bind " + path);
  }
  if (::listen(fd.get(), backlog) != 0) {
    throw_errno("socket: cannot listen on " + path);
  }
  return fd;
}

Fd unix_connect(const std::string& path) {
  ignore_sigpipe();
  const sockaddr_un address = unix_address(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket: cannot create Unix socket");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    throw_errno("socket: cannot connect to " + path);
  }
  return fd;
}

Fd accept_client(int listen_fd) {
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) return Fd(fd);
    if (errno == EINTR || errno == ECONNABORTED) continue;
    // The server's shutdown path closes or shuts down the listener out
    // from under this call.
    if (errno == EBADF || errno == EINVAL) return Fd();
    throw_errno("socket: accept failed");
  }
}

bool send_all(int fd, const void* data, std::size_t size) {
  const char* at = static_cast<const char*>(data);
  std::size_t remaining = size;
  while (remaining > 0) {
    const ssize_t n = ::send(fd, at, remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      throw_errno("socket: send failed");
    }
    at += n;
    remaining -= static_cast<std::size_t>(n);
  }
  return true;
}

RecvStatus recv_exact(int fd, void* data, std::size_t size) {
  char* at = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, at + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        return got == 0 ? RecvStatus::kEof : RecvStatus::kEofMidway;
      }
      throw_errno("socket: recv failed");
    }
    if (n == 0) {
      return got == 0 ? RecvStatus::kEof : RecvStatus::kEofMidway;
    }
    got += static_cast<std::size_t>(n);
  }
  return RecvStatus::kOk;
}

}  // namespace qaoaml::net
