#include "common/signals.hpp"

#include <csignal>
#include <ctime>

#include <cerrno>

namespace qaoaml {

void ignore_sigpipe() {
  // Thread-safe via the static-local initialization guarantee; the
  // disposition is process-wide so once is enough.
  static const bool installed = [] {
    struct sigaction action {};
    action.sa_handler = SIG_IGN;
    ::sigemptyset(&action.sa_mask);
    ::sigaction(SIGPIPE, &action, nullptr);
    return true;
  }();
  (void)installed;
}

const char* signal_name(int signum) {
  switch (signum) {
    case SIGHUP: return "SIGHUP";
    case SIGINT: return "SIGINT";
    case SIGQUIT: return "SIGQUIT";
    case SIGILL: return "SIGILL";
    case SIGTRAP: return "SIGTRAP";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGKILL: return "SIGKILL";
    case SIGUSR1: return "SIGUSR1";
    case SIGSEGV: return "SIGSEGV";
    case SIGUSR2: return "SIGUSR2";
    case SIGPIPE: return "SIGPIPE";
    case SIGALRM: return "SIGALRM";
    case SIGTERM: return "SIGTERM";
    case SIGCHLD: return "SIGCHLD";
    case SIGCONT: return "SIGCONT";
    case SIGSTOP: return "SIGSTOP";
    case SIGTSTP: return "SIGTSTP";
    case SIGTTIN: return "SIGTTIN";
    case SIGTTOU: return "SIGTTOU";
    case SIGXCPU: return "SIGXCPU";
    case SIGXFSZ: return "SIGXFSZ";
    default: return nullptr;
  }
}

SignalWaiter::SignalWaiter(const std::vector<int>& signals,
                           std::function<void(int)> handler)
    : handler_(std::move(handler)) {
  sigset_t set;
  ::sigemptyset(&set);
  for (const int signum : signals) ::sigaddset(&set, signum);
  ::pthread_sigmask(SIG_BLOCK, &set, nullptr);

  // sigtimedwait (not sigwait) so destruction does not need a private
  // wake-up signal: the thread polls the stop flag every 200 ms.
  thread_ = std::thread([this, set] {
    while (!stopping_.load(std::memory_order_relaxed)) {
      struct timespec timeout {};
      timeout.tv_nsec = 200 * 1000 * 1000;
      const int signum = ::sigtimedwait(&set, nullptr, &timeout);
      if (signum < 0) continue;  // EAGAIN (timeout) or EINTR
      if (stopping_.load(std::memory_order_relaxed)) break;
      handler_(signum);
    }
  });
}

SignalWaiter::~SignalWaiter() {
  stopping_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

}  // namespace qaoaml
