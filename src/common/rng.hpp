// Deterministic pseudo-random number generation.
//
// All stochastic pieces of the library (graph generation, random
// initializations, ML training shuffles) draw from this generator so that
// every experiment is reproducible from a single seed, independent of the
// platform's std::mt19937 / distribution implementations.
//
// The engine is xoshiro256** (Blackman & Vigna), seeded via SplitMix64.
#ifndef QAOAML_COMMON_RNG_HPP
#define QAOAML_COMMON_RNG_HPP

#include <array>
#include <cstdint>
#include <vector>

namespace qaoaml {

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Satisfies the UniformRandomBitGenerator concept, so it can also be used
/// with standard-library algorithms such as std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose entire state is derived from `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Standard normal deviate (Box-Muller with caching).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability `p`.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each
  /// parallel experiment its own stream.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace qaoaml

#endif  // QAOAML_COMMON_RNG_HPP
