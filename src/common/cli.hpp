// Strict command-line value parsing shared by the tools/ drivers and
// the env-driven benches.
//
// The contract every CLI in this repo follows: trailing garbage, empty
// strings and out-of-range values are rejected (return false) instead
// of silently truncating — "--shard two" or "--seed 0x2a" must error
// out, not become 0 and generate the wrong corpus.  Keeping the
// parsers here keeps the three tools' accepted grammar identical.
#ifndef QAOAML_COMMON_CLI_HPP
#define QAOAML_COMMON_CLI_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace qaoaml::cli {

// All three parsers are strict at the front as well as the back: the
// value must start with a digit (or a '-' where negatives make sense,
// or '.' for doubles) — leading whitespace and a leading '+', which
// the strto* family silently accepts, are rejected.  " -5" in
// particular must never reach strtoull, which would wrap it to
// 18446744073709551611.

/// Parses a base-10 int; false on garbage, leading whitespace/'+',
/// overflow or trailing bytes.
bool to_int(const char* text, int& out);

/// Parses a non-negative base-10 u64; false on garbage, leading
/// whitespace, any sign (strtoull would silently wrap a '-') or
/// trailing bytes.
bool to_u64(const char* text, std::uint64_t& out);

/// Parses a double; false on garbage, leading whitespace/'+', overflow
/// or trailing bytes.  Only numeric spellings are accepted ("inf" and
/// "nan" are garbage here — no CLI knob wants them).
bool to_double(const char* text, double& out);

/// Splits "a,b,c" into {"a","b","c"}, dropping empty items.
std::vector<std::string> split_list(const std::string& csv);

}  // namespace qaoaml::cli

#endif  // QAOAML_COMMON_CLI_HPP
