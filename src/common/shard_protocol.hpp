// The line-framed progress protocol between shard workers and the
// orchestrator (tools/launch -> core/shard_orchestrator.hpp).
//
// Workers run with --progress-stream and interleave protocol lines
// with their normal human-readable output on stdout:
//
//   @qshard start <shard> <total-units>
//   @qshard progress <done-units> <total-units> <units-per-sec>
//   @qshard heartbeat
//   @qshard done <generated> <resumed> <seconds>
//
// Every protocol line is flushed immediately (the orchestrator's stall
// detector counts ANY line as liveness), starts with the "@qshard"
// sentinel so it can never collide with pipeline chatter, and is
// self-contained — which is what lets the same frames later travel a
// TCP socket unchanged when shards move off-box: the transport only
// has to preserve line boundaries.
//
// Parsing is forgiving about what a line IS and strict about what a
// frame SAYS: a line that doesn't start with the sentinel is kNone
// (ordinary worker output, passed through), while a sentinel line that
// fails to parse is kMalformed (a protocol bug worth surfacing, not
// silently dropping).  Malformed includes negative counts (istream
// would silently wrap them into huge unsigned values), done > total,
// non-finite or negative rates, excess operands, and lines longer than
// kMaxLineBytes.
#ifndef QAOAML_COMMON_SHARD_PROTOCOL_HPP
#define QAOAML_COMMON_SHARD_PROTOCOL_HPP

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

namespace qaoaml::proto {

/// The sentinel every protocol line starts with.
inline constexpr const char* kSentinel = "@qshard";

/// Upper bound on a valid protocol line.  The emitters produce tens of
/// bytes; a sentinel line beyond this classifies as kMalformed.
inline constexpr std::size_t kMaxLineBytes = 512;

struct Event {
  enum class Kind { kNone, kMalformed, kStart, kProgress, kHeartbeat, kDone };
  Kind kind = Kind::kNone;

  int shard = -1;              ///< kStart
  std::size_t done = 0;        ///< kProgress
  std::size_t total = 0;       ///< kStart, kProgress
  double units_per_sec = 0.0;  ///< kProgress
  std::size_t generated = 0;   ///< kDone
  std::size_t resumed = 0;     ///< kDone
  double seconds = 0.0;        ///< kDone
};

/// Classifies one worker output line.  Never throws.
Event parse_line(const std::string& line);

// Emitters: one protocol line + fflush.  `out` may be null (emission
// disabled), so call sites don't need to branch.
void emit_start(std::FILE* out, int shard, std::size_t total_units);
void emit_progress(std::FILE* out, std::size_t done, std::size_t total,
                   double units_per_sec);
void emit_heartbeat(std::FILE* out);
void emit_done(std::FILE* out, std::size_t generated, std::size_t resumed,
               double seconds);

/// Emits "@qshard heartbeat" every `interval_s` on a background thread
/// for as long as the object lives — shard units can legitimately take
/// minutes, and without a heartbeat the orchestrator could not tell
/// "long unit" from "wedged worker".  A null `out` makes it a no-op.
class HeartbeatEmitter {
 public:
  HeartbeatEmitter(std::FILE* out, double interval_s);
  ~HeartbeatEmitter();
  HeartbeatEmitter(const HeartbeatEmitter&) = delete;
  HeartbeatEmitter& operator=(const HeartbeatEmitter&) = delete;

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace qaoaml::proto

#endif  // QAOAML_COMMON_SHARD_PROTOCOL_HPP
