#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qaoaml {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits mapped to [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "Rng::uniform: lo must be <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  require(n > 0, "Rng::uniform_int: n must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t draw = (*this)();
  while (draw >= limit) draw = (*this)();
  return draw % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform; u1 is kept away from zero to avoid log(0).
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  require(stddev >= 0.0, "Rng::normal: stddev must be non-negative");
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  require(p >= 0.0 && p <= 1.0, "Rng::bernoulli: p must lie in [0, 1]");
  return uniform() < p;
}

Rng Rng::split() { return Rng((*this)()); }

}  // namespace qaoaml
