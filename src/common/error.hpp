// Error handling primitives shared across the library.
//
// The library reports contract violations and runtime failures with
// exceptions (C++ Core Guidelines E.2).  `Error` is the common base so
// callers can catch everything from this library with one handler.
#ifndef QAOAML_COMMON_ERROR_HPP
#define QAOAML_COMMON_ERROR_HPP

#include <stdexcept>
#include <string>

namespace qaoaml {

/// Base class for all exceptions thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a function argument violates its documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a numeric routine fails to make progress (e.g. a Cholesky
/// factorization of a non-positive-definite matrix).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Checks a precondition; throws InvalidArgument with `msg` on failure.
inline void require(bool condition, const std::string& msg) {
  if (!condition) throw InvalidArgument(msg);
}

}  // namespace qaoaml

#endif  // QAOAML_COMMON_ERROR_HPP
