#include "graph/maxcut.hpp"

#include "common/error.hpp"

namespace qaoaml::graph {

double cut_value(const Graph& g, std::uint64_t assignment) {
  double acc = 0.0;
  for (const Edge& e : g.edges()) {
    const std::uint64_t side_u = (assignment >> e.u) & 1ULL;
    const std::uint64_t side_v = (assignment >> e.v) & 1ULL;
    if (side_u != side_v) acc += e.weight;
  }
  return acc;
}

MaxCutResult max_cut_brute_force(const Graph& g) {
  require(g.num_nodes() >= 1 && g.num_nodes() <= 30,
          "max_cut_brute_force: supports 1..30 nodes");
  MaxCutResult best;
  const std::uint64_t half = 1ULL << (g.num_nodes() - 1);
  // Node 0 pinned to side 0: cuts are invariant under global flip.
  for (std::uint64_t z = 0; z < half; ++z) {
    const std::uint64_t assignment = z << 1;
    const double value = cut_value(g, assignment);
    if (value > best.value) {
      best.value = value;
      best.assignment = assignment;
    }
  }
  return best;
}

std::vector<double> cut_value_table(const Graph& g) {
  require(g.num_nodes() >= 1 && g.num_nodes() <= 30,
          "cut_value_table: supports 1..30 nodes");
  const std::uint64_t dim = 1ULL << g.num_nodes();
  std::vector<double> table(dim, 0.0);
  // Incremental: each edge contributes its weight to exactly the
  // assignments where its endpoints differ.
  for (const Edge& e : g.edges()) {
    const std::uint64_t mask_u = 1ULL << e.u;
    const std::uint64_t mask_v = 1ULL << e.v;
    for (std::uint64_t z = 0; z < dim; ++z) {
      if (((z & mask_u) != 0) != ((z & mask_v) != 0)) table[z] += e.weight;
    }
  }
  return table;
}

}  // namespace qaoaml::graph
