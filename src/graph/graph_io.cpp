#include "graph/graph_io.hpp"

#include <sstream>

#include "common/error.hpp"

namespace qaoaml::graph {

std::string to_edge_list(const Graph& g) {
  std::ostringstream os;
  os.precision(17);
  os << "n " << g.num_nodes() << '\n';
  for (const Edge& e : g.edges()) {
    os << e.u << ' ' << e.v << ' ' << e.weight << '\n';
  }
  return os.str();
}

Graph from_edge_list(const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  int num_nodes = 0;
  if (!(is >> tag >> num_nodes) || tag != "n") {
    throw InvalidArgument("from_edge_list: missing 'n <count>' header");
  }
  Graph g(num_nodes);
  int u = 0;
  int v = 0;
  double w = 0.0;
  while (is >> u >> v >> w) g.add_edge(u, v, w);
  if (!is.eof()) {
    throw InvalidArgument("from_edge_list: trailing malformed content");
  }
  return g;
}

std::string to_dot(const Graph& g, const std::string& name) {
  std::ostringstream os;
  os << "graph " << name << " {\n";
  for (int u = 0; u < g.num_nodes(); ++u) os << "  " << u << ";\n";
  for (const Edge& e : g.edges()) {
    os << "  " << e.u << " -- " << e.v << " [weight=" << e.weight << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace qaoaml::graph
