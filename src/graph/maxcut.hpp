// Exact MaxCut utilities.
//
// QAOA solves MaxCut approximately; the approximation ratio (AR) that the
// paper reports divides the QAOA expectation by the exact optimum, which
// for the 8-node instances here is computed by enumeration.
//
// A cut is encoded as a bitmask `assignment`: bit u gives the partition
// of node u.  The cut value is the total weight of edges whose endpoints
// fall in different partitions.
#ifndef QAOAML_GRAPH_MAXCUT_HPP
#define QAOAML_GRAPH_MAXCUT_HPP

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace qaoaml::graph {

/// Weight of the cut induced by `assignment` (bit u = side of node u).
double cut_value(const Graph& g, std::uint64_t assignment);

/// Exact MaxCut result.
struct MaxCutResult {
  double value = 0.0;           ///< optimal cut weight
  std::uint64_t assignment = 0; ///< one optimal bitmask (bit 0 of node 0 fixed to 0)
};

/// Brute-force exact MaxCut.  Enumerates 2^(n-1) assignments (node 0 is
/// pinned to side 0 by symmetry).  Requires num_nodes <= 30.
MaxCutResult max_cut_brute_force(const Graph& g);

/// Cut value for every assignment z in [0, 2^n): the diagonal of the
/// MaxCut cost Hamiltonian in the computational basis.  Requires
/// num_nodes <= 30.
std::vector<double> cut_value_table(const Graph& g);

}  // namespace qaoaml::graph

#endif  // QAOAML_GRAPH_MAXCUT_HPP
