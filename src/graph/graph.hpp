// Undirected simple graph with optional edge weights.
//
// This is the problem-instance representation for MaxCut-QAOA.  Node ids
// are dense integers [0, num_nodes).  Self-loops are rejected; parallel
// edges are rejected.
#ifndef QAOAML_GRAPH_GRAPH_HPP
#define QAOAML_GRAPH_GRAPH_HPP

#include <cstddef>
#include <vector>

namespace qaoaml::graph {

/// One undirected edge (u < v after normalization) with a weight.
struct Edge {
  int u = 0;
  int v = 0;
  double weight = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Undirected simple weighted graph.
class Graph {
 public:
  Graph() = default;

  /// Creates a graph with `num_nodes` isolated nodes.
  explicit Graph(int num_nodes);

  int num_nodes() const { return num_nodes_; }
  std::size_t num_edges() const { return edges_.size(); }

  /// Adds edge {u, v} with `weight`.  Throws InvalidArgument for
  /// out-of-range endpoints, self-loops, or duplicate edges.
  void add_edge(int u, int v, double weight = 1.0);

  /// True when {u, v} is an edge (order-insensitive).
  bool has_edge(int u, int v) const;

  /// Normalized edge list (u < v within each edge).
  const std::vector<Edge>& edges() const { return edges_; }

  /// Number of incident edges for node `u`.
  int degree(int u) const;

  /// Neighbors of node `u`.
  std::vector<int> neighbors(int u) const;

  /// Sum of all edge weights.
  double total_weight() const;

  /// True when every node is reachable from node 0 (true for empty and
  /// single-node graphs).
  bool is_connected() const;

  /// True when every node has degree exactly `k`.
  bool is_regular(int k) const;

 private:
  int num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace qaoaml::graph

#endif  // QAOAML_GRAPH_GRAPH_HPP
