#include "graph/graph.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace qaoaml::graph {

Graph::Graph(int num_nodes) : num_nodes_(num_nodes) {
  require(num_nodes >= 0, "Graph: num_nodes must be non-negative");
  adjacency_.resize(static_cast<std::size_t>(num_nodes));
}

void Graph::add_edge(int u, int v, double weight) {
  require(u >= 0 && u < num_nodes_ && v >= 0 && v < num_nodes_,
          "Graph::add_edge: endpoint out of range");
  require(u != v, "Graph::add_edge: self-loops are not allowed");
  require(!has_edge(u, v), "Graph::add_edge: duplicate edge");
  if (u > v) std::swap(u, v);
  edges_.push_back(Edge{u, v, weight});
  adjacency_[static_cast<std::size_t>(u)].push_back(v);
  adjacency_[static_cast<std::size_t>(v)].push_back(u);
}

bool Graph::has_edge(int u, int v) const {
  if (u < 0 || u >= num_nodes_ || v < 0 || v >= num_nodes_) return false;
  const auto& adj = adjacency_[static_cast<std::size_t>(u)];
  return std::find(adj.begin(), adj.end(), v) != adj.end();
}

int Graph::degree(int u) const {
  require(u >= 0 && u < num_nodes_, "Graph::degree: node out of range");
  return static_cast<int>(adjacency_[static_cast<std::size_t>(u)].size());
}

std::vector<int> Graph::neighbors(int u) const {
  require(u >= 0 && u < num_nodes_, "Graph::neighbors: node out of range");
  return adjacency_[static_cast<std::size_t>(u)];
}

double Graph::total_weight() const {
  double acc = 0.0;
  for (const Edge& e : edges_) acc += e.weight;
  return acc;
}

bool Graph::is_connected() const {
  if (num_nodes_ <= 1) return true;
  std::vector<bool> seen(static_cast<std::size_t>(num_nodes_), false);
  std::vector<int> stack{0};
  seen[0] = true;
  int visited = 1;
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    for (const int next : adjacency_[static_cast<std::size_t>(node)]) {
      if (!seen[static_cast<std::size_t>(next)]) {
        seen[static_cast<std::size_t>(next)] = true;
        ++visited;
        stack.push_back(next);
      }
    }
  }
  return visited == num_nodes_;
}

bool Graph::is_regular(int k) const {
  for (int u = 0; u < num_nodes_; ++u) {
    if (degree(u) != k) return false;
  }
  return num_nodes_ > 0;
}

}  // namespace qaoaml::graph
