#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace qaoaml::graph {

Graph erdos_renyi_gnp(int num_nodes, double edge_probability, Rng& rng) {
  require(num_nodes >= 0, "erdos_renyi_gnp: num_nodes must be non-negative");
  require(edge_probability >= 0.0 && edge_probability <= 1.0,
          "erdos_renyi_gnp: probability must lie in [0, 1]");
  Graph g(num_nodes);
  for (int u = 0; u < num_nodes; ++u) {
    for (int v = u + 1; v < num_nodes; ++v) {
      if (rng.bernoulli(edge_probability)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph gnm_random(int num_nodes, int num_edges, Rng& rng) {
  const long long max_edges =
      static_cast<long long>(num_nodes) * (num_nodes - 1) / 2;
  require(num_edges >= 0 && num_edges <= max_edges,
          "gnm_random: edge count out of range");
  std::vector<std::pair<int, int>> all;
  all.reserve(static_cast<std::size_t>(max_edges));
  for (int u = 0; u < num_nodes; ++u) {
    for (int v = u + 1; v < num_nodes; ++v) all.emplace_back(u, v);
  }
  rng.shuffle(all);
  Graph g(num_nodes);
  for (int i = 0; i < num_edges; ++i) g.add_edge(all[static_cast<std::size_t>(i)].first,
                                                 all[static_cast<std::size_t>(i)].second);
  return g;
}

Graph random_regular(int num_nodes, int degree, Rng& rng, int max_attempts) {
  require(num_nodes > 0 && degree >= 0, "random_regular: bad arguments");
  require(degree < num_nodes, "random_regular: degree must be < num_nodes");
  require((static_cast<long long>(num_nodes) * degree) % 2 == 0,
          "random_regular: n*k must be even");

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // Configuration model: k "stubs" per node, paired uniformly at random.
    std::vector<int> stubs;
    stubs.reserve(static_cast<std::size_t>(num_nodes) *
                  static_cast<std::size_t>(degree));
    for (int u = 0; u < num_nodes; ++u) {
      for (int s = 0; s < degree; ++s) stubs.push_back(u);
    }
    rng.shuffle(stubs);

    Graph g(num_nodes);
    bool valid = true;
    for (std::size_t i = 0; i + 1 < stubs.size() && valid; i += 2) {
      const int u = stubs[i];
      const int v = stubs[i + 1];
      if (u == v || g.has_edge(u, v)) {
        valid = false;
      } else {
        g.add_edge(u, v);
      }
    }
    if (valid) return g;
  }
  throw NumericalError("random_regular: failed to find a simple pairing");
}

Graph cycle_graph(int num_nodes) {
  require(num_nodes >= 3, "cycle_graph: need at least 3 nodes");
  Graph g(num_nodes);
  for (int u = 0; u < num_nodes; ++u) g.add_edge(u, (u + 1) % num_nodes);
  return g;
}

Graph complete_graph(int num_nodes) {
  Graph g(num_nodes);
  for (int u = 0; u < num_nodes; ++u) {
    for (int v = u + 1; v < num_nodes; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph star_graph(int num_nodes) {
  require(num_nodes >= 2, "star_graph: need at least 2 nodes");
  Graph g(num_nodes);
  for (int u = 1; u < num_nodes; ++u) g.add_edge(0, u);
  return g;
}

Graph path_graph(int num_nodes) {
  require(num_nodes >= 2, "path_graph: need at least 2 nodes");
  Graph g(num_nodes);
  for (int u = 0; u + 1 < num_nodes; ++u) g.add_edge(u, u + 1);
  return g;
}

Graph watts_strogatz(int num_nodes, int neighbors, double rewire_probability,
                     Rng& rng) {
  require(num_nodes >= 4, "watts_strogatz: need at least 4 nodes");
  require(neighbors >= 2 && neighbors % 2 == 0,
          "watts_strogatz: neighbors must be even and >= 2");
  require(neighbors < num_nodes - 1,
          "watts_strogatz: neighbors must be < num_nodes - 1");
  require(rewire_probability >= 0.0 && rewire_probability <= 1.0,
          "watts_strogatz: rewire probability must lie in [0, 1]");

  Graph g(num_nodes);
  // Ring lattice: node u connects to its neighbors/2 clockwise
  // successors (each lattice edge appears exactly once).
  for (int u = 0; u < num_nodes; ++u) {
    for (int d = 1; d <= neighbors / 2; ++d) {
      g.add_edge(u, (u + d) % num_nodes);
    }
  }
  // Rewire in the lattice's construction order (deterministic in rng):
  // with probability beta, edge {u, u + d} becomes {u, w} for a uniform
  // w that is neither u nor already adjacent to u.  Skipping a rewire
  // whose u is already adjacent to every other node keeps termination
  // unconditional (matches the standard networkx behavior).
  for (int u = 0; u < num_nodes; ++u) {
    for (int d = 1; d <= neighbors / 2; ++d) {
      const int v = (u + d) % num_nodes;
      if (!rng.bernoulli(rewire_probability)) continue;
      if (g.degree(u) >= num_nodes - 1) continue;  // no free target
      int w = u;
      do {
        w = static_cast<int>(rng.uniform_int(
            static_cast<std::uint64_t>(num_nodes)));
      } while (w == u || g.has_edge(u, w));
      Graph next(num_nodes);
      for (const Edge& e : g.edges()) {
        if ((e.u == std::min(u, v) && e.v == std::max(u, v))) continue;
        next.add_edge(e.u, e.v, e.weight);
      }
      next.add_edge(u, w);
      g = std::move(next);
    }
  }
  return g;
}

Graph with_random_weights(const Graph& g, double lo, double hi, Rng& rng) {
  Graph out(g.num_nodes());
  for (const Edge& e : g.edges()) out.add_edge(e.u, e.v, rng.uniform(lo, hi));
  return out;
}

Graph with_gaussian_weights(const Graph& g, double mean, double stddev,
                            Rng& rng) {
  require(std::isfinite(mean) && std::isfinite(stddev),
          "with_gaussian_weights: mean and stddev must be finite");
  Graph out(g.num_nodes());
  for (const Edge& e : g.edges()) {
    out.add_edge(e.u, e.v, rng.normal(mean, stddev));
  }
  return out;
}

}  // namespace qaoaml::graph
