#include "graph/generators.hpp"

#include <numeric>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace qaoaml::graph {

Graph erdos_renyi_gnp(int num_nodes, double edge_probability, Rng& rng) {
  require(num_nodes >= 0, "erdos_renyi_gnp: num_nodes must be non-negative");
  require(edge_probability >= 0.0 && edge_probability <= 1.0,
          "erdos_renyi_gnp: probability must lie in [0, 1]");
  Graph g(num_nodes);
  for (int u = 0; u < num_nodes; ++u) {
    for (int v = u + 1; v < num_nodes; ++v) {
      if (rng.bernoulli(edge_probability)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph gnm_random(int num_nodes, int num_edges, Rng& rng) {
  const long long max_edges =
      static_cast<long long>(num_nodes) * (num_nodes - 1) / 2;
  require(num_edges >= 0 && num_edges <= max_edges,
          "gnm_random: edge count out of range");
  std::vector<std::pair<int, int>> all;
  all.reserve(static_cast<std::size_t>(max_edges));
  for (int u = 0; u < num_nodes; ++u) {
    for (int v = u + 1; v < num_nodes; ++v) all.emplace_back(u, v);
  }
  rng.shuffle(all);
  Graph g(num_nodes);
  for (int i = 0; i < num_edges; ++i) g.add_edge(all[static_cast<std::size_t>(i)].first,
                                                 all[static_cast<std::size_t>(i)].second);
  return g;
}

Graph random_regular(int num_nodes, int degree, Rng& rng, int max_attempts) {
  require(num_nodes > 0 && degree >= 0, "random_regular: bad arguments");
  require(degree < num_nodes, "random_regular: degree must be < num_nodes");
  require((static_cast<long long>(num_nodes) * degree) % 2 == 0,
          "random_regular: n*k must be even");

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // Configuration model: k "stubs" per node, paired uniformly at random.
    std::vector<int> stubs;
    stubs.reserve(static_cast<std::size_t>(num_nodes) *
                  static_cast<std::size_t>(degree));
    for (int u = 0; u < num_nodes; ++u) {
      for (int s = 0; s < degree; ++s) stubs.push_back(u);
    }
    rng.shuffle(stubs);

    Graph g(num_nodes);
    bool valid = true;
    for (std::size_t i = 0; i + 1 < stubs.size() && valid; i += 2) {
      const int u = stubs[i];
      const int v = stubs[i + 1];
      if (u == v || g.has_edge(u, v)) {
        valid = false;
      } else {
        g.add_edge(u, v);
      }
    }
    if (valid) return g;
  }
  throw NumericalError("random_regular: failed to find a simple pairing");
}

Graph cycle_graph(int num_nodes) {
  require(num_nodes >= 3, "cycle_graph: need at least 3 nodes");
  Graph g(num_nodes);
  for (int u = 0; u < num_nodes; ++u) g.add_edge(u, (u + 1) % num_nodes);
  return g;
}

Graph complete_graph(int num_nodes) {
  Graph g(num_nodes);
  for (int u = 0; u < num_nodes; ++u) {
    for (int v = u + 1; v < num_nodes; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph star_graph(int num_nodes) {
  require(num_nodes >= 2, "star_graph: need at least 2 nodes");
  Graph g(num_nodes);
  for (int u = 1; u < num_nodes; ++u) g.add_edge(0, u);
  return g;
}

Graph path_graph(int num_nodes) {
  require(num_nodes >= 2, "path_graph: need at least 2 nodes");
  Graph g(num_nodes);
  for (int u = 0; u + 1 < num_nodes; ++u) g.add_edge(u, u + 1);
  return g;
}

Graph with_random_weights(const Graph& g, double lo, double hi, Rng& rng) {
  Graph out(g.num_nodes());
  for (const Edge& e : g.edges()) out.add_edge(e.u, e.v, rng.uniform(lo, hi));
  return out;
}

}  // namespace qaoaml::graph
