// Random and structured graph generators.
//
// The paper draws problem instances from the Erdos-Renyi G(n, p) ensemble
// with edge probability 0.5 (330 graphs, 8 nodes) and uses 8-node
// 3-regular graphs for the trend figures; both generators live here,
// along with deterministic families used by tests and examples.
#ifndef QAOAML_GRAPH_GENERATORS_HPP
#define QAOAML_GRAPH_GENERATORS_HPP

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace qaoaml::graph {

/// Erdos-Renyi G(n, p): each of the n(n-1)/2 possible edges is present
/// independently with probability `edge_probability`.
Graph erdos_renyi_gnp(int num_nodes, double edge_probability, Rng& rng);

/// G(n, m): a graph drawn uniformly among those with exactly `num_edges`
/// edges.  Requires num_edges <= n(n-1)/2.
Graph gnm_random(int num_nodes, int num_edges, Rng& rng);

/// Uniform-ish random k-regular graph via the configuration (pairing)
/// model with rejection of loops/multi-edges.  Requires n*k even and
/// k < n.  Throws NumericalError if no valid pairing is found in
/// `max_attempts` tries (practically impossible for the small sizes used
/// here).
Graph random_regular(int num_nodes, int degree, Rng& rng,
                     int max_attempts = 1000);

/// Cycle 0-1-...-(n-1)-0.  Requires n >= 3.
Graph cycle_graph(int num_nodes);

/// Complete graph K_n.
Graph complete_graph(int num_nodes);

/// Star with node 0 at the center.  Requires n >= 2.
Graph star_graph(int num_nodes);

/// Simple path 0-1-...-(n-1).  Requires n >= 2.
Graph path_graph(int num_nodes);

/// Watts-Strogatz small-world graph: a ring lattice where every node is
/// joined to its `neighbors` nearest neighbors (neighbors even, in
/// [2, n - 1)), then each lattice edge's far endpoint is rewired with
/// probability `rewire_probability` to a uniform non-duplicate target.
/// The edge count is always n * neighbors / 2 — rewiring moves edges,
/// it never adds or removes them.  Requires n >= 4.
Graph watts_strogatz(int num_nodes, int neighbors, double rewire_probability,
                     Rng& rng);

/// Assigns every edge a weight drawn uniformly from [lo, hi).
Graph with_random_weights(const Graph& g, double lo, double hi, Rng& rng);

/// Assigns every edge a weight drawn from N(mean, stddev).  Throws
/// InvalidArgument when mean or stddev is non-finite (a NaN weight
/// would silently poison every downstream expectation value).
Graph with_gaussian_weights(const Graph& g, double mean, double stddev,
                            Rng& rng);

}  // namespace qaoaml::graph

#endif  // QAOAML_GRAPH_GENERATORS_HPP
