// Graph serialization: edge-list text format and Graphviz DOT export.
//
// The edge-list format is one header line "n <num_nodes>" followed by one
// "u v weight" line per edge; it round-trips exactly and is what the
// dataset cache stores.
#ifndef QAOAML_GRAPH_GRAPH_IO_HPP
#define QAOAML_GRAPH_GRAPH_IO_HPP

#include <string>

#include "graph/graph.hpp"

namespace qaoaml::graph {

/// Serializes `g` to the edge-list text format.
std::string to_edge_list(const Graph& g);

/// Parses the edge-list text format; throws InvalidArgument on malformed
/// input.
Graph from_edge_list(const std::string& text);

/// Graphviz DOT (undirected) representation, for visual inspection.
std::string to_dot(const Graph& g, const std::string& name = "G");

}  // namespace qaoaml::graph

#endif  // QAOAML_GRAPH_GRAPH_IO_HPP
