#include "ising/ising_model.hpp"

#include "common/error.hpp"

namespace qaoaml::ising {

IsingModel::IsingModel(int num_spins) : num_spins_(num_spins) {
  require(num_spins >= 1, "IsingModel: need at least one spin");
  fields_.assign(static_cast<std::size_t>(num_spins), 0.0);
}

IsingModel IsingModel::from_maxcut(const graph::Graph& g) {
  IsingModel model(g.num_nodes());
  // cut(s) = sum_{(u,v)} w_uv (1 - s_u s_v) / 2
  //        = W/2 - sum w_uv/2 * s_u s_v
  model.constant_ = g.total_weight() / 2.0;
  for (const graph::Edge& e : g.edges()) {
    model.add_coupling(e.u, e.v, -e.weight / 2.0);
  }
  return model;
}

void IsingModel::set_field(int i, double value) {
  require(i >= 0 && i < num_spins_, "IsingModel::set_field: out of range");
  fields_[static_cast<std::size_t>(i)] = value;
}

void IsingModel::add_coupling(int i, int j, double strength) {
  require(i >= 0 && i < num_spins_ && j >= 0 && j < num_spins_,
          "IsingModel::add_coupling: spin out of range");
  require(i != j, "IsingModel::add_coupling: i and j must differ");
  couplings_.push_back(Coupling{i, j, strength});
}

namespace {
inline double spin_of(std::uint64_t bits, int i) {
  return ((bits >> i) & 1ULL) == 0 ? 1.0 : -1.0;
}
}  // namespace

double IsingModel::energy(std::uint64_t bits) const {
  double acc = constant_;
  for (int i = 0; i < num_spins_; ++i) {
    acc += fields_[static_cast<std::size_t>(i)] * spin_of(bits, i);
  }
  for (const Coupling& c : couplings_) {
    acc += c.strength * spin_of(bits, c.i) * spin_of(bits, c.j);
  }
  return acc;
}

std::vector<double> IsingModel::diagonal() const {
  require(num_spins_ <= 26, "IsingModel::diagonal: supports up to 26 spins");
  const std::uint64_t dim = 1ULL << num_spins_;
  std::vector<double> diag(dim, constant_);
  for (int i = 0; i < num_spins_; ++i) {
    const double h = fields_[static_cast<std::size_t>(i)];
    if (h == 0.0) continue;
    const std::uint64_t mask = 1ULL << i;
    for (std::uint64_t z = 0; z < dim; ++z) {
      diag[z] += ((z & mask) == 0) ? h : -h;
    }
  }
  for (const Coupling& c : couplings_) {
    const std::uint64_t mi = 1ULL << c.i;
    const std::uint64_t mj = 1ULL << c.j;
    for (std::uint64_t z = 0; z < dim; ++z) {
      const bool same = ((z & mi) == 0) == ((z & mj) == 0);
      diag[z] += same ? c.strength : -c.strength;
    }
  }
  return diag;
}

}  // namespace qaoaml::ising
