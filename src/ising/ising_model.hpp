// Classical Ising cost models.
//
// A combinatorial cost function over spin variables s_i in {+1, -1}:
//   E(s) = constant + sum_i h_i s_i + sum_{i<j} J_ij s_i s_j
// MaxCut maps onto this with h = 0, J_uv = -w_uv / 2 and
// constant = W/2 where W is the total edge weight; then the *cut value*
// equals E(s) read as a maximization objective.
//
// Spins relate to qubit basis states by s_i = +1 for bit i = 0 and
// s_i = -1 for bit i = 1 (the eigenvalues of Pauli Z).
#ifndef QAOAML_ISING_ISING_MODEL_HPP
#define QAOAML_ISING_ISING_MODEL_HPP

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace qaoaml::ising {

/// One quadratic coupling term J * s_i * s_j.
struct Coupling {
  int i = 0;
  int j = 0;
  double strength = 0.0;
};

/// Diagonal (classical) Ising cost function.
class IsingModel {
 public:
  /// Model on `num_spins` spins with zero fields and couplings.
  explicit IsingModel(int num_spins);

  /// MaxCut objective of `g` as an Ising model: the energy of a spin
  /// configuration equals the weight of the induced cut.
  static IsingModel from_maxcut(const graph::Graph& g);

  int num_spins() const { return num_spins_; }
  double constant() const { return constant_; }
  const std::vector<double>& fields() const { return fields_; }
  const std::vector<Coupling>& couplings() const { return couplings_; }

  void set_constant(double value) { constant_ = value; }

  /// Sets the linear field h_i.
  void set_field(int i, double value);

  /// Adds a coupling J_ij (i != j); repeated pairs accumulate.
  void add_coupling(int i, int j, double strength);

  /// Energy of the configuration encoded by `bits` (bit i = 1 means
  /// s_i = -1).
  double energy(std::uint64_t bits) const;

  /// Energies of all 2^n configurations (the Hamiltonian diagonal).
  /// Requires num_spins <= 26.
  std::vector<double> diagonal() const;

 private:
  int num_spins_ = 0;
  double constant_ = 0.0;
  std::vector<double> fields_;
  std::vector<Coupling> couplings_;
};

}  // namespace qaoaml::ising

#endif  // QAOAML_ISING_ISING_MODEL_HPP
