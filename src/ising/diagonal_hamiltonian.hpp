// Precomputed diagonal cost Hamiltonian.
//
// QAOA for MaxCut only ever needs the cost operator's diagonal in the
// computational basis: the phase-separation layer multiplies amplitude z
// by exp(-i*gamma*C(z)) and the objective is sum_z |psi_z|^2 C(z).
// Precomputing C once per problem instance makes each optimizer
// iteration O(2^n) instead of O(|E| * 2^n).
#ifndef QAOAML_ISING_DIAGONAL_HAMILTONIAN_HPP
#define QAOAML_ISING_DIAGONAL_HAMILTONIAN_HPP

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "ising/ising_model.hpp"

namespace qaoaml::ising {

/// Immutable diagonal observable over n qubits.
class DiagonalHamiltonian {
 public:
  /// Wraps an explicit diagonal (length must be a power of two >= 2).
  explicit DiagonalHamiltonian(std::vector<double> diagonal);

  /// MaxCut cost operator of `g` (entry z = weight of the cut z).
  static DiagonalHamiltonian maxcut(const graph::Graph& g);

  /// Diagonal of a general Ising model.
  static DiagonalHamiltonian from_ising(const IsingModel& model);

  int num_qubits() const { return num_qubits_; }
  std::size_t dimension() const { return diagonal_.size(); }
  const std::vector<double>& diagonal() const { return diagonal_; }

  double value(std::uint64_t z) const { return diagonal_[z]; }

  /// Largest diagonal entry (the classical optimum for a maximization).
  double max_value() const;

  /// Smallest diagonal entry.
  double min_value() const;

  /// One basis state attaining max_value().
  std::uint64_t argmax() const;

 private:
  int num_qubits_ = 0;
  std::vector<double> diagonal_;
};

}  // namespace qaoaml::ising

#endif  // QAOAML_ISING_DIAGONAL_HAMILTONIAN_HPP
