#include "ising/diagonal_hamiltonian.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "graph/maxcut.hpp"

namespace qaoaml::ising {

DiagonalHamiltonian::DiagonalHamiltonian(std::vector<double> diagonal)
    : diagonal_(std::move(diagonal)) {
  require(diagonal_.size() >= 2, "DiagonalHamiltonian: need >= 2 entries");
  int qubits = 0;
  while ((std::size_t{1} << qubits) < diagonal_.size()) ++qubits;
  require(std::size_t{1} << qubits == diagonal_.size(),
          "DiagonalHamiltonian: length must be a power of two");
  num_qubits_ = qubits;
}

DiagonalHamiltonian DiagonalHamiltonian::maxcut(const graph::Graph& g) {
  return DiagonalHamiltonian(graph::cut_value_table(g));
}

DiagonalHamiltonian DiagonalHamiltonian::from_ising(const IsingModel& model) {
  return DiagonalHamiltonian(model.diagonal());
}

double DiagonalHamiltonian::max_value() const {
  return *std::max_element(diagonal_.begin(), diagonal_.end());
}

double DiagonalHamiltonian::min_value() const {
  return *std::min_element(diagonal_.begin(), diagonal_.end());
}

std::uint64_t DiagonalHamiltonian::argmax() const {
  return static_cast<std::uint64_t>(std::distance(
      diagonal_.begin(),
      std::max_element(diagonal_.begin(), diagonal_.end())));
}

}  // namespace qaoaml::ising
