// epsilon-insensitive support vector regression with RBF kernel (the
// paper's "RSVM").
//
// Trains the bias-free dual formulation (the bias is absorbed by adding
// a constant offset to the kernel, K' = K + 1) with exact coordinate
// ascent: each coordinate update is a closed-form soft-threshold step,
// which converges monotonically for the concave dual.
#ifndef QAOAML_ML_SVR_HPP
#define QAOAML_ML_SVR_HPP

#include "ml/model.hpp"

namespace qaoaml::ml {

/// Training knobs for SVRegressor.
struct SvrConfig {
  double c = 10.0;           ///< box constraint on dual coefficients
  double epsilon = 0.01;     ///< insensitive-tube half-width (target units, standardized)
  double gamma = 0.0;        ///< RBF width; <= 0 means 1 / num_features
  int max_sweeps = 200;      ///< full coordinate passes
  double tol = 1e-6;         ///< max coefficient change declaring convergence
};

/// Kernel SVR regressor.
class SVRegressor final : public Regressor {
 public:
  explicit SVRegressor(SvrConfig config = {});

  void fit(const Dataset& data) override;
  double predict(const std::vector<double>& features) const override;
  std::string name() const override { return "RSVM"; }
  bool fitted() const override { return fitted_; }
  RegressorKind kind() const override { return RegressorKind::kSvr; }

  /// Fitted state: RBF width, target moments, feature scaler, the
  /// standardized training matrix and the dual coefficients (see
  /// ml/serialize.hpp).
  void save_payload(std::ostream& os) const override;
  void load_payload(std::istream& is) override;

  /// Number of support vectors (non-zero dual coefficients).
  std::size_t support_vector_count() const;

 private:
  double kernel(const std::vector<double>& a, const std::vector<double>& b) const;

  SvrConfig config_;
  bool fitted_ = false;
  double gamma_ = 1.0;

  Standardizer x_scaler_;
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;

  linalg::Matrix train_x_;      // standardized
  std::vector<double> beta_;    // dual coefficients (alpha - alpha*)
};

}  // namespace qaoaml::ml

#endif  // QAOAML_ML_SVR_HPP
