#include "ml/model.hpp"

#include <cctype>

#include "common/error.hpp"
#include "ml/gpr.hpp"
#include "ml/linear_regression.hpp"
#include "ml/regression_tree.hpp"
#include "ml/svr.hpp"

namespace qaoaml::ml {

std::vector<double> Regressor::predict_many(const linalg::Matrix& x) const {
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict(x.row(r));
  return out;
}

const std::vector<RegressorKind>& all_regressors() {
  static const std::vector<RegressorKind> kAll{
      RegressorKind::kGpr,
      RegressorKind::kLinear,
      RegressorKind::kRegressionTree,
      RegressorKind::kSvr,
  };
  return kAll;
}

std::string to_string(RegressorKind kind) {
  switch (kind) {
    case RegressorKind::kGpr: return "GPR";
    case RegressorKind::kLinear: return "LM";
    case RegressorKind::kRegressionTree: return "RTREE";
    case RegressorKind::kSvr: return "RSVM";
  }
  return "unknown";
}

RegressorKind regressor_from_string(const std::string& name) {
  std::string upper = name;
  // unsigned char cast: std::toupper on a negative plain char is UB.
  for (char& c : upper) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  for (const RegressorKind kind : all_regressors()) {
    if (upper == to_string(kind)) return kind;
  }
  throw InvalidArgument("regressor_from_string: unknown model '" + name +
                        "' (expected GPR | LM | RTREE | RSVM)");
}

std::unique_ptr<Regressor> make_regressor(RegressorKind kind) {
  switch (kind) {
    case RegressorKind::kGpr:
      return std::make_unique<GPRegressor>();
    case RegressorKind::kLinear:
      return std::make_unique<LinearRegression>();
    case RegressorKind::kRegressionTree:
      return std::make_unique<RegressionTree>();
    case RegressorKind::kSvr:
      return std::make_unique<SVRegressor>();
  }
  throw InvalidArgument("make_regressor: unknown kind");
}

}  // namespace qaoaml::ml
