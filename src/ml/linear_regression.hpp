// Ordinary least squares linear regression (the paper's "LM"), solved
// through Householder QR; an optional ridge penalty stabilizes nearly
// collinear designs.
#ifndef QAOAML_ML_LINEAR_REGRESSION_HPP
#define QAOAML_ML_LINEAR_REGRESSION_HPP

#include "ml/model.hpp"

namespace qaoaml::ml {

/// y ~ intercept + w . x fit by least squares.
class LinearRegression final : public Regressor {
 public:
  /// `ridge` >= 0 adds an L2 penalty on the weights (not the intercept).
  explicit LinearRegression(double ridge = 0.0);

  void fit(const Dataset& data) override;
  double predict(const std::vector<double>& features) const override;
  std::string name() const override { return "LM"; }
  bool fitted() const override { return fitted_; }
  RegressorKind kind() const override { return RegressorKind::kLinear; }

  /// Fitted state: ridge, intercept, weights (see ml/serialize.hpp).
  void save_payload(std::ostream& os) const override;
  void load_payload(std::istream& is) override;

  double intercept() const;
  const std::vector<double>& weights() const;

 private:
  double ridge_ = 0.0;
  bool fitted_ = false;
  double intercept_ = 0.0;
  std::vector<double> weights_;
};

}  // namespace qaoaml::ml

#endif  // QAOAML_ML_LINEAR_REGRESSION_HPP
