// Versioned binary serialization of the ml/ regressors — the
// train-once / serve-many half of the predictor-bank story: a model
// fitted in one process (tools/train_predictor, a corpus shard host)
// is reloaded in another and produces *bit-identical* predictions.
//
// Wire format (all integers little-endian, doubles as IEEE-754 bit
// patterns):
//
//   [0..3]   magic   "QMLR"
//   [4..7]   u32     format version (currently 1)
//   [8..11]  u32     model kind tag (RegressorKind enumerator value)
//   [12..19] u64     payload size in bytes
//   [20..27] u64     FNV-1a checksum of the payload bytes
//   [28.. ]          payload (model-specific, written by save_payload)
//
// The header is validated before a single payload byte is interpreted:
// a wrong magic, an unknown version, an unknown kind tag, a short read
// or a checksum mismatch each throw InvalidArgument naming the problem
// — a truncated or bit-flipped bank file can never load as a silently
// different model.
//
// Contracts:
//  - **Exact round-trip.**  For every model kind, load_regressor over
//    save_regressor's bytes yields a model whose predict() output is
//    bit-identical to the source model's on every input (enforced by
//    tests/test_ml_serialize.cpp).  GPR additionally rebuilds its
//    Cholesky factor on load, so predict_with_uncertainty survives the
//    trip too.
//  - **Portability.**  The byte layout is endianness-pinned, so files
//    move between little- and big-endian hosts; bit-identical
//    *predictions* across different FP hardware are not promised (only
//    across processes on the same platform, the sharding use case).
//  - **Versioning.**  Layout changes bump kFormatVersion; old readers
//    reject new files and vice versa, loudly.
#ifndef QAOAML_ML_SERIALIZE_HPP
#define QAOAML_ML_SERIALIZE_HPP

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "ml/dataset.hpp"
#include "ml/model.hpp"

namespace qaoaml::ml {

/// Current regressor wire-format version (the u32 after the magic).
inline constexpr std::uint32_t kFormatVersion = 1;

/// Serializes a fitted regressor (header + payload, see above).
/// Throws InvalidArgument when the model is not fitted, Error on I/O
/// failure.
void save_regressor(std::ostream& os, const Regressor& model);

/// Reads one serialized regressor and returns it fitted and ready to
/// predict.  Throws InvalidArgument on bad magic, unsupported version,
/// unknown kind, truncation or checksum mismatch.
std::unique_ptr<Regressor> load_regressor(std::istream& is);

namespace io {

// Endianness-pinned primitives shared by every model's payload writer.
// Reads throw InvalidArgument("...: truncated...") on EOF, so a payload
// parser never has to check stream state itself.

void write_u32(std::ostream& os, std::uint32_t value);
void write_u64(std::ostream& os, std::uint64_t value);
void write_i32(std::ostream& os, std::int32_t value);
void write_f64(std::ostream& os, double value);
/// u64 length prefix + elements.
void write_vec(std::ostream& os, const std::vector<double>& values);
/// u64 rows + u64 cols + row-major elements.
void write_matrix(std::ostream& os, const linalg::Matrix& m);
/// Fitted Standardizer moments (two equal-length vectors).
void write_standardizer(std::ostream& os, const Standardizer& scaler);

std::uint32_t read_u32(std::istream& is);
std::uint64_t read_u64(std::istream& is);
std::int32_t read_i32(std::istream& is);
double read_f64(std::istream& is);
/// `max_elems` bounds the length prefix so a corrupt count surfaces as
/// InvalidArgument instead of a multi-GB allocation.
std::vector<double> read_vec(std::istream& is, std::uint64_t max_elems);
linalg::Matrix read_matrix(std::istream& is, std::uint64_t max_elems);
Standardizer read_standardizer(std::istream& is);

/// FNV-1a over a byte string (the header checksum).
std::uint64_t fnv1a(const std::string& bytes);

}  // namespace io

}  // namespace qaoaml::ml

#endif  // QAOAML_ML_SERIALIZE_HPP
