#include "ml/svr.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "ml/serialize.hpp"
#include "stats/descriptive.hpp"

namespace qaoaml::ml {

SVRegressor::SVRegressor(SvrConfig config) : config_(config) {
  require(config.c > 0.0, "SVRegressor: C must be positive");
  require(config.epsilon >= 0.0, "SVRegressor: epsilon must be >= 0");
  require(config.max_sweeps >= 1, "SVRegressor: max_sweeps must be >= 1");
}

double SVRegressor::kernel(const std::vector<double>& a,
                           const std::vector<double>& b) const {
  double quad = 0.0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    const double delta = a[d] - b[d];
    quad += delta * delta;
  }
  // +1 absorbs the bias term into the kernel.
  return std::exp(-gamma_ * quad) + 1.0;
}

void SVRegressor::fit(const Dataset& data) {
  data.validate();
  require(data.size() >= 2, "SVRegressor: need at least two samples");

  x_scaler_.fit(data.x);
  train_x_ = x_scaler_.transform(data.x);

  y_mean_ = stats::mean(data.y);
  const double y_sd = stats::stddev(data.y);
  y_scale_ = y_sd > 1e-12 ? y_sd : 1.0;
  const std::size_t n = data.size();
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = (data.y[i] - y_mean_) / y_scale_;

  gamma_ = config_.gamma > 0.0
               ? config_.gamma
               : 1.0 / static_cast<double>(data.num_features());

  // Precompute the (small, dense) kernel matrix.
  linalg::Matrix k(n, n);
  std::vector<std::vector<double>> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = train_x_.row(i);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double kij = kernel(rows[i], rows[j]);
      k(i, j) = kij;
      k(j, i) = kij;
    }
  }

  // Coordinate ascent on the dual:
  //   max_beta  -1/2 beta^T K beta + y^T beta - eps * ||beta||_1,
  //   beta in [-C, C]^n.
  // residual_i tracks sum_j K_ij beta_j for fast updates.
  beta_.assign(n, 0.0);
  std::vector<double> k_beta(n, 0.0);
  for (int sweep = 0; sweep < config_.max_sweeps; ++sweep) {
    double largest_change = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double kii = k(i, i);
      const double r = y[i] - (k_beta[i] - kii * beta_[i]);
      // Soft-threshold step: maximizer of the 1-D concave piecewise
      // quadratic in beta_i.
      double candidate = 0.0;
      if (r > config_.epsilon) {
        candidate = (r - config_.epsilon) / kii;
      } else if (r < -config_.epsilon) {
        candidate = (r + config_.epsilon) / kii;
      }
      candidate = std::clamp(candidate, -config_.c, config_.c);
      const double delta = candidate - beta_[i];
      if (delta != 0.0) {
        for (std::size_t j = 0; j < n; ++j) k_beta[j] += delta * k(i, j);
        beta_[i] = candidate;
        largest_change = std::max(largest_change, std::abs(delta));
      }
    }
    if (largest_change <= config_.tol) break;
  }
  fitted_ = true;
}

double SVRegressor::predict(const std::vector<double>& features) const {
  require(fitted_, "SVRegressor: predict before fit");
  const std::vector<double> xs = x_scaler_.transform_row(features);
  double acc = 0.0;
  for (std::size_t i = 0; i < train_x_.rows(); ++i) {
    if (beta_[i] == 0.0) continue;
    acc += beta_[i] * kernel(xs, train_x_.row(i));
  }
  return y_mean_ + y_scale_ * acc;
}

void SVRegressor::save_payload(std::ostream& os) const {
  require(fitted_, "SVRegressor::save_payload: not fitted");
  io::write_f64(os, gamma_);
  io::write_f64(os, y_mean_);
  io::write_f64(os, y_scale_);
  io::write_standardizer(os, x_scaler_);
  io::write_matrix(os, train_x_);
  io::write_vec(os, beta_);
}

void SVRegressor::load_payload(std::istream& is) {
  gamma_ = io::read_f64(is);
  require(std::isfinite(gamma_) && gamma_ > 0.0,
          "SVRegressor::load_payload: invalid RBF width");
  y_mean_ = io::read_f64(is);
  y_scale_ = io::read_f64(is);
  x_scaler_ = io::read_standardizer(is);
  train_x_ = io::read_matrix(is, 1u << 26);
  beta_ = io::read_vec(is, 1u << 26);
  require(!train_x_.empty() && beta_.size() == train_x_.rows() &&
              train_x_.cols() == x_scaler_.mean().size(),
          "SVRegressor::load_payload: inconsistent dimensions");
  fitted_ = true;
}

std::size_t SVRegressor::support_vector_count() const {
  require(fitted_, "SVRegressor: not fitted");
  std::size_t count = 0;
  for (const double b : beta_) {
    if (std::abs(b) > 1e-12) ++count;
  }
  return count;
}

}  // namespace qaoaml::ml
