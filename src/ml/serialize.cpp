#include "ml/serialize.hpp"

#include <algorithm>
#include <bit>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace qaoaml::ml {
namespace io {
namespace {

constexpr char kMagic[4] = {'Q', 'M', 'L', 'R'};

void write_bytes(std::ostream& os, const char* data, std::size_t size) {
  os.write(data, static_cast<std::streamsize>(size));
}

void read_bytes(std::istream& is, char* data, std::size_t size,
                const char* what) {
  is.read(data, static_cast<std::streamsize>(size));
  require(static_cast<std::size_t>(is.gcount()) == size,
          std::string("load_regressor: truncated file (while reading ") +
              what + ")");
}

}  // namespace

void write_u32(std::ostream& os, std::uint32_t value) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  write_bytes(os, bytes, 4);
}

void write_u64(std::ostream& os, std::uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  write_bytes(os, bytes, 8);
}

void write_i32(std::ostream& os, std::int32_t value) {
  write_u32(os, static_cast<std::uint32_t>(value));
}

void write_f64(std::ostream& os, double value) {
  write_u64(os, std::bit_cast<std::uint64_t>(value));
}

void write_vec(std::ostream& os, const std::vector<double>& values) {
  write_u64(os, values.size());
  for (const double v : values) write_f64(os, v);
}

void write_matrix(std::ostream& os, const linalg::Matrix& m) {
  write_u64(os, m.rows());
  write_u64(os, m.cols());
  for (const double v : m.data()) write_f64(os, v);
}

void write_standardizer(std::ostream& os, const Standardizer& scaler) {
  require(scaler.fitted(), "write_standardizer: scaler not fitted");
  write_vec(os, scaler.mean());
  write_vec(os, scaler.stddev());
}

std::uint32_t read_u32(std::istream& is) {
  char bytes[4];
  read_bytes(is, bytes, 4, "u32");
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

std::uint64_t read_u64(std::istream& is) {
  char bytes[8];
  read_bytes(is, bytes, 8, "u64");
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

std::int32_t read_i32(std::istream& is) {
  return static_cast<std::int32_t>(read_u32(is));
}

double read_f64(std::istream& is) {
  return std::bit_cast<double>(read_u64(is));
}

std::vector<double> read_vec(std::istream& is, std::uint64_t max_elems) {
  const std::uint64_t count = read_u64(is);
  require(count <= max_elems,
          "load_regressor: implausible vector length (corrupt payload)");
  std::vector<double> values(count);
  for (double& v : values) v = read_f64(is);
  return values;
}

linalg::Matrix read_matrix(std::istream& is, std::uint64_t max_elems) {
  const std::uint64_t rows = read_u64(is);
  const std::uint64_t cols = read_u64(is);
  require(rows <= max_elems && cols <= max_elems &&
              (rows == 0 || cols <= max_elems / rows),
          "load_regressor: implausible matrix shape (corrupt payload)");
  linalg::Matrix m(rows, cols);
  for (double& v : m.data()) v = read_f64(is);
  return m;
}

Standardizer read_standardizer(std::istream& is) {
  // Feature arity is small (tens); the generous bound only exists to
  // reject garbage counts.
  std::vector<double> mean = read_vec(is, 1u << 20);
  std::vector<double> stddev = read_vec(is, 1u << 20);
  return Standardizer::from_moments(std::move(mean), std::move(stddev));
}

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace io

void save_regressor(std::ostream& os, const Regressor& model) {
  require(model.fitted(), "save_regressor: model not fitted");

  // Render the payload first so the header can carry its exact size and
  // checksum — the two fields load_regressor validates before letting a
  // single payload byte reach a model parser.
  std::ostringstream payload_stream(std::ios::binary);
  model.save_payload(payload_stream);
  const std::string payload = payload_stream.str();

  os.write(io::kMagic, 4);
  io::write_u32(os, kFormatVersion);
  io::write_u32(os, static_cast<std::uint32_t>(model.kind()));
  io::write_u64(os, payload.size());
  io::write_u64(os, io::fnv1a(payload));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  require(os.good(), "save_regressor: write failed");
}

std::unique_ptr<Regressor> load_regressor(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  require(is.gcount() == 4 && std::equal(magic, magic + 4, io::kMagic),
          "load_regressor: not a qaoaml model file (bad magic)");

  const std::uint32_t version = io::read_u32(is);
  require(version == kFormatVersion,
          "load_regressor: unsupported format version " +
              std::to_string(version) + " (this build reads version " +
              std::to_string(kFormatVersion) + ")");

  const std::uint32_t tag = io::read_u32(is);
  require(tag <= static_cast<std::uint32_t>(RegressorKind::kSvr),
          "load_regressor: unknown model kind tag " + std::to_string(tag));
  const RegressorKind kind = static_cast<RegressorKind>(tag);

  const std::uint64_t payload_size = io::read_u64(is);
  const std::uint64_t checksum = io::read_u64(is);
  // Bank files hold a few hundred training rows; 1 GiB of payload can
  // only be a corrupt size field.
  require(payload_size <= (1ULL << 30),
          "load_regressor: implausible payload size (corrupt header)");

  std::string payload(payload_size, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(payload_size));
  require(static_cast<std::uint64_t>(is.gcount()) == payload_size,
          "load_regressor: truncated file (payload shorter than header "
          "declares)");
  require(io::fnv1a(payload) == checksum,
          "load_regressor: payload checksum mismatch (corrupt file)");

  std::istringstream payload_stream(payload, std::ios::binary);
  std::unique_ptr<Regressor> model = make_regressor(kind);
  model->load_payload(payload_stream);
  return model;
}

}  // namespace qaoaml::ml
