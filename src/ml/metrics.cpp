#include "ml/metrics.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/descriptive.hpp"

namespace qaoaml::ml {
namespace {
void check(const std::vector<double>& truth, const std::vector<double>& pred) {
  require(truth.size() == pred.size(), "metrics: length mismatch");
  require(!truth.empty(), "metrics: empty sample");
}
}  // namespace

double mse(const std::vector<double>& truth, const std::vector<double>& pred) {
  check(truth, pred);
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - pred[i];
    acc += d * d;
  }
  return acc / static_cast<double>(truth.size());
}

double rmse(const std::vector<double>& truth, const std::vector<double>& pred) {
  return std::sqrt(mse(truth, pred));
}

double mae(const std::vector<double>& truth, const std::vector<double>& pred) {
  check(truth, pred);
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    acc += std::abs(truth[i] - pred[i]);
  }
  return acc / static_cast<double>(truth.size());
}

double r2(const std::vector<double>& truth, const std::vector<double>& pred) {
  check(truth, pred);
  const double mean_truth = stats::mean(truth);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - mean_truth) * (truth[i] - mean_truth);
  }
  if (ss_tot == 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

double adjusted_r2(const std::vector<double>& truth,
                   const std::vector<double>& pred, std::size_t num_features) {
  check(truth, pred);
  const double n = static_cast<double>(truth.size());
  const double p = static_cast<double>(num_features);
  if (n - p - 1.0 <= 0.0) return r2(truth, pred);
  return 1.0 - (1.0 - r2(truth, pred)) * (n - 1.0) / (n - p - 1.0);
}

double mean_abs_percent_error(const std::vector<double>& truth,
                              const std::vector<double>& pred, double floor) {
  check(truth, pred);
  double acc = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (std::abs(truth[i]) <= floor) continue;
    acc += std::abs(truth[i] - pred[i]) / std::abs(truth[i]) * 100.0;
    ++used;
  }
  return used == 0 ? 0.0 : acc / static_cast<double>(used);
}

MetricReport compute_metrics(const std::vector<double>& truth,
                             const std::vector<double>& pred,
                             std::size_t num_features) {
  MetricReport report;
  report.mse = mse(truth, pred);
  report.rmse = rmse(truth, pred);
  report.mae = mae(truth, pred);
  report.r2 = r2(truth, pred);
  report.adjusted_r2 = adjusted_r2(truth, pred, num_features);
  return report;
}

}  // namespace qaoaml::ml
