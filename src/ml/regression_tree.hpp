// CART regression tree (the paper's "RTREE").
//
// Greedy binary splits minimizing the weighted sum of child variances;
// leaves predict their sample mean.  Complexity is controlled by maximum
// depth and minimum leaf size, mirroring the MATLAB fitrtree defaults in
// spirit.
#ifndef QAOAML_ML_REGRESSION_TREE_HPP
#define QAOAML_ML_REGRESSION_TREE_HPP

#include "ml/model.hpp"

namespace qaoaml::ml {

/// Training knobs for RegressionTree.
struct TreeConfig {
  int max_depth = 12;
  int min_samples_leaf = 3;
  int min_samples_split = 6;
};

/// Binary regression tree.
class RegressionTree final : public Regressor {
 public:
  explicit RegressionTree(TreeConfig config = {});

  void fit(const Dataset& data) override;
  double predict(const std::vector<double>& features) const override;
  std::string name() const override { return "RTREE"; }
  bool fitted() const override { return !nodes_.empty(); }
  RegressorKind kind() const override { return RegressorKind::kRegressionTree; }

  /// Fitted state: config + the flat node array (see ml/serialize.hpp).
  void save_payload(std::ostream& os) const override;
  void load_payload(std::istream& is) override;

  /// Number of nodes in the fitted tree.
  std::size_t node_count() const { return nodes_.size(); }

  /// Number of leaves in the fitted tree.
  std::size_t leaf_count() const;

  /// Depth of the fitted tree (1 for a single leaf).
  int depth() const;

 private:
  struct Node {
    int feature = -1;        ///< -1 marks a leaf
    double threshold = 0.0;  ///< go left when x[feature] <= threshold
    double value = 0.0;      ///< leaf prediction
    int left = -1;
    int right = -1;
  };

  int build(const Dataset& data, std::vector<std::size_t>& rows, int depth);
  int depth_of(int node) const;

  TreeConfig config_;
  std::vector<Node> nodes_;
};

}  // namespace qaoaml::ml

#endif  // QAOAML_ML_REGRESSION_TREE_HPP
