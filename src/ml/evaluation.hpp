// Model evaluation helpers: train/test scoring and k-fold cross
// validation, used by the Section III-C model-comparison ablation.
//
// Contracts: deterministic in (data, rng state) — fold shuffling draws
// only from the caller's Rng, and model fits are deterministic (see
// ml/model.hpp).  evaluate_on_split refits `model` in place, so it is
// not safe to share a model across concurrent calls.
#ifndef QAOAML_ML_EVALUATION_HPP
#define QAOAML_ML_EVALUATION_HPP

#include "common/rng.hpp"
#include "ml/metrics.hpp"
#include "ml/model.hpp"

namespace qaoaml::ml {

/// Fits `model` on `train` and scores it on `test`.
MetricReport evaluate_on_split(Regressor& model, const Dataset& train,
                               const Dataset& test);

/// k-fold cross validation; returns the metric report averaged over
/// folds.  Folds are contiguous after one shuffle.
MetricReport cross_validate(RegressorKind kind, const Dataset& data, int folds,
                            Rng& rng);

}  // namespace qaoaml::ml

#endif  // QAOAML_ML_EVALUATION_HPP
