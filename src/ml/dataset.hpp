// Supervised-learning dataset container and preprocessing.
//
// Rows are observations, columns are features; a single real-valued
// target per row (the predictor bank trains one model per QAOA angle).
//
// Contracts:
//  - **Determinism.**  train_test_split draws only from the caller's
//    Rng; Standardizer::fit is pure.  Same inputs, same outputs.
//  - **Thread-safety.**  A fitted Standardizer is immutable;
//    transform/transform_row are safe from many threads.
//  - **Serialization.**  A Standardizer round-trips through its
//    (mean, stddev) moments — from_moments is the deserialization
//    path used by ml/serialize.hpp.
#ifndef QAOAML_ML_DATASET_HPP
#define QAOAML_ML_DATASET_HPP

#include <cstddef>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace qaoaml::ml {

/// Feature matrix plus target vector.
struct Dataset {
  linalg::Matrix x;        ///< n_samples x n_features
  std::vector<double> y;   ///< n_samples targets

  std::size_t size() const { return y.size(); }
  std::size_t num_features() const { return x.cols(); }

  /// Appends one observation; feature arity must be consistent.
  void add(const std::vector<double>& features, double target);

  /// Throws InvalidArgument unless x and y dimensions are consistent and
  /// non-empty.
  void validate() const;
};

/// Shuffles rows and splits into (train, test) with `train_fraction` of
/// the rows in the first part (at least one row in each when possible).
std::pair<Dataset, Dataset> train_test_split(const Dataset& data,
                                             double train_fraction, Rng& rng);

/// Selects the given rows into a new dataset.
Dataset select_rows(const Dataset& data, const std::vector<std::size_t>& rows);

/// Per-feature affine scaling to zero mean / unit variance.  Constant
/// features keep scale 1 so transform stays invertible.
class Standardizer {
 public:
  /// Learns column means and standard deviations from `x`.
  void fit(const linalg::Matrix& x);

  /// Restores a fitted scaler from previously learned moments — the
  /// deserialization path (ml/serialize.hpp).  The vectors must have
  /// equal, non-zero length and every stddev must be positive.
  static Standardizer from_moments(std::vector<double> mean,
                                   std::vector<double> stddev);

  /// Applies the learned scaling.
  linalg::Matrix transform(const linalg::Matrix& x) const;

  /// Scales a single feature vector.
  std::vector<double> transform_row(const std::vector<double>& row) const;

  bool fitted() const { return !mean_.empty(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return stddev_; }

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace qaoaml::ml

#endif  // QAOAML_ML_DATASET_HPP
