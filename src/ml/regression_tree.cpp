#include "ml/regression_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "ml/serialize.hpp"

namespace qaoaml::ml {
namespace {

double mean_of(const Dataset& data, const std::vector<std::size_t>& rows) {
  double acc = 0.0;
  for (const std::size_t r : rows) acc += data.y[r];
  return acc / static_cast<double>(rows.size());
}

/// Sum of squared deviations from the mean over `rows`.
double sse_of(const Dataset& data, const std::vector<std::size_t>& rows) {
  const double m = mean_of(data, rows);
  double acc = 0.0;
  for (const std::size_t r : rows) {
    acc += (data.y[r] - m) * (data.y[r] - m);
  }
  return acc;
}

}  // namespace

RegressionTree::RegressionTree(TreeConfig config) : config_(config) {
  require(config.max_depth >= 1, "RegressionTree: max_depth must be >= 1");
  require(config.min_samples_leaf >= 1,
          "RegressionTree: min_samples_leaf must be >= 1");
}

void RegressionTree::fit(const Dataset& data) {
  data.validate();
  nodes_.clear();
  std::vector<std::size_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  build(data, rows, 1);
}

int RegressionTree::build(const Dataset& data, std::vector<std::size_t>& rows,
                          int depth) {
  const int index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<std::size_t>(index)].value = mean_of(data, rows);

  const bool can_split =
      depth < config_.max_depth &&
      static_cast<int>(rows.size()) >= config_.min_samples_split;
  if (!can_split) return index;

  const double parent_sse = sse_of(data, rows);
  if (parent_sse <= 1e-15) return index;  // already pure

  // Exhaustive best split: every feature, every midpoint between
  // consecutive distinct sorted values.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_sse = parent_sse;
  const std::size_t d = data.num_features();
  std::vector<std::size_t> sorted = rows;

  for (std::size_t feature = 0; feature < d; ++feature) {
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) {
                return data.x(a, feature) < data.x(b, feature);
              });
    // Prefix sums over the sorted order for O(1) split evaluation.
    double left_sum = 0.0;
    double left_sq = 0.0;
    double total_sum = 0.0;
    double total_sq = 0.0;
    for (const std::size_t r : sorted) {
      total_sum += data.y[r];
      total_sq += data.y[r] * data.y[r];
    }
    const double n_total = static_cast<double>(sorted.size());
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      const std::size_t r = sorted[i];
      left_sum += data.y[r];
      left_sq += data.y[r] * data.y[r];
      const double x_here = data.x(r, feature);
      const double x_next = data.x(sorted[i + 1], feature);
      if (x_next <= x_here) continue;  // no boundary between equal values
      const double n_left = static_cast<double>(i + 1);
      const double n_right = n_total - n_left;
      if (n_left < config_.min_samples_leaf ||
          n_right < config_.min_samples_leaf) {
        continue;
      }
      const double sse_left = left_sq - left_sum * left_sum / n_left;
      const double right_sum = total_sum - left_sum;
      const double sse_right =
          (total_sq - left_sq) - right_sum * right_sum / n_right;
      const double split_sse = sse_left + sse_right;
      if (split_sse < best_sse - 1e-12) {
        best_sse = split_sse;
        best_feature = static_cast<int>(feature);
        best_threshold = 0.5 * (x_here + x_next);
      }
    }
  }

  if (best_feature < 0) return index;

  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  for (const std::size_t r : rows) {
    if (data.x(r, static_cast<std::size_t>(best_feature)) <= best_threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }

  nodes_[static_cast<std::size_t>(index)].feature = best_feature;
  nodes_[static_cast<std::size_t>(index)].threshold = best_threshold;
  const int left = build(data, left_rows, depth + 1);
  nodes_[static_cast<std::size_t>(index)].left = left;
  const int right = build(data, right_rows, depth + 1);
  nodes_[static_cast<std::size_t>(index)].right = right;
  return index;
}

double RegressionTree::predict(const std::vector<double>& features) const {
  require(!nodes_.empty(), "RegressionTree: predict before fit");
  int node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    require(static_cast<std::size_t>(n.feature) < features.size(),
            "RegressionTree: feature arity mismatch");
    node = features[static_cast<std::size_t>(n.feature)] <= n.threshold
               ? n.left
               : n.right;
  }
  return nodes_[static_cast<std::size_t>(node)].value;
}

void RegressionTree::save_payload(std::ostream& os) const {
  require(!nodes_.empty(), "RegressionTree::save_payload: not fitted");
  io::write_i32(os, config_.max_depth);
  io::write_i32(os, config_.min_samples_leaf);
  io::write_i32(os, config_.min_samples_split);
  io::write_u64(os, nodes_.size());
  for (const Node& n : nodes_) {
    io::write_i32(os, n.feature);
    io::write_f64(os, n.threshold);
    io::write_f64(os, n.value);
    io::write_i32(os, n.left);
    io::write_i32(os, n.right);
  }
}

void RegressionTree::load_payload(std::istream& is) {
  TreeConfig config;
  config.max_depth = io::read_i32(is);
  config.min_samples_leaf = io::read_i32(is);
  config.min_samples_split = io::read_i32(is);
  require(config.max_depth >= 1 && config.min_samples_leaf >= 1,
          "RegressionTree::load_payload: invalid config");
  const std::uint64_t count = io::read_u64(is);
  require(count >= 1 && count <= (1u << 26),
          "RegressionTree::load_payload: implausible node count");
  std::vector<Node> nodes(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Node& n = nodes[i];
    n.feature = io::read_i32(is);
    n.threshold = io::read_f64(is);
    n.value = io::read_f64(is);
    n.left = io::read_i32(is);
    n.right = io::read_i32(is);
    // build() emits nodes in preorder, so children always carry larger
    // indices than their parent.  Enforcing that on load keeps a
    // corrupt payload from sending predict() out of bounds or into a
    // cycle.
    const bool leaf = n.feature < 0;
    const bool children_valid =
        leaf ? (n.left == -1 && n.right == -1)
             : (static_cast<std::uint64_t>(n.left) > i &&
                static_cast<std::uint64_t>(n.left) < count &&
                static_cast<std::uint64_t>(n.right) > i &&
                static_cast<std::uint64_t>(n.right) < count);
    require(children_valid, "RegressionTree::load_payload: invalid node links");
  }
  config_ = config;
  nodes_ = std::move(nodes);
}

std::size_t RegressionTree::leaf_count() const {
  std::size_t leaves = 0;
  for (const Node& n : nodes_) {
    if (n.feature < 0) ++leaves;
  }
  return leaves;
}

int RegressionTree::depth_of(int node) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.feature < 0) return 1;
  return 1 + std::max(depth_of(n.left), depth_of(n.right));
}

int RegressionTree::depth() const {
  require(!nodes_.empty(), "RegressionTree: not fitted");
  return depth_of(0);
}

}  // namespace qaoaml::ml
