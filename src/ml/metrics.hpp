// Regression quality metrics.
//
// The paper selects GPR because it achieves the "lowest MSE, RMSE, MAE
// and highest R^2 and adjusted R^2"; all five are implemented here, plus
// the mean absolute percentage error used for the Fig. 6 analysis.
//
// Contracts: every metric is a pure function of (truth, pred) — no
// state, safe from any thread; truth and pred must be equal-length and
// non-empty (InvalidArgument otherwise).
#ifndef QAOAML_ML_METRICS_HPP
#define QAOAML_ML_METRICS_HPP

#include <vector>

namespace qaoaml::ml {

/// Mean squared error.
double mse(const std::vector<double>& truth, const std::vector<double>& pred);

/// Root mean squared error.
double rmse(const std::vector<double>& truth, const std::vector<double>& pred);

/// Mean absolute error.
double mae(const std::vector<double>& truth, const std::vector<double>& pred);

/// Coefficient of determination; 1 is perfect, 0 matches predicting the
/// mean.  Returns 0 when the truth has zero variance.
double r2(const std::vector<double>& truth, const std::vector<double>& pred);

/// R^2 adjusted for the number of predictors `num_features`.
double adjusted_r2(const std::vector<double>& truth,
                   const std::vector<double>& pred, std::size_t num_features);

/// Mean of |truth - pred| / |truth| * 100 over entries where
/// |truth| > `floor` (guards division by near-zero optima).
double mean_abs_percent_error(const std::vector<double>& truth,
                              const std::vector<double>& pred,
                              double floor = 1e-8);

/// Bundle of all metrics for one model evaluation.
struct MetricReport {
  double mse = 0.0;
  double rmse = 0.0;
  double mae = 0.0;
  double r2 = 0.0;
  double adjusted_r2 = 0.0;
};

/// Computes every metric at once.
MetricReport compute_metrics(const std::vector<double>& truth,
                             const std::vector<double>& pred,
                             std::size_t num_features);

}  // namespace qaoaml::ml

#endif  // QAOAML_ML_METRICS_HPP
