// Gaussian process regression (the paper's best-performing model).
//
// Kernel: ARD squared exponential
//   k(x, x') = sf^2 * exp(-0.5 * sum_d (x_d - x'_d)^2 / l_d^2) + sn^2 * delta
// Features and targets are standardized internally.  Hyperparameters
// (log lengthscales, log signal variance, log noise variance) maximize
// the log marginal likelihood, optimized with this library's own
// multistart Nelder-Mead — the ML stack dogfoods the optim stack.
#ifndef QAOAML_ML_GPR_HPP
#define QAOAML_ML_GPR_HPP

#include <optional>

#include "linalg/cholesky.hpp"
#include "ml/model.hpp"

namespace qaoaml::ml {

/// Training knobs for GPRegressor.
struct GprConfig {
  bool optimize_hyperparameters = true;
  int hyper_restarts = 4;       ///< multistart count for ML-II
  int hyper_max_iterations = 120;
  double initial_lengthscale = 1.0;
  double initial_signal_stddev = 1.0;
  double initial_noise_stddev = 0.05;
  std::uint64_t seed = 0x5eed;
};

/// Exact GP regressor with ARD-SE kernel.
class GPRegressor final : public Regressor {
 public:
  explicit GPRegressor(GprConfig config = {});

  void fit(const Dataset& data) override;
  double predict(const std::vector<double>& features) const override;
  std::string name() const override { return "GPR"; }
  bool fitted() const override { return fitted_; }
  RegressorKind kind() const override { return RegressorKind::kGpr; }

  /// Fitted state: scalers, standardized training data, kernel
  /// hyperparameters, alpha and the log marginal (see ml/serialize.hpp).
  /// load_payload re-runs the (deterministic) Cholesky factorization so
  /// predict_with_uncertainty survives the round-trip, then restores
  /// alpha and the log marginal from the file verbatim.
  void save_payload(std::ostream& os) const override;
  void load_payload(std::istream& is) override;

  /// Posterior mean and standard deviation at one point.
  struct Prediction {
    double mean = 0.0;
    double stddev = 0.0;
  };
  Prediction predict_with_uncertainty(const std::vector<double>& features) const;

  /// Log marginal likelihood of the training data under the fitted
  /// hyperparameters (standardized units).
  double log_marginal_likelihood() const;

  /// Fitted kernel lengthscales (standardized feature units).
  const std::vector<double>& lengthscales() const { return lengthscales_; }
  double signal_stddev() const { return signal_stddev_; }
  double noise_stddev() const { return noise_stddev_; }

 private:
  double kernel(const std::vector<double>& a, const std::vector<double>& b) const;
  void factorize();
  double negative_log_marginal(const std::vector<double>& log_params);

  GprConfig config_;
  bool fitted_ = false;

  Standardizer x_scaler_;
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;

  linalg::Matrix train_x_;           // standardized
  std::vector<double> train_y_;      // standardized
  std::vector<double> lengthscales_; // per-dimension
  double signal_stddev_ = 1.0;
  double noise_stddev_ = 0.1;

  std::optional<linalg::Cholesky> chol_;  // factor of K + sn^2 I
  std::vector<double> alpha_;             // K^-1 y
  double log_marginal_ = 0.0;
};

}  // namespace qaoaml::ml

#endif  // QAOAML_ML_GPR_HPP
