#include "ml/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace qaoaml::ml {

void Dataset::add(const std::vector<double>& features, double target) {
  if (x.empty()) {
    x = linalg::Matrix(1, features.size());
    x.set_row(0, features);
  } else {
    require(features.size() == x.cols(), "Dataset::add: feature arity mismatch");
    linalg::Matrix grown(x.rows() + 1, x.cols());
    for (std::size_t r = 0; r < x.rows(); ++r) {
      for (std::size_t c = 0; c < x.cols(); ++c) grown(r, c) = x(r, c);
    }
    grown.set_row(x.rows(), features);
    x = std::move(grown);
  }
  y.push_back(target);
}

void Dataset::validate() const {
  require(!y.empty(), "Dataset: empty");
  require(x.rows() == y.size(), "Dataset: row count mismatch");
  require(x.cols() >= 1, "Dataset: need at least one feature");
}

std::pair<Dataset, Dataset> train_test_split(const Dataset& data,
                                             double train_fraction, Rng& rng) {
  data.validate();
  require(train_fraction > 0.0 && train_fraction < 1.0,
          "train_test_split: fraction must lie in (0, 1)");
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  std::size_t train_count = static_cast<std::size_t>(
      std::round(train_fraction * static_cast<double>(data.size())));
  train_count = std::clamp<std::size_t>(train_count, 1, data.size() - 1);

  const std::vector<std::size_t> train_rows(order.begin(),
                                            order.begin() + static_cast<std::ptrdiff_t>(train_count));
  const std::vector<std::size_t> test_rows(order.begin() + static_cast<std::ptrdiff_t>(train_count),
                                           order.end());
  return {select_rows(data, train_rows), select_rows(data, test_rows)};
}

Dataset select_rows(const Dataset& data, const std::vector<std::size_t>& rows) {
  Dataset out;
  out.x = linalg::Matrix(rows.size(), data.x.cols());
  out.y.resize(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    require(rows[i] < data.size(), "select_rows: index out of range");
    for (std::size_t c = 0; c < data.x.cols(); ++c) {
      out.x(i, c) = data.x(rows[i], c);
    }
    out.y[i] = data.y[rows[i]];
  }
  return out;
}

void Standardizer::fit(const linalg::Matrix& x) {
  require(x.rows() >= 1, "Standardizer::fit: empty matrix");
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  mean_.assign(d, 0.0);
  stddev_.assign(d, 1.0);
  for (std::size_t c = 0; c < d; ++c) {
    double acc = 0.0;
    for (std::size_t r = 0; r < n; ++r) acc += x(r, c);
    mean_[c] = acc / static_cast<double>(n);
    double var = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double delta = x(r, c) - mean_[c];
      var += delta * delta;
    }
    var /= static_cast<double>(n);
    stddev_[c] = var > 1e-24 ? std::sqrt(var) : 1.0;
  }
}

Standardizer Standardizer::from_moments(std::vector<double> mean,
                                        std::vector<double> stddev) {
  require(!mean.empty() && mean.size() == stddev.size(),
          "Standardizer::from_moments: moment vectors must match and be "
          "non-empty");
  for (const double sd : stddev) {
    require(std::isfinite(sd) && sd > 0.0,
            "Standardizer::from_moments: stddev must be finite and positive");
  }
  Standardizer out;
  out.mean_ = std::move(mean);
  out.stddev_ = std::move(stddev);
  return out;
}

linalg::Matrix Standardizer::transform(const linalg::Matrix& x) const {
  require(fitted(), "Standardizer: not fitted");
  require(x.cols() == mean_.size(), "Standardizer: feature arity mismatch");
  linalg::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = (x(r, c) - mean_[c]) / stddev_[c];
    }
  }
  return out;
}

std::vector<double> Standardizer::transform_row(
    const std::vector<double>& row) const {
  require(fitted(), "Standardizer: not fitted");
  require(row.size() == mean_.size(), "Standardizer: feature arity mismatch");
  std::vector<double> out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c) {
    out[c] = (row[c] - mean_[c]) / stddev_[c];
  }
  return out;
}

}  // namespace qaoaml::ml
