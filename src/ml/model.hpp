// Common interface over the four regression families from the paper:
// Gaussian Process Regression (GPR), Linear Regression (LM), Regression
// Tree (RTREE) and Support Vector Machine regression (RSVM).
#ifndef QAOAML_ML_MODEL_HPP
#define QAOAML_ML_MODEL_HPP

#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace qaoaml::ml {

/// Abstract single-output regressor.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on `data`; may be called again to retrain from scratch.
  virtual void fit(const Dataset& data) = 0;

  /// Predicts the target for one feature vector.  Requires fit().
  virtual double predict(const std::vector<double>& features) const = 0;

  /// Short display name ("GPR", "LM", ...).
  virtual std::string name() const = 0;

  virtual bool fitted() const = 0;

  /// Predicts every row of `x`.
  std::vector<double> predict_many(const linalg::Matrix& x) const;
};

/// The paper's model families.
enum class RegressorKind {
  kGpr,
  kLinear,
  kRegressionTree,
  kSvr,
};

/// All kinds, in the paper's Section III-C order.
const std::vector<RegressorKind>& all_regressors();

/// Display name ("GPR", "LM", "RTREE", "RSVM").
std::string to_string(RegressorKind kind);

/// Factory with default hyperparameters (the paper's setting).
std::unique_ptr<Regressor> make_regressor(RegressorKind kind);

}  // namespace qaoaml::ml

#endif  // QAOAML_ML_MODEL_HPP
