// Common interface over the four regression families from the paper:
// Gaussian Process Regression (GPR), Linear Regression (LM), Regression
// Tree (RTREE) and Support Vector Machine regression (RSVM).
//
// Contracts (all four concrete models):
//  - **Determinism.**  fit() is deterministic in (data, config): the
//    same training set always produces the same model — GPR's
//    hyperparameter search seeds its own Rng from GprConfig::seed, and
//    no model draws from global state.  This is what lets the sharded
//    experiment pipelines retrain "the same" predictor in every
//    process instead of shipping it.
//  - **Thread-safety.**  A fitted model is immutable: predict() /
//    predict_many() are safe to call concurrently from many threads.
//    fit() is not; train before fanning out.
//  - **Serialization.**  Every model round-trips through
//    ml/serialize.hpp (save_regressor / load_regressor): the reloaded
//    model's predict() is bit-identical to the source model's on every
//    input.  save_payload/load_payload are the per-model halves of
//    that wire format and should only be called through serialize.hpp,
//    which owns the versioned, checksummed framing.
#ifndef QAOAML_ML_MODEL_HPP
#define QAOAML_ML_MODEL_HPP

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace qaoaml::ml {

/// The paper's model families.
enum class RegressorKind {
  kGpr,
  kLinear,
  kRegressionTree,
  kSvr,
};

/// Abstract single-output regressor.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on `data`; may be called again to retrain from scratch.
  virtual void fit(const Dataset& data) = 0;

  /// Predicts the target for one feature vector.  Requires fit().
  virtual double predict(const std::vector<double>& features) const = 0;

  /// Short display name ("GPR", "LM", ...).
  virtual std::string name() const = 0;

  virtual bool fitted() const = 0;

  /// This model's RegressorKind (the serialization kind tag).
  virtual RegressorKind kind() const = 0;

  /// Writes / restores the fitted state (model-specific payload of the
  /// ml/serialize.hpp wire format).  save_payload requires fitted();
  /// load_payload leaves the model fitted and predicting bit-identically
  /// to the saved one.  Call through save_regressor / load_regressor,
  /// which add the versioned, checksummed header.
  virtual void save_payload(std::ostream& os) const = 0;
  virtual void load_payload(std::istream& is) = 0;

  /// Predicts every row of `x`.
  std::vector<double> predict_many(const linalg::Matrix& x) const;
};

/// All kinds, in the paper's Section III-C order.
const std::vector<RegressorKind>& all_regressors();

/// Display name ("GPR", "LM", "RTREE", "RSVM").
std::string to_string(RegressorKind kind);

/// Parses a display name ("GPR", "LM", "RTREE", "RSVM"),
/// case-insensitively; throws InvalidArgument on unknown names.  Used
/// by the CLIs and the transfer benches.
RegressorKind regressor_from_string(const std::string& name);

/// Factory with default hyperparameters (the paper's setting).
std::unique_ptr<Regressor> make_regressor(RegressorKind kind);

}  // namespace qaoaml::ml

#endif  // QAOAML_ML_MODEL_HPP
