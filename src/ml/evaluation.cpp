#include "ml/evaluation.hpp"

#include <numeric>

#include "common/error.hpp"

namespace qaoaml::ml {

MetricReport evaluate_on_split(Regressor& model, const Dataset& train,
                               const Dataset& test) {
  model.fit(train);
  const std::vector<double> pred = model.predict_many(test.x);
  return compute_metrics(test.y, pred, test.num_features());
}

MetricReport cross_validate(RegressorKind kind, const Dataset& data, int folds,
                            Rng& rng) {
  data.validate();
  require(folds >= 2, "cross_validate: need at least 2 folds");
  require(static_cast<std::size_t>(folds) <= data.size(),
          "cross_validate: more folds than samples");

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  MetricReport total;
  for (int fold = 0; fold < folds; ++fold) {
    std::vector<std::size_t> train_rows;
    std::vector<std::size_t> test_rows;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (static_cast<int>(i % static_cast<std::size_t>(folds)) == fold) {
        test_rows.push_back(order[i]);
      } else {
        train_rows.push_back(order[i]);
      }
    }
    const Dataset train = select_rows(data, train_rows);
    const Dataset test = select_rows(data, test_rows);
    auto model = make_regressor(kind);
    const MetricReport report = evaluate_on_split(*model, train, test);
    total.mse += report.mse;
    total.rmse += report.rmse;
    total.mae += report.mae;
    total.r2 += report.r2;
    total.adjusted_r2 += report.adjusted_r2;
  }
  const double k = static_cast<double>(folds);
  total.mse /= k;
  total.rmse /= k;
  total.mae /= k;
  total.r2 /= k;
  total.adjusted_r2 /= k;
  return total;
}

}  // namespace qaoaml::ml
