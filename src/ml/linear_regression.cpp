#include "ml/linear_regression.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/qr.hpp"
#include "ml/serialize.hpp"

namespace qaoaml::ml {

LinearRegression::LinearRegression(double ridge) : ridge_(ridge) {
  require(ridge >= 0.0, "LinearRegression: ridge must be non-negative");
}

void LinearRegression::fit(const Dataset& data) {
  data.validate();
  const std::size_t n = data.size();
  const std::size_t d = data.num_features();

  // Design matrix with a leading intercept column; ridge rows append
  // sqrt(lambda) * I below (intercept unpenalized).
  const std::size_t extra = ridge_ > 0.0 ? d : 0;
  require(n + extra >= d + 1,
          "LinearRegression: need at least num_features + 1 samples");
  linalg::Matrix design(n + extra, d + 1);
  std::vector<double> target(n + extra, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    design(r, 0) = 1.0;
    for (std::size_t c = 0; c < d; ++c) design(r, c + 1) = data.x(r, c);
    target[r] = data.y[r];
  }
  if (ridge_ > 0.0) {
    const double lambda_sqrt = std::sqrt(ridge_);
    for (std::size_t c = 0; c < d; ++c) design(n + c, c + 1) = lambda_sqrt;
  }

  std::vector<double> beta;
  try {
    beta = linalg::least_squares(design, target);
  } catch (const NumericalError&) {
    // Rank-deficient design (e.g. a constant feature duplicating the
    // intercept): refit with a tiny ridge, which resolves the
    // degeneracy while leaving well-posed problems untouched.
    LinearRegression fallback(std::max(ridge_, 1e-8));
    fallback.fit(data);
    intercept_ = fallback.intercept_;
    weights_ = fallback.weights_;
    fitted_ = true;
    return;
  }
  intercept_ = beta[0];
  weights_.assign(beta.begin() + 1, beta.end());
  fitted_ = true;
}

double LinearRegression::predict(const std::vector<double>& features) const {
  require(fitted_, "LinearRegression: predict before fit");
  require(features.size() == weights_.size(),
          "LinearRegression: feature arity mismatch");
  double acc = intercept_;
  for (std::size_t i = 0; i < features.size(); ++i) {
    acc += weights_[i] * features[i];
  }
  return acc;
}

void LinearRegression::save_payload(std::ostream& os) const {
  require(fitted_, "LinearRegression::save_payload: not fitted");
  io::write_f64(os, ridge_);
  io::write_f64(os, intercept_);
  io::write_vec(os, weights_);
}

void LinearRegression::load_payload(std::istream& is) {
  ridge_ = io::read_f64(is);
  require(std::isfinite(ridge_) && ridge_ >= 0.0,
          "LinearRegression::load_payload: invalid ridge");
  intercept_ = io::read_f64(is);
  weights_ = io::read_vec(is, 1u << 20);
  require(!weights_.empty(),
          "LinearRegression::load_payload: empty weight vector");
  fitted_ = true;
}

double LinearRegression::intercept() const {
  require(fitted_, "LinearRegression: not fitted");
  return intercept_;
}

const std::vector<double>& LinearRegression::weights() const {
  require(fitted_, "LinearRegression: not fitted");
  return weights_;
}

}  // namespace qaoaml::ml
