#include "ml/gpr.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "ml/serialize.hpp"
#include "optim/multistart.hpp"
#include "stats/descriptive.hpp"

namespace qaoaml::ml {

GPRegressor::GPRegressor(GprConfig config) : config_(config) {
  require(config.hyper_restarts >= 1, "GPRegressor: need >= 1 restart");
}

double GPRegressor::kernel(const std::vector<double>& a,
                           const std::vector<double>& b) const {
  double quad = 0.0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    const double delta = (a[d] - b[d]) / lengthscales_[d];
    quad += delta * delta;
  }
  return signal_stddev_ * signal_stddev_ * std::exp(-0.5 * quad);
}

void GPRegressor::factorize() {
  const std::size_t n = train_x_.rows();
  linalg::Matrix k(n, n);
  std::vector<std::vector<double>> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = train_x_.row(i);
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = signal_stddev_ * signal_stddev_ +
              noise_stddev_ * noise_stddev_;
    for (std::size_t j = i + 1; j < n; ++j) {
      const double kij = kernel(rows[i], rows[j]);
      k(i, j) = kij;
      k(j, i) = kij;
    }
  }
  chol_ = linalg::cholesky_with_jitter(k, 1e-10);
  alpha_ = chol_->solve(train_y_);

  // log p(y | X) = -0.5 y^T alpha - 0.5 log|K| - n/2 log(2 pi)
  double fit_term = 0.0;
  for (std::size_t i = 0; i < n; ++i) fit_term += train_y_[i] * alpha_[i];
  log_marginal_ = -0.5 * fit_term - 0.5 * chol_->log_determinant() -
                  0.5 * static_cast<double>(n) * std::log(2.0 * M_PI);
}

double GPRegressor::negative_log_marginal(
    const std::vector<double>& log_params) {
  const std::size_t d = train_x_.cols();
  for (std::size_t i = 0; i < d; ++i) {
    lengthscales_[i] = std::exp(std::clamp(log_params[i], -6.0, 6.0));
  }
  signal_stddev_ = std::exp(std::clamp(log_params[d], -6.0, 6.0));
  noise_stddev_ = std::exp(std::clamp(log_params[d + 1], -8.0, 4.0));
  try {
    factorize();
  } catch (const NumericalError&) {
    return 1e12;
  }
  return -log_marginal_;
}

void GPRegressor::fit(const Dataset& data) {
  data.validate();
  require(data.size() >= 2, "GPRegressor: need at least two samples");

  x_scaler_.fit(data.x);
  train_x_ = x_scaler_.transform(data.x);

  y_mean_ = stats::mean(data.y);
  const double y_sd = stats::stddev(data.y);
  y_scale_ = y_sd > 1e-12 ? y_sd : 1.0;
  train_y_.resize(data.y.size());
  for (std::size_t i = 0; i < data.y.size(); ++i) {
    train_y_[i] = (data.y[i] - y_mean_) / y_scale_;
  }

  const std::size_t d = train_x_.cols();
  lengthscales_.assign(d, config_.initial_lengthscale);
  signal_stddev_ = config_.initial_signal_stddev;
  noise_stddev_ = config_.initial_noise_stddev;

  if (config_.optimize_hyperparameters) {
    // Optimize log hyperparameters with this library's own optimizer.
    Rng rng(config_.seed);
    const std::size_t dim = d + 2;
    const optim::Bounds box = optim::Bounds::uniform(dim, -4.0, 4.0);
    optim::Options options;
    options.ftol = 1e-7;
    options.xtol = 1e-7;
    options.max_iterations = config_.hyper_max_iterations;
    options.max_evaluations = 4000;

    // negative_log_marginal mutates the regressor (hyperparameters,
    // Cholesky scratch), and multistart restarts run in parallel, so
    // each restart probes on its own copy; only the winning
    // hyperparameters touch *this, below.
    const optim::ObjectiveFactory make_objective = [this]() -> optim::ObjectiveFn {
      auto probe = std::make_shared<GPRegressor>(*this);
      return [probe](std::span<const double> p) {
        return probe->negative_log_marginal(
            std::vector<double>(p.begin(), p.end()));
      };
    };
    const optim::MultistartResult search = optim::multistart_minimize_factory(
        optim::OptimizerKind::kNelderMead, make_objective, box,
        config_.hyper_restarts, rng, options);
    // Re-factorize with the winning hyperparameters (the last probe is
    // not necessarily the best one).
    negative_log_marginal(search.best.x);
  } else {
    factorize();
  }
  fitted_ = true;
}

void GPRegressor::save_payload(std::ostream& os) const {
  require(fitted_, "GPRegressor::save_payload: not fitted");
  io::write_f64(os, y_mean_);
  io::write_f64(os, y_scale_);
  io::write_standardizer(os, x_scaler_);
  io::write_matrix(os, train_x_);
  io::write_vec(os, train_y_);
  io::write_vec(os, lengthscales_);
  io::write_f64(os, signal_stddev_);
  io::write_f64(os, noise_stddev_);
  io::write_vec(os, alpha_);
  io::write_f64(os, log_marginal_);
}

void GPRegressor::load_payload(std::istream& is) {
  y_mean_ = io::read_f64(is);
  y_scale_ = io::read_f64(is);
  x_scaler_ = io::read_standardizer(is);
  train_x_ = io::read_matrix(is, 1u << 26);
  train_y_ = io::read_vec(is, 1u << 26);
  lengthscales_ = io::read_vec(is, 1u << 20);
  signal_stddev_ = io::read_f64(is);
  noise_stddev_ = io::read_f64(is);
  const std::vector<double> alpha = io::read_vec(is, 1u << 26);
  const double log_marginal = io::read_f64(is);
  require(!train_x_.empty() && train_y_.size() == train_x_.rows() &&
              alpha.size() == train_x_.rows() &&
              lengthscales_.size() == train_x_.cols() &&
              train_x_.cols() == x_scaler_.mean().size(),
          "GPRegressor::load_payload: inconsistent dimensions");
  for (const double l : lengthscales_) {
    require(std::isfinite(l) && l > 0.0,
            "GPRegressor::load_payload: invalid lengthscale");
  }
  require(std::isfinite(signal_stddev_) && std::isfinite(noise_stddev_),
          "GPRegressor::load_payload: non-finite kernel hyperparameters");
  // Rebuild the Cholesky factor from the loaded hyperparameters (pure
  // FP recomputation, deterministic), then pin alpha / log-marginal to
  // the stored values so predict() is byte-for-byte the saved model's.
  factorize();
  alpha_ = alpha;
  log_marginal_ = log_marginal;
  fitted_ = true;
}

double GPRegressor::predict(const std::vector<double>& features) const {
  require(fitted_, "GPRegressor: predict before fit");
  const std::vector<double> xs = x_scaler_.transform_row(features);
  const std::size_t n = train_x_.rows();
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += kernel(xs, train_x_.row(i)) * alpha_[i];
  }
  return y_mean_ + y_scale_ * acc;
}

GPRegressor::Prediction GPRegressor::predict_with_uncertainty(
    const std::vector<double>& features) const {
  require(fitted_, "GPRegressor: predict before fit");
  const std::vector<double> xs = x_scaler_.transform_row(features);
  const std::size_t n = train_x_.rows();

  std::vector<double> k_star(n);
  for (std::size_t i = 0; i < n; ++i) k_star[i] = kernel(xs, train_x_.row(i));

  double mean_std = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean_std += k_star[i] * alpha_[i];

  // var = k(x,x) + sn^2 - ||L^-1 k*||^2
  const std::vector<double> v = chol_->solve_lower(k_star);
  double explained = 0.0;
  for (const double vi : v) explained += vi * vi;
  const double prior = signal_stddev_ * signal_stddev_ +
                       noise_stddev_ * noise_stddev_;
  const double variance = std::max(prior - explained, 0.0);

  Prediction out;
  out.mean = y_mean_ + y_scale_ * mean_std;
  out.stddev = y_scale_ * std::sqrt(variance);
  return out;
}

double GPRegressor::log_marginal_likelihood() const {
  require(fitted_, "GPRegressor: not fitted");
  return log_marginal_;
}

}  // namespace qaoaml::ml
