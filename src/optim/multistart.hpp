// Multi-start driver: best-of-k optimization from random initial points.
//
// The paper's data-generation phase optimizes every instance "from 20
// random initializations" and keeps the best optimum; its naive baseline
// reports per-run statistics over the same random starts.  Both views
// are provided here.
#ifndef QAOAML_OPTIM_MULTISTART_HPP
#define QAOAML_OPTIM_MULTISTART_HPP

#include <vector>

#include "common/rng.hpp"
#include "optim/optimizer.hpp"

namespace qaoaml::optim {

/// Result of a multi-start run.
struct MultistartResult {
  OptimResult best;                ///< run with the lowest objective
  std::vector<OptimResult> runs;   ///< every individual run
  int total_nfev = 0;              ///< sum of nfev over all runs
};

/// Runs `minimize` from `restarts` initial points sampled uniformly in
/// `bounds` and returns all runs plus the best.  Restarts execute in
/// parallel (QAOAML_THREADS workers) sharing `fn`, so the objective must
/// be safe to call concurrently — true for any pure function of its
/// input, e.g. MaxCutQaoa::objective().  For stateful objectives use the
/// factory overload below.  Results are deterministic: the initial
/// points are drawn from `rng` up front in restart order and each run
/// depends only on its own starting point.
MultistartResult multistart_minimize(OptimizerKind kind, const ObjectiveFn& fn,
                                     const Bounds& bounds, int restarts,
                                     Rng& rng, const Options& options = {});

/// Creates one objective per restart; the factory itself is called
/// concurrently but each produced objective is used by a single run.
/// This is how buffered (workspace-reusing) objectives go parallel.
using ObjectiveFactory = std::function<ObjectiveFn()>;
MultistartResult multistart_minimize_factory(OptimizerKind kind,
                                             const ObjectiveFactory& make_fn,
                                             const Bounds& bounds, int restarts,
                                             Rng& rng,
                                             const Options& options = {});

/// Samples one uniform point inside `bounds` (bounds must be finite).
std::vector<double> random_point(const Bounds& bounds, Rng& rng);

}  // namespace qaoaml::optim

#endif  // QAOAML_OPTIM_MULTISTART_HPP
