// Multi-start driver: best-of-k optimization from random initial points.
//
// The paper's data-generation phase optimizes every instance "from 20
// random initializations" and keeps the best optimum; its naive baseline
// reports per-run statistics over the same random starts.  Both views
// are provided here.
#ifndef QAOAML_OPTIM_MULTISTART_HPP
#define QAOAML_OPTIM_MULTISTART_HPP

#include <vector>

#include "common/rng.hpp"
#include "optim/optimizer.hpp"

namespace qaoaml::optim {

/// Result of a multi-start run.
struct MultistartResult {
  OptimResult best;                ///< run with the lowest objective
  std::vector<OptimResult> runs;   ///< every individual run
  int total_nfev = 0;              ///< sum of nfev over all runs
};

/// Runs `minimize` from `restarts` initial points sampled uniformly in
/// `bounds` and returns all runs plus the best.
MultistartResult multistart_minimize(OptimizerKind kind, const ObjectiveFn& fn,
                                     const Bounds& bounds, int restarts,
                                     Rng& rng, const Options& options = {});

/// Samples one uniform point inside `bounds` (bounds must be finite).
std::vector<double> random_point(const Bounds& bounds, Rng& rng);

}  // namespace qaoaml::optim

#endif  // QAOAML_OPTIM_MULTISTART_HPP
