#include "optim/test_functions.hpp"

#include <cmath>

namespace qaoaml::optim::testfn {

double sphere(std::span<const double> x) {
  double acc = 0.0;
  for (const double v : x) acc += v * v;
  return acc;
}

double rosenbrock(std::span<const double> x) {
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) {
    const double a = x[i + 1] - x[i] * x[i];
    const double b = 1.0 - x[i];
    acc += 100.0 * a * a + b * b;
  }
  return acc;
}

double booth(std::span<const double> x) {
  const double a = x[0] + 2.0 * x[1] - 7.0;
  const double b = 2.0 * x[0] + x[1] - 5.0;
  return a * a + b * b;
}

double rastrigin(std::span<const double> x) {
  double acc = 10.0 * static_cast<double>(x.size());
  for (const double v : x) {
    acc += v * v - 10.0 * std::cos(2.0 * M_PI * v);
  }
  return acc;
}

double cosine_valley(std::span<const double> x) {
  double acc = 0.0;
  for (const double v : x) acc -= std::sin(v) * std::sin(v) * std::sin(v);
  return acc;
}

}  // namespace qaoaml::optim::testfn
