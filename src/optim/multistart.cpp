#include "optim/multistart.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace qaoaml::optim {

std::vector<double> random_point(const Bounds& bounds, Rng& rng) {
  std::vector<double> x(bounds.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double lo = bounds.lower()[i];
    const double hi = bounds.upper()[i];
    require(std::isfinite(lo) && std::isfinite(hi),
            "random_point: bounds must be finite");
    x[i] = rng.uniform(lo, hi);
  }
  return x;
}

namespace {

/// Shared driver: draws every starting point first (preserving the rng
/// sequence of the original sequential loop), runs the restarts in
/// parallel, then reduces in restart order so best/total are identical
/// for every thread count.
MultistartResult run_multistart(
    OptimizerKind kind, const std::function<ObjectiveFn(std::size_t)>& fn_for,
    const Bounds& bounds, int restarts, Rng& rng, const Options& options) {
  require(restarts >= 1, "multistart_minimize: need at least one restart");
  std::vector<std::vector<double>> starts;
  starts.reserve(static_cast<std::size_t>(restarts));
  for (int run = 0; run < restarts; ++run) {
    starts.push_back(random_point(bounds, rng));
  }

  std::vector<OptimResult> results(static_cast<std::size_t>(restarts));
  parallel_for(static_cast<std::size_t>(restarts), [&](std::size_t run) {
    results[run] = minimize(kind, fn_for(run), starts[run], bounds, options);
  });

  MultistartResult out;
  for (OptimResult& result : results) {
    out.total_nfev += result.nfev;
    if (out.runs.empty() || result.fun < out.best.fun) {
      out.best = result;
    }
    out.runs.push_back(std::move(result));
  }
  return out;
}

}  // namespace

MultistartResult multistart_minimize(OptimizerKind kind, const ObjectiveFn& fn,
                                     const Bounds& bounds, int restarts,
                                     Rng& rng, const Options& options) {
  return run_multistart(
      kind, [&fn](std::size_t) { return fn; }, bounds, restarts, rng, options);
}

MultistartResult multistart_minimize_factory(OptimizerKind kind,
                                             const ObjectiveFactory& make_fn,
                                             const Bounds& bounds, int restarts,
                                             Rng& rng, const Options& options) {
  require(static_cast<bool>(make_fn),
          "multistart_minimize_factory: empty factory");
  return run_multistart(
      kind, [&make_fn](std::size_t) { return make_fn(); }, bounds, restarts,
      rng, options);
}

}  // namespace qaoaml::optim
