#include "optim/multistart.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qaoaml::optim {

std::vector<double> random_point(const Bounds& bounds, Rng& rng) {
  std::vector<double> x(bounds.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double lo = bounds.lower()[i];
    const double hi = bounds.upper()[i];
    require(std::isfinite(lo) && std::isfinite(hi),
            "random_point: bounds must be finite");
    x[i] = rng.uniform(lo, hi);
  }
  return x;
}

MultistartResult multistart_minimize(OptimizerKind kind, const ObjectiveFn& fn,
                                     const Bounds& bounds, int restarts,
                                     Rng& rng, const Options& options) {
  require(restarts >= 1, "multistart_minimize: need at least one restart");
  MultistartResult out;
  for (int run = 0; run < restarts; ++run) {
    const std::vector<double> x0 = random_point(bounds, rng);
    OptimResult result = minimize(kind, fn, x0, bounds, options);
    out.total_nfev += result.nfev;
    if (out.runs.empty() || result.fun < out.best.fun) {
      out.best = result;
    }
    out.runs.push_back(std::move(result));
  }
  return out;
}

}  // namespace qaoaml::optim
