#include "optim/slsqp.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/vector_ops.hpp"
#include "optim/finite_diff.hpp"

namespace qaoaml::optim {

using linalg::Cholesky;
using linalg::dot;
using linalg::Matrix;
using linalg::sub;

std::vector<double> solve_box_qp(const Matrix& b, const std::vector<double>& g,
                                 const std::vector<double>& lo,
                                 const std::vector<double>& hi) {
  const std::size_t n = g.size();
  require(b.rows() == n && b.cols() == n, "solve_box_qp: shape mismatch");
  require(lo.size() == n && hi.size() == n, "solve_box_qp: bounds mismatch");

  // Active-set loop: coordinates pinned at a bound are eliminated and the
  // reduced (free) system is re-solved.  state: 0 free, -1 at lo, +1 at hi.
  std::vector<int> state(n, 0);
  std::vector<double> d(n, 0.0);

  const int max_passes = static_cast<int>(3 * n + 10);
  for (int pass = 0; pass < max_passes; ++pass) {
    std::vector<std::size_t> free_idx;
    for (std::size_t i = 0; i < n; ++i) {
      d[i] = state[i] == -1 ? lo[i] : state[i] == 1 ? hi[i] : 0.0;
      if (state[i] == 0) free_idx.push_back(i);
    }

    if (!free_idx.empty()) {
      // Reduced system: B_ff d_f = -(g_f + B_fa d_a).
      Matrix bff(free_idx.size(), free_idx.size());
      std::vector<double> rhs(free_idx.size());
      for (std::size_t r = 0; r < free_idx.size(); ++r) {
        const std::size_t i = free_idx[r];
        double acc = g[i];
        for (std::size_t j = 0; j < n; ++j) {
          if (state[j] != 0) acc += b(i, j) * d[j];
        }
        rhs[r] = -acc;
        for (std::size_t c = 0; c < free_idx.size(); ++c) {
          bff(r, c) = b(i, free_idx[c]);
        }
      }
      const std::vector<double> df = cholesky_with_jitter(bff).solve(rhs);
      for (std::size_t r = 0; r < free_idx.size(); ++r) d[free_idx[r]] = df[r];
    }

    // Clamp the most violated free coordinate (if any) and iterate.
    std::size_t worst = n;
    double worst_violation = 0.0;
    for (const std::size_t i : free_idx) {
      const double below = lo[i] - d[i];
      const double above = d[i] - hi[i];
      const double violation = std::max(below, above);
      if (violation > worst_violation + 1e-15) {
        worst_violation = violation;
        worst = i;
      }
    }
    if (worst != n) {
      state[worst] = (lo[worst] - d[worst] > d[worst] - hi[worst]) ? -1 : 1;
      continue;
    }

    // KKT check: release a pinned coordinate whose multiplier has the
    // wrong sign (i.e. the model wants to move it back inside the box).
    std::size_t release = n;
    double strongest = 1e-12;
    for (std::size_t i = 0; i < n; ++i) {
      if (state[i] == 0) continue;
      double lagrange = g[i];
      for (std::size_t j = 0; j < n; ++j) lagrange += b(i, j) * d[j];
      // At lower bound the multiplier must be >= 0; at upper, <= 0.
      const double badness = state[i] == -1 ? -lagrange : lagrange;
      if (badness > strongest) {
        strongest = badness;
        release = i;
      }
    }
    if (release == n) return d;  // KKT satisfied
    state[release] = 0;
  }
  return d;  // best effort; loop limit is generous for the sizes used here
}

OptimResult slsqp(const ObjectiveFn& fn, std::span<const double> x0,
                  const Bounds& bounds, const Options& options) {
  const std::size_t n = x0.size();
  require(n >= 1, "slsqp: empty initial point");
  require(bounds.size() == n, "slsqp: bounds dimension mismatch");

  CountingObjective counting(fn, options.max_evaluations);

  std::vector<double> x = bounds.clamp(x0);
  double f = counting(x);
  std::vector<double> grad =
      forward_diff_gradient(counting, x, f, options.fd_step, bounds);

  Matrix b = Matrix::identity(n);

  OptimResult result;
  result.reason = StopReason::kMaxIterations;

  int iteration = 0;
  for (; iteration < options.max_iterations; ++iteration) {
    if (counting.exhausted()) {
      result.reason = StopReason::kMaxEvaluations;
      break;
    }

    std::vector<double> lo(n);
    std::vector<double> hi(n);
    for (std::size_t i = 0; i < n; ++i) {
      lo[i] = bounds.lower()[i] - x[i];
      hi[i] = bounds.upper()[i] - x[i];
    }
    const std::vector<double> d = solve_box_qp(b, grad, lo, hi);

    // A vanishing QP step means first-order optimality inside the box;
    // the threshold is fixed (not options.xtol, which is the Nelder-Mead
    // simplex tolerance).
    const double step_norm = linalg::norm2(d);
    if (step_norm <= 1e-10) {
      result.reason = StopReason::kConverged;
      break;
    }

    // Armijo backtracking along d.
    const double directional = dot(grad, d);
    const double c1 = 1e-4;
    double alpha = 1.0;
    bool accepted = false;
    double f_new = f;
    std::vector<double> x_new = x;
    for (int trial = 0; trial < 25 && !counting.exhausted(); ++trial) {
      std::vector<double> candidate = x;
      linalg::axpy(alpha, d, candidate);
      candidate = bounds.clamp(candidate);
      const double f_candidate = counting(candidate);
      if (f_candidate <= f + c1 * alpha * directional) {
        x_new = std::move(candidate);
        f_new = f_candidate;
        accepted = true;
        break;
      }
      alpha *= 0.5;
    }
    if (!accepted) {
      result.reason = counting.exhausted() ? StopReason::kMaxEvaluations
                                           : StopReason::kStalled;
      break;
    }
    if (counting.exhausted()) {
      x = std::move(x_new);
      f = f_new;
      result.reason = StopReason::kMaxEvaluations;
      break;
    }

    std::vector<double> grad_new =
        forward_diff_gradient(counting, x_new, f_new, options.fd_step, bounds);

    // Damped BFGS update (Powell's modification keeps B positive definite).
    const std::vector<double> s = sub(x_new, x);
    std::vector<double> y = sub(grad_new, grad);
    const std::vector<double> bs = b * s;
    const double sbs = dot(s, bs);
    const double sy = dot(s, y);
    if (sbs > 1e-14) {
      if (sy < 0.2 * sbs) {
        const double theta = 0.8 * sbs / (sbs - sy);
        for (std::size_t i = 0; i < n; ++i) {
          y[i] = theta * y[i] + (1.0 - theta) * bs[i];
        }
      }
      const double sy_damped = dot(s, y);
      if (sy_damped > 1e-14) {
        for (std::size_t r = 0; r < n; ++r) {
          for (std::size_t c = 0; c < n; ++c) {
            b(r, c) += y[r] * y[c] / sy_damped - bs[r] * bs[c] / sbs;
          }
        }
      }
    }

    const double decrease = f - f_new;
    const double scale = std::max({std::abs(f), std::abs(f_new), 1.0});
    x = std::move(x_new);
    f = f_new;
    grad = std::move(grad_new);

    if (decrease >= 0.0 && decrease <= options.ftol * scale) {
      result.reason = StopReason::kConverged;
      ++iteration;
      break;
    }
  }

  result.x = std::move(x);
  result.fun = f;
  result.nfev = counting.count();
  result.nit = iteration;
  return result;
}

}  // namespace qaoaml::optim
