// Finite-difference gradient approximation.
//
// The gradient-based optimizers (L-BFGS-B, SLSQP) treat the QAOA
// expectation as a black box, exactly as SciPy does when no analytic
// Jacobian is supplied; every probe counts as one function call.
#ifndef QAOAML_OPTIM_FINITE_DIFF_HPP
#define QAOAML_OPTIM_FINITE_DIFF_HPP

#include <span>
#include <vector>

#include "optim/types.hpp"

namespace qaoaml::optim {

/// Forward-difference gradient at `x`, reusing the known value f(x)=f0.
/// Costs exactly n evaluations of `fn`.  When a coordinate sits at its
/// upper bound, the probe steps backward instead so it stays feasible.
std::vector<double> forward_diff_gradient(CountingObjective& fn,
                                          std::span<const double> x, double f0,
                                          double step, const Bounds& bounds);

/// Central-difference gradient (2n evaluations); used by tests for
/// higher-accuracy reference gradients.
std::vector<double> central_diff_gradient(CountingObjective& fn,
                                          std::span<const double> x,
                                          double step);

}  // namespace qaoaml::optim

#endif  // QAOAML_OPTIM_FINITE_DIFF_HPP
