// Uniform front end over the four classical optimizers studied in the
// paper (L-BFGS-B, Nelder-Mead, SLSQP, COBYLA).
#ifndef QAOAML_OPTIM_OPTIMIZER_HPP
#define QAOAML_OPTIM_OPTIMIZER_HPP

#include <string>
#include <vector>

#include "optim/types.hpp"

namespace qaoaml::optim {

/// The optimizer families from the paper's Table I.
enum class OptimizerKind {
  kLbfgsb,
  kNelderMead,
  kSlsqp,
  kCobyla,
};

/// All kinds, in the paper's Table I order.
const std::vector<OptimizerKind>& all_optimizers();

/// Display name matching the paper ("L-BFGS-B", "Nelder-Mead", ...).
std::string to_string(OptimizerKind kind);

/// Parses a display name (case-sensitive); throws InvalidArgument on
/// unknown names.
OptimizerKind optimizer_from_string(const std::string& name);

/// True for the gradient-based families (L-BFGS-B, SLSQP).
bool is_gradient_based(OptimizerKind kind);

/// Minimizes `fn` from `x0` subject to `bounds` with the chosen method.
OptimResult minimize(OptimizerKind kind, const ObjectiveFn& fn,
                     std::span<const double> x0, const Bounds& bounds,
                     const Options& options = {});

}  // namespace qaoaml::optim

#endif  // QAOAML_OPTIM_OPTIMIZER_HPP
