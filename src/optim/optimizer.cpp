#include "optim/optimizer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "optim/cobyla.hpp"
#include "optim/lbfgsb.hpp"
#include "optim/nelder_mead.hpp"
#include "optim/slsqp.hpp"

namespace qaoaml::optim {

const std::vector<OptimizerKind>& all_optimizers() {
  static const std::vector<OptimizerKind> kAll{
      OptimizerKind::kLbfgsb,
      OptimizerKind::kNelderMead,
      OptimizerKind::kSlsqp,
      OptimizerKind::kCobyla,
  };
  return kAll;
}

std::string to_string(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kLbfgsb: return "L-BFGS-B";
    case OptimizerKind::kNelderMead: return "Nelder-Mead";
    case OptimizerKind::kSlsqp: return "SLSQP";
    case OptimizerKind::kCobyla: return "COBYLA";
  }
  return "unknown";
}

OptimizerKind optimizer_from_string(const std::string& name) {
  for (const OptimizerKind kind : all_optimizers()) {
    if (to_string(kind) == name) return kind;
  }
  throw InvalidArgument("optimizer_from_string: unknown optimizer '" + name +
                        "'");
}

bool is_gradient_based(OptimizerKind kind) {
  return kind == OptimizerKind::kLbfgsb || kind == OptimizerKind::kSlsqp;
}

OptimResult minimize(OptimizerKind kind, const ObjectiveFn& fn,
                     std::span<const double> x0, const Bounds& bounds,
                     const Options& options) {
  // Convergence is governed by the tolerances; the caller's budget caps
  // are passed through unchanged so the naive and warm-started arms of
  // the experiments face identical limits.
  const Options& effective = options;
  switch (kind) {
    case OptimizerKind::kLbfgsb:
      return lbfgsb(fn, x0, bounds, effective);
    case OptimizerKind::kNelderMead:
      return nelder_mead(fn, x0, bounds, effective);
    case OptimizerKind::kSlsqp:
      return slsqp(fn, x0, bounds, effective);
    case OptimizerKind::kCobyla:
      return cobyla(fn, x0, bounds, effective);
  }
  throw InvalidArgument("minimize: unknown optimizer kind");
}

}  // namespace qaoaml::optim
