// Shared vocabulary of the optimization module: objective functions,
// box bounds, options, and results.
//
// Every optimizer here *minimizes*; QAOA maximizes the cost expectation
// by minimizing its negative.  The `nfev` field counts objective
// evaluations including finite-difference probes — this is the paper's
// "number of function calls / QC calls" metric.
#ifndef QAOAML_OPTIM_TYPES_HPP
#define QAOAML_OPTIM_TYPES_HPP

#include <functional>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace qaoaml::optim {

/// Objective callable: maps a parameter vector to a scalar cost.
using ObjectiveFn = std::function<double(std::span<const double>)>;

/// Per-coordinate box constraints.
class Bounds {
 public:
  Bounds() = default;

  /// Explicit per-coordinate bounds; lengths must match and lower <= upper.
  Bounds(std::vector<double> lower, std::vector<double> upper);

  /// Unbounded box of dimension n.
  static Bounds unbounded(std::size_t n);

  /// Same [lo, hi] interval for every coordinate.
  static Bounds uniform(std::size_t n, double lo, double hi);

  std::size_t size() const { return lower_.size(); }
  bool empty() const { return lower_.empty(); }
  const std::vector<double>& lower() const { return lower_; }
  const std::vector<double>& upper() const { return upper_; }

  /// True when x lies inside the box (inclusive).
  bool contains(std::span<const double> x) const;

  /// Returns x clamped into the box.
  std::vector<double> clamp(std::span<const double> x) const;

 private:
  std::vector<double> lower_;
  std::vector<double> upper_;
};

/// Why an optimizer stopped.
enum class StopReason {
  kConverged,       ///< tolerance test satisfied
  kMaxEvaluations,  ///< evaluation budget exhausted
  kMaxIterations,   ///< iteration budget exhausted
  kStalled,         ///< no acceptable step found (line search failure etc.)
};

/// Human-readable form of a StopReason.
std::string to_string(StopReason reason);

/// Outcome of a minimization run.
struct OptimResult {
  std::vector<double> x;  ///< best parameters found
  double fun = std::numeric_limits<double>::infinity();  ///< f(x)
  int nfev = 0;           ///< objective evaluations (incl. FD probes)
  int nit = 0;            ///< outer iterations
  StopReason reason = StopReason::kConverged;

  bool converged() const { return reason == StopReason::kConverged; }
};

/// Knobs shared by all optimizers; each ignores the fields it does not
/// use.  Defaults mirror the paper's setup (ftol = 1e-6) and SciPy's.
struct Options {
  double ftol = 1e-6;     ///< relative function-decrease tolerance (the
                          ///  paper's "functional tolerance limit")
  double xtol = 1e-4;     ///< simplex-extent tolerance (Nelder-Mead;
                          ///  SciPy's xatol default)
  double gtol = 1e-5;     ///< projected-gradient tolerance (L-BFGS-B)
  double fd_step = 1e-8;  ///< finite-difference step for gradients
  double rho_begin = 0.5; ///< initial trust-region radius (COBYLA)
  double rho_end = 1e-6;  ///< final trust-region radius (COBYLA)
  int max_evaluations = 100000;
  int max_iterations = 5000;  ///< generous; convergence comes from the
                              ///  tolerances, not this cap
};

/// Wraps an objective and counts evaluations; optimizers evaluate the
/// objective only through this so that nfev is exact.
class CountingObjective {
 public:
  CountingObjective(ObjectiveFn fn, int max_evaluations);

  /// Evaluates the objective; throws BudgetExhausted (internal) semantics
  /// are avoided — callers must check exhausted() before evaluating.
  double operator()(std::span<const double> x);

  int count() const { return count_; }
  bool exhausted() const { return count_ >= max_evaluations_; }

 private:
  ObjectiveFn fn_;
  int max_evaluations_;
  int count_ = 0;
};

}  // namespace qaoaml::optim

#endif  // QAOAML_OPTIM_TYPES_HPP
