// SLSQP-style sequential quadratic programming for box constraints.
//
// Each iteration builds a dense BFGS model of the objective (with Powell
// damping to stay positive definite), solves the box-constrained QP
//   min_d  g^T d + 0.5 d^T B d   s.t.  l <= x + d <= u
// with an active-set solver, and applies an Armijo line search along d.
// For problems whose only constraints are bounds — the QAOA setting —
// this is exactly the subproblem structure of Kraft's SLSQP; gradients
// are forward finite differences counted as function calls.
#ifndef QAOAML_OPTIM_SLSQP_HPP
#define QAOAML_OPTIM_SLSQP_HPP

#include "linalg/matrix.hpp"
#include "optim/types.hpp"

namespace qaoaml::optim {

/// Minimizes `fn` from `x0` subject to `bounds`.
OptimResult slsqp(const ObjectiveFn& fn, std::span<const double> x0,
                  const Bounds& bounds, const Options& options = {});

/// Solves min_d g^T d + 0.5 d^T B d subject to lo <= d <= hi with an
/// active-set method.  `b` must be symmetric positive definite.
/// Exposed for unit testing.
std::vector<double> solve_box_qp(const linalg::Matrix& b,
                                 const std::vector<double>& g,
                                 const std::vector<double>& lo,
                                 const std::vector<double>& hi);

}  // namespace qaoaml::optim

#endif  // QAOAML_OPTIM_SLSQP_HPP
