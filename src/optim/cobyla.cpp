#include "optim/cobyla.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace qaoaml::optim {
namespace {

using linalg::Matrix;

/// Interpolation set: n+1 points with cached values; index 0 is the best.
struct Interp {
  std::vector<std::vector<double>> points;
  std::vector<double> values;

  void promote_best() {
    std::size_t best = 0;
    for (std::size_t i = 1; i < values.size(); ++i) {
      if (values[i] < values[best]) best = i;
    }
    if (best != 0) {
      std::swap(points[0], points[best]);
      std::swap(values[0], values[best]);
    }
  }

  std::size_t worst_index() const {
    std::size_t worst = 0;
    for (std::size_t i = 1; i < values.size(); ++i) {
      if (values[i] > values[worst]) worst = i;
    }
    return worst;
  }
};

/// Gradient of the linear interpolant through the simplex, or empty when
/// the geometry is singular.
std::vector<double> linear_model_gradient(const Interp& interp) {
  const std::size_t n = interp.points.front().size();
  Matrix a(n, n);
  std::vector<double> rhs(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < n; ++d) {
      a(i, d) = interp.points[i + 1][d] - interp.points[0][d];
    }
    rhs[i] = interp.values[i + 1] - interp.values[0];
  }
  try {
    return linalg::solve(a, rhs);
  } catch (const NumericalError&) {
    return {};
  }
}

/// One interpolation vertex at distance `rho` from `center` along
/// coordinate `d`, stepping inward at the upper bound.
std::vector<double> coordinate_vertex(const std::vector<double>& center,
                                      std::size_t d, double rho,
                                      const Bounds& bounds) {
  std::vector<double> vertex = center;
  vertex[d] = (vertex[d] + rho <= bounds.upper()[d]) ? vertex[d] + rho
                                                     : vertex[d] - rho;
  return bounds.clamp(vertex);
}

}  // namespace

OptimResult cobyla(const ObjectiveFn& fn, std::span<const double> x0,
                   const Bounds& bounds, const Options& options) {
  const std::size_t n = x0.size();
  require(n >= 1, "cobyla: empty initial point");
  require(bounds.size() == n, "cobyla: bounds dimension mismatch");
  require(options.rho_begin > options.rho_end && options.rho_end > 0.0,
          "cobyla: requires rho_begin > rho_end > 0");

  CountingObjective counting(fn, options.max_evaluations);

  double rho = options.rho_begin;

  // Initial interpolation set: x0 plus one coordinate step per dimension.
  Interp interp;
  interp.points.push_back(bounds.clamp(x0));
  interp.values.push_back(counting(interp.points[0]));
  for (std::size_t d = 0; d < n && !counting.exhausted(); ++d) {
    const std::vector<double> vertex =
        coordinate_vertex(interp.points[0], d, rho, bounds);
    interp.points.push_back(vertex);
    interp.values.push_back(counting(vertex));
  }

  // Rebuilds every non-best vertex around the current best at radius rho
  // (restores model validity after the trust region shrinks).
  const auto rebuild = [&](double radius) {
    interp.promote_best();
    for (std::size_t d = 0; d < n && !counting.exhausted(); ++d) {
      const std::vector<double> vertex =
          coordinate_vertex(interp.points[0], d, radius, bounds);
      interp.points[d + 1] = vertex;
      interp.values[d + 1] = counting(vertex);
    }
  };

  OptimResult result;
  result.reason = StopReason::kMaxIterations;

  int iteration = 0;
  int stall = 0;  // consecutive iterations with a poor model prediction
  int level_iterations = 0;  // iterations spent at the current radius
  // Budget per trust-region level: a long run of barely-successful steps
  // at one radius is valley creep — the radius no longer matches the
  // local curvature, so force the shrink the ratio test keeps dodging.
  const int level_budget = static_cast<int>(12 * n + 20);
  for (; iteration < options.max_iterations; ++iteration) {
    if (interp.points.size() < n + 1 || counting.exhausted()) {
      result.reason = StopReason::kMaxEvaluations;
      break;
    }
    interp.promote_best();

    const std::vector<double> grad = linear_model_gradient(interp);
    if (grad.empty()) {  // singular geometry: restore and retry
      rebuild(rho);
      continue;
    }
    const double grad_norm = linalg::norm2(grad);
    if (grad_norm <= 1e-14) {
      stall = 2;  // flat model: force a shrink below
    } else {
      // Trust-region step against the linear model, judged by the ratio
      // of actual to predicted decrease.
      std::vector<double> candidate = interp.points[0];
      linalg::axpy(-rho / grad_norm, grad, candidate);
      candidate = bounds.clamp(candidate);
      const double predicted = rho * grad_norm;
      const double f_candidate = counting(candidate);
      const double actual = interp.values[0] - f_candidate;
      if (actual > 0.0) {
        const std::size_t worst = interp.worst_index();
        interp.points[worst] = std::move(candidate);
        interp.values[worst] = f_candidate;
      }
      // Success requires both a trustworthy prediction and a functional
      // decrease above the tolerance; tiny "successful" steps otherwise
      // stall the radius at a coarse level indefinitely.
      const double f_floor =
          options.ftol * std::max(std::abs(interp.values[0]), 1.0);
      stall = (actual / predicted >= 0.1 && actual > f_floor) ? 0 : stall + 1;
    }

    ++level_iterations;

    // Two consecutive failed predictions (or an exhausted level budget):
    // the model is kept valid by rebuild(), so repeated poor steps mean
    // the radius is too coarse for the local curvature.
    if ((stall >= 2 || level_iterations >= level_budget) &&
        !counting.exhausted()) {
      rho *= 0.5;
      stall = 0;
      level_iterations = 0;
      if (rho < options.rho_end) {
        result.reason = StopReason::kConverged;
        ++iteration;
        break;
      }
      rebuild(rho);
    }
  }

  interp.promote_best();
  if (counting.exhausted()) result.reason = StopReason::kMaxEvaluations;
  result.x = interp.points[0];
  result.fun = interp.values[0];
  result.nfev = counting.count();
  result.nit = iteration;
  return result;
}

}  // namespace qaoaml::optim
