#include "optim/finite_diff.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qaoaml::optim {

std::vector<double> forward_diff_gradient(CountingObjective& fn,
                                          std::span<const double> x, double f0,
                                          double step, const Bounds& bounds) {
  require(step > 0.0, "forward_diff_gradient: step must be positive");
  const std::size_t n = x.size();
  std::vector<double> grad(n, 0.0);
  std::vector<double> probe(x.begin(), x.end());
  for (std::size_t i = 0; i < n; ++i) {
    // Relative step, as SciPy's approx_derivative uses.
    double h = step * std::max(1.0, std::abs(x[i]));
    if (!bounds.empty() && x[i] + h > bounds.upper()[i]) h = -h;
    probe[i] = x[i] + h;
    const double fi = fn(probe);
    grad[i] = (fi - f0) / h;
    probe[i] = x[i];
  }
  return grad;
}

std::vector<double> central_diff_gradient(CountingObjective& fn,
                                          std::span<const double> x,
                                          double step) {
  require(step > 0.0, "central_diff_gradient: step must be positive");
  const std::size_t n = x.size();
  std::vector<double> grad(n, 0.0);
  std::vector<double> probe(x.begin(), x.end());
  for (std::size_t i = 0; i < n; ++i) {
    const double h = step * std::max(1.0, std::abs(x[i]));
    probe[i] = x[i] + h;
    const double fp = fn(probe);
    probe[i] = x[i] - h;
    const double fm = fn(probe);
    grad[i] = (fp - fm) / (2.0 * h);
    probe[i] = x[i];
  }
  return grad;
}

}  // namespace qaoaml::optim
