// Standard optimization test functions.
//
// Used by the optimizer unit tests and the M2 micro-benchmark to verify
// convergence behaviour independently of the quantum stack.
#ifndef QAOAML_OPTIM_TEST_FUNCTIONS_HPP
#define QAOAML_OPTIM_TEST_FUNCTIONS_HPP

#include <span>

namespace qaoaml::optim::testfn {

/// sum_i x_i^2; minimum 0 at the origin.
double sphere(std::span<const double> x);

/// Rosenbrock's banana; minimum 0 at (1, ..., 1).
double rosenbrock(std::span<const double> x);

/// Booth function (2-D); minimum 0 at (1, 3).
double booth(std::span<const double> x);

/// Rastrigin: highly multimodal; global minimum 0 at the origin.
double rastrigin(std::span<const double> x);

/// Smooth trigonometric surface qualitatively similar to a QAOA energy
/// landscape (periodic, multimodal, bounded): minimum -(dim) at
/// x_i = pi/2.
double cosine_valley(std::span<const double> x);

}  // namespace qaoaml::optim::testfn

#endif  // QAOAML_OPTIM_TEST_FUNCTIONS_HPP
