#include "optim/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace qaoaml::optim {
namespace {

/// Simplex vertices with cached objective values, kept sorted by value.
struct Simplex {
  std::vector<std::vector<double>> points;
  std::vector<double> values;

  void sort() {
    std::vector<std::size_t> order(points.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
      return values[a] < values[b];
    });
    std::vector<std::vector<double>> new_points(points.size());
    std::vector<double> new_values(points.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      new_points[i] = std::move(points[order[i]]);
      new_values[i] = values[order[i]];
    }
    points = std::move(new_points);
    values = std::move(new_values);
  }

  /// Centroid of all vertices except the worst (last).
  std::vector<double> centroid() const {
    const std::size_t n = points.front().size();
    std::vector<double> c(n, 0.0);
    for (std::size_t i = 0; i + 1 < points.size(); ++i) {
      for (std::size_t d = 0; d < n; ++d) c[d] += points[i][d];
    }
    const double scale = 1.0 / static_cast<double>(points.size() - 1);
    for (double& x : c) x *= scale;
    return c;
  }

  double value_spread() const {
    double spread = 0.0;
    for (std::size_t i = 1; i < values.size(); ++i) {
      spread = std::max(spread, std::abs(values[i] - values[0]));
    }
    return spread;
  }

  double point_spread() const {
    double spread = 0.0;
    for (std::size_t i = 1; i < points.size(); ++i) {
      for (std::size_t d = 0; d < points[i].size(); ++d) {
        spread = std::max(spread, std::abs(points[i][d] - points[0][d]));
      }
    }
    return spread;
  }
};

std::vector<double> blend(const std::vector<double>& center,
                          const std::vector<double>& away, double t,
                          const Bounds& bounds) {
  // center + t * (center - away), clipped into the box.
  std::vector<double> out(center.size());
  for (std::size_t d = 0; d < center.size(); ++d) {
    out[d] = center[d] + t * (center[d] - away[d]);
  }
  return bounds.clamp(out);
}

}  // namespace

OptimResult nelder_mead(const ObjectiveFn& fn, std::span<const double> x0,
                        const Bounds& bounds, const Options& options,
                        bool adaptive) {
  const std::size_t n = x0.size();
  require(n >= 1, "nelder_mead: empty initial point");
  require(bounds.size() == n, "nelder_mead: bounds dimension mismatch");

  // Gao & Han adaptive coefficients; classic values for adaptive=false.
  const double dim = static_cast<double>(n);
  const double rho = 1.0;
  const double chi = adaptive ? 1.0 + 2.0 / dim : 2.0;
  const double psi = adaptive ? 0.75 - 1.0 / (2.0 * dim) : 0.5;
  const double sigma = adaptive ? 1.0 - 1.0 / dim : 0.5;

  CountingObjective counting(fn, options.max_evaluations);

  // SciPy-style initial simplex: perturb each coordinate by 5% (or an
  // absolute nudge when the coordinate is zero).
  Simplex simplex;
  simplex.points.push_back(bounds.clamp(x0));
  for (std::size_t d = 0; d < n; ++d) {
    std::vector<double> vertex(x0.begin(), x0.end());
    vertex[d] = (vertex[d] != 0.0) ? vertex[d] * 1.05 : 0.00025;
    simplex.points.push_back(bounds.clamp(vertex));
  }
  for (const auto& point : simplex.points) {
    simplex.values.push_back(counting(point));
  }
  simplex.sort();

  OptimResult result;
  result.reason = StopReason::kMaxIterations;

  int iteration = 0;
  for (; iteration < options.max_iterations; ++iteration) {
    if (simplex.value_spread() <= options.ftol &&
        simplex.point_spread() <= options.xtol) {
      result.reason = StopReason::kConverged;
      break;
    }
    if (counting.exhausted()) {
      result.reason = StopReason::kMaxEvaluations;
      break;
    }

    const std::vector<double> centroid = simplex.centroid();
    const std::vector<double>& worst = simplex.points.back();
    const double f_best = simplex.values.front();
    const double f_second_worst = simplex.values[simplex.values.size() - 2];

    const std::vector<double> reflected = blend(centroid, worst, rho, bounds);
    const double f_reflected = counting(reflected);

    bool shrink = false;
    if (f_reflected < f_best) {
      // Try to expand further along the same direction.
      const std::vector<double> expanded =
          blend(centroid, worst, rho * chi, bounds);
      const double f_expanded = counting(expanded);
      if (f_expanded < f_reflected) {
        simplex.points.back() = expanded;
        simplex.values.back() = f_expanded;
      } else {
        simplex.points.back() = reflected;
        simplex.values.back() = f_reflected;
      }
    } else if (f_reflected < f_second_worst) {
      simplex.points.back() = reflected;
      simplex.values.back() = f_reflected;
    } else if (f_reflected < simplex.values.back()) {
      // Outside contraction.
      const std::vector<double> contracted =
          blend(centroid, worst, rho * psi, bounds);
      const double f_contracted = counting(contracted);
      if (f_contracted <= f_reflected) {
        simplex.points.back() = contracted;
        simplex.values.back() = f_contracted;
      } else {
        shrink = true;
      }
    } else {
      // Inside contraction.
      const std::vector<double> contracted =
          blend(centroid, worst, -psi, bounds);
      const double f_contracted = counting(contracted);
      if (f_contracted < simplex.values.back()) {
        simplex.points.back() = contracted;
        simplex.values.back() = f_contracted;
      } else {
        shrink = true;
      }
    }

    if (shrink) {
      for (std::size_t i = 1; i < simplex.points.size(); ++i) {
        for (std::size_t d = 0; d < n; ++d) {
          simplex.points[i][d] = simplex.points[0][d] +
                                 sigma * (simplex.points[i][d] -
                                          simplex.points[0][d]);
        }
        simplex.points[i] = bounds.clamp(simplex.points[i]);
        if (counting.exhausted()) break;
        simplex.values[i] = counting(simplex.points[i]);
      }
    }
    simplex.sort();
  }

  if (iteration >= options.max_iterations) {
    result.reason = StopReason::kMaxIterations;
  }
  result.x = simplex.points.front();
  result.fun = simplex.values.front();
  result.nfev = counting.count();
  result.nit = iteration;
  return result;
}

}  // namespace qaoaml::optim
