// COBYLA-style derivative-free trust-region minimizer.
//
// Follows the structure of Powell's Constrained Optimization BY Linear
// Approximation: a simplex of n+1 interpolation points carries a linear
// model of the objective; each iteration takes a trust-region step of
// radius rho against that model, improves simplex geometry when the
// model is unreliable, and shrinks rho (rho_begin -> rho_end) when the
// model is trusted but no progress is possible.  Box bounds are honored
// by clamping trial points (they are linear constraints, always
// satisfiable exactly).
#ifndef QAOAML_OPTIM_COBYLA_HPP
#define QAOAML_OPTIM_COBYLA_HPP

#include "optim/types.hpp"

namespace qaoaml::optim {

/// Minimizes `fn` from `x0` subject to `bounds`.
/// `options.rho_begin` / `options.rho_end` set the trust-region schedule.
OptimResult cobyla(const ObjectiveFn& fn, std::span<const double> x0,
                   const Bounds& bounds, const Options& options = {});

}  // namespace qaoaml::optim

#endif  // QAOAML_OPTIM_COBYLA_HPP
