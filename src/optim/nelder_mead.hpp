// Nelder-Mead downhill simplex (derivative-free).
//
// Mirrors SciPy's `minimize(method="Nelder-Mead")`: same reflection/
// expansion/contraction/shrink coefficients, same initial-simplex
// construction, same twin tolerance test on simplex spread, and bound
// handling by clipping candidate points into the box.
#ifndef QAOAML_OPTIM_NELDER_MEAD_HPP
#define QAOAML_OPTIM_NELDER_MEAD_HPP

#include "optim/types.hpp"

namespace qaoaml::optim {

/// Minimizes `fn` from `x0` with the downhill-simplex method.
///
/// Uses `options.ftol` as the function-spread tolerance and
/// `options.xtol` as the simplex-extent tolerance; both must hold to
/// declare convergence (as in SciPy).  Set `adaptive` for the
/// dimension-dependent coefficients of Gao & Han (helps for >= ~10
/// parameters, i.e. the p = 5 QAOA instances).
OptimResult nelder_mead(const ObjectiveFn& fn, std::span<const double> x0,
                        const Bounds& bounds, const Options& options = {},
                        bool adaptive = false);

}  // namespace qaoaml::optim

#endif  // QAOAML_OPTIM_NELDER_MEAD_HPP
