#include "optim/types.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qaoaml::optim {

Bounds::Bounds(std::vector<double> lower, std::vector<double> upper)
    : lower_(std::move(lower)), upper_(std::move(upper)) {
  require(lower_.size() == upper_.size(), "Bounds: length mismatch");
  for (std::size_t i = 0; i < lower_.size(); ++i) {
    require(lower_[i] <= upper_[i], "Bounds: lower must be <= upper");
  }
}

Bounds Bounds::unbounded(std::size_t n) {
  const double inf = std::numeric_limits<double>::infinity();
  return Bounds(std::vector<double>(n, -inf), std::vector<double>(n, inf));
}

Bounds Bounds::uniform(std::size_t n, double lo, double hi) {
  return Bounds(std::vector<double>(n, lo), std::vector<double>(n, hi));
}

bool Bounds::contains(std::span<const double> x) const {
  require(x.size() == lower_.size(), "Bounds::contains: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < lower_[i] || x[i] > upper_[i]) return false;
  }
  return true;
}

std::vector<double> Bounds::clamp(std::span<const double> x) const {
  require(x.size() == lower_.size(), "Bounds::clamp: length mismatch");
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = std::clamp(x[i], lower_[i], upper_[i]);
  }
  return out;
}

std::string to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kConverged: return "converged";
    case StopReason::kMaxEvaluations: return "max-evaluations";
    case StopReason::kMaxIterations: return "max-iterations";
    case StopReason::kStalled: return "stalled";
  }
  return "unknown";
}

CountingObjective::CountingObjective(ObjectiveFn fn, int max_evaluations)
    : fn_(std::move(fn)), max_evaluations_(max_evaluations) {
  require(static_cast<bool>(fn_), "CountingObjective: null objective");
  require(max_evaluations_ > 0,
          "CountingObjective: max_evaluations must be positive");
}

double CountingObjective::operator()(std::span<const double> x) {
  ++count_;
  return fn_(x);
}

}  // namespace qaoaml::optim
