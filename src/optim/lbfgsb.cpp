#include "optim/lbfgsb.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/error.hpp"
#include "linalg/vector_ops.hpp"
#include "optim/finite_diff.hpp"

namespace qaoaml::optim {
namespace {

using linalg::dot;
using linalg::norm_inf;
using linalg::sub;

/// Projected gradient: zero out components that push against an active
/// bound; its infinity norm is the first-order optimality measure.
std::vector<double> projected_gradient(const std::vector<double>& x,
                                       const std::vector<double>& grad,
                                       const Bounds& bounds) {
  std::vector<double> pg = grad;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool at_lower = x[i] <= bounds.lower()[i] && grad[i] > 0.0;
    const bool at_upper = x[i] >= bounds.upper()[i] && grad[i] < 0.0;
    if (at_lower || at_upper) pg[i] = 0.0;
  }
  return pg;
}

/// Two-loop recursion over the stored (s, y) pairs.
std::vector<double> two_loop_direction(
    const std::deque<std::vector<double>>& s_hist,
    const std::deque<std::vector<double>>& y_hist,
    const std::vector<double>& grad) {
  std::vector<double> q = grad;
  const std::size_t m = s_hist.size();
  std::vector<double> alpha(m, 0.0);
  std::vector<double> rho(m, 0.0);
  for (std::size_t k = m; k-- > 0;) {
    rho[k] = 1.0 / dot(y_hist[k], s_hist[k]);
    alpha[k] = rho[k] * dot(s_hist[k], q);
    linalg::axpy(-alpha[k], y_hist[k], q);
  }
  if (m > 0) {
    // Initial Hessian scaling gamma = s.y / y.y (Nocedal & Wright eq. 7.20).
    const double gamma =
        dot(s_hist.back(), y_hist.back()) / dot(y_hist.back(), y_hist.back());
    linalg::scale(q, gamma);
  }
  for (std::size_t k = 0; k < m; ++k) {
    const double beta = rho[k] * dot(y_hist[k], q);
    linalg::axpy(alpha[k] - beta, s_hist[k], q);
  }
  linalg::scale(q, -1.0);
  return q;
}

}  // namespace

OptimResult lbfgsb(const ObjectiveFn& fn, std::span<const double> x0,
                   const Bounds& bounds, const Options& options, int history) {
  const std::size_t n = x0.size();
  require(n >= 1, "lbfgsb: empty initial point");
  require(bounds.size() == n, "lbfgsb: bounds dimension mismatch");
  require(history >= 1, "lbfgsb: history must be positive");

  CountingObjective counting(fn, options.max_evaluations);

  std::vector<double> x = bounds.clamp(x0);
  double f = counting(x);
  std::vector<double> grad =
      forward_diff_gradient(counting, x, f, options.fd_step, bounds);

  std::deque<std::vector<double>> s_hist;
  std::deque<std::vector<double>> y_hist;

  OptimResult result;
  result.reason = StopReason::kMaxIterations;

  int iteration = 0;
  for (; iteration < options.max_iterations; ++iteration) {
    if (norm_inf(projected_gradient(x, grad, bounds)) <= options.gtol) {
      result.reason = StopReason::kConverged;
      break;
    }
    if (counting.exhausted()) {
      result.reason = StopReason::kMaxEvaluations;
      break;
    }

    std::vector<double> direction = two_loop_direction(s_hist, y_hist, grad);
    // Fall back to steepest descent when the direction is not a descent
    // direction (can happen right after history resets).
    if (dot(direction, grad) >= 0.0) {
      direction = linalg::scaled(-1.0, grad);
    }
    // With no curvature history the two-loop result is just -g; cap that
    // first step at unit length (H0 = I / ||g||) so the search does not
    // leap across basins of the periodic QAOA landscape.
    if (s_hist.empty()) {
      const double len = linalg::norm2(direction);
      if (len > 1.0) linalg::scale(direction, 1.0 / len);
    }

    // Backtracking Armijo line search on the projected path
    // x(alpha) = clamp(x + alpha * d).
    const double c1 = 1e-4;
    double alpha = 1.0;
    double f_new = f;
    std::vector<double> x_new = x;
    bool accepted = false;
    for (int trial = 0; trial < 25; ++trial) {
      std::vector<double> candidate = x;
      linalg::axpy(alpha, direction, candidate);
      candidate = bounds.clamp(candidate);
      const std::vector<double> actual_step = sub(candidate, x);
      const double directional = dot(grad, actual_step);
      if (counting.exhausted()) break;
      const double f_candidate = counting(candidate);
      if (f_candidate <= f + c1 * directional) {
        x_new = std::move(candidate);
        f_new = f_candidate;
        accepted = true;
        break;
      }
      alpha *= 0.5;
    }
    if (!accepted) {
      if (counting.exhausted()) {
        result.reason = StopReason::kMaxEvaluations;
        break;
      }
      // Quasi-Newton model is misleading here: drop the curvature
      // history and retry from steepest descent before giving up.
      if (!s_hist.empty()) {
        s_hist.clear();
        y_hist.clear();
        continue;
      }
      result.reason = StopReason::kStalled;
      break;
    }

    if (counting.exhausted()) {
      x = std::move(x_new);
      f = f_new;
      result.reason = StopReason::kMaxEvaluations;
      break;
    }
    std::vector<double> grad_new =
        forward_diff_gradient(counting, x_new, f_new, options.fd_step, bounds);

    // SciPy ftol test: (f_k - f_{k+1}) <= ftol * max(|f_k|, |f_{k+1}|, 1).
    const double decrease = f - f_new;
    const double scale = std::max({std::abs(f), std::abs(f_new), 1.0});
    const bool f_converged = decrease <= options.ftol * scale;

    const std::vector<double> s = sub(x_new, x);
    const std::vector<double> y = sub(grad_new, grad);
    if (dot(s, y) > 1e-10) {  // curvature condition keeps H PSD
      s_hist.push_back(s);
      y_hist.push_back(y);
      if (static_cast<int>(s_hist.size()) > history) {
        s_hist.pop_front();
        y_hist.pop_front();
      }
    }

    x = std::move(x_new);
    f = f_new;
    grad = std::move(grad_new);

    if (f_converged) {
      result.reason = StopReason::kConverged;
      ++iteration;
      break;
    }
  }

  result.x = std::move(x);
  result.fun = f;
  result.nfev = counting.count();
  result.nit = iteration;
  return result;
}

}  // namespace qaoaml::optim
