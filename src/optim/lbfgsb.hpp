// L-BFGS-B: limited-memory BFGS with box constraints.
//
// Quasi-Newton minimizer in the spirit of Byrd, Lu, Nocedal & Zhu:
// limited-memory curvature pairs drive a two-loop-recursion direction,
// feasibility is maintained by projecting trial points onto the box, and
// gradients come from forward finite differences (each probe counted as
// a function call, matching SciPy's nfev accounting).
//
// Termination follows SciPy: relative function decrease below `ftol`
// or projected-gradient infinity norm below `gtol`.
#ifndef QAOAML_OPTIM_LBFGSB_HPP
#define QAOAML_OPTIM_LBFGSB_HPP

#include "optim/types.hpp"

namespace qaoaml::optim {

/// Minimizes `fn` from `x0` subject to `bounds`.
/// `history` is the number of stored curvature pairs (SciPy default 10).
OptimResult lbfgsb(const ObjectiveFn& fn, std::span<const double> x0,
                   const Bounds& bounds, const Options& options = {},
                   int history = 10);

}  // namespace qaoaml::optim

#endif  // QAOAML_OPTIM_LBFGSB_HPP
