// LU factorization with partial pivoting; general square solves.
#ifndef QAOAML_LINALG_LU_HPP
#define QAOAML_LINALG_LU_HPP

#include <vector>

#include "linalg/matrix.hpp"

namespace qaoaml::linalg {

/// PA = LU factorization of a square matrix.
class LU {
 public:
  /// Factorizes `a`; throws NumericalError when `a` is singular.
  explicit LU(const Matrix& a);

  /// Solves A x = b.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Determinant of A.
  double determinant() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int sign_ = 1;
};

/// Convenience wrapper: solves A x = b for square A.
std::vector<double> solve(const Matrix& a, const std::vector<double>& b);

}  // namespace qaoaml::linalg

#endif  // QAOAML_LINALG_LU_HPP
