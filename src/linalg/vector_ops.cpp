#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qaoaml::linalg {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  require(a.size() == b.size(), "dot: length mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const std::vector<double>& v) { return std::sqrt(dot(v, v)); }

double norm_inf(const std::vector<double>& v) {
  double best = 0.0;
  for (const double x : v) best = std::max(best, std::abs(x));
  return best;
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  require(x.size() == y.size(), "axpy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

std::vector<double> add(const std::vector<double>& a,
                        const std::vector<double>& b) {
  require(a.size() == b.size(), "add: length mismatch");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<double> sub(const std::vector<double>& a,
                        const std::vector<double>& b) {
  require(a.size() == b.size(), "sub: length mismatch");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> scaled(double alpha, const std::vector<double>& v) {
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = alpha * v[i];
  return out;
}

void scale(std::vector<double>& v, double alpha) {
  for (double& x : v) x *= alpha;
}

std::vector<double> clamped(const std::vector<double>& v,
                            const std::vector<double>& lo,
                            const std::vector<double>& hi) {
  require(v.size() == lo.size() && v.size() == hi.size(),
          "clamped: length mismatch");
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = std::clamp(v[i], lo[i], hi[i]);
  }
  return out;
}

}  // namespace qaoaml::linalg
