// Householder QR factorization and least-squares solving.
//
// Backbone of the ordinary-least-squares linear regression model and of
// the linear interpolation models inside COBYLA.
#ifndef QAOAML_LINALG_QR_HPP
#define QAOAML_LINALG_QR_HPP

#include <vector>

#include "linalg/matrix.hpp"

namespace qaoaml::linalg {

/// Householder QR of an m x n matrix with m >= n.
class QR {
 public:
  /// Factorizes `a`; throws InvalidArgument when rows() < cols().
  explicit QR(const Matrix& a);

  /// Minimum-norm residual solution of min ||A x - b||_2.
  /// Throws NumericalError when A is (numerically) rank deficient.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Applies Q^T to a length-m vector.
  std::vector<double> qt_apply(const std::vector<double>& b) const;

  /// Upper-triangular factor R (n x n).
  Matrix r() const;

  /// Smallest |R_ii| / largest |R_ii|; a cheap rank/conditioning signal.
  double diagonal_condition() const;

 private:
  Matrix v_;                   // Householder vectors, stored below diagonal
  std::vector<double> rdiag_;  // diagonal of R
  std::size_t m_ = 0;
  std::size_t n_ = 0;
};

/// Convenience wrapper: least-squares solution of min ||A x - b||.
std::vector<double> least_squares(const Matrix& a, const std::vector<double>& b);

}  // namespace qaoaml::linalg

#endif  // QAOAML_LINALG_QR_HPP
