#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qaoaml::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix{};
  const std::size_t cols = rows.front().size();
  Matrix m(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    require(rows[r].size() == cols, "Matrix::from_rows: ragged rows");
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::row(std::size_t r) const {
  require(r < rows_, "Matrix::row: index out of range");
  return {data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
          data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_)};
}

std::vector<double> Matrix::col(std::size_t c) const {
  require(c < cols_, "Matrix::col: index out of range");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::set_row(std::size_t r, const std::vector<double>& values) {
  require(r < rows_, "Matrix::set_row: index out of range");
  require(values.size() == cols_, "Matrix::set_row: length mismatch");
  std::copy(values.begin(), values.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  require(cols_ == other.rows_, "Matrix::operator*: dimension mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& v) const {
  require(v.size() == cols_, "Matrix::operator*: vector length mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * v[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix out = *this;
  out += other;
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  require(rows_ == other.rows_ && cols_ == other.cols_,
          "Matrix::operator-: shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  require(rows_ == other.rows_ && cols_ == other.cols_,
          "Matrix::operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (const double x : data_) best = std::max(best, std::abs(x));
  return best;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (const double x : data_) acc += x * x;
  return std::sqrt(acc);
}

bool Matrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

std::vector<double> left_multiply(const std::vector<double>& v, const Matrix& m) {
  require(v.size() == m.rows(), "left_multiply: length mismatch");
  std::vector<double> out(m.cols(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const double a = v[r];
    if (a == 0.0) continue;
    for (std::size_t c = 0; c < m.cols(); ++c) out[c] += a * m(r, c);
  }
  return out;
}

Matrix outer(const std::vector<double>& a, const std::vector<double>& b) {
  Matrix out(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    for (std::size_t c = 0; c < b.size(); ++c) out(r, c) = a[r] * b[c];
  }
  return out;
}

}  // namespace qaoaml::linalg
