#include "linalg/cholesky.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qaoaml::linalg {

Cholesky::Cholesky(const Matrix& a, double jitter) {
  require(a.rows() == a.cols(), "Cholesky: matrix must be square");
  const std::size_t n = a.rows();
  l_ = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j) + jitter;
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) {
      throw NumericalError("Cholesky: matrix is not positive definite");
    }
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l_(i, k) * l_(j, k);
      l_(i, j) = acc / ljj;
    }
  }
}

std::vector<double> Cholesky::solve_lower(const std::vector<double>& b) const {
  const std::size_t n = size();
  require(b.size() == n, "Cholesky::solve_lower: length mismatch");
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l_(i, k) * y[k];
    y[i] = acc / l_(i, i);
  }
  return y;
}

std::vector<double> Cholesky::solve_upper(const std::vector<double>& y) const {
  const std::size_t n = size();
  require(y.size() == n, "Cholesky::solve_upper: length mismatch");
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l_(k, ii) * x[k];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

std::vector<double> Cholesky::solve(const std::vector<double>& b) const {
  return solve_upper(solve_lower(b));
}

double Cholesky::log_determinant() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < size(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

Cholesky cholesky_with_jitter(const Matrix& a, double initial_jitter,
                              int max_tries) {
  double jitter = 0.0;
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    try {
      return Cholesky(a, jitter);
    } catch (const NumericalError&) {
      jitter = jitter == 0.0 ? initial_jitter : jitter * 10.0;
    }
  }
  throw NumericalError(
      "cholesky_with_jitter: matrix not positive definite even with jitter");
}

}  // namespace qaoaml::linalg
