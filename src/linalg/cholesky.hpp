// Cholesky (L L^T) factorization of symmetric positive-definite matrices.
//
// Used by Gaussian process regression (kernel matrix solves and
// log-determinants) and by the SLSQP quadratic subproblem.
#ifndef QAOAML_LINALG_CHOLESKY_HPP
#define QAOAML_LINALG_CHOLESKY_HPP

#include <vector>

#include "linalg/matrix.hpp"

namespace qaoaml::linalg {

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
class Cholesky {
 public:
  /// Factorizes `a` (must be square and symmetric).  Throws NumericalError
  /// when the matrix is not positive definite (after adding `jitter` to the
  /// diagonal; pass jitter > 0 to regularize near-singular kernels).
  explicit Cholesky(const Matrix& a, double jitter = 0.0);

  /// Solves A x = b.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solves L y = b (forward substitution).
  std::vector<double> solve_lower(const std::vector<double>& b) const;

  /// Solves L^T x = y (backward substitution).
  std::vector<double> solve_upper(const std::vector<double>& y) const;

  /// log(det(A)) = 2 * sum(log(L_ii)).
  double log_determinant() const;

  const Matrix& lower() const { return l_; }
  std::size_t size() const { return l_.rows(); }

 private:
  Matrix l_;
};

/// Factorizes `a`, retrying with exponentially growing diagonal jitter
/// (starting at `initial_jitter`) until it succeeds or `max_tries` is
/// exhausted.  Returns the factorization of the first success.
Cholesky cholesky_with_jitter(const Matrix& a, double initial_jitter = 1e-10,
                              int max_tries = 10);

}  // namespace qaoaml::linalg

#endif  // QAOAML_LINALG_CHOLESKY_HPP
