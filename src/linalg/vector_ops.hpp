// Free functions on std::vector<double> used throughout the optimizers
// and ML models (BLAS level-1 style).
#ifndef QAOAML_LINALG_VECTOR_OPS_HPP
#define QAOAML_LINALG_VECTOR_OPS_HPP

#include <vector>

namespace qaoaml::linalg {

/// Dot product; lengths must match.
double dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean norm.
double norm2(const std::vector<double>& v);

/// Infinity norm (largest absolute element; 0 for empty).
double norm_inf(const std::vector<double>& v);

/// y += alpha * x (in place); lengths must match.
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

/// Returns a + b.
std::vector<double> add(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Returns a - b.
std::vector<double> sub(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Returns alpha * v.
std::vector<double> scaled(double alpha, const std::vector<double>& v);

/// In-place v *= alpha.
void scale(std::vector<double>& v, double alpha);

/// Element-wise clamp of v into [lo, hi] (per-coordinate bounds).
std::vector<double> clamped(const std::vector<double>& v,
                            const std::vector<double>& lo,
                            const std::vector<double>& hi);

}  // namespace qaoaml::linalg

#endif  // QAOAML_LINALG_VECTOR_OPS_HPP
