#include "linalg/lu.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qaoaml::linalg {

LU::LU(const Matrix& a) : lu_(a) {
  require(a.rows() == a.cols(), "LU: matrix must be square");
  const std::size_t n = a.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: bring the largest remaining |entry| to the diagonal.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::abs(lu_(i, k));
      if (mag > best) {
        best = mag;
        pivot = i;
      }
    }
    if (best < 1e-300) throw NumericalError("LU: singular matrix");
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(pivot, j));
      std::swap(perm_[k], perm_[pivot]);
      sign_ = -sign_;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      lu_(i, k) /= lu_(k, k);
      const double factor = lu_(i, k);
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= factor * lu_(k, j);
    }
  }
}

std::vector<double> LU::solve(const std::vector<double>& b) const {
  const std::size_t n = lu_.rows();
  require(b.size() == n, "LU::solve: length mismatch");
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

double LU::determinant() const {
  double det = static_cast<double>(sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

std::vector<double> solve(const Matrix& a, const std::vector<double>& b) {
  return LU(a).solve(b);
}

}  // namespace qaoaml::linalg
