// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Used for diagnostics (kernel-matrix conditioning in GPR tests) and for
// the positive-definiteness repair in the SLSQP Hessian approximation.
#ifndef QAOAML_LINALG_EIGEN_SYM_HPP
#define QAOAML_LINALG_EIGEN_SYM_HPP

#include <vector>

#include "linalg/matrix.hpp"

namespace qaoaml::linalg {

/// Eigenvalues and eigenvectors of a symmetric matrix.
struct EigenSym {
  std::vector<double> values;  ///< ascending eigenvalues
  Matrix vectors;              ///< column k is the eigenvector of values[k]
};

/// Computes the full eigendecomposition of symmetric `a`.
/// Throws InvalidArgument when `a` is not (numerically) symmetric.
EigenSym eigen_sym(const Matrix& a, double tol = 1e-12, int max_sweeps = 64);

/// Returns the nearest (in Frobenius norm) symmetric positive-definite
/// matrix to `a`, flooring eigenvalues at `min_eigenvalue`.
Matrix make_positive_definite(const Matrix& a, double min_eigenvalue = 1e-8);

}  // namespace qaoaml::linalg

#endif  // QAOAML_LINALG_EIGEN_SYM_HPP
