#include "linalg/qr.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qaoaml::linalg {

QR::QR(const Matrix& a) : v_(a), m_(a.rows()), n_(a.cols()) {
  require(m_ >= n_, "QR: requires rows() >= cols()");
  rdiag_.assign(n_, 0.0);
  for (std::size_t k = 0; k < n_; ++k) {
    // Householder reflection that annihilates column k below the diagonal.
    double norm = 0.0;
    for (std::size_t i = k; i < m_; ++i) norm = std::hypot(norm, v_(i, k));
    if (norm == 0.0) {
      rdiag_[k] = 0.0;
      continue;
    }
    if (v_(k, k) < 0.0) norm = -norm;
    for (std::size_t i = k; i < m_; ++i) v_(i, k) /= norm;
    v_(k, k) += 1.0;
    for (std::size_t j = k + 1; j < n_; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m_; ++i) s += v_(i, k) * v_(i, j);
      s = -s / v_(k, k);
      for (std::size_t i = k; i < m_; ++i) v_(i, j) += s * v_(i, k);
    }
    rdiag_[k] = -norm;
  }
}

std::vector<double> QR::qt_apply(const std::vector<double>& b) const {
  require(b.size() == m_, "QR::qt_apply: length mismatch");
  std::vector<double> y = b;
  for (std::size_t k = 0; k < n_; ++k) {
    if (rdiag_[k] == 0.0) continue;
    double s = 0.0;
    for (std::size_t i = k; i < m_; ++i) s += v_(i, k) * y[i];
    s = -s / v_(k, k);
    for (std::size_t i = k; i < m_; ++i) y[i] += s * v_(i, k);
  }
  return y;
}

std::vector<double> QR::solve(const std::vector<double>& b) const {
  std::vector<double> y = qt_apply(b);
  double largest = 0.0;
  for (const double d : rdiag_) largest = std::max(largest, std::abs(d));
  // Rank test relative to the largest pivot: identical or nearly
  // collinear columns round to ~1e-16 * scale, not exactly zero.
  const double floor = std::max(largest * 1e-13, 1e-300);
  std::vector<double> x(n_);
  for (std::size_t kk = n_; kk-- > 0;) {
    if (std::abs(rdiag_[kk]) < floor) {
      throw NumericalError("QR::solve: rank-deficient matrix");
    }
    double acc = y[kk];
    for (std::size_t j = kk + 1; j < n_; ++j) acc -= v_(kk, j) * x[j];
    x[kk] = acc / rdiag_[kk];
  }
  return x;
}

Matrix QR::r() const {
  Matrix out(n_, n_);
  for (std::size_t i = 0; i < n_; ++i) {
    out(i, i) = rdiag_[i];
    for (std::size_t j = i + 1; j < n_; ++j) out(i, j) = v_(i, j);
  }
  return out;
}

double QR::diagonal_condition() const {
  double lo = std::abs(rdiag_.empty() ? 0.0 : rdiag_[0]);
  double hi = lo;
  for (const double d : rdiag_) {
    lo = std::min(lo, std::abs(d));
    hi = std::max(hi, std::abs(d));
  }
  return hi == 0.0 ? 0.0 : lo / hi;
}

std::vector<double> least_squares(const Matrix& a, const std::vector<double>& b) {
  return QR(a).solve(b);
}

}  // namespace qaoaml::linalg
