// Dense row-major matrix of doubles.
//
// Sized for this library's needs: regression design matrices (hundreds of
// rows, tens of columns), GPR kernel matrices (a few hundred square), and
// quasi-Newton Hessian approximations (tens square).  All storage is a
// single contiguous std::vector<double>.
#ifndef QAOAML_LINALG_MATRIX_HPP
#define QAOAML_LINALG_MATRIX_HPP

#include <cstddef>
#include <vector>

namespace qaoaml::linalg {

/// Dense row-major matrix.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix with every element set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds a matrix from nested initializer data (row by row); used
  /// mostly by tests.  All rows must have equal length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Raw contiguous storage, row-major.
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Returns row `r` as a vector copy.
  std::vector<double> row(std::size_t r) const;

  /// Returns column `c` as a vector copy.
  std::vector<double> col(std::size_t c) const;

  /// Sets row `r` from `values`; length must equal cols().
  void set_row(std::size_t r, const std::vector<double>& values);

  Matrix transposed() const;

  /// this * other.  Dimensions must agree.
  Matrix operator*(const Matrix& other) const;

  /// Matrix-vector product this * v.
  std::vector<double> operator*(const std::vector<double>& v) const;

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix& operator+=(const Matrix& other);
  Matrix& operator*=(double scalar);

  /// Largest absolute element; 0 for an empty matrix.
  double max_abs() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// True when the matrix is square and |a_ij - a_ji| <= tol everywhere.
  bool is_symmetric(double tol = 1e-12) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// v^T * M for row-vector convenience.
std::vector<double> left_multiply(const std::vector<double>& v, const Matrix& m);

/// Outer product a * b^T.
Matrix outer(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace qaoaml::linalg

#endif  // QAOAML_LINALG_MATRIX_HPP
