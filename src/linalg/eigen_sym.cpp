#include "linalg/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace qaoaml::linalg {

EigenSym eigen_sym(const Matrix& a, double tol, int max_sweeps) {
  require(a.rows() == a.cols(), "eigen_sym: matrix must be square");
  require(a.is_symmetric(1e-9 * (1.0 + a.max_abs())),
          "eigen_sym: matrix must be symmetric");
  const std::size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += d(p, q) * d(p, q);
    }
    if (std::sqrt(off) <= tol * (1.0 + d.max_abs())) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(d(p, q)) < 1e-300) continue;
        const double theta = (d(q, q) - d(p, p)) / (2.0 * d(p, q));
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs ascending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return d(i, i) < d(j, j); });

  EigenSym out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = d(order[k], order[k]);
    for (std::size_t r = 0; r < n; ++r) out.vectors(r, k) = v(r, order[k]);
  }
  return out;
}

Matrix make_positive_definite(const Matrix& a, double min_eigenvalue) {
  const EigenSym eig = eigen_sym(a);
  const std::size_t n = a.rows();
  Matrix out(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const double lambda = std::max(eig.values[k], min_eigenvalue);
    for (std::size_t r = 0; r < n; ++r) {
      const double vr = eig.vectors(r, k);
      if (vr == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        out(r, c) += lambda * vr * eig.vectors(c, k);
      }
    }
  }
  return out;
}

}  // namespace qaoaml::linalg
