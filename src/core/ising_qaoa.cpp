#include "core/ising_qaoa.hpp"

#include "common/error.hpp"
#include "core/angles.hpp"

namespace qaoaml::core {

quantum::Circuit build_ising_ansatz(const ising::IsingModel& model,
                                    int depth) {
  require(depth >= 1, "build_ising_ansatz: depth must be >= 1");
  const int n = model.num_spins();
  require(n >= 1, "build_ising_ansatz: empty model");

  quantum::Circuit circuit(n);
  for (int q = 0; q < n; ++q) circuit.h(q);

  for (int stage = 0; stage < depth; ++stage) {
    const int gamma_index = stage;
    const int beta_index = depth + stage;
    // exp(-i gamma J Z_u Z_v) = CNOT . RZ(2 J gamma) . CNOT
    for (const ising::Coupling& c : model.couplings()) {
      circuit.cnot(c.i, c.j);
      circuit.rz(c.j, quantum::ParamExpr::bound(gamma_index, 2.0 * c.strength));
      circuit.cnot(c.i, c.j);
    }
    // exp(-i gamma h Z_u) = RZ(2 h gamma)
    for (int q = 0; q < n; ++q) {
      const double h = model.fields()[static_cast<std::size_t>(q)];
      if (h != 0.0) {
        circuit.rz(q, quantum::ParamExpr::bound(gamma_index, 2.0 * h));
      }
    }
    // Mixer RX(beta) = exp(-i beta X / 2), as in the MaxCut ansatz.
    for (int q = 0; q < n; ++q) {
      circuit.rx(q, quantum::ParamExpr::bound(beta_index, 1.0));
    }
  }
  return circuit;
}

IsingQaoa::IsingQaoa(ising::IsingModel model, int depth)
    : model_(std::move(model)),
      depth_(depth),
      hamiltonian_(ising::DiagonalHamiltonian::from_ising(model_)),
      circuit_(build_ising_ansatz(model_, depth)) {
  require(depth >= 1, "IsingQaoa: depth must be >= 1");
  max_value_ = hamiltonian_.max_value();
}

std::size_t IsingQaoa::num_parameters() const { return num_angles(depth_); }

optim::Bounds IsingQaoa::bounds() const { return qaoa_bounds(depth_); }

quantum::Statevector IsingQaoa::state(std::span<const double> params) const {
  require(params.size() == num_parameters(),
          "IsingQaoa::state: wrong parameter count");
  quantum::Statevector sv =
      quantum::Statevector::uniform(model_.num_spins());
  const std::vector<double>& diag = hamiltonian_.diagonal();
  for (int stage = 0; stage < depth_; ++stage) {
    const double gamma = params[static_cast<std::size_t>(stage)];
    const double beta = params[static_cast<std::size_t>(depth_ + stage)];
    sv.apply_diagonal_evolution(diag, gamma);
    const quantum::Gate1Q mixer = quantum::gates::rx(beta);
    for (int q = 0; q < model_.num_spins(); ++q) sv.apply_gate(mixer, q);
  }
  return sv;
}

double IsingQaoa::expectation(std::span<const double> params) const {
  return state(params).expectation_diagonal(hamiltonian_.diagonal());
}

double IsingQaoa::expectation_gate_level(
    std::span<const double> params) const {
  require(params.size() == num_parameters(),
          "IsingQaoa::expectation_gate_level: wrong parameter count");
  return circuit_.simulate(params).expectation_diagonal(
      hamiltonian_.diagonal());
}

double IsingQaoa::approximation_ratio(std::span<const double> params) const {
  require(max_value_ > 0.0,
          "IsingQaoa::approximation_ratio: max value must be positive");
  return expectation(params) / max_value_;
}

optim::ObjectiveFn IsingQaoa::objective() const {
  return [this](std::span<const double> params) {
    return -expectation(params);
  };
}

}  // namespace qaoaml::core
