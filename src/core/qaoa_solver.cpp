#include "core/qaoa_solver.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/angles.hpp"
#include "core/batch_evaluator.hpp"

namespace qaoaml::core {
namespace {

QaoaRun to_run(const MaxCutQaoa& instance, optim::OptimResult result) {
  QaoaRun run;
  run.params = instance.has_integer_spectrum()
                   ? canonicalize_angles(result.x)
                   : std::move(result.x);
  run.expectation = -result.fun;
  run.approximation_ratio = run.expectation / instance.max_cut_value();
  run.function_calls = result.nfev;
  run.iterations = result.nit;
  run.stop = result.reason;
  return run;
}

/// Sampled-mode epilogue: the optimizer's best `fun` is a noisy
/// estimate, so the final angles are re-scored with the exact
/// expectation (in `evaluator`'s reusable workspace).  Canonicalization
/// is an exact symmetry of <C>, so scoring the canonicalized params is
/// scoring the optimizer's point.
void rescore_exact(QaoaRun& run, BatchEvaluator& evaluator) {
  run.expectation = evaluator.expectation(run.params);
  run.approximation_ratio =
      run.expectation / evaluator.instance().max_cut_value();
}

QaoaRun solve_from_sampled(const MaxCutQaoa& instance,
                           optim::OptimizerKind optimizer,
                           std::span<const double> x0, const EvalSpec& eval,
                           std::uint64_t stream_seed,
                           const optim::Options& options,
                           BatchEvaluator& evaluator) {
  const optim::ObjectiveFn objective =
      instance.buffered_objective(eval, stream_seed);
  optim::OptimResult result = optim::minimize(
      optimizer, objective, x0, instance.bounds(), noisy_options(options));
  QaoaRun run = to_run(instance, std::move(result));
  rescore_exact(run, evaluator);
  return run;
}

}  // namespace

QaoaRun solve_from(const MaxCutQaoa& instance, optim::OptimizerKind optimizer,
                   std::span<const double> x0, const optim::Options& options) {
  require(x0.size() == instance.num_parameters(),
          "solve_from: wrong parameter count");
  // Buffered: the optimizer's many evaluations share one statevector
  // workspace instead of allocating 2^n amplitudes per call.
  const optim::ObjectiveFn objective = instance.buffered_objective();
  optim::OptimResult result =
      optim::minimize(optimizer, objective, x0, instance.bounds(), options);
  return to_run(instance, std::move(result));
}

QaoaRun solve_from(const MaxCutQaoa& instance, optim::OptimizerKind optimizer,
                   std::span<const double> x0, const EvalSpec& eval,
                   const optim::Options& options) {
  return solve_from_seeded(instance, optimizer, x0, eval, eval.seed, options);
}

QaoaRun solve_from_seeded(const MaxCutQaoa& instance,
                          optim::OptimizerKind optimizer,
                          std::span<const double> x0, const EvalSpec& eval,
                          std::uint64_t stream_seed,
                          const optim::Options& options) {
  if (!eval.sampled()) return solve_from(instance, optimizer, x0, options);
  require(x0.size() == instance.num_parameters(),
          "solve_from: wrong parameter count");
  validate(eval);
  BatchEvaluator evaluator(instance);
  return solve_from_sampled(instance, optimizer, x0, eval, stream_seed,
                            options, evaluator);
}

QaoaRun solve_random_init(const MaxCutQaoa& instance,
                          optim::OptimizerKind optimizer, Rng& rng,
                          const optim::Options& options) {
  const std::vector<double> x0 = random_angles(instance.depth(), rng);
  return solve_from(instance, optimizer, x0, options);
}

QaoaRun solve_random_init(const MaxCutQaoa& instance,
                          optim::OptimizerKind optimizer, Rng& rng,
                          const EvalSpec& eval,
                          const optim::Options& options) {
  const std::vector<double> x0 = random_angles(instance.depth(), rng);
  if (!eval.sampled()) return solve_from(instance, optimizer, x0, options);
  // Drawn after the starting point: exact specs consume exactly the
  // draws of the exact overload above.
  const std::uint64_t stream_seed = rng();
  return solve_from_seeded(instance, optimizer, x0, eval, stream_seed,
                           options);
}

namespace {

/// Draws the starting points of a `restarts`-way multistart, in restart
/// order (the rng sequence both multistart paths consume).
std::vector<std::vector<double>> draw_starts(const MaxCutQaoa& instance,
                                             int restarts, Rng& rng) {
  require(restarts >= 1, "solve_multistart: need at least one restart");
  std::vector<std::vector<double>> starts;
  starts.reserve(static_cast<std::size_t>(restarts));
  for (int r = 0; r < restarts; ++r) {
    starts.push_back(random_angles(instance.depth(), rng));
  }
  return starts;
}

/// Reduces per-restart runs in restart order, so best/total are
/// identical for every thread count (ties keep the earliest restart).
MultistartRuns reduce_runs(std::vector<QaoaRun> runs) {
  MultistartRuns out;
  for (QaoaRun& run : runs) {
    out.total_function_calls += run.function_calls;
    if (out.runs.empty() || run.expectation > out.best.expectation) {
      out.best = run;
    }
    out.runs.push_back(std::move(run));
  }
  return out;
}

}  // namespace

MultistartRuns solve_multistart(const MaxCutQaoa& instance,
                                optim::OptimizerKind optimizer, int restarts,
                                Rng& rng, const optim::Options& options) {
  const std::vector<std::vector<double>> starts =
      draw_starts(instance, restarts, rng);

  // One batch over the pool: contiguous restart chunks (one per worker,
  // BatchEvaluator-style) run concurrently, and every restart within a
  // chunk shares that chunk's reusable statevector workspace — O(threads)
  // 2^n allocations per multistart instead of O(restarts).  Each
  // optimization is a pure function of its starting point and the
  // workspace is fully rewritten per evaluation, so chunk boundaries
  // (i.e. the thread count) cannot change a single bit of any run.
  const std::size_t count = starts.size();
  const std::size_t chunks = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(default_thread_count(), 1)), count);
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;

  std::vector<QaoaRun> runs(count);
  parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = c * base + std::min(c, extra);
    const std::size_t end = begin + base + (c < extra ? 1 : 0);
    BatchEvaluator evaluator(instance);
    const optim::ObjectiveFn objective = [&evaluator](
        std::span<const double> params) { return evaluator.objective(params); };
    for (std::size_t r = begin; r < end; ++r) {
      runs[r] = to_run(instance,
                       optim::minimize(optimizer, objective, starts[r],
                                       instance.bounds(), options));
    }
  });
  return reduce_runs(std::move(runs));
}

MultistartRuns solve_multistart_sequential(const MaxCutQaoa& instance,
                                           optim::OptimizerKind optimizer,
                                           int restarts, Rng& rng,
                                           const optim::Options& options) {
  const std::vector<std::vector<double>> starts =
      draw_starts(instance, restarts, rng);
  std::vector<QaoaRun> runs(starts.size());
  for (std::size_t r = 0; r < starts.size(); ++r) {
    runs[r] = solve_from(instance, optimizer, starts[r], options);
  }
  return reduce_runs(std::move(runs));
}

namespace {

/// Per-restart measurement-stream seeds, drawn in restart order right
/// after the starting points — the shared derivation of both sampled
/// multistart paths.
std::vector<std::uint64_t> draw_stream_seeds(std::size_t restarts, Rng& rng) {
  std::vector<std::uint64_t> seeds(restarts);
  for (std::uint64_t& seed : seeds) seed = rng();
  return seeds;
}

}  // namespace

MultistartRuns solve_multistart(const MaxCutQaoa& instance,
                                optim::OptimizerKind optimizer, int restarts,
                                Rng& rng, const EvalSpec& eval,
                                const optim::Options& options) {
  if (!eval.sampled()) {
    return solve_multistart(instance, optimizer, restarts, rng, options);
  }
  validate(eval);
  const std::vector<std::vector<double>> starts =
      draw_starts(instance, restarts, rng);
  const std::vector<std::uint64_t> seeds = draw_stream_seeds(starts.size(), rng);

  // Same chunking as the exact batched path; every restart is a pure
  // function of (start, stream seed), both fixed up front in restart
  // order, so thread count cannot change a bit.
  const std::size_t count = starts.size();
  const std::size_t chunks = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(default_thread_count(), 1)), count);
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;

  std::vector<QaoaRun> runs(count);
  parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = c * base + std::min(c, extra);
    const std::size_t end = begin + base + (c < extra ? 1 : 0);
    BatchEvaluator evaluator(instance);
    for (std::size_t r = begin; r < end; ++r) {
      runs[r] = solve_from_sampled(instance, optimizer, starts[r], eval,
                                   seeds[r], options, evaluator);
    }
  });
  return reduce_runs(std::move(runs));
}

MultistartRuns solve_multistart_sequential(const MaxCutQaoa& instance,
                                           optim::OptimizerKind optimizer,
                                           int restarts, Rng& rng,
                                           const EvalSpec& eval,
                                           const optim::Options& options) {
  if (!eval.sampled()) {
    return solve_multistart_sequential(instance, optimizer, restarts, rng,
                                       options);
  }
  validate(eval);
  const std::vector<std::vector<double>> starts =
      draw_starts(instance, restarts, rng);
  const std::vector<std::uint64_t> seeds = draw_stream_seeds(starts.size(), rng);
  std::vector<QaoaRun> runs(starts.size());
  for (std::size_t r = 0; r < starts.size(); ++r) {
    runs[r] = solve_from_seeded(instance, optimizer, starts[r], eval, seeds[r],
                                options);
  }
  return reduce_runs(std::move(runs));
}

}  // namespace qaoaml::core
