#include "core/qaoa_solver.hpp"

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/angles.hpp"

namespace qaoaml::core {
namespace {

QaoaRun to_run(const MaxCutQaoa& instance, optim::OptimResult result) {
  QaoaRun run;
  run.params = instance.has_integer_spectrum()
                   ? canonicalize_angles(result.x)
                   : std::move(result.x);
  run.expectation = -result.fun;
  run.approximation_ratio = run.expectation / instance.max_cut_value();
  run.function_calls = result.nfev;
  run.iterations = result.nit;
  run.stop = result.reason;
  return run;
}

}  // namespace

QaoaRun solve_from(const MaxCutQaoa& instance, optim::OptimizerKind optimizer,
                   std::span<const double> x0, const optim::Options& options) {
  require(x0.size() == instance.num_parameters(),
          "solve_from: wrong parameter count");
  // Buffered: the optimizer's many evaluations share one statevector
  // workspace instead of allocating 2^n amplitudes per call.
  const optim::ObjectiveFn objective = instance.buffered_objective();
  optim::OptimResult result =
      optim::minimize(optimizer, objective, x0, instance.bounds(), options);
  return to_run(instance, std::move(result));
}

QaoaRun solve_random_init(const MaxCutQaoa& instance,
                          optim::OptimizerKind optimizer, Rng& rng,
                          const optim::Options& options) {
  const std::vector<double> x0 = random_angles(instance.depth(), rng);
  return solve_from(instance, optimizer, x0, options);
}

MultistartRuns solve_multistart(const MaxCutQaoa& instance,
                                optim::OptimizerKind optimizer, int restarts,
                                Rng& rng, const optim::Options& options) {
  require(restarts >= 1, "solve_multistart: need at least one restart");
  // Draw every starting point up front (the same rng sequence the old
  // sequential loop consumed), then run the restarts in parallel: each
  // optimization is deterministic in its x0 and owns a private buffered
  // objective, so the result is identical for every thread count.
  std::vector<std::vector<double>> starts;
  starts.reserve(static_cast<std::size_t>(restarts));
  for (int r = 0; r < restarts; ++r) {
    starts.push_back(random_angles(instance.depth(), rng));
  }

  std::vector<QaoaRun> runs(static_cast<std::size_t>(restarts));
  parallel_for(static_cast<std::size_t>(restarts), [&](std::size_t r) {
    runs[r] = solve_from(instance, optimizer, starts[r], options);
  });

  MultistartRuns out;
  for (QaoaRun& run : runs) {
    out.total_function_calls += run.function_calls;
    if (out.runs.empty() || run.expectation > out.best.expectation) {
      out.best = run;
    }
    out.runs.push_back(std::move(run));
  }
  return out;
}

}  // namespace qaoaml::core
