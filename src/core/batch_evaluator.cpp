#include "core/batch_evaluator.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace qaoaml::core {
namespace {

/// Splits [0, count) into `chunks` contiguous ranges and runs
/// body(chunk_begin, chunk_end) for each in parallel.  One workspace per
/// chunk is the allocation unit of every batch entry point.
///
/// `max_qubits` is the largest instance size in the batch: when the
/// batch is too small to occupy the pool AND the states are big enough
/// for amplitude-range sharding, everything runs as ONE chunk on the
/// calling thread — parallel_for's single-index fast path executes it
/// inline without entering a pool region, so each evaluation's
/// amplitude kernels fan out over the whole pool instead of one batch
/// entry pinning one thread while the rest idle.
void for_each_chunk(
    std::size_t count, int max_qubits,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const int threads = default_thread_count();
  const std::size_t chunks =
      BatchEvaluator::shards_amplitudes(count, max_qubits, threads)
          ? std::size_t{1}
          : std::min<std::size_t>(
                static_cast<std::size_t>(std::max(threads, 1)), count);
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;
  parallel_for(chunks, [&](std::size_t c) {
    // Chunks 0..extra-1 carry one extra entry.
    const std::size_t begin = c * base + std::min(c, extra);
    const std::size_t end = begin + base + (c < extra ? 1 : 0);
    body(begin, end);
  });
}

/// Largest qubit count in a job batch (jobs are pre-validated non-null).
int max_job_qubits(std::span<const BatchJob> jobs) {
  int max_qubits = 0;
  for (const BatchJob& job : jobs) {
    max_qubits = std::max(max_qubits, job.instance->num_qubits());
  }
  return max_qubits;
}

}  // namespace

bool BatchEvaluator::shards_amplitudes(std::size_t batch_size, int num_qubits,
                                       int threads) {
  if (num_qubits <= 0 || num_qubits >= 64) return false;
  return batch_size < static_cast<std::size_t>(std::max(threads, 1)) &&
         (std::size_t{1} << num_qubits) >= quantum::kAmplitudeParallelDim;
}

BatchEvaluator::BatchEvaluator(const MaxCutQaoa& instance)
    : instance_(&instance),
      workspace_(quantum::Statevector::uniform(instance.num_qubits())) {}

double BatchEvaluator::expectation(std::span<const double> params) {
  return instance_->expectation_using(workspace_, params);
}

double BatchEvaluator::objective(std::span<const double> params) {
  return -expectation(params);
}

double BatchEvaluator::evaluate(std::span<const double> params,
                                const EvalSpec& spec) {
  if (!spec.sampled()) return expectation(params);
  Rng rng(spec.seed);
  return instance_->evaluate_using(workspace_, cdf_workspace_, params, spec,
                                   rng);
}

std::vector<double> BatchEvaluator::expectations(
    std::span<const std::vector<double>> batch) const {
  std::vector<double> values(batch.size());
  for_each_chunk(batch.size(), instance_->num_qubits(),
                 [&](std::size_t begin, std::size_t end) {
                   quantum::Statevector workspace =
                       quantum::Statevector::uniform(instance_->num_qubits());
                   for (std::size_t i = begin; i < end; ++i) {
                     values[i] =
                         instance_->expectation_using(workspace, batch[i]);
                   }
                 });
  return values;
}

std::vector<double> BatchEvaluator::objectives(
    std::span<const std::vector<double>> batch) const {
  std::vector<double> values = expectations(batch);
  for (double& v : values) v = -v;
  return values;
}

std::vector<double> BatchEvaluator::expectations(
    std::span<const BatchJob> jobs) {
  for (const BatchJob& job : jobs) {
    require(job.instance != nullptr,
            "BatchEvaluator::expectations: null instance in batch");
  }
  std::vector<double> values(jobs.size());
  for_each_chunk(
      jobs.size(), max_job_qubits(jobs),
      [&](std::size_t begin, std::size_t end) {
        // reset_uniform only reallocates when the qubit count changes,
        // so a chunk of same-size instances reuses one buffer
        // throughout.
        quantum::Statevector workspace =
            quantum::Statevector::uniform(jobs[begin].instance->num_qubits());
        for (std::size_t i = begin; i < end; ++i) {
          values[i] =
              jobs[i].instance->expectation_using(workspace, jobs[i].params);
        }
      });
  return values;
}

std::vector<double> BatchEvaluator::evaluations(
    std::span<const BatchJob> jobs) {
  for (const BatchJob& job : jobs) {
    require(job.instance != nullptr,
            "BatchEvaluator::evaluations: null instance in batch");
    validate(job.eval);
  }
  std::vector<double> values(jobs.size());
  for_each_chunk(
      jobs.size(), max_job_qubits(jobs),
      [&](std::size_t begin, std::size_t end) {
        quantum::Statevector workspace =
            quantum::Statevector::uniform(jobs[begin].instance->num_qubits());
        std::vector<double> cdf;
        for (std::size_t i = begin; i < end; ++i) {
          // Each sampled job gets a fresh stream from its own spec
          // seed, so the value never depends on chunk mates or batch
          // position.
          Rng rng(jobs[i].eval.seed);
          values[i] = jobs[i].instance->evaluate_using(
              workspace, cdf, jobs[i].params, jobs[i].eval, rng);
        }
      });
  return values;
}

}  // namespace qaoaml::core
