// QAOA for general Ising cost functions (fields + couplings), beyond
// unweighted MaxCut.
//
// The paper's study is MaxCut-only; this generalization covers the
// problems a downstream user actually brings (weighted partitioning
// objectives, balance penalties as linear fields, arbitrary QUBOs via
// the standard QUBO->Ising map).  The ansatz gains an RZ layer for the
// linear fields:
//   per stage i:  for each coupling (u, v, J): CNOT, RZ(2*J*gamma_i), CNOT
//                 for each field (u, h):       RZ(2*h*gamma_i)
//                 mixer: RX(beta_i) on every qubit
// which equals exp(-i gamma_i * (H - const)) up to a global phase when
// the Hamiltonian is written over Z operators (maximization objective).
#ifndef QAOAML_CORE_ISING_QAOA_HPP
#define QAOAML_CORE_ISING_QAOA_HPP

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "ising/diagonal_hamiltonian.hpp"
#include "ising/ising_model.hpp"
#include "optim/types.hpp"
#include "quantum/circuit.hpp"
#include "quantum/statevector.hpp"

namespace qaoaml::core {

/// A depth-p QAOA instance whose objective is to *maximize* the energy
/// of a general Ising model.
class IsingQaoa {
 public:
  IsingQaoa(ising::IsingModel model, int depth);

  int depth() const { return depth_; }
  int num_qubits() const { return model_.num_spins(); }
  std::size_t num_parameters() const;
  const ising::IsingModel& model() const { return model_; }
  const ising::DiagonalHamiltonian& hamiltonian() const { return hamiltonian_; }

  /// Maximum of the cost function (exact, by enumeration).
  double max_value() const { return max_value_; }

  /// The optimization box (gamma in [0, 2*pi], beta in [0, pi]).
  optim::Bounds bounds() const;

  /// |psi(gamma, beta)> via the fused diagonal fast path.
  quantum::Statevector state(std::span<const double> params) const;

  /// <H> of the prepared state.
  double expectation(std::span<const double> params) const;

  /// <H> via explicit gate-by-gate simulation of the ansatz.
  double expectation_gate_level(std::span<const double> params) const;

  /// expectation / max_value (assumes max_value > 0).
  double approximation_ratio(std::span<const double> params) const;

  /// Minimization objective (-<H>); references this instance.
  optim::ObjectiveFn objective() const;

  /// The explicit ansatz circuit.
  const quantum::Circuit& ansatz() const { return circuit_; }

 private:
  ising::IsingModel model_;
  int depth_;
  ising::DiagonalHamiltonian hamiltonian_;
  double max_value_ = 0.0;
  quantum::Circuit circuit_;
};

/// Builds the general Ising ansatz circuit described above.
quantum::Circuit build_ising_ansatz(const ising::IsingModel& model, int depth);

}  // namespace qaoaml::core

#endif  // QAOAML_CORE_ISING_QAOA_HPP
