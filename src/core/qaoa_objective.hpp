// The QAOA cost-expectation objective for MaxCut.
//
// One instance = (problem graph, circuit depth p).  Every optimizer
// iteration evaluates <psi(gamma, beta)| C |psi(gamma, beta)> where C is
// the diagonal MaxCut cost operator; the classical loop *maximizes* this
// expectation, so objective() exposes its negative for the minimizers.
//
// Three evaluation paths produce identical values (tested to 1e-12):
//  - gate path: simulates the explicit CNOT/RZ/RX ansatz circuit;
//  - unfused fast path: applies the phase separator as a diagonal
//    multiply and the mixer as one RX gate pass per qubit;
//  - fused fast path (default): applies the whole layer — phase
//    separator + mixer — in a few blocked sweeps via
//    Statevector::apply_qaoa_layer* (see quantum/fused_kernels.hpp).
// The fast paths are selected by quantum::default_layer_kernel()
// (QAOAML_FUSED / ScopedLayerKernel); for unweighted graphs the cut
// spectrum is integral, so the phase separator collapses to a
// precomputed power table (exp(-i gamma)^C(z)) on either fast path.
#ifndef QAOAML_CORE_QAOA_OBJECTIVE_HPP
#define QAOAML_CORE_QAOA_OBJECTIVE_HPP

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/eval_spec.hpp"
#include "graph/graph.hpp"
#include "ising/diagonal_hamiltonian.hpp"
#include "optim/types.hpp"
#include "quantum/circuit.hpp"
#include "quantum/statevector.hpp"

namespace qaoaml::core {

/// A MaxCut-QAOA problem instance of fixed depth.
class MaxCutQaoa {
 public:
  /// Requires a graph with >= 2 nodes and >= 1 edge, depth >= 1.
  MaxCutQaoa(graph::Graph g, int depth);

  int depth() const { return depth_; }
  int num_qubits() const { return graph_.num_nodes(); }
  std::size_t num_parameters() const;
  const graph::Graph& problem_graph() const { return graph_; }
  const ising::DiagonalHamiltonian& hamiltonian() const { return hamiltonian_; }

  /// Exact MaxCut optimum (brute force), the AR denominator.
  double max_cut_value() const { return max_cut_; }

  /// The paper's optimization box for this depth.
  optim::Bounds bounds() const;

  /// True when every cut value is an integer (unweighted graphs); the
  /// fast path then uses the power-table phase separator.
  bool has_integer_spectrum() const { return integral_; }

  /// |psi(gamma, beta)> via the fast path.
  quantum::Statevector state(std::span<const double> params) const;

  /// Fast-path |psi(gamma, beta)> written into `workspace`, reusing its
  /// amplitude buffer (no allocation when the dimension matches).  This
  /// is the batch-evaluation hot path.
  void state_into(quantum::Statevector& workspace,
                  std::span<const double> params) const;

  /// <C> via the fast path.
  double expectation(std::span<const double> params) const;

  /// <C> evaluated in `workspace` — identical value to expectation(),
  /// without the per-call 2^n allocation.
  double expectation_using(quantum::Statevector& workspace,
                           std::span<const double> params) const;

  /// <C> via explicit gate-by-gate simulation of the ansatz circuit.
  double expectation_gate_level(std::span<const double> params) const;

  /// Finite-shot estimate of <C> (Born-rule sampling).  Convenience
  /// wrapper over sampled_expectation_using with private workspaces —
  /// one 2^n statevector + one 2^n CDF allocation per call.
  double sampled_expectation(std::span<const double> params, int shots,
                             Rng& rng) const;

  /// Finite-shot estimate of <C> reusing caller-owned workspaces (no
  /// allocation when capacities match): prepares |psi> in `workspace`,
  /// builds the Born-rule CDF once in `cdf_workspace` (serial prefix
  /// sum), then draws `shots` basis states by CDF inversion — O(2^n +
  /// shots * n) instead of the naive O(shots * 2^n) scan.  The estimate
  /// is a pure function of (params, shots, rng state): bit-identical
  /// across QAOAML_THREADS, shard counts, and batch positions.
  double sampled_expectation_using(quantum::Statevector& workspace,
                                   std::vector<double>& cdf_workspace,
                                   std::span<const double> params, int shots,
                                   Rng& rng) const;

  /// <C> under `spec`: expectation_using in exact mode (rng untouched);
  /// in sampled mode, `spec.averaging` repeated `spec.shots`-shot
  /// estimates averaged, drawn sequentially from `rng`.  Validates the
  /// spec (hostile shot counts throw).
  double evaluate_using(quantum::Statevector& workspace,
                        std::vector<double>& cdf_workspace,
                        std::span<const double> params, const EvalSpec& spec,
                        Rng& rng) const;

  /// expectation / max_cut_value.
  double approximation_ratio(std::span<const double> params) const;

  /// Minimization objective: -<C>.  The returned callable references
  /// this instance, which must outlive it.  Stateless, so one callable
  /// may be shared across threads.
  optim::ObjectiveFn objective() const;

  /// Minimization objective backed by a private reusable statevector
  /// workspace: repeated calls make no 2^n allocations.  Copies of the
  /// returned callable share one workspace — create one callable per
  /// thread (optimizer run) instead of sharing across threads.
  optim::ObjectiveFn buffered_objective() const;

  /// Minimization objective under `spec`.  Exact mode returns
  /// buffered_objective().  Sampled mode owns private statevector/CDF
  /// workspaces plus a private measurement stream seeded with
  /// `stream_seed`: SeedPolicy::kStream advances the stream call to
  /// call (fresh noise), kPerCall re-seeds every call (common random
  /// numbers — a deterministic noisy surrogate).  Copies share state:
  /// one callable per optimizer run, not across threads.
  optim::ObjectiveFn buffered_objective(const EvalSpec& spec,
                                        std::uint64_t stream_seed) const;

  /// The explicit ansatz circuit (built once, shared).
  const quantum::Circuit& ansatz() const { return circuit_; }

 private:
  graph::Graph graph_;
  int depth_;
  ising::DiagonalHamiltonian hamiltonian_;
  double max_cut_ = 0.0;
  quantum::Circuit circuit_;

  bool integral_ = false;
  std::vector<int> int_diagonal_;  // cut values as integers (fast path)
  int max_int_value_ = 0;
};

}  // namespace qaoaml::core

#endif  // QAOAML_CORE_QAOA_OBJECTIVE_HPP
