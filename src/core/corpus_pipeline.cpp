#include "core/corpus_pipeline.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <numeric>
#include <sstream>

#include "common/checkpoint.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"

namespace qaoaml::core {
namespace {

constexpr const char* kShardHeader = "qaoaml-corpus-shard-v1";
constexpr const char* kManifestHeader = "qaoaml-corpus-manifest-v1";

/// The config line written to both shard files; a full-line match is
/// required on resume, so any change of dataset recipe or shard layout
/// invalidates stale files instead of silently mixing corpora.
std::string shard_config_line(const DatasetConfig& dataset,
                              const ShardSpec& shard) {
  std::ostringstream os;
  os << "config " << to_string(dataset) << " shard=" << shard.index << '/'
     << shard.count;
  return os.str();
}

void require_valid_shard(const ShardSpec& shard) {
  require(shard.count >= 1, "CorpusPipeline: shard count must be >= 1");
  require(shard.index >= 0 && shard.index < shard.count,
          "CorpusPipeline: shard index out of range");
}

/// The longest valid prefix of complete unit blocks found in a shard
/// data file.  Anything after the first malformed, out-of-order,
/// foreign-unit or truncated block is discarded — regeneration is
/// always safe because unit content is deterministic.
struct ParsedShard {
  std::vector<std::size_t> units;        ///< ascending, owned
  std::vector<InstanceRecord> records;   ///< records[i] is units[i]
};

ParsedShard parse_shard_file(const std::string& path,
                             const std::string& config_line,
                             const DatasetConfig& dataset,
                             const ShardSpec& shard) {
  ParsedShard out;
  std::ifstream is(path);
  if (!is.good()) return out;
  std::string line;
  if (!getline_complete(is, line) || line != kShardHeader) return out;
  if (!getline_complete(is, line) || line != config_line) return out;

  bool in_block = false;
  std::size_t current = 0;
  std::vector<InstanceRecord> pending;
  try {
    while (getline_complete(is, line)) {
      if (line.empty()) continue;
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      if (tag == "unit") {
        std::size_t unit = 0;
        ls >> unit;
        if (in_block || ls.fail() || !shard.owns(unit) ||
            unit >= static_cast<std::size_t>(dataset.num_graphs) ||
            (!out.units.empty() && unit <= out.units.back())) {
          break;
        }
        current = unit;
        in_block = true;
        pending.clear();
      } else if (tag == "done") {
        std::size_t unit = 0;
        ls >> unit;
        if (!in_block || ls.fail() || unit != current ||
            pending.size() != 1 ||
            pending.front().id != static_cast<int>(current) ||
            pending.front().optimal_params.size() !=
                static_cast<std::size_t>(dataset.max_depth)) {
          break;
        }
        out.units.push_back(current);
        out.records.push_back(std::move(pending.front()));
        in_block = false;
        pending.clear();
      } else {
        // compute_max_cut=false: parsed records are only re-serialized
        // (run_shard resume) or re-saved (merge) — max_cut is not part
        // of the file format, so the O(2^nodes) brute force per graph
        // would be pure overhead on both paths.
        if (!in_block ||
            !detail::consume_record_line(line, pending,
                                         /*compute_max_cut=*/false)) {
          break;
        }
      }
    }
  } catch (const std::exception&) {
    // A malformed line (the typical kill-mid-write truncation) ends the
    // valid prefix; everything before it is still usable.  Catching
    // std::exception, not just Error, keeps corrupt counts that provoke
    // bad_alloc/length_error inside the recovery path too.
  }
  return out;
}

void write_unit_block(std::ostream& os, std::size_t unit,
                      const InstanceRecord& record) {
  os << "unit " << unit << '\n';
  detail::write_record(os, record);
  os << "done " << unit << '\n';
}

/// Reads the committed-unit ledger.  Returns false (and leaves `units`
/// empty) when the manifest is missing, stale, or malformed — resume
/// then trusts the data file alone.
bool read_manifest(const std::string& path, const std::string& config_line,
                   std::vector<std::size_t>& units) {
  std::ifstream is(path);
  if (!is.good()) return false;
  std::string line;
  if (!getline_complete(is, line) || line != kManifestHeader) return false;
  if (!getline_complete(is, line) || line != config_line) return false;
  while (getline_complete(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::size_t unit = 0;
    ls >> unit;
    if (ls.fail() || (!units.empty() && unit <= units.back())) {
      // A torn trailing line ends the trusted prefix.
      break;
    }
    units.push_back(unit);
  }
  return true;
}

}  // namespace

std::vector<std::size_t> shard_units(std::size_t total,
                                     const ShardSpec& shard) {
  require_valid_shard(shard);
  std::vector<std::size_t> units;
  for (std::size_t unit = static_cast<std::size_t>(shard.index); unit < total;
       unit += static_cast<std::size_t>(shard.count)) {
    units.push_back(unit);
  }
  return units;
}

void run_units_in_order(
    const std::vector<std::size_t>& units,
    const std::function<void(std::size_t, std::size_t)>& run,
    const std::function<void(std::size_t, std::size_t)>& commit) {
  if (units.empty()) return;
  // parallel_for has no cancellation: it keeps claiming indices after a
  // body throws and only rethrows at the end.  The abort flag makes
  // not-yet-started units exit immediately after the first exception,
  // so a failed commit (e.g. disk full) doesn't burn hours of compute
  // on units whose results could never be committed.
  std::atomic<bool> aborted{false};
  auto guarded_run = [&](std::size_t slot) {
    if (aborted.load(std::memory_order_relaxed)) return false;
    try {
      run(units[slot], slot);
    } catch (...) {
      aborted.store(true, std::memory_order_relaxed);
      throw;
    }
    return true;
  };
  if (!commit) {
    parallel_for(units.size(),
                 [&](std::size_t slot) { guarded_run(slot); });
    return;
  }
  std::mutex mutex;
  std::vector<char> done(units.size(), 0);
  std::size_t next = 0;
  parallel_for(units.size(), [&](std::size_t slot) {
    if (!guarded_run(slot)) return;
    // Drain the completed prefix.  The lock both orders the commits and
    // serializes them; holding it through commit() is deliberate — a
    // worker finishing meanwhile only blocks on the flag update, and
    // commits stay strictly ascending.
    std::lock_guard<std::mutex> lock(mutex);
    done[slot] = 1;
    while (!aborted.load(std::memory_order_relaxed) && next < units.size() &&
           done[next]) {
      const std::size_t ready = next++;
      try {
        commit(units[ready], ready);
      } catch (...) {
        aborted.store(true, std::memory_order_relaxed);
        throw;
      }
    }
  });
}

std::string CorpusPipeline::shard_data_path(const std::string& directory,
                                            const ShardSpec& shard) {
  require_valid_shard(shard);
  return (std::filesystem::path(directory) /
          ("corpus.shard" + std::to_string(shard.index) + "of" +
           std::to_string(shard.count) + ".txt"))
      .string();
}

std::string CorpusPipeline::shard_manifest_path(const std::string& directory,
                                                const ShardSpec& shard) {
  require_valid_shard(shard);
  return (std::filesystem::path(directory) /
          ("corpus.shard" + std::to_string(shard.index) + "of" +
           std::to_string(shard.count) + ".manifest"))
      .string();
}

ShardReport CorpusPipeline::run_shard(const CorpusShardConfig& config) {
  require_valid_shard(config.shard);
  // Full config validation BEFORE any file is touched: a typo'd flag
  // must error here, not after the prefix rewrite has already clobbered
  // a completed shard generated under the correct config.
  validate(config.dataset);

  Timer timer;
  std::filesystem::create_directories(config.directory);

  ShardReport report;
  report.data_path = shard_data_path(config.directory, config.shard);
  report.manifest_path = shard_manifest_path(config.directory, config.shard);

  // Exclusive for the whole run: a concurrent duplicate invocation of
  // this shard errors out here instead of interleaving file writes.
  const FileLock lock(report.data_path + ".lock");

  const std::string config_line =
      shard_config_line(config.dataset, config.shard);
  const std::vector<std::size_t> owned = shard_units(
      static_cast<std::size_t>(config.dataset.num_graphs), config.shard);
  report.units_owned = owned.size();

  // Resume: keep the prefix of owned units that is both complete in
  // the data file AND recorded in the manifest ledger (when a matching
  // manifest exists; a missing/stale manifest falls back to the data
  // file alone, and a unit the ledger has not caught up to is simply
  // regenerated — always safe, since unit content is deterministic).
  ParsedShard resumed = parse_shard_file(report.data_path, config_line,
                                         config.dataset, config.shard);
  std::vector<std::size_t> ledger;
  const bool have_ledger =
      read_manifest(report.manifest_path, config_line, ledger);
  std::size_t resume_count = 0;
  while (resume_count < resumed.units.size() &&
         resumed.units[resume_count] == owned[resume_count] &&
         (!have_ledger || (resume_count < ledger.size() &&
                           ledger[resume_count] == owned[resume_count]))) {
    ++resume_count;
  }
  report.units_resumed = resume_count;
  if (config.progress) config.progress(resume_count, owned.size());

  // Rewrite both files down to the validated prefix — atomically, via
  // temp + rename, so a kill mid-rewrite cannot lose units that were
  // already committed — then stream the remaining units in order.
  // Per-commit, data is flushed before the manifest line so a kill
  // between the two leaves the ledger behind the data, never ahead.
  {
    std::ostringstream data_prefix;
    std::ostringstream manifest_prefix;
    data_prefix << kShardHeader << '\n' << config_line << '\n';
    manifest_prefix << kManifestHeader << '\n' << config_line << '\n';
    for (std::size_t i = 0; i < resume_count; ++i) {
      write_unit_block(data_prefix, resumed.units[i], resumed.records[i]);
      manifest_prefix << resumed.units[i] << '\n';
    }
    replace_file_atomic(report.data_path, data_prefix.str());
    replace_file_atomic(report.manifest_path, manifest_prefix.str());
  }
  // The resumed records are only needed for the prefix rewrite above;
  // don't hold them in memory through the (potentially long) generation
  // of the remaining units.
  resumed = ParsedShard{};
  std::ofstream data(report.data_path, std::ios::app);
  require(data.good(),
          "CorpusPipeline::run_shard: cannot open " + report.data_path);
  std::ofstream manifest(report.manifest_path, std::ios::app);
  require(manifest.good(),
          "CorpusPipeline::run_shard: cannot open " + report.manifest_path);

  const std::vector<std::size_t> pending(owned.begin() + resume_count,
                                         owned.end());
  std::vector<InstanceRecord> slots(pending.size());
  // Commits are serialized by run_units_in_order, so the plain counter
  // feeding the progress hook needs no synchronization of its own.
  std::size_t committed = resume_count;
  run_units_in_order(
      pending,
      [&](std::size_t unit, std::size_t slot) {
        slots[slot] = generate_instance_record(config.dataset, unit);
      },
      [&](std::size_t unit, std::size_t slot) {
        write_unit_block(data, unit, slots[slot]);
        data.flush();
        manifest << unit << '\n';
        manifest.flush();
        slots[slot] = InstanceRecord{};  // free as we go: O(1) resident
        // Fail fast on I/O errors (disk full, file yanked): without
        // this, every remaining unit would keep burning CPU while its
        // commits silently no-op, and the failure would only surface
        // after the whole shard "finished".  Resume handles the rest.
        require(data.good() && manifest.good(),
                "CorpusPipeline::run_shard: write failed at unit " +
                    std::to_string(unit));
        if (config.progress) config.progress(++committed, owned.size());
      });
  require(data.good() && manifest.good(),
          "CorpusPipeline::run_shard: write failed");

  report.units_generated = pending.size();
  report.seconds = timer.seconds();
  report.instances_per_second =
      report.seconds > 0.0
          ? static_cast<double>(report.units_generated) / report.seconds
          : 0.0;
  return report;
}

ParameterDataset CorpusPipeline::merge_shards(const DatasetConfig& dataset,
                                              int shard_count,
                                              const std::string& directory,
                                              const std::string& final_path) {
  require(shard_count >= 1, "CorpusPipeline::merge_shards: need >= 1 shard");
  validate(dataset);

  std::vector<InstanceRecord> records(
      static_cast<std::size_t>(dataset.num_graphs));
  for (int s = 0; s < shard_count; ++s) {
    const ShardSpec shard{s, shard_count};
    const std::string path = shard_data_path(directory, shard);
    // In-memory consumers that need max_cut (parse_shard_file leaves it
    // at 0) load(final_path) instead, which recomputes it.
    ParsedShard parsed = parse_shard_file(
        path, shard_config_line(dataset, shard), dataset, shard);
    const std::vector<std::size_t> owned =
        shard_units(static_cast<std::size_t>(dataset.num_graphs), shard);
    if (parsed.units.size() != owned.size()) {
      // Distinguish "not done yet" from "done, but for a different
      // config" — an operator who omitted a corpus-shape flag on the
      // merge invocation should be told to fix the flag, not re-run
      // generation.
      std::ifstream probe(path);
      std::string header;
      std::string file_config;
      if (probe.good() && std::getline(probe, header) &&
          std::getline(probe, file_config) &&
          file_config != shard_config_line(dataset, shard)) {
        throw InvalidArgument(
            "CorpusPipeline::merge_shards: shard " + std::to_string(s) + "/" +
            std::to_string(shard_count) +
            " was generated with a different config (" + path + " has \"" +
            file_config + "\", merge asked for \"" +
            shard_config_line(dataset, shard) + "\")");
      }
      throw InvalidArgument(
          "CorpusPipeline::merge_shards: shard " + std::to_string(s) + "/" +
          std::to_string(shard_count) + " incomplete (" +
          std::to_string(parsed.units.size()) + " of " +
          std::to_string(owned.size()) + " units in " + path + ")");
    }
    for (std::size_t i = 0; i < parsed.units.size(); ++i) {
      records[parsed.units[i]] = std::move(parsed.records[i]);
    }
  }

  ParameterDataset merged(dataset, std::move(records));
  if (!final_path.empty()) merged.save(final_path);
  return merged;
}

std::vector<InstanceRecord> CorpusPipeline::generate_records(
    const DatasetConfig& dataset, const ShardSpec& shard) {
  require_valid_shard(shard);
  validate(dataset);
  const std::vector<std::size_t> units =
      shard_units(static_cast<std::size_t>(dataset.num_graphs), shard);
  std::vector<InstanceRecord> records(units.size());
  run_units_in_order(units, [&](std::size_t unit, std::size_t slot) {
    records[slot] = generate_instance_record(dataset, unit);
  });
  return records;
}

}  // namespace qaoaml::core
