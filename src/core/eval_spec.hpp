// First-class objective-evaluation specs (ROADMAP item 4).
//
// The paper's simulator is exact, but real devices return finite-shot
// estimates.  EvalSpec is the one value type that says *how* an
// objective value is produced — exact expectation or a seeded
// finite-shot estimate — and it threads through every layer that used
// to hardwire exactness: MaxCutQaoa, BatchEvaluator, the solvers, the
// two-level flow, the Table-I / transfer / corpus pipelines, and the
// qaoad wire protocol.
//
// Determinism contract: a sampled estimate is a pure function of
// (state, spec, measurement stream).  The statevector is bit-identical
// for every QAOAML_THREADS (blocked kernels), the CDF used for
// inversion sampling is built by a serial prefix sum, and shots are
// drawn sequentially from one Rng — so a fixed spec + stream produces
// the same bits at any thread count, shard count, or batch position.
//
// Seed ownership follows the purity rules of the pipelines: solver
// entry points that take an Rng& draw their measurement-stream seeds
// from that Rng (after any pre-existing draws, so exact-mode results
// are unchanged), which keeps each shard unit a pure function of
// (config, unit index).  Seedless entry points (solve_from, the wire
// protocol, BatchJob) carry the stream seed inside the spec itself.
#ifndef QAOAML_CORE_EVAL_SPEC_HPP
#define QAOAML_CORE_EVAL_SPEC_HPP

#include <cstdint>
#include <string>

#include "optim/types.hpp"

namespace qaoaml::core {

/// How an objective value is produced.
enum class ObjectiveMode {
  kExact,    ///< dense <psi|C|psi> (the paper's setting)
  kSampled,  ///< finite-shot Born-rule estimate
};

std::string to_string(ObjectiveMode mode);
/// Parses "exact" / "sampled"; throws InvalidArgument on anything else.
ObjectiveMode objective_mode_from_string(const std::string& text);

/// How the measurement stream behaves across repeated objective calls
/// within one optimization.
enum class SeedPolicy {
  kStream,   ///< one stream advances call to call: fresh noise per call
  kPerCall,  ///< every call re-seeds the stream: common random numbers,
             ///  turning the noisy objective into a deterministic
             ///  surrogate (the same angles always score the same)
};

std::string to_string(SeedPolicy policy);
/// Parses "stream" / "per-call"; throws InvalidArgument on anything else.
SeedPolicy seed_policy_from_string(const std::string& text);

/// One objective-evaluation recipe.  Value type: copy it freely.
struct EvalSpec {
  ObjectiveMode mode = ObjectiveMode::kExact;
  int shots = 1024;      ///< Born-rule shots per estimate (sampled mode)
  int averaging = 1;     ///< SPSA-style repeated estimates averaged per
                         ///  objective call (sampled mode)
  SeedPolicy seed_policy = SeedPolicy::kStream;
  std::uint64_t seed = 0;  ///< measurement-stream seed for entry points
                           ///  that do not draw one from a caller Rng

  bool sampled() const { return mode == ObjectiveMode::kSampled; }

  /// The default exact spec (shots/averaging/seed are ignored).
  static EvalSpec exact() { return EvalSpec{}; }

  /// A sampled spec with the given budget and stream seed.
  static EvalSpec sampled_with(int shots, std::uint64_t seed,
                               int averaging = 1) {
    EvalSpec spec;
    spec.mode = ObjectiveMode::kSampled;
    spec.shots = shots;
    spec.seed = seed;
    spec.averaging = averaging;
    return spec;
  }
};

/// Throws InvalidArgument on a hostile spec: sampled mode with
/// shots < 1 or averaging < 1.  Exact mode is always valid (the
/// sampling knobs are inert).
void validate(const EvalSpec& spec);

/// Config-key token string, e.g. "objective=sampled shots=256 avg=1
/// seed_policy=stream mseed=7" — appended to the Table-I / transfer /
/// corpus config lines so a spec change invalidates stale shard files
/// instead of silently mixing exact and sampled results.
std::string to_string(const EvalSpec& spec);

/// Deterministic substream seed for item `tag` under `spec`
/// (SplitMix64-style mixing).  Lets callers without an Rng give each
/// batch item / golden fixture its own independent measurement stream
/// as a pure function of (spec.seed, tag).
std::uint64_t substream_seed(const EvalSpec& spec, std::uint64_t tag);

/// Floors applied to the optimizer tolerances when the objective is
/// sampled: converging 1e-6-deep into noise of order 1/sqrt(shots)
/// burns function calls polishing randomness.
inline constexpr double kNoisyFtolFloor = 1e-3;
inline constexpr double kNoisyXtolFloor = 1e-2;

/// The noisy-objective optimizer preset: `base` with ftol/xtol raised
/// to the floors above.  Applied automatically by the EvalSpec solver
/// overloads in sampled mode; exact mode uses `base` untouched.
optim::Options noisy_options(optim::Options base);

/// `options` adjusted for `spec`: noisy_options in sampled mode, the
/// input unchanged in exact mode.
optim::Options effective_options(const optim::Options& options,
                                 const EvalSpec& spec);

}  // namespace qaoaml::core

#endif  // QAOAML_CORE_EVAL_SPEC_HPP
