#include "core/angles.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qaoaml::core {
namespace {
void check_stage(std::size_t num_params, int i) {
  require(num_params % 2 == 0, "angles: parameter count must be even");
  const int p = static_cast<int>(num_params / 2);
  require(i >= 1 && i <= p, "angles: stage index out of range");
}
}  // namespace

std::size_t num_angles(int p) {
  require(p >= 1, "num_angles: depth must be >= 1");
  return static_cast<std::size_t>(2 * p);
}

double gamma_of(std::span<const double> params, int i) {
  check_stage(params.size(), i);
  return params[static_cast<std::size_t>(i - 1)];
}

double beta_of(std::span<const double> params, int i) {
  check_stage(params.size(), i);
  return params[params.size() / 2 + static_cast<std::size_t>(i - 1)];
}

void set_gamma(std::vector<double>& params, int i, double value) {
  check_stage(params.size(), i);
  params[static_cast<std::size_t>(i - 1)] = value;
}

void set_beta(std::vector<double>& params, int i, double value) {
  check_stage(params.size(), i);
  params[params.size() / 2 + static_cast<std::size_t>(i - 1)] = value;
}

std::vector<double> pack_angles(const std::vector<double>& gammas,
                                const std::vector<double>& betas) {
  require(!gammas.empty() && gammas.size() == betas.size(),
          "pack_angles: gamma/beta length mismatch");
  std::vector<double> params;
  params.reserve(2 * gammas.size());
  params.insert(params.end(), gammas.begin(), gammas.end());
  params.insert(params.end(), betas.begin(), betas.end());
  return params;
}

optim::Bounds qaoa_bounds(int p) {
  require(p >= 1, "qaoa_bounds: depth must be >= 1");
  const std::size_t n = num_angles(p);
  std::vector<double> lo(n, 0.0);
  std::vector<double> hi(n);
  for (std::size_t i = 0; i < n; ++i) {
    hi[i] = i < n / 2 ? 2.0 * M_PI : M_PI;  // gammas first, then betas
  }
  return optim::Bounds(std::move(lo), std::move(hi));
}

std::vector<double> random_angles(int p, Rng& rng) {
  const optim::Bounds bounds = qaoa_bounds(p);
  std::vector<double> params(num_angles(p));
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i] = rng.uniform(bounds.lower()[i], bounds.upper()[i]);
  }
  return params;
}

std::vector<double> linear_ramp_angles(int p, double gamma_scale,
                                       double beta_scale) {
  require(p >= 1, "linear_ramp_angles: depth must be >= 1");
  std::vector<double> gammas(static_cast<std::size_t>(p));
  std::vector<double> betas(static_cast<std::size_t>(p));
  for (int i = 1; i <= p; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(p + 1);
    gammas[static_cast<std::size_t>(i - 1)] = gamma_scale * frac;
    betas[static_cast<std::size_t>(i - 1)] = beta_scale * (1.0 - frac);
  }
  return pack_angles(gammas, betas);
}

std::vector<double> interp_angles(std::span<const double> params_p) {
  require(params_p.size() >= 2 && params_p.size() % 2 == 0,
          "interp_angles: malformed parameter vector");
  const int p = static_cast<int>(params_p.size() / 2);
  const auto stage_value = [&](bool is_gamma, int i) -> double {
    if (i < 1 || i > p) return 0.0;
    return is_gamma ? gamma_of(params_p, i) : beta_of(params_p, i);
  };
  std::vector<double> gammas(static_cast<std::size_t>(p + 1));
  std::vector<double> betas(static_cast<std::size_t>(p + 1));
  for (int i = 1; i <= p + 1; ++i) {
    const double w_prev = static_cast<double>(i - 1) / static_cast<double>(p);
    const double w_here =
        static_cast<double>(p - i + 1) / static_cast<double>(p);
    gammas[static_cast<std::size_t>(i - 1)] =
        w_prev * stage_value(true, i - 1) + w_here * stage_value(true, i);
    betas[static_cast<std::size_t>(i - 1)] =
        w_prev * stage_value(false, i - 1) + w_here * stage_value(false, i);
  }
  return pack_angles(gammas, betas);
}

std::vector<double> canonicalize_angles(std::span<const double> params) {
  require(params.size() >= 2 && params.size() % 2 == 0,
          "canonicalize_angles: malformed parameter vector");
  std::vector<double> out(params.begin(), params.end());
  const std::size_t p = params.size() / 2;
  if (out[p] <= M_PI / 2.0) return out;  // beta_1 already canonical
  for (std::size_t i = 0; i < p; ++i) {
    out[i] = 2.0 * M_PI - out[i];       // gamma_i -> 2*pi - gamma_i
    out[p + i] = M_PI - out[p + i];     // beta_i  -> pi - beta_i
  }
  return out;
}

}  // namespace qaoaml::core
