// Online warm-start serving — the serve-many half of the paper's
// train-once/serve-many pitch, behind the `qaoad` daemon (tools/).
//
// A trained predictor bank (core/parameter_predictor.hpp, "QPBK" files
// from tools/train_predictor) maps a depth-1 optimum to near-optimal
// depth-p QAOA angles in microseconds; this layer puts that lookup
// behind a Unix-domain socket so one trained bank serves any number of
// client processes:
//
//   request  = (family, target depth, mode, graph or depth-1 optimum)
//   response = warm-start angles, or a full warm-started solve
//
// framed by common/wire.hpp (magic + version + checksum, mirroring the
// serialize framing) over common/socket.hpp.
//
// Three request modes, by how much quantum simulation they buy:
//  - kPredict: the client already has its depth-1 optimum; the server
//    answers from the bank alone (no simulator).  Bit-identical to
//    `train_predictor --predict` on the same bank — CI diffs the two.
//  - kWarmStart: the client sends a graph; the server runs the cheap
//    depth-1 optimization (2 parameters), feeds the bank, and returns
//    the depth-1 optimum + predicted angles + the expectation at the
//    prediction.
//  - kSolve: the full two-level flow of core/two_level_solver.hpp —
//    warm-started final optimization included.
//
// Concurrency model (the shard-orchestrator shape turned inward):
// connection readers enqueue requests into a BoundedWorkQueue; K worker
// jthreads pop *micro-batches* (pop_batch: never waits for a batch to
// fill, so batches only form under concurrent load) and evaluate each
// batch's predicted-angle expectations as ONE heterogeneous
// core::BatchEvaluator batch.  Responses return on the request's own
// connection, interleaved safely by a per-connection write lock.
//
// Hot reload: SIGHUP (tools/qaoad wires it via common/signals.hpp)
// re-reads every bank file and atomically swaps the bank set.  In-flight
// requests keep the shared_ptr they resolved at dispatch, so a reload
// drops zero requests; a failed reload (corrupt file) keeps serving the
// old banks and reports the error.
//
// Determinism contract: kPredict responses are a pure function of
// (bank, request); kWarmStart/kSolve are a pure function of (bank,
// request incl. seed) — micro-batching and worker count never change
// the bits, because batching only groups independent evaluations.
#ifndef QAOAML_CORE_SERVING_HPP
#define QAOAML_CORE_SERVING_HPP

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/socket.hpp"
#include "common/wire.hpp"
#include "common/work_queue.hpp"
#include "core/parameter_predictor.hpp"
#include "core/two_level_solver.hpp"
#include "graph/graph.hpp"

namespace qaoaml::core::serving {

// Frame types on the wire (wire::Frame::type).  Requests count up from
// 1, responses from 101.
inline constexpr std::uint32_t kPredictRequest = 1;
inline constexpr std::uint32_t kWarmStartRequest = 2;
inline constexpr std::uint32_t kSolveRequest = 3;
inline constexpr std::uint32_t kPingRequest = 4;
inline constexpr std::uint32_t kStatsRequest = 5;
inline constexpr std::uint32_t kResultResponse = 101;
inline constexpr std::uint32_t kPongResponse = 102;
inline constexpr std::uint32_t kStatsResponse = 103;

enum class Mode { kPredict, kWarmStart, kSolve };

/// One serving request (the decoded form of the three *Request frames).
struct Request {
  Mode mode = Mode::kPredict;
  std::uint64_t id = 0;       ///< echoed verbatim in the response
  std::string family;         ///< bank key ("erdos-renyi", ...)
  int target_depth = 2;
  double gamma1 = 0.0;        ///< kPredict: the depth-1 optimum
  double beta1 = 0.0;
  graph::Graph problem;       ///< kWarmStart / kSolve
  std::uint64_t seed = 0;     ///< level-1 RNG stream (determinism)
  int level1_restarts = 1;    ///< level-1 multistart count

  /// Objective evaluation for kWarmStart / kSolve (core/eval_spec.hpp).
  /// On the wire this is a versioned OPTIONAL trailing block, appended
  /// only for sampled specs: exact requests are byte-identical to the
  /// pre-EvalSpec protocol, so old clients keep working against new
  /// servers (and new clients in exact mode against old servers) on the
  /// same socket.  `eval.seed` seeds the measurement streams — part of
  /// the request, so responses stay pure functions of (bank, request).
  EvalSpec eval{};
};

/// One serving response (kResultResponse).  `ok == false` carries the
/// error text and no payload fields beyond `id`.
struct Response {
  std::uint64_t id = 0;
  bool ok = false;
  std::string error;
  std::uint64_t bank_generation = 0;  ///< which reload served this
  double gamma1 = 0.0;                ///< depth-1 optimum (echoed/computed)
  double beta1 = 0.0;
  std::vector<double> angles;         ///< predicted warm-start angles
  double expectation = 0.0;           ///< <C> (at prediction / final)
  double approximation_ratio = 0.0;   ///< kWarmStart / kSolve
  int function_calls = 0;             ///< kWarmStart: level 1; kSolve: total
};

/// Aggregate daemon counters (kStatsResponse payload).
struct ServerStats {
  std::uint64_t served = 0;        ///< responses with ok == true
  std::uint64_t errors = 0;        ///< responses with ok == false
  std::uint64_t batches = 0;       ///< micro-batches processed
  std::uint64_t max_batch = 0;     ///< largest micro-batch seen
  std::uint64_t reloads = 0;       ///< successful bank reloads
  std::uint64_t connections = 0;   ///< connections accepted
  std::uint64_t bank_generation = 0;
};

// Codecs.  Every decode validates exhaustively (wire::PayloadReader
// bounds checks + expect_end) and throws InvalidArgument on a malformed
// payload; a daemon turns that into an error response, never a crash.
std::uint32_t request_frame_type(Mode mode);
std::string encode_request(const Request& request);
Request decode_request(std::uint32_t frame_type, const std::string& payload);
std::string encode_response(const Response& response);
Response decode_response(const std::string& payload);
std::string encode_stats(const ServerStats& stats);
ServerStats decode_stats(const std::string& payload);

/// Graph codec shared by requests (u32 nodes, u64 edges, u32/u32/f64
/// per edge).  decode re-validates through Graph::add_edge, so
/// self-loops and duplicate edges from a hostile client throw.
void encode_graph(wire::PayloadWriter& writer, const graph::Graph& g);
graph::Graph decode_graph(wire::PayloadReader& reader);

/// The hot-reloadable set of predictor banks, keyed by family.
/// lookup() hands out shared_ptr snapshots, so a reload never pulls a
/// bank out from under an in-flight request.
class BankSet {
 public:
  /// Loads every (family, path) bank now; throws on a missing/corrupt
  /// file or a duplicate family.
  explicit BankSet(
      std::vector<std::pair<std::string, std::string>> family_paths);

  struct Entry {
    std::shared_ptr<const ParameterPredictor> bank;
    std::uint64_t generation = 0;
  };

  /// Throws InvalidArgument naming the family (and the known ones) when
  /// it is not loaded.
  Entry lookup(const std::string& family) const;

  /// Re-reads every bank file, then atomically swaps the whole set and
  /// bumps the generation.  Strong guarantee: on any load failure the
  /// old set keeps serving and the exception propagates.
  void reload();

  std::uint64_t generation() const;
  std::vector<std::string> families() const;

 private:
  const std::vector<std::pair<std::string, std::string>> family_paths_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const ParameterPredictor>> banks_;
  std::uint64_t generation_ = 1;
};

/// Scheduler + worker-pool configuration.
struct SchedulerConfig {
  int workers = 1;
  std::size_t queue_capacity = 64;  ///< request backpressure bound
  std::size_t batch_max = 8;        ///< micro-batch size cap
  TwoLevelConfig solver;            ///< level-1/solve optimizer settings
};

/// Micro-batching request scheduler: submit() enqueues (blocking when
/// the queue is full — backpressure reaches the client through unread
/// socket bytes), worker jthreads pop batches and invoke each job's
/// completion exactly once, including on shutdown (drained jobs run,
/// never dropped).
class Scheduler {
 public:
  Scheduler(const BankSet& banks, SchedulerConfig config);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  using Completion = std::function<void(const Response&)>;

  /// Enqueues one request.  The completion runs on a worker thread.
  /// Throws QueueClosed after stop().
  void submit(Request request, Completion done);

  /// Closes the queue, drains every accepted request, joins workers.
  /// Idempotent.
  void stop();

  struct Stats {
    std::uint64_t served = 0;
    std::uint64_t errors = 0;
    std::uint64_t batches = 0;
    std::uint64_t max_batch = 0;
  };
  Stats stats() const;

 private:
  struct Job {
    Request request;
    Completion done;
  };

  void worker_loop();
  void process_batch(std::vector<Job>& jobs);

  const BankSet& banks_;
  const SchedulerConfig config_;
  BoundedWorkQueue<Job> queue_;
  mutable std::mutex stats_mutex_;
  Stats stats_;
  bool stopped_ = false;
  std::mutex stop_mutex_;
  std::vector<std::jthread> workers_;
};

/// Everything qaoad is, minus CLI parsing and signal wiring: bind the
/// socket, accept connections, pump frames through the scheduler,
/// answer on the requesting connection.  Embeddable (tests and
/// bench_ci run a Server in-process).
struct ServerConfig {
  std::string socket_path;
  std::vector<std::pair<std::string, std::string>> banks;  ///< family, path
  int workers = 1;
  std::size_t batch_max = 8;
  std::size_t queue_capacity = 64;
  int backlog = 64;
  TwoLevelConfig solver;
  std::FILE* log = nullptr;  ///< connection/reload chatter; null = quiet
};

class Server {
 public:
  /// Loads the banks, binds the socket and starts serving; throws on
  /// any failure (nothing half-started survives).
  explicit Server(ServerConfig config);
  /// stop()s if still running.
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Hot bank reload (the SIGHUP action).  Zero in-flight requests are
  /// dropped; throws on a load failure (old banks keep serving).
  void reload();

  /// Stops accepting, lets every in-flight request complete and its
  /// response flush, then joins all threads.  Idempotent.
  void stop();

  ServerStats stats() const;
  const std::string& socket_path() const;

 private:
  struct Connection;

  void accept_loop();

  ServerConfig config_;
  BankSet banks_;
  Scheduler scheduler_;
  net::Fd listener_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> reloads_{0};
  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> open_connections_;
  std::thread accept_thread_;
};

}  // namespace qaoaml::core::serving

#endif  // QAOAML_CORE_SERVING_HPP
