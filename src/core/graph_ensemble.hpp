// Pluggable problem-instance ensembles for corpus generation and the
// Table-I sweep.
//
// The paper trains its predictor on a single family (Erdos-Renyi MaxCut
// instances), but the warm-start claim only matters if it generalizes
// across instance distributions — related work (Khairy et al., Wecker
// et al.) trains and evaluates across structured graph ensembles.  This
// subsystem makes the instance distribution a first-class, pluggable
// knob: one EnsembleConfig selects the family and its parameters, and
// every producer (ParameterDataset::generate, the corpus pipeline's
// shards, tools/generate_corpus, and — through the dataset — the
// Table-I experiment) samples through it.
//
// Families:
//  - **erdos-renyi** — G(n, p); the paper's ensemble and the default.
//  - **regular** — uniform-ish random d-regular graphs (configuration
//    model with rejection).
//  - **weighted-erdos-renyi** — G(n, p) with i.i.d. edge weights, drawn
//    uniformly from [low, high) or from N(mean, sd).  Weighted cut
//    spectra are non-integral, so the simulator's power-table fast path
//    and the angle canonicalization are both (correctly) bypassed.
//  - **small-world** — Watts-Strogatz ring lattice with rewiring.
//  - **mixed** — each instance draws one of the four concrete families
//    (uniformly, from the instance's own RNG stream), producing a
//    cross-distribution corpus in a single run.
//
// Contracts:
//  - **Determinism.**  sample_graph is a pure function of (config, rng
//    state): the same seeded Rng always yields the same graph, for
//    every thread count and shard layout — the corpus pipeline's
//    bit-identical-merge guarantee extends to every family.
//  - **Config key.**  to_string(EnsembleConfig) emits only the tokens
//    the selected family consumes, and the tokens participate in the
//    dataset cache / shard-resume key (core/parameter_dataset.hpp), so
//    changing any family knob invalidates stale corpora.
//  - **Validation.**  validate rejects out-of-range and non-finite
//    knobs (a NaN edge weight would silently poison every expectation
//    value downstream) before any generation starts.
#ifndef QAOAML_CORE_GRAPH_ENSEMBLE_HPP
#define QAOAML_CORE_GRAPH_ENSEMBLE_HPP

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace qaoaml::core {

/// The supported instance distributions.
enum class GraphFamily {
  kErdosRenyi,          ///< G(n, p) — the paper's ensemble (default)
  kRegular,             ///< random d-regular
  kWeightedErdosRenyi,  ///< G(n, p) with random edge weights
  kSmallWorld,          ///< Watts-Strogatz ring lattice with rewiring
  kMixed,               ///< per-instance uniform draw of the above four
};

/// Edge-weight distributions of the weighted family.
enum class WeightKind {
  kUniform,   ///< weight ~ U[low, high)
  kGaussian,  ///< weight ~ N(mean, sd)
};

/// One ensemble: a family plus its knobs.  Fields a family does not
/// consume are ignored by sampling and omitted from its config key.
struct EnsembleConfig {
  GraphFamily family = GraphFamily::kErdosRenyi;

  // erdos-renyi / weighted-erdos-renyi
  double edge_probability = 0.5;

  // regular
  int degree = 3;  ///< paper's trend figures use 3-regular graphs

  // weighted-erdos-renyi
  WeightKind weight = WeightKind::kUniform;
  double weight_low = 0.1;   ///< uniform draw lower bound
  double weight_high = 1.0;  ///< uniform draw upper bound (exclusive)
  double weight_mean = 1.0;  ///< gaussian mean
  double weight_sd = 0.25;   ///< gaussian standard deviation

  // small-world
  int neighbors = 2;               ///< ring-lattice degree (even)
  double rewire_probability = 0.25;
};

/// Canonical family name ("erdos-renyi", "regular",
/// "weighted-erdos-renyi", "small-world", "mixed") — used in config
/// keys and accepted by the CLI.
std::string to_string(GraphFamily family);

/// Parses a canonical family name ("er" is accepted as shorthand for
/// "erdos-renyi"); throws InvalidArgument on unknown names.
GraphFamily family_from_string(const std::string& name);

/// Space-separated key=value tokens of the knobs this config's family
/// consumes, starting with "family=...".  Part of the dataset config
/// key, so token vocabulary changes invalidate on-disk corpora.
std::string to_string(const EnsembleConfig& config);

/// Validates every knob the selected family consumes against
/// `num_nodes` (degree/neighbors ranges, probability ranges, finite
/// weight parameters, uniform low < high); throws InvalidArgument
/// otherwise.  kMixed validates all four constituent families.
void validate(const EnsembleConfig& config, int num_nodes);

/// Largest edge count the family can produce on `num_nodes` nodes (the
/// reachability bound for DatasetConfig::min_edges): C(n, 2) for the ER
/// families (0 when edge_probability is 0), the fixed lattice/regular
/// edge count otherwise.  kMixed returns the smallest bound of its
/// constituents, so a min_edges that passes is reachable whichever
/// family an instance draws.
std::int64_t max_edges(const EnsembleConfig& config, int num_nodes);

/// Draws one problem instance.  Pure function of (config, rng state):
/// thread count, shard layout and call site cannot change the result.
/// The rng should be the per-instance stream seeded from
/// (dataset seed, instance index) — see generate_instance_record.
graph::Graph sample_graph(const EnsembleConfig& config, int num_nodes,
                          Rng& rng);

}  // namespace qaoaml::core

#endif  // QAOAML_CORE_GRAPH_ENSEMBLE_HPP
