#include "core/eval_spec.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace qaoaml::core {

std::string to_string(ObjectiveMode mode) {
  switch (mode) {
    case ObjectiveMode::kExact: return "exact";
    case ObjectiveMode::kSampled: return "sampled";
  }
  throw InvalidArgument("to_string: unknown ObjectiveMode");
}

ObjectiveMode objective_mode_from_string(const std::string& text) {
  if (text == "exact") return ObjectiveMode::kExact;
  if (text == "sampled") return ObjectiveMode::kSampled;
  throw InvalidArgument("objective_mode_from_string: unknown mode '" + text +
                        "' (expected 'exact' or 'sampled')");
}

std::string to_string(SeedPolicy policy) {
  switch (policy) {
    case SeedPolicy::kStream: return "stream";
    case SeedPolicy::kPerCall: return "per-call";
  }
  throw InvalidArgument("to_string: unknown SeedPolicy");
}

SeedPolicy seed_policy_from_string(const std::string& text) {
  if (text == "stream") return SeedPolicy::kStream;
  if (text == "per-call") return SeedPolicy::kPerCall;
  throw InvalidArgument("seed_policy_from_string: unknown policy '" + text +
                        "' (expected 'stream' or 'per-call')");
}

void validate(const EvalSpec& spec) {
  if (!spec.sampled()) return;
  require(spec.shots >= 1, "EvalSpec: sampled mode needs shots >= 1, got " +
                               std::to_string(spec.shots));
  require(spec.averaging >= 1,
          "EvalSpec: sampled mode needs averaging >= 1, got " +
              std::to_string(spec.averaging));
}

std::string to_string(const EvalSpec& spec) {
  if (!spec.sampled()) return "objective=exact";
  std::ostringstream os;
  os << "objective=sampled shots=" << spec.shots << " avg=" << spec.averaging
     << " seed_policy=" << to_string(spec.seed_policy)
     << " mseed=" << spec.seed;
  return os.str();
}

std::uint64_t substream_seed(const EvalSpec& spec, std::uint64_t tag) {
  // SplitMix64 finalizer over (seed, tag): disjoint tags give streams
  // that are independent for any base seed, and the derivation has no
  // shared state, so it is position- and thread-agnostic.
  std::uint64_t h = spec.seed + 0x9E3779B97F4A7C15ull * (tag + 1);
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

optim::Options noisy_options(optim::Options base) {
  base.ftol = std::max(base.ftol, kNoisyFtolFloor);
  base.xtol = std::max(base.xtol, kNoisyXtolFloor);
  return base;
}

optim::Options effective_options(const optim::Options& options,
                                 const EvalSpec& spec) {
  return spec.sampled() ? noisy_options(options) : options;
}

}  // namespace qaoaml::core
