// The training corpus of optimal QAOA parameters.
//
// Mirrors the paper's data-generation phase: an ensemble of Erdos-Renyi
// G(n = 8, p_edge = 0.5) graphs, each optimized at every depth p = 1..6
// with multistart L-BFGS-B (tolerance 1e-6), keeping the best optimum.
// At full scale (330 graphs) the corpus holds 330 * (2+4+...+12) =
// 13,860 optimal parameters — the paper's headline dataset size.
#ifndef QAOAML_CORE_PARAMETER_DATASET_HPP
#define QAOAML_CORE_PARAMETER_DATASET_HPP

#include <string>
#include <utility>
#include <vector>

#include "core/qaoa_solver.hpp"
#include "graph/graph.hpp"
#include "optim/optimizer.hpp"

namespace qaoaml::core {

/// All optimal-parameter data for one problem graph.
struct InstanceRecord {
  int id = 0;
  graph::Graph problem;
  double max_cut = 0.0;

  /// optimal_params[p - 1] = canonicalized best angles at depth p
  /// (length 2p).
  std::vector<std::vector<double>> optimal_params;
  /// Best expectation per depth.
  std::vector<double> expectation;
  /// Approximation ratio per depth.
  std::vector<double> approximation_ratio;
  /// Total function calls spent generating each depth's optimum.
  std::vector<int> generation_fc;

  /// gamma_i / beta_i accessors at a given depth (1-based stage i).
  double gamma_opt(int p, int i) const;
  double beta_opt(int p, int i) const;
};

/// Generation settings (defaults = the paper's full-scale setup).
struct DatasetConfig {
  int num_graphs = 330;
  int num_nodes = 8;
  double edge_probability = 0.5;
  int min_edges = 1;           ///< resample graphs with fewer edges
  int max_depth = 6;
  int restarts = 20;           ///< random initializations per (graph, p)
  optim::OptimizerKind optimizer = optim::OptimizerKind::kLbfgsb;
  optim::Options options{};    ///< ftol defaults to 1e-6
  std::uint64_t seed = 42;
};

/// Immutable corpus of per-graph optimal parameters.
class ParameterDataset {
 public:
  ParameterDataset() = default;
  ParameterDataset(DatasetConfig config, std::vector<InstanceRecord> records);

  /// Generates the corpus (parallel across graphs, deterministic in
  /// `config.seed` regardless of thread count).
  static ParameterDataset generate(const DatasetConfig& config);

  const DatasetConfig& config() const { return config_; }
  const std::vector<InstanceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  int max_depth() const { return config_.max_depth; }

  /// Total number of stored optimal parameters: sum over graphs and
  /// depths of 2p (13,860 at full scale).
  std::size_t total_parameter_count() const;

  /// Shuffled (train, test) record-index split; the paper uses 20:80.
  std::pair<std::vector<std::size_t>, std::vector<std::size_t>> split_indices(
      double train_fraction, Rng& rng) const;

  /// Text persistence; benches cache the generated corpus on disk.
  void save(const std::string& path) const;
  static ParameterDataset load(const std::string& path);

  /// Loads from `path` when present and generated with an identical
  /// config; otherwise generates and saves.
  static ParameterDataset load_or_generate(const DatasetConfig& config,
                                           const std::string& path);

 private:
  DatasetConfig config_;
  std::vector<InstanceRecord> records_;
};

/// One-line summary of a config (also the cache key).
std::string to_string(const DatasetConfig& config);

}  // namespace qaoaml::core

#endif  // QAOAML_CORE_PARAMETER_DATASET_HPP
