// The training corpus of optimal QAOA parameters.
//
// Mirrors the paper's data-generation phase: an ensemble of problem
// graphs (default: Erdos-Renyi G(n = 8, p_edge = 0.5), the paper's;
// pluggable via DatasetConfig::ensemble — see core/graph_ensemble.hpp),
// each optimized at every depth p = 1..6 with multistart L-BFGS-B
// (tolerance 1e-6), keeping the best optimum.  At full scale (330
// graphs) the corpus holds 330 * (2+4+...+12) = 13,860 optimal
// parameters — the paper's headline dataset size.
//
// Contracts:
//  - **Determinism.**  Record g is a pure function of (DatasetConfig, g)
//    (see generate_instance_record): generation is bit-identical for
//    every thread count, shard layout and call order.  save() output is
//    therefore byte-identical across runs, which is what the corpus
//    pipeline's merge guarantee (core/corpus_pipeline.hpp) and the
//    on-disk cache key (to_string(config)) rely on.
//  - **Thread-safety.**  ParameterDataset is immutable after
//    construction; concurrent readers need no synchronization.
//    generate() parallelizes internally and must not be called from
//    inside a parallel_* body.
//  - **Angle units.**  Stored optima use the packed layout of
//    core/angles.hpp — [gamma_1..gamma_p, beta_1..beta_p], radians,
//    gamma in [0, 2*pi], beta in [0, pi] — canonicalized into the
//    beta_1 <= pi/2 half-domain when the cut spectrum is integral.
//  - **Persistence.**  save()/load() round-trip exactly (doubles are
//    printed with 17 significant digits); load() recomputes max_cut
//    rather than trusting the file.
#ifndef QAOAML_CORE_PARAMETER_DATASET_HPP
#define QAOAML_CORE_PARAMETER_DATASET_HPP

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/graph_ensemble.hpp"
#include "core/qaoa_solver.hpp"
#include "graph/graph.hpp"
#include "optim/optimizer.hpp"

namespace qaoaml::core {

/// All optimal-parameter data for one problem graph.
struct InstanceRecord {
  int id = 0;
  graph::Graph problem;
  double max_cut = 0.0;

  /// optimal_params[p - 1] = canonicalized best angles at depth p
  /// (length 2p).
  std::vector<std::vector<double>> optimal_params;
  /// Best expectation per depth.
  std::vector<double> expectation;
  /// Approximation ratio per depth.
  std::vector<double> approximation_ratio;
  /// Total function calls spent generating each depth's optimum.
  std::vector<int> generation_fc;

  /// gamma_i / beta_i accessors at a given depth (1-based stage i).
  double gamma_opt(int p, int i) const;
  double beta_opt(int p, int i) const;
};

/// Generation settings (defaults = the paper's full-scale setup).
struct DatasetConfig {
  int num_graphs = 330;
  int num_nodes = 8;
  EnsembleConfig ensemble{};   ///< instance distribution (default:
                               ///  Erdos-Renyi p=0.5, the paper's)
  int min_edges = 1;           ///< resample graphs with fewer edges
  int max_depth = 6;
  int restarts = 20;           ///< random initializations per (graph, p)
  optim::OptimizerKind optimizer = optim::OptimizerKind::kLbfgsb;
  optim::Options options{};    ///< ftol defaults to 1e-6
  std::uint64_t seed = 42;

  /// Objective evaluation during corpus optimization
  /// (core/eval_spec.hpp).  Default exact — the paper's setting, and
  /// what a corpus of true optima wants.  Sampled mode generates the
  /// corpus a real device would have produced (every multistart and
  /// heuristic-seed refinement optimizes a finite-shot estimate, with
  /// measurement streams drawn from the per-graph rng, so records stay
  /// pure functions of (config, index)).  Part of the config key.
  EvalSpec eval{};
};

/// Immutable corpus of per-graph optimal parameters.
class ParameterDataset {
 public:
  ParameterDataset() = default;
  ParameterDataset(DatasetConfig config, std::vector<InstanceRecord> records);

  /// Generates the corpus (parallel across graphs, deterministic in
  /// `config.seed` regardless of thread count).
  static ParameterDataset generate(const DatasetConfig& config);

  const DatasetConfig& config() const { return config_; }
  const std::vector<InstanceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  int max_depth() const { return config_.max_depth; }

  /// Total number of stored optimal parameters: sum over graphs and
  /// depths of 2p (13,860 at full scale).
  std::size_t total_parameter_count() const;

  /// Shuffled (train, test) record-index split; the paper uses 20:80.
  std::pair<std::vector<std::size_t>, std::vector<std::size_t>> split_indices(
      double train_fraction, Rng& rng) const;

  /// Text persistence; benches cache the generated corpus on disk.
  void save(const std::string& path) const;
  static ParameterDataset load(const std::string& path);

  /// The literal config line a load() came from (empty for generated
  /// datasets).  load_or_generate compares THIS against the requested
  /// key, so recipe-version bumps ("gen=N" in to_string) invalidate
  /// stale caches even though gen is not a DatasetConfig field.
  const std::string& source_key() const { return source_key_; }

  /// Loads from `path` when present and generated with an identical
  /// config; otherwise generates and saves.
  static ParameterDataset load_or_generate(const DatasetConfig& config,
                                           const std::string& path);

 private:
  DatasetConfig config_;
  std::vector<InstanceRecord> records_;
  std::string source_key_;
};

/// One-line summary of a config (also the cache key).
std::string to_string(const DatasetConfig& config);

/// Validates every generation-relevant field (>= 1 graph and depth,
/// num_nodes within the exact-MaxCut limit [1, 30], the ensemble's
/// family knobs, min_edges reachable under the selected family);
/// throws InvalidArgument otherwise.  Every
/// generation entry point — ParameterDataset::generate and the corpus
/// pipeline — calls this BEFORE touching any on-disk state, so a typo'd
/// config errors instantly instead of clobbering completed shards.
void validate(const DatasetConfig& config);

/// Generates the record of corpus unit `index` (the index-th graph):
/// one instance sampled from config.ensemble plus its best multistart
/// optimum at every depth 1..config.max_depth.  The result depends only on
/// (config, index) — never on thread count, shard layout or call order
/// — which is what makes sharded corpus generation bit-reproducible
/// (core/corpus_pipeline.hpp).  Safe to call concurrently for distinct
/// indices.
InstanceRecord generate_instance_record(const DatasetConfig& config,
                                        std::size_t index);

namespace detail {

/// Serializes one record in the dataset text format (one "graph" line,
/// then one "params" line per depth; 17 significant digits).  Shared by
/// ParameterDataset::save and the corpus pipeline's shard writer so the
/// two produce byte-identical record blocks.
void write_record(std::ostream& os, const InstanceRecord& record);

/// Feeds one body line of the dataset format into an in-progress record
/// list: "graph ..." starts a record, "params ..." appends the next
/// depth to the last one.  Returns false on any other tag; throws Error
/// on malformed lines.  `compute_max_cut` re-runs the exact MaxCut
/// brute force per graph (O(2^nodes)) — callers that only re-serialize
/// records (the shard resume path) pass false and leave max_cut at 0.
bool consume_record_line(const std::string& line,
                         std::vector<InstanceRecord>& records,
                         bool compute_max_cut = true);

}  // namespace detail

}  // namespace qaoaml::core

#endif  // QAOAML_CORE_PARAMETER_DATASET_HPP
