#include "core/two_level_solver.hpp"

#include "common/error.hpp"
#include "core/angles.hpp"

namespace qaoaml::core {
namespace {

/// Options for a warm-started stage: identical tolerances, but the
/// derivative-free trust region opens at warm_rho_begin instead of the
/// cold-start radius.
optim::Options warm_options(const TwoLevelConfig& config) {
  optim::Options options = config.options;
  options.rho_begin = std::min(options.rho_begin, config.warm_rho_begin);
  return options;
}

/// Level 1 of both flows: optimize the depth-1 instance.
QaoaRun run_level1(const graph::Graph& problem, const TwoLevelConfig& config,
                   Rng& rng) {
  const MaxCutQaoa level1_instance(problem, 1);
  if (config.level1_restarts <= 1) {
    return solve_random_init(level1_instance, config.optimizer, rng,
                             config.eval, config.options);
  }
  MultistartRuns runs =
      solve_multistart(level1_instance, config.optimizer,
                       config.level1_restarts, rng, config.eval,
                       config.options);
  QaoaRun best = runs.best;
  best.function_calls = runs.total_function_calls;  // all restarts count
  return best;
}

/// A warm-started stage under the config's EvalSpec.  Sampled mode
/// draws the stage's measurement-stream seed from `rng`; exact mode
/// leaves `rng` untouched (bit-compat with the pre-EvalSpec flow).
QaoaRun solve_warm_stage(const MaxCutQaoa& instance,
                         const TwoLevelConfig& config,
                         std::span<const double> init, Rng& rng) {
  const std::uint64_t stream_seed = config.eval.sampled() ? rng() : 0;
  return solve_from_seeded(instance, config.optimizer, init, config.eval,
                           stream_seed, warm_options(config));
}

}  // namespace

AcceleratedRun solve_two_level(const graph::Graph& problem, int target_depth,
                               const ParameterPredictor& predictor,
                               const TwoLevelConfig& config, Rng& rng) {
  require(predictor.trained(), "solve_two_level: predictor not trained");
  require(predictor.config().intermediate_depth == 0,
          "solve_two_level: needs a two-level predictor bank");
  require(target_depth >= 2, "solve_two_level: target depth must be >= 2");

  AcceleratedRun out;
  out.level1 = run_level1(problem, config, rng);

  out.predicted_init = predictor.predict(gamma_of(out.level1.params, 1),
                                         beta_of(out.level1.params, 1),
                                         target_depth);

  const MaxCutQaoa target_instance(problem, target_depth);
  out.final = solve_warm_stage(target_instance, config, out.predicted_init,
                               rng);
  out.total_function_calls =
      out.level1.function_calls + out.final.function_calls;
  return out;
}

AcceleratedRun solve_three_level(const graph::Graph& problem, int target_depth,
                                 const ParameterPredictor& coarse,
                                 const ParameterPredictor& fine,
                                 const TwoLevelConfig& config, Rng& rng) {
  require(coarse.trained() && fine.trained(),
          "solve_three_level: predictors not trained");
  require(coarse.config().intermediate_depth == 0,
          "solve_three_level: coarse bank must be two-level");
  const int pm = fine.config().intermediate_depth;
  require(pm >= 2, "solve_three_level: hierarchical bank needs pm >= 2");
  require(target_depth > pm,
          "solve_three_level: target depth must exceed the intermediate");

  AcceleratedRun out;
  out.level1 = run_level1(problem, config, rng);
  const double gamma1 = gamma_of(out.level1.params, 1);
  const double beta1 = beta_of(out.level1.params, 1);

  // Level 2: intermediate depth, seeded by the two-level prediction.
  const std::vector<double> pm_init = coarse.predict(gamma1, beta1, pm);
  const MaxCutQaoa pm_instance(problem, pm);
  out.intermediate = solve_warm_stage(pm_instance, config, pm_init, rng);

  // Level 3: target depth, seeded by the hierarchical prediction.
  out.predicted_init = fine.predict_hierarchical(
      gamma1, beta1, out.intermediate.params, target_depth);
  const MaxCutQaoa target_instance(problem, target_depth);
  out.final = solve_warm_stage(target_instance, config, out.predicted_init,
                               rng);

  out.total_function_calls = out.level1.function_calls +
                             out.intermediate.function_calls +
                             out.final.function_calls;
  return out;
}

}  // namespace qaoaml::core
