#include <cmath>
#include "core/parameter_dataset.hpp"

#include <cstdint>
#include <fstream>
#include <numeric>
#include <sstream>

#include "common/error.hpp"
#include "core/angles.hpp"
#include "core/corpus_pipeline.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"

namespace qaoaml::core {

double InstanceRecord::gamma_opt(int p, int i) const {
  require(p >= 1 && static_cast<std::size_t>(p) <= optimal_params.size(),
          "InstanceRecord::gamma_opt: depth out of range");
  return gamma_of(optimal_params[static_cast<std::size_t>(p - 1)], i);
}

double InstanceRecord::beta_opt(int p, int i) const {
  require(p >= 1 && static_cast<std::size_t>(p) <= optimal_params.size(),
          "InstanceRecord::beta_opt: depth out of range");
  return beta_of(optimal_params[static_cast<std::size_t>(p - 1)], i);
}

ParameterDataset::ParameterDataset(DatasetConfig config,
                                   std::vector<InstanceRecord> records)
    : config_(std::move(config)), records_(std::move(records)) {}

void validate(const DatasetConfig& config) {
  // A typo'd CLI flag must error instantly — not spin the resample loop
  // (--edge-prob 0), grind through a billion edge draws (--nodes
  // 46342), or clobber a completed shard file before the first unit
  // throws.  The 30-node ceiling is the exact-MaxCut brute force's own
  // limit (O(2^n)), which every record needs for its approximation
  // ratios; 64-bit arithmetic so the complete-graph bound can't
  // overflow int (UB) before firing.
  require(config.num_graphs >= 1, "DatasetConfig: need >= 1 graph");
  require(config.max_depth >= 1, "DatasetConfig: max_depth must be >= 1");
  require(config.num_nodes >= 1 && config.num_nodes <= 30,
          "DatasetConfig: num_nodes out of range [1, 30]");
  validate(config.ensemble, config.num_nodes);
  // Reachability under the *selected family*: an ER resample loop can
  // reach any count up to C(n, 2) when p > 0, but regular/small-world
  // families have a fixed edge count — a min_edges above it would
  // resample forever.
  require(config.min_edges <= 0 ||
              config.min_edges <= max_edges(config.ensemble, config.num_nodes),
          "DatasetConfig: min_edges unreachable under the selected "
          "graph family");
}

InstanceRecord generate_instance_record(const DatasetConfig& config,
                                        std::size_t index) {
  validate(config);

  // Per-graph deterministic stream: independent of thread scheduling.
  Rng rng(config.seed * 0x9e3779b97f4a7c15ULL + index);
  graph::Graph problem = sample_graph(config.ensemble, config.num_nodes, rng);
  int attempts = 0;
  while (static_cast<int>(problem.num_edges()) < config.min_edges) {
    // Terminates with probability 1 for any family that validate()
    // accepted (reachability is checked there per family).  The cap
    // only exists to turn effectively-unreachable configs (e.g.
    // p = 1e-300) into an error instead of a silent hang: it is set so
    // high that any config with a practically generatable expected
    // attempt count (even millions) passes, and hitting it means the
    // config could not have produced a corpus in any usable time.
    require(++attempts < 10'000'000,
            "generate_instance_record: cannot reach min_edges");
    problem = sample_graph(config.ensemble, config.num_nodes, rng);
  }

  InstanceRecord record;
  record.id = static_cast<int>(index);
  record.problem = problem;
  record.max_cut = graph::max_cut_brute_force(problem).value;

  for (int p = 1; p <= config.max_depth; ++p) {
    const MaxCutQaoa instance(problem, p);
    MultistartRuns runs =
        solve_multistart(instance, config.optimizer, config.restarts, rng,
                         config.eval, config.options);
    // Heuristic seeds on top of the random restarts: the linear ramp
    // and the INTERP bootstrap from the depth-(p-1) optimum (Zhou et
    // al., the paper's ref. [5]).  Pure random multistart frequently
    // stalls in shallow local basins at p >= 3, which would corrupt
    // the parameter *trends* the ML model learns from; taking the best
    // of {random..., ramp, interp} keeps the corpus at the true optima
    // without touching the naive Table-I baseline (still pure random).
    std::vector<std::vector<double>> seeds;
    seeds.push_back(linear_ramp_angles(p));
    if (p >= 2) {
      seeds.push_back(
          interp_angles(record.optimal_params[static_cast<std::size_t>(p - 2)]));
    }
    for (const std::vector<double>& seed : seeds) {
      // Seed refinements sample too (when configured): their
      // measurement streams come from the same per-graph rng, drawn
      // only in sampled mode so exact corpora keep their exact bits.
      const std::uint64_t stream_seed = config.eval.sampled() ? rng() : 0;
      QaoaRun run = solve_from_seeded(instance, config.optimizer, seed,
                                      config.eval, stream_seed,
                                      config.options);
      runs.total_function_calls += run.function_calls;
      // ">= - eps": when a random restart found an exact symmetry copy
      // of the seeded optimum (equal energy up to the optimizer's own
      // ftol resolution), prefer the seeded one — it lives in the
      // canonical pattern basin the ML model learns.
      const double tie_eps =
          1e-4 * std::max(1.0, std::abs(runs.best.expectation));
      if (run.expectation >= runs.best.expectation - tie_eps) {
        runs.best = std::move(run);
      }
    }
    record.optimal_params.push_back(runs.best.params);
    record.expectation.push_back(runs.best.expectation);
    record.approximation_ratio.push_back(runs.best.approximation_ratio);
    record.generation_fc.push_back(runs.total_function_calls);
  }
  return record;
}

ParameterDataset ParameterDataset::generate(const DatasetConfig& config) {
  validate(config);
  return ParameterDataset(config, CorpusPipeline::generate_records(config));
}

std::size_t ParameterDataset::total_parameter_count() const {
  std::size_t total = 0;
  for (const InstanceRecord& record : records_) {
    for (const auto& params : record.optimal_params) total += params.size();
  }
  return total;
}

std::pair<std::vector<std::size_t>, std::vector<std::size_t>>
ParameterDataset::split_indices(double train_fraction, Rng& rng) const {
  require(train_fraction > 0.0 && train_fraction < 1.0,
          "split_indices: fraction must lie in (0, 1)");
  require(records_.size() >= 2, "split_indices: need >= 2 records");
  std::vector<std::size_t> order(records_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  std::size_t train_count = static_cast<std::size_t>(
      train_fraction * static_cast<double>(order.size()) + 0.5);
  train_count = std::clamp<std::size_t>(train_count, 1, order.size() - 1);
  return {
      std::vector<std::size_t>(order.begin(),
                               order.begin() + static_cast<std::ptrdiff_t>(train_count)),
      std::vector<std::size_t>(order.begin() + static_cast<std::ptrdiff_t>(train_count),
                               order.end())};
}

std::string to_string(const DatasetConfig& config) {
  std::ostringstream os;
  os.precision(17);
  // "gen=4" versions the generation recipe itself (seeding, tie
  // breaking); bumping it invalidates stale disk caches.  Every
  // optimizer option that can change the optima must appear here —
  // this string gates both the benches' corpus cache and the corpus
  // pipeline's shard resume, so an omitted knob would silently resume
  // shards generated under a different recipe.
  os << "gen=4 graphs=" << config.num_graphs << " nodes=" << config.num_nodes
     << ' ' << to_string(config.ensemble)
     << " min_edges=" << config.min_edges << " max_depth=" << config.max_depth
     << " restarts=" << config.restarts
     << " optimizer=" << optim::to_string(config.optimizer)
     << " ftol=" << config.options.ftol << " xtol=" << config.options.xtol
     << " gtol=" << config.options.gtol
     << " fd_step=" << config.options.fd_step
     << " rho_begin=" << config.options.rho_begin
     << " rho_end=" << config.options.rho_end
     << " max_evals=" << config.options.max_evaluations
     << " max_iters=" << config.options.max_iterations
     << " seed=" << config.seed << ' ' << to_string(config.eval);
  return os.str();
}

namespace detail {

void write_record(std::ostream& os, const InstanceRecord& record) {
  os.precision(17);
  os << "graph " << record.id << ' ' << record.problem.num_nodes() << ' '
     << record.problem.num_edges();
  for (const graph::Edge& e : record.problem.edges()) {
    os << ' ' << e.u << ' ' << e.v << ' ' << e.weight;
  }
  os << '\n';
  for (std::size_t d = 0; d < record.optimal_params.size(); ++d) {
    os << "params " << record.id << ' ' << d + 1 << ' '
       << record.generation_fc[d] << ' ' << record.expectation[d] << ' '
       << record.approximation_ratio[d];
    for (const double v : record.optimal_params[d]) os << ' ' << v;
    os << '\n';
  }
}

bool consume_record_line(const std::string& line,
                         std::vector<InstanceRecord>& records,
                         bool compute_max_cut) {
  std::istringstream ls(line);
  std::string tag;
  ls >> tag;
  if (tag == "graph") {
    InstanceRecord record;
    int nodes = 0;
    std::size_t edges = 0;
    ls >> record.id >> nodes >> edges;
    // Bound counts before allocating: a corrupt byte in a cache/shard
    // file must surface as a malformed-line Error (discard and
    // regenerate), not a multi-GB Graph allocation or a confusing
    // failure deep inside max_cut_brute_force.  30 nodes is the exact
    // MaxCut limit generate_instance_record enforces, so no valid file
    // can exceed it.
    require(!ls.fail() && nodes >= 1 && nodes <= 30,
            "ParameterDataset: implausible node count");
    require(edges <= static_cast<std::size_t>(nodes) *
                         static_cast<std::size_t>(nodes - 1) / 2,
            "ParameterDataset: implausible edge count");
    graph::Graph problem(nodes);
    for (std::size_t e = 0; e < edges && !ls.fail(); ++e) {
      int u = 0;
      int v = 0;
      double w = 0.0;
      ls >> u >> v >> w;
      if (ls.fail()) break;  // corrupt edge count: don't spin to `edges`
      problem.add_edge(u, v, w);
    }
    require(!ls.fail(), "ParameterDataset: malformed graph line");
    record.problem = problem;
    if (compute_max_cut) {
      record.max_cut = graph::max_cut_brute_force(problem).value;
    }
    records.push_back(std::move(record));
    return true;
  }
  if (tag == "params") {
    require(!records.empty(), "ParameterDataset: params before graph");
    InstanceRecord& record = records.back();
    int id = 0;
    int p = 0;
    int fc = 0;
    double expectation = 0.0;
    double ar = 0.0;
    ls >> id >> p >> fc >> expectation >> ar;
    require(id == record.id, "ParameterDataset: params id mismatch");
    require(p == static_cast<int>(record.optimal_params.size()) + 1,
            "ParameterDataset: depths out of order");
    std::vector<double> params(num_angles(p));
    for (double& v : params) ls >> v;
    require(!ls.fail(), "ParameterDataset: malformed params line");
    record.optimal_params.push_back(std::move(params));
    record.expectation.push_back(expectation);
    record.approximation_ratio.push_back(ar);
    record.generation_fc.push_back(fc);
    return true;
  }
  return false;
}

}  // namespace detail

void ParameterDataset::save(const std::string& path) const {
  std::ofstream os(path);
  require(os.good(), "ParameterDataset::save: cannot open " + path);
  os << "qaoaml-dataset-v1\n";
  os << "config " << to_string(config_) << '\n';
  for (const InstanceRecord& record : records_) {
    detail::write_record(os, record);
  }
  require(os.good(), "ParameterDataset::save: write failed");
}

ParameterDataset ParameterDataset::load(const std::string& path) {
  std::ifstream is(path);
  require(is.good(), "ParameterDataset::load: cannot open " + path);
  std::string line;
  require(static_cast<bool>(std::getline(is, line)) &&
              line == "qaoaml-dataset-v1",
          "ParameterDataset::load: bad header");
  require(static_cast<bool>(std::getline(is, line)) &&
              line.rfind("config ", 0) == 0,
          "ParameterDataset::load: missing config line");

  DatasetConfig config;  // reconstructed partially; stored string is the key
  std::vector<InstanceRecord> records;
  const std::string config_line = line.substr(7);

  // Parse key=value tokens we understand (enough to recreate the
  // config).  std::sto* throw std::invalid_argument on torn values (a
  // cache killed mid-write); convert to our Error so callers like
  // load_or_generate treat the file as corrupt instead of crashing.
  try {
    std::istringstream cs(config_line);
    std::string token;
    while (cs >> token) {
      const auto eq = token.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "graphs") config.num_graphs = std::stoi(value);
      else if (key == "nodes") config.num_nodes = std::stoi(value);
      else if (key == "family") config.ensemble.family = family_from_string(value);
      else if (key == "edge_prob") config.ensemble.edge_probability = std::stod(value);
      else if (key == "degree") config.ensemble.degree = std::stoi(value);
      else if (key == "weight")
        config.ensemble.weight = value == "gaussian" ? WeightKind::kGaussian
                                                     : WeightKind::kUniform;
      else if (key == "weight_low") config.ensemble.weight_low = std::stod(value);
      else if (key == "weight_high") config.ensemble.weight_high = std::stod(value);
      else if (key == "weight_mean") config.ensemble.weight_mean = std::stod(value);
      else if (key == "weight_sd") config.ensemble.weight_sd = std::stod(value);
      else if (key == "neighbors") config.ensemble.neighbors = std::stoi(value);
      else if (key == "rewire") config.ensemble.rewire_probability = std::stod(value);
      else if (key == "min_edges") config.min_edges = std::stoi(value);
      else if (key == "max_depth") config.max_depth = std::stoi(value);
      else if (key == "restarts") config.restarts = std::stoi(value);
      else if (key == "optimizer") config.optimizer = optim::optimizer_from_string(value);
      else if (key == "ftol") config.options.ftol = std::stod(value);
      else if (key == "xtol") config.options.xtol = std::stod(value);
      else if (key == "gtol") config.options.gtol = std::stod(value);
      else if (key == "fd_step") config.options.fd_step = std::stod(value);
      else if (key == "rho_begin") config.options.rho_begin = std::stod(value);
      else if (key == "rho_end") config.options.rho_end = std::stod(value);
      else if (key == "max_evals") config.options.max_evaluations = std::stoi(value);
      else if (key == "max_iters") config.options.max_iterations = std::stoi(value);
      else if (key == "seed") config.seed = static_cast<std::uint64_t>(std::stoull(value));
      else if (key == "objective") config.eval.mode = objective_mode_from_string(value);
      else if (key == "shots") config.eval.shots = std::stoi(value);
      else if (key == "avg") config.eval.averaging = std::stoi(value);
      else if (key == "seed_policy") config.eval.seed_policy = seed_policy_from_string(value);
      else if (key == "mseed") config.eval.seed = static_cast<std::uint64_t>(std::stoull(value));
    }
  } catch (const std::exception&) {
    throw InvalidArgument("ParameterDataset::load: malformed config line: " +
                          config_line);
  }

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (!detail::consume_record_line(line, records)) {
      throw InvalidArgument("ParameterDataset::load: unknown tag in: " + line);
    }
  }
  ParameterDataset dataset(config, std::move(records));
  dataset.source_key_ = config_line;
  return dataset;
}

ParameterDataset ParameterDataset::load_or_generate(
    const DatasetConfig& config, const std::string& path) {
  {
    std::ifstream probe(path);
    if (probe.good()) {
      try {
        ParameterDataset cached = load(path);
        // Compare the file's literal config line, not a re-derived
        // to_string(cached.config()): the latter would re-emit the
        // current code's "gen=N" token and defeat recipe-version bumps.
        if (cached.source_key() == to_string(config)) return cached;
      } catch (const std::exception&) {
        // Fall through to regeneration on any parse problem — including
        // non-Error exceptions a corrupt file can provoke (bad_alloc,
        // length_error from garbage counts).
      }
    }
  }
  ParameterDataset fresh = generate(config);
  try {
    fresh.save(path);
  } catch (const Error&) {
    // Cache write failure is non-fatal (e.g. read-only directory).
  }
  return fresh;
}

}  // namespace qaoaml::core
