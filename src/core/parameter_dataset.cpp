#include <cmath>
#include "core/parameter_dataset.hpp"

#include <fstream>
#include <numeric>
#include <sstream>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/angles.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"

namespace qaoaml::core {

double InstanceRecord::gamma_opt(int p, int i) const {
  require(p >= 1 && static_cast<std::size_t>(p) <= optimal_params.size(),
          "InstanceRecord::gamma_opt: depth out of range");
  return gamma_of(optimal_params[static_cast<std::size_t>(p - 1)], i);
}

double InstanceRecord::beta_opt(int p, int i) const {
  require(p >= 1 && static_cast<std::size_t>(p) <= optimal_params.size(),
          "InstanceRecord::beta_opt: depth out of range");
  return beta_of(optimal_params[static_cast<std::size_t>(p - 1)], i);
}

ParameterDataset::ParameterDataset(DatasetConfig config,
                                   std::vector<InstanceRecord> records)
    : config_(std::move(config)), records_(std::move(records)) {}

ParameterDataset ParameterDataset::generate(const DatasetConfig& config) {
  require(config.num_graphs >= 1, "ParameterDataset: need >= 1 graph");
  require(config.max_depth >= 1, "ParameterDataset: max_depth must be >= 1");

  std::vector<InstanceRecord> records(
      static_cast<std::size_t>(config.num_graphs));

  parallel_for(static_cast<std::size_t>(config.num_graphs), [&](std::size_t g) {
    // Per-graph deterministic stream: independent of thread scheduling.
    Rng rng(config.seed * 0x9e3779b97f4a7c15ULL + g);
    graph::Graph problem = graph::erdos_renyi_gnp(
        config.num_nodes, config.edge_probability, rng);
    while (static_cast<int>(problem.num_edges()) < config.min_edges) {
      problem = graph::erdos_renyi_gnp(config.num_nodes,
                                       config.edge_probability, rng);
    }

    InstanceRecord record;
    record.id = static_cast<int>(g);
    record.problem = problem;
    record.max_cut = graph::max_cut_brute_force(problem).value;

    for (int p = 1; p <= config.max_depth; ++p) {
      const MaxCutQaoa instance(problem, p);
      MultistartRuns runs = solve_multistart(
          instance, config.optimizer, config.restarts, rng, config.options);
      // Heuristic seeds on top of the random restarts: the linear ramp
      // and the INTERP bootstrap from the depth-(p-1) optimum (Zhou et
      // al., the paper's ref. [5]).  Pure random multistart frequently
      // stalls in shallow local basins at p >= 3, which would corrupt
      // the parameter *trends* the ML model learns from; taking the best
      // of {random..., ramp, interp} keeps the corpus at the true optima
      // without touching the naive Table-I baseline (still pure random).
      std::vector<std::vector<double>> seeds;
      seeds.push_back(linear_ramp_angles(p));
      if (p >= 2) {
        seeds.push_back(
            interp_angles(record.optimal_params[static_cast<std::size_t>(p - 2)]));
      }
      for (const std::vector<double>& seed : seeds) {
        QaoaRun run = solve_from(instance, config.optimizer, seed,
                                 config.options);
        runs.total_function_calls += run.function_calls;
        // ">= - eps": when a random restart found an exact symmetry copy
        // of the seeded optimum (equal energy up to the optimizer's own
        // ftol resolution), prefer the seeded one — it lives in the
        // canonical pattern basin the ML model learns.
        const double tie_eps =
            1e-4 * std::max(1.0, std::abs(runs.best.expectation));
        if (run.expectation >= runs.best.expectation - tie_eps) {
          runs.best = std::move(run);
        }
      }
      record.optimal_params.push_back(runs.best.params);
      record.expectation.push_back(runs.best.expectation);
      record.approximation_ratio.push_back(runs.best.approximation_ratio);
      record.generation_fc.push_back(runs.total_function_calls);
    }
    records[g] = std::move(record);
  });

  return ParameterDataset(config, std::move(records));
}

std::size_t ParameterDataset::total_parameter_count() const {
  std::size_t total = 0;
  for (const InstanceRecord& record : records_) {
    for (const auto& params : record.optimal_params) total += params.size();
  }
  return total;
}

std::pair<std::vector<std::size_t>, std::vector<std::size_t>>
ParameterDataset::split_indices(double train_fraction, Rng& rng) const {
  require(train_fraction > 0.0 && train_fraction < 1.0,
          "split_indices: fraction must lie in (0, 1)");
  require(records_.size() >= 2, "split_indices: need >= 2 records");
  std::vector<std::size_t> order(records_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  std::size_t train_count = static_cast<std::size_t>(
      train_fraction * static_cast<double>(order.size()) + 0.5);
  train_count = std::clamp<std::size_t>(train_count, 1, order.size() - 1);
  return {
      std::vector<std::size_t>(order.begin(),
                               order.begin() + static_cast<std::ptrdiff_t>(train_count)),
      std::vector<std::size_t>(order.begin() + static_cast<std::ptrdiff_t>(train_count),
                               order.end())};
}

std::string to_string(const DatasetConfig& config) {
  std::ostringstream os;
  os.precision(17);
  // "gen=3" versions the generation recipe itself (seeding, tie
  // breaking); bumping it invalidates stale disk caches.
  os << "gen=3 graphs=" << config.num_graphs << " nodes=" << config.num_nodes
     << " edge_prob=" << config.edge_probability
     << " min_edges=" << config.min_edges << " max_depth=" << config.max_depth
     << " restarts=" << config.restarts
     << " optimizer=" << optim::to_string(config.optimizer)
     << " ftol=" << config.options.ftol << " seed=" << config.seed;
  return os.str();
}

void ParameterDataset::save(const std::string& path) const {
  std::ofstream os(path);
  require(os.good(), "ParameterDataset::save: cannot open " + path);
  os.precision(17);
  os << "qaoaml-dataset-v1\n";
  os << "config " << to_string(config_) << '\n';
  for (const InstanceRecord& record : records_) {
    os << "graph " << record.id << ' ' << record.problem.num_nodes() << ' '
       << record.problem.num_edges();
    for (const graph::Edge& e : record.problem.edges()) {
      os << ' ' << e.u << ' ' << e.v << ' ' << e.weight;
    }
    os << '\n';
    for (std::size_t d = 0; d < record.optimal_params.size(); ++d) {
      os << "params " << record.id << ' ' << d + 1 << ' '
         << record.generation_fc[d] << ' ' << record.expectation[d] << ' '
         << record.approximation_ratio[d];
      for (const double v : record.optimal_params[d]) os << ' ' << v;
      os << '\n';
    }
  }
  require(os.good(), "ParameterDataset::save: write failed");
}

ParameterDataset ParameterDataset::load(const std::string& path) {
  std::ifstream is(path);
  require(is.good(), "ParameterDataset::load: cannot open " + path);
  std::string line;
  require(static_cast<bool>(std::getline(is, line)) &&
              line == "qaoaml-dataset-v1",
          "ParameterDataset::load: bad header");
  require(static_cast<bool>(std::getline(is, line)) &&
              line.rfind("config ", 0) == 0,
          "ParameterDataset::load: missing config line");

  DatasetConfig config;  // reconstructed partially; stored string is the key
  std::vector<InstanceRecord> records;
  const std::string config_line = line.substr(7);

  // Parse key=value tokens we understand (enough to recreate the config).
  {
    std::istringstream cs(config_line);
    std::string token;
    while (cs >> token) {
      const auto eq = token.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "graphs") config.num_graphs = std::stoi(value);
      else if (key == "nodes") config.num_nodes = std::stoi(value);
      else if (key == "edge_prob") config.edge_probability = std::stod(value);
      else if (key == "min_edges") config.min_edges = std::stoi(value);
      else if (key == "max_depth") config.max_depth = std::stoi(value);
      else if (key == "restarts") config.restarts = std::stoi(value);
      else if (key == "optimizer") config.optimizer = optim::optimizer_from_string(value);
      else if (key == "ftol") config.options.ftol = std::stod(value);
      else if (key == "seed") config.seed = static_cast<std::uint64_t>(std::stoull(value));
    }
  }

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "graph") {
      InstanceRecord record;
      int nodes = 0;
      std::size_t edges = 0;
      ls >> record.id >> nodes >> edges;
      graph::Graph problem(nodes);
      for (std::size_t e = 0; e < edges; ++e) {
        int u = 0;
        int v = 0;
        double w = 0.0;
        ls >> u >> v >> w;
        problem.add_edge(u, v, w);
      }
      require(!ls.fail(), "ParameterDataset::load: malformed graph line");
      record.problem = problem;
      record.max_cut = graph::max_cut_brute_force(problem).value;
      records.push_back(std::move(record));
    } else if (tag == "params") {
      require(!records.empty(), "ParameterDataset::load: params before graph");
      InstanceRecord& record = records.back();
      int id = 0;
      int p = 0;
      int fc = 0;
      double expectation = 0.0;
      double ar = 0.0;
      ls >> id >> p >> fc >> expectation >> ar;
      require(id == record.id, "ParameterDataset::load: params id mismatch");
      require(p == static_cast<int>(record.optimal_params.size()) + 1,
              "ParameterDataset::load: depths out of order");
      std::vector<double> params(num_angles(p));
      for (double& v : params) ls >> v;
      require(!ls.fail(), "ParameterDataset::load: malformed params line");
      record.optimal_params.push_back(std::move(params));
      record.expectation.push_back(expectation);
      record.approximation_ratio.push_back(ar);
      record.generation_fc.push_back(fc);
    } else {
      throw InvalidArgument("ParameterDataset::load: unknown tag " + tag);
    }
  }
  return ParameterDataset(config, std::move(records));
}

ParameterDataset ParameterDataset::load_or_generate(
    const DatasetConfig& config, const std::string& path) {
  {
    std::ifstream probe(path);
    if (probe.good()) {
      try {
        ParameterDataset cached = load(path);
        if (to_string(cached.config()) == to_string(config)) return cached;
      } catch (const Error&) {
        // fall through to regeneration on any parse problem
      }
    }
  }
  ParameterDataset fresh = generate(config);
  try {
    fresh.save(path);
  } catch (const Error&) {
    // Cache write failure is non-fatal (e.g. read-only directory).
  }
  return fresh;
}

}  // namespace qaoaml::core
