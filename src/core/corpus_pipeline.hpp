// Sharded, asynchronous corpus generation — the offline data-generation
// stage of the paper's pipeline, scaled past one process.
//
// The training corpus (core/parameter_dataset.hpp) is the most
// expensive offline artifact in the system: every unit is a full
// multistart QAOA optimization sweep over depths 1..max_depth.  This
// subsystem turns that generation into restartable, distributable work:
//
//  - **Work units.**  Unit g is the g-th corpus instance; its content is
//    a pure function of (DatasetConfig, g) via generate_instance_record,
//    so units can be computed anywhere, in any order, on any thread
//    count, and always produce the same bits.
//  - **Sharding.**  A ShardSpec assigns units round-robin
//    (g % count == index), so any shard count partitions the same unit
//    space and shards are load-balanced without coordination.  Shards
//    are independent processes/machines; nothing is shared but the
//    config.
//  - **Async dispatch.**  Within a shard, units fan out across the
//    persistent thread pool (run_units_in_order).  Completed units are
//    committed *in ascending unit order* as soon as their prefix is
//    done, on whichever worker finished last — serialization I/O
//    overlaps ongoing optimization compute, and shard file content is
//    deterministic.  (Files are not append-only across invocations: a
//    resume rewrites the file down to its validated prefix before
//    appending, so don't tail or rsync --append a live shard.)
//  - **Checkpoint / resume.**  Each shard streams to a data file and a
//    manifest ledger that records committed units.  A killed run
//    restarts where it left off: on start the shard file is parsed and
//    the longest valid prefix of complete unit blocks confirmed by the
//    ledger is kept (a truncated trailing block, or one the ledger has
//    not recorded, is discarded and regenerated); only missing units
//    run.  Prefix rewrites go through temp-file + rename, so a kill at
//    any point never loses committed units.
//  - **Merge.**  merge_shards stitches complete shard files into one
//    ParameterDataset file.  The merged bytes are identical for every
//    (shard count, thread count) combination, and identical to a
//    direct ParameterDataset::generate(...).save(...) — tested in
//    tests/test_corpus_pipeline.cpp and enforced in CI.
//
// ParameterDataset::generate routes through generate_records (the
// in-memory single-shard path), and core::run_table1 dispatches its
// sweep through run_units_in_order, so every producer shares one
// scheduler.
#ifndef QAOAML_CORE_CORPUS_PIPELINE_HPP
#define QAOAML_CORE_CORPUS_PIPELINE_HPP

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/parameter_dataset.hpp"

namespace qaoaml::core {

/// One slice of a work-unit space split round-robin across `count`
/// shards: shard `index` owns every unit with unit % count == index.
struct ShardSpec {
  int index = 0;
  int count = 1;

  /// True when this shard owns `unit`.  A malformed spec (count < 1 or
  /// index outside [0, count)) owns nothing — no division by zero.
  bool owns(std::size_t unit) const {
    return count >= 1 && index >= 0 && index < count &&
           static_cast<int>(unit % static_cast<std::size_t>(count)) == index;
  }
};

/// Ascending list of the units in [0, total) that `shard` owns.
std::vector<std::size_t> shard_units(std::size_t total, const ShardSpec& shard);

/// Progress hook shared by all three shard pipelines (corpus, Table-I,
/// transfer): invoked with (units committed so far, units owned) —
/// once right after the resume prefix is validated, then after every
/// commit.  Calls are serialized (they ride the in-order commit path)
/// but arrive on worker threads, so the callback must be cheap and
/// must not re-enter the pipeline.  tools wire this to the line-framed
/// stdout protocol (common/shard_protocol.hpp) that tools/launch
/// parses for %-complete / rate / ETA and stall detection.
using ShardProgressFn =
    std::function<void(std::size_t done, std::size_t total)>;

/// Asynchronous in-order unit scheduler, the pipeline's core primitive.
///
/// Runs `run(unit, slot)` for every entry of `units` (slot = position in
/// the list) across the persistent thread pool.  As the completed
/// prefix of the list grows, `commit(unit, slot)` is invoked for each
/// newly covered entry — always in list order, never concurrently, on
/// whichever worker completed the prefix.  Commits therefore overlap
/// the remaining compute, which is what lets a shard stream results to
/// disk while it is still optimizing.
///
/// `units` must be what the commits assume it is: callers pass it
/// sorted.  An exception from `run` or `commit` aborts the dispatch:
/// units not yet started are skipped, the first exception is rethrown
/// once in-flight units finish, and already-issued commits stay
/// issued.  An empty `commit` skips the commit phase entirely.
void run_units_in_order(
    const std::vector<std::size_t>& units,
    const std::function<void(std::size_t unit, std::size_t slot)>& run,
    const std::function<void(std::size_t unit, std::size_t slot)>& commit = {});

/// Settings of one shard run.
struct CorpusShardConfig {
  DatasetConfig dataset;      ///< the full corpus being generated
  ShardSpec shard;            ///< which slice this process owns
  std::string directory = "."; ///< where shard data + manifest files live
  ShardProgressFn progress;   ///< optional per-commit progress hook
};

/// What one run_shard call did.
struct ShardReport {
  std::size_t units_owned = 0;      ///< units this shard is responsible for
  std::size_t units_resumed = 0;    ///< found complete on disk and skipped
  std::size_t units_generated = 0;  ///< computed by this run
  double seconds = 0.0;             ///< wall time of this run
  double instances_per_second = 0.0; ///< units_generated / seconds
  std::string data_path;
  std::string manifest_path;
};

/// The sharded corpus-generation pipeline (all static: the state lives
/// in the shard files, which is what makes runs resumable).
class CorpusPipeline {
 public:
  /// Shard file locations inside `directory`.
  static std::string shard_data_path(const std::string& directory,
                                     const ShardSpec& shard);
  static std::string shard_manifest_path(const std::string& directory,
                                         const ShardSpec& shard);

  /// Generates (or resumes) one shard: computes every owned unit that
  /// is not already complete in the shard data file and streams results
  /// to disk in unit order, updating the manifest after every commit.
  /// Stale files (different config or shard layout) are discarded; a
  /// truncated trailing block is dropped and regenerated.  A flock on a
  /// sidecar .lock file makes a concurrent duplicate invocation of the
  /// same shard fail fast (the lock dies with the process, so a killed
  /// run never blocks its own resume).
  static ShardReport run_shard(const CorpusShardConfig& config);

  /// Merges the complete shard files of a `shard_count`-way run under
  /// `directory` into one dataset, saved to `final_path` (skipped when
  /// empty).  Throws if any shard is missing units.  The output bytes
  /// depend only on `dataset` — not on shard count or thread count.
  /// The returned in-memory records leave max_cut at 0 (it is not part
  /// of the file format); use ParameterDataset::load(final_path) when
  /// the merged corpus is consumed in-process, which recomputes it.
  static ParameterDataset merge_shards(const DatasetConfig& dataset,
                                       int shard_count,
                                       const std::string& directory,
                                       const std::string& final_path);

  /// In-memory generation of the owned records (ascending unit order),
  /// without touching disk.  ShardSpec{} computes the whole corpus —
  /// this is the path ParameterDataset::generate routes through.
  static std::vector<InstanceRecord> generate_records(
      const DatasetConfig& dataset, const ShardSpec& shard = {});
};

}  // namespace qaoaml::core

#endif  // QAOAML_CORE_CORPUS_PIPELINE_HPP
