// Gate-level MaxCut-QAOA ansatz construction (the circuit of Fig. 1(a)).
//
// Layout per stage i (1-based):
//   phase separation: for every edge (u, v) with weight w:
//     CNOT(u, v); RZ(v, -w * gamma_i); CNOT(u, v)
//   (equal to exp(+i gamma_i w Z_u Z_v / 2), i.e. exp(-i gamma_i C) up to
//   a global phase for the MaxCut cost C)
//   mixing: RX(beta_i) = exp(-i beta_i X / 2) on every qubit (the
//   paper's convention; beta in [0, pi] is one mixer period).
// The initial layer is Hadamard on all qubits.
#ifndef QAOAML_CORE_QAOA_CIRCUIT_HPP
#define QAOAML_CORE_QAOA_CIRCUIT_HPP

#include "graph/graph.hpp"
#include "quantum/circuit.hpp"

namespace qaoaml::core {

/// Builds the depth-p MaxCut ansatz over `g`.  The circuit references
/// 2p external parameters in the canonical [gammas, betas] layout.
quantum::Circuit build_maxcut_ansatz(const graph::Graph& g, int p);

/// Gate-count summary of an ansatz, for reporting.
struct AnsatzCost {
  std::size_t cnot_count = 0;
  std::size_t rz_count = 0;
  std::size_t rx_count = 0;
  std::size_t h_count = 0;
  int depth = 0;
};

/// Computes gate counts and schedule depth for the ansatz of (g, p).
AnsatzCost ansatz_cost(const graph::Graph& g, int p);

}  // namespace qaoaml::core

#endif  // QAOAML_CORE_QAOA_CIRCUIT_HPP
