#include "core/transfer_experiment.hpp"

#include <filesystem>
#include <fstream>
#include <memory>
#include <numeric>
#include <sstream>

#include "common/checkpoint.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/two_level_solver.hpp"
#include "stats/descriptive.hpp"

namespace qaoaml::core {
namespace {

// Stream salts: eval-instance sampling, the cold arm and the warm arm
// draw from disjoint seed families, and all of them are disjoint from
// the corpus streams (which use config.seed directly inside
// generate_instance_record).
constexpr std::uint64_t kEvalSalt = 0xE7A1;
constexpr std::uint64_t kColdSalt = 0xC01D;
constexpr std::uint64_t kWarmSalt = 0x3AB3;

/// SplitMix-style mix of (seed, salt, a, b) into one stream seed.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt, std::uint64_t a,
                       std::uint64_t b) {
  std::uint64_t h = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  h ^= (a + 0x9e3779b97f4a7c15ULL) * 0xbf58476d1ce4e5b9ULL;
  h ^= (b + 0x94d049bb133111ebULL) * 0xff51afd7ed558ccdULL;
  return h;
}

/// One (train family, eval family, model) cell; `model` indexes
/// TransferConfig::models.
struct CellKey {
  std::size_t train;
  std::size_t eval;
  std::size_t model;
};

std::vector<CellKey> transfer_cells(const TransferConfig& config) {
  std::vector<CellKey> cells;
  for (std::size_t t = 0; t < config.families.size(); ++t) {
    for (std::size_t e = 0; e < config.families.size(); ++e) {
      for (std::size_t m = 0; m < config.models.size(); ++m) {
        cells.push_back(CellKey{t, e, m});
      }
    }
  }
  return cells;
}

/// Per-(cell, instance) results — the sharded sweep's unit payload.
struct TransferUnitStats {
  double cold_ar = 0.0;
  double cold_fc = 0.0;
  double cold_iters = 0.0;
  double warm_ar = 0.0;
  double warm_fc = 0.0;
  double warm_iters = 0.0;
};

struct ColdStats {
  double ar = 0.0;
  double fc = 0.0;
  double iters = 0.0;
};

/// Cold arm of one (eval family, instance) pair.  Pure function of
/// (config, e, g) — deliberately independent of the cell's train
/// family and model, so every cell of an eval column shares one
/// baseline.
ColdStats compute_cold(const TransferConfig& config, std::size_t e,
                       std::size_t g) {
  const graph::Graph problem = transfer_eval_instance(config, e, g);
  Rng rng(mix_seed(config.seed, kColdSalt, e, g));
  const MaxCutQaoa instance(problem, config.target_depth);
  const MultistartRuns runs =
      solve_multistart(instance, config.optimizer, config.cold_restarts, rng,
                       config.eval, config.options);
  ColdStats out;
  out.ar = runs.best.approximation_ratio;
  out.fc = static_cast<double>(runs.total_function_calls);
  for (const QaoaRun& run : runs.runs) {
    out.iters += static_cast<double>(run.iterations);
  }
  return out;
}

/// Warm arm of one (cell, instance) pair: the two-level flow seeded by
/// the cell's bank, averaged over warm_repeats.  Pure function of
/// (config, bank, cell index, g).
TransferUnitStats compute_warm(const TransferConfig& config,
                               const ParameterPredictor& bank,
                               std::size_t cell_index, std::size_t eval_family,
                               std::size_t g) {
  const graph::Graph problem =
      transfer_eval_instance(config, eval_family, g);
  Rng rng(mix_seed(config.seed, kWarmSalt, cell_index, g));
  TwoLevelConfig two_level;
  two_level.optimizer = config.optimizer;
  two_level.options = config.options;
  two_level.eval = config.eval;

  TransferUnitStats out;
  for (int rep = 0; rep < config.warm_repeats; ++rep) {
    const AcceleratedRun run = solve_two_level(
        problem, config.target_depth, bank, two_level, rng);
    out.warm_ar += run.final.approximation_ratio;
    out.warm_fc += static_cast<double>(run.total_function_calls);
    out.warm_iters += static_cast<double>(run.level1.iterations +
                                          run.intermediate.iterations +
                                          run.final.iterations);
  }
  const double repeats = static_cast<double>(config.warm_repeats);
  out.warm_ar /= repeats;
  out.warm_fc /= repeats;
  out.warm_iters /= repeats;
  return out;
}

/// Banks indexed by train_family * models.size() + model.  Entries are
/// only populated for the cells a run actually computes.
using BankArray = std::vector<std::unique_ptr<ParameterPredictor>>;

/// Trains the banks for every (train family, model) pair flagged in
/// `needed`, generating each family's corpus once.  Sequential at the
/// top level (corpus generation and GPR training parallelize
/// internally); deterministic in the config.
BankArray train_needed_banks(const TransferConfig& config,
                             const std::vector<bool>& needed,
                             std::size_t* banks_trained = nullptr) {
  const std::size_t num_models = config.models.size();
  BankArray banks(config.families.size() * num_models);
  for (std::size_t f = 0; f < config.families.size(); ++f) {
    bool family_needed = false;
    for (std::size_t m = 0; m < num_models; ++m) {
      family_needed = family_needed || needed[f * num_models + m];
    }
    if (!family_needed) continue;
    const ParameterDataset corpus =
        ParameterDataset::generate(transfer_corpus_config(config, f));
    for (std::size_t m = 0; m < num_models; ++m) {
      if (!needed[f * num_models + m]) continue;
      banks[f * num_models + m] = std::make_unique<ParameterPredictor>(
          train_transfer_bank(corpus, config.models[m]));
      if (banks_trained != nullptr) ++*banks_trained;
    }
  }
  return banks;
}

/// Cold baselines indexed by eval_family * eval_graphs + g, computed
/// as one parallel wave over exactly the pairs in `pairs` (ascending).
std::vector<ColdStats> compute_cold_wave(const TransferConfig& config,
                                         const std::vector<std::size_t>& pairs) {
  std::vector<ColdStats> cold(config.families.size() *
                              static_cast<std::size_t>(config.eval_graphs));
  run_units_in_order(pairs, [&](std::size_t pair, std::size_t) {
    const std::size_t g_count = static_cast<std::size_t>(config.eval_graphs);
    cold[pair] = compute_cold(config, pair / g_count, pair % g_count);
  });
  return cold;
}

/// Aggregates the flat per-unit stats into the per-cell matrix rows.
std::vector<TransferCell> aggregate_cells(
    const TransferConfig& config, const std::vector<CellKey>& cells,
    const std::vector<TransferUnitStats>& per_unit) {
  const std::size_t graphs = static_cast<std::size_t>(config.eval_graphs);
  std::vector<TransferCell> rows;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    std::vector<double> cold_ar;
    std::vector<double> cold_fc;
    std::vector<double> warm_ar;
    std::vector<double> warm_fc;
    double cold_iters = 0.0;
    double warm_iters = 0.0;
    for (std::size_t g = 0; g < graphs; ++g) {
      const TransferUnitStats& u = per_unit[c * graphs + g];
      cold_ar.push_back(u.cold_ar);
      cold_fc.push_back(u.cold_fc);
      warm_ar.push_back(u.warm_ar);
      warm_fc.push_back(u.warm_fc);
      cold_iters += u.cold_iters;
      warm_iters += u.warm_iters;
    }

    TransferCell row;
    row.train_family = cells[c].train;
    row.eval_family = cells[c].eval;
    row.model = config.models[cells[c].model];
    row.cold_ar_mean = stats::mean(cold_ar);
    row.cold_ar_sd = stats::stddev(cold_ar);
    row.cold_fc_mean = stats::mean(cold_fc);
    row.cold_fc_sd = stats::stddev(cold_fc);
    row.cold_iter_mean = cold_iters / static_cast<double>(graphs);
    row.warm_ar_mean = stats::mean(warm_ar);
    row.warm_ar_sd = stats::stddev(warm_ar);
    row.warm_fc_mean = stats::mean(warm_fc);
    row.warm_fc_sd = stats::stddev(warm_fc);
    row.warm_iter_mean = warm_iters / static_cast<double>(graphs);
    row.ar_delta = row.warm_ar_mean - row.cold_ar_mean;
    row.fc_reduction_percent =
        100.0 * (row.cold_fc_mean - row.warm_fc_mean) / row.cold_fc_mean;
    row.iter_reduction_percent =
        row.cold_iter_mean > 0.0
            ? 100.0 * (row.cold_iter_mean - row.warm_iter_mean) /
                  row.cold_iter_mean
            : 0.0;
    rows.push_back(row);
  }
  return rows;
}

constexpr const char* kTransferHeader = "qaoaml-transfer-shard-v1";

/// The sweep's config key: every knob that can change a single output
/// bit.  Family entries reuse the ensemble config-key tokens, so any
/// family knob change invalidates stale shards.
std::string transfer_config_key(const TransferConfig& config) {
  std::ostringstream os;
  os.precision(17);
  os << "transfer families={";
  for (std::size_t f = 0; f < config.families.size(); ++f) {
    os << (f ? " | " : "") << to_string(config.families[f]);
  }
  os << "} models=";
  for (std::size_t m = 0; m < config.models.size(); ++m) {
    os << (m ? "," : "") << ml::to_string(config.models[m]);
  }
  os << " nodes=" << config.num_nodes
     << " train_graphs=" << config.train_graphs
     << " max_depth=" << config.max_depth
     << " corpus_restarts=" << config.corpus_restarts
     << " eval_graphs=" << config.eval_graphs
     << " target_depth=" << config.target_depth
     << " cold_restarts=" << config.cold_restarts
     << " warm_repeats=" << config.warm_repeats
     << " optimizer=" << optim::to_string(config.optimizer)
     << " ftol=" << config.options.ftol << " xtol=" << config.options.xtol
     << " gtol=" << config.options.gtol
     << " fd_step=" << config.options.fd_step
     << " rho_begin=" << config.options.rho_begin
     << " rho_end=" << config.options.rho_end
     << " max_evals=" << config.options.max_evaluations
     << " max_iters=" << config.options.max_iterations
     << " seed=" << config.seed << ' ' << to_string(config.eval);
  return os.str();
}

std::string transfer_shard_config_line(const TransferConfig& config,
                                       const ShardSpec& shard) {
  std::ostringstream os;
  os << "config " << transfer_config_key(config) << " shard=" << shard.index
     << '/' << shard.count;
  return os.str();
}

void write_unit_line(std::ostream& os, std::size_t unit,
                     const TransferUnitStats& u) {
  os.precision(17);
  os << "unit " << unit << ' ' << u.cold_ar << ' ' << u.cold_fc << ' '
     << u.cold_iters << ' ' << u.warm_ar << ' ' << u.warm_fc << ' '
     << u.warm_iters << '\n';
}

/// Longest valid prefix of unit lines in a transfer shard file — the
/// same resume contract as the Table-I and corpus shards: one line per
/// unit, so a kill can only tear the trailing line, and anything after
/// the first malformed, unterminated, out-of-order or foreign-unit
/// line is discarded and regenerated.
struct ParsedTransferShard {
  std::vector<std::size_t> units;       ///< ascending, owned
  std::vector<TransferUnitStats> stats; ///< stats[i] is units[i]
};

ParsedTransferShard parse_transfer_shard(const std::string& path,
                                         const std::string& config_line,
                                         std::size_t total_units,
                                         const ShardSpec& shard) {
  ParsedTransferShard out;
  std::ifstream is(path);
  if (!is.good()) return out;
  std::string line;
  if (!getline_complete(is, line) || line != kTransferHeader) return out;
  if (!getline_complete(is, line) || line != config_line) return out;
  while (getline_complete(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    std::size_t unit = 0;
    TransferUnitStats u;
    ls >> tag >> unit >> u.cold_ar >> u.cold_fc >> u.cold_iters >> u.warm_ar >>
        u.warm_fc >> u.warm_iters;
    std::string trailing;
    if (tag != "unit" || ls.fail() || (ls >> trailing, !trailing.empty()) ||
        !shard.owns(unit) || unit >= total_units ||
        (!out.units.empty() && unit <= out.units.back())) {
      break;
    }
    out.units.push_back(unit);
    out.stats.push_back(u);
  }
  return out;
}

}  // namespace

void validate(const TransferConfig& config) {
  require(!config.families.empty(), "TransferConfig: need >= 1 family");
  require(!config.models.empty(), "TransferConfig: need >= 1 model");
  require(config.num_nodes >= 1 && config.num_nodes <= 30,
          "TransferConfig: num_nodes out of range [1, 30]");
  for (const EnsembleConfig& family : config.families) {
    validate(family, config.num_nodes);
  }
  // >= 2 train graphs: the deepest angle's training set has one row per
  // graph, and every model needs at least two samples to fit.
  require(config.train_graphs >= 2, "TransferConfig: need >= 2 train graphs");
  require(config.max_depth >= 2,
          "TransferConfig: max_depth must be >= 2 (depth 1 is the feature "
          "source, not a target)");
  require(config.target_depth >= 2 &&
              config.target_depth <= config.max_depth,
          "TransferConfig: target_depth must lie in [2, max_depth]");
  require(config.corpus_restarts >= 1,
          "TransferConfig: corpus_restarts must be >= 1");
  require(config.eval_graphs >= 1, "TransferConfig: need >= 1 eval graph");
  require(config.cold_restarts >= 1,
          "TransferConfig: cold_restarts must be >= 1");
  require(config.warm_repeats >= 1,
          "TransferConfig: warm_repeats must be >= 1");
}

DatasetConfig transfer_corpus_config(const TransferConfig& config,
                                     std::size_t family) {
  require(family < config.families.size(),
          "transfer_corpus_config: family index out of range");
  DatasetConfig dataset;
  dataset.num_graphs = config.train_graphs;
  dataset.num_nodes = config.num_nodes;
  dataset.ensemble = config.families[family];
  dataset.max_depth = config.max_depth;
  dataset.restarts = config.corpus_restarts;
  dataset.optimizer = config.optimizer;
  dataset.options = config.options;
  dataset.seed = config.seed;
  return dataset;
}

graph::Graph transfer_eval_instance(const TransferConfig& config,
                                    std::size_t family, std::size_t index) {
  require(family < config.families.size(),
          "transfer_eval_instance: family index out of range");
  Rng rng(mix_seed(config.seed, kEvalSalt, family, index));
  graph::Graph problem =
      sample_graph(config.families[family], config.num_nodes, rng);
  int attempts = 0;
  while (problem.num_edges() == 0) {
    // An edgeless instance has MaxCut 0 and no defined approximation
    // ratio; resample (terminates for every family validate() accepts,
    // the cap mirrors generate_instance_record's hang guard).
    require(++attempts < 10'000'000,
            "transfer_eval_instance: cannot sample an instance with edges");
    problem = sample_graph(config.families[family], config.num_nodes, rng);
  }
  return problem;
}

ParameterPredictor train_transfer_bank(const ParameterDataset& corpus,
                                       ml::RegressorKind model) {
  PredictorConfig predictor_config;
  predictor_config.model = model;
  ParameterPredictor bank(predictor_config);
  std::vector<std::size_t> all(corpus.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  bank.train(corpus, all);
  return bank;
}

std::vector<TransferCell> run_transfer(const TransferConfig& config) {
  validate(config);
  const std::vector<CellKey> cells = transfer_cells(config);
  const std::size_t graphs = static_cast<std::size_t>(config.eval_graphs);
  const std::size_t num_models = config.models.size();

  // Train every bank (all cells run), then compute every cold baseline
  // as one wave, then fan the warm arms out as one wave.
  const std::vector<bool> all_needed(config.families.size() * num_models,
                                     true);
  const BankArray banks = train_needed_banks(config, all_needed);

  std::vector<std::size_t> cold_pairs(config.families.size() * graphs);
  std::iota(cold_pairs.begin(), cold_pairs.end(), std::size_t{0});
  const std::vector<ColdStats> cold = compute_cold_wave(config, cold_pairs);

  std::vector<TransferUnitStats> per_unit(cells.size() * graphs);
  std::vector<std::size_t> units(per_unit.size());
  std::iota(units.begin(), units.end(), std::size_t{0});
  run_units_in_order(units, [&](std::size_t unit, std::size_t) {
    const CellKey& cell = cells[unit / graphs];
    const std::size_t g = unit % graphs;
    TransferUnitStats u = compute_warm(
        config, *banks[cell.train * num_models + cell.model], unit / graphs,
        cell.eval, g);
    const ColdStats& base = cold[cell.eval * graphs + g];
    u.cold_ar = base.ar;
    u.cold_fc = base.fc;
    u.cold_iters = base.iters;
    per_unit[unit] = u;
  });

  return aggregate_cells(config, cells, per_unit);
}

void write_transfer_report(std::ostream& os, const TransferConfig& config,
                           const std::vector<TransferCell>& cells) {
  os << "qaoaml-transfer-report-v1\n";
  os << "config " << transfer_config_key(config) << '\n';
  os.precision(17);
  for (const TransferCell& c : cells) {
    os << "cell " << c.train_family << ' ' << c.eval_family << ' '
       << ml::to_string(c.model) << ' ' << c.cold_ar_mean << ' '
       << c.cold_ar_sd << ' ' << c.cold_fc_mean << ' ' << c.cold_fc_sd << ' '
       << c.cold_iter_mean << ' ' << c.warm_ar_mean << ' ' << c.warm_ar_sd
       << ' ' << c.warm_fc_mean << ' ' << c.warm_fc_sd << ' '
       << c.warm_iter_mean << ' ' << c.ar_delta << ' '
       << c.fc_reduction_percent << ' ' << c.iter_reduction_percent << '\n';
  }
}

std::string transfer_shard_path(const std::string& directory,
                                const ShardSpec& shard) {
  require(shard.count >= 1 && shard.index >= 0 && shard.index < shard.count,
          "transfer_shard_path: invalid shard spec");
  return (std::filesystem::path(directory) /
          ("transfer.shard" + std::to_string(shard.index) + "of" +
           std::to_string(shard.count) + ".txt"))
      .string();
}

TransferShardReport run_transfer_shard(const TransferConfig& config,
                                       const ShardSpec& shard,
                                       const std::string& directory,
                                       const ShardProgressFn& progress) {
  validate(config);

  Timer timer;
  std::filesystem::create_directories(directory);

  TransferShardReport report;
  report.data_path = transfer_shard_path(directory, shard);

  // Exclusive for the whole run, exactly like a corpus/Table-I shard.
  const FileLock lock(report.data_path + ".lock");

  const std::vector<CellKey> cells = transfer_cells(config);
  const std::size_t graphs = static_cast<std::size_t>(config.eval_graphs);
  const std::size_t num_models = config.models.size();
  const std::size_t total = cells.size() * graphs;
  const std::string config_line = transfer_shard_config_line(config, shard);
  const std::vector<std::size_t> owned = shard_units(total, shard);
  report.units_owned = owned.size();

  // Resume: keep the prefix of owned units already on disk under this
  // exact config, rewrite the file down to it atomically, then stream
  // the remaining units in order.
  ParsedTransferShard resumed =
      parse_transfer_shard(report.data_path, config_line, total, shard);
  std::size_t resume_count = 0;
  while (resume_count < resumed.units.size() &&
         resumed.units[resume_count] == owned[resume_count]) {
    ++resume_count;
  }
  report.units_resumed = resume_count;
  if (progress) progress(resume_count, owned.size());

  {
    std::ostringstream prefix;
    prefix << kTransferHeader << '\n' << config_line << '\n';
    for (std::size_t i = 0; i < resume_count; ++i) {
      write_unit_line(prefix, resumed.units[i], resumed.stats[i]);
    }
    replace_file_atomic(report.data_path, prefix.str());
  }
  resumed = ParsedTransferShard{};

  const std::vector<std::size_t> pending(owned.begin() + resume_count,
                                         owned.end());
  report.units_generated = pending.size();
  if (pending.empty()) {
    report.seconds = timer.seconds();
    return report;
  }

  // Train only the banks the pending units still need, and compute
  // only the cold baselines they touch.
  std::vector<bool> bank_needed(config.families.size() * num_models, false);
  std::vector<bool> cold_needed(config.families.size() * graphs, false);
  for (const std::size_t unit : pending) {
    const CellKey& cell = cells[unit / graphs];
    bank_needed[cell.train * num_models + cell.model] = true;
    cold_needed[cell.eval * graphs + unit % graphs] = true;
  }
  const BankArray banks =
      train_needed_banks(config, bank_needed, &report.banks_trained);
  std::vector<std::size_t> cold_pairs;
  for (std::size_t pair = 0; pair < cold_needed.size(); ++pair) {
    if (cold_needed[pair]) cold_pairs.push_back(pair);
  }
  const std::vector<ColdStats> cold = compute_cold_wave(config, cold_pairs);

  std::ofstream data(report.data_path, std::ios::app);
  require(data.good(),
          "run_transfer_shard: cannot open " + report.data_path);

  std::vector<TransferUnitStats> slots(pending.size());
  // Commits are serialized, so the progress counter needs no lock.
  std::size_t committed = resume_count;
  run_units_in_order(
      pending,
      [&](std::size_t unit, std::size_t slot) {
        const CellKey& cell = cells[unit / graphs];
        const std::size_t g = unit % graphs;
        TransferUnitStats u = compute_warm(
            config, *banks[cell.train * num_models + cell.model],
            unit / graphs, cell.eval, g);
        const ColdStats& base = cold[cell.eval * graphs + g];
        u.cold_ar = base.ar;
        u.cold_fc = base.fc;
        u.cold_iters = base.iters;
        slots[slot] = u;
      },
      [&](std::size_t unit, std::size_t slot) {
        write_unit_line(data, unit, slots[slot]);
        data.flush();
        // Fail fast on I/O errors: every remaining unit would otherwise
        // keep burning CPU while its commits silently no-op.
        require(data.good(), "run_transfer_shard: write failed at unit " +
                                 std::to_string(unit));
        if (progress) progress(++committed, owned.size());
      });
  require(data.good(), "run_transfer_shard: write failed");

  report.seconds = timer.seconds();
  return report;
}

std::vector<TransferCell> merge_transfer_shards(const TransferConfig& config,
                                                int shard_count,
                                                const std::string& directory) {
  require(shard_count >= 1, "merge_transfer_shards: need >= 1 shard");
  validate(config);

  const std::vector<CellKey> cells = transfer_cells(config);
  const std::size_t graphs = static_cast<std::size_t>(config.eval_graphs);
  const std::size_t total = cells.size() * graphs;
  std::vector<TransferUnitStats> per_unit(total);

  for (int s = 0; s < shard_count; ++s) {
    const ShardSpec shard{s, shard_count};
    const std::string path = transfer_shard_path(directory, shard);
    const std::string config_line =
        transfer_shard_config_line(config, shard);
    const ParsedTransferShard parsed =
        parse_transfer_shard(path, config_line, total, shard);
    const std::vector<std::size_t> owned = shard_units(total, shard);
    if (parsed.units.size() != owned.size()) {
      // Distinguish "not done yet" from "done, but for a different
      // sweep" — an operator who changed a flag between generation and
      // merge should be told to fix the flag, not re-run the sweep.
      std::ifstream probe(path);
      std::string header;
      std::string file_config;
      if (probe.good() && std::getline(probe, header) &&
          std::getline(probe, file_config) && file_config != config_line) {
        throw InvalidArgument(
            "merge_transfer_shards: shard " + std::to_string(s) + "/" +
            std::to_string(shard_count) +
            " was generated with a different config (" + path + ")");
      }
      throw InvalidArgument(
          "merge_transfer_shards: shard " + std::to_string(s) + "/" +
          std::to_string(shard_count) + " incomplete (" +
          std::to_string(parsed.units.size()) + " of " +
          std::to_string(owned.size()) + " units in " + path + ")");
    }
    for (std::size_t i = 0; i < parsed.units.size(); ++i) {
      per_unit[parsed.units[i]] = parsed.stats[i];
    }
  }

  return aggregate_cells(config, cells, per_unit);
}

}  // namespace qaoaml::core
