#include "core/shard_orchestrator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "common/checkpoint.hpp"
#include "common/error.hpp"
#include "common/subprocess.hpp"
#include "common/timer.hpp"
#include "common/work_queue.hpp"

namespace qaoaml::core {
namespace {

using Clock = std::chrono::steady_clock;

/// One unit of monitor work: run shard `shard` for the `attempt`-th
/// time (0-based).
struct Attempt {
  int shard = 0;
  int attempt = 0;
};

/// A failed attempt parked until its backoff expires.
struct DelayedRetry {
  Clock::time_point ready;
  Attempt item;
};

/// Everything the scheduler and the monitors share.  One mutex guards
/// it all — every touch is bookkeeping, never a blocking operation.
struct Shared {
  explicit Shared(int shard_count)
      : outcomes(static_cast<std::size_t>(shard_count)),
        outstanding(static_cast<std::size_t>(shard_count)) {}

  std::mutex mutex;
  std::condition_variable scheduler_cv;  ///< wakes the scheduler

  std::vector<ShardOutcome> outcomes;
  std::size_t outstanding;  ///< shards not yet terminal
  std::vector<DelayedRetry> delayed;  ///< failed shards waiting out backoff

  Timer timer;
  double last_progress_print_s = -1.0;
};

double backoff_seconds(const OrchestratorConfig& config, int failures) {
  double delay = config.backoff_initial_s;
  for (int i = 1; i < failures; ++i) delay *= config.backoff_factor;
  return std::min(delay, config.backoff_max_s);
}

/// Aggregated one-line progress, rate-limited to one print per second.
/// Caller holds the shared mutex.
void print_progress(const OrchestratorConfig& config, Shared& shared,
                    bool force) {
  if (config.progress_out == nullptr) return;
  const double now = shared.timer.seconds();
  if (!force && shared.last_progress_print_s >= 0.0 &&
      now - shared.last_progress_print_s < 1.0) {
    return;
  }
  shared.last_progress_print_s = now;

  ProgressSnapshot snapshot;
  snapshot.seconds = now;
  for (const ShardOutcome& s : shared.outcomes) {
    snapshot.done += s.units_done;
    snapshot.total += s.units_total;
    if (s.succeeded) ++snapshot.finished;
    if (s.attempts > 0 && !s.succeeded) ++snapshot.active;  // or retrying
  }
  std::fprintf(config.progress_out, "[launch] %s\n",
               format_progress_line(snapshot).c_str());
  std::fflush(config.progress_out);
}

/// Runs one worker attempt to completion and returns success.  Fills
/// `error` on failure.  Updates shared progress as frames arrive.
bool run_attempt(const OrchestratorConfig& config, Shared& shared,
                 const Attempt& item, std::string& error) {
  Subprocess child;
  try {
    child = Subprocess::spawn(config.worker_argv(item.shard));
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }

  // Slice the blocking read so stall checks run a few times per second
  // even when the worker is silent.
  constexpr int kPollMs = 200;
  // After a kill, drain the pipe briefly so the child's buffered last
  // words land in the log — but bounded: a worker that forked helpers
  // leaves the pipe's write end open in processes the kill never
  // touched, and waiting for EOF then waits forever.
  constexpr double kPostKillDrainS = 1.0;
  Clock::time_point last_activity = Clock::now();
  Clock::time_point kill_time;
  bool killed_for_stall = false;
  bool killed_by_injector = false;

  for (;;) {
    if ((killed_for_stall || killed_by_injector) &&
        std::chrono::duration<double>(Clock::now() - kill_time).count() >
            kPostKillDrainS) {
      break;
    }
    std::string line;
    const Subprocess::ReadResult result = child.read_line(line, kPollMs);
    if (result == Subprocess::ReadResult::kEof) break;

    if (result == Subprocess::ReadResult::kTimeout) {
      if (killed_for_stall || killed_by_injector) continue;
      // An exited child with an idle pipe is done even if EOF never
      // arrives (a forked helper may still hold the write end open).
      Subprocess::ExitStatus probe;
      if (child.try_wait(probe)) break;
      if (config.stall_timeout_s <= 0.0) continue;
      const double silent =
          std::chrono::duration<double>(Clock::now() - last_activity).count();
      if (silent < config.stall_timeout_s) continue;
      // Silent too long.  Probe the flock sidecar to say WHY in the
      // error: the kernel drops flock when the holder dies, so a free
      // lock means the worker is gone, a held one means it is wedged.
      std::string diagnosis = "no lock sidecar to probe";
      if (config.lock_path) {
        diagnosis = is_locked(config.lock_path(item.shard))
                        ? "lock still held: worker alive but wedged"
                        : "lock free: worker process is dead";
      }
      error = "stalled: no output for " + std::to_string(silent) + " s (" +
              diagnosis + ")";
      killed_for_stall = true;
      kill_time = Clock::now();
      child.kill();
      continue;  // bounded drain above, then reap below
    }

    last_activity = Clock::now();
    const proto::Event event = proto::parse_line(line);
    switch (event.kind) {
      case proto::Event::Kind::kNone:
        // Ordinary worker chatter (reports, error text): pass it
        // through, attributed, so a failing shard explains itself in
        // the orchestrator's own log.
        if (config.progress_out != nullptr && !line.empty()) {
          std::fprintf(config.progress_out, "[shard %d] %s\n", item.shard,
                       line.c_str());
          std::fflush(config.progress_out);
        }
        break;
      case proto::Event::Kind::kMalformed:
        if (config.progress_out != nullptr) {
          std::fprintf(config.progress_out,
                       "[shard %d] malformed protocol line: %s\n", item.shard,
                       line.c_str());
          std::fflush(config.progress_out);
        }
        break;
      case proto::Event::Kind::kStart:
      case proto::Event::Kind::kHeartbeat:
        break;  // pure liveness; last_activity already updated
      case proto::Event::Kind::kProgress: {
        std::lock_guard<std::mutex> lock(shared.mutex);
        ShardOutcome& outcome =
            shared.outcomes[static_cast<std::size_t>(item.shard)];
        outcome.units_done = event.done;
        outcome.units_total = event.total;
        print_progress(config, shared, /*force=*/false);
        break;
      }
      case proto::Event::Kind::kDone: {
        std::lock_guard<std::mutex> lock(shared.mutex);
        ShardOutcome& outcome =
            shared.outcomes[static_cast<std::size_t>(item.shard)];
        outcome.units_generated = event.generated;
        outcome.units_resumed = event.resumed;
        break;
      }
    }

    if (!killed_by_injector && !killed_for_stall && config.kill_injector &&
        event.kind != proto::Event::Kind::kNone &&
        config.kill_injector(item.shard, item.attempt, event)) {
      killed_by_injector = true;
      error = "killed by injected fault";
      kill_time = Clock::now();
      child.kill();
    }
  }

  const Subprocess::ExitStatus status = child.wait();
  if (killed_for_stall || killed_by_injector) return false;
  if (!status.success()) {
    error = "worker failed (" + status.describe() + ")";
    return false;
  }
  return true;
}

}  // namespace

std::string format_progress_line(const ProgressSnapshot& snapshot) {
  // Guard every division: before the first start frame total is 0, at
  // t=0 the elapsed time is 0, and a worker re-basing its counters on
  // resume can transiently report done > total.  None of those may
  // print as inf, NaN, or a wrapped unsigned difference.
  const std::size_t total = snapshot.total;
  const std::size_t done = total > 0 ? std::min(snapshot.done, total)
                                     : snapshot.done;
  const double pct =
      total > 0 ? 100.0 * static_cast<double>(done) / static_cast<double>(total)
                : 0.0;
  double rate = snapshot.seconds > 0.0
                    ? static_cast<double>(done) / snapshot.seconds
                    : 0.0;
  if (!std::isfinite(rate) || rate < 0.0) rate = 0.0;

  char eta[32] = "--";
  if (total > 0 && rate > 0.0) {
    const double eta_s = static_cast<double>(total - done) / rate;
    if (std::isfinite(eta_s)) std::snprintf(eta, sizeof(eta), "%.0f", eta_s);
  }

  char line[160];
  std::snprintf(line, sizeof(line),
                "%zu/%zu units %.1f%% | %.2f units/s | ETA %s s | "
                "shards %d done, %d active",
                done, total, pct, rate, eta, snapshot.finished,
                snapshot.active);
  return line;
}

OrchestratorReport run_shards(const OrchestratorConfig& config) {
  require(config.shard_count >= 1, "run_shards: shard_count must be >= 1");
  require(config.workers >= 1, "run_shards: workers must be >= 1");
  require(config.retry_budget >= 0, "run_shards: retry_budget must be >= 0");
  require(static_cast<bool>(config.worker_argv),
          "run_shards: worker_argv is required");

  Shared shared(config.shard_count);
  for (int s = 0; s < config.shard_count; ++s) {
    shared.outcomes[static_cast<std::size_t>(s)].shard = s;
  }

  const std::size_t capacity =
      config.queue_capacity > 0
          ? config.queue_capacity
          : std::max<std::size_t>(2 * static_cast<std::size_t>(config.workers),
                                  2);
  BoundedWorkQueue<Attempt> queue(capacity);

  // Scheduler: sole producer.  Feeds the first round, then releases
  // retries as their backoff expires; closes the queue when every
  // shard is terminal.  Its pushes may block on a full queue — that is
  // the intended backpressure, and safe here because only monitors pop
  // and they never push.
  std::jthread scheduler([&] {
    for (int s = 0; s < config.shard_count; ++s) {
      queue.push(Attempt{s, 0});
    }
    std::unique_lock<std::mutex> lock(shared.mutex);
    for (;;) {
      if (shared.outstanding == 0) break;
      if (shared.delayed.empty()) {
        shared.scheduler_cv.wait(lock);
        continue;
      }
      const auto next =
          std::min_element(shared.delayed.begin(), shared.delayed.end(),
                           [](const DelayedRetry& a, const DelayedRetry& b) {
                             return a.ready < b.ready;
                           });
      if (Clock::now() < next->ready) {
        shared.scheduler_cv.wait_until(lock, next->ready);
        continue;
      }
      const Attempt item = next->item;
      shared.delayed.erase(next);
      lock.unlock();
      queue.push(item);
      lock.lock();
    }
    queue.close();
  });

  // Monitors: pop a shard, babysit its worker, report the result.
  std::vector<std::jthread> monitors;
  const int monitor_count = std::min(config.workers, config.shard_count);
  monitors.reserve(static_cast<std::size_t>(monitor_count));
  for (int m = 0; m < monitor_count; ++m) {
    monitors.emplace_back([&] {
      Attempt item;
      while (queue.pop(item)) {
        {
          std::lock_guard<std::mutex> lock(shared.mutex);
          shared.outcomes[static_cast<std::size_t>(item.shard)].attempts =
              item.attempt + 1;
        }
        std::string error;
        const bool ok = run_attempt(config, shared, item, error);

        std::lock_guard<std::mutex> lock(shared.mutex);
        ShardOutcome& outcome =
            shared.outcomes[static_cast<std::size_t>(item.shard)];
        if (ok) {
          outcome.succeeded = true;
          --shared.outstanding;
          print_progress(config, shared, /*force=*/true);
        } else {
          outcome.error = error;
          if (config.progress_out != nullptr) {
            std::fprintf(config.progress_out,
                         "[launch] shard %d attempt %d failed: %s\n",
                         item.shard, item.attempt + 1, error.c_str());
          }
          if (item.attempt < config.retry_budget) {
            const double delay = backoff_seconds(config, item.attempt + 1);
            if (config.progress_out != nullptr) {
              std::fprintf(config.progress_out,
                           "[launch] shard %d retry in %.2f s (attempt %d of "
                           "%d)\n",
                           item.shard, delay, item.attempt + 2,
                           config.retry_budget + 1);
            }
            shared.delayed.push_back(DelayedRetry{
                Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(delay)),
                Attempt{item.shard, item.attempt + 1}});
          } else {
            if (config.progress_out != nullptr) {
              std::fprintf(config.progress_out,
                           "[launch] shard %d failed permanently (retry "
                           "budget %d exhausted)\n",
                           item.shard, config.retry_budget);
            }
            --shared.outstanding;
          }
          if (config.progress_out != nullptr) {
            std::fflush(config.progress_out);
          }
        }
        shared.scheduler_cv.notify_all();
      }
    });
  }

  monitors.clear();   // join monitors (queue close ends their loops)
  scheduler.join();

  OrchestratorReport report;
  report.seconds = shared.timer.seconds();
  report.shards = std::move(shared.outcomes);
  report.succeeded =
      std::all_of(report.shards.begin(), report.shards.end(),
                  [](const ShardOutcome& s) { return s.succeeded; });
  return report;
}

}  // namespace qaoaml::core
