#include "core/parameter_predictor.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/angles.hpp"

namespace qaoaml::core {

ParameterPredictor::ParameterPredictor(PredictorConfig config)
    : config_(config) {
  require(config.intermediate_depth >= 0,
          "ParameterPredictor: intermediate depth must be >= 0");
}

void ParameterPredictor::train(const ParameterDataset& dataset,
                               const std::vector<std::size_t>& train_records) {
  require(!train_records.empty(), "ParameterPredictor: empty training set");
  max_depth_ = dataset.max_depth();
  gamma_models_.clear();
  beta_models_.clear();

  for (int stage = 1; stage <= max_depth_; ++stage) {
    for (const AngleId::Kind kind :
         {AngleId::Kind::kGamma, AngleId::Kind::kBeta}) {
      const AngleId angle{kind, stage};
      const ml::Dataset train = build_angle_training_set(
          dataset, train_records, angle, config_.intermediate_depth);
      auto model = ml::make_regressor(config_.model);
      model->fit(train);
      (kind == AngleId::Kind::kGamma ? gamma_models_ : beta_models_)
          .push_back(std::move(model));
    }
  }
  trained_ = true;
}

std::vector<double> ParameterPredictor::predict_from_features(
    std::vector<double> features, int target_depth) const {
  require(trained_, "ParameterPredictor: predict before train");
  require(target_depth >= 2 && target_depth <= max_depth_,
          "ParameterPredictor: target depth out of range");

  std::vector<double> gammas(static_cast<std::size_t>(target_depth));
  std::vector<double> betas(static_cast<std::size_t>(target_depth));
  for (int stage = 1; stage <= target_depth; ++stage) {
    const double g =
        gamma_models_[static_cast<std::size_t>(stage - 1)]->predict(features);
    const double b =
        beta_models_[static_cast<std::size_t>(stage - 1)]->predict(features);
    gammas[static_cast<std::size_t>(stage - 1)] =
        std::clamp(g, 0.0, 2.0 * M_PI);
    betas[static_cast<std::size_t>(stage - 1)] = std::clamp(b, 0.0, M_PI);
  }
  return pack_angles(gammas, betas);
}

std::vector<double> ParameterPredictor::predict(double gamma1_opt,
                                                double beta1_opt,
                                                int target_depth) const {
  require(config_.intermediate_depth == 0,
          "ParameterPredictor: two-level predict on a hierarchical bank");
  return predict_from_features(
      {gamma1_opt, beta1_opt, static_cast<double>(target_depth)},
      target_depth);
}

std::vector<double> ParameterPredictor::predict_hierarchical(
    double gamma1_opt, double beta1_opt,
    const std::vector<double>& intermediate_params, int target_depth) const {
  require(config_.intermediate_depth >= 1,
          "ParameterPredictor: hierarchical predict on a two-level bank");
  require(intermediate_params.size() ==
              num_angles(config_.intermediate_depth),
          "ParameterPredictor: wrong intermediate parameter count");
  require(target_depth > config_.intermediate_depth,
          "ParameterPredictor: target must exceed the intermediate depth");
  std::vector<double> features{gamma1_opt, beta1_opt};
  features.insert(features.end(), intermediate_params.begin(),
                  intermediate_params.end());
  features.push_back(static_cast<double>(target_depth));
  return predict_from_features(std::move(features), target_depth);
}

double ParameterPredictor::predict_angle(
    AngleId angle, const std::vector<double>& features) const {
  require(trained_, "ParameterPredictor: predict before train");
  require(angle.stage >= 1 && angle.stage <= max_depth_,
          "ParameterPredictor: stage out of range");
  const auto& bank =
      angle.kind == AngleId::Kind::kGamma ? gamma_models_ : beta_models_;
  return bank[static_cast<std::size_t>(angle.stage - 1)]->predict(features);
}

}  // namespace qaoaml::core
