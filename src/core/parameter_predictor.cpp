#include "core/parameter_predictor.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/error.hpp"
#include "core/angles.hpp"
#include "ml/serialize.hpp"

namespace qaoaml::core {
namespace {

// Bank-file framing: a small versioned header in front of the
// ml/serialize.hpp regressor blocks (which carry their own per-model
// checksums).  Bump kBankVersion on any layout change so old readers
// reject new files loudly.
constexpr char kBankMagic[4] = {'Q', 'P', 'B', 'K'};
constexpr std::uint32_t kBankVersion = 1;

}  // namespace

ParameterPredictor::ParameterPredictor(PredictorConfig config)
    : config_(config) {
  require(config.intermediate_depth >= 0,
          "ParameterPredictor: intermediate depth must be >= 0");
}

void ParameterPredictor::train(const ParameterDataset& dataset,
                               const std::vector<std::size_t>& train_records) {
  require(!train_records.empty(), "ParameterPredictor: empty training set");
  max_depth_ = dataset.max_depth();
  gamma_models_.clear();
  beta_models_.clear();

  for (int stage = 1; stage <= max_depth_; ++stage) {
    for (const AngleId::Kind kind :
         {AngleId::Kind::kGamma, AngleId::Kind::kBeta}) {
      const AngleId angle{kind, stage};
      const ml::Dataset train = build_angle_training_set(
          dataset, train_records, angle, config_.intermediate_depth);
      auto model = ml::make_regressor(config_.model);
      model->fit(train);
      (kind == AngleId::Kind::kGamma ? gamma_models_ : beta_models_)
          .push_back(std::move(model));
    }
  }
  trained_ = true;
}

std::vector<double> ParameterPredictor::predict_from_features(
    std::vector<double> features, int target_depth) const {
  require(trained_, "ParameterPredictor: predict before train");
  require(target_depth >= 2 && target_depth <= max_depth_,
          "ParameterPredictor: target depth out of range");

  std::vector<double> gammas(static_cast<std::size_t>(target_depth));
  std::vector<double> betas(static_cast<std::size_t>(target_depth));
  for (int stage = 1; stage <= target_depth; ++stage) {
    const double g =
        gamma_models_[static_cast<std::size_t>(stage - 1)]->predict(features);
    const double b =
        beta_models_[static_cast<std::size_t>(stage - 1)]->predict(features);
    gammas[static_cast<std::size_t>(stage - 1)] =
        std::clamp(g, 0.0, 2.0 * M_PI);
    betas[static_cast<std::size_t>(stage - 1)] = std::clamp(b, 0.0, M_PI);
  }
  return pack_angles(gammas, betas);
}

std::vector<double> ParameterPredictor::predict(double gamma1_opt,
                                                double beta1_opt,
                                                int target_depth) const {
  require(config_.intermediate_depth == 0,
          "ParameterPredictor: two-level predict on a hierarchical bank");
  return predict_from_features(
      {gamma1_opt, beta1_opt, static_cast<double>(target_depth)},
      target_depth);
}

std::vector<double> ParameterPredictor::predict_hierarchical(
    double gamma1_opt, double beta1_opt,
    const std::vector<double>& intermediate_params, int target_depth) const {
  require(config_.intermediate_depth >= 1,
          "ParameterPredictor: hierarchical predict on a two-level bank");
  require(intermediate_params.size() ==
              num_angles(config_.intermediate_depth),
          "ParameterPredictor: wrong intermediate parameter count");
  require(target_depth > config_.intermediate_depth,
          "ParameterPredictor: target must exceed the intermediate depth");
  std::vector<double> features{gamma1_opt, beta1_opt};
  features.insert(features.end(), intermediate_params.begin(),
                  intermediate_params.end());
  features.push_back(static_cast<double>(target_depth));
  return predict_from_features(std::move(features), target_depth);
}

void ParameterPredictor::save(const std::string& path) const {
  require(trained_, "ParameterPredictor::save: bank not trained");
  std::ofstream os(path, std::ios::binary);
  require(os.good(), "ParameterPredictor::save: cannot open " + path);

  os.write(kBankMagic, 4);
  ml::io::write_u32(os, kBankVersion);
  ml::io::write_u32(os, static_cast<std::uint32_t>(config_.model));
  ml::io::write_i32(os, config_.intermediate_depth);
  ml::io::write_i32(os, max_depth_);
  for (const auto& model : gamma_models_) ml::save_regressor(os, *model);
  for (const auto& model : beta_models_) ml::save_regressor(os, *model);
  // Flush before the final check: a buffered tail-write failure (disk
  // full, quota) must fail THIS call, not vanish in the destructor.
  os.flush();
  require(os.good(), "ParameterPredictor::save: write failed");
}

ParameterPredictor ParameterPredictor::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  require(is.good(), "ParameterPredictor::load: cannot open " + path);

  char magic[4];
  is.read(magic, 4);
  require(is.gcount() == 4 && std::equal(magic, magic + 4, kBankMagic),
          "ParameterPredictor::load: not a predictor bank file (bad magic)");
  const std::uint32_t version = ml::io::read_u32(is);
  require(version == kBankVersion,
          "ParameterPredictor::load: unsupported bank version " +
              std::to_string(version));

  PredictorConfig config;
  const std::uint32_t model_tag = ml::io::read_u32(is);
  require(model_tag <= static_cast<std::uint32_t>(ml::RegressorKind::kSvr),
          "ParameterPredictor::load: unknown model kind tag");
  config.model = static_cast<ml::RegressorKind>(model_tag);
  config.intermediate_depth = ml::io::read_i32(is);
  const std::int32_t max_depth = ml::io::read_i32(is);
  require(config.intermediate_depth >= 0 && max_depth >= 1 && max_depth <= 64,
          "ParameterPredictor::load: implausible bank shape");

  ParameterPredictor bank(config);
  bank.max_depth_ = max_depth;
  for (auto* models : {&bank.gamma_models_, &bank.beta_models_}) {
    for (std::int32_t stage = 1; stage <= max_depth; ++stage) {
      std::unique_ptr<ml::Regressor> model = ml::load_regressor(is);
      require(model->kind() == config.model,
              "ParameterPredictor::load: bank header and model block "
              "disagree on the model kind (corrupt file)");
      models->push_back(std::move(model));
    }
  }
  bank.trained_ = true;
  return bank;
}

double ParameterPredictor::predict_angle(
    AngleId angle, const std::vector<double>& features) const {
  require(trained_, "ParameterPredictor: predict before train");
  require(angle.stage >= 1 && angle.stage <= max_depth_,
          "ParameterPredictor: stage out of range");
  const auto& bank =
      angle.kind == AngleId::Kind::kGamma ? gamma_models_ : beta_models_;
  return bank[static_cast<std::size_t>(angle.stage - 1)]->predict(features);
}

}  // namespace qaoaml::core
