#include "core/qaoa_objective.hpp"

#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "core/angles.hpp"
#include "core/qaoa_circuit.hpp"
#include "quantum/sim_config.hpp"

namespace qaoaml::core {

MaxCutQaoa::MaxCutQaoa(graph::Graph g, int depth)
    : graph_(std::move(g)),
      depth_(depth),
      hamiltonian_(ising::DiagonalHamiltonian::maxcut(graph_)),
      circuit_(build_maxcut_ansatz(graph_, depth)) {
  require(depth >= 1, "MaxCutQaoa: depth must be >= 1");
  require(graph_.num_edges() >= 1, "MaxCutQaoa: graph needs at least one edge");
  max_cut_ = hamiltonian_.max_value();

  // Detect an integral cut spectrum (always true for unit weights).
  integral_ = true;
  const std::vector<double>& diag = hamiltonian_.diagonal();
  int_diagonal_.resize(diag.size());
  for (std::size_t z = 0; z < diag.size(); ++z) {
    const double rounded = std::round(diag[z]);
    if (std::abs(diag[z] - rounded) > 1e-9 || rounded < 0.0 ||
        rounded > 1e6) {
      integral_ = false;
      break;
    }
    int_diagonal_[z] = static_cast<int>(rounded);
    max_int_value_ = std::max(max_int_value_, int_diagonal_[z]);
  }
  if (!integral_) int_diagonal_.clear();
}

std::size_t MaxCutQaoa::num_parameters() const { return num_angles(depth_); }

optim::Bounds MaxCutQaoa::bounds() const { return qaoa_bounds(depth_); }

quantum::Statevector MaxCutQaoa::state(std::span<const double> params) const {
  // Validate before allocating the 2^n workspace (up to 1 GiB at the
  // 26-qubit cap), and with this function's own name in the message.
  require(params.size() == num_parameters(),
          "MaxCutQaoa::state: wrong parameter count");
  quantum::Statevector sv = quantum::Statevector::uniform(graph_.num_nodes());
  state_into(sv, params);
  return sv;
}

void MaxCutQaoa::state_into(quantum::Statevector& sv,
                            std::span<const double> params) const {
  require(params.size() == num_parameters(),
          "MaxCutQaoa::state_into: wrong parameter count");
  sv.reset_uniform(graph_.num_nodes());

  const bool fused = quantum::fused_kernels_enabled();
  const std::vector<double>& diag = hamiltonian_.diagonal();
  for (int stage = 0; stage < depth_; ++stage) {
    const double gamma = params[static_cast<std::size_t>(stage)];
    const double beta = params[static_cast<std::size_t>(depth_ + stage)];

    // int_diagonal_ entries are in [0, max_int_value_] by construction,
    // so both integral branches skip the per-call entry-range scan.
    if (fused) {
      // Whole layer (phase separator + mixer) in a few blocked sweeps;
      // the integral variant uses the same power-table phase separator
      // as the unfused branch below.
      if (integral_) {
        sv.apply_qaoa_layer_integral(int_diagonal_, gamma, max_int_value_,
                                     beta, /*entries_prevalidated=*/true);
      } else {
        sv.apply_qaoa_layer(diag, gamma, beta);
      }
      continue;
    }

    if (integral_) {
      // exp(-i gamma C) via powers of exp(-i gamma): the cut spectrum is
      // integral so only max_int_value_+1 distinct phases occur.
      sv.apply_diagonal_evolution_integral(int_diagonal_, gamma,
                                           max_int_value_,
                                           /*entries_prevalidated=*/true);
    } else {
      sv.apply_diagonal_evolution(diag, gamma);
    }

    const quantum::Gate1Q mixer = quantum::gates::rx(beta);
    for (int q = 0; q < graph_.num_nodes(); ++q) sv.apply_gate(mixer, q);
  }
}

double MaxCutQaoa::expectation(std::span<const double> params) const {
  return state(params).expectation_diagonal(hamiltonian_.diagonal());
}

double MaxCutQaoa::expectation_using(quantum::Statevector& workspace,
                                     std::span<const double> params) const {
  state_into(workspace, params);
  return workspace.expectation_diagonal(hamiltonian_.diagonal());
}

double MaxCutQaoa::expectation_gate_level(
    std::span<const double> params) const {
  require(params.size() == num_parameters(),
          "MaxCutQaoa::expectation_gate_level: wrong parameter count");
  const quantum::Statevector sv = circuit_.simulate(params);
  return sv.expectation_diagonal(hamiltonian_.diagonal());
}

double MaxCutQaoa::sampled_expectation(std::span<const double> params,
                                       int shots, Rng& rng) const {
  quantum::Statevector workspace =
      quantum::Statevector::uniform(num_qubits());
  std::vector<double> cdf;
  return sampled_expectation_using(workspace, cdf, params, shots, rng);
}

double MaxCutQaoa::sampled_expectation_using(quantum::Statevector& workspace,
                                             std::vector<double>& cdf,
                                             std::span<const double> params,
                                             int shots, Rng& rng) const {
  require(shots >= 1,
          "MaxCutQaoa::sampled_expectation: shots must be >= 1, got " +
              std::to_string(shots));
  state_into(workspace, params);
  workspace.cumulative_probabilities(cdf);
  const std::vector<double>& diag = hamiltonian_.diagonal();
  double acc = 0.0;
  for (int s = 0; s < shots; ++s) {
    acc += diag[quantum::Statevector::sample_cdf(cdf, rng.uniform())];
  }
  return acc / static_cast<double>(shots);
}

double MaxCutQaoa::evaluate_using(quantum::Statevector& workspace,
                                  std::vector<double>& cdf,
                                  std::span<const double> params,
                                  const EvalSpec& spec, Rng& rng) const {
  if (!spec.sampled()) return expectation_using(workspace, params);
  validate(spec);
  // One state preparation + one CDF serve every averaging repeat; the
  // mean of `averaging` equal-shot estimates is the mean of all draws.
  state_into(workspace, params);
  workspace.cumulative_probabilities(cdf);
  const std::vector<double>& diag = hamiltonian_.diagonal();
  const std::int64_t total =
      static_cast<std::int64_t>(spec.shots) * spec.averaging;
  double acc = 0.0;
  for (std::int64_t s = 0; s < total; ++s) {
    acc += diag[quantum::Statevector::sample_cdf(cdf, rng.uniform())];
  }
  return acc / static_cast<double>(total);
}

double MaxCutQaoa::approximation_ratio(std::span<const double> params) const {
  return expectation(params) / max_cut_;
}

optim::ObjectiveFn MaxCutQaoa::objective() const {
  return [this](std::span<const double> params) {
    return -expectation(params);
  };
}

optim::ObjectiveFn MaxCutQaoa::buffered_objective() const {
  auto workspace = std::make_shared<quantum::Statevector>(
      quantum::Statevector::uniform(num_qubits()));
  return [this, workspace](std::span<const double> params) {
    return -expectation_using(*workspace, params);
  };
}

optim::ObjectiveFn MaxCutQaoa::buffered_objective(
    const EvalSpec& spec, std::uint64_t stream_seed) const {
  if (!spec.sampled()) return buffered_objective();
  validate(spec);
  struct SampledState {
    quantum::Statevector workspace;
    std::vector<double> cdf;
    Rng rng;
  };
  auto state = std::make_shared<SampledState>(SampledState{
      quantum::Statevector::uniform(num_qubits()), {}, Rng(stream_seed)});
  return [this, state, spec, stream_seed](std::span<const double> params) {
    if (spec.seed_policy == SeedPolicy::kPerCall) state->rng = Rng(stream_seed);
    return -evaluate_using(state->workspace, state->cdf, params, spec,
                           state->rng);
  };
}

}  // namespace qaoaml::core
