// Feature extraction for the parameter-prediction models (Section II-D).
//
// Two-level features: (gamma_1OPT(p=1), beta_1OPT(p=1), target depth pt)
// — three features predicting each of the 2*pt response angles.
//
// Hierarchical features (Section II-E's extension): the two-level
// features plus all optimal angles of an intermediate depth pm.
#ifndef QAOAML_CORE_FEATURE_EXTRACTION_HPP
#define QAOAML_CORE_FEATURE_EXTRACTION_HPP

#include <vector>

#include "core/parameter_dataset.hpp"
#include "ml/dataset.hpp"

namespace qaoaml::core {

/// Identifies one response variable: gamma_i or beta_i (1-based stage).
struct AngleId {
  enum class Kind { kGamma, kBeta };
  Kind kind = Kind::kGamma;
  int stage = 1;

  /// "gamma3" / "beta1" style display name.
  std::string name() const;
};

/// Two-level feature vector for one record and target depth.
std::vector<double> two_level_features(const InstanceRecord& record,
                                       int target_depth);

/// Hierarchical feature vector: two-level features plus the optimal
/// angles at `intermediate_depth`.
std::vector<double> hierarchical_features(const InstanceRecord& record,
                                          int intermediate_depth,
                                          int target_depth);

/// The response value for `angle` at `target_depth` in a record.
double response_of(const InstanceRecord& record, AngleId angle,
                   int target_depth);

/// Builds the supervised training set for one response angle across the
/// given records.  Rows span every target depth pt in
/// [max(stage, 2), max_depth] (the angle must exist and pt = 1 is the
/// feature source, not a target).  Set `intermediate_depth` > 0 for
/// hierarchical features (then pt additionally must exceed it).
ml::Dataset build_angle_training_set(const ParameterDataset& dataset,
                                     const std::vector<std::size_t>& records,
                                     AngleId angle,
                                     int intermediate_depth = 0);

}  // namespace qaoaml::core

#endif  // QAOAML_CORE_FEATURE_EXTRACTION_HPP
