// The trained predictor bank (the paper's "Predictor Model" box in
// Fig. 4).
//
// One regressor per response angle (gamma_i and beta_i, i = 1..max
// depth), each mapping the feature vector to that angle's optimal value.
// Predictions are clamped into the QAOA domain (gamma in [0, 2*pi],
// beta in [0, pi]) before they seed the optimizer.
//
// Contracts:
//  - **Determinism.**  train() and predict*() are deterministic in
//    their inputs: training the same (dataset, split, config) always
//    yields the same models, and predictions contain no RNG.
//  - **Thread-safety.**  A trained predictor is immutable: predict*()
//    is safe to call concurrently from many threads (run_table1 does).
//    train() is not; construct-and-train before fanning out.
//  - **Angle units.**  All inputs and outputs are radians in the packed
//    [gamma_1..gamma_pt, beta_1..beta_pt] layout of core/angles.hpp;
//    gamma is clamped to [0, 2*pi] and beta to [0, pi].
//  - **Persistence.**  save()/load() round-trip the whole bank — every
//    per-angle regressor plus its feature-normalization state — through
//    the versioned binary format of ml/serialize.hpp, so a bank trained
//    in one process (tools/train_predictor) serves bit-identical
//    predictions in another.  Corrupt, truncated or old-format files
//    are rejected loudly, never half-loaded.
#ifndef QAOAML_CORE_PARAMETER_PREDICTOR_HPP
#define QAOAML_CORE_PARAMETER_PREDICTOR_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/feature_extraction.hpp"
#include "ml/model.hpp"

namespace qaoaml::core {

/// Predictor settings.
struct PredictorConfig {
  ml::RegressorKind model = ml::RegressorKind::kGpr;
  /// 0 = two-level features; >= 1 = hierarchical with this intermediate
  /// depth (predictions then only cover targets above it).
  int intermediate_depth = 0;
};

/// Bank of per-angle regressors.
class ParameterPredictor {
 public:
  explicit ParameterPredictor(PredictorConfig config = {});

  /// Trains one model per angle on the given training records.
  void train(const ParameterDataset& dataset,
             const std::vector<std::size_t>& train_records);

  bool trained() const { return trained_; }
  const PredictorConfig& config() const { return config_; }
  int max_depth() const { return max_depth_; }

  /// Predicts all 2*pt initial angles from the depth-1 optimum
  /// (two-level mode).
  std::vector<double> predict(double gamma1_opt, double beta1_opt,
                              int target_depth) const;

  /// Hierarchical prediction: depth-1 optimum plus the full optimal
  /// angle vector at the configured intermediate depth.
  std::vector<double> predict_hierarchical(
      double gamma1_opt, double beta1_opt,
      const std::vector<double>& intermediate_params, int target_depth) const;

  /// Per-angle prediction used by the Fig. 6 error study.
  double predict_angle(AngleId angle, const std::vector<double>& features) const;

  /// Serializes the trained bank (config + all 2 * max_depth regressors
  /// and their normalization state) to `path`.  Requires trained().
  void save(const std::string& path) const;

  /// Loads a bank saved by save(); the result predicts bit-identically
  /// to the bank that was saved.  Throws InvalidArgument on a missing,
  /// truncated, corrupt or version-mismatched file.
  static ParameterPredictor load(const std::string& path);

 private:
  std::vector<double> predict_from_features(std::vector<double> features,
                                            int target_depth) const;

  PredictorConfig config_;
  bool trained_ = false;
  int max_depth_ = 0;
  std::vector<std::unique_ptr<ml::Regressor>> gamma_models_;  // [stage - 1]
  std::vector<std::unique_ptr<ml::Regressor>> beta_models_;
};

}  // namespace qaoaml::core

#endif  // QAOAML_CORE_PARAMETER_PREDICTOR_HPP
