#include "core/experiment.hpp"

#include <numeric>

#include "common/error.hpp"
#include "core/corpus_pipeline.hpp"
#include "stats/descriptive.hpp"

namespace qaoaml::core {
namespace {

/// Per-graph means for one (optimizer, depth) cell.
struct GraphStats {
  double naive_ar = 0.0;
  double naive_fc = 0.0;
  double ml_ar = 0.0;
  double ml_fc = 0.0;
};

/// One (optimizer, depth) cell of the sweep.
struct Cell {
  optim::OptimizerKind optimizer;
  int target_depth;
};

}  // namespace

std::vector<TableRow> run_table1(const ParameterDataset& dataset,
                                 const std::vector<std::size_t>& test_records,
                                 const ParameterPredictor& predictor,
                                 const ExperimentConfig& config) {
  require(predictor.trained(), "run_table1: predictor not trained");
  require(!test_records.empty(), "run_table1: empty test set");
  require(config.naive_runs >= 1 && config.ml_repeats >= 1,
          "run_table1: run counts must be >= 1");

  // Flatten the sweep into (cell, graph) work units and dispatch them
  // through the corpus pipeline's scheduler as ONE asynchronous wave:
  // no barrier between table cells, so a slow straggler in one cell no
  // longer idles the pool while the next cell waits to start.  Each
  // unit's RNG stream depends only on (seed, graph id, depth,
  // optimizer), exactly as before, so the flattening changes scheduling
  // but not a single reported number.
  std::vector<Cell> cells;
  for (const optim::OptimizerKind optimizer : config.optimizers) {
    for (const int depth : config.target_depths) {
      cells.push_back(Cell{optimizer, depth});
    }
  }
  const std::size_t graphs = test_records.size();
  std::vector<GraphStats> per_unit(cells.size() * graphs);

  std::vector<std::size_t> units(per_unit.size());
  std::iota(units.begin(), units.end(), std::size_t{0});
  run_units_in_order(units, [&](std::size_t unit, std::size_t) {
    const Cell& cell = cells[unit / graphs];
    const std::size_t t = unit % graphs;
    const InstanceRecord& record = dataset.records()[test_records[t]];
    // Deterministic per-(cell, graph) stream.
    Rng rng(config.seed ^
            (static_cast<std::uint64_t>(record.id) << 32) ^
            (static_cast<std::uint64_t>(cell.target_depth) << 8) ^
            static_cast<std::uint64_t>(cell.optimizer));

    const MaxCutQaoa instance(record.problem, cell.target_depth);

    // Naive arm: per-run statistics over random initializations.
    std::vector<double> naive_ar;
    std::vector<double> naive_fc;
    for (int run = 0; run < config.naive_runs; ++run) {
      const QaoaRun r =
          solve_random_init(instance, cell.optimizer, rng, config.options);
      naive_ar.push_back(r.approximation_ratio);
      naive_fc.push_back(static_cast<double>(r.function_calls));
    }

    // ML arm: the two-level flow (level-1 randomness repeats).
    TwoLevelConfig two_level;
    two_level.optimizer = cell.optimizer;
    two_level.options = config.options;
    std::vector<double> ml_ar;
    std::vector<double> ml_fc;
    for (int run = 0; run < config.ml_repeats; ++run) {
      const AcceleratedRun r =
          solve_two_level(record.problem, cell.target_depth, predictor,
                          two_level, rng);
      ml_ar.push_back(r.final.approximation_ratio);
      ml_fc.push_back(static_cast<double>(r.total_function_calls));
    }

    per_unit[unit] = GraphStats{stats::mean(naive_ar), stats::mean(naive_fc),
                                stats::mean(ml_ar), stats::mean(ml_fc)};
  });

  std::vector<TableRow> rows;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    std::vector<double> nar;
    std::vector<double> nfc;
    std::vector<double> mar;
    std::vector<double> mfc;
    for (std::size_t t = 0; t < graphs; ++t) {
      const GraphStats& g = per_unit[c * graphs + t];
      nar.push_back(g.naive_ar);
      nfc.push_back(g.naive_fc);
      mar.push_back(g.ml_ar);
      mfc.push_back(g.ml_fc);
    }

    TableRow row;
    row.optimizer = cells[c].optimizer;
    row.target_depth = cells[c].target_depth;
    row.naive_ar_mean = stats::mean(nar);
    row.naive_ar_sd = stats::stddev(nar);
    row.naive_fc_mean = stats::mean(nfc);
    row.naive_fc_sd = stats::stddev(nfc);
    row.ml_ar_mean = stats::mean(mar);
    row.ml_ar_sd = stats::stddev(mar);
    row.ml_fc_mean = stats::mean(mfc);
    row.ml_fc_sd = stats::stddev(mfc);
    row.fc_reduction_percent =
        100.0 * (row.naive_fc_mean - row.ml_fc_mean) / row.naive_fc_mean;
    rows.push_back(row);
  }
  return rows;
}

double average_fc_reduction(const std::vector<TableRow>& rows) {
  require(!rows.empty(), "average_fc_reduction: no rows");
  double acc = 0.0;
  for (const TableRow& row : rows) acc += row.fc_reduction_percent;
  return acc / static_cast<double>(rows.size());
}

}  // namespace qaoaml::core
